package awam

import (
	"fmt"
	"testing"

	"awam/internal/baseline"
	"awam/internal/bench"
	"awam/internal/compiler"
	"awam/internal/core"
	"awam/internal/machine"
	"awam/internal/optimize"
	"awam/internal/parser"
	"awam/internal/plmeta"
	"awam/internal/term"
	"awam/internal/transrun"
	"awam/internal/wam"
)

// The benchmarks below regenerate the measured columns of the paper's
// evaluation:
//
//	Table 1 "Ours"     -> BenchmarkAnalyze/*
//	Table 1 "Aquarius" -> BenchmarkHostedAnalyze/*
//	Table 1 "PLM"      -> BenchmarkCompile/*
//	Table 2 sweep      -> BenchmarkDepth/*, BenchmarkTableRepr/*,
//	                      BenchmarkIndexing/*, BenchmarkMetaInterpreter/*
//	Figure 1 left path -> BenchmarkConcreteRun/*
//	E11 payoff         -> BenchmarkOptimizedRun/*
//
// cmd/benchtab renders the same measurements as the paper's tables.

type built struct {
	tab  *term.Tab
	prog *term.Program
	mod  *wam.Module
}

func buildBench(b *testing.B, name string) built {
	b.Helper()
	p, ok := bench.ByName(name)
	if !ok {
		b.Fatalf("unknown benchmark %s", name)
	}
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, p.Source)
	if err != nil {
		b.Fatal(err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		b.Fatal(err)
	}
	return built{tab: tab, prog: prog, mod: mod}
}

// BenchmarkAnalyze is Table 1's "Ours" column: the compiled abstract-WAM
// analysis, full fixpoint, per benchmark.
func BenchmarkAnalyze(b *testing.B) {
	for _, name := range bench.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			env := buildBench(b, name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.New(env.mod).AnalyzeMain(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHostedAnalyze is Table 1's "Aquarius" column stand-in: a mode
// analyzer written in Prolog executing on the concrete WAM.
func BenchmarkHostedAnalyze(b *testing.B) {
	for _, name := range bench.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			env := buildBench(b, name)
			runner, err := plmeta.NewRunner(env.tab, env.prog)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := runner.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMetaInterpreter measures the Go meta-interpreting analyzer
// (same abstract domain as the compiled one).
func BenchmarkMetaInterpreter(b *testing.B) {
	for _, name := range bench.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			env := buildBench(b, name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := baseline.New(env.tab, env.prog).AnalyzeMain(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompile is Table 1's "PLM" column stand-in: Prolog -> WAM
// compilation time.
func BenchmarkCompile(b *testing.B) {
	for _, name := range bench.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			env := buildBench(b, name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := compiler.Compile(env.tab, env.prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConcreteRun executes each benchmark's main/0 on the concrete
// WAM (Figure 1's compiled-execution path).
func BenchmarkConcreteRun(b *testing.B) {
	for _, name := range bench.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			env := buildBench(b, name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := machine.New(env.mod)
				ok, err := m.RunMain()
				if err != nil || !ok {
					b.Fatalf("run: ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// BenchmarkOptimizedRun executes the analysis-specialized modules; the
// delta against BenchmarkConcreteRun is the E11 payoff.
func BenchmarkOptimizedRun(b *testing.B) {
	for _, name := range bench.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			env := buildBench(b, name)
			res, err := core.New(env.mod).AnalyzeMain()
			if err != nil {
				b.Fatal(err)
			}
			opt, _ := optimize.Specialize(env.mod, res)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := machine.New(opt)
				ok, err := m.RunMain()
				if err != nil || !ok {
					b.Fatalf("run: ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// BenchmarkDepth sweeps the term-depth restriction k (experiment E9 /
// the Table 2 configuration sweep) on the structurally richest
// benchmarks.
func BenchmarkDepth(b *testing.B) {
	for _, name := range []string{"qsort", "serialise", "zebra"} {
		for _, k := range []int{2, 4, 8} {
			name, k := name, k
			b.Run(benchLabel(name, "k", k), func(b *testing.B) {
				env := buildBench(b, name)
				cfg := core.Config{Depth: k, Table: core.TableLinear, Indexing: true}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.NewWith(env.mod, cfg).AnalyzeMain(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTableRepr compares the paper's linear extension table with
// the hashed ablation (experiment E8).
func BenchmarkTableRepr(b *testing.B) {
	for _, name := range []string{"qsort", "queens_8", "zebra"} {
		for _, kind := range []core.TableKind{core.TableLinear, core.TableHash} {
			name, kind := name, kind
			label := name + "/linear"
			if kind == core.TableHash {
				label = name + "/hash"
			}
			b.Run(label, func(b *testing.B) {
				env := buildBench(b, name)
				cfg := core.Config{Depth: 4, Table: kind, Indexing: true}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.NewWith(env.mod, cfg).AnalyzeMain(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkIndexing compares indexing-aware clause selection with
// explore-all (Section 5's indexing discussion).
func BenchmarkIndexing(b *testing.B) {
	for _, name := range []string{"qsort", "query", "serialise"} {
		for _, idx := range []bool{true, false} {
			name, idx := name, idx
			label := name + "/indexed"
			if !idx {
				label = name + "/all-clauses"
			}
			b.Run(label, func(b *testing.B) {
				env := buildBench(b, name)
				cfg := core.Config{Depth: 4, Table: core.TableLinear, Indexing: idx}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.NewWith(env.mod, cfg).AnalyzeMain(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func benchLabel(name, param string, v int) string {
	return name + "/" + param + "=" + string(rune('0'+v))
}

// BenchmarkStrategy compares the paper's naive fixpoint iteration with
// the dependency-tracking worklist (Section 6's future work, implemented
// in internal/core/worklist.go).
func BenchmarkStrategy(b *testing.B) {
	for _, name := range []string{"qsort", "zebra", "serialise"} {
		for _, strat := range []core.Strategy{core.StrategyNaive, core.StrategyWorklist} {
			name, strat := name, strat
			label := name + "/naive"
			if strat == core.StrategyWorklist {
				label = name + "/worklist"
			}
			b.Run(label, func(b *testing.B) {
				env := buildBench(b, name)
				cfg := core.DefaultConfig()
				cfg.Strategy = strat
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.NewWith(env.mod, cfg).AnalyzeMain(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func buildProgram(b *testing.B, p bench.Program) built {
	b.Helper()
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, p.Source)
	if err != nil {
		b.Fatal(err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		b.Fatal(err)
	}
	return built{tab: tab, prog: prog, mod: mod}
}

// BenchmarkAnalyzeParallel compares the sequential worklist with the
// parallel engine (sharded extension table) across worker counts, on a
// real multi-predicate benchmark (zebra) and on generated wide programs
// whose extension tables hold thousands of calling patterns. The
// worklist-hash row isolates the table-representation effect from the
// engine effect: it runs the sequential worklist over the hashed table
// ablation. The measured numbers are recorded in EXPERIMENTS.md.
func BenchmarkAnalyzeParallel(b *testing.B) {
	programs := []bench.Program{}
	if p, ok := bench.ByName("zebra"); ok {
		programs = append(programs, p)
	}
	programs = append(programs, bench.WideProgram(128), bench.WideProgram(256), bench.WideProgram(512))
	runCfg := func(b *testing.B, env built, cfg core.Config) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.NewWith(env.mod, cfg).AnalyzeMain(); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, p := range programs {
		p := p
		env := buildProgram(b, p)
		b.Run(p.Name+"/worklist", func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Strategy = core.StrategyWorklist
			runCfg(b, env, cfg)
		})
		b.Run(p.Name+"/worklist-hash", func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Strategy = core.StrategyWorklist
			cfg.Table = core.TableHash
			runCfg(b, env, cfg)
		})
		for _, workers := range []int{1, 2, 4, 8} {
			workers := workers
			b.Run(fmt.Sprintf("%s/parallel-%d", p.Name, workers), func(b *testing.B) {
				cfg := core.DefaultConfig()
				cfg.Strategy = core.StrategyParallel
				cfg.Parallelism = workers
				runCfg(b, env, cfg)
			})
		}
	}
}

// BenchmarkTransformedAnalyze measures the paper's transforming
// approach: the analysis partially evaluated into a Prolog program,
// executed on the concrete WAM (internal/transrun).
func BenchmarkTransformedAnalyze(b *testing.B) {
	for _, name := range bench.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			env := buildBench(b, name)
			runner, err := transrun.NewRunner(env.tab, env.prog)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := runner.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
