package awam_test

import (
	"fmt"
	"log"
	"sort"

	"awam"
)

// The examples below double as documentation and as tests: `go test`
// verifies their output.

func ExampleLoad() {
	sys, err := awam.Load(`
		greeting(hello).
		greeting(salut).
	`)
	if err != nil {
		log.Fatal(err)
	}
	sol, _ := sys.Run("greeting(G)")
	fmt.Println(sol.Bindings["G"])
	// Output: hello
}

func ExampleSystem_Analyze() {
	sys, err := awam.Load(`
		main :- double([1,2,3], D), out(D).
		double([], []).
		double([X|Xs], [Y|Ys]) :- Y is X * 2, double(Xs, Ys).
		out(_).
	`)
	if err != nil {
		log.Fatal(err)
	}
	analysis, _ := sys.Analyze()
	succ, _ := analysis.SuccessPattern("double/2")
	mode, _ := analysis.Modes("double/2")
	fmt.Println(succ)
	fmt.Println(mode)
	// Output:
	// double(list(int), list(int))
	// double(+g, -g)
}

func ExampleSystem_Run_backtracking() {
	sys, err := awam.Load(`
		edge(a, b). edge(b, c). edge(a, d).
		path(X, X).
		path(X, Z) :- edge(X, Y), path(Y, Z).
	`)
	if err != nil {
		log.Fatal(err)
	}
	sol, _ := sys.Run("path(a, T)")
	var targets []string
	for sol.OK {
		targets = append(targets, sol.Bindings["T"])
		if ok, _ := sol.Next(); !ok {
			break
		}
	}
	sort.Strings(targets)
	fmt.Println(targets)
	// Output: [a b c d]
}

func ExampleSystem_Optimize() {
	sys, err := awam.Load(`
		main :- last([1,2,3], _).
		last([X], X) :- !.
		last([_|T], X) :- last(T, X).
	`)
	if err != nil {
		log.Fatal(err)
	}
	analysis, _ := sys.Analyze()
	_, report, err := sys.Optimize(analysis)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, p := range report.Passes {
		total += p.Total
	}
	fmt.Println(total > 0, report.CodeAfter >= report.CodeBefore)
	// Output: true true
}

func ExampleSystem_Transform() {
	sys, err := awam.Load("p(a).")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sys.Transform())
	// Output:
	// p'(X1) :-
	//	abstract([X1], [Xa1]),
	//	( explored(p(Xa1)) -> lookupET(p(Xa1))
	//	; assert(explored(p(Xa1))), p(Xa1)
	//	).
	// p(a) :- updateET(p(a)), fail.
	// p(Lub1) :- lookupET(p(Lub1)).
}

func ExampleAnalysis_AliasPairs() {
	sys, err := awam.Load("same(X, X).")
	if err != nil {
		log.Fatal(err)
	}
	analysis, _ := sys.Analyze(awam.WithEntry("same(var, var)"))
	fmt.Println(analysis.AliasPairs("same/2"))
	// Output: [[1 2]]
}
