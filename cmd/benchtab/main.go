// Command benchtab regenerates the paper's evaluation tables on this
// machine.
//
// Usage:
//
//	benchtab -table 1          # Table 1: analyzer efficiency
//	benchtab -table 2          # Table 2: speed ratios / config sweep
//	benchtab -table ablation   # term-depth restriction sweep
//	benchtab -table observe    # table traffic + working set per benchmark
//	benchtab -table optimize   # machine-runtime speedups from the pass pipeline
//	benchtab -table specialize # specialized transfer stream ablation
//	benchtab -table backward   # demand queries: cold vs store-warm vs one-edit
//	benchtab -table all        # everything
//	benchtab -quick            # smaller timing samples
//	benchtab -json out.json    # machine-readable report (BENCH_PR3.json)
//	benchtab -dump-wide 512    # print the wide_512 workload source and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"awam/internal/bench"
	"awam/internal/harness"
)

func main() {
	table := flag.String("table", "all", "which table to produce: 1, 2, ablation, observe, optimize, specialize, backward, all")
	quick := flag.Bool("quick", false, "use short timing samples")
	jsonOut := flag.String("json", "", "write a machine-readable benchmark report to this file and exit")
	label := flag.String("label", "PR3", "revision label recorded in the -json report")
	seed := flag.Int64("seed", 0, "randomize the wide scaling workloads with this seed (0 = fixed legacy programs)")
	dumpWide := flag.Int("dump-wide", 0, "print the wide scaling workload with this many families to stdout and exit (honors -seed)")
	flag.Parse()

	if *dumpWide > 0 {
		fmt.Print(bench.WideProgramSeeded(*dumpWide, *seed).Source)
		return
	}

	if *jsonOut != "" {
		fmt.Fprintf(os.Stderr, "measuring JSON benchmark report (seed=%d)...\n", *seed)
		rep, err := harness.MeasureBenchJSON(*label, *quick, *seed, os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		if err := harness.WriteBenchJSON(f, rep); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		return
	}

	opts := harness.DefaultMeasureOptions()
	if *quick {
		opts.MinSampleTime = 5 * time.Millisecond
	}

	needRows := *table == "1" || *table == "2" || *table == "observe" || *table == "all"
	var rows []*harness.Metrics
	var err error
	if needRows {
		fmt.Fprintln(os.Stderr, "measuring benchmarks (this repeats each analysis until stable)...")
		rows, err = harness.MeasureAll(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
	}

	switch *table {
	case "1":
		harness.WriteTable1(os.Stdout, rows)
	case "2":
		configs, err := harness.MeasureConfigs(opts, rows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		harness.WriteTable2(os.Stdout, rows, configs)
	case "ablation":
		ab, err := harness.MeasureAblation(opts, []int{2, 4, 8})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		harness.WriteAblation(os.Stdout, ab)
	case "observe":
		harness.WriteObservability(os.Stdout, rows)
	case "optimize":
		entries, err := harness.MeasureOptimizeJSON(*quick, os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		harness.WriteOptimizeTable(os.Stdout, entries)
	case "specialize":
		entries, err := harness.MeasureSpecialize(*quick, os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		harness.WriteSpecializeTable(os.Stdout, entries)
	case "backward":
		entry, err := harness.MeasureBackward(512, *quick, os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		harness.WriteBackwardTable(os.Stdout, []harness.BackwardEntry{*entry})
	case "all":
		harness.WriteTable1(os.Stdout, rows)
		fmt.Println()
		configs, err := harness.MeasureConfigs(opts, rows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		harness.WriteTable2(os.Stdout, rows, configs)
		fmt.Println()
		ab, err := harness.MeasureAblation(opts, []int{2, 4, 8})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		harness.WriteAblation(os.Stdout, ab)
		fmt.Println()
		harness.WriteObservability(os.Stdout, rows)
	default:
		fmt.Fprintln(os.Stderr, "benchtab: unknown table", *table)
		os.Exit(2)
	}
}
