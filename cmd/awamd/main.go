// Command awamd is the analysis daemon: a long-lived HTTP service over
// the incremental dataflow analyzer. It holds one summary cache for its
// whole lifetime (optionally persisted to disk), so repeated analyses
// of evolving programs pay only for their edits.
//
// Usage:
//
//	awamd [-addr :8347] [-cache-dir DIR] [-cache-bytes N] [-remote URL]
//	      [-workers N] [-timeout D] [-max-timeout D]
//	      [-max-body N] [-max-steps N] [-drain D]
//
// With -remote the daemon joins a summary fabric: its store gains a
// remote tier speaking the batched /v1/store protocol against the peer
// daemon at URL, so records computed by any fleet member are reused by
// all of them. A peer outage degrades the tier to local-only serving —
// analyses still succeed with identical results.
//
// Endpoints (see the awam/api package for the wire types): POST
// /v1/analyze, POST /v1/backward (demand queries against the same
// shared store, under their own record salt), POST /v1/optimize, GET
// /v1/healthz, GET /v1/metrics, plus the unversioned legacy aliases
// /analyze, /healthz and /metrics. SIGINT/SIGTERM drain in-flight
// requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"awam"
	"awam/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8347", "listen address")
		cacheDir   = flag.String("cache-dir", "", "persist summary records to this directory (empty: memory only)")
		cacheBytes = flag.Int64("cache-bytes", 0, "in-memory cache budget in bytes (0: default 64 MiB)")
		remote     = flag.String("remote", "", "base URL of a peer daemon's summary store (joins its fabric)")
		workers    = flag.Int("workers", 4, "max concurrent analyses")
		timeout    = flag.Duration("timeout", 10*time.Second, "default per-request analysis deadline")
		maxTimeout = flag.Duration("max-timeout", 60*time.Second, "clamp on request-supplied deadlines")
		maxBody    = flag.Int64("max-body", 1<<20, "max request body bytes")
		maxSteps   = flag.Int64("max-steps", 0, "clamp on per-request abstract step budgets (0: uncapped)")
		drain      = flag.Duration("drain", 15*time.Second, "shutdown drain deadline")
	)
	flag.Parse()

	storeOpts := []awam.StoreOption{awam.WithMemoryBudget(*cacheBytes)}
	if *cacheDir != "" {
		storeOpts = append(storeOpts, awam.WithDiskDir(*cacheDir))
	}
	if *remote != "" {
		storeOpts = append(storeOpts, awam.WithRemote(*remote))
	}
	cache, err := awam.NewStore(storeOpts...)
	if err != nil {
		log.Fatalf("awamd: cache: %v", err)
	}
	srv, err := serve.New(serve.Config{
		Cache:          cache,
		MaxBodyBytes:   *maxBody,
		MaxConcurrent:  *workers,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxSteps:       *maxSteps,
	})
	if err != nil {
		log.Fatalf("awamd: %v", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	if *remote != "" {
		log.Printf("awamd: listening on %s (cache dir %q, fabric peer %s)", *addr, *cacheDir, *remote)
	} else {
		log.Printf("awamd: listening on %s (cache dir %q)", *addr, *cacheDir)
	}

	select {
	case err := <-errc:
		log.Fatalf("awamd: serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("awamd: shutting down, draining for up to %s", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "awamd: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("awamd: %v", err)
	}
	log.Printf("awamd: bye")
}
