// Command fuzzdiff runs long differential-fuzzing soaks against the
// analyzer: it generates seeded random Prolog programs, runs the
// concrete-vs-abstract soundness oracle (plus cross-strategy and
// metamorphic checks) on each, shrinks any counterexample, and emits
// violations as JSON for triage. A strategy-divergence violation's
// JSON carries the first diverging calling pattern and its two
// summaries (diverged_pred / diverged_pair).
//
// Usage:
//
//	fuzzdiff [-seed N] [-n COUNT] [-json FILE] [-keep-going] [-strict=false] [-meta] [-backward] [-progress N]
//
// Exit status is 1 if any violation was found. A soak of a few million
// cases is a weekend job; -n 0 runs until interrupted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"awam/internal/fuzz"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "base generator seed (case i uses seed+i)")
		n         = flag.Int64("n", 10000, "number of cases to run; 0 = run until interrupted")
		jsonPath  = flag.String("json", "", "append violations as JSON lines to this file (default stdout)")
		keepGoing = flag.Bool("keep-going", false, "continue after a violation instead of stopping")
		strict    = flag.Bool("strict", true, "require byte-identical worklist/naive/parallel results (schedule-confluence contract)")
		meta      = flag.Bool("meta", true, "also run metamorphic checks (clause reorder, predicate rename)")
		backward  = flag.Bool("backward", false, "also run the forward/backward consistency oracle (demands must admit forward success)")
		progress  = flag.Int64("progress", 1000, "print a progress line every N cases (0 = quiet)")
	)
	flag.Parse()

	out := os.Stdout
	if *jsonPath != "" {
		f, err := os.OpenFile(*jsonPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fuzzdiff: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)

	cfg := fuzz.DefaultGenConfig()
	opt := fuzz.DefaultOptions()
	opt.StrictCross = *strict

	var total fuzz.Stats
	violations := 0
	start := time.Now()
	report := func(i int64) {
		elapsed := time.Since(start).Seconds()
		fmt.Fprintf(os.Stderr,
			"fuzzdiff: %d cases (%.0f/s) seed=[%d,%d] queries=%d solutions=%d skipped=%d diverged=%d violations=%d\n",
			i, float64(i)/elapsed, *seed, *seed+i-1, total.Queries, total.Solutions,
			total.Skipped, total.Diverged, violations)
	}

	var i int64
loop:
	for i = 0; *n == 0 || i < *n; i++ {
		select {
		case <-stop:
			fmt.Fprintln(os.Stderr, "fuzzdiff: interrupted")
			break loop
		default:
		}
		caseSeed := *seed + i
		c := fuzz.Generate(caseSeed, cfg)
		v, st, err := fuzz.Check(c, opt)
		total.Add(st)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fuzzdiff: seed %d: infrastructure error: %v\n", caseSeed, err)
			violations++
			if !*keepGoing {
				break
			}
			continue
		}
		if v == nil && *meta {
			v, err = fuzz.CheckMetamorphic(c, opt)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fuzzdiff: seed %d: metamorphic infrastructure error: %v\n", caseSeed, err)
				violations++
				if !*keepGoing {
					break
				}
				continue
			}
		}
		if v == nil && *backward {
			var bst fuzz.Stats
			v, bst, err = fuzz.CheckBackward(c, opt)
			total.Add(bst)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fuzzdiff: seed %d: backward infrastructure error: %v\n", caseSeed, err)
				violations++
				if !*keepGoing {
					break
				}
				continue
			}
		}
		if v != nil {
			violations++
			// Shrink before reporting; fall back to the unshrunk
			// violation if minimization loses the failure (e.g. a
			// schedule-dependent divergence).
			if _, sv := fuzz.Shrink(c, opt); sv != nil {
				v = sv
			}
			if err := enc.Encode(v); err != nil {
				fmt.Fprintf(os.Stderr, "fuzzdiff: %v\n", err)
				os.Exit(2)
			}
			if !*keepGoing {
				i++
				break
			}
		}
		if *progress > 0 && (i+1)%*progress == 0 {
			report(i + 1)
		}
	}
	report(i)
	if violations > 0 {
		os.Exit(1)
	}
}
