package awam

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"awam/internal/backward"
	"awam/internal/term"
)

// BackwardOption configures AnalyzeBackward. Like AnalyzeOption, every
// option carries its value — there are no boolean-flag options — and
// invalid values surface as ErrBadOption from AnalyzeBackward, never as
// a silently clamped configuration.
type BackwardOption func(*backwardCfg)

type backwardCfg struct {
	goals    []string
	depth    int
	maxSteps int64
	store    Store
	err      error
}

func (c *backwardCfg) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// WithGoal adds a demand entry point, a predicate indicator like
// "qsort/3". The option is repeatable; with no WithGoal the query is
// rooted at main/0 when the program defines it, else at every source
// predicate. A goal the program neither defines nor calls is rejected
// with ErrBadOption.
func WithGoal(pred string) BackwardOption {
	return func(c *backwardCfg) { c.goals = append(c.goals, pred) }
}

// WithBackwardDepth sets the widening depth bound demands are closed
// under (default 4, the forward default). Negative depths are rejected
// with ErrBadOption.
func WithBackwardDepth(k int) BackwardOption {
	return func(c *backwardCfg) {
		if k < 0 {
			c.fail(fmt.Errorf("%w: negative depth %d", ErrBadOption, k))
			return
		}
		c.depth = k
	}
}

// WithBackwardMaxSteps bounds the backward transfer steps; exceeding it
// fails with ErrAnalysisBudget. Nonpositive budgets are rejected with
// ErrBadOption.
func WithBackwardMaxSteps(n int64) BackwardOption {
	return func(c *backwardCfg) {
		if n <= 0 {
			c.fail(fmt.Errorf("%w: nonpositive step budget %d", ErrBadOption, n))
			return
		}
		c.maxSteps = n
	}
}

// WithBackwardStore runs the query against s, the same tiered summary
// fabric forward analyses use with WithSummaryCache: converged
// component demands are stored content-addressed (under a distinct
// format salt, so the two record universes never collide), and a repeat
// query over clean components re-executes nothing — including across
// processes when the store has a disk or remote tier. A nil s is a
// no-op (the System's private store serves repeat queries in-process).
func WithBackwardStore(s Store) BackwardOption {
	return func(c *backwardCfg) { c.store = s }
}

// DemandArg is one argument position of a Demand.
type DemandArg struct {
	// Type is the weakest abstract type demanded at this position — the
	// root of the demanded depth-k term. TypeAny means the position is
	// unconstrained (an output, or simply never examined).
	Type Type
}

// Demand is the backward analysis result for one predicate: the weakest
// call pattern under which the forward abstract semantics cannot refute
// success, with every builtin used error-free. It mirrors Summary on
// the forward side.
type Demand struct {
	// Pred is the predicate as "name/arity".
	Pred string
	// Args holds one entry per argument (empty for arity 0, and when no
	// safe call exists).
	Args []DemandArg
	// Call is the demand written as an abstract pattern, e.g.
	// "qsort(nv, any, any)"; "" when Callable is false.
	Call string
	// Callable reports whether any safe call pattern exists at all.
	// False is the demand bottom: the predicate is undefined, can never
	// succeed, or needs something the domain cannot express.
	Callable bool
}

// BackwardStats are the run statistics of one backward analysis.
type BackwardStats struct {
	// Steps counts abstract transfer steps (one per body goal walked);
	// Iterations counts fixpoint sweeps over component members.
	Steps      int64
	Iterations int
	// VisitedSCCs is the demanded cone, out of TotalSCCs call-graph
	// components; the gap is the work demand-driving saved. ReusedSCCs
	// were served from the summary store, ExecutedSCCs ran the fixpoint
	// (undefined pseudo-components count in neither).
	VisitedSCCs, TotalSCCs   int
	ReusedSCCs, ExecutedSCCs int
	// CondenseMS, ForwardMS and SolveMS split the wall time: call-graph
	// condensation plus cone discovery, the lazy forward success
	// pre-pass (zero when every component was served from the store),
	// and the backward fixpoint itself.
	CondenseMS, ForwardMS, SolveMS int64
}

// BackwardAnalysis holds a finished demand analysis.
type BackwardAnalysis struct {
	sys *System
	res *backward.Result
}

// AnalyzeBackward runs the demand-driven backward analysis: for each
// goal predicate and everything it transitively demands, infer the
// weakest call pattern under which success cannot be refuted and every
// builtin is error-free. It is AnalyzeBackwardContext with a background
// context.
func (s *System) AnalyzeBackward(opts ...BackwardOption) (*BackwardAnalysis, error) {
	return s.AnalyzeBackwardContext(context.Background(), opts...)
}

// AnalyzeBackwardContext runs the backward analysis under a context.
// Cancellation fails with an error wrapping ErrCanceled; an exhausted
// WithBackwardMaxSteps budget with ErrAnalysisBudget; invalid option
// values — including goals the program does not mention — with
// ErrBadOption.
func (s *System) AnalyzeBackwardContext(ctx context.Context, opts ...BackwardOption) (*BackwardAnalysis, error) {
	var c backwardCfg
	for _, o := range opts {
		o(&c)
	}
	if c.err != nil {
		return nil, c.err
	}
	cfg := backward.Config{Depth: c.depth, MaxSteps: c.maxSteps}
	for _, g := range c.goals {
		fn, err := parseIndicator(s.tab, g)
		if err != nil {
			return nil, err
		}
		cfg.Goals = append(cfg.Goals, fn)
	}
	res, err := s.backwardEngine(c.store).Analyze(ctx, s.mod, s.prog, cfg)
	if err != nil {
		if errors.Is(err, backward.ErrUnknownGoal) {
			return nil, fmt.Errorf("%w: %w", ErrBadOption, err)
		}
		return nil, wrapAnalysisErr(err)
	}
	return &BackwardAnalysis{sys: s, res: res}, nil
}

// backwardEngine picks the engine for one query: over the caller's
// store when one was given, else the System's lazily-built private
// engine, whose in-memory store makes repeat queries on this System
// warm by default.
func (s *System) backwardEngine(st Store) *backward.Engine {
	if sc, ok := st.(*SummaryCache); ok && sc != nil {
		return backward.NewEngine(sc.store)
	}
	s.bwdOnce.Do(func() { s.bwdEng = backward.NewEngine(nil) })
	return s.bwdEng
}

// parseIndicator reads a "name/arity" predicate indicator.
func parseIndicator(tab *term.Tab, s string) (term.Functor, error) {
	i := strings.LastIndex(s, "/")
	if i <= 0 || i == len(s)-1 {
		return term.Functor{}, fmt.Errorf("%w: goal %q is not a name/arity indicator", ErrBadOption, s)
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil || n < 0 {
		return term.Functor{}, fmt.Errorf("%w: goal %q has a bad arity", ErrBadOption, s)
	}
	return tab.Func(s[:i], n), nil
}

// System returns the system the demands were computed for.
func (b *BackwardAnalysis) System() *System { return b.sys }

// Marshal serializes the demand set as text, one sorted line per
// visited predicate. Byte-identical results marshal byte-identically,
// whichever store tier served them.
func (b *BackwardAnalysis) Marshal() string { return b.res.Marshal() }

// Predicates lists the visited predicates — the demanded cone — as
// "name/arity" strings, sorted.
func (b *BackwardAnalysis) Predicates() []string {
	fns := b.res.Predicates()
	out := make([]string, len(fns))
	for i, fn := range fns {
		out[i] = b.sys.tab.FuncString(fn)
	}
	return out
}

// Demand returns the typed demand of a predicate given as "name/arity",
// and whether the predicate was in the demanded cone.
func (b *BackwardAnalysis) Demand(pred string) (Demand, bool) {
	for _, fn := range b.res.Predicates() {
		if b.sys.tab.FuncString(fn) == pred {
			return b.demandOf(fn), true
		}
	}
	return Demand{}, false
}

// Demands returns every visited predicate's demand, sorted by
// "name/arity".
func (b *BackwardAnalysis) Demands() []Demand {
	fns := b.res.Predicates()
	out := make([]Demand, len(fns))
	for i, fn := range fns {
		out[i] = b.demandOf(fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pred < out[j].Pred })
	return out
}

func (b *BackwardAnalysis) demandOf(fn term.Functor) Demand {
	d := Demand{Pred: b.sys.tab.FuncString(fn)}
	p, ok := b.res.DemandFor(fn)
	if !ok || p == nil {
		return d
	}
	d.Callable = true
	d.Call = p.String(b.sys.tab)
	d.Args = make([]DemandArg, len(p.Args))
	for i, a := range p.Args {
		d.Args[i] = DemandArg{Type: typeOf(a.Kind)}
	}
	return d
}

// Stats returns the run statistics.
func (b *BackwardAnalysis) Stats() BackwardStats {
	return BackwardStats{
		Steps:        b.res.Steps,
		Iterations:   b.res.Iterations,
		VisitedSCCs:  b.res.VisitedSCCs,
		TotalSCCs:    b.res.TotalSCCs,
		ReusedSCCs:   b.res.ReusedSCCs,
		ExecutedSCCs: b.res.ExecutedSCCs,
		CondenseMS:   b.res.CondenseDur.Milliseconds(),
		ForwardMS:    b.res.ForwardDur.Milliseconds(),
		SolveMS:      b.res.SolveDur.Milliseconds(),
	}
}
