package awam

import (
	"strconv"
	"strings"

	"awam/internal/core"
	"awam/internal/domain"
)

// Mode classifies one argument's instantiation transition between the
// lubbed calling pattern and the lubbed success pattern.
type Mode int

const (
	// ModeUnknown is any transition the other modes do not cover ('?').
	ModeUnknown Mode = iota
	// ModeInGround: ground at call ('+g').
	ModeInGround
	// ModeIn: instantiated (nonvar) at call ('+').
	ModeIn
	// ModeOutGround: free at call, ground at success ('-g').
	ModeOutGround
	// ModeOut: free at call, instantiated at success ('-').
	ModeOut
	// ModeOutMaybe: free at call, possibly still free at success ('-?').
	ModeOutMaybe
)

// String writes the conventional mode symbol.
func (m Mode) String() string {
	switch m {
	case ModeInGround:
		return "+g"
	case ModeIn:
		return "+"
	case ModeOutGround:
		return "-g"
	case ModeOut:
		return "-"
	case ModeOutMaybe:
		return "-?"
	}
	return "?"
}

// MarshalJSON renders the mode as its conventional symbol ("+g", "-?"),
// so JSON consumers (the awamd daemon's responses) see mode syntax, not
// enum ordinals.
func (m Mode) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(m.String())), nil
}

// UnmarshalJSON reads the symbol form back ("?" and unknown symbols
// decode as ModeUnknown), so client code can round-trip daemon
// responses through this package's types.
func (m *Mode) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return err
	}
	*m = modeOf(s)
	return nil
}

// modeOf maps the classifier strings of core.ArgModes onto the enum.
func modeOf(s string) Mode {
	switch s {
	case "+g":
		return ModeInGround
	case "+":
		return ModeIn
	case "-g":
		return ModeOutGround
	case "-":
		return ModeOut
	case "-?":
		return ModeOutMaybe
	}
	return ModeUnknown
}

// Type is the abstract type of an argument in the analysis domain — the
// root of its depth-k type graph.
type Type int

const (
	// TypeAny is the domain's top: nothing is known.
	TypeAny Type = iota
	// TypeEmpty is the domain's bottom: the argument has no value (the
	// call never succeeds).
	TypeEmpty
	// TypeVar is an unbound, unaliased variable.
	TypeVar
	// TypeNil is the empty list.
	TypeNil
	// TypeAtom is an atom.
	TypeAtom
	// TypeInt is an integer.
	TypeInt
	// TypeConst is an atomic constant (atom, integer or nil).
	TypeConst
	// TypeGround is a ground term.
	TypeGround
	// TypeNonVar is an instantiated term, possibly with variables inside.
	TypeNonVar
	// TypeList is a (possibly open) list.
	TypeList
	// TypeStruct is a compound term.
	TypeStruct
)

// String names the type like the report output does.
func (t Type) String() string {
	switch t {
	case TypeEmpty:
		return "empty"
	case TypeVar:
		return "var"
	case TypeNil:
		return "nil"
	case TypeAtom:
		return "atom"
	case TypeInt:
		return "int"
	case TypeConst:
		return "const"
	case TypeGround:
		return "ground"
	case TypeNonVar:
		return "nonvar"
	case TypeList:
		return "list"
	case TypeStruct:
		return "struct"
	}
	return "any"
}

// MarshalJSON renders the type by name ("ground", "list"), matching the
// report output rather than enum ordinals.
func (t Type) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(t.String())), nil
}

// UnmarshalJSON reads the name form back; unknown names decode as
// TypeAny, the domain's top.
func (t *Type) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return err
	}
	*t = TypeAny
	for k := TypeAny; k <= TypeStruct; k++ {
		if k.String() == s {
			*t = k
			break
		}
	}
	return nil
}

// typeOf maps a domain kind onto the public Type enum.
func typeOf(k domain.Kind) Type {
	switch k {
	case domain.Empty:
		return TypeEmpty
	case domain.Var:
		return TypeVar
	case domain.Nil:
		return TypeNil
	case domain.Atom:
		return TypeAtom
	case domain.Intg:
		return TypeInt
	case domain.Const:
		return TypeConst
	case domain.Ground:
		return TypeGround
	case domain.NV:
		return TypeNonVar
	case domain.List:
		return TypeList
	case domain.Struct:
		return TypeStruct
	}
	return TypeAny
}

// ArgSummary describes one argument of an analyzed predicate.
type ArgSummary struct {
	// Mode is the instantiation transition (call -> success).
	Mode Mode
	// CallType and SuccessType are the argument's abstract types in the
	// lubbed calling and success patterns. SuccessType is TypeEmpty when
	// no call of the predicate ever succeeds.
	CallType    Type
	SuccessType Type
}

// Summary is the typed analysis result for one predicate — the
// structured form behind the string accessors Modes, SuccessPattern and
// AliasPairs.
type Summary struct {
	// Pred is the predicate as "name/arity".
	Pred string
	// Args holds one entry per argument.
	Args []ArgSummary
	// Call and Success are the lubbed calling and success patterns
	// written as abstract terms (Success is "" when Succeeds is false).
	Call    string
	Success string
	// Succeeds reports whether any recorded call of the predicate can
	// succeed.
	Succeeds bool
	// AliasPairs lists 1-based argument index pairs that may share
	// variables on success.
	AliasPairs [][2]int
	// Det reports whether every recorded calling pattern is determinate:
	// at most one clause head can match it (sound, may miss determinacy
	// caused by body failures).
	Det bool
}

// Summary returns the typed analysis summary of a predicate given as
// "name/arity", and whether the predicate appears in the analysis.
func (a *Analysis) Summary(pred string) (Summary, bool) {
	fn, ok := a.findPred(pred)
	if !ok {
		return Summary{}, false
	}
	cp := a.res.CallFor(fn)
	succ := a.res.SuccessFor(fn)
	s := Summary{Pred: pred, Succeeds: succ != nil, Det: true}
	if cp != nil {
		s.Call = cp.String(a.sys.tab)
	}
	if succ != nil {
		s.Success = succ.String(a.sys.tab)
		pairs := succ.ArgSharePairs()
		if len(pairs) > 0 {
			s.AliasPairs = make([][2]int, len(pairs))
			for i, p := range pairs {
				s.AliasPairs[i] = [2]int{p[0] + 1, p[1] + 1}
			}
		}
	}
	modes := core.ArgModes(a.sys.tab, cp, succ)
	if cp != nil {
		s.Args = make([]ArgSummary, len(cp.Args))
		for i, in := range cp.Args {
			arg := ArgSummary{CallType: typeOf(in.Kind), SuccessType: TypeEmpty}
			if i < len(modes) {
				arg.Mode = modeOf(modes[i])
			}
			if succ != nil && i < len(succ.Args) {
				arg.SuccessType = typeOf(succ.Args[i].Kind)
			}
			s.Args[i] = arg
		}
	}
	for _, d := range a.an.Determinacy(a.res) {
		if d.CP.CP.Fn == fn && !d.Det() {
			s.Det = false
			break
		}
	}
	return s, true
}

// ModeString writes the summary as a conventional mode declaration,
// e.g. "append(+g, +g, -g)".
func (s Summary) ModeString() string {
	if len(s.Args) == 0 {
		return ""
	}
	parts := make([]string, len(s.Args))
	for i, arg := range s.Args {
		parts[i] = arg.Mode.String()
	}
	name := s.Pred
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[:i]
	}
	return name + "(" + strings.Join(parts, ", ") + ")"
}
