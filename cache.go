package awam

import (
	"fmt"

	"awam/internal/cache"
	"awam/internal/core"
	"awam/internal/inc"
)

// SummaryCache is a content-addressed store of per-component analysis
// summaries shared across analyses (and, with a directory, across
// processes). Install it with WithSummaryCache: the analysis then
// condenses the program's call graph, fingerprints every strongly
// connected component by its compiled code and transitive callees, and
// reuses cached summaries for components whose fingerprint matches —
// after an edit, only the dirty cone is re-analyzed. Results are
// byte-identical to an uncached worklist analysis.
//
// A SummaryCache is safe for concurrent use; the daemon shares one
// across all requests.
type SummaryCache struct {
	store *cache.Store
	eng   *inc.Engine
}

// NewSummaryCache returns a cache holding up to budgetBytes of records
// in memory (<= 0 selects the default, 64 MiB). A non-empty dir enables
// persistence: records are written there as fingerprint-named files and
// survive process restarts; evicted records are re-served from disk.
func NewSummaryCache(budgetBytes int64, dir string) (*SummaryCache, error) {
	store, err := cache.NewStore(budgetBytes, dir)
	if err != nil {
		return nil, err
	}
	return &SummaryCache{store: store, eng: inc.NewEngine(store)}, nil
}

// CacheStats is a point-in-time snapshot of SummaryCache traffic.
type CacheStats struct {
	// Hits and Misses count record probes (one probe per program
	// component per analysis). Evictions counts records dropped from
	// memory by the byte budget; persisted copies survive and reload.
	Hits, Misses, Evictions int64
	// DiskLoads counts records faulted in from the cache directory;
	// DiskErrors counts persistence failures (the cache degrades to
	// memory-only rather than failing analyses).
	DiskLoads, DiskErrors int64
	// Entries and Bytes describe current in-memory occupancy.
	Entries int
	Bytes   int64
}

// Stats returns the cache's cumulative counters and occupancy.
func (sc *SummaryCache) Stats() CacheStats {
	st := sc.store.Stats()
	return CacheStats{
		Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions,
		DiskLoads: st.DiskLoads, DiskErrors: st.DiskErrors,
		Entries: st.Entries, Bytes: st.Bytes,
	}
}

// WithSummaryCache runs the analysis through the incremental engine
// backed by sc. The incremental engine is defined over the worklist
// fixpoint: combining this option with WithStrategy(Parallel) or an
// explicit WithStrategy(Naive) fails with ErrBadOption, as does
// WithEntry (the cache keys whole-program analyses). A nil sc is a
// no-op.
func WithSummaryCache(sc *SummaryCache) AnalyzeOption {
	return func(c *analyzeCfg) { c.cache = sc }
}

// Incremental describes the cache's share of one analysis run.
type Incremental struct {
	// SCCs is the number of call-graph components in the analyzed
	// program; WarmSCCs of them were served entirely from the cache.
	SCCs, WarmSCCs int
	// WarmPatterns is the number of calling patterns seeded from cached
	// summaries instead of being explored; ColdPatterns were probed but
	// not cached.
	WarmPatterns, ColdPatterns int64
}

// Incremental returns the cache accounting of this analysis, and ok =
// false when the analysis ran without WithSummaryCache.
func (a *Analysis) Incremental() (Incremental, bool) {
	if a.inc == nil {
		return Incremental{}, false
	}
	return Incremental{
		SCCs:         len(a.inc.Plan.SCCs),
		WarmSCCs:     a.inc.WarmSCCs,
		WarmPatterns: a.inc.Metrics.WarmHits,
		ColdPatterns: a.inc.Metrics.WarmMisses,
	}, true
}

// validateCacheOptions rejects option combinations the incremental
// engine cannot honor; called by AnalyzeContext when a cache is
// installed. An unconfigured strategy is silently upgraded to the
// worklist; only an explicit conflicting choice is an error.
func (c *analyzeCfg) validateCacheOptions() error {
	if c.strategySet && c.cfg.Strategy != core.StrategyWorklist {
		return fmt.Errorf("%w: summary cache requires the worklist strategy", ErrBadOption)
	}
	if c.entry != "" {
		return fmt.Errorf("%w: summary cache cannot be combined with WithEntry", ErrBadOption)
	}
	return nil
}
