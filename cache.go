package awam

import (
	"fmt"
	"time"

	"awam/internal/cache"
	"awam/internal/core"
	"awam/internal/inc"
)

// Store is a handle on the summary fabric: a tiered content-addressed
// store of per-component analysis summaries shared across analyses —
// and, with a disk tier or a remote peer, across processes and
// machines. Build one with NewStore and install it with
// WithSummaryCache: the analysis then condenses the program's call
// graph, fingerprints every strongly connected component by its
// compiled code and transitive callees, and reuses stored summaries for
// components whose fingerprint matches — after an edit, only the dirty
// cone is re-analyzed, and results are byte-identical to an uncached
// worklist analysis no matter which tier served a record.
//
// The batch record methods (Has, GetRecords, PutRecords) are the
// server side of the fabric protocol: awamd serves them on
// /v1/store/{has,get,put} so peer daemons' remote tiers can share this
// store. They operate on the local tiers only — a fleet of daemons
// pointing at each other can never chase records in a cycle.
//
// Stores are safe for concurrent use; the daemon shares one across all
// requests. Only this package implements Store.
type Store interface {
	// Stats returns the store's cumulative counters and occupancy.
	Stats() CacheStats
	// Has reports which of the given fingerprints the local tiers hold,
	// positionally. Malformed fingerprints are reported absent.
	Has(fingerprints []string) []bool
	// GetRecords returns the records stored under the given fingerprints
	// from the local tiers, positionally; absent (or malformed) entries
	// are nil. The returned bytes are shared — callers must not mutate
	// them.
	GetRecords(fingerprints []string) [][]byte
	// PutRecords stores records under the given fingerprints in the
	// local tiers and reports how many were accepted (malformed
	// fingerprints and empty records are skipped; lengths must match).
	PutRecords(fingerprints []string, records [][]byte) int
	// Flush pushes records buffered for the fabric peer upstream now.
	// Analyses flush on completion; Flush is for shutdown paths. A no-op
	// without a remote tier.
	Flush()

	// engine seals the interface: only this package's tiered store can
	// implement it, so the incremental analysis always runs against the
	// composed tier stack.
	engine() *inc.Engine
}

// StoreOption configures NewStore.
type StoreOption func(*storeCfg)

type storeCfg struct {
	opts []cache.Option
}

// WithMemoryBudget bounds the in-memory tier to budgetBytes of records
// (<= 0 selects the default, 64 MiB).
func WithMemoryBudget(budgetBytes int64) StoreOption {
	return func(c *storeCfg) { c.opts = append(c.opts, cache.WithMemoryBudget(budgetBytes)) }
}

// WithDiskDir enables the disk tier: records are written to dir as
// fingerprint-named files, survive process restarts, and re-serve
// records evicted from memory. An empty dir is a no-op.
func WithDiskDir(dir string) StoreOption {
	return func(c *storeCfg) {
		if dir != "" {
			c.opts = append(c.opts, cache.WithDir(dir))
		}
	}
}

// WithRemote enables the remote tier: records missing from the local
// tiers are fetched from the awamd daemon at baseURL (e.g.
// "http://10.0.0.7:8347") over the batched /v1/store protocol, and
// locally computed records are pushed back, so every store sharing a
// peer shares one summary universe. The tier is failure-proof by
// construction: per-batch deadlines, bounded jittered retries, and a
// circuit breaker degrade it to the local tiers on outage — a dead or
// corrupt peer costs cache misses, never errors or changed results.
func WithRemote(baseURL string, opts ...RemoteOption) StoreOption {
	return func(c *storeCfg) {
		if baseURL == "" {
			return
		}
		ropts := make([]cache.RemoteOption, len(opts))
		for i, o := range opts {
			ropts[i] = o.opt
		}
		c.opts = append(c.opts, cache.WithRemoteURL(baseURL, ropts...))
	}
}

// RemoteOption tunes the remote tier of WithRemote.
type RemoteOption struct{ opt cache.RemoteOption }

// WithRemoteTimeout sets the per-batch round-trip deadline (default 2s).
func WithRemoteTimeout(d time.Duration) RemoteOption {
	return RemoteOption{cache.WithRemoteTimeout(d)}
}

// WithRemoteRetries sets how many times a failed round trip is retried
// with jittered exponential backoff (default 2; transport errors and
// 5xx responses retry, other failures do not).
func WithRemoteRetries(n int) RemoteOption {
	return RemoteOption{cache.WithRemoteRetries(n)}
}

// WithRemoteBreaker tunes the circuit breaker: threshold consecutive
// failed round trips open it for cooldown, during which every remote
// operation is an immediate local miss (defaults: 3 failures, 10s).
func WithRemoteBreaker(threshold int, cooldown time.Duration) RemoteOption {
	return RemoteOption{cache.WithRemoteBreaker(threshold, cooldown)}
}

// WithRemoteMaxBatch bounds fingerprints or records per protocol round
// trip (default 256, the server-side cap).
func WithRemoteMaxBatch(n int) RemoteOption {
	return RemoteOption{cache.WithRemoteMaxBatch(n)}
}

// NewStore builds a summary store from options: an in-memory tier
// (always), plus optional disk (WithDiskDir) and remote (WithRemote)
// tiers. With no options it is a memory-only cache with the default
// budget.
func NewStore(opts ...StoreOption) (Store, error) {
	var c storeCfg
	for _, o := range opts {
		o(&c)
	}
	st, err := cache.New(c.opts...)
	if err != nil {
		return nil, err
	}
	return &SummaryCache{store: st, eng: inc.NewEngine(st)}, nil
}

// SummaryCache is the tiered store behind the Store interface. It
// remains exported for compatibility with code written against the
// PR 5 API; new code should hold the Store interface.
type SummaryCache struct {
	store *cache.Store
	eng   *inc.Engine
}

var _ Store = (*SummaryCache)(nil)

// NewSummaryCache returns a cache holding up to budgetBytes of records
// in memory (<= 0 selects the default, 64 MiB). A non-empty dir enables
// persistence: records are written there as fingerprint-named files and
// survive process restarts; evicted records are re-served from disk.
//
// Deprecated: use NewStore with WithMemoryBudget and WithDiskDir (and
// WithRemote to join a summary fabric).
func NewSummaryCache(budgetBytes int64, dir string) (*SummaryCache, error) {
	s, err := NewStore(WithMemoryBudget(budgetBytes), WithDiskDir(dir))
	if err != nil {
		return nil, err
	}
	return s.(*SummaryCache), nil
}

// CacheStats is a point-in-time snapshot of summary-store traffic.
type CacheStats struct {
	// Hits and Misses count record probes (one probe per program
	// component per analysis, any tier). Evictions counts records
	// dropped from memory by the byte budget; persisted copies survive
	// and reload.
	Hits, Misses, Evictions int64
	// DiskLoads counts records faulted in from the cache directory;
	// DiskErrors counts persistence failures (the cache degrades to
	// memory-only rather than failing analyses).
	DiskLoads, DiskErrors int64
	// Remote-tier (summary fabric) traffic: records faulted in from the
	// peer, records the peer was asked for but did not hold, records the
	// peer accepted upstream, protocol round trips, failed exchanges
	// (outages, timeouts, corrupt payloads — degraded to misses),
	// upstream pushes abandoned, and circuit-breaker opens. Degraded is
	// true while the breaker is open and the store serves from local
	// tiers only.
	RemoteLoads, RemoteMisses, RemotePuts int64
	RemoteRoundTrips, RemoteErrors        int64
	RemoteDropped, BreakerOpens           int64
	Degraded                              bool
	// Entries and Bytes describe current in-memory occupancy.
	Entries int
	Bytes   int64
}

// Stats returns the cache's cumulative counters and occupancy.
func (sc *SummaryCache) Stats() CacheStats {
	st := sc.store.Stats()
	return CacheStats{
		Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions,
		DiskLoads: st.DiskLoads, DiskErrors: st.DiskErrors,
		RemoteLoads: st.RemoteLoads, RemoteMisses: st.RemoteMisses,
		RemotePuts: st.RemotePuts, RemoteRoundTrips: st.RemoteRoundTrips,
		RemoteErrors: st.RemoteErrors, RemoteDropped: st.RemoteDropped,
		BreakerOpens: st.BreakerOpens, Degraded: st.Degraded,
		Entries: st.Entries, Bytes: st.Bytes,
	}
}

// Has implements Store over the local tiers.
func (sc *SummaryCache) Has(fingerprints []string) []bool {
	out := make([]bool, len(fingerprints))
	for i, fp := range fingerprints {
		out[i] = sc.store.HasLocal(cache.Fingerprint(fp))
	}
	return out
}

// GetRecords implements Store over the local tiers.
func (sc *SummaryCache) GetRecords(fingerprints []string) [][]byte {
	out := make([][]byte, len(fingerprints))
	for i, fp := range fingerprints {
		if data, ok := sc.store.GetLocal(cache.Fingerprint(fp)); ok {
			out[i] = data
		}
	}
	return out
}

// PutRecords implements Store over the local tiers. records[i] is
// stored under fingerprints[i]; mismatched lengths store the common
// prefix.
func (sc *SummaryCache) PutRecords(fingerprints []string, records [][]byte) int {
	n := len(fingerprints)
	if len(records) < n {
		n = len(records)
	}
	stored := 0
	for i := 0; i < n; i++ {
		fp := cache.Fingerprint(fingerprints[i])
		if !fp.Valid() || len(records[i]) == 0 {
			continue
		}
		sc.store.PutLocal(fp, records[i])
		stored++
	}
	return stored
}

// Flush pushes records buffered for the fabric peer upstream now.
func (sc *SummaryCache) Flush() { sc.store.Flush() }

// engine seals Store and hands AnalyzeContext the incremental engine.
func (sc *SummaryCache) engine() *inc.Engine {
	if sc == nil {
		return nil
	}
	return sc.eng
}

// WithSummaryCache runs the analysis through the incremental engine
// backed by s (a Store from NewStore, or a SummaryCache from the
// deprecated constructor). The incremental engine is defined over the
// worklist fixpoint: combining this option with WithStrategy(Parallel)
// or an explicit WithStrategy(Naive) fails with ErrBadOption, as does
// WithEntry (the cache keys whole-program analyses). A nil s is a
// no-op.
func WithSummaryCache(s Store) AnalyzeOption {
	return func(c *analyzeCfg) { c.cache = s }
}

// Incremental describes the cache's share of one analysis run.
type Incremental struct {
	// SCCs is the number of call-graph components in the analyzed
	// program; WarmSCCs of them were served entirely from the cache.
	SCCs, WarmSCCs int
	// WarmPatterns is the number of calling patterns seeded from cached
	// summaries instead of being explored; ColdPatterns were probed but
	// not cached.
	WarmPatterns, ColdPatterns int64
}

// Incremental returns the cache accounting of this analysis, and ok =
// false when the analysis ran without WithSummaryCache.
func (a *Analysis) Incremental() (Incremental, bool) {
	if a.inc == nil {
		return Incremental{}, false
	}
	return Incremental{
		SCCs:         len(a.inc.Plan.SCCs),
		WarmSCCs:     a.inc.WarmSCCs,
		WarmPatterns: a.inc.Metrics.WarmHits,
		ColdPatterns: a.inc.Metrics.WarmMisses,
	}, true
}

// validateCacheOptions rejects option combinations the incremental
// engine cannot honor; called by AnalyzeContext when a cache is
// installed. An unconfigured strategy is silently upgraded to the
// worklist; only an explicit conflicting choice is an error.
func (c *analyzeCfg) validateCacheOptions() error {
	if c.strategySet && c.cfg.Strategy != core.StrategyWorklist {
		return fmt.Errorf("%w: summary cache requires the worklist strategy", ErrBadOption)
	}
	if c.entry != "" {
		return fmt.Errorf("%w: summary cache cannot be combined with WithEntry", ErrBadOption)
	}
	return nil
}
