package awam

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

const cacheProg = `
main :- qsort([2,1,3], S), use(S).
qsort([], []).
qsort([X|Xs], S) :- part(Xs, X, L, G), qsort(L, SL), qsort(G, SG), app(SL, [X|SG], S).
part([], _, [], []).
part([Y|Ys], X, [Y|L], G) :- Y =< X, part(Ys, X, L, G).
part([Y|Ys], X, L, [Y|G]) :- Y > X, part(Ys, X, L, G).
app([], Ys, Ys).
app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
use(_).
`

// TestSummaryCacheWarmRun: the facade route matches a plain worklist
// analysis byte for byte, and a second analysis of the same source is
// served entirely from the cache.
func TestSummaryCacheWarmRun(t *testing.T) {
	sys, err := Load(cacheProg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sys.Analyze(WithStrategy(Worklist))
	if err != nil {
		t.Fatal(err)
	}

	sc, err := NewStore()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := sys.Analyze(WithSummaryCache(sc))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Marshal() != ref.Marshal() {
		t.Fatal("cached cold analysis differs from plain worklist analysis")
	}
	if inc, ok := cold.Incremental(); !ok || inc.WarmSCCs != 0 {
		t.Fatalf("cold run incremental accounting = %+v, ok=%t", inc, ok)
	}

	// Fresh System: the daemon re-loads source per request.
	sys2, err := Load(cacheProg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sys2.Analyze(WithSummaryCache(sc))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Marshal() != ref.Marshal() {
		t.Fatal("cached warm analysis differs from plain worklist analysis")
	}
	inc, ok := warm.Incremental()
	if !ok {
		t.Fatal("warm run lost its incremental accounting")
	}
	if inc.SCCs == 0 || inc.WarmSCCs != inc.SCCs {
		t.Fatalf("warm run served %d/%d components", inc.WarmSCCs, inc.SCCs)
	}
	if inc.WarmPatterns == 0 {
		t.Fatal("warm run seeded no calling patterns")
	}
	m := warm.Metrics()
	if m.WarmHits == 0 || m.CacheHits == 0 {
		t.Fatalf("public metrics missing cache traffic: warm=%d cache=%d", m.WarmHits, m.CacheHits)
	}
	if st := sc.Stats(); st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("cache stats empty after two runs: %+v", st)
	}

	// The cached Analysis supports the full accessor surface.
	if s, ok := warm.Summary("qsort/2"); !ok || len(s.Args) != 2 {
		t.Fatalf("Summary on cached analysis = %+v, ok=%t", s, ok)
	}
	if !strings.Contains(warm.Determinacy(), "qsort(") {
		t.Fatal("Determinacy on cached analysis lost qsort")
	}
}

// TestSummaryCacheOptionConflicts: explicit conflicting options fail
// with ErrBadOption; compatible ones pass.
func TestSummaryCacheOptionConflicts(t *testing.T) {
	sys, err := Load(cacheProg)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewStore()
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]AnalyzeOption{
		{WithSummaryCache(sc), WithStrategy(Parallel)},
		{WithSummaryCache(sc), WithParallelism(4)},
		{WithStrategy(Naive), WithSummaryCache(sc)},
		{WithSummaryCache(sc), WithEntry("qsort(list(g), var)")},
	}
	for i, opts := range bad {
		if _, err := sys.Analyze(opts...); !errors.Is(err, ErrBadOption) {
			t.Errorf("conflict case %d: err = %v, want ErrBadOption", i, err)
		}
	}
	// Explicit Worklist and a nil cache are both fine.
	if _, err := sys.Analyze(WithSummaryCache(sc), WithStrategy(Worklist)); err != nil {
		t.Errorf("explicit worklist with cache: %v", err)
	}
	if a, err := sys.Analyze(WithSummaryCache(nil)); err != nil {
		t.Errorf("nil cache: %v", err)
	} else if _, ok := a.Incremental(); ok {
		t.Error("nil cache produced incremental accounting")
	}
}

// TestSummaryCacheIncrementalEdit: after an edit, the facade reuses the
// clean components and still matches a from-scratch analysis.
func TestSummaryCacheIncrementalEdit(t *testing.T) {
	sc, err := NewStore()
	if err != nil {
		t.Fatal(err)
	}
	base, err := Load(cacheProg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Analyze(WithSummaryCache(sc)); err != nil {
		t.Fatal(err)
	}

	edited := cacheProg + "\nuse(extra).\n"
	sysE, err := Load(edited)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sysE.Analyze(WithStrategy(Worklist))
	if err != nil {
		t.Fatal(err)
	}
	sysE2, err := Load(edited)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sysE2.Analyze(WithSummaryCache(sc))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Marshal() != ref.Marshal() {
		t.Fatal("incremental analysis of edited program differs from scratch")
	}
	inc, ok := warm.Incremental()
	if !ok || inc.WarmSCCs == 0 || inc.WarmSCCs >= inc.SCCs {
		t.Fatalf("edit should leave some components warm, some dirty: %+v", inc)
	}
}

// TestSummaryCacheDiskDir: a directory-backed cache survives a new
// SummaryCache over the same directory.
func TestSummaryCacheDiskDir(t *testing.T) {
	dir := t.TempDir()
	sc1, err := NewStore(WithDiskDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Load(cacheProg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Analyze(WithSummaryCache(sc1)); err != nil {
		t.Fatal(err)
	}

	sc2, err := NewStore(WithDiskDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := Load(cacheProg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sys2.Analyze(WithSummaryCache(sc2))
	if err != nil {
		t.Fatal(err)
	}
	inc, ok := warm.Incremental()
	if !ok || inc.WarmSCCs != inc.SCCs {
		t.Fatalf("restarted cache served %d/%d components", inc.WarmSCCs, inc.SCCs)
	}
	if st := sc2.Stats(); st.DiskLoads == 0 {
		t.Fatalf("no disk loads after restart: %+v", st)
	}
}

// TestDeprecatedNewSummaryCache: the two-arg constructor still works —
// it must behave exactly like NewStore(WithMemoryBudget, WithDiskDir).
// This is the shim's dedicated compatibility test; every other caller
// is on the option constructor (see deprecated_lint_test.go).
func TestDeprecatedNewSummaryCache(t *testing.T) {
	dir := t.TempDir()
	sc, err := NewSummaryCache(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	var _ Store = sc // the shim's result implements the new interface
	sys, err := Load(cacheProg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sys.Analyze(WithStrategy(Worklist))
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Analyze(WithSummaryCache(sc))
	if err != nil {
		t.Fatal(err)
	}
	if a.Marshal() != ref.Marshal() {
		t.Fatal("deprecated-constructor cache changed the analysis result")
	}
	// The dir took effect: a fresh store over it warm-starts fully.
	sc2, err := NewStore(WithDiskDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := Load(cacheProg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sys2.Analyze(WithSummaryCache(sc2))
	if err != nil {
		t.Fatal(err)
	}
	if inc, ok := warm.Incremental(); !ok || inc.WarmSCCs != inc.SCCs {
		t.Fatalf("shim's disk dir not shared with NewStore: %+v ok=%t", inc, ok)
	}
}

// TestStoreBatchMethods: the fabric-protocol surface of a Store —
// positional Has/GetRecords, PutRecords round trip, malformed
// fingerprints skipped.
func TestStoreBatchMethods(t *testing.T) {
	s, err := NewStore()
	if err != nil {
		t.Fatal(err)
	}
	fps := []string{"aa11", "bb22", "../evil", ""}
	if n := s.PutRecords(fps, [][]byte{[]byte("one"), []byte("two"), []byte("x"), []byte("y")}); n != 2 {
		t.Fatalf("PutRecords stored %d, want 2 (malformed fingerprints skipped)", n)
	}
	has := s.Has(fps)
	if !has[0] || !has[1] || has[2] || has[3] {
		t.Fatalf("Has = %v, want [true true false false]", has)
	}
	recs := s.GetRecords(fps)
	if string(recs[0]) != "one" || string(recs[1]) != "two" || recs[2] != nil || recs[3] != nil {
		t.Fatalf("GetRecords = %q", recs)
	}
	if st := s.Stats(); st.Entries != 2 {
		t.Fatalf("Stats.Entries = %d, want 2", st.Entries)
	}
}

// TestSummaryJSONEnums: Mode and Type marshal as their conventional
// symbols, so daemon responses are readable without the Go enum.
func TestSummaryJSONEnums(t *testing.T) {
	sys, err := Load(cacheProg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	s, ok := a.Summary("qsort/2")
	if !ok {
		t.Fatal("no qsort summary")
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	js := string(data)
	for _, want := range []string{`"Mode":"+g"`, `"CallType":"list"`} {
		if !strings.Contains(js, want) {
			t.Errorf("summary JSON missing %s:\n%s", want, js)
		}
	}
	if strings.Contains(js, `"Mode":1`) {
		t.Errorf("summary JSON leaked enum ordinals:\n%s", js)
	}
}
