package awam

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestNoDeprecatedSymbolsInCallers is a lint: the deprecated facade
// shims (WithWorklist, WithHashTable, System.Specialize, the two-arg
// NewSummaryCache constructor) exist only for source compatibility, so
// nothing in the repo besides their definitions and their dedicated
// compatibility tests may use them. Internal packages, commands,
// examples, and the docs must all be on the replacement API
// (WithStrategy, WithTable, System.Optimize, NewStore with
// WithMemoryBudget/WithDiskDir/WithRemote).
func TestNoDeprecatedSymbolsInCallers(t *testing.T) {
	deprecated := regexp.MustCompile(`\b(WithWorklist|WithHashTable|NewSummaryCache)\s*\(|\.Specialize\(`)
	roots := []string{"internal", "cmd", "examples", "api"}
	docs := []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"}

	var hits []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for i, line := range strings.Split(string(data), "\n") {
				if deprecated.MatchString(line) {
					hits = append(hits, fmt.Sprintf("%s:%d: %s", path, i+1, strings.TrimSpace(line)))
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			continue // doc not present in this checkout
		}
		for i, line := range strings.Split(string(data), "\n") {
			if deprecated.MatchString(line) {
				hits = append(hits, fmt.Sprintf("%s:%d: %s", doc, i+1, strings.TrimSpace(line)))
			}
		}
	}
	if len(hits) > 0 {
		t.Errorf("deprecated facade symbols used outside their shims:\n%s",
			strings.Join(hits, "\n"))
	}
}
