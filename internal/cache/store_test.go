package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func fpN(n int) Fingerprint {
	return Fingerprint(fmt.Sprintf("%016x", n))
}

func TestGetPutAndStats(t *testing.T) {
	s, err := NewStore(1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(fpN(1)); ok {
		t.Fatal("hit on empty store")
	}
	s.Put(fpN(1), []byte("hello"))
	got, ok := s.Get(fpN(1))
	if !ok || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestByteBudgetEviction(t *testing.T) {
	s, err := NewStore(100, "")
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 40)
	for i := 0; i < 4; i++ {
		s.Put(fpN(i), val)
	}
	st := s.Stats()
	if st.Bytes > 100 {
		t.Fatalf("bytes %d over budget", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions")
	}
	// LRU order: the most recent records survive.
	if _, ok := s.Get(fpN(3)); !ok {
		t.Fatal("most recent record evicted")
	}
	if _, ok := s.Get(fpN(0)); ok {
		t.Fatal("oldest record survived a full budget")
	}
}

func TestLRUTouchOnGet(t *testing.T) {
	s, _ := NewStore(100, "")
	val := make([]byte, 40)
	s.Put(fpN(0), val)
	s.Put(fpN(1), val)
	s.Get(fpN(0)) // refresh 0; 1 becomes LRU
	s.Put(fpN(2), val)
	if _, ok := s.Get(fpN(0)); !ok {
		t.Fatal("refreshed record evicted")
	}
	if _, ok := s.Get(fpN(1)); ok {
		t.Fatal("stale record survived")
	}
}

// TestOversizedRecordStaysResident: one record above the whole budget is
// kept (evicting the value just stored would guarantee misses forever).
func TestOversizedRecordStaysResident(t *testing.T) {
	s, _ := NewStore(10, "")
	s.Put(fpN(1), make([]byte, 100))
	if _, ok := s.Get(fpN(1)); !ok {
		t.Fatal("oversized record evicted")
	}
}

func TestDiskPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(fpN(7), []byte("persisted"))
	if _, err := os.Stat(filepath.Join(dir, string(fpN(7))+".scc")); err != nil {
		t.Fatalf("record file missing: %v", err)
	}

	// A fresh store over the same directory faults the record in.
	s2, err := NewStore(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(fpN(7))
	if !ok || string(got) != "persisted" {
		t.Fatalf("disk Get = %q, %v", got, ok)
	}
	st := s2.Stats()
	if st.DiskLoads != 1 || st.Hits != 1 {
		t.Fatalf("stats after disk load = %+v", st)
	}
	// Now resident: a second Get does not touch disk.
	if _, ok := s2.Get(fpN(7)); !ok {
		t.Fatal("resident record lost")
	}
	if st := s2.Stats(); st.DiskLoads != 1 {
		t.Fatalf("unexpected second disk load: %+v", st)
	}
}

// TestEvictionKeepsDiskCopy: a budget eviction only drops the in-memory
// copy; the persisted record is still served afterwards.
func TestEvictionKeepsDiskCopy(t *testing.T) {
	dir := t.TempDir()
	s, _ := NewStore(100, dir)
	val := make([]byte, 60)
	s.Put(fpN(0), val)
	s.Put(fpN(1), val) // evicts 0 from memory
	got, ok := s.Get(fpN(0))
	if !ok || len(got) != 60 {
		t.Fatal("evicted record not re-served from disk")
	}
	if st := s.Stats(); st.DiskLoads != 1 {
		t.Fatalf("expected a disk load: %+v", st)
	}
}

// TestHostileFingerprints: non-hex names never touch the filesystem.
func TestHostileFingerprints(t *testing.T) {
	dir := t.TempDir()
	s, _ := NewStore(1<<20, dir)
	for _, fp := range []Fingerprint{"", "../evil", "a/b", "ABCDEF", Fingerprint(make([]byte, 200))} {
		s.Put(fp, []byte("x"))
		if _, ok := s.Get(fp); ok {
			t.Fatalf("hostile fingerprint %q accepted", fp)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("hostile fingerprints created files: %v", ents)
	}
}

// TestConcurrentAccess hammers the store from many goroutines; run
// under -race in CI.
func TestConcurrentAccess(t *testing.T) {
	s, _ := NewStore(10_000, "")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				fp := fpN(i % 37)
				if i%3 == 0 {
					s.Put(fp, []byte("some record payload"))
				} else {
					s.Get(fp)
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Bytes > 10_000 {
		t.Fatalf("budget exceeded after concurrent load: %+v", st)
	}
}
