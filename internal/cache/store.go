// Package cache implements the tiered content-addressed summary store
// behind the incremental analysis engine (internal/inc) — the node-local
// end of the distributed summary fabric.
//
// A Store composes up to three tiers, probed nearest first:
//
//	memory  — byte-budgeted LRU of records (mem.go, always present)
//	disk    — fingerprint-named files in a directory (disk.go, optional)
//	remote  — a peer daemon's store over a batched has/get/put HTTP
//	          protocol (remote.go, optional)
//
// A hit in a far tier promotes the record into the nearer ones; puts
// write through memory and disk and buffer an upstream push that Flush
// ships in batches. Every tier failure — disk errors, peer outages,
// slow, corrupt or oversized payloads — degrades to a miss on the
// composed Get, so callers above the ChunkStore interface never see
// the fabric, only a cache with a variable hit rate.
//
// Records are addressed by their producer's content fingerprint — a
// hash covering an SCC's compiled WAM code and the fingerprints of its
// transitive callees — so a record can never be served for changed
// code: any edit in the cone changes the address. That makes the store
// itself trivial: no invalidation protocol, no versioned keys, just
// get/put by fingerprint, and it is what makes cross-tenant sharing
// safe — identical library components hash identically in every user's
// program. Values are opaque bytes (the inc package owns the record
// format); the store only moves, budgets and persists them.
package cache

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Fingerprint is the content address of one record: the hex form of the
// producer's SCC hash. The store treats it as an opaque file-name-safe
// token; Validate rejects anything else so hostile fingerprints cannot
// escape the cache directory.
type Fingerprint string

// valid reports whether fp is a plausible content address: non-empty
// lowercase hex, bounded length. Everything the inc package produces
// passes; path separators, "..", and other hostile names do not.
func (fp Fingerprint) valid() bool {
	if len(fp) == 0 || len(fp) > 128 {
		return false
	}
	for i := 0; i < len(fp); i++ {
		c := fp[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Valid reports whether fp is a well-formed content address (the
// fabric endpoints validate peer-supplied fingerprints with it).
func (fp Fingerprint) Valid() bool { return fp.valid() }

// Stats is a point-in-time snapshot of store traffic and occupancy.
type Stats struct {
	// Hits and Misses count composed Get probes; a Get served by any
	// tier is one hit (tier attribution is DiskLoads/RemoteLoads).
	// Evictions counts records dropped from memory by the byte budget;
	// persisted copies survive eviction.
	Hits, Misses, Evictions int64
	// DiskLoads counts records faulted in from the cache directory;
	// DiskErrors counts persistence failures (the store degrades to
	// memory-only rather than failing the analysis).
	DiskLoads, DiskErrors int64
	// Remote-tier traffic. RemoteLoads counts records faulted in from
	// the peer (Prefetch included); RemoteMisses records the peer was
	// asked for but did not serve; RemotePuts records the peer accepted;
	// RemoteRoundTrips HTTP exchanges attempted; RemoteErrors failed
	// exchanges plus corrupt/oversized records dropped; RemoteDropped
	// buffered upstream pushes abandoned (overflow or failed flush);
	// BreakerOpens circuit-breaker open events. Degraded is true while
	// the breaker is open and the store is serving from local tiers
	// only.
	RemoteLoads, RemoteMisses, RemotePuts int64
	RemoteRoundTrips, RemoteErrors        int64
	RemoteDropped, BreakerOpens           int64
	Degraded                              bool
	// Entries and Bytes describe current in-memory occupancy.
	Entries int
	Bytes   int64
}

// ChunkStore is the storage contract the incremental engine analyzes
// against: a content-addressed get/put record store. *Store implements
// it over the tier stack; tests substitute flat fakes.
type ChunkStore interface {
	// Get returns the record stored under fp, or ok=false. The returned
	// bytes are shared — callers must not mutate them.
	Get(fp Fingerprint) ([]byte, bool)
	// Put stores data under fp, replacing any previous record.
	Put(fp Fingerprint, data []byte)
	// Stats snapshots the store's counters and occupancy.
	Stats() Stats
}

// Store is the tiered summary store. Safe for concurrent use; the
// memory tier takes one short mutex hold per operation and all disk and
// network I/O happens outside it.
type Store struct {
	mem    *memTier
	disk   *diskTier   // nil: memory-only
	remote *remoteTier // nil: no fabric peer

	hits, misses atomic.Int64
}

var _ ChunkStore = (*Store)(nil)

// DefaultBudget is the in-memory byte budget used when none is
// configured: large enough for thousands of SCC records, small enough
// to be irrelevant next to the analyzer's own working set.
const DefaultBudget = 64 << 20

// Option configures New.
type Option func(*storeConfig)

type storeConfig struct {
	budget     int64
	dir        string
	remoteURL  string
	remoteOpts []RemoteOption
}

// WithMemoryBudget sets the in-memory byte budget (non-positive selects
// DefaultBudget).
func WithMemoryBudget(n int64) Option {
	return func(c *storeConfig) { c.budget = n }
}

// WithDir enables the disk tier: records persist as <fingerprint>.scc
// files in dir, survive restarts, and re-serve evicted records.
func WithDir(dir string) Option {
	return func(c *storeConfig) { c.dir = dir }
}

// WithRemoteURL enables the remote tier against the daemon at base
// (e.g. "http://10.0.0.7:8347"), reached through the batched
// /v1/store/{has,get,put} protocol.
func WithRemoteURL(base string, opts ...RemoteOption) Option {
	return func(c *storeConfig) {
		c.remoteURL = base
		c.remoteOpts = opts
	}
}

// New builds a tiered store from options. Memory-only construction
// cannot fail; the disk tier fails if its directory cannot be created.
func New(opts ...Option) (*Store, error) {
	var c storeConfig
	for _, o := range opts {
		o(&c)
	}
	s := &Store{mem: newMemTier(c.budget)}
	if c.dir != "" {
		d, err := newDiskTier(c.dir)
		if err != nil {
			return nil, fmt.Errorf("cache: create dir: %w", err)
		}
		s.disk = d
	}
	if c.remoteURL != "" {
		s.remote = newRemoteTier(c.remoteURL, c.remoteOpts...)
	}
	return s, nil
}

// NewStore returns a store with the given in-memory byte budget
// (non-positive selects DefaultBudget) and, when dir is non-empty, a
// disk tier in dir. It predates the option constructor; New is the
// general form.
func NewStore(budget int64, dir string) (*Store, error) {
	return New(WithMemoryBudget(budget), WithDir(dir))
}

// Get returns the record stored under fp, or ok=false, probing memory,
// then disk, then the fabric peer; far-tier hits promote the record
// into the nearer tiers.
func (s *Store) Get(fp Fingerprint) ([]byte, bool) {
	if !fp.valid() {
		return nil, false
	}
	if data, ok := s.mem.get(fp); ok {
		s.hits.Add(1)
		return data, true
	}
	if s.disk != nil {
		if data, ok := s.disk.get(fp); ok {
			s.hits.Add(1)
			s.mem.put(fp, data)
			return data, true
		}
	}
	if s.remote != nil {
		if data, ok := s.remote.getOne(fp); ok {
			s.hits.Add(1)
			s.promote(fp, data)
			return data, true
		}
	}
	s.misses.Add(1)
	return nil, false
}

// GetLocal is Get restricted to the memory and disk tiers. The fabric
// endpoints serve peers with it so a cycle of daemons can never chase
// each other's remote tiers.
func (s *Store) GetLocal(fp Fingerprint) ([]byte, bool) {
	if !fp.valid() {
		return nil, false
	}
	if data, ok := s.mem.get(fp); ok {
		s.hits.Add(1)
		return data, true
	}
	if s.disk != nil {
		if data, ok := s.disk.get(fp); ok {
			s.hits.Add(1)
			s.mem.put(fp, data)
			return data, true
		}
	}
	s.misses.Add(1)
	return nil, false
}

// HasLocal reports whether the memory or disk tier holds fp, without
// touching recency or stats (the fabric's presence probes must not
// distort hit rates).
func (s *Store) HasLocal(fp Fingerprint) bool {
	if !fp.valid() {
		return false
	}
	if s.mem.has(fp) {
		return true
	}
	return s.disk != nil && s.disk.has(fp)
}

// promote writes a remotely-faulted record into the local tiers.
func (s *Store) promote(fp Fingerprint, data []byte) {
	s.mem.put(fp, data)
	if s.disk != nil {
		s.disk.put(fp, data)
	}
}

// Prefetch batch-faults the given fingerprints from the fabric peer
// into the local tiers, skipping those already local. The incremental
// engine calls it with a program's full component fingerprint set
// before warm-starting, turning up to len(fps) per-component round
// trips into a handful of batched ones. Without a remote tier it is
// free.
func (s *Store) Prefetch(fps []Fingerprint) {
	if s.remote == nil || len(fps) == 0 {
		return
	}
	want := fps[:0:0]
	seen := make(map[Fingerprint]bool, len(fps))
	for _, fp := range fps {
		if !fp.valid() || seen[fp] || s.HasLocal(fp) {
			continue
		}
		seen[fp] = true
		want = append(want, fp)
	}
	if len(want) == 0 {
		return
	}
	recs := s.remote.get(want)
	// Promote in sorted order so disk writes are deterministic for
	// tests that diff cache directories.
	ordered := make([]Fingerprint, 0, len(recs))
	for fp := range recs {
		ordered = append(ordered, fp)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, fp := range ordered {
		s.promote(fp, recs[fp])
	}
}

// Put stores data under fp, replacing any previous record: memory and
// disk are written through, and when a fabric peer is configured the
// record is buffered for the next Flush. Persistence failures are
// counted (Stats.DiskErrors) but not returned: a broken disk degrades
// the store to memory-only instead of failing analyses.
func (s *Store) Put(fp Fingerprint, data []byte) {
	if !fp.valid() {
		return
	}
	s.mem.put(fp, data)
	if s.disk != nil {
		s.disk.put(fp, data)
	}
	if s.remote != nil {
		s.remote.enqueue(fp, data)
	}
}

// PutLocal stores data in the memory and disk tiers only — the write
// path of the fabric endpoints, which must not re-push records they
// were pushed (unbounded amplification in daemon cycles otherwise).
func (s *Store) PutLocal(fp Fingerprint, data []byte) {
	if !fp.valid() {
		return
	}
	s.mem.put(fp, data)
	if s.disk != nil {
		s.disk.put(fp, data)
	}
}

// Flush pushes buffered records to the fabric peer (a has round trip
// filters records the peer already holds, then batched puts ship the
// rest). The incremental engine flushes once per analysis; it is a
// no-op without a remote tier.
func (s *Store) Flush() {
	if s.remote != nil {
		s.remote.flush()
	}
}

// Remote reports whether a fabric peer is configured.
func (s *Store) Remote() bool { return s.remote != nil }

// Stats returns a snapshot of the store's counters and occupancy.
func (s *Store) Stats() Stats {
	st := Stats{
		Hits:   s.hits.Load(),
		Misses: s.misses.Load(),
	}
	entries, bytes, evictions := s.mem.occupancy()
	st.Entries = entries
	st.Bytes = bytes
	st.Evictions = evictions
	if s.disk != nil {
		st.DiskLoads = s.disk.loads.Load()
		st.DiskErrors = s.disk.errors.Load()
	}
	if s.remote != nil {
		st.RemoteLoads = s.remote.loads.Load()
		st.RemoteMisses = s.remote.misses.Load()
		st.RemotePuts = s.remote.puts.Load()
		st.RemoteRoundTrips = s.remote.roundTrips.Load()
		st.RemoteErrors = s.remote.errors.Load()
		st.RemoteDropped = s.remote.dropped.Load()
		st.BreakerOpens = s.remote.opens.Load()
		st.Degraded = s.remote.degraded()
	}
	return st
}
