// Package cache implements the content-addressed summary store behind
// the incremental analysis engine (internal/inc): a byte-budgeted
// in-memory LRU of serialized per-SCC summary records, optionally
// persisted to a directory of fingerprint-named files.
//
// Records are addressed by their producer's content fingerprint — a
// hash covering an SCC's compiled WAM code and the fingerprints of its
// transitive callees — so a record can never be served for changed
// code: any edit in the cone changes the address. That makes the store
// itself trivial: no invalidation protocol, no versioned keys, just
// get/put by fingerprint. Values are opaque bytes (the inc package owns
// the record format); the store only moves, budgets and persists them.
package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Fingerprint is the content address of one record: the hex form of the
// producer's SCC hash. The store treats it as an opaque file-name-safe
// token; Validate rejects anything else so hostile fingerprints cannot
// escape the cache directory.
type Fingerprint string

// valid reports whether fp is a plausible content address: non-empty
// lowercase hex, bounded length. Everything the inc package produces
// passes; path separators, "..", and other hostile names do not.
func (fp Fingerprint) valid() bool {
	if len(fp) == 0 || len(fp) > 128 {
		return false
	}
	for i := 0; i < len(fp); i++ {
		c := fp[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Stats is a point-in-time snapshot of store traffic and occupancy.
type Stats struct {
	// Hits and Misses count Get probes (a disk-served Get is a hit that
	// also increments DiskLoads). Evictions counts records dropped from
	// memory by the byte budget; persisted copies survive eviction.
	Hits, Misses, Evictions int64
	// DiskLoads counts records faulted in from the cache directory;
	// DiskErrors counts persistence failures (the store degrades to
	// memory-only rather than failing the analysis).
	DiskLoads, DiskErrors int64
	// Entries and Bytes describe current in-memory occupancy.
	Entries int
	Bytes   int64
}

// rec is one resident record in the LRU's intrusive list.
type rec struct {
	fp         Fingerprint
	data       []byte
	prev, next *rec
}

// Store is the summary store. Safe for concurrent use; Get and Put take
// one short mutex hold (disk I/O happens outside it).
type Store struct {
	mu    sync.Mutex
	index map[Fingerprint]*rec
	// head is most recently used, tail least; a ring would save the nil
	// checks but the two-pointer list keeps eviction obvious.
	head, tail *rec
	bytes      int64
	budget     int64
	dir        string
	stats      Stats
}

// DefaultBudget is the in-memory byte budget used when NewStore is
// given a non-positive one: large enough for thousands of SCC records,
// small enough to be irrelevant next to the analyzer's own working set.
const DefaultBudget = 64 << 20

// NewStore returns a store with the given in-memory byte budget
// (non-positive selects DefaultBudget). dir, when non-empty, enables
// persistence: records are written as <fingerprint>.scc files and Get
// faults missing records in from disk. The directory is created if
// needed.
func NewStore(budget int64, dir string) (*Store, error) {
	if budget <= 0 {
		budget = DefaultBudget
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: create dir: %w", err)
		}
	}
	return &Store{index: make(map[Fingerprint]*rec), budget: budget, dir: dir}, nil
}

// unlink removes r from the recency list.
func (s *Store) unlink(r *rec) {
	if r.prev != nil {
		r.prev.next = r.next
	} else {
		s.head = r.next
	}
	if r.next != nil {
		r.next.prev = r.prev
	} else {
		s.tail = r.prev
	}
	r.prev, r.next = nil, nil
}

// pushFront makes r the most recently used record.
func (s *Store) pushFront(r *rec) {
	r.next = s.head
	if s.head != nil {
		s.head.prev = r
	}
	s.head = r
	if s.tail == nil {
		s.tail = r
	}
}

// evict drops least-recently-used records until the budget holds. A
// single record larger than the whole budget is kept resident anyway —
// dropping the value just fetched would turn the store into a miss
// machine — so the budget is a high-water target, exact once at least
// two records exist.
func (s *Store) evict() {
	for s.bytes > s.budget && s.tail != nil && s.tail != s.head {
		r := s.tail
		s.unlink(r)
		delete(s.index, r.fp)
		s.bytes -= int64(len(r.data))
		s.stats.Evictions++
	}
}

// Get returns the record stored under fp, or ok=false. The returned
// bytes are shared — callers must not mutate them. When a cache
// directory is configured, a memory miss falls through to disk and
// faults the record back into memory.
func (s *Store) Get(fp Fingerprint) ([]byte, bool) {
	if !fp.valid() {
		return nil, false
	}
	s.mu.Lock()
	if r := s.index[fp]; r != nil {
		s.unlink(r)
		s.pushFront(r)
		s.stats.Hits++
		data := r.data
		s.mu.Unlock()
		return data, true
	}
	dir := s.dir
	s.mu.Unlock()

	if dir != "" {
		data, err := os.ReadFile(s.path(fp))
		if err == nil {
			s.mu.Lock()
			s.stats.Hits++
			s.stats.DiskLoads++
			s.insertLocked(fp, data)
			s.mu.Unlock()
			return data, true
		}
	}
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
	return nil, false
}

// insertLocked adds (or refreshes) a record under s.mu.
func (s *Store) insertLocked(fp Fingerprint, data []byte) {
	if r := s.index[fp]; r != nil {
		s.bytes += int64(len(data)) - int64(len(r.data))
		r.data = data
		s.unlink(r)
		s.pushFront(r)
	} else {
		r := &rec{fp: fp, data: data}
		s.index[fp] = r
		s.pushFront(r)
		s.bytes += int64(len(data))
	}
	s.evict()
}

// Put stores data under fp, replacing any previous record, and persists
// it when a cache directory is configured. Persistence failures are
// counted (Stats.DiskErrors) but not returned: a broken disk degrades
// the store to memory-only instead of failing analyses.
func (s *Store) Put(fp Fingerprint, data []byte) {
	if !fp.valid() {
		return
	}
	s.mu.Lock()
	s.insertLocked(fp, data)
	dir := s.dir
	s.mu.Unlock()

	if dir == "" {
		return
	}
	if err := s.persist(fp, data); err != nil {
		s.mu.Lock()
		s.stats.DiskErrors++
		s.mu.Unlock()
	}
}

// path is the on-disk location of fp's record.
func (s *Store) path(fp Fingerprint) string {
	return filepath.Join(s.dir, string(fp)+".scc")
}

// persist writes the record atomically (temp file + rename), so a
// concurrent reader or a crash never observes a torn record.
func (s *Store) persist(fp Fingerprint, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, "."+string(fp)+".tmp*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, s.path(fp)); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// Stats returns a snapshot of the store's counters and occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.index)
	st.Bytes = s.bytes
	return st
}
