package cache

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakePeer is an in-memory implementation of the /v1/store protocol,
// with injectable failure behavior per request.
type fakePeer struct {
	mu   sync.Mutex
	recs map[string][]byte

	// requests counts protocol hits; intercept, when set, gets the
	// first say on every request (return true = response written).
	requests  atomic.Int64
	intercept func(w http.ResponseWriter, r *http.Request, n int64) bool
}

func newFakePeer() *fakePeer { return &fakePeer{recs: map[string][]byte{}} }

func (p *fakePeer) server(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(p.handle))
	t.Cleanup(ts.Close)
	return ts
}

func (p *fakePeer) handle(w http.ResponseWriter, r *http.Request) {
	n := p.requests.Add(1)
	if p.intercept != nil && p.intercept(w, r, n) {
		return
	}
	switch r.URL.Path {
	case "/v1/store/has":
		var req HasRequest
		json.NewDecoder(r.Body).Decode(&req)
		resp := HasResponse{Present: make([]bool, len(req.Fingerprints))}
		p.mu.Lock()
		for i, fp := range req.Fingerprints {
			_, resp.Present[i] = p.recs[fp]
		}
		p.mu.Unlock()
		json.NewEncoder(w).Encode(resp)
	case "/v1/store/get":
		var req GetRequest
		json.NewDecoder(r.Body).Decode(&req)
		resp := GetResponse{}
		p.mu.Lock()
		for _, fp := range req.Fingerprints {
			if data, ok := p.recs[fp]; ok {
				resp.Records = append(resp.Records, WireRecord{Fingerprint: fp, Data: data})
			}
		}
		p.mu.Unlock()
		json.NewEncoder(w).Encode(resp)
	case "/v1/store/put":
		var req PutRequest
		json.NewDecoder(r.Body).Decode(&req)
		p.mu.Lock()
		for _, rec := range req.Records {
			p.recs[rec.Fingerprint] = rec.Data
		}
		p.mu.Unlock()
		json.NewEncoder(w).Encode(PutResponse{Stored: len(req.Records)})
	default:
		http.NotFound(w, r)
	}
}

// fastRemote returns RemoteOptions that keep test retries snappy.
func fastRemote(extra ...RemoteOption) []RemoteOption {
	return append([]RemoteOption{
		WithRemoteTimeout(500 * time.Millisecond),
		WithRemoteBackoff(time.Millisecond),
	}, extra...)
}

// TestRemoteFaultAndFlush: the happy path — puts buffer until Flush,
// flush has-filters records the peer already holds, and a cold store
// faults records back over the wire, promoting them locally.
func TestRemoteFaultAndFlush(t *testing.T) {
	peer := newFakePeer()
	peer.recs["cc33"] = []byte("already-there")
	ts := peer.server(t)

	a, err := New(WithRemoteURL(ts.URL, fastRemote()...))
	if err != nil {
		t.Fatal(err)
	}
	a.Put("aa11", []byte("alpha"))
	a.Put("bb22", []byte("beta"))
	a.Put("cc33", []byte("already-there"))
	if len(peer.recs) != 1 {
		t.Fatal("puts reached the peer before Flush")
	}
	a.Flush()
	peer.mu.Lock()
	stored := len(peer.recs)
	peer.mu.Unlock()
	if stored != 3 {
		t.Fatalf("peer holds %d records after flush, want 3", stored)
	}
	if st := a.Stats(); st.RemotePuts != 2 {
		t.Fatalf("RemotePuts = %d, want 2 (cc33 filtered by has)", st.RemotePuts)
	}

	b, err := New(WithRemoteURL(ts.URL, fastRemote()...))
	if err != nil {
		t.Fatal(err)
	}
	if data, ok := b.Get("aa11"); !ok || string(data) != "alpha" {
		t.Fatalf("remote fault = %q, %t", data, ok)
	}
	// Promoted: the second Get must not touch the peer.
	before := peer.requests.Load()
	if _, ok := b.Get("aa11"); !ok {
		t.Fatal("promoted record lost")
	}
	if peer.requests.Load() != before {
		t.Fatal("second Get of a promoted record went remote")
	}
	st := b.Stats()
	if st.RemoteLoads != 1 || st.Degraded {
		t.Fatalf("stats after fault-in: %+v", st)
	}

	// Prefetch batches: ask for everything, then serve all locally.
	c, err := New(WithRemoteURL(ts.URL, fastRemote()...))
	if err != nil {
		t.Fatal(err)
	}
	base := peer.requests.Load()
	c.Prefetch([]Fingerprint{"aa11", "bb22", "cc33", "aa11", "9999"})
	if got := peer.requests.Load() - base; got != 1 {
		t.Fatalf("prefetch of 4 distinct fingerprints took %d round trips, want 1", got)
	}
	for _, fp := range []Fingerprint{"aa11", "bb22", "cc33"} {
		if !c.HasLocal(fp) {
			t.Fatalf("prefetch did not promote %s", fp)
		}
	}
	if c.HasLocal("9999") {
		t.Fatal("prefetch invented a record the peer does not hold")
	}
}

// TestRemoteFlakyRetries: a peer that 503s twice then recovers is
// absorbed by the retry loop — the fetch succeeds, no breaker opens.
func TestRemoteFlakyRetries(t *testing.T) {
	peer := newFakePeer()
	peer.recs["aa11"] = []byte("alpha")
	peer.intercept = func(w http.ResponseWriter, r *http.Request, n int64) bool {
		if n <= 2 {
			http.Error(w, "wobble", http.StatusServiceUnavailable)
			return true
		}
		return false
	}
	ts := peer.server(t)

	s, err := New(WithRemoteURL(ts.URL, fastRemote(WithRemoteRetries(2))...))
	if err != nil {
		t.Fatal(err)
	}
	data, ok := s.Get("aa11")
	if !ok || string(data) != "alpha" {
		t.Fatalf("flaky peer: Get = %q, %t", data, ok)
	}
	st := s.Stats()
	if st.RemoteRoundTrips != 3 || st.RemoteErrors != 2 {
		t.Fatalf("round trips / errors = %d / %d, want 3 / 2", st.RemoteRoundTrips, st.RemoteErrors)
	}
	if st.BreakerOpens != 0 || st.Degraded {
		t.Fatalf("retry success still opened the breaker: %+v", st)
	}
}

// TestRemoteBreaker: a dead peer opens the breaker after the threshold
// of consecutive failures; while open, operations are immediate local
// misses with no round trips; after the cooldown a probe goes through
// and a recovered peer closes it.
func TestRemoteBreaker(t *testing.T) {
	var down atomic.Bool
	down.Store(true)
	peer := newFakePeer()
	peer.recs["aa11"] = []byte("alpha")
	peer.intercept = func(w http.ResponseWriter, r *http.Request, n int64) bool {
		if down.Load() {
			http.Error(w, "dead", http.StatusInternalServerError)
			return true
		}
		return false
	}
	ts := peer.server(t)

	s, err := New(WithRemoteURL(ts.URL, fastRemote(
		WithRemoteRetries(0),
		WithRemoteBreaker(3, 200*time.Millisecond),
	)...))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := s.Get("aa11"); ok {
			t.Fatal("dead peer served a record")
		}
	}
	st := s.Stats()
	if st.BreakerOpens != 1 || !st.Degraded {
		t.Fatalf("after 3 failures: opens=%d degraded=%t", st.BreakerOpens, st.Degraded)
	}
	// Open breaker: no traffic, still only misses — never an error.
	trips := peer.requests.Load()
	for i := 0; i < 5; i++ {
		if _, ok := s.Get("aa11"); ok {
			t.Fatal("open breaker served a record")
		}
		s.Put(Fingerprint(fmt.Sprintf("dd%02d", i)), []byte("x"))
	}
	s.Flush()
	if peer.requests.Load() != trips {
		t.Fatal("open breaker let traffic through")
	}

	// Recovery: peer comes back, cooldown expires, the probe closes it.
	down.Store(false)
	time.Sleep(250 * time.Millisecond)
	if data, ok := s.Get("aa11"); !ok || string(data) != "alpha" {
		t.Fatalf("after recovery: Get = %q, %t", data, ok)
	}
	if st := s.Stats(); st.Degraded {
		t.Fatal("breaker still open after a successful probe")
	}
}

// TestRemoteSlowPeer: a peer slower than the per-batch deadline is a
// miss, not a hang — the Get returns within a few deadlines.
func TestRemoteSlowPeer(t *testing.T) {
	peer := newFakePeer()
	peer.intercept = func(w http.ResponseWriter, r *http.Request, n int64) bool {
		time.Sleep(300 * time.Millisecond)
		return false
	}
	ts := peer.server(t)

	s, err := New(WithRemoteURL(ts.URL,
		WithRemoteTimeout(50*time.Millisecond),
		WithRemoteBackoff(time.Millisecond),
		WithRemoteRetries(1),
	))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, ok := s.Get("aa11"); ok {
		t.Fatal("slow peer produced a record")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("slow peer stalled the store for %s", el)
	}
	st := s.Stats()
	if st.RemoteErrors == 0 || st.Misses != 1 {
		t.Fatalf("timeout accounting: %+v", st)
	}
}

// TestRemoteCorruptPayloads: malformed JSON and malformed records —
// wrong fingerprints, records never asked for, empty and oversized
// data — are all dropped as misses; nothing corrupt enters the local
// tiers.
func TestRemoteCorruptPayloads(t *testing.T) {
	cases := []struct {
		name string
		body func(req GetRequest) string
	}{
		{"truncated_json", func(GetRequest) string { return `{"records": [` }},
		{"not_json", func(GetRequest) string { return "<html>proxy error</html>" }},
		{"wrong_fingerprint", func(GetRequest) string {
			return `{"records":[{"fingerprint":"ZZ-not-hex","data":"aGk="}]}`
		}},
		{"unrequested_record", func(GetRequest) string {
			return `{"records":[{"fingerprint":"dddd","data":"aGk="}]}`
		}},
		{"empty_data", func(req GetRequest) string {
			return fmt.Sprintf(`{"records":[{"fingerprint":%q,"data":""}]}`, req.Fingerprints[0])
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			peer := newFakePeer()
			peer.intercept = func(w http.ResponseWriter, r *http.Request, n int64) bool {
				var req GetRequest
				json.NewDecoder(r.Body).Decode(&req)
				fmt.Fprint(w, tc.body(req))
				return true
			}
			ts := peer.server(t)
			s, err := New(WithRemoteURL(ts.URL, fastRemote(WithRemoteRetries(0))...))
			if err != nil {
				t.Fatal(err)
			}
			if data, ok := s.Get("aa11"); ok {
				t.Fatalf("corrupt payload served a record: %q", data)
			}
			if s.HasLocal("aa11") || s.HasLocal("dddd") {
				t.Fatal("corrupt payload contaminated the local tiers")
			}
			if st := s.Stats(); st.Misses != 1 {
				t.Fatalf("corrupt payload accounting: %+v", st)
			}
		})
	}
}

// TestRemoteOversizedRecord: a record over the wire cap is treated as
// corrupt — skipped, counted, never promoted.
func TestRemoteOversizedRecord(t *testing.T) {
	peer := newFakePeer()
	peer.recs["aa11"] = make([]byte, 256)
	ts := peer.server(t)

	s, err := New(WithRemoteURL(ts.URL, fastRemote(WithRemoteMaxRecordBytes(128))...))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("aa11"); ok {
		t.Fatal("oversized record served")
	}
	if s.HasLocal("aa11") {
		t.Fatal("oversized record promoted")
	}
	st := s.Stats()
	if st.RemoteErrors == 0 {
		t.Fatalf("oversized record not counted as an error: %+v", st)
	}

	// Outbound: an oversized Put never leaves the building.
	s.Put("bb22", make([]byte, 256))
	s.Flush()
	peer.mu.Lock()
	_, shipped := peer.recs["bb22"]
	peer.mu.Unlock()
	if shipped {
		t.Fatal("oversized record shipped upstream")
	}
	if st := s.Stats(); st.RemoteDropped == 0 {
		t.Fatalf("oversized put not counted as dropped: %+v", st)
	}
	// But it stays available locally.
	if _, ok := s.Get("bb22"); !ok {
		t.Fatal("oversized record lost locally")
	}
}

// TestRemoteNoRetryOn4xx: a 400 means the client is wrong; retrying
// cannot help and must not happen.
func TestRemoteNoRetryOn4xx(t *testing.T) {
	peer := newFakePeer()
	peer.intercept = func(w http.ResponseWriter, r *http.Request, n int64) bool {
		http.Error(w, `{"error":{"code":"batch_too_large","message":"no"}}`, http.StatusBadRequest)
		return true
	}
	ts := peer.server(t)

	s, err := New(WithRemoteURL(ts.URL, fastRemote(WithRemoteRetries(3))...))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("aa11"); ok {
		t.Fatal("4xx served a record")
	}
	if got := peer.requests.Load(); got != 1 {
		t.Fatalf("4xx retried: %d round trips, want 1", got)
	}
}

// TestRemoteBatching: more fingerprints than the batch cap split into
// ceil(n/cap) round trips, and every record still arrives.
func TestRemoteBatching(t *testing.T) {
	peer := newFakePeer()
	var fps []Fingerprint
	for i := 0; i < 10; i++ {
		fp := fmt.Sprintf("%04x", i)
		peer.recs[fp] = []byte("v" + fp)
		fps = append(fps, Fingerprint(fp))
	}
	ts := peer.server(t)

	s, err := New(WithRemoteURL(ts.URL, fastRemote(WithRemoteMaxBatch(4))...))
	if err != nil {
		t.Fatal(err)
	}
	s.Prefetch(fps)
	if got := peer.requests.Load(); got != 3 {
		t.Fatalf("10 fingerprints at batch cap 4 took %d round trips, want 3", got)
	}
	for _, fp := range fps {
		if data, ok := s.GetLocal(fp); !ok || string(data) != "v"+string(fp) {
			t.Fatalf("batched prefetch lost %s: %q, %t", fp, data, ok)
		}
	}
	if st := s.Stats(); st.RemoteLoads != 10 {
		t.Fatalf("RemoteLoads = %d, want 10", st.RemoteLoads)
	}
}
