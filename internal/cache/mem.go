package cache

import "sync"

// memTier is the first tier: a byte-budgeted in-memory LRU of records.
// It is the only tier that owns recency state; the disk and remote
// tiers are fault-in sources that promote records here.
type memTier struct {
	mu    sync.Mutex
	index map[Fingerprint]*rec
	// head is most recently used, tail least; a ring would save the nil
	// checks but the two-pointer list keeps eviction obvious.
	head, tail *rec
	bytes      int64
	budget     int64
	evictions  int64
}

// rec is one resident record in the LRU's intrusive list.
type rec struct {
	fp         Fingerprint
	data       []byte
	prev, next *rec
}

func newMemTier(budget int64) *memTier {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &memTier{index: make(map[Fingerprint]*rec), budget: budget}
}

// unlink removes r from the recency list.
func (m *memTier) unlink(r *rec) {
	if r.prev != nil {
		r.prev.next = r.next
	} else {
		m.head = r.next
	}
	if r.next != nil {
		r.next.prev = r.prev
	} else {
		m.tail = r.prev
	}
	r.prev, r.next = nil, nil
}

// pushFront makes r the most recently used record.
func (m *memTier) pushFront(r *rec) {
	r.next = m.head
	if m.head != nil {
		m.head.prev = r
	}
	m.head = r
	if m.tail == nil {
		m.tail = r
	}
}

// evict drops least-recently-used records until the budget holds. A
// single record larger than the whole budget is kept resident anyway —
// dropping the value just fetched would turn the store into a miss
// machine — so the budget is a high-water target, exact once at least
// two records exist.
func (m *memTier) evict() {
	for m.bytes > m.budget && m.tail != nil && m.tail != m.head {
		r := m.tail
		m.unlink(r)
		delete(m.index, r.fp)
		m.bytes -= int64(len(r.data))
		m.evictions++
	}
}

// get returns the record under fp and refreshes its recency.
func (m *memTier) get(fp Fingerprint) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.index[fp]
	if r == nil {
		return nil, false
	}
	m.unlink(r)
	m.pushFront(r)
	return r.data, true
}

// has reports presence without touching recency (batch probes from the
// fabric protocol should not churn the LRU order).
func (m *memTier) has(fp Fingerprint) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.index[fp] != nil
}

// put adds (or refreshes) a record.
func (m *memTier) put(fp Fingerprint, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r := m.index[fp]; r != nil {
		m.bytes += int64(len(data)) - int64(len(r.data))
		r.data = data
		m.unlink(r)
		m.pushFront(r)
	} else {
		r := &rec{fp: fp, data: data}
		m.index[fp] = r
		m.pushFront(r)
		m.bytes += int64(len(data))
	}
	m.evict()
}

// occupancy reports the tier's entry count, resident bytes and
// cumulative evictions.
func (m *memTier) occupancy() (entries int, bytes, evictions int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.index), m.bytes, m.evictions
}
