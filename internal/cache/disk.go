package cache

import (
	"os"
	"path/filepath"
	"sync/atomic"
)

// diskTier persists records as <fingerprint>.scc files in a directory.
// It is crash-safe (atomic temp-file + rename writes) and treats every
// I/O failure as a miss or a counted error — a broken disk degrades the
// store, never the analysis.
type diskTier struct {
	dir    string
	loads  atomic.Int64 // records faulted in from disk
	errors atomic.Int64 // persistence failures
}

func newDiskTier(dir string) (*diskTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &diskTier{dir: dir}, nil
}

// path is the on-disk location of fp's record.
func (d *diskTier) path(fp Fingerprint) string {
	return filepath.Join(d.dir, string(fp)+".scc")
}

// get reads fp's record from disk.
func (d *diskTier) get(fp Fingerprint) ([]byte, bool) {
	data, err := os.ReadFile(d.path(fp))
	if err != nil {
		return nil, false
	}
	d.loads.Add(1)
	return data, true
}

// has reports presence without reading the record.
func (d *diskTier) has(fp Fingerprint) bool {
	_, err := os.Stat(d.path(fp))
	return err == nil
}

// put writes the record atomically (temp file + rename), so a
// concurrent reader or a crash never observes a torn record. Failures
// are counted, not returned.
func (d *diskTier) put(fp Fingerprint, data []byte) {
	if err := d.persist(fp, data); err != nil {
		d.errors.Add(1)
	}
}

func (d *diskTier) persist(fp Fingerprint, data []byte) error {
	tmp, err := os.CreateTemp(d.dir, "."+string(fp)+".tmp*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, d.path(fp)); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
