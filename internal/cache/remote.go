package cache

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// The remote tier speaks a batched has/get/put protocol over HTTP
// against another daemon's /v1/store routes (served by internal/serve;
// the public mirror of these wire types lives in awam/api — the two are
// pinned together by a parity test in internal/serve). All requests and
// responses are JSON; record bytes travel base64-encoded by
// encoding/json's []byte convention.
//
//	POST {base}/v1/store/has  HasRequest -> HasResponse
//	POST {base}/v1/store/get  GetRequest -> GetResponse
//	POST {base}/v1/store/put  PutRequest -> PutResponse

// HasRequest asks which of a batch of fingerprints the peer holds.
type HasRequest struct {
	Fingerprints []string `json:"fingerprints"`
}

// HasResponse answers a HasRequest positionally.
type HasResponse struct {
	Present []bool `json:"present"`
}

// GetRequest fetches a batch of records by fingerprint.
type GetRequest struct {
	Fingerprints []string `json:"fingerprints"`
}

// WireRecord is one record on the wire.
type WireRecord struct {
	Fingerprint string `json:"fingerprint"`
	Data        []byte `json:"data"`
}

// GetResponse carries the subset of requested records the peer holds.
type GetResponse struct {
	Records []WireRecord `json:"records"`
}

// PutRequest pushes a batch of records to the peer.
type PutRequest struct {
	Records []WireRecord `json:"records"`
}

// PutResponse reports how many pushed records the peer accepted.
type PutResponse struct {
	Stored int `json:"stored"`
}

// Remote-tier defaults. Every knob has a RemoteOption.
const (
	// DefaultRemoteTimeout is the per-batch round-trip deadline.
	DefaultRemoteTimeout = 2 * time.Second
	// DefaultRemoteRetries is the number of re-attempts after a failed
	// round trip (transport errors and 5xx responses; 4xx never retry).
	DefaultRemoteRetries = 2
	// DefaultRemoteBackoff is the base of the jittered exponential
	// backoff between retries.
	DefaultRemoteBackoff = 50 * time.Millisecond
	// DefaultBreakerThreshold consecutive failed round trips open the
	// circuit breaker; while open every remote operation is an immediate
	// local miss. DefaultBreakerCooldown later one probe is let through.
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 10 * time.Second
	// DefaultMaxBatch bounds fingerprints (or records) per round trip;
	// it matches the server-side api.MaxStoreBatch cap.
	DefaultMaxBatch = 256
	// DefaultMaxRecordBytes bounds one record on the wire; larger
	// responses are treated as corrupt (a miss), larger puts are
	// dropped.
	DefaultMaxRecordBytes = 4 << 20
	// maxPutBuffer bounds records waiting for a Flush; overflow drops
	// the oldest (they remain in the local tiers and are counted).
	maxPutBuffer = 4096
	// maxResponseBytes bounds one protocol response body.
	maxResponseBytes = int64(DefaultMaxBatch)*DefaultMaxRecordBytes/256 + 1<<20
)

// RemoteOption tunes the remote tier; pass to WithRemote.
type RemoteOption func(*remoteTier)

// WithRemoteTimeout sets the per-batch round-trip deadline.
func WithRemoteTimeout(d time.Duration) RemoteOption {
	return func(r *remoteTier) {
		if d > 0 {
			r.timeout = d
		}
	}
}

// WithRemoteRetries sets how many times a failed round trip is retried.
func WithRemoteRetries(n int) RemoteOption {
	return func(r *remoteTier) {
		if n >= 0 {
			r.retries = n
		}
	}
}

// WithRemoteBackoff sets the base of the jittered exponential backoff.
func WithRemoteBackoff(d time.Duration) RemoteOption {
	return func(r *remoteTier) {
		if d > 0 {
			r.backoff = d
		}
	}
}

// WithRemoteBreaker configures the circuit breaker: threshold
// consecutive failures open it for cooldown.
func WithRemoteBreaker(threshold int, cooldown time.Duration) RemoteOption {
	return func(r *remoteTier) {
		if threshold > 0 {
			r.breakThreshold = threshold
		}
		if cooldown > 0 {
			r.breakCooldown = cooldown
		}
	}
}

// WithRemoteMaxBatch bounds fingerprints or records per round trip.
func WithRemoteMaxBatch(n int) RemoteOption {
	return func(r *remoteTier) {
		if n > 0 {
			r.maxBatch = n
		}
	}
}

// WithRemoteMaxRecordBytes bounds a single record on the wire.
func WithRemoteMaxRecordBytes(n int64) RemoteOption {
	return func(r *remoteTier) {
		if n > 0 {
			r.maxRecord = n
		}
	}
}

// WithRemoteClient substitutes the HTTP client (tests inject transports
// here).
func WithRemoteClient(hc *http.Client) RemoteOption {
	return func(r *remoteTier) {
		if hc != nil {
			r.hc = hc
		}
	}
}

// remoteTier is the third tier: a peer daemon's store reached over the
// batch protocol. It is robust by construction — every operation runs
// under a per-batch deadline with bounded jittered retries behind a
// circuit breaker, and every failure mode (outage, slowness, corrupt or
// oversized payloads) degrades to a local miss, never an error.
type remoteTier struct {
	base string // e.g. "http://10.0.0.7:8347", no trailing slash
	hc   *http.Client

	timeout        time.Duration
	retries        int
	backoff        time.Duration
	breakThreshold int
	breakCooldown  time.Duration
	maxBatch       int
	maxRecord      int64

	// Circuit breaker state. fails counts consecutive failed round
	// trips; openUntil is the wall-clock end of the current open
	// interval.
	bmu       sync.Mutex
	fails     int
	openUntil time.Time

	// putBuf holds records awaiting Flush (oldest first).
	pmu    sync.Mutex
	putBuf []WireRecord

	// Counters, surfaced through Stats.
	loads      atomic.Int64 // records faulted in from the peer
	misses     atomic.Int64 // requested records the peer did not hold
	puts       atomic.Int64 // records accepted by the peer
	roundTrips atomic.Int64 // HTTP round trips attempted
	errors     atomic.Int64 // failed round trips (each attempt)
	dropped    atomic.Int64 // records dropped: buffer overflow or failed flush
	opens      atomic.Int64 // breaker open events
}

func newRemoteTier(base string, opts ...RemoteOption) *remoteTier {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	r := &remoteTier{
		base:           base,
		hc:             &http.Client{},
		timeout:        DefaultRemoteTimeout,
		retries:        DefaultRemoteRetries,
		backoff:        DefaultRemoteBackoff,
		breakThreshold: DefaultBreakerThreshold,
		breakCooldown:  DefaultBreakerCooldown,
		maxBatch:       DefaultMaxBatch,
		maxRecord:      DefaultMaxRecordBytes,
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// allow reports whether the breaker admits a round trip right now.
func (r *remoteTier) allow() bool {
	r.bmu.Lock()
	defer r.bmu.Unlock()
	return time.Now().After(r.openUntil)
}

// degraded reports whether the breaker is currently open.
func (r *remoteTier) degraded() bool { return !r.allow() }

// succeed and fail update the breaker after a round trip.
func (r *remoteTier) succeed() {
	r.bmu.Lock()
	r.fails = 0
	r.bmu.Unlock()
}

func (r *remoteTier) fail() {
	r.bmu.Lock()
	r.fails++
	if r.fails >= r.breakThreshold {
		r.fails = 0
		r.openUntil = time.Now().Add(r.breakCooldown)
		r.opens.Add(1)
	}
	r.bmu.Unlock()
}

// do runs one protocol exchange with retries, backoff and the breaker.
// A nil return means resp is filled; every failure path returns an
// error the caller converts into misses.
func (r *remoteTier) do(path string, req, resp any) error {
	if !r.allow() {
		return fmt.Errorf("cache: remote breaker open")
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	var last error
	for attempt := 0; attempt <= r.retries; attempt++ {
		if attempt > 0 {
			// Jittered exponential backoff: base*2^(attempt-1), up to
			// +50% jitter so a fleet retrying together spreads out.
			d := r.backoff << (attempt - 1)
			d += time.Duration(rand.Int63n(int64(d)/2 + 1))
			time.Sleep(d)
			if !r.allow() {
				return fmt.Errorf("cache: remote breaker open")
			}
		}
		r.roundTrips.Add(1)
		retryable, err := r.once(path, body, resp)
		if err == nil {
			r.succeed()
			return nil
		}
		r.errors.Add(1)
		r.fail()
		last = err
		if !retryable {
			break
		}
	}
	return last
}

// once performs a single round trip under the per-batch deadline.
func (r *remoteTier) once(path string, body []byte, resp any) (retryable bool, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+path, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := r.hc.Do(hreq)
	if err != nil {
		return true, err // transport error or deadline: retryable
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(hres.Body, 1<<16)) //nolint:errcheck // drain for keep-alive
		hres.Body.Close()
	}()
	if hres.StatusCode != http.StatusOK {
		// 5xx and 429 are peer-side trouble worth retrying; other 4xx
		// mean this client is wrong and retrying cannot help.
		retryable = hres.StatusCode >= 500 || hres.StatusCode == http.StatusTooManyRequests
		return retryable, fmt.Errorf("cache: remote %s: %s", path, hres.Status)
	}
	if err := json.NewDecoder(io.LimitReader(hres.Body, maxResponseBytes)).Decode(resp); err != nil {
		return false, fmt.Errorf("cache: remote %s: corrupt response: %w", path, err)
	}
	return false, nil
}

// get fetches the given fingerprints (one protocol batch at most
// maxBatch long) and returns the well-formed records the peer holds.
// Corrupt entries — invalid fingerprints, fingerprints not asked for,
// oversized or empty data — are dropped record by record.
func (r *remoteTier) get(fps []Fingerprint) map[Fingerprint][]byte {
	out := make(map[Fingerprint][]byte)
	for start := 0; start < len(fps); start += r.maxBatch {
		end := start + r.maxBatch
		if end > len(fps) {
			end = len(fps)
		}
		batch := fps[start:end]
		req := GetRequest{Fingerprints: make([]string, len(batch))}
		asked := make(map[Fingerprint]bool, len(batch))
		for i, fp := range batch {
			req.Fingerprints[i] = string(fp)
			asked[fp] = true
		}
		var resp GetResponse
		if err := r.do("/v1/store/get", &req, &resp); err != nil {
			r.misses.Add(int64(len(batch)))
			continue
		}
		served := 0
		for _, wr := range resp.Records {
			fp := Fingerprint(wr.Fingerprint)
			if !fp.valid() || !asked[fp] || len(wr.Data) == 0 || int64(len(wr.Data)) > r.maxRecord {
				r.errors.Add(1)
				continue
			}
			if _, dup := out[fp]; !dup {
				out[fp] = wr.Data
				served++
			}
		}
		r.loads.Add(int64(served))
		if served < len(batch) {
			r.misses.Add(int64(len(batch) - served))
		}
	}
	return out
}

// getOne is the single-record fallback used on an individual Get miss.
func (r *remoteTier) getOne(fp Fingerprint) ([]byte, bool) {
	recs := r.get([]Fingerprint{fp})
	data, ok := recs[fp]
	return data, ok
}

// enqueue buffers a record for the next flush, dropping the oldest on
// overflow (the record stays in the local tiers either way).
func (r *remoteTier) enqueue(fp Fingerprint, data []byte) {
	if int64(len(data)) > r.maxRecord {
		r.dropped.Add(1)
		return
	}
	r.pmu.Lock()
	if len(r.putBuf) >= maxPutBuffer {
		over := len(r.putBuf) - maxPutBuffer + 1
		r.putBuf = append(r.putBuf[:0], r.putBuf[over:]...)
		r.dropped.Add(int64(over))
	}
	r.putBuf = append(r.putBuf, WireRecord{Fingerprint: string(fp), Data: data})
	r.pmu.Unlock()
}

// flush pushes the buffered records upstream: a has round trip filters
// records the peer already holds, then puts ship the rest in batches.
// On failure the batch is dropped (counted); the records remain in the
// local tiers and will be re-offered only after a local cold start, so
// the fabric is eventually consistent, not transactional.
func (r *remoteTier) flush() {
	r.pmu.Lock()
	pending := r.putBuf
	r.putBuf = nil
	r.pmu.Unlock()
	if len(pending) == 0 {
		return
	}

	for start := 0; start < len(pending); start += r.maxBatch {
		end := start + r.maxBatch
		if end > len(pending) {
			end = len(pending)
		}
		batch := pending[start:end]

		// Presence filter: don't ship bytes the peer already has. A
		// failed has is ignored — the put is the operation that matters.
		has := HasRequest{Fingerprints: make([]string, len(batch))}
		for i, wr := range batch {
			has.Fingerprints[i] = wr.Fingerprint
		}
		var present HasResponse
		if err := r.do("/v1/store/has", &has, &present); err == nil && len(present.Present) == len(batch) {
			novel := batch[:0:0]
			for i, wr := range batch {
				if !present.Present[i] {
					novel = append(novel, wr)
				}
			}
			batch = novel
		}
		if len(batch) == 0 {
			continue
		}

		var resp PutResponse
		if err := r.do("/v1/store/put", &PutRequest{Records: batch}, &resp); err != nil {
			r.dropped.Add(int64(len(batch)))
			continue
		}
		r.puts.Add(int64(resp.Stored))
	}
}
