package transrun

import (
	"strings"
	"testing"

	"awam/internal/bench"
	"awam/internal/parser"
	"awam/internal/plmeta"
	"awam/internal/term"
)

func runner(t *testing.T, src string) *Runner {
	t.Helper()
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r, err := NewRunner(tab, prog)
	if err != nil {
		t.Fatalf("runner: %v", err)
	}
	return r
}

func entries(t *testing.T, r *Runner) []string {
	t.Helper()
	out, steps, _, err := r.Run()
	if err != nil {
		t.Fatalf("run: %v\n--- generated ---\n%s", err, r.Source)
	}
	if steps == 0 {
		t.Fatal("no machine steps")
	}
	return out
}

func TestTransformedSimple(t *testing.T) {
	r := runner(t, `
main :- p(1, X), use(X).
p(A, A).
use(_).
`)
	joined := strings.Join(entries(t, r), "\n")
	for _, want := range []string{
		"main -> main",
		"p(g, v) -> p(g, g)",
		"use(g) -> use(g)",
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %q in transformed analysis:\n%s\n--- generated ---\n%s",
				want, joined, r.Source)
		}
	}
}

func TestTransformedRecursion(t *testing.T) {
	r := runner(t, `
main :- app([1,2], [3], X), use(X).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
use(_).
`)
	joined := strings.Join(entries(t, r), "\n")
	if !strings.Contains(joined, "app(g, g, v) -> app(g, g, g)") {
		t.Fatalf("append modes missing:\n%s", joined)
	}
}

func TestTransformedArithmeticAndFailure(t *testing.T) {
	r := runner(t, `
main :- d(1, X), out(X), never(_).
d(A, B) :- B is A + 1.
out(_).
never(X) :- X < 0, fail.
`)
	joined := strings.Join(entries(t, r), "\n")
	if !strings.Contains(joined, "d(g, v) -> d(g, g)") {
		t.Fatalf("is/2 grounding missing:\n%s", joined)
	}
	// never/1 fails: its entry stays absent or bottomless — main must
	// still appear unexplored-failed... main calls never, which fails, so
	// main itself records no success.
	if strings.Contains(joined, "never(") {
		t.Fatalf("failing predicate should have no success entry:\n%s", joined)
	}
}

// TestTransformedMatchesHosted: the transforming approach and the
// meta-interpreting approach implement the same mode analysis; on each
// benchmark, every entry the transformed program derives must be below
// or equal to the hosted analyzer's fixpoint for the same pattern
// (the transformed scheme may retain entries for patterns the hosted
// passes no longer reach, which stay below the fixpoint).
func TestTransformedMatchesHosted(t *testing.T) {
	order := map[string]int{"v": 0, "g": 1, "nv": 2, "any": 3, "u": 0}
	leqMode := func(a, b string) bool {
		if a == b {
			return true
		}
		switch b {
		case "any":
			return true
		case "nv":
			return a == "g" || a == "nv"
		}
		return false
	}
	_ = order
	for _, p := range bench.Programs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tab := term.NewTab()
			prog, err := parser.ParseProgram(tab, p.Source)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := NewRunner(tab, prog)
			if err != nil {
				t.Fatal(err)
			}
			trEntries, _, _, err := tr.Run()
			if err != nil {
				t.Fatal(err)
			}
			hosted, err := plmeta.NewRunner(tab, prog)
			if err != nil {
				t.Fatal(err)
			}
			tbl, _, _, err := hosted.Run()
			if err != nil {
				t.Fatal(err)
			}
			hostedMap := make(map[string]string)
			for _, e := range hosted.TableEntries(tbl) {
				parts := strings.SplitN(e, " -> ", 2)
				hostedMap[parts[0]] = parts[1]
			}
			if len(trEntries) == 0 {
				t.Fatal("transformed analysis produced no entries")
			}
			foundMain := false
			for _, e := range trEntries {
				parts := strings.SplitN(e, " -> ", 2)
				if parts[0] == "main" {
					foundMain = true
				}
				hostedSucc, ok := hostedMap[parts[0]]
				if !ok {
					continue // pattern only reached by the transformed run
				}
				if !succLeq(parts[1], hostedSucc, leqMode) {
					t.Errorf("entry %s: transformed %s not below hosted %s",
						parts[0], parts[1], hostedSucc)
				}
			}
			if !foundMain {
				t.Fatalf("main entry missing:\n%s", strings.Join(trEntries, "\n"))
			}
		})
	}
}

// succLeq compares "p(m1, m2)" success patterns argument-wise.
func succLeq(a, b string, leqMode func(x, y string) bool) bool {
	if a == b {
		return true
	}
	if b == "bottom" {
		return a == "bottom"
	}
	if a == "bottom" {
		return true
	}
	argsA := patArgs(a)
	argsB := patArgs(b)
	if len(argsA) != len(argsB) {
		return false
	}
	for i := range argsA {
		if !leqMode(argsA[i], argsB[i]) {
			return false
		}
	}
	return true
}

func patArgs(p string) []string {
	i := strings.IndexByte(p, '(')
	if i < 0 {
		return nil
	}
	body := strings.TrimSuffix(p[i+1:], ")")
	parts := strings.Split(body, ",")
	for j := range parts {
		parts[j] = strings.TrimSpace(parts[j])
	}
	return parts
}
