package transrun

import (
	"fmt"
	"time"

	"awam/internal/compiler"
	"awam/internal/machine"
	"awam/internal/parser"
	"awam/internal/term"
	"awam/internal/wam"
)

// Runner is a prepared transformed-program analysis.
type Runner struct {
	// Tab is the atom table of the transformed program's pipeline.
	Tab *term.Tab
	// Source is the generated Prolog text (diagnostics).
	Source  string
	mod     *wam.Module
	queryFn term.Functor
}

// NewRunner transforms prog and compiles the result for the WAM.
func NewRunner(tab *term.Tab, prog *term.Program) (*Runner, error) {
	src, err := Transform(tab, prog)
	if err != nil {
		return nil, err
	}
	atab := term.NewTab()
	aprog, err := parser.ParseProgram(atab, src)
	if err != nil {
		return nil, fmt.Errorf("transrun: generated source: %w", err)
	}
	mod, err := compiler.Compile(atab, aprog)
	if err != nil {
		return nil, fmt.Errorf("transrun: generated compile: %w", err)
	}
	goals, err := parser.ParseGoal(atab, "'$transrun'")
	if err != nil {
		return nil, err
	}
	fn, _, err := compiler.AddQuery(mod, goals)
	if err != nil {
		return nil, err
	}
	return &Runner{Tab: atab, Source: src, mod: mod, queryFn: fn}, nil
}

// Run executes the transformed analysis once and returns the extension
// table as "pattern -> success" strings, the WAM steps spent, and the
// wall time.
func (r *Runner) Run() ([]string, int64, time.Duration, error) {
	m := machine.New(r.mod)
	start := time.Now()
	ok, err := m.CallAddrs(r.queryFn, nil)
	elapsed := time.Since(start)
	if err != nil {
		return nil, m.Steps, elapsed, err
	}
	if !ok {
		return nil, m.Steps, elapsed, fmt.Errorf("transrun: analysis failed")
	}
	var out []string
	for _, f := range m.DynamicFacts(r.Tab.Func("$et", 2)) {
		if f.Kind == term.KStruct && len(f.Args) == 2 {
			out = append(out, fmt.Sprintf("%s -> %s",
				r.Tab.Write(f.Args[0]), r.Tab.Write(f.Args[1])))
		}
	}
	return out, m.Steps, elapsed, nil
}
