// Package transrun implements the paper's *transforming approach* for
// real: it partially evaluates the abstract interpretation with respect
// to the source program, producing an ordinary Prolog program that
// performs the dataflow analysis when executed — then runs that program
// on the concrete WAM.
//
// This is the second of the three implementation strategies the paper
// discusses (meta-interpretation, transformation, abstract WAM) and
// completes the repository's set: internal/plmeta is the
// meta-interpreting analyzer, internal/core the compiled abstract WAM,
// and this package the transformed program. The abstract domain is the
// same simple mode lattice as plmeta's (v / g / nv / any), so the two
// baselines are comparable.
//
// For every predicate p/n the transformation emits (cf. the paper's
// Section 5):
//
//	'p$w'(M1..Mn, S1..Sn) :-              % the wrapper p'
//	    ( '$explored'(p(M1..Mn)) -> true
//	    ; assert('$explored'(p(M1..Mn))), 'p$t'(M1..Mn) ),
//	    '$et'(p(M1..Mn), p(S1..Sn)).      % lookupET
//
//	'p$t'(M1..Mn) :- <abstract clause 1>, '$update_et'(...), fail.
//	...
//	'p$t'(_..).                           % clauses exhausted
//
// where <abstract clause i> is the clause's head unification and body
// partially evaluated over the mode domain: head matching compiles to
// meet/hb goals over mode variables, builtins to their mode effects, and
// user calls to wrapper calls followed by success-pattern application.
// The extension table lives in the assert database ('$et'/2 facts), as
// the paper says Prolog-hosted analyzers kept it.
package transrun

import (
	"fmt"
	"strings"

	"awam/internal/term"
	"awam/internal/wam"
)

// Transform renders the analyzed version of prog as Prolog source
// (support library included). Running goal '$transrun' on it computes
// the mode analysis of prog from main/0.
func Transform(tab *term.Tab, prog *term.Program) (string, error) {
	g := &gen{tab: tab, prog: prog, builtins: wam.Builtins(tab)}
	var b strings.Builder
	b.WriteString(supportLibrary)
	b.WriteString("\n% ---- transformed program ----\n\n")
	for _, fn := range prog.Order {
		if err := g.predicate(&b, fn); err != nil {
			return "", err
		}
	}
	// The driver's entry pass.
	if prog.Preds[tab.Func("main", 0)] == nil {
		return "", fmt.Errorf("transrun: program has no main/0 entry point")
	}
	b.WriteString("'$pass' :- 'main$w'.\n'$pass'.\n")
	return b.String(), nil
}

type gen struct {
	tab      *term.Tab
	prog     *term.Program
	builtins map[term.Functor]wam.BuiltinID
	fresh    int
}

// newVar returns a fresh generated variable name.
func (g *gen) newVar() string {
	g.fresh++
	return fmt.Sprintf("V%d", g.fresh)
}

// env tracks the current mode expression of each clause variable
// (SSA-style: a Prolog variable name or the constant "g").
type env map[*term.VarRef]string

// predicate emits the wrapper and the try clauses for one predicate.
func (g *gen) predicate(b *strings.Builder, fn term.Functor) error {
	w := mangle(g.tab, fn, "$w")
	t := mangle(g.tab, fn, "$t")
	n := fn.Arity

	ms := seq("M", n)
	ss := seq("S", n)
	cp := apply(patName(g.tab, fn), ms)
	sp := apply(patName(g.tab, fn), ss)
	fmt.Fprintf(b, "%s :-\n", apply(w, append(append([]string{}, ms...), ss...)))
	fmt.Fprintf(b, "\t( '$explored'(%s) -> true\n", cp)
	fmt.Fprintf(b, "\t; assert('$explored'(%s)), %s\n\t),\n", cp, apply(t, ms))
	fmt.Fprintf(b, "\t'$et'(%s, %s).\n", cp, sp)

	for _, cl := range g.prog.ClausesOf(fn) {
		if err := g.clause(b, fn, cl, t, ms); err != nil {
			return err
		}
	}
	// Exploration always completes.
	anon := make([]string, n)
	for i := range anon {
		anon[i] = "_"
	}
	fmt.Fprintf(b, "%s.\n\n", apply(t, anon))
	return nil
}

// clause emits one abstract clause of the try predicate.
func (g *gen) clause(b *strings.Builder, fn term.Functor, cl term.Clause, t string, ms []string) error {
	e := make(env)
	var goals []string

	// Head matching: propagate argument modes into clause variables.
	if cl.Head.Kind == term.KStruct {
		for i, arg := range cl.Head.Args {
			g.bindHead(&goals, e, arg, ms[i])
		}
	}

	// Body.
	for _, goal := range cl.Body {
		if err := g.goal(&goals, e, goal); err != nil {
			return fmt.Errorf("%s: %w", g.tab.FuncString(fn), err)
		}
	}

	// Success pattern and table update.
	sms := make([]string, fn.Arity)
	if cl.Head.Kind == term.KStruct {
		for i, arg := range cl.Head.Args {
			sms[i] = g.modeExpr(&goals, e, arg)
		}
	}
	cp := apply(patName(g.tab, fn), ms)
	sp := apply(patName(g.tab, fn), sms)
	goals = append(goals, fmt.Sprintf("'$update_et'(%s, %s)", cp, sp), "fail")

	fmt.Fprintf(b, "%s :- %s.\n", apply(t, ms), strings.Join(goals, ", "))
	return nil
}

// bindHead emits the abstract head unification of one argument.
func (g *gen) bindHead(goals *[]string, e env, arg *term.Term, m string) {
	switch arg.Kind {
	case term.KVar:
		if cur, seen := e[arg.Ref]; seen {
			nv := g.newVar()
			*goals = append(*goals, fmt.Sprintf("meet(%s, %s, %s)", cur, m, nv))
			e[arg.Ref] = nv
		} else {
			e[arg.Ref] = m
		}
	case term.KAtom, term.KInt:
		// Constants match any incoming mode abstractly.
	case term.KStruct:
		forEachVar(arg, func(v *term.VarRef) {
			cur, seen := e[v]
			if !seen {
				cur = "v"
			}
			nv := g.newVar()
			*goals = append(*goals, fmt.Sprintf("hb(%s, %s, %s)", m, cur, nv))
			e[v] = nv
		})
	}
}

// modeExpr returns the mode of a term under the current environment,
// emitting an sm/2 goal for compounds with variables.
func (g *gen) modeExpr(goals *[]string, e env, tm *term.Term) string {
	switch tm.Kind {
	case term.KVar:
		if cur, ok := e[tm.Ref]; ok {
			return cur
		}
		e[tm.Ref] = "v"
		return "v"
	case term.KAtom, term.KInt:
		return "g"
	default:
		var vars []string
		forEachVar(tm, func(v *term.VarRef) {
			if cur, ok := e[v]; ok {
				vars = append(vars, cur)
			} else {
				e[v] = "v"
				vars = append(vars, "v")
			}
		})
		if len(vars) == 0 {
			return "g"
		}
		nv := g.newVar()
		*goals = append(*goals, fmt.Sprintf("sm([%s], %s)", strings.Join(vars, ", "), nv))
		return nv
	}
}

// groundVars sets every variable of tm to mode g (a pure renaming, no
// goal needed).
func (g *gen) groundVars(e env, tm *term.Term) {
	forEachVar(tm, func(v *term.VarRef) { e[v] = "g" })
}

// weakenVars applies u1 (ground-if-other-side-ground, else wk) to every
// variable of tm under the driving mode expression m.
func (g *gen) weakenVars(goals *[]string, e env, tm *term.Term, m string) {
	forEachVar(tm, func(v *term.VarRef) {
		cur, seen := e[v]
		if !seen {
			cur = "v"
		}
		nv := g.newVar()
		*goals = append(*goals, fmt.Sprintf("u1(%s, %s, %s)", m, cur, nv))
		e[v] = nv
	})
}

// goal emits the abstract translation of one body goal.
func (g *gen) goal(goals *[]string, e env, goal *term.Term) error {
	fn, ok := term.Indicator(goal)
	if !ok {
		return fmt.Errorf("transrun: non-callable goal")
	}
	switch {
	case fn.Name == g.tab.Cut && fn.Arity == 0:
		return nil // the abstract scheme explores all clauses
	case fn.Name == g.tab.True && fn.Arity == 0:
		return nil
	}
	if id, isBI := g.builtins[fn]; isBI {
		return g.builtinGoal(goals, e, goal, id)
	}
	// User call: wrapper with call modes in, success modes out.
	n := fn.Arity
	ins := make([]string, n)
	for i := 0; i < n; i++ {
		ins[i] = g.modeExpr(goals, e, goal.Args[i])
	}
	outs := make([]string, n)
	for i := range outs {
		outs[i] = g.newVar()
	}
	*goals = append(*goals, apply(mangle(g.tab, fn, "$w"), append(append([]string{}, ins...), outs...)))
	// Apply the success modes back to the arguments.
	for i := 0; i < n; i++ {
		arg := goal.Args[i]
		switch arg.Kind {
		case term.KVar:
			nv := g.newVar()
			*goals = append(*goals, fmt.Sprintf("meet(%s, %s, %s)", e[arg.Ref], outs[i], nv))
			e[arg.Ref] = nv
		case term.KStruct:
			g.weakenVars(goals, e, arg, outs[i])
		}
	}
	return nil
}

// builtinGoal emits the mode effect of an inline builtin.
func (g *gen) builtinGoal(goals *[]string, e env, goal *term.Term, id wam.BuiltinID) error {
	switch id {
	case wam.BITrue, wam.BIWrite, wam.BINl, wam.BIHalt,
		wam.BINotUnify, wam.BINotEq, wam.BIVar,
		wam.BITermLt, wam.BITermLe, wam.BITermGt, wam.BITermGe:
		return nil
	case wam.BIFail:
		*goals = append(*goals, "fail")
		return nil
	case wam.BIIs, wam.BILt, wam.BILe, wam.BIGt, wam.BIGe, wam.BIArithEq, wam.BIArithNe:
		// Arithmetic success grounds both sides.
		g.groundVars(e, goal.Args[0])
		g.groundVars(e, goal.Args[1])
		return nil
	case wam.BIAtom, wam.BIInteger, wam.BIAtomic:
		g.groundVars(e, goal.Args[0])
		return nil
	case wam.BINonvar:
		if goal.Args[0].Kind == term.KVar {
			v := goal.Args[0].Ref
			cur, seen := e[v]
			if !seen {
				cur = "v"
			}
			nv := g.newVar()
			*goals = append(*goals, fmt.Sprintf("meet(%s, nv, %s)", cur, nv))
			e[v] = nv
		}
		return nil
	case wam.BIUnify, wam.BIEq:
		m1 := g.modeExpr(goals, e, goal.Args[0])
		m2 := g.modeExpr(goals, e, goal.Args[1])
		g.weakenVars(goals, e, goal.Args[0], m2)
		g.weakenVars(goals, e, goal.Args[1], m1)
		return nil
	case wam.BICompare:
		g.groundVars(e, goal.Args[0])
		return nil
	case wam.BIFunctor:
		if goal.Args[0].Kind == term.KVar {
			v := goal.Args[0].Ref
			cur, seen := e[v]
			if !seen {
				cur = "v"
			}
			nv := g.newVar()
			*goals = append(*goals, fmt.Sprintf("meet(%s, nv, %s)", cur, nv))
			e[v] = nv
		}
		g.groundVars(e, goal.Args[1])
		g.groundVars(e, goal.Args[2])
		return nil
	case wam.BIArg:
		g.groundVars(e, goal.Args[0])
		g.weakenVars(goals, e, goal.Args[2], "any")
		return nil
	case wam.BILength:
		if goal.Args[0].Kind == term.KVar {
			v := goal.Args[0].Ref
			cur, seen := e[v]
			if !seen {
				cur = "v"
			}
			nv := g.newVar()
			*goals = append(*goals, fmt.Sprintf("meet(%s, nv, %s)", cur, nv))
			e[v] = nv
		}
		g.groundVars(e, goal.Args[1])
		return nil
	case wam.BIAssert, wam.BIRetract:
		return nil // not modeled
	default:
		return fmt.Errorf("transrun: builtin %s not supported", wam.BuiltinName(id))
	}
}

func forEachVar(tm *term.Term, f func(*term.VarRef)) {
	switch tm.Kind {
	case term.KVar:
		f(tm.Ref)
	case term.KStruct:
		for _, a := range tm.Args {
			forEachVar(a, f)
		}
	}
}

// mangle derives the wrapper/try predicate name for fn.
func mangle(tab *term.Tab, fn term.Functor, suffix string) string {
	return "'" + strings.ReplaceAll(tab.Name(fn.Name), "'", "\\'") + suffix + "'"
}

// patName is the pattern functor: the original predicate name.
func patName(tab *term.Tab, fn term.Functor) string {
	name := tab.Name(fn.Name)
	return "'" + strings.ReplaceAll(name, "'", "\\'") + "'"
}

func apply(name string, args []string) string {
	if len(args) == 0 {
		return name
	}
	return name + "(" + strings.Join(args, ", ") + ")"
}

func seq(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i+1)
	}
	return out
}

// supportLibrary is the runtime the transformed program links against:
// the mode lattice, the assert-database extension table, and the
// iterative driver — everything a Prolog-hosted transforming analyzer
// needs, as the paper describes.
const supportLibrary = `
% ---- transrun support library (mode lattice + assert-database ET) ----

lub(X, Y, X) :- X == Y, !.
lub(g, nv, nv) :- !.
lub(nv, g, nv) :- !.
lub(_, _, any).

meet(g, _, g) :- !.
meet(_, g, g) :- !.
meet(nv, _, nv) :- !.
meet(_, nv, nv) :- !.
meet(v, _, v) :- !.
meet(_, v, v) :- !.
meet(_, _, any).

wk(g, g) :- !.
wk(nv, nv) :- !.
wk(_, any).

% head binding of a variable inside a compound argument.
hb(g, _, g) :- !.
hb(v, C, C) :- !.
hb(_, C, W) :- wk(C, W).

% one-sided abstract unification effect.
u1(g, _, g) :- !.
u1(_, C, W) :- wk(C, W).

% shape mode: a compound is ground iff all its variables are. Every
% clause commits (the failure-driven clause loop must not re-enter
% support predicates with weaker answers).
sm([], g) :- !.
sm([g|R], M) :- !, sm(R, M).
sm(_, nv).

lub_pat(P, Q, R) :-
	functor(P, F, A), functor(R, F, A),
	lub_args(A, P, Q, R).
lub_args(0, _, _, _) :- !.
lub_args(I, P, Q, R) :-
	arg(I, P, X), arg(I, Q, Y), lub(X, Y, Z), arg(I, R, Z),
	I1 is I - 1, lub_args(I1, P, Q, R).

'$update_et'(CP, SP) :- '$et'(CP, S0), !, lub_pat(S0, SP, S1), '$replace_et'(CP, S0, S1).
'$update_et'(CP, SP) :- assert('$et'(CP, SP)), assert('$changed'(t)).
'$replace_et'(_, S, S) :- !.
'$replace_et'(CP, _, S1) :- retract('$et'(CP, _)), assert('$et'(CP, S1)), assert('$changed'(t)).

'$clear_changed' :- retract('$changed'(t)), !, '$clear_changed'.
'$clear_changed'.
'$clear_explored' :- retract('$explored'(_)), !, '$clear_explored'.
'$clear_explored'.

'$transrun' :- '$iterate'.
'$iterate' :-
	'$clear_changed', '$clear_explored',
	'$pass',
	'$decide'.
'$decide' :- '$changed'(t), !, '$iterate'.
'$decide'.
`
