// Package wam defines the Warren Abstract Machine instruction set shared
// by the compiler, the concrete machine and the abstract analyzer, along
// with the compiled-module container, the builtin registry and a
// disassembler.
//
// The instruction classes follow Warren's report (and Section 2.1 of the
// paper): get, put, unify, procedural and indexing instructions. Operands
// are held unencoded in an Instr struct; a code address is an index into
// the module's flat Code slice.
package wam

import (
	"fmt"
	"sort"
	"strings"

	"awam/internal/term"
)

// Op enumerates WAM operations.
type Op uint8

const (
	// OpNop does nothing (assembler padding).
	OpNop Op = iota

	// Get instructions: head-argument unification. A1 is the argument
	// register Ai.
	OpGetVarX   // get_variable Xn, Ai     (A2 = n)
	OpGetVarY   // get_variable Yn, Ai     (A2 = n)
	OpGetValX   // get_value Xn, Ai
	OpGetValY   // get_value Yn, Ai
	OpGetConst  // get_constant c, Ai      (Fn.Name = c)
	OpGetInt    // get_integer i, Ai       (I = i)
	OpGetNil    // get_nil Ai
	OpGetList   // get_list Ai
	OpGetStruct // get_structure f/n, Ai  (Fn = f/n)

	// Put instructions: body-argument construction. A1 is Ai.
	OpPutVarX   // put_variable Xn, Ai (fresh heap cell; both registers set)
	OpPutVarY   // put_variable Yn, Ai (fresh heap cell stored in Yn)
	OpPutValX   // put_value Xn, Ai
	OpPutValY   // put_value Yn, Ai
	OpPutConst  // put_constant c, Ai
	OpPutInt    // put_integer i, Ai
	OpPutNil    // put_nil Ai
	OpPutList   // put_list Ai
	OpPutStruct // put_structure f/n, Ai

	// Unify instructions: subterm unification in read/write mode.
	OpUnifyVarX  // unify_variable Xn
	OpUnifyVarY  // unify_variable Yn
	OpUnifyValX  // unify_value Xn
	OpUnifyValY  // unify_value Yn
	OpUnifyConst // unify_constant c
	OpUnifyInt   // unify_integer i
	OpUnifyNil   // unify_nil
	OpUnifyVoid  // unify_void n            (A2 = count)

	// Procedural instructions.
	OpAllocate   // allocate n              (A2 = environment size)
	OpDeallocate // deallocate
	OpCall       // call f/n                (Fn, L = entry address)
	OpExecute    // execute f/n             (Fn, L) — last-call optimization
	OpProceed    // proceed
	OpBuiltin    // builtin b, n            (A1 = BuiltinID, A2 = arity)
	OpHalt       // halt — query sentinel return address

	// Cut support.
	OpNeckCut  // cut choice points created since predicate entry
	OpGetLevel // get_level Yn             (A2 = n) — save cut barrier
	OpCutTo    // cut Yn                   (A2 = n) — deep cut

	// Choice instructions.
	OpTryMeElse   // try_me_else L
	OpRetryMeElse // retry_me_else L
	OpTrustMe     // trust_me
	OpTry         // try L   (alternative = next instruction)
	OpRetry       // retry L
	OpTrust       // trust L

	// Indexing instructions.
	OpSwitchOnTerm   // switch_on_term Lv, Lc, Ll, Ls
	OpSwitchOnConst  // switch_on_constant table
	OpSwitchOnStruct // switch_on_structure table

	// Specialized instructions emitted by internal/optimize when the
	// dataflow analysis proves an argument non-variable at every call:
	// the variable (write-mode / binding) paths are compiled away.
	OpGetConstCmp   // get_constant, argument known nonvar: compare only
	OpGetIntCmp     // get_integer, known nonvar
	OpGetNilCmp     // get_nil, known nonvar
	OpGetListRead   // get_list, known nonvar: read mode only
	OpGetStructRead // get_structure, known nonvar: read mode only

	// NumOps is the opcode count — the size of per-opcode histogram
	// arrays. Keep it last.
	NumOps
)

// opNames maps opcodes to their disassembly mnemonics (X/Y register
// variants are distinguished so per-opcode histograms stay precise).
var opNames = [NumOps]string{
	OpNop:            "nop",
	OpGetVarX:        "get_variable_x",
	OpGetVarY:        "get_variable_y",
	OpGetValX:        "get_value_x",
	OpGetValY:        "get_value_y",
	OpGetConst:       "get_constant",
	OpGetInt:         "get_integer",
	OpGetNil:         "get_nil",
	OpGetList:        "get_list",
	OpGetStruct:      "get_structure",
	OpPutVarX:        "put_variable_x",
	OpPutVarY:        "put_variable_y",
	OpPutValX:        "put_value_x",
	OpPutValY:        "put_value_y",
	OpPutConst:       "put_constant",
	OpPutInt:         "put_integer",
	OpPutNil:         "put_nil",
	OpPutList:        "put_list",
	OpPutStruct:      "put_structure",
	OpUnifyVarX:      "unify_variable_x",
	OpUnifyVarY:      "unify_variable_y",
	OpUnifyValX:      "unify_value_x",
	OpUnifyValY:      "unify_value_y",
	OpUnifyConst:     "unify_constant",
	OpUnifyInt:       "unify_integer",
	OpUnifyNil:       "unify_nil",
	OpUnifyVoid:      "unify_void",
	OpAllocate:       "allocate",
	OpDeallocate:     "deallocate",
	OpCall:           "call",
	OpExecute:        "execute",
	OpProceed:        "proceed",
	OpBuiltin:        "builtin",
	OpHalt:           "halt",
	OpNeckCut:        "neck_cut",
	OpGetLevel:       "get_level",
	OpCutTo:          "cut",
	OpTryMeElse:      "try_me_else",
	OpRetryMeElse:    "retry_me_else",
	OpTrustMe:        "trust_me",
	OpTry:            "try",
	OpRetry:          "retry",
	OpTrust:          "trust",
	OpSwitchOnTerm:   "switch_on_term",
	OpSwitchOnConst:  "switch_on_constant",
	OpSwitchOnStruct: "switch_on_structure",
	OpGetConstCmp:    "get_constant*",
	OpGetIntCmp:      "get_integer*",
	OpGetNilCmp:      "get_nil*",
	OpGetListRead:    "get_list*",
	OpGetStructRead:  "get_structure*",
}

// String returns the opcode's mnemonic.
func (o Op) String() string {
	if o < NumOps && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// FailAddr is the pseudo-address meaning "backtrack" in switch targets.
const FailAddr = -1

// ConstKey identifies a constant in switch_on_constant tables.
type ConstKey struct {
	IsInt bool
	I     int64
	A     term.Atom
}

// Instr is one decoded WAM instruction.
type Instr struct {
	Op Op
	A1 int          // argument register Ai, or builtin id
	A2 int          // Xn/Yn register, arity, env size, void count
	Fn term.Functor // functor/constant operand
	I  int64        // integer operand
	L  int          // code-address operand

	// Switch targets (OpSwitchOnTerm).
	LV, LC, LL, LS int
	// Constant/functor dispatch tables.
	TblC map[ConstKey]int
	TblS map[term.Functor]int
	// LD is the dispatch-table default: where OpSwitchOnConst and
	// OpSwitchOnStruct jump when the key is absent from the table. The
	// zero value means "no default — fail", which is what the compiler
	// emits (its tables are complete for the clause set). The optimizer's
	// analysis-directed indexing pass sets LD to the block of clauses
	// with variable first head arguments, which match any key; such
	// blocks are appended at the end of the code array, so a real
	// default target is never address 0.
	LD int
}

// Proc is one compiled predicate.
type Proc struct {
	Fn term.Functor
	// Entry is the address the concrete machine jumps to: the indexing
	// preamble when present, else the first choice instruction or single
	// clause.
	Entry int
	// Clauses holds the address of each clause's code, *after* its
	// try/retry/trust instruction, in source order. The abstract machine
	// enumerates these directly (the paper folds backtracking-point
	// management into call/proceed rather than try/trust).
	Clauses []int
	// EnvSizes[i] is the environment size of clause i (0 when the clause
	// does not allocate); used by diagnostics only.
	EnvSizes []int
	// NumClauses is len(Clauses); kept for cheap stats.
	Profile ProcProfile
}

// ProcProfile carries static per-predicate statistics for reports.
type ProcProfile struct {
	Instructions int
}

// Module is a compiled program: a flat code array plus the procedure map.
type Module struct {
	Tab   *term.Tab
	Code  []Instr
	Procs map[term.Functor]*Proc
	Order []term.Functor // definition order
}

// Proc returns the procedure for f, or nil when undefined.
func (m *Module) Proc(f term.Functor) *Proc { return m.Procs[f] }

// OwnerOf returns the predicate whose code contains addr (procedures are
// laid out contiguously in definition order).
func (m *Module) OwnerOf(addr int) (term.Functor, bool) {
	var best term.Functor
	bestEntry := -1
	for _, fn := range m.Order {
		p := m.Procs[fn]
		if p.Entry <= addr && p.Entry > bestEntry {
			best = fn
			bestEntry = p.Entry
		}
	}
	return best, bestEntry >= 0
}

// Size returns the static code size in instructions — the paper's Table 1
// "Size" column.
func (m *Module) Size() int { return len(m.Code) }

// BuiltinID identifies an inline builtin predicate.
type BuiltinID int

// Builtin predicates required by the benchmark suite.
const (
	BIIs       BuiltinID = iota // is/2
	BILt                        // </2
	BILe                        // =</2
	BIGt                        // >/2
	BIGe                        // >=/2
	BIArithEq                   // =:=/2
	BIArithNe                   // =\=/2
	BIUnify                     // =/2
	BINotUnify                  // \=/2
	BIEq                        // ==/2
	BINotEq                     // \==/2
	BIVar                       // var/1
	BINonvar                    // nonvar/1
	BIAtom                      // atom/1
	BIInteger                   // integer/1
	BIAtomic                    // atomic/1
	BITrue                      // true/0
	BIFail                      // fail/0
	BIWrite                     // write/1
	BINl                        // nl/0
	BIFunctor                   // functor/3
	BIArg                       // arg/3
	BIHalt                      // halt/0
	BICompare                   // compare/3 (standard order of terms)
	BITermLt                    // @</2
	BITermLe                    // @=</2
	BITermGt                    // @>/2
	BITermGe                    // @>=/2
	BILength                    // length/2
	BIAssert                    // assert/1 (facts only)
	BIRetract                   // retract/1 (facts only)
	NumBuiltins
)

var builtinNames = map[BuiltinID]struct {
	name  string
	arity int
}{
	BIIs:       {"is", 2},
	BILt:       {"<", 2},
	BILe:       {"=<", 2},
	BIGt:       {">", 2},
	BIGe:       {">=", 2},
	BIArithEq:  {"=:=", 2},
	BIArithNe:  {"=\\=", 2},
	BIUnify:    {"=", 2},
	BINotUnify: {"\\=", 2},
	BIEq:       {"==", 2},
	BINotEq:    {"\\==", 2},
	BIVar:      {"var", 1},
	BINonvar:   {"nonvar", 1},
	BIAtom:     {"atom", 1},
	BIInteger:  {"integer", 1},
	BIAtomic:   {"atomic", 1},
	BITrue:     {"true", 0},
	BIFail:     {"fail", 0},
	BIWrite:    {"write", 1},
	BINl:       {"nl", 0},
	BIFunctor:  {"functor", 3},
	BIArg:      {"arg", 3},
	BIHalt:     {"halt", 0},
	BICompare:  {"compare", 3},
	BITermLt:   {"@<", 2},
	BITermLe:   {"@=<", 2},
	BITermGt:   {"@>", 2},
	BITermGe:   {"@>=", 2},
	BILength:   {"length", 2},
	BIAssert:   {"assert", 1},
	BIRetract:  {"retract", 1},
}

// BuiltinName returns the predicate-indicator spelling of a builtin.
func BuiltinName(id BuiltinID) string {
	bi := builtinNames[id]
	return fmt.Sprintf("%s/%d", bi.name, bi.arity)
}

// Builtins returns the functor->id table for tab. The compiler consults
// it to emit OpBuiltin instead of OpCall.
func Builtins(tab *term.Tab) map[term.Functor]BuiltinID {
	out := make(map[term.Functor]BuiltinID, len(builtinNames))
	for id, bi := range builtinNames {
		out[tab.Func(bi.name, bi.arity)] = id
	}
	return out
}

// Disasm renders the module's code with addresses and procedure labels.
// The output is accepted back by Assemble.
func (m *Module) Disasm() string {
	entryLabels := make(map[int][]string)
	clauseLabels := make(map[int][]string)
	for _, f := range m.Order {
		p := m.Procs[f]
		entryLabels[p.Entry] = append(entryLabels[p.Entry], m.Tab.FuncString(f))
		for i, c := range p.Clauses {
			clauseLabels[c] = append(clauseLabels[c],
				fmt.Sprintf("%s clause %d", m.Tab.FuncString(f), i+1))
		}
	}
	var b strings.Builder
	for addr, ins := range m.Code {
		for _, lbl := range entryLabels[addr] {
			fmt.Fprintf(&b, "%% %s:\n", lbl)
		}
		for _, lbl := range clauseLabels[addr] {
			fmt.Fprintf(&b, "%% %s:\n", lbl)
		}
		fmt.Fprintf(&b, "%5d  %s\n", addr, m.DisasmInstr(ins))
	}
	return b.String()
}

// switchEntry is one rendered switch-table branch.
type switchEntry struct {
	key  string
	addr int
}

// joinSwitchEntries renders switch-table branches sorted by target
// address (clause order), tie-broken by key, so disassembly output is
// deterministic despite the tables being Go maps.
func joinSwitchEntries(ents []switchEntry) string {
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].addr != ents[j].addr {
			return ents[i].addr < ents[j].addr
		}
		return ents[i].key < ents[j].key
	})
	parts := make([]string, len(ents))
	for i, e := range ents {
		parts[i] = fmt.Sprintf("%s->%d", e.key, e.addr)
	}
	return strings.Join(parts, ", ")
}

// switchDefault renders a dispatch table's default target; empty for
// the compiler's complete tables (LD zero), so pre-optimizer listings
// are byte-identical to earlier revisions.
func switchDefault(ins Instr) string {
	if ins.LD == 0 {
		return ""
	}
	return fmt.Sprintf(" default %d", ins.LD)
}

// DisasmInstr renders one instruction.
func (m *Module) DisasmInstr(ins Instr) string {
	t := m.Tab
	switch ins.Op {
	case OpNop:
		return "nop"
	case OpGetVarX:
		return fmt.Sprintf("get_variable X%d, A%d", ins.A2, ins.A1)
	case OpGetVarY:
		return fmt.Sprintf("get_variable Y%d, A%d", ins.A2, ins.A1)
	case OpGetValX:
		return fmt.Sprintf("get_value X%d, A%d", ins.A2, ins.A1)
	case OpGetValY:
		return fmt.Sprintf("get_value Y%d, A%d", ins.A2, ins.A1)
	case OpGetConst:
		return fmt.Sprintf("get_constant %s, A%d", t.Name(ins.Fn.Name), ins.A1)
	case OpGetInt:
		return fmt.Sprintf("get_integer %d, A%d", ins.I, ins.A1)
	case OpGetNil:
		return fmt.Sprintf("get_nil A%d", ins.A1)
	case OpGetList:
		return fmt.Sprintf("get_list A%d", ins.A1)
	case OpGetStruct:
		return fmt.Sprintf("get_structure %s, A%d", t.FuncString(ins.Fn), ins.A1)
	case OpPutVarX:
		return fmt.Sprintf("put_variable X%d, A%d", ins.A2, ins.A1)
	case OpPutVarY:
		return fmt.Sprintf("put_variable Y%d, A%d", ins.A2, ins.A1)
	case OpPutValX:
		return fmt.Sprintf("put_value X%d, A%d", ins.A2, ins.A1)
	case OpPutValY:
		return fmt.Sprintf("put_value Y%d, A%d", ins.A2, ins.A1)
	case OpPutConst:
		return fmt.Sprintf("put_constant %s, A%d", t.Name(ins.Fn.Name), ins.A1)
	case OpPutInt:
		return fmt.Sprintf("put_integer %d, A%d", ins.I, ins.A1)
	case OpPutNil:
		return fmt.Sprintf("put_nil A%d", ins.A1)
	case OpPutList:
		return fmt.Sprintf("put_list A%d", ins.A1)
	case OpPutStruct:
		return fmt.Sprintf("put_structure %s, A%d", t.FuncString(ins.Fn), ins.A1)
	case OpUnifyVarX:
		return fmt.Sprintf("unify_variable X%d", ins.A2)
	case OpUnifyVarY:
		return fmt.Sprintf("unify_variable Y%d", ins.A2)
	case OpUnifyValX:
		return fmt.Sprintf("unify_value X%d", ins.A2)
	case OpUnifyValY:
		return fmt.Sprintf("unify_value Y%d", ins.A2)
	case OpUnifyConst:
		return fmt.Sprintf("unify_constant %s", t.Name(ins.Fn.Name))
	case OpUnifyInt:
		return fmt.Sprintf("unify_integer %d", ins.I)
	case OpUnifyNil:
		return "unify_nil"
	case OpUnifyVoid:
		return fmt.Sprintf("unify_void %d", ins.A2)
	case OpAllocate:
		return fmt.Sprintf("allocate %d", ins.A2)
	case OpDeallocate:
		return "deallocate"
	case OpCall:
		return fmt.Sprintf("call %s", t.FuncString(ins.Fn))
	case OpExecute:
		return fmt.Sprintf("execute %s", t.FuncString(ins.Fn))
	case OpProceed:
		return "proceed"
	case OpBuiltin:
		return fmt.Sprintf("builtin %s", BuiltinName(BuiltinID(ins.A1)))
	case OpHalt:
		return "halt"
	case OpNeckCut:
		return "neck_cut"
	case OpGetLevel:
		return fmt.Sprintf("get_level Y%d", ins.A2)
	case OpCutTo:
		return fmt.Sprintf("cut Y%d", ins.A2)
	case OpTryMeElse:
		return fmt.Sprintf("try_me_else %d", ins.L)
	case OpRetryMeElse:
		return fmt.Sprintf("retry_me_else %d", ins.L)
	case OpTrustMe:
		return "trust_me"
	case OpTry:
		return fmt.Sprintf("try %d", ins.L)
	case OpRetry:
		return fmt.Sprintf("retry %d", ins.L)
	case OpTrust:
		return fmt.Sprintf("trust %d", ins.L)
	case OpSwitchOnTerm:
		return fmt.Sprintf("switch_on_term var:%d const:%d list:%d struct:%d", ins.LV, ins.LC, ins.LL, ins.LS)
	case OpSwitchOnConst:
		// Render in clause (target-address) order, not map order: the
		// disassembly is compared byte for byte by the golden tests.
		ents := make([]switchEntry, 0, len(ins.TblC))
		for k, v := range ins.TblC {
			if k.IsInt {
				ents = append(ents, switchEntry{fmt.Sprintf("%d", k.I), v})
			} else {
				ents = append(ents, switchEntry{t.Name(k.A), v})
			}
		}
		return "switch_on_constant {" + joinSwitchEntries(ents) + "}" + switchDefault(ins)
	case OpSwitchOnStruct:
		ents := make([]switchEntry, 0, len(ins.TblS))
		for k, v := range ins.TblS {
			ents = append(ents, switchEntry{t.FuncString(k), v})
		}
		return "switch_on_structure {" + joinSwitchEntries(ents) + "}" + switchDefault(ins)
	case OpGetConstCmp:
		return fmt.Sprintf("get_constant* %s, A%d", t.Name(ins.Fn.Name), ins.A1)
	case OpGetIntCmp:
		return fmt.Sprintf("get_integer* %d, A%d", ins.I, ins.A1)
	case OpGetNilCmp:
		return fmt.Sprintf("get_nil* A%d", ins.A1)
	case OpGetListRead:
		return fmt.Sprintf("get_list* A%d", ins.A1)
	case OpGetStructRead:
		return fmt.Sprintf("get_structure* %s, A%d", t.FuncString(ins.Fn), ins.A1)
	}
	return fmt.Sprintf("op(%d)", ins.Op)
}
