package wam_test

import (
	"os"
	"path/filepath"
	"testing"

	"awam/internal/bench"
	"awam/internal/compiler"
	"awam/internal/parser"
	"awam/internal/term"
	"awam/internal/wam"
)

// disasmOf compiles one benchmark and returns its disassembly.
func disasmOf(t *testing.T, p bench.Program) string {
	t.Helper()
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, p.Source)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		t.Fatal(err)
	}
	return mod.Disasm()
}

// TestDisasmGolden pins the textual WAM code of every benchmark in both
// suites against goldens under testdata/. The behavioral round-trip
// test already proves Disasm/Assemble agree; the goldens additionally
// make any compiler or disassembler output change visible in review as
// a plain-text diff. Regenerate with WAM_WRITE_GOLDEN=1 after an
// intentional code-generation change.
func TestDisasmGolden(t *testing.T) {
	write := os.Getenv("WAM_WRITE_GOLDEN") != ""
	if write {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range bench.AllPrograms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			text := disasmOf(t, p)
			golden := filepath.Join("testdata", p.Name+".wam")
			if write {
				if err := os.WriteFile(golden, []byte(text), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with WAM_WRITE_GOLDEN=1 to regenerate): %v", err)
			}
			if text != string(want) {
				t.Fatalf("disassembly drifted from %s; regenerate with WAM_WRITE_GOLDEN=1 if intentional", golden)
			}
		})
	}
}

// TestAssembleGoldenIdempotent assembles each golden back into a module
// and disassembles again: the text must reproduce itself byte for byte,
// so the golden files are themselves valid assembler input (the paper's
// pipeline consumed textual WAM code) and the format loses nothing.
func TestAssembleGoldenIdempotent(t *testing.T) {
	if os.Getenv("WAM_WRITE_GOLDEN") != "" {
		t.Skip("goldens are being regenerated")
	}
	for _, p := range bench.AllPrograms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", p.Name+".wam"))
			if err != nil {
				t.Fatal(err)
			}
			tab := term.NewTab()
			mod, err := wam.Assemble(tab, string(want))
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			if got := mod.Disasm(); got != string(want) {
				t.Fatal("disasm(assemble(golden)) is not the golden text")
			}
		})
	}
}
