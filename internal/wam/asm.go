package wam

import (
	"fmt"
	"strconv"
	"strings"

	"awam/internal/term"
)

// Assemble parses a textual WAM listing — the same format Disasm emits —
// back into a Module. The paper's analyzer consumed WAM files produced
// by the PLM compiler; Assemble gives this toolchain the same property:
// `awam analyze file.wam` works on code produced elsewhere (or edited by
// hand), and Disasm/Assemble round-trips are tested.
//
// Format: one instruction per line, optionally prefixed by its address;
// `% name/arity:` comment lines label procedure entries, and
// `% name/arity clause N:` lines label clause starts. Blank lines and
// other comments are ignored.
func Assemble(tab *term.Tab, src string) (*Module, error) {
	m := &Module{Tab: tab, Procs: make(map[term.Functor]*Proc)}
	type fixup struct {
		addr int
		fn   term.Functor
	}
	var fixups []fixup
	var current *Proc

	lines := strings.Split(src, "\n")
	for lineNo, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "%") {
			// Label comments.
			text := strings.TrimSpace(strings.TrimPrefix(line, "%"))
			text = strings.TrimSuffix(text, ":")
			if fn, n, ok := parseClauseLabel(tab, text); ok {
				// Optimized modules append the dispatch entry after the
				// clause bodies, so a clause label may precede its
				// procedure's entry label; create the procedure on first
				// mention and let the entry label fill in the address.
				p := m.Procs[fn]
				if p == nil {
					p = &Proc{Fn: fn, Entry: FailAddr}
					m.Procs[fn] = p
					m.Order = append(m.Order, fn)
					current = p
				}
				for len(p.Clauses) < n {
					p.Clauses = append(p.Clauses, len(m.Code))
				}
				continue
			}
			if fn, ok := parseProcLabel(tab, text); ok {
				p := m.Procs[fn]
				if p == nil {
					p = &Proc{Fn: fn}
					m.Procs[fn] = p
					m.Order = append(m.Order, fn)
				}
				p.Entry = len(m.Code)
				current = p
				continue
			}
			continue // ordinary comment
		}
		// Strip a leading address.
		fields := strings.Fields(line)
		if len(fields) > 0 {
			if _, err := strconv.Atoi(fields[0]); err == nil {
				line = strings.TrimSpace(line[strings.Index(line, fields[0])+len(fields[0]):])
			}
		}
		ins, callFn, err := parseInstr(tab, line)
		if err != nil {
			return nil, fmt.Errorf("wam asm line %d: %w", lineNo+1, err)
		}
		if callFn != nil {
			fixups = append(fixups, fixup{addr: len(m.Code), fn: *callFn})
		}
		m.Code = append(m.Code, ins)
		if current != nil {
			current.Profile.Instructions++
		}
	}
	// Procedures with no explicit clause labels get a single clause at
	// their entry; procedures whose entry label never appeared (clause
	// labels only) enter at their first clause.
	for _, fn := range m.Order {
		p := m.Procs[fn]
		if p.Entry == FailAddr && len(p.Clauses) > 0 {
			p.Entry = p.Clauses[0]
		}
		if len(p.Clauses) == 0 {
			p.Clauses = []int{p.Entry}
		}
	}
	for _, fx := range fixups {
		if p, ok := m.Procs[fx.fn]; ok {
			m.Code[fx.addr].L = p.Entry
		} else {
			m.Code[fx.addr].L = FailAddr
		}
	}
	return m, nil
}

func parseProcLabel(tab *term.Tab, text string) (term.Functor, bool) {
	return parseIndicator(tab, text)
}

func parseClauseLabel(tab *term.Tab, text string) (term.Functor, int, bool) {
	i := strings.Index(text, " clause ")
	if i < 0 {
		return term.Functor{}, 0, false
	}
	fn, ok := parseIndicator(tab, text[:i])
	if !ok {
		return term.Functor{}, 0, false
	}
	n, err := strconv.Atoi(strings.TrimSpace(text[i+len(" clause "):]))
	if err != nil {
		return term.Functor{}, 0, false
	}
	return fn, n, true
}

func parseIndicator(tab *term.Tab, text string) (term.Functor, bool) {
	i := strings.LastIndex(text, "/")
	if i <= 0 {
		return term.Functor{}, false
	}
	arity, err := strconv.Atoi(text[i+1:])
	if err != nil || arity < 0 {
		return term.Functor{}, false
	}
	name := unquoteAtom(text[:i])
	return tab.Func(name, arity), true
}

func unquoteAtom(s string) string {
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return strings.ReplaceAll(s[1:len(s)-1], "\\'", "'")
	}
	return s
}

// parseInstr decodes one instruction line. It returns a functor to link
// when the instruction is a call/execute (resolved after all procedures
// are known).
func parseInstr(tab *term.Tab, line string) (Instr, *term.Functor, error) {
	name := line
	rest := ""
	if i := strings.IndexByte(line, ' '); i >= 0 {
		name, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	args := splitOperands(rest)

	reg := func(i int) (int, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("missing operand %d in %q", i, line)
		}
		a := args[i]
		if len(a) > 1 && (a[0] == 'A' || a[0] == 'X' || a[0] == 'Y') {
			return strconv.Atoi(a[1:])
		}
		return strconv.Atoi(a)
	}
	num := func(i int) (int64, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("missing operand %d in %q", i, line)
		}
		return strconv.ParseInt(args[i], 10, 64)
	}

	mk := func(op Op) Instr { return Instr{Op: op} }

	switch name {
	case "nop":
		return mk(OpNop), nil, nil
	case "get_variable", "get_value", "put_variable", "put_value":
		return parseRegReg(name, args, line)
	case "unify_variable", "unify_value":
		if len(args) != 1 || len(args[0]) < 2 {
			return Instr{}, nil, fmt.Errorf("%s needs one register: %q", name, line)
		}
		n, err := strconv.Atoi(args[0][1:])
		if err != nil {
			return Instr{}, nil, err
		}
		isY := args[0][0] == 'Y'
		var op Op
		switch {
		case name == "unify_variable" && isY:
			op = OpUnifyVarY
		case name == "unify_variable":
			op = OpUnifyVarX
		case isY:
			op = OpUnifyValY
		default:
			op = OpUnifyValX
		}
		return Instr{Op: op, A2: n}, nil, nil
	case "get_constant", "get_constant*":
		if len(args) != 2 {
			return Instr{}, nil, fmt.Errorf("get_constant needs 2 operands: %q", line)
		}
		ai, err := reg(1)
		if err != nil {
			return Instr{}, nil, err
		}
		op := OpGetConst
		if name == "get_constant*" {
			op = OpGetConstCmp
		}
		return Instr{Op: op, A1: ai, Fn: term.Functor{Name: tab.Intern(unquoteAtom(args[0]))}}, nil, nil
	case "get_integer", "get_integer*":
		n, err := num(0)
		if err != nil {
			return Instr{}, nil, err
		}
		ai, err := reg(1)
		if err != nil {
			return Instr{}, nil, err
		}
		op := OpGetInt
		if name == "get_integer*" {
			op = OpGetIntCmp
		}
		return Instr{Op: op, A1: ai, I: n}, nil, nil
	case "get_nil", "get_nil*", "get_list", "get_list*", "put_nil", "put_list":
		ai, err := reg(0)
		if err != nil {
			return Instr{}, nil, err
		}
		ops := map[string]Op{
			"get_nil": OpGetNil, "get_nil*": OpGetNilCmp,
			"get_list": OpGetList, "get_list*": OpGetListRead,
			"put_nil": OpPutNil, "put_list": OpPutList,
		}
		return Instr{Op: ops[name], A1: ai}, nil, nil
	case "get_structure", "get_structure*", "put_structure":
		fn, ok := parseIndicator(tab, args[0])
		if !ok {
			return Instr{}, nil, fmt.Errorf("bad functor %q", args[0])
		}
		ai, err := reg(1)
		if err != nil {
			return Instr{}, nil, err
		}
		ops := map[string]Op{
			"get_structure": OpGetStruct, "get_structure*": OpGetStructRead,
			"put_structure": OpPutStruct,
		}
		return Instr{Op: ops[name], A1: ai, Fn: fn}, nil, nil
	case "put_constant":
		ai, err := reg(1)
		if err != nil {
			return Instr{}, nil, err
		}
		return Instr{Op: OpPutConst, A1: ai, Fn: term.Functor{Name: tab.Intern(unquoteAtom(args[0]))}}, nil, nil
	case "put_integer":
		n, err := num(0)
		if err != nil {
			return Instr{}, nil, err
		}
		ai, err := reg(1)
		if err != nil {
			return Instr{}, nil, err
		}
		return Instr{Op: OpPutInt, A1: ai, I: n}, nil, nil
	case "unify_constant":
		return Instr{Op: OpUnifyConst, Fn: term.Functor{Name: tab.Intern(unquoteAtom(args[0]))}}, nil, nil
	case "unify_integer":
		n, err := num(0)
		if err != nil {
			return Instr{}, nil, err
		}
		return Instr{Op: OpUnifyInt, I: n}, nil, nil
	case "unify_nil":
		return mk(OpUnifyNil), nil, nil
	case "unify_void":
		n, err := num(0)
		if err != nil {
			return Instr{}, nil, err
		}
		return Instr{Op: OpUnifyVoid, A2: int(n)}, nil, nil
	case "allocate":
		n, err := num(0)
		if err != nil {
			return Instr{}, nil, err
		}
		return Instr{Op: OpAllocate, A2: int(n)}, nil, nil
	case "deallocate":
		return mk(OpDeallocate), nil, nil
	case "call", "execute":
		fn, ok := parseIndicator(tab, args[0])
		if !ok {
			return Instr{}, nil, fmt.Errorf("bad predicate %q", args[0])
		}
		op := OpCall
		if name == "execute" {
			op = OpExecute
		}
		return Instr{Op: op, Fn: fn}, &fn, nil
	case "proceed":
		return mk(OpProceed), nil, nil
	case "builtin":
		fn, ok := parseIndicator(tab, args[0])
		if !ok {
			return Instr{}, nil, fmt.Errorf("bad builtin %q", args[0])
		}
		for id, bi := range builtinNames {
			if tab.Intern(bi.name) == fn.Name && bi.arity == fn.Arity {
				return Instr{Op: OpBuiltin, A1: int(id), A2: bi.arity}, nil, nil
			}
		}
		return Instr{}, nil, fmt.Errorf("unknown builtin %q", args[0])
	case "halt":
		return mk(OpHalt), nil, nil
	case "neck_cut":
		return mk(OpNeckCut), nil, nil
	case "get_level":
		y, err := reg(0)
		if err != nil {
			return Instr{}, nil, err
		}
		return Instr{Op: OpGetLevel, A2: y}, nil, nil
	case "cut":
		y, err := reg(0)
		if err != nil {
			return Instr{}, nil, err
		}
		return Instr{Op: OpCutTo, A2: y}, nil, nil
	case "try_me_else", "retry_me_else", "try", "retry", "trust":
		n, err := num(0)
		if err != nil {
			return Instr{}, nil, err
		}
		ops := map[string]Op{
			"try_me_else": OpTryMeElse, "retry_me_else": OpRetryMeElse,
			"try": OpTry, "retry": OpRetry, "trust": OpTrust,
		}
		return Instr{Op: ops[name], L: int(n)}, nil, nil
	case "trust_me":
		return mk(OpTrustMe), nil, nil
	case "switch_on_term":
		// Disasm separates the arms with spaces; accept commas too.
		arms := strings.Fields(strings.ReplaceAll(rest, ",", " "))
		ins := Instr{Op: OpSwitchOnTerm}
		for _, a := range arms {
			kv := strings.SplitN(a, ":", 2)
			if len(kv) != 2 {
				return Instr{}, nil, fmt.Errorf("bad switch arm %q", a)
			}
			n, err := strconv.Atoi(kv[1])
			if err != nil {
				return Instr{}, nil, err
			}
			switch kv[0] {
			case "var":
				ins.LV = n
			case "const":
				ins.LC = n
			case "list":
				ins.LL = n
			case "struct":
				ins.LS = n
			}
		}
		return ins, nil, nil
	case "switch_on_constant":
		body, def, err := splitSwitchDefault(rest)
		if err != nil {
			return Instr{}, nil, err
		}
		tbl, err := parseConstTable(tab, body)
		if err != nil {
			return Instr{}, nil, err
		}
		return Instr{Op: OpSwitchOnConst, TblC: tbl, LD: def}, nil, nil
	case "switch_on_structure":
		body, def, err := splitSwitchDefault(rest)
		if err != nil {
			return Instr{}, nil, err
		}
		tbl, err := parseStructTable(tab, body)
		if err != nil {
			return Instr{}, nil, err
		}
		return Instr{Op: OpSwitchOnStruct, TblS: tbl, LD: def}, nil, nil
	default:
		return Instr{}, nil, fmt.Errorf("unknown instruction %q", name)
	}
}

// splitSwitchDefault splits a dispatch-table operand "{...} default N"
// into the braced table text and the default address (0 when absent).
func splitSwitchDefault(rest string) (string, int, error) {
	end := strings.LastIndex(rest, "}")
	if end < 0 {
		return rest, 0, nil
	}
	tail := strings.TrimSpace(rest[end+1:])
	if tail == "" {
		return rest, 0, nil
	}
	if !strings.HasPrefix(tail, "default ") {
		return "", 0, fmt.Errorf("bad switch suffix %q", tail)
	}
	n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(tail, "default ")))
	if err != nil {
		return "", 0, err
	}
	return rest[:end+1], n, nil
}

func parseRegReg(name string, args []string, line string) (Instr, *term.Functor, error) {
	if len(args) != 2 {
		return Instr{}, nil, fmt.Errorf("%s needs 2 operands: %q", name, line)
	}
	src, dst := args[0], args[1]
	n, err := strconv.Atoi(src[1:])
	if err != nil {
		return Instr{}, nil, err
	}
	isY := src[0] == 'Y'
	var ai int
	if dst != "" {
		ai, err = strconv.Atoi(dst[1:])
		if err != nil {
			return Instr{}, nil, err
		}
	}
	var op Op
	switch {
	case name == "get_variable" && isY:
		op = OpGetVarY
	case name == "get_variable":
		op = OpGetVarX
	case name == "get_value" && isY:
		op = OpGetValY
	case name == "get_value":
		op = OpGetValX
	case name == "put_variable" && isY:
		op = OpPutVarY
	case name == "put_variable":
		op = OpPutVarX
	case name == "put_value" && isY:
		op = OpPutValY
	case name == "put_value":
		op = OpPutValX
	default:
		return Instr{}, nil, fmt.Errorf("bad register instruction %q", line)
	}
	return Instr{Op: op, A1: ai, A2: n}, nil, nil
}

// splitOperands splits "a, b, c" into fields, keeping {...} tables
// intact.
func splitOperands(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '{':
			depth++
		case '}':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func parseConstTable(tab *term.Tab, rest string) (map[ConstKey]int, error) {
	body := strings.TrimSpace(rest)
	body = strings.TrimPrefix(body, "{")
	body = strings.TrimSuffix(body, "}")
	tbl := make(map[ConstKey]int)
	if strings.TrimSpace(body) == "" {
		return tbl, nil
	}
	for _, ent := range strings.Split(body, ",") {
		kv := strings.SplitN(strings.TrimSpace(ent), "->", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad constant table entry %q", ent)
		}
		tgt, err := strconv.Atoi(strings.TrimSpace(kv[1]))
		if err != nil {
			return nil, err
		}
		keyText := strings.TrimSpace(kv[0])
		if n, err := strconv.ParseInt(keyText, 10, 64); err == nil {
			tbl[ConstKey{IsInt: true, I: n}] = tgt
		} else {
			tbl[ConstKey{A: tab.Intern(unquoteAtom(keyText))}] = tgt
		}
	}
	return tbl, nil
}

func parseStructTable(tab *term.Tab, rest string) (map[term.Functor]int, error) {
	body := strings.TrimSpace(rest)
	body = strings.TrimPrefix(body, "{")
	body = strings.TrimSuffix(body, "}")
	tbl := make(map[term.Functor]int)
	if strings.TrimSpace(body) == "" {
		return tbl, nil
	}
	for _, ent := range strings.Split(body, ",") {
		kv := strings.SplitN(strings.TrimSpace(ent), "->", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad structure table entry %q", ent)
		}
		tgt, err := strconv.Atoi(strings.TrimSpace(kv[1]))
		if err != nil {
			return nil, err
		}
		fn, ok := parseIndicator(tab, strings.TrimSpace(kv[0]))
		if !ok {
			return nil, fmt.Errorf("bad functor %q", kv[0])
		}
		tbl[fn] = tgt
	}
	return tbl, nil
}
