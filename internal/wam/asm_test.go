package wam

import (
	"math/rand"
	"strings"
	"testing"

	"awam/internal/term"
)

func TestAssembleSimple(t *testing.T) {
	tab := term.NewTab()
	src := `
% p/2:
% p/2 clause 1:
    0  get_constant a, A1
    1  get_variable X3, A2
    2  put_value X3, A1
    3  execute q/1
% q/1:
% q/1 clause 1:
    4  proceed
`
	mod, err := Assemble(tab, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Code) != 5 {
		t.Fatalf("code size = %d", len(mod.Code))
	}
	p := mod.Proc(tab.Func("p", 2))
	if p == nil || p.Entry != 0 || len(p.Clauses) != 1 {
		t.Fatalf("p/2 proc = %+v", p)
	}
	q := mod.Proc(tab.Func("q", 1))
	if q == nil || q.Entry != 4 {
		t.Fatalf("q/1 proc = %+v", q)
	}
	// The execute must be linked to q's entry.
	if mod.Code[3].Op != OpExecute || mod.Code[3].L != 4 {
		t.Fatalf("execute not linked: %+v", mod.Code[3])
	}
}

// TestAssembleClauseBeforeEntry: optimizer output appends a predicate's
// dispatch entry after its clause bodies, so clause labels may precede
// the entry label — and when the entry label is missing entirely, the
// procedure enters at its first clause.
func TestAssembleClauseBeforeEntry(t *testing.T) {
	tab := term.NewTab()
	src := `
% p/1 clause 1:
    0  get_constant a, A1
    1  proceed
% p/1 clause 2:
    2  get_constant b, A1
    3  proceed
% p/1:
    4  try 0
    5  trust 2
`
	mod, err := Assemble(tab, src)
	if err != nil {
		t.Fatal(err)
	}
	p := mod.Proc(tab.Func("p", 1))
	if p == nil || p.Entry != 4 || len(p.Clauses) != 2 || p.Clauses[0] != 0 || p.Clauses[1] != 2 {
		t.Fatalf("p/1 proc = %+v", p)
	}

	mod, err = Assemble(tab, "% p/0 clause 1:\nproceed\n")
	if err != nil {
		t.Fatal(err)
	}
	if p := mod.Proc(tab.Func("p", 0)); p == nil || p.Entry != 0 {
		t.Fatalf("entryless p/0 proc = %+v", p)
	}
}

func TestAssembleUnknownInstruction(t *testing.T) {
	tab := term.NewTab()
	if _, err := Assemble(tab, "% p/0:\nfly_to_moon A1\n"); err == nil {
		t.Fatal("expected error for unknown instruction")
	}
}

func TestAssembleUndefinedCallLinksToFail(t *testing.T) {
	tab := term.NewTab()
	mod, err := Assemble(tab, "% p/0:\n% p/0 clause 1:\ncall missing/0\nproceed\n")
	if err != nil {
		t.Fatal(err)
	}
	if mod.Code[0].L != FailAddr {
		t.Fatalf("undefined call should link to FailAddr, got %d", mod.Code[0].L)
	}
}

func TestAssembleSwitchTables(t *testing.T) {
	tab := term.NewTab()
	src := `
% p/1:
    0  switch_on_term var:1, const:5, list:-1, struct:6
% p/1 clause 1:
    1  try_me_else 3
    2  proceed
% p/1 clause 2:
    3  trust_me
    4  proceed
    5  switch_on_constant {a->2, 7->4}
    6  switch_on_structure {f/2->2}
`
	mod, err := Assemble(tab, src)
	if err != nil {
		t.Fatal(err)
	}
	sw := mod.Code[0]
	if sw.LV != 1 || sw.LC != 5 || sw.LL != FailAddr || sw.LS != 6 {
		t.Fatalf("switch arms = %+v", sw)
	}
	tblC := mod.Code[5].TblC
	if tblC[ConstKey{A: tab.Intern("a")}] != 2 || tblC[ConstKey{IsInt: true, I: 7}] != 4 {
		t.Fatalf("const table = %v", tblC)
	}
	tblS := mod.Code[6].TblS
	if tblS[tab.Func("f", 2)] != 2 {
		t.Fatalf("struct table = %v", tblS)
	}
}

func TestAssembleBuiltins(t *testing.T) {
	tab := term.NewTab()
	mod, err := Assemble(tab, "% p/2:\n% p/2 clause 1:\nbuiltin is/2\nbuiltin =</2\nproceed\n")
	if err != nil {
		t.Fatal(err)
	}
	if BuiltinID(mod.Code[0].A1) != BIIs || BuiltinID(mod.Code[1].A1) != BILe {
		t.Fatalf("builtins decoded as %d, %d", mod.Code[0].A1, mod.Code[1].A1)
	}
}

func TestDisasmLabelsBothEntryAndClause(t *testing.T) {
	tab := term.NewTab()
	mod := &Module{Tab: tab, Procs: make(map[term.Functor]*Proc)}
	fn := tab.Func("p", 0)
	mod.Code = []Instr{{Op: OpProceed}}
	mod.Procs[fn] = &Proc{Fn: fn, Entry: 0, Clauses: []int{0}}
	mod.Order = []term.Functor{fn}
	out := mod.Disasm()
	if !strings.Contains(out, "% p/0:\n% p/0 clause 1:\n") {
		t.Fatalf("labels missing:\n%s", out)
	}
}

func TestAssembleErrorPaths(t *testing.T) {
	tab := term.NewTab()
	cases := []string{
		"% p/0:\nget_constant\n",         // missing operands
		"% p/0:\nbuiltin frobnicate/9\n", // unknown builtin
		"% p/0:\nswitch_on_term var:x\n", // non-numeric target
		"% p/1:\nget_structure zz, A1\n", // malformed functor
	}
	for _, src := range cases {
		if _, err := Assemble(tab, src); err == nil {
			t.Errorf("Assemble(%q): expected error", src)
		}
	}
}

// TestAssembleRandomRoundTrip: random (valid) instruction sequences
// survive Disasm -> Assemble with operands intact.
func TestAssembleRandomRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	tab := term.NewTab()
	atoms := []term.Atom{tab.Intern("a"), tab.Intern("foo"), tab.Nil}
	fns := []term.Functor{tab.Func("f", 2), tab.Func("g", 1), tab.ConsFunctor()}
	genInstr := func() Instr {
		switch r.Intn(14) {
		case 0:
			return Instr{Op: OpGetVarX, A1: 1 + r.Intn(5), A2: 1 + r.Intn(9)}
		case 1:
			return Instr{Op: OpGetValY, A1: 1 + r.Intn(5), A2: r.Intn(4)}
		case 2:
			return Instr{Op: OpGetConst, A1: 1 + r.Intn(5), Fn: term.Functor{Name: atoms[r.Intn(3)]}}
		case 3:
			return Instr{Op: OpGetInt, A1: 1 + r.Intn(5), I: int64(r.Intn(100) - 50)}
		case 4:
			return Instr{Op: OpGetStruct, A1: 1 + r.Intn(5), Fn: fns[r.Intn(2)]}
		case 5:
			return Instr{Op: OpPutList, A1: 1 + r.Intn(5)}
		case 6:
			return Instr{Op: OpUnifyVarX, A2: 1 + r.Intn(9)}
		case 7:
			return Instr{Op: OpUnifyConst, Fn: term.Functor{Name: atoms[r.Intn(3)]}}
		case 8:
			return Instr{Op: OpUnifyVoid, A2: 1 + r.Intn(3)}
		case 9:
			return Instr{Op: OpAllocate, A2: r.Intn(6)}
		case 10:
			return Instr{Op: OpNeckCut}
		case 11:
			return Instr{Op: OpGetLevel, A2: r.Intn(4)}
		case 12:
			return Instr{Op: OpBuiltin, A1: int(BIIs), A2: 2}
		default:
			return Instr{Op: OpUnifyNil}
		}
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(12)
		mod := &Module{Tab: tab, Procs: make(map[term.Functor]*Proc)}
		fn := tab.Func("p", 2)
		for i := 0; i < n; i++ {
			mod.Code = append(mod.Code, genInstr())
		}
		mod.Code = append(mod.Code, Instr{Op: OpProceed})
		mod.Procs[fn] = &Proc{Fn: fn, Entry: 0, Clauses: []int{0}}
		mod.Order = []term.Functor{fn}

		back, err := Assemble(tab, mod.Disasm())
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, mod.Disasm())
		}
		if len(back.Code) != len(mod.Code) {
			t.Fatalf("trial %d: length %d vs %d", trial, len(back.Code), len(mod.Code))
		}
		for i := range mod.Code {
			a, b := mod.Code[i], back.Code[i]
			if a.Op != b.Op || a.A1 != b.A1 || a.A2 != b.A2 || a.Fn != b.Fn || a.I != b.I {
				t.Fatalf("trial %d instr %d: %+v vs %+v\n%s", trial, i, a, b, mod.Disasm())
			}
		}
	}
}
