package wam_test

import (
	"testing"

	"awam/internal/bench"
	"awam/internal/compiler"
	"awam/internal/core"
	"awam/internal/machine"
	"awam/internal/parser"
	"awam/internal/term"
	"awam/internal/wam"
)

// TestDisasmAssembleRoundTrip compiles every benchmark, disassembles it,
// reassembles the text, and checks the reassembled module behaves
// identically: main/0 runs with the same step count and the analysis
// produces the same extension table. This validates both the assembler
// and that the textual WAM format carries the full program (the paper's
// input format was textual WAM code from the PLM compiler).
func TestDisasmAssembleRoundTrip(t *testing.T) {
	for _, p := range bench.AllPrograms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tab := term.NewTab()
			prog, err := parser.ParseProgram(tab, p.Source)
			if err != nil {
				t.Fatal(err)
			}
			mod, err := compiler.Compile(tab, prog)
			if err != nil {
				t.Fatal(err)
			}
			text := mod.Disasm()
			mod2, err := wam.Assemble(tab, text)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			if len(mod2.Code) != len(mod.Code) {
				t.Fatalf("code size differs: %d vs %d", len(mod2.Code), len(mod.Code))
			}
			// Same concrete behavior, instruction for instruction.
			m1 := machine.New(mod)
			ok1, err1 := m1.RunMain()
			m2 := machine.New(mod2)
			ok2, err2 := m2.RunMain()
			if ok1 != ok2 || (err1 == nil) != (err2 == nil) {
				t.Fatalf("behavior differs: (%v,%v) vs (%v,%v)", ok1, err1, ok2, err2)
			}
			if m1.Steps != m2.Steps {
				t.Fatalf("step counts differ: %d vs %d", m1.Steps, m2.Steps)
			}
			// Same analysis results.
			r1, err := core.New(mod).AnalyzeMain()
			if err != nil {
				t.Fatal(err)
			}
			r2, err := core.New(mod2).AnalyzeMain()
			if err != nil {
				t.Fatal(err)
			}
			if r1.TableSize != r2.TableSize || r1.Steps != r2.Steps {
				t.Fatalf("analysis differs: table %d/%d steps %d/%d",
					r1.TableSize, r2.TableSize, r1.Steps, r2.Steps)
			}
			for i, e1 := range r1.Entries {
				e2 := r2.Entries[i]
				if e1.Key() != e2.Key() || !e1.Succ.Equal(e2.Succ) {
					t.Fatalf("entry %d differs: %s vs %s", i,
						e1.CP.String(tab), e2.CP.String(tab))
				}
			}
		})
	}
}
