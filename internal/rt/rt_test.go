package rt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"awam/internal/term"
)

func TestPushVarIsUnbound(t *testing.T) {
	h := NewHeap()
	a := h.PushVar()
	c := h.At(a)
	if c.Tag != Ref || c.A != a {
		t.Fatalf("fresh var cell = %+v", c)
	}
	if h.Deref(a) != a {
		t.Fatal("unbound var should deref to itself")
	}
}

func TestDerefFollowsChains(t *testing.T) {
	h := NewHeap()
	a := h.PushVar()
	b := h.PushVar()
	c := h.Push(MkInt(7))
	h.Bind(a, MkRef(b))
	h.Bind(b, MkRef(c))
	if got := h.Deref(a); got != c {
		t.Fatalf("Deref = %d, want %d", got, c)
	}
	addr, cell := h.DerefCell(a)
	if cell.Tag != Int || cell.I != 7 || addr != c {
		t.Fatalf("DerefCell = %+v @%d", cell, addr)
	}
}

func TestResolveCellOffHeapConstant(t *testing.T) {
	h := NewHeap()
	c, addr := h.ResolveCell(MkInt(3))
	if c.Tag != Int || addr != -1 {
		t.Fatalf("ResolveCell = %+v @%d", c, addr)
	}
}

func TestUndoRestoresBindings(t *testing.T) {
	h := NewHeap()
	a := h.PushVar()
	m := h.Mark()
	b := h.PushVar()
	h.Bind(a, MkRef(b))
	h.Bind(b, MkInt(1))
	h.Undo(m)
	if h.Top() != m.HeapTop {
		t.Fatalf("heap not truncated: %d vs %d", h.Top(), m.HeapTop)
	}
	if c := h.At(a); c.Tag != Ref || c.A != a {
		t.Fatalf("binding not undone: %+v", c)
	}
}

func TestUndoRestoresAbstractCells(t *testing.T) {
	h := NewHeap()
	g := h.PushOpen(AGround, 0)
	m := h.Mark()
	h.Bind(g, MkCon(5))
	h.Undo(m)
	if c := h.At(g); c.Tag != AGround {
		t.Fatalf("abstract cell not restored: %+v", c)
	}
}

func TestUndoTrailOnlyKeepsHeap(t *testing.T) {
	h := NewHeap()
	a := h.PushVar()
	m := h.Mark()
	h.Bind(a, MkInt(9))
	b := h.PushVar()
	h.UndoTrailOnly(m)
	if c := h.At(a); c.Tag != Ref {
		t.Fatal("binding should be undone")
	}
	if h.Top() != b+1 {
		t.Fatal("heap should keep its top")
	}
}

func TestLoadAndReadRoundTrip(t *testing.T) {
	tab := term.NewTab()
	h := NewHeap()
	x := term.NewVar("X")
	src := term.MkStruct(tab.Func("f", 3),
		term.MkInt(1),
		term.MkList(tab, []*term.Term{term.MkAtom(tab.Intern("a")), x}, nil),
		x,
	)
	addr := h.LoadTerm(tab, src, make(map[*term.VarRef]int))
	back := h.ReadTerm(tab, addr, make(map[int]*term.Term))
	if back.Kind != term.KStruct || back.Fn != tab.Func("f", 3) {
		t.Fatalf("round trip = %s", tab.Write(back))
	}
	if back.Args[0].Int != 1 {
		t.Fatalf("first arg = %s", tab.Write(back.Args[0]))
	}
	// Sharing must survive: arg 2's last element and arg 3 are the same
	// variable.
	lastElem := back.Args[1].Args[1].Args[0]
	if !term.SameVar(lastElem, back.Args[2]) {
		t.Fatalf("sharing lost in round trip: %s", tab.Write(back))
	}
}

func TestReadCellTermConstants(t *testing.T) {
	tab := term.NewTab()
	h := NewHeap()
	if got := tab.Write(h.ReadCellTerm(tab, MkInt(42), map[int]*term.Term{})); got != "42" {
		t.Fatalf("int = %s", got)
	}
	if got := tab.Write(h.ReadCellTerm(tab, MkCon(tab.Intern("a")), map[int]*term.Term{})); got != "a" {
		t.Fatalf("atom = %s", got)
	}
}

func TestCyclicReadTerminates(t *testing.T) {
	tab := term.NewTab()
	h := NewHeap()
	// Build f(X) then bind X to the whole structure (a rational tree).
	fnAddr := h.Push(Cell{Tag: Fun, F: tab.Func("f", 1)})
	argAddr := h.PushVar()
	strAddr := h.Push(Cell{Tag: Str, A: fnAddr})
	h.Bind(argAddr, MkRef(strAddr))
	out := h.ReadTerm(tab, strAddr, make(map[int]*term.Term))
	if !contains(tab.Write(out), "<cycle>") {
		t.Fatalf("cyclic term should cut off: %s", tab.Write(out))
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && (stringsIndex(s, sub) >= 0))
}

func stringsIndex(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestLoadReadProperty: loading then reading any generated term gives a
// structurally equal term (up to variable renaming).
func TestLoadReadProperty(t *testing.T) {
	tab := term.NewTab()
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		tm := genTerm(r, tab, 4)
		h := NewHeap()
		addr := h.LoadTerm(tab, tm, make(map[*term.VarRef]int))
		back := h.ReadTerm(tab, addr, make(map[int]*term.Term))
		return equalModVars(tm, back, map[*term.VarRef]*term.VarRef{})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func genTerm(r *rand.Rand, tab *term.Tab, depth int) *term.Term {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return term.MkInt(int64(r.Intn(100)))
		case 1:
			return term.MkAtom(tab.Intern("c"))
		default:
			return term.NewVar("V")
		}
	}
	if r.Intn(2) == 0 {
		return term.MkList(tab, []*term.Term{genTerm(r, tab, depth-1)}, genTerm(r, tab, depth-1))
	}
	n := r.Intn(3) + 1
	args := make([]*term.Term, n)
	for i := range args {
		args[i] = genTerm(r, tab, depth-1)
	}
	return term.MkStruct(tab.Func("g", n), args...)
}

func equalModVars(a, b *term.Term, env map[*term.VarRef]*term.VarRef) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case term.KVar:
		if prev, ok := env[a.Ref]; ok {
			return prev == b.Ref
		}
		env[a.Ref] = b.Ref
		return true
	case term.KAtom:
		return a.Fn.Name == b.Fn.Name
	case term.KInt:
		return a.Int == b.Int
	default:
		if a.Fn != b.Fn {
			return false
		}
		for i := range a.Args {
			if !equalModVars(a.Args[i], b.Args[i], env) {
				return false
			}
		}
		return true
	}
}

func TestTagProperties(t *testing.T) {
	open := []Tag{Ref, AAny, ANV, AGround, AConst, AList, AVar}
	for _, tag := range open {
		if !tag.IsOpen() {
			t.Errorf("%s should be open", tag)
		}
	}
	closed := []Tag{Str, Fun, Lis, Con, Int, AAtom, AInt}
	for _, tag := range closed {
		if tag.IsOpen() {
			t.Errorf("%s should not be open", tag)
		}
	}
	if Ref.IsAbstract() || !AAny.IsAbstract() {
		t.Error("IsAbstract misclassifies")
	}
}
