// Package rt provides the shared runtime representation of WAM machines:
// tagged cells, the heap, and the (value-)trail. Both the concrete machine
// (internal/machine) and the abstract machine (internal/core) build on it.
//
// Cells follow the standard WAM tagging scheme (REF/STR/FUN/LIS/CON/INT)
// extended with tags for the "open" abstract types of the paper's domain
// (Section 3): any, nv, ground, const, atom, integer and parameterized
// lists. Open abstract cells behave like variables — they occupy one
// mutable heap word and may be overwritten (instantiated) by abstract
// unification, which is why the trail records previous cell values rather
// than just addresses.
package rt

import (
	"fmt"

	"awam/internal/term"
)

// Tag discriminates heap cell contents.
type Tag uint8

const (
	// Ref is a variable reference. An unbound variable points at itself
	// (A == its own address).
	Ref Tag = iota
	// Str points at the functor cell of a structure.
	Str
	// Fun is a functor cell (F holds name/arity); its arguments follow.
	Fun
	// Lis points at the first cell of a cons pair.
	Lis
	// Con is an atomic constant (F.Name, arity 0).
	Con
	// Int is an integer constant (I).
	Int

	// Abstract tags. These never appear in the concrete machine.

	// AAny is the abstract type 'any' (top).
	AAny
	// ANV is the abstract type 'nv' (all non-variable terms).
	ANV
	// AGround is the abstract type 'ground'.
	AGround
	// AConst is the abstract type 'const' (atoms and integers).
	AConst
	// AAtom is the abstract type 'atom' (all atoms).
	AAtom
	// AInt is the abstract type 'integer' (all integers).
	AInt
	// AList is a parameterized list type; A points at the heap cell
	// holding the element type.
	AList
	// AVar is the abstract type 'var' (definitely-unbound variables) as a
	// leaf materialized from a pattern. Fresh unbound Ref cells play the
	// same role inside the machine; AVar only appears when a pattern
	// distinguishes "var" from "any" across a call boundary.
	AVar
)

// IsAbstract reports whether the tag is one of the abstract-domain tags.
func (t Tag) IsAbstract() bool { return t >= AAny }

// IsOpen reports whether a cell with this tag can be further instantiated
// by abstract unification (and therefore must be trailed when bound).
func (t Tag) IsOpen() bool {
	switch t {
	case Ref, AAny, ANV, AGround, AConst, AList, AVar:
		return true
	}
	return false
}

func (t Tag) String() string {
	switch t {
	case Ref:
		return "REF"
	case Str:
		return "STR"
	case Fun:
		return "FUN"
	case Lis:
		return "LIS"
	case Con:
		return "CON"
	case Int:
		return "INT"
	case AAny:
		return "any"
	case ANV:
		return "nv"
	case AGround:
		return "ground"
	case AConst:
		return "const"
	case AAtom:
		return "atom"
	case AInt:
		return "integer"
	case AList:
		return "list"
	case AVar:
		return "var"
	}
	return fmt.Sprintf("tag(%d)", uint8(t))
}

// Cell is one tagged heap word (with room for every variant's payload).
type Cell struct {
	Tag Tag
	A   int          // address payload (Ref/Str/Lis/AList)
	F   term.Functor // functor payload (Fun/Con)
	I   int64        // integer payload (Int)
}

// MkRef returns a reference cell to addr.
func MkRef(addr int) Cell { return Cell{Tag: Ref, A: addr} }

// MkCon returns an atomic-constant cell.
func MkCon(a term.Atom) Cell { return Cell{Tag: Con, F: term.Functor{Name: a}} }

// MkInt returns an integer cell.
func MkInt(n int64) Cell { return Cell{Tag: Int, I: n} }

// TrailEntry records a cell overwrite so it can be undone on backtracking.
// The WAM's address-only trail suffices when the only bindable cells are
// self-referencing REFs; the abstract machine also binds open abstract
// cells, so we trail the old value.
type TrailEntry struct {
	Addr int
	Old  Cell
}

// Heap is a growable cell array with a value trail.
type Heap struct {
	Cells []Cell
	Trail []TrailEntry
	// high is the largest cell count ever reached. The heap only shrinks
	// at Undo/Reset, so refreshing the mark there (and in HighWater)
	// observes every peak without a check in the hot Push path.
	high int
}

// NewHeap returns a heap with some initial capacity.
func NewHeap() *Heap {
	return &Heap{Cells: make([]Cell, 0, 1024), Trail: make([]TrailEntry, 0, 256)}
}

// Top returns the current heap top (the address the next Push will use).
func (h *Heap) Top() int { return len(h.Cells) }

// Reset empties the heap for reuse, keeping the allocated capacity —
// cheaper than a fresh heap for callers that run many short abstract
// executions (e.g. parallel fixpoint workers, one reset per table
// entry).
func (h *Heap) Reset() {
	if len(h.Cells) > h.high {
		h.high = len(h.Cells)
	}
	h.Cells = h.Cells[:0]
	h.Trail = h.Trail[:0]
}

// HighWater returns the largest cell count the heap ever held — the
// analysis working-set statistic reported by core metrics.
func (h *Heap) HighWater() int {
	if len(h.Cells) > h.high {
		h.high = len(h.Cells)
	}
	return h.high
}

// Push appends a cell and returns its address.
func (h *Heap) Push(c Cell) int {
	h.Cells = append(h.Cells, c)
	return len(h.Cells) - 1
}

// PushVar pushes a fresh unbound variable and returns its address.
func (h *Heap) PushVar() int {
	a := len(h.Cells)
	h.Cells = append(h.Cells, Cell{Tag: Ref, A: a})
	return a
}

// PushOpen pushes a fresh open abstract cell of the given tag. For AList
// the caller must have pushed/know the element cell address and pass it.
func (h *Heap) PushOpen(t Tag, elem int) int {
	a := len(h.Cells)
	h.Cells = append(h.Cells, Cell{Tag: t, A: elem})
	return a
}

// At returns the cell at addr.
func (h *Heap) At(addr int) Cell { return h.Cells[addr] }

// Deref follows REF chains from addr and returns the address of the final
// cell: either a non-REF cell or an unbound (self-referencing) REF.
func (h *Heap) Deref(addr int) int {
	for {
		c := h.Cells[addr]
		if c.Tag != Ref || c.A == addr {
			return addr
		}
		addr = c.A
	}
}

// DerefCell is Deref followed by At.
func (h *Heap) DerefCell(addr int) (int, Cell) {
	a := h.Deref(addr)
	return a, h.Cells[a]
}

// ResolveCell dereferences a register value: if c is a REF into the heap
// it is dereferenced; otherwise c stands for itself. It returns the final
// cell and, when the cell lives on the heap, its address (else -1).
func (h *Heap) ResolveCell(c Cell) (Cell, int) {
	if c.Tag == Ref {
		a := h.Deref(c.A)
		return h.Cells[a], a
	}
	return c, -1
}

// Bind overwrites the cell at addr with c, recording the old value on the
// trail. Callers must only bind open cells (unbound REFs or open abstract
// cells).
func (h *Heap) Bind(addr int, c Cell) {
	h.Trail = append(h.Trail, TrailEntry{Addr: addr, Old: h.Cells[addr]})
	h.Cells[addr] = c
}

// Mark captures the current heap and trail positions for later Undo.
type Mark struct {
	HeapTop  int
	TrailTop int
}

// Mark returns the current state marker.
func (h *Heap) Mark() Mark {
	return Mark{HeapTop: len(h.Cells), TrailTop: len(h.Trail)}
}

// Undo rolls back all bindings made since the mark and truncates the heap
// to its marked top.
func (h *Heap) Undo(m Mark) {
	if len(h.Cells) > h.high {
		h.high = len(h.Cells)
	}
	for i := len(h.Trail) - 1; i >= m.TrailTop; i-- {
		e := h.Trail[i]
		// Entries above the marked heap top vanish with the truncation.
		if e.Addr < m.HeapTop {
			h.Cells[e.Addr] = e.Old
		}
	}
	h.Trail = h.Trail[:m.TrailTop]
	h.Cells = h.Cells[:m.HeapTop]
}

// UndoTrailOnly rolls back bindings since the mark but keeps the heap top
// (used when applying a memoized success pattern after exploring clauses:
// exploration side effects are undone, then the pattern re-binds).
func (h *Heap) UndoTrailOnly(m Mark) {
	for i := len(h.Trail) - 1; i >= m.TrailTop; i-- {
		e := h.Trail[i]
		if e.Addr < len(h.Cells) {
			h.Cells[e.Addr] = e.Old
		}
	}
	h.Trail = h.Trail[:m.TrailTop]
}

// LoadTerm copies a source term onto the heap and returns the address of
// its root cell. Variables are allocated once per VarRef via env, so
// sharing in the source term becomes sharing on the heap.
func (h *Heap) LoadTerm(tab *term.Tab, tm *term.Term, env map[*term.VarRef]int) int {
	switch tm.Kind {
	case term.KVar:
		if a, ok := env[tm.Ref]; ok {
			return a
		}
		a := h.PushVar()
		env[tm.Ref] = a
		return a
	case term.KInt:
		return h.Push(MkInt(tm.Int))
	case term.KAtom:
		return h.Push(MkCon(tm.Fn.Name))
	case term.KStruct:
		if tm.Fn.Name == tab.Dot && tm.Fn.Arity == 2 {
			// Build args first, then the pair, to keep the pair adjacent.
			car := h.LoadTerm(tab, tm.Args[0], env)
			cdr := h.LoadTerm(tab, tm.Args[1], env)
			pair := h.Push(MkRef(car))
			h.Push(MkRef(cdr))
			return h.Push(Cell{Tag: Lis, A: pair})
		}
		args := make([]int, len(tm.Args))
		for i, a := range tm.Args {
			args[i] = h.LoadTerm(tab, a, env)
		}
		fn := h.Push(Cell{Tag: Fun, F: tm.Fn})
		for _, a := range args {
			h.Push(MkRef(a))
		}
		return h.Push(Cell{Tag: Str, A: fn})
	}
	panic("rt: unknown term kind")
}

// ReadTerm reconstructs a source term from the heap cell at addr. Unbound
// variables become fresh source variables (consistently per address via
// vars). Abstract cells are rendered as atoms naming their type, which is
// how analysis reports print partially-abstract structures. Cyclic terms
// are cut off with the atom '<cycle>'.
func (h *Heap) ReadTerm(tab *term.Tab, addr int, vars map[int]*term.Term) *term.Term {
	return h.readTerm(tab, addr, vars, make(map[int]bool))
}

// ReadCellTerm reconstructs a source term from a register cell, which
// may be a heap reference or a direct (possibly off-heap constant) cell.
func (h *Heap) ReadCellTerm(tab *term.Tab, c Cell, vars map[int]*term.Term) *term.Term {
	busy := make(map[int]bool)
	switch c.Tag {
	case Ref:
		return h.readTerm(tab, c.A, vars, busy)
	case Con:
		return term.MkAtom(c.F.Name)
	case Int:
		return term.MkInt(c.I)
	case Lis:
		car := h.readTerm(tab, c.A, vars, busy)
		cdr := h.readTerm(tab, c.A+1, vars, busy)
		return term.MkStruct(tab.ConsFunctor(), car, cdr)
	case Str:
		fn := h.Cells[c.A]
		args := make([]*term.Term, fn.F.Arity)
		for i := 0; i < fn.F.Arity; i++ {
			args[i] = h.readTerm(tab, c.A+1+i, vars, busy)
		}
		return term.MkStruct(fn.F, args...)
	default:
		return term.MkAtom(tab.Intern("$" + c.Tag.String()))
	}
}

func (h *Heap) readTerm(tab *term.Tab, addr int, vars map[int]*term.Term, busy map[int]bool) *term.Term {
	a, c := h.DerefCell(addr)
	if busy[a] {
		return term.MkAtom(tab.Intern("<cycle>"))
	}
	switch c.Tag {
	case Ref:
		if v, ok := vars[a]; ok {
			return v
		}
		v := term.NewVar(fmt.Sprintf("_%d", a))
		vars[a] = v
		return v
	case Con:
		return term.MkAtom(c.F.Name)
	case Int:
		return term.MkInt(c.I)
	case Lis:
		busy[a] = true
		car := h.readTerm(tab, c.A, vars, busy)
		cdr := h.readTerm(tab, c.A+1, vars, busy)
		delete(busy, a)
		return term.MkStruct(tab.ConsFunctor(), car, cdr)
	case Str:
		fn := h.Cells[c.A]
		args := make([]*term.Term, fn.F.Arity)
		busy[a] = true
		for i := 0; i < fn.F.Arity; i++ {
			args[i] = h.readTerm(tab, c.A+1+i, vars, busy)
		}
		delete(busy, a)
		return term.MkStruct(fn.F, args...)
	case AList:
		busy[a] = true
		elem := h.readTerm(tab, c.A, vars, busy)
		delete(busy, a)
		return term.MkStruct(tab.Func("$list", 1), elem)
	default:
		// Open or leaf abstract types print as $type atoms.
		return term.MkAtom(tab.Intern("$" + c.Tag.String()))
	}
}
