package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"awam"
)

const testProg = `
main :- app([1,2], [3], X), use(X).
app([], Ys, Ys).
app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
use(_).
`

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postAnalyze(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func reqBody(t *testing.T, source string) string {
	t.Helper()
	b, err := json.Marshal(map[string]any{"source": source})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func errCode(t *testing.T, data []byte) string {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatalf("error body not JSON: %v\n%s", err, data)
	}
	return eb.Error.Code
}

// TestAnalyzeEndToEnd: a real analysis round-trips through HTTP; the
// response carries summaries with symbolic modes, and a repeat request
// is served warm from the shared cache.
func TestAnalyzeEndToEnd(t *testing.T) {
	ts := newTestServer(t, Config{})

	resp, data := postAnalyze(t, ts, reqBody(t, testProg))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out analyzeResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	app, ok := out.Predicates["app/3"]
	if !ok {
		t.Fatalf("app/3 missing from response: %s", data)
	}
	if !app.Succeeds || len(app.Args) != 3 {
		t.Fatalf("app/3 summary wrong: %+v", app)
	}
	if !strings.Contains(string(data), `"+g"`) {
		t.Fatalf("modes not symbolic in JSON: %s", data)
	}
	if out.Incremental == nil || out.Incremental.WarmSCCs != 0 {
		t.Fatalf("cold request incremental accounting: %+v", out.Incremental)
	}

	// The summaries must agree with a direct library analysis.
	sys, err := awam.Load(testProg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sys.Analyze(awam.WithStrategy(awam.Worklist))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ref.Summary("app/3")
	if app.Success != want.Success || app.Call != want.Call {
		t.Fatalf("daemon summary %+v != library summary %+v", app, want)
	}

	// Second request: fully warm.
	_, data2 := postAnalyze(t, ts, reqBody(t, testProg))
	var out2 analyzeResponse
	if err := json.Unmarshal(data2, &out2); err != nil {
		t.Fatal(err)
	}
	if out2.Incremental == nil || out2.Incremental.WarmSCCs != out2.Incremental.SCCs {
		t.Fatalf("repeat request not fully warm: %+v", out2.Incremental)
	}
	if out2.Cache.Hits == 0 {
		t.Fatalf("cache hits not reported: %+v", out2.Cache)
	}
}

// TestAnalyzeErrors: each failure class gets its typed code and status.
func TestAnalyzeErrors(t *testing.T) {
	ts := newTestServer(t, Config{MaxBodyBytes: 2048})
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"malformed JSON", "{", http.StatusBadRequest, "bad_request"},
		{"missing source", `{}`, http.StatusBadRequest, "bad_request"},
		{"negative limits", `{"source":"a.","max_steps":-1}`, http.StatusBadRequest, "bad_request"},
		{"parse error", reqBody(t, "main :- ."), http.StatusUnprocessableEntity, "parse_error"},
		{"oversized body", reqBody(t, strings.Repeat("a(x). ", 1000)), http.StatusRequestEntityTooLarge, "body_too_large"},
		{"budget exhausted", `{"source":` + mustJSON(testProg) + `,"max_steps":1}`, http.StatusUnprocessableEntity, "budget_exhausted"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postAnalyze(t, ts, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, data)
			}
			if got := errCode(t, data); got != tc.code {
				t.Fatalf("code %q, want %q", got, tc.code)
			}
		})
	}
}

func mustJSON(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// TestAnalyzeDeadline: a request deadline shorter than the analysis
// fails with deadline_exceeded, promptly.
func TestAnalyzeDeadline(t *testing.T) {
	slow := func(ctx context.Context, _ string, _ ...awam.AnalyzeOption) (*awam.Analysis, error) {
		select {
		case <-time.After(5 * time.Second):
			t.Error("analysis not canceled")
			return nil, context.DeadlineExceeded
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %w", awam.ErrCanceled, context.Cause(ctx))
		}
	}
	ts := newTestServer(t, Config{Analyze: slow})
	start := time.Now()
	resp, data := postAnalyze(t, ts, `{"source":"a.","timeout_ms":50}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if got := errCode(t, data); got != "deadline_exceeded" {
		t.Fatalf("code %q", got)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline not enforced promptly")
	}
}

// TestSingleflight: concurrent identical requests run ONE analysis; the
// rest join it and are marked coalesced.
func TestSingleflight(t *testing.T) {
	var runs atomic.Int64
	release := make(chan struct{})
	blocking := func(ctx context.Context, source string, opts ...awam.AnalyzeOption) (*awam.Analysis, error) {
		runs.Add(1)
		<-release
		sys, err := awam.Load(source)
		if err != nil {
			return nil, err
		}
		return sys.AnalyzeContext(ctx, opts...)
	}
	ts := newTestServer(t, Config{Analyze: blocking})

	const n = 8
	var wg sync.WaitGroup
	coalesced := make([]bool, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/analyze", "application/json",
				strings.NewReader(reqBody(t, testProg)))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			var out analyzeResponse
			if json.NewDecoder(resp.Body).Decode(&out) == nil {
				coalesced[i] = out.Coalesced
			}
		}(i)
	}
	// Give the requests time to pile onto the flight, then release it.
	time.Sleep(200 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("%d analyses ran for %d identical requests", got, n)
	}
	joined := 0
	for i := range codes {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d failed with %d", i, codes[i])
		}
		if coalesced[i] {
			joined++
		}
	}
	if joined != n-1 {
		t.Fatalf("%d/%d requests coalesced, want %d", joined, n, n-1)
	}
}

// TestHealthzAndMetrics: the sidecar endpoints respond and the metrics
// reflect traffic.
func TestHealthzAndMetrics(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	postAnalyze(t, ts, reqBody(t, testProg))
	postAnalyze(t, ts, "{")

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		`awamd_requests_total{result="ok"} 1`,
		`awamd_requests_total{result="error"} 1`,
		"awamd_analyses_total 1",
		"# TYPE awamd_cache_hits_total counter",
		"awamd_cache_entries",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestMethodRouting: wrong methods 404/405 rather than analyzing.
func TestMethodRouting(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("GET /analyze succeeded: %d", resp.StatusCode)
	}
}
