package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"awam"
	"awam/api"
	"awam/internal/cache"
)

func postStore(t *testing.T, ts *httptest.Server, path string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestStoreRoundTrip: put, has and get through the real routes behave
// like the protocol promises — positional has, absent records simply
// missing from get, malformed fingerprints skipped on put.
func TestStoreRoundTrip(t *testing.T) {
	ts := newTestServer(t, Config{})

	putReq := api.StorePutRequest{Records: []api.StoreRecord{
		{Fingerprint: "aa11", Data: []byte("alpha")},
		{Fingerprint: "bb22", Data: []byte("beta")},
		{Fingerprint: "../escape", Data: []byte("evil")},
		{Fingerprint: "", Data: []byte("anon")},
	}}
	resp, data := postStore(t, ts, "/v1/store/put", putReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put status %d: %s", resp.StatusCode, data)
	}
	var putResp api.StorePutResponse
	if err := json.Unmarshal(data, &putResp); err != nil {
		t.Fatal(err)
	}
	if putResp.Stored != 2 {
		t.Fatalf("put stored %d, want 2 (malformed fingerprints skipped)", putResp.Stored)
	}

	resp, data = postStore(t, ts, "/v1/store/has",
		api.StoreHasRequest{Fingerprints: []string{"aa11", "cc33", "bb22"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("has status %d: %s", resp.StatusCode, data)
	}
	var hasResp api.StoreHasResponse
	if err := json.Unmarshal(data, &hasResp); err != nil {
		t.Fatal(err)
	}
	if want := []bool{true, false, true}; !reflect.DeepEqual(hasResp.Present, want) {
		t.Fatalf("has = %v, want %v", hasResp.Present, want)
	}

	resp, data = postStore(t, ts, "/v1/store/get",
		api.StoreGetRequest{Fingerprints: []string{"aa11", "cc33", "bb22"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get status %d: %s", resp.StatusCode, data)
	}
	var getResp api.StoreGetResponse
	if err := json.Unmarshal(data, &getResp); err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, rec := range getResp.Records {
		got[rec.Fingerprint] = string(rec.Data)
	}
	if want := map[string]string{"aa11": "alpha", "bb22": "beta"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("get = %v, want %v", got, want)
	}
}

// TestStoreErrors: the typed error paths — batch cap, body cap,
// malformed JSON, method routing.
func TestStoreErrors(t *testing.T) {
	ts := newTestServer(t, Config{MaxStoreBodyBytes: 4 << 10, MaxRecordBytes: 64})

	big := make([]string, api.MaxStoreBatch+1)
	for i := range big {
		big[i] = fmt.Sprintf("%04x", i)
	}
	resp, data := postStore(t, ts, "/v1/store/has", api.StoreHasRequest{Fingerprints: big})
	if resp.StatusCode != http.StatusBadRequest || errCode(t, data) != "batch_too_large" {
		t.Fatalf("oversized batch: status %d code %q", resp.StatusCode, errCode(t, data))
	}

	// An oversized record is skipped on put, not failed.
	resp, data = postStore(t, ts, "/v1/store/put", api.StorePutRequest{Records: []api.StoreRecord{
		{Fingerprint: "aa11", Data: bytes.Repeat([]byte("x"), 65)},
		{Fingerprint: "bb22", Data: []byte("ok")},
	}})
	var putResp api.StorePutResponse
	if err := json.Unmarshal(data, &putResp); err != nil {
		t.Fatalf("put status %d: %s", resp.StatusCode, data)
	}
	if putResp.Stored != 1 {
		t.Fatalf("oversized record: stored %d, want 1", putResp.Stored)
	}

	// A body over the store body cap is a typed 413.
	huge := api.StorePutRequest{Records: []api.StoreRecord{
		{Fingerprint: "cc33", Data: bytes.Repeat([]byte("y"), 8<<10)},
	}}
	resp, data = postStore(t, ts, "/v1/store/put", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge || errCode(t, data) != "body_too_large" {
		t.Fatalf("oversized body: status %d code %q", resp.StatusCode, errCode(t, data))
	}

	hresp, err := http.Post(ts.URL+"/v1/store/get", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusBadRequest || errCode(t, buf.Bytes()) != "bad_request" {
		t.Fatalf("malformed JSON: status %d code %q", hresp.StatusCode, errCode(t, buf.Bytes()))
	}

	hresp, err = http.Get(ts.URL + "/v1/store/has")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on store route: status %d, want 405", hresp.StatusCode)
	}
}

// TestStoreWireParity: internal/cache cannot import awam/api (the api
// package imports the facade, which wraps internal/cache), so the
// client-side wire types are declared twice. This test pins the two
// declarations to one JSON wire format.
func TestStoreWireParity(t *testing.T) {
	pairs := []struct {
		name           string
		client, server any
	}{
		{"has_request",
			cache.HasRequest{Fingerprints: []string{"aa", "bb"}},
			api.StoreHasRequest{Fingerprints: []string{"aa", "bb"}}},
		{"has_response",
			cache.HasResponse{Present: []bool{true, false}},
			api.StoreHasResponse{Present: []bool{true, false}}},
		{"get_request",
			cache.GetRequest{Fingerprints: []string{"aa"}},
			api.StoreGetRequest{Fingerprints: []string{"aa"}}},
		{"get_response",
			cache.GetResponse{Records: []cache.WireRecord{{Fingerprint: "aa", Data: []byte{1, 2}}}},
			api.StoreGetResponse{Records: []api.StoreRecord{{Fingerprint: "aa", Data: []byte{1, 2}}}}},
		{"put_request",
			cache.PutRequest{Records: []cache.WireRecord{{Fingerprint: "aa", Data: []byte{3}}}},
			api.StorePutRequest{Records: []api.StoreRecord{{Fingerprint: "aa", Data: []byte{3}}}}},
		{"put_response",
			cache.PutResponse{Stored: 7},
			api.StorePutResponse{Stored: 7}},
	}
	for _, p := range pairs {
		cj, err := json.Marshal(p.client)
		if err != nil {
			t.Fatal(err)
		}
		sj, err := json.Marshal(p.server)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cj, sj) {
			t.Errorf("%s: client and server wire types diverge:\n  cache: %s\n  api:   %s", p.name, cj, sj)
		}
	}
	if cache.DefaultMaxBatch != api.MaxStoreBatch {
		t.Errorf("batch caps diverge: cache.DefaultMaxBatch=%d api.MaxStoreBatch=%d",
			cache.DefaultMaxBatch, api.MaxStoreBatch)
	}
}

// TestStoreFabricChain: records flow both ways through the real
// handlers. A downstream analysis flushes its records into an empty
// upstream daemon; a second cold downstream store then warm-starts
// entirely over the fabric, byte-identical to scratch.
func TestStoreFabricChain(t *testing.T) {
	upstreamStore, err := awam.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Cache: upstreamStore})

	ref, err := mustLoad(t).Analyze(awam.WithStrategy(awam.Worklist))
	if err != nil {
		t.Fatal(err)
	}

	// Daemon B: cold everywhere, upstream empty — a plain cold run that
	// publishes its records to A on flush.
	b, err := awam.NewStore(awam.WithRemote(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	resB, err := mustLoad(t).Analyze(awam.WithSummaryCache(b))
	if err != nil {
		t.Fatal(err)
	}
	if resB.Marshal() != ref.Marshal() {
		t.Fatal("fabric-attached cold analysis differs from scratch")
	}
	stB := b.Stats()
	if stB.RemotePuts == 0 {
		t.Fatalf("cold run flushed nothing upstream: %+v", stB)
	}
	if up := upstreamStore.Stats(); up.Entries == 0 {
		t.Fatalf("upstream store still empty after downstream flush: %+v", up)
	}

	// Daemon C: cold memory and disk, warm only via A — every component
	// must load over the fabric and the result must not change.
	c, err := awam.NewStore(awam.WithRemote(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	resC, err := mustLoad(t).Analyze(awam.WithSummaryCache(c))
	if err != nil {
		t.Fatal(err)
	}
	if resC.Marshal() != ref.Marshal() {
		t.Fatal("fabric warm analysis differs from scratch")
	}
	inc, ok := resC.Incremental()
	if !ok || inc.SCCs == 0 || inc.WarmSCCs != inc.SCCs {
		t.Fatalf("fabric warm start served %d/%d components", inc.WarmSCCs, inc.SCCs)
	}
	stC := c.Stats()
	if stC.RemoteLoads == 0 || stC.RemoteRoundTrips == 0 {
		t.Fatalf("warm start recorded no remote traffic: %+v", stC)
	}
	if stC.RemoteErrors != 0 || stC.Degraded {
		t.Fatalf("fabric warm start surfaced errors: %+v", stC)
	}

	// The analyze response of the upstream daemon reports its store
	// traffic under cache.*; the store routes show up in /metrics.
	resp, data := postAnalyze(t, ts, reqBody(t, testProg))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upstream analyze: status %d: %s", resp.StatusCode, data)
	}
	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`awamd_store_requests_total{op="put"}`,
		`awamd_store_requests_total{op="get"}`,
		"awamd_store_records_stored_total",
		"awamd_store_records_served_total",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func mustLoad(t *testing.T) *awam.System {
	t.Helper()
	sys, err := awam.Load(testProg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}
