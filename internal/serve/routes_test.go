package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"awam/api"
)

// TestRouteCompatibility: every /v1 route works, and the legacy
// unversioned routes answer identically to their /v1 counterparts.
func TestRouteCompatibility(t *testing.T) {
	ts := newTestServer(t, Config{})
	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	post := func(path, body string) (int, string) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	for _, pair := range [][2]string{{"/healthz", "/v1/healthz"}} {
		legacyCode, legacyBody := get(pair[0])
		v1Code, v1Body := get(pair[1])
		if legacyCode != http.StatusOK || v1Code != http.StatusOK {
			t.Fatalf("%v: status legacy=%d v1=%d", pair, legacyCode, v1Code)
		}
		if legacyBody != v1Body {
			t.Fatalf("%v: bodies differ:\n%s\nvs\n%s", pair, legacyBody, v1Body)
		}
	}

	// /metrics and /v1/metrics expose the same metric families (the
	// counters move between calls, so compare names only).
	names := func(body string) string {
		var out []string
		for _, line := range strings.Split(body, "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			out = append(out, strings.Fields(line)[0])
		}
		return strings.Join(out, "\n")
	}
	code, legacyMetrics := get("/metrics")
	code2, v1Metrics := get("/v1/metrics")
	if code != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("metrics status legacy=%d v1=%d", code, code2)
	}
	if names(legacyMetrics) != names(v1Metrics) {
		t.Fatalf("metric families differ:\n%s\nvs\n%s", names(legacyMetrics), names(v1Metrics))
	}
	if !strings.Contains(v1Metrics, "awamd_optimizes_total") {
		t.Fatal("missing awamd_optimizes_total metric")
	}

	// /analyze and /v1/analyze accept the same body and agree on the
	// summaries (cache counters may differ between the two calls).
	body := reqBody(t, testProg)
	legacyCode, legacyBody := post("/analyze", body)
	v1Code, v1Body := post("/v1/analyze", body)
	if legacyCode != http.StatusOK || v1Code != http.StatusOK {
		t.Fatalf("analyze status legacy=%d v1=%d", legacyCode, v1Code)
	}
	var legacyResp, v1Resp api.AnalyzeResponse
	if err := json.Unmarshal([]byte(legacyBody), &legacyResp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(v1Body), &v1Resp); err != nil {
		t.Fatal(err)
	}
	if len(legacyResp.Predicates) == 0 || len(legacyResp.Predicates) != len(v1Resp.Predicates) {
		t.Fatalf("predicate summaries differ: %d vs %d", len(legacyResp.Predicates), len(v1Resp.Predicates))
	}
	for pred, sum := range legacyResp.Predicates {
		if v1Resp.Predicates[pred].Success != sum.Success {
			t.Fatalf("summary for %s differs across route versions", pred)
		}
	}
}

// TestOptimizeEndpoint: POST /v1/optimize runs the gated pipeline and
// reports per-pass stats; requesting the disassembly returns it.
func TestOptimizeEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	b, err := json.Marshal(api.OptimizeRequest{Source: testProg, Disasm: true, MeasureRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var or api.OptimizeResponse
	if err := json.Unmarshal(data, &or); err != nil {
		t.Fatal(err)
	}
	if or.Report == nil || len(or.Report.Passes) == 0 {
		t.Fatalf("no pass reports: %s", data)
	}
	total := 0
	for _, p := range or.Report.Passes {
		if p.Rejected {
			t.Fatalf("pass %s rejected: %s", p.Name, p.RejectReason)
		}
		total += p.Total
	}
	if total == 0 {
		t.Fatal("expected rewrites on the ground-list test program")
	}
	if or.Disasm == "" {
		t.Fatal("requested disasm missing")
	}
	if len(or.Report.GateGoals) == 0 || or.Report.GateGoals[0] != "main" {
		t.Fatalf("gate goals = %v, want main first", or.Report.GateGoals)
	}
}

// TestOptimizeEndpointErrors: bad pass names and unparsable source map
// onto the typed error codes.
func TestOptimizeEndpointErrors(t *testing.T) {
	ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"bad pass", `{"source":"p(a).","passes":["no-such-pass"]}`, http.StatusBadRequest, "bad_request"},
		{"parse error", `{"source":"p(a"}`, http.StatusUnprocessableEntity, "parse_error"},
		{"missing source", `{}`, http.StatusBadRequest, "bad_request"},
		{"negative runs", `{"source":"p(a).","measure_runs":-1}`, http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, data)
			continue
		}
		if got := errCode(t, data); got != tc.code {
			t.Errorf("%s: code = %q, want %q", tc.name, got, tc.code)
		}
	}
}
