// Package serve implements the awamd analysis service: an HTTP front
// end over the incremental analysis engine. One process holds one
// SummaryCache, so every request warms the next — the daemon turns the
// per-component summary reuse of internal/inc into a long-lived
// analysis server for editors and CI.
//
// Endpoints (versioned under /v1; the request and response types live
// in the importable awam/api package):
//
//	POST /v1/analyze    {"source": "...", "timeout_ms"?, "max_steps"?, "depth"?}
//	                    -> per-predicate summaries + run stats + cache stats
//	POST /v1/backward   {"source": "...", "goals"?, "timeout_ms"?, "max_steps"?, "depth"?}
//	                    -> per-predicate weakest demands + run stats + cache stats
//	POST /v1/optimize   {"source": "...", "passes"?, "gate_goals"?, ...}
//	                    -> differentially-gated optimizer report (+ disasm)
//	POST /v1/store/has  batched summary-fabric presence probe (store.go)
//	POST /v1/store/get  batched record fetch
//	POST /v1/store/put  batched record push
//	GET  /v1/healthz    -> {"status":"ok"}
//	GET  /v1/metrics    -> Prometheus text exposition
//
// The original unversioned routes (/analyze, /healthz, /metrics) remain
// as thin aliases of their /v1 counterparts.
//
// Robustness: request bodies are size-capped, each analysis runs under
// a per-request deadline and optional abstract-step budget, a worker
// semaphore bounds concurrent analyses, and identical concurrent
// analyze requests are coalesced into a single analysis (singleflight).
// Errors are typed JSON: {"error":{"code":"...","message":"..."}}.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"awam"
	"awam/api"
)

// The wire types are declared in awam/api; the server uses them
// directly so the daemon and its clients cannot drift apart.
type (
	analyzeRequest   = api.AnalyzeRequest
	analyzeResponse  = api.AnalyzeResponse
	optimizeRequest  = api.OptimizeRequest
	optimizeResponse = api.OptimizeResponse
	errorBody        = api.ErrorBody
)

// Config parameterizes a Server. The zero value is usable: defaults are
// filled by New.
type Config struct {
	// Cache is the shared summary store; nil gets a private in-memory
	// store with the default budget. Configure it with awam.WithRemote
	// to make this daemon a fabric member that pulls from and pushes to
	// a peer.
	Cache awam.Store
	// MaxBodyBytes caps the /analyze request body (default 1 MiB).
	MaxBodyBytes int64
	// MaxStoreBodyBytes caps /v1/store request bodies, which carry
	// record batches and so run larger than analyze bodies (default
	// 32 MiB). MaxRecordBytes caps one record within a batch (default
	// 4 MiB); oversized records are skipped, not failed.
	MaxStoreBodyBytes, MaxRecordBytes int64
	// MaxConcurrent bounds simultaneously running analyses (default 4);
	// excess requests wait for a slot until their deadline.
	MaxConcurrent int
	// DefaultTimeout applies when a request names none (default 10s);
	// MaxTimeout clamps request-supplied deadlines (default 60s).
	DefaultTimeout, MaxTimeout time.Duration
	// MaxSteps clamps the per-request abstract-step budget; 0 leaves
	// request budgets uncapped.
	MaxSteps int64
	// Analyze overrides the analysis pipeline (tests inject failures and
	// slowness here); nil selects the real Load + AnalyzeContext path.
	Analyze func(ctx context.Context, source string, opts ...awam.AnalyzeOption) (*awam.Analysis, error)
	// Backward overrides the demand-query pipeline the same way; nil
	// selects the real Load + AnalyzeBackwardContext path.
	Backward func(ctx context.Context, source string, opts ...awam.BackwardOption) (*awam.BackwardAnalysis, error)
}

// Server handles the analysis endpoints. Create with New, mount with
// Handler.
type Server struct {
	cfg   Config
	cache awam.Store
	sem   chan struct{}

	mu         sync.Mutex
	flights    map[string]*flight
	bwdFlights map[string]*bwdFlight

	// Counters for /metrics.
	requestsOK, requestsErr         atomic.Int64
	analysesRun, analysesDup        atomic.Int64
	backwardsRun, backwardsDup      atomic.Int64
	backwardSteps                   atomic.Int64
	backwardVisited, backwardReused atomic.Int64
	optimizesRun                    atomic.Int64
	inflight                        atomic.Int64
	storeHas, storeGet, storePut    atomic.Int64
	recordsServed, recordsStored    atomic.Int64
}

// flight is one in-progress analysis shared by coalesced requests.
type flight struct {
	done chan struct{}
	resp *analyzeResponse
	err  error
}

// bwdFlight is one in-progress demand query shared by coalesced
// requests.
type bwdFlight struct {
	done chan struct{}
	resp *backwardResponse
	err  error
}

// New builds a server, filling config defaults.
func New(cfg Config) (*Server, error) {
	if cfg.Cache == nil {
		c, err := awam.NewStore()
		if err != nil {
			return nil, err
		}
		cfg.Cache = c
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxStoreBodyBytes <= 0 {
		cfg.MaxStoreBodyBytes = 32 << 20
	}
	if cfg.MaxRecordBytes <= 0 {
		cfg.MaxRecordBytes = 4 << 20
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 60 * time.Second
	}
	return &Server{
		cfg:        cfg,
		cache:      cfg.Cache,
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		flights:    make(map[string]*flight),
		bwdFlights: make(map[string]*bwdFlight),
	}, nil
}

// Handler returns the route mux: the versioned /v1 routes plus the
// original unversioned aliases.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/backward", s.handleBackward)
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("POST /v1/store/has", s.handleStoreHas)
	mux.HandleFunc("POST /v1/store/get", s.handleStoreGet)
	mux.HandleFunc("POST /v1/store/put", s.handleStorePut)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	// Legacy aliases, kept for pre-/v1 clients.
	mux.HandleFunc("POST /analyze", s.handleAnalyze)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req analyzeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		s.fail(w, http.StatusBadRequest, "bad_request", "malformed JSON: "+err.Error())
		return
	}
	if req.Source == "" {
		s.fail(w, http.StatusBadRequest, "bad_request", `missing "source"`)
		return
	}
	if req.MaxSteps < 0 || req.TimeoutMS < 0 || req.Depth < 0 {
		s.fail(w, http.StatusBadRequest, "bad_request", "negative limits")
		return
	}
	if s.cfg.MaxSteps > 0 && (req.MaxSteps == 0 || req.MaxSteps > s.cfg.MaxSteps) {
		req.MaxSteps = s.cfg.MaxSteps
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	resp, err := s.analyze(ctx, &req)
	if err != nil {
		s.failErr(w, err)
		return
	}
	s.requestsOK.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// flightKey addresses identical analyses: same source under the same
// result-affecting options. The timeout is excluded — it bounds the
// wait, not the answer.
func flightKey(req *analyzeRequest) string {
	h := sha256.New()
	fmt.Fprintf(h, "steps=%d depth=%d\n", req.MaxSteps, req.Depth)
	h.Write([]byte(req.Source))
	return hex.EncodeToString(h.Sum(nil))
}

// analyze coalesces identical concurrent requests onto one analysis and
// runs the winner under the worker semaphore.
func (s *Server) analyze(ctx context.Context, req *analyzeRequest) (*analyzeResponse, error) {
	key := flightKey(req)
	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		select {
		case <-f.done:
			if f.err != nil {
				return nil, f.err
			}
			s.analysesDup.Add(1)
			dup := *f.resp
			dup.Coalesced = true
			return &dup, nil
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %w", awam.ErrCanceled, context.Cause(ctx))
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	f.resp, f.err = s.runAnalysis(ctx, req)
	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
	close(f.done)
	return f.resp, f.err
}

func (s *Server) runAnalysis(ctx context.Context, req *analyzeRequest) (*analyzeResponse, error) {
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: %w", awam.ErrCanceled, context.Cause(ctx))
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	opts := []awam.AnalyzeOption{awam.WithSummaryCache(s.cache)}
	if req.MaxSteps > 0 {
		opts = append(opts, awam.WithMaxSteps(req.MaxSteps))
	}
	if req.Depth > 0 {
		opts = append(opts, awam.WithDepth(req.Depth))
	}
	start := time.Now()
	a, err := s.doAnalyze(ctx, req.Source, opts...)
	if err != nil {
		return nil, err
	}
	s.analysesRun.Add(1)

	resp := &analyzeResponse{Predicates: make(map[string]awam.Summary), ElapsedMS: time.Since(start).Milliseconds()}
	for _, pred := range a.Predicates() {
		if sum, ok := a.Summary(pred); ok {
			resp.Predicates[pred] = sum
		}
	}
	st := a.Stats()
	resp.Stats = api.AnalysisStats{Exec: st.Exec, Iterations: st.Iterations, TableSize: st.TableSize}
	if inc, ok := a.Incremental(); ok {
		resp.Incremental = &api.Incremental{
			SCCs: inc.SCCs, WarmSCCs: inc.WarmSCCs,
			WarmPatterns: inc.WarmPatterns, ColdPatterns: inc.ColdPatterns,
		}
	}
	cs := s.cache.Stats()
	resp.Cache = api.Cache{
		Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions,
		DiskLoads: cs.DiskLoads, RemoteLoads: cs.RemoteLoads,
		RemoteMisses: cs.RemoteMisses, RemotePuts: cs.RemotePuts,
		RemoteRoundTrips: cs.RemoteRoundTrips, RemoteErrors: cs.RemoteErrors,
		Degraded: cs.Degraded, Entries: cs.Entries, Bytes: cs.Bytes,
	}
	return resp, nil
}

// handleOptimize analyzes the posted source and runs the gated
// optimizer pipeline over it, returning the per-pass report (optimize
// requests are not coalesced: the report carries timing measurements
// that should reflect each request's own run).
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req optimizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		s.fail(w, http.StatusBadRequest, "bad_request", "malformed JSON: "+err.Error())
		return
	}
	if req.Source == "" {
		s.fail(w, http.StatusBadRequest, "bad_request", `missing "source"`)
		return
	}
	if req.TimeoutMS < 0 || req.MeasureRuns < 0 {
		s.fail(w, http.StatusBadRequest, "bad_request", "negative limits")
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.failErr(w, fmt.Errorf("%w: %w", awam.ErrCanceled, context.Cause(ctx)))
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	start := time.Now()
	a, err := s.doAnalyze(ctx, req.Source, awam.WithSummaryCache(s.cache))
	if err != nil {
		s.failErr(w, err)
		return
	}
	var opts []awam.OptimizeOption
	if len(req.Passes) > 0 {
		opts = append(opts, awam.WithPasses(req.Passes...))
	}
	if len(req.GateGoals) > 0 {
		opts = append(opts, awam.WithGateGoals(req.GateGoals...))
	}
	if req.MeasureRuns > 0 {
		opts = append(opts, awam.WithMeasureRuns(req.MeasureRuns))
	}
	opt, report, err := a.System().Optimize(a, opts...)
	if err != nil {
		s.failErr(w, err)
		return
	}
	s.optimizesRun.Add(1)
	resp := &optimizeResponse{Report: report, ElapsedMS: time.Since(start).Milliseconds()}
	if req.Disasm {
		resp.Disasm = opt.Disasm()
	}
	s.requestsOK.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) doAnalyze(ctx context.Context, source string, opts ...awam.AnalyzeOption) (*awam.Analysis, error) {
	if s.cfg.Analyze != nil {
		return s.cfg.Analyze(ctx, source, opts...)
	}
	sys, err := awam.Load(source)
	if err != nil {
		return nil, err
	}
	return sys.AnalyzeContext(ctx, opts...)
}

// failErr maps the facade's typed errors onto HTTP error responses.
func (s *Server) failErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, awam.ErrParse):
		s.fail(w, http.StatusUnprocessableEntity, "parse_error", err.Error())
	case errors.Is(err, awam.ErrCompile):
		s.fail(w, http.StatusUnprocessableEntity, "compile_error", err.Error())
	case errors.Is(err, awam.ErrAnalysisBudget):
		s.fail(w, http.StatusUnprocessableEntity, "budget_exhausted", err.Error())
	case errors.Is(err, awam.ErrCanceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		s.fail(w, http.StatusGatewayTimeout, "deadline_exceeded", err.Error())
	case errors.Is(err, awam.ErrBadOption):
		s.fail(w, http.StatusBadRequest, "bad_request", err.Error())
	case errors.Is(err, awam.ErrOptimize):
		s.fail(w, http.StatusUnprocessableEntity, "optimize_rejected", err.Error())
	default:
		s.fail(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, code, msg string) {
	s.requestsErr.Add(1)
	var body errorBody
	body.Error.Code = code
	body.Error.Message = msg
	writeJSON(w, status, body)
}

// boolGauge renders a bool as a 0/1 Prometheus gauge value.
func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}

// handleMetrics writes the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	cs := s.cache.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, m := range []struct {
		name, help, typ string
		value           int64
	}{
		{"awamd_requests_total{result=\"ok\"}", "Completed /analyze requests.", "counter", s.requestsOK.Load()},
		{"awamd_requests_total{result=\"error\"}", "", "", s.requestsErr.Load()},
		{"awamd_analyses_total", "Analyses actually executed.", "counter", s.analysesRun.Load()},
		{"awamd_analyses_coalesced_total", "Requests served by joining an identical in-flight analysis.", "counter", s.analysesDup.Load()},
		{"awamd_backward_analyses_total", "Backward demand queries actually executed.", "counter", s.backwardsRun.Load()},
		{"awamd_backward_coalesced_total", "Backward requests served by joining an identical in-flight query.", "counter", s.backwardsDup.Load()},
		{"awamd_backward_steps_total", "Backward abstract transfer steps executed.", "counter", s.backwardSteps.Load()},
		{"awamd_backward_visited_sccs_total", "Call-graph components visited by backward queries (the demanded cones).", "counter", s.backwardVisited.Load()},
		{"awamd_backward_reused_sccs_total", "Backward components served from the summary store.", "counter", s.backwardReused.Load()},
		{"awamd_optimizes_total", "Optimizer pipeline runs executed.", "counter", s.optimizesRun.Load()},
		{"awamd_inflight_analyses", "Analyses currently running.", "gauge", s.inflight.Load()},
		{"awamd_cache_hits_total", "Summary-store record hits (any tier).", "counter", cs.Hits},
		{"awamd_cache_misses_total", "Summary-store record misses.", "counter", cs.Misses},
		{"awamd_cache_evictions_total", "Summary-store evictions.", "counter", cs.Evictions},
		{"awamd_cache_disk_loads_total", "Summary-store records faulted in from disk.", "counter", cs.DiskLoads},
		{"awamd_cache_remote_loads_total", "Summary-store records faulted in from the fabric peer.", "counter", cs.RemoteLoads},
		{"awamd_cache_remote_misses_total", "Records the fabric peer was asked for but did not hold.", "counter", cs.RemoteMisses},
		{"awamd_cache_remote_puts_total", "Records the fabric peer accepted upstream.", "counter", cs.RemotePuts},
		{"awamd_cache_remote_round_trips_total", "Fabric protocol round trips attempted.", "counter", cs.RemoteRoundTrips},
		{"awamd_cache_remote_errors_total", "Failed fabric exchanges (degraded to local misses).", "counter", cs.RemoteErrors},
		{"awamd_cache_remote_breaker_opens_total", "Fabric circuit-breaker open events.", "counter", cs.BreakerOpens},
		{"awamd_cache_remote_degraded", "1 while the fabric breaker is open (serving local tiers only).", "gauge", boolGauge(cs.Degraded)},
		{"awamd_store_requests_total{op=\"has\"}", "Fabric protocol requests served.", "counter", s.storeHas.Load()},
		{"awamd_store_requests_total{op=\"get\"}", "", "", s.storeGet.Load()},
		{"awamd_store_requests_total{op=\"put\"}", "", "", s.storePut.Load()},
		{"awamd_store_records_served_total", "Records served to fabric peers.", "counter", s.recordsServed.Load()},
		{"awamd_store_records_stored_total", "Records accepted from fabric peers.", "counter", s.recordsStored.Load()},
		{"awamd_cache_entries", "Summary-store resident records.", "gauge", int64(cs.Entries)},
		{"awamd_cache_bytes", "Summary-store resident bytes.", "gauge", cs.Bytes},
	} {
		if m.help != "" {
			base := m.name
			if j := strings.IndexByte(base, '{'); j >= 0 {
				base = base[:j]
			}
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", base, m.help, base, m.typ)
		}
		fmt.Fprintf(w, "%s %d\n", m.name, m.value)
	}
}
