package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"awam"
	"awam/api"
)

type (
	backwardRequest  = api.BackwardRequest
	backwardResponse = api.BackwardResponse
)

// handleBackward serves POST /v1/backward: a demand query over the
// posted source. It mirrors /v1/analyze — body cap, per-request
// deadline, step-budget clamp, worker semaphore, singleflight over
// identical concurrent queries — and runs against the daemon's shared
// summary store, so a clean repeat query re-executes nothing.
func (s *Server) handleBackward(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req backwardRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		s.fail(w, http.StatusBadRequest, "bad_request", "malformed JSON: "+err.Error())
		return
	}
	if req.Source == "" {
		s.fail(w, http.StatusBadRequest, "bad_request", `missing "source"`)
		return
	}
	if req.MaxSteps < 0 || req.TimeoutMS < 0 || req.Depth < 0 {
		s.fail(w, http.StatusBadRequest, "bad_request", "negative limits")
		return
	}
	if s.cfg.MaxSteps > 0 && (req.MaxSteps == 0 || req.MaxSteps > s.cfg.MaxSteps) {
		req.MaxSteps = s.cfg.MaxSteps
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	resp, err := s.backward(ctx, &req)
	if err != nil {
		s.failErr(w, err)
		return
	}
	s.requestsOK.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// backwardFlightKey addresses identical demand queries: same source,
// same goals, same result-affecting options. The timeout is excluded —
// it bounds the wait, not the answer.
func backwardFlightKey(req *backwardRequest) string {
	h := sha256.New()
	fmt.Fprintf(h, "bwd steps=%d depth=%d goals=%s\n",
		req.MaxSteps, req.Depth, strings.Join(req.Goals, ","))
	h.Write([]byte(req.Source))
	return hex.EncodeToString(h.Sum(nil))
}

// backward coalesces identical concurrent queries onto one analysis and
// runs the winner under the worker semaphore.
func (s *Server) backward(ctx context.Context, req *backwardRequest) (*backwardResponse, error) {
	key := backwardFlightKey(req)
	s.mu.Lock()
	if f, ok := s.bwdFlights[key]; ok {
		s.mu.Unlock()
		select {
		case <-f.done:
			if f.err != nil {
				return nil, f.err
			}
			s.backwardsDup.Add(1)
			dup := *f.resp
			dup.Coalesced = true
			return &dup, nil
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %w", awam.ErrCanceled, context.Cause(ctx))
		}
	}
	f := &bwdFlight{done: make(chan struct{})}
	s.bwdFlights[key] = f
	s.mu.Unlock()

	f.resp, f.err = s.runBackward(ctx, req)
	s.mu.Lock()
	delete(s.bwdFlights, key)
	s.mu.Unlock()
	close(f.done)
	return f.resp, f.err
}

func (s *Server) runBackward(ctx context.Context, req *backwardRequest) (*backwardResponse, error) {
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: %w", awam.ErrCanceled, context.Cause(ctx))
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	opts := []awam.BackwardOption{awam.WithBackwardStore(s.cache)}
	for _, g := range req.Goals {
		opts = append(opts, awam.WithGoal(g))
	}
	if req.MaxSteps > 0 {
		opts = append(opts, awam.WithBackwardMaxSteps(req.MaxSteps))
	}
	if req.Depth > 0 {
		opts = append(opts, awam.WithBackwardDepth(req.Depth))
	}
	start := time.Now()
	b, err := s.doBackward(ctx, req.Source, opts...)
	if err != nil {
		return nil, err
	}
	s.backwardsRun.Add(1)

	resp := &backwardResponse{
		Demands:   make(map[string]awam.Demand),
		ElapsedMS: time.Since(start).Milliseconds(),
	}
	for _, d := range b.Demands() {
		resp.Demands[d.Pred] = d
	}
	st := b.Stats()
	s.backwardSteps.Add(st.Steps)
	s.backwardVisited.Add(int64(st.VisitedSCCs))
	s.backwardReused.Add(int64(st.ReusedSCCs))
	resp.Stats = api.BackwardStats{
		Steps: st.Steps, Iterations: st.Iterations,
		VisitedSCCs: st.VisitedSCCs, TotalSCCs: st.TotalSCCs,
		ReusedSCCs: st.ReusedSCCs, ExecutedSCCs: st.ExecutedSCCs,
		CondenseMS: st.CondenseMS, ForwardMS: st.ForwardMS, SolveMS: st.SolveMS,
	}
	cs := s.cache.Stats()
	resp.Cache = api.Cache{
		Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions,
		DiskLoads: cs.DiskLoads, RemoteLoads: cs.RemoteLoads,
		RemoteMisses: cs.RemoteMisses, RemotePuts: cs.RemotePuts,
		RemoteRoundTrips: cs.RemoteRoundTrips, RemoteErrors: cs.RemoteErrors,
		Degraded: cs.Degraded, Entries: cs.Entries, Bytes: cs.Bytes,
	}
	return resp, nil
}

func (s *Server) doBackward(ctx context.Context, source string, opts ...awam.BackwardOption) (*awam.BackwardAnalysis, error) {
	if s.cfg.Backward != nil {
		return s.cfg.Backward(ctx, source, opts...)
	}
	sys, err := awam.Load(source)
	if err != nil {
		return nil, err
	}
	return sys.AnalyzeBackwardContext(ctx, opts...)
}
