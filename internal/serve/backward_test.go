package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"awam"
	"awam/api"
)

func postBackward(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/backward", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestBackwardEndToEnd: a demand query round-trips through HTTP with
// typed demands, and a repeat query is served warm from the shared
// store (zero components re-executed).
func TestBackwardEndToEnd(t *testing.T) {
	ts := newTestServer(t, Config{})
	body, _ := json.Marshal(api.BackwardRequest{Source: testProg, Goals: []string{"app/3"}})

	resp, data := postBackward(t, ts, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out api.BackwardResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("bad response: %v\n%s", err, data)
	}
	d, ok := out.Demands["app/3"]
	if !ok || !d.Callable || d.Call != "app(nv, any, any)" {
		t.Fatalf("app/3 demand = %+v (demands: %v)", d, out.Demands)
	}
	if len(d.Args) != 3 || d.Args[0].Type != awam.TypeNonVar {
		t.Errorf("app/3 args = %+v", d.Args)
	}
	if out.Stats.VisitedSCCs == 0 || out.Stats.VisitedSCCs > out.Stats.TotalSCCs {
		t.Errorf("stats = %+v", out.Stats)
	}
	if out.Stats.ExecutedSCCs == 0 {
		t.Error("cold query executed no components")
	}

	// Same query again: everything served from the daemon's store.
	resp2, data2 := postBackward(t, ts, string(body))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d: %s", resp2.StatusCode, data2)
	}
	var warm api.BackwardResponse
	if err := json.Unmarshal(data2, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Stats.ExecutedSCCs != 0 || warm.Stats.ReusedSCCs != out.Stats.ExecutedSCCs {
		t.Errorf("warm stats = %+v, cold = %+v", warm.Stats, out.Stats)
	}
	if fmt.Sprint(warm.Demands) != fmt.Sprint(out.Demands) {
		t.Error("warm demands differ from cold")
	}
}

// TestBackwardErrors: the error mapping matches /v1/analyze's — typed
// JSON codes for each failure class.
func TestBackwardErrors(t *testing.T) {
	ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"malformed JSON", "{", http.StatusBadRequest, "bad_request"},
		{"missing source", `{}`, http.StatusBadRequest, "bad_request"},
		{"negative limits", `{"source":"p.","max_steps":-1}`, http.StatusBadRequest, "bad_request"},
		{"parse error", `{"source":"p :- ."}`, http.StatusUnprocessableEntity, "parse_error"},
		{"unknown goal", `{"source":"p(a).","goals":["zap/9"]}`, http.StatusBadRequest, "bad_request"},
		{"bad indicator", `{"source":"p(a).","goals":["p"]}`, http.StatusBadRequest, "bad_request"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, data := postBackward(t, ts, c.body)
			if resp.StatusCode != c.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, c.status, data)
			}
			if got := errCode(t, data); got != c.code {
				t.Errorf("code = %q, want %q", got, c.code)
			}
		})
	}
}

// TestBackwardBodyCap: oversized bodies fail with 413, like /analyze.
func TestBackwardBodyCap(t *testing.T) {
	ts := newTestServer(t, Config{MaxBodyBytes: 64})
	resp, data := postBackward(t, ts, reqBody(t, strings.Repeat("p(a). ", 64)))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	if got := errCode(t, data); got != "body_too_large" {
		t.Errorf("code = %q", got)
	}
}

// TestBackwardStepClamp: the server's MaxSteps clamp applies to demand
// queries; an impossible budget surfaces as budget_exhausted.
func TestBackwardStepClamp(t *testing.T) {
	ts := newTestServer(t, Config{MaxSteps: 1})
	resp, data := postBackward(t, ts, reqBody(t, testProg))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	if got := errCode(t, data); got != "budget_exhausted" {
		t.Errorf("code = %q", got)
	}
}

// TestBackwardSingleflight: identical concurrent demand queries
// coalesce onto one analysis.
func TestBackwardSingleflight(t *testing.T) {
	var runs atomic.Int64
	release := make(chan struct{})
	blocking := func(ctx context.Context, source string, opts ...awam.BackwardOption) (*awam.BackwardAnalysis, error) {
		runs.Add(1)
		<-release
		sys, err := awam.Load(source)
		if err != nil {
			return nil, err
		}
		return sys.AnalyzeBackwardContext(ctx, opts...)
	}
	ts := newTestServer(t, Config{Backward: blocking})

	const n = 6
	var wg sync.WaitGroup
	coalesced := make([]bool, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/backward", "application/json",
				strings.NewReader(reqBody(t, testProg)))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			var out backwardResponse
			if json.NewDecoder(resp.Body).Decode(&out) == nil {
				coalesced[i] = out.Coalesced
			}
		}(i)
	}
	time.Sleep(200 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("%d backward analyses ran for %d identical requests", got, n)
	}
	joined := 0
	for i := range codes {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d failed with %d", i, codes[i])
		}
		if coalesced[i] {
			joined++
		}
	}
	if joined != n-1 {
		t.Fatalf("%d/%d requests coalesced, want %d", joined, n, n-1)
	}
	// Different goals must NOT share a flight with the goal-less query.
	resp, err := http.Post(ts.URL+"/v1/backward", "application/json",
		strings.NewReader(`{"source":"p(a).","goals":["p/1"]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if got := runs.Load(); got != 2 {
		t.Fatalf("distinct-goal query did not run its own analysis (runs=%d)", got)
	}
}

// TestBackwardMetrics: /v1/metrics exposes the backward counters and
// they move with traffic.
func TestBackwardMetrics(t *testing.T) {
	ts := newTestServer(t, Config{})
	if resp, data := postBackward(t, ts, reqBody(t, testProg)); resp.StatusCode != http.StatusOK {
		t.Fatalf("backward: %d %s", resp.StatusCode, data)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"awamd_backward_analyses_total 1",
		"awamd_backward_coalesced_total 0",
		"awamd_backward_steps_total",
		"awamd_backward_visited_sccs_total",
		"awamd_backward_reused_sccs_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
