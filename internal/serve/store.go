package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"awam/api"
)

// This file serves the summary-fabric protocol: batched has/get/put
// record exchange against the daemon's summary store, under
// /v1/store/{has,get,put}. Peer daemons' remote tiers
// (awam.WithRemote) are the intended clients — N daemons pointing at
// one (or at each other) share a single summary universe.
//
// The handlers touch the local tiers only (awam.Store's batch methods
// are defined that way), so a cycle of daemons can never chase a
// record around the fabric. Batches are capped at api.MaxStoreBatch;
// individual records at Config.MaxRecordBytes.

// decodeStore decodes a store request body under the store body cap,
// writing the error response itself on failure.
func (s *Server) decodeStore(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxStoreBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxStoreBodyBytes))
			return false
		}
		s.fail(w, http.StatusBadRequest, "bad_request", "malformed JSON: "+err.Error())
		return false
	}
	return true
}

// checkBatch enforces the protocol batch cap.
func (s *Server) checkBatch(w http.ResponseWriter, n int) bool {
	if n > api.MaxStoreBatch {
		s.fail(w, http.StatusBadRequest, "batch_too_large",
			fmt.Sprintf("batch of %d exceeds the %d-entry cap", n, api.MaxStoreBatch))
		return false
	}
	return true
}

func (s *Server) handleStoreHas(w http.ResponseWriter, r *http.Request) {
	var req api.StoreHasRequest
	if !s.decodeStore(w, r, &req) {
		return
	}
	if !s.checkBatch(w, len(req.Fingerprints)) {
		return
	}
	s.storeHas.Add(1)
	s.requestsOK.Add(1)
	writeJSON(w, http.StatusOK, api.StoreHasResponse{Present: s.cache.Has(req.Fingerprints)})
}

func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	var req api.StoreGetRequest
	if !s.decodeStore(w, r, &req) {
		return
	}
	if !s.checkBatch(w, len(req.Fingerprints)) {
		return
	}
	s.storeGet.Add(1)
	resp := api.StoreGetResponse{Records: []api.StoreRecord{}}
	for i, data := range s.cache.GetRecords(req.Fingerprints) {
		if data == nil || int64(len(data)) > s.cfg.MaxRecordBytes {
			continue
		}
		resp.Records = append(resp.Records, api.StoreRecord{
			Fingerprint: req.Fingerprints[i], Data: data,
		})
	}
	s.recordsServed.Add(int64(len(resp.Records)))
	s.requestsOK.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStorePut(w http.ResponseWriter, r *http.Request) {
	var req api.StorePutRequest
	if !s.decodeStore(w, r, &req) {
		return
	}
	if !s.checkBatch(w, len(req.Records)) {
		return
	}
	s.storePut.Add(1)
	fps := make([]string, 0, len(req.Records))
	recs := make([][]byte, 0, len(req.Records))
	for _, rec := range req.Records {
		if int64(len(rec.Data)) > s.cfg.MaxRecordBytes {
			continue // oversized: skipped, not failed — mirrors the client's treatment
		}
		fps = append(fps, rec.Fingerprint)
		recs = append(recs, rec.Data)
	}
	stored := s.cache.PutRecords(fps, recs)
	s.recordsStored.Add(int64(stored))
	s.requestsOK.Add(1)
	writeJSON(w, http.StatusOK, api.StorePutResponse{Stored: stored})
}
