package fuzz

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"awam/internal/domain"
	"awam/internal/parser"
	"awam/internal/term"
)

// baseSeed anchors the deterministic property suite; changing it
// re-rolls every generated program.
const baseSeed = 20260805

// propertyCases is the number of generated programs the soundness
// property checks per `go test ./internal/fuzz` run (the issue's
// acceptance floor is 500).
const propertyCases = 512

// TestGenerateDeterministic pins the generator contract: equal seeds
// yield byte-identical cases, and the seed actually matters.
func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	a := Generate(baseSeed, cfg)
	b := Generate(baseSeed, cfg)
	if a.Source != b.Source || fmt.Sprint(a.Queries) != fmt.Sprint(b.Queries) {
		t.Fatal("same seed produced different cases")
	}
	c := Generate(baseSeed+1, cfg)
	if a.Source == c.Source {
		t.Fatal("different seeds produced identical sources")
	}
	if a.Seed != baseSeed {
		t.Fatalf("case seed %d, want %d", a.Seed, baseSeed)
	}
}

// TestPropertySoundness is the main differential property: every
// generated program passes the concrete-vs-abstract oracle, including
// the cross-strategy checks, with zero violations.
func TestPropertySoundness(t *testing.T) {
	const shards = 8
	cfg := DefaultGenConfig()
	opt := DefaultOptions()
	var mu sync.Mutex
	var total Stats
	t.Run("cases", func(t *testing.T) {
		for s := 0; s < shards; s++ {
			s := s
			t.Run(fmt.Sprintf("shard%02d", s), func(t *testing.T) {
				t.Parallel()
				var st Stats
				for i := s; i < propertyCases; i += shards {
					seed := int64(baseSeed + i)
					c := Generate(seed, cfg)
					v, cs, err := Check(c, opt)
					if err != nil {
						t.Fatalf("seed %d: oracle infrastructure error: %v\nsource:\n%s", seed, err, c.Source)
					}
					st.Add(cs)
					if v != nil {
						reportViolation(t, c, v, opt)
					}
				}
				mu.Lock()
				total.Add(st)
				mu.Unlock()
			})
		}
	})
	t.Logf("checked %d cases: %d queries, %d solutions, %d skipped",
		propertyCases, total.Queries, total.Solutions, total.Skipped)
	if total.Solutions < 1000 {
		t.Errorf("property suite observed only %d concrete solutions; generator has gone degenerate", total.Solutions)
	}
	if total.Queries < propertyCases {
		t.Errorf("property suite fully checked only %d queries over %d cases", total.Queries, propertyCases)
	}
}

// TestPropertyMetamorphic checks that clause reordering and predicate
// renaming leave summaries unchanged, over a slice of the generated
// corpus.
func TestPropertyMetamorphic(t *testing.T) {
	const cases = 160
	const shards = 8
	cfg := DefaultGenConfig()
	opt := DefaultOptions()
	for s := 0; s < shards; s++ {
		s := s
		t.Run(fmt.Sprintf("shard%02d", s), func(t *testing.T) {
			t.Parallel()
			for i := s; i < cases; i += shards {
				seed := int64(baseSeed + i)
				c := Generate(seed, cfg)
				v, err := CheckMetamorphic(c, opt)
				if err != nil {
					t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, c.Source)
				}
				if v != nil {
					b, _ := json.MarshalIndent(v, "", "  ")
					t.Fatalf("metamorphic violation (seed %d):\n%s", seed, b)
				}
			}
		})
	}
}

// reportViolation shrinks a failing case and fails the test with both
// the original and minimized counterexamples as JSON.
func reportViolation(t *testing.T, c Case, v *Violation, opt Options) {
	t.Helper()
	b, _ := json.MarshalIndent(v, "", "  ")
	if _, sv := Shrink(c, opt); sv != nil {
		sb, _ := json.MarshalIndent(sv, "", "  ")
		t.Fatalf("oracle violation (seed %d):\n%s\n\nshrunk to %d clauses:\n%s",
			c.Seed, b, sv.Clauses, sb)
	}
	t.Fatalf("oracle violation (seed %d):\n%s", c.Seed, b)
}

// narrowMutation simulates a transfer-function bug: every numeric,
// ground, or otherwise wide leaf of the success summary collapses to
// Atom. Any concrete answer that is not an atom then escapes the
// summary, and the oracle must notice.
func narrowMutation(tab *term.Tab, succ *domain.Pattern) *domain.Pattern {
	var narrow func(dt *domain.Term) *domain.Term
	narrow = func(dt *domain.Term) *domain.Term {
		switch dt.Kind {
		case domain.Intg, domain.Const, domain.Ground, domain.NV, domain.Any, domain.List:
			return domain.MkLeaf(domain.Atom)
		case domain.Struct:
			args := make([]*domain.Term, len(dt.Args))
			for i, a := range dt.Args {
				args[i] = narrow(a)
			}
			return domain.MkStructT(dt.Fn, args...)
		}
		return dt
	}
	args := make([]*domain.Term, len(succ.Args))
	for i, a := range succ.Args {
		args[i] = narrow(a)
	}
	return domain.NewPattern(succ.Fn, args)
}

// TestMutationCaughtAndShrunk is experiment E17: inject the narrowing
// bug, confirm the oracle catches it on the generated corpus, and
// confirm the shrinker reduces the counterexample to at most 5
// clauses.
func TestMutationCaughtAndShrunk(t *testing.T) {
	cfg := DefaultGenConfig()
	opt := DefaultOptions()
	opt.CrossStrategies = false // the bug is injected after analysis
	opt.MutateSummary = narrowMutation

	caught := 0
	for i := 0; i < 64 && caught < 3; i++ {
		seed := int64(baseSeed + i)
		c := Generate(seed, cfg)
		v, _, err := Check(c, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v == nil {
			continue
		}
		caught++
		shrunk, sv := Shrink(c, opt)
		if sv == nil {
			t.Fatalf("seed %d: violation vanished under shrinking", seed)
		}
		if sv.Clauses > 5 {
			t.Fatalf("seed %d: shrunk counterexample still has %d clauses (want <= 5):\n%s",
				seed, sv.Clauses, shrunk.Source)
		}
		// The shrunk case must be self-contained: reparse and recount.
		tab := term.NewTab()
		cls, err := parser.ParseClauses(tab, shrunk.Source)
		if err != nil {
			t.Fatalf("seed %d: shrunk source does not parse: %v\n%s", seed, err, shrunk.Source)
		}
		if len(cls) != sv.Clauses {
			t.Fatalf("seed %d: violation reports %d clauses, source has %d", seed, sv.Clauses, len(cls))
		}
		if len(shrunk.Queries) != 1 {
			t.Fatalf("seed %d: shrinker kept %d queries, want 1", seed, len(shrunk.Queries))
		}
	}
	if caught < 3 {
		t.Fatalf("injected transfer-function bug caught on only %d/64 seeds; oracle is too weak", caught)
	}
}

// TestShrinkOnPassingCase pins the Shrink contract for healthy inputs.
func TestShrinkOnPassingCase(t *testing.T) {
	c := Generate(baseSeed, DefaultGenConfig())
	got, v := Shrink(c, DefaultOptions())
	if v != nil {
		t.Fatalf("passing case reported as failing: %+v", v)
	}
	if got.Source != c.Source {
		t.Fatal("Shrink modified a passing case")
	}
}
