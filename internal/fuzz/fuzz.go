// Package fuzz implements differential soundness fuzzing for the
// analyzer: a seeded random Prolog program generator, a concrete-vs-
// abstract oracle, and a shrinker for failing cases.
//
// The oracle mechanizes the paper's Section 3 soundness claim. For
// each generated query it abstracts the concrete call into a calling
// pattern, analyzes the program to a fixpoint, runs the same query
// concretely under the reference interpreter (internal/refint), and
// checks that every observed answer substitution is a member of the
// inferred success pattern's concretization (domain.Member). On top of
// that it cross-checks the three fixpoint strategies against each
// other and applies metamorphic checks: reordering clauses or renaming
// predicates must not change the computed summaries.
package fuzz

// Case is one generated (or externally supplied) fuzz input: a Prolog
// program plus a set of single-goal queries, every one of which
// terminates by construction under the generator's templates.
type Case struct {
	// Seed reproduces the case via Generate(Seed, cfg); zero for cases
	// that did not come from the generator.
	Seed    int64    `json:"seed,omitempty"`
	Source  string   `json:"source"`
	Queries []string `json:"queries"`
}

// Violation is a counterexample found by the oracle. It serializes to
// JSON so cmd/fuzzdiff soak runs can emit machine-readable reports.
type Violation struct {
	// Kind is one of "soundness" (a concrete answer escapes some
	// strategy's abstract summary), "bottom-success" (a strategy
	// claims failure but the query succeeds), "strategy-divergence"
	// (strict mode: worklist, naive and parallel results are not
	// byte-identical), "metamorphic-reorder", "metamorphic-rename", or
	// "backward-consistency" (a forward analysis from an inferred
	// weakest demand refutes success).
	Kind    string `json:"kind"`
	Seed    int64  `json:"seed,omitempty"`
	Source  string `json:"source"`
	Query   string `json:"query"`
	Detail  string `json:"detail"`
	Clauses int    `json:"clauses"`
	// DivergedPred and DivergedPair identify the first diverging table
	// entry of a strategy-divergence: the calling pattern whose row
	// differs, and the two summaries ("bottom" / "missing" when one
	// side lacks the row entirely). Empty for other kinds.
	DivergedPred string   `json:"diverged_pred,omitempty"`
	DivergedPair []string `json:"diverged_pair,omitempty"`
}

// Stats summarizes one oracle run over a case.
type Stats struct {
	// Queries is the number of queries fully checked.
	Queries int
	// Solutions is the number of concrete answer substitutions checked
	// against abstract summaries.
	Solutions int
	// Skipped counts queries abandoned early: undefined or builtin
	// goals, step-budget exhaustion, or runtime errors in the concrete
	// interpreter (any solutions observed before the error are still
	// checked).
	Skipped int
	// Diverged counts byte-level worklist/parallel disagreements that
	// were tolerated because Options.StrictCross was off (each
	// strategy's summary is still individually checked for soundness).
	Diverged int
}

// Add accumulates s2 into s.
func (s *Stats) Add(s2 Stats) {
	s.Queries += s2.Queries
	s.Solutions += s2.Solutions
	s.Skipped += s2.Skipped
	s.Diverged += s2.Diverged
}
