package fuzz

import (
	"errors"
	"fmt"
	"strings"

	"awam/internal/compiler"
	"awam/internal/core"
	"awam/internal/domain"
	"awam/internal/parser"
	"awam/internal/refint"
	"awam/internal/term"
)

// Options tunes the differential oracle.
type Options struct {
	// Depth is the widening depth k (the paper uses 4).
	Depth int
	// MaxSolutions bounds how many concrete answers are checked per
	// query.
	MaxSolutions int
	// ConcreteSteps bounds the reference interpreter; AbstractSteps
	// bounds each fixpoint run. Exhausting either skips the query
	// rather than failing it.
	ConcreteSteps int64
	AbstractSteps int64
	// CrossStrategies additionally runs the naive and parallel-2/4
	// engines and checks every strategy's summary for soundness
	// against the concrete answers.
	CrossStrategies bool
	// StrictCross escalates cross-strategy disagreement to a
	// violation: worklist, naive and parallel-N results must be
	// byte-identical. Since the widening was restructured into an
	// upper closure (merge = widen ∘ lub is an idempotent,
	// commutative, associative join on the widened subdomain — see
	// domain/laws_test.go) this is a theorem for arbitrary programs,
	// so it defaults on everywhere, including source-level fuzzing.
	StrictCross bool
	// MutateSummary, when non-nil, post-processes the analyzer's
	// success pattern before the soundness check. It exists for fault
	// injection: tests install a mutation that narrows the summary
	// (simulating a transfer-function bug) and assert the oracle
	// catches it. Returning nil simulates a bottom summary.
	MutateSummary func(tab *term.Tab, succ *domain.Pattern) *domain.Pattern
}

// DefaultOptions is the configuration used by the property suite.
func DefaultOptions() Options {
	return Options{
		Depth:           4,
		MaxSolutions:    8,
		ConcreteSteps:   400_000,
		AbstractSteps:   5_000_000,
		CrossStrategies: true,
		StrictCross:     true,
	}
}

// Check runs the differential oracle on one case. It returns the first
// violation found (nil if none), per-case statistics, and an error only
// for infrastructure failures (unparsable source, compile errors) —
// soundness failures are violations, not errors.
func Check(c Case, opt Options) (*Violation, Stats, error) {
	var st Stats
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, c.Source)
	if err != nil {
		return nil, st, fmt.Errorf("fuzz: parse: %w", err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		return nil, st, fmt.Errorf("fuzz: compile: %w", err)
	}
	exp, err := compiler.ExpandedProgram(tab, prog)
	if err != nil {
		return nil, st, fmt.Errorf("fuzz: expand: %w", err)
	}

	viol := func(kind, query, detail string) *Violation {
		return &Violation{
			Kind:    kind,
			Seed:    c.Seed,
			Source:  c.Source,
			Query:   query,
			Detail:  detail,
			Clauses: len(prog.Clauses),
		}
	}

	for _, q := range c.Queries {
		goals, err := parser.ParseGoal(tab, q)
		if err != nil || len(goals) != 1 {
			st.Skipped++
			continue
		}
		goal := goals[0]
		fn, ok := term.Indicator(goal)
		if !ok || len(prog.Preds[fn]) == 0 {
			// Builtin or undefined goal: the analyzer has no summary
			// to check against.
			st.Skipped++
			continue
		}

		// Abstract the concrete call into the entry pattern.
		shares := make(map[*term.VarRef]int)
		argAbs := make([]*domain.Term, len(goal.Args))
		for i, a := range goal.Args {
			argAbs[i] = domain.AbstractConcrete(tab, a, shares)
		}
		cp := domain.WidenPattern(tab, domain.NewPattern(fn, argAbs), opt.Depth)

		run := func(strat core.Strategy, par int) (*core.Result, error) {
			cfg := core.DefaultConfig()
			cfg.Depth = opt.Depth
			cfg.MaxSteps = opt.AbstractSteps
			cfg.Strategy = strat
			cfg.Parallelism = par
			return core.NewWith(mod, cfg).Analyze(cp)
		}
		resWL, err := run(core.StrategyWorklist, 0)
		if errors.Is(err, core.ErrStepLimit) {
			st.Skipped++
			continue
		}
		if err != nil {
			return nil, st, fmt.Errorf("fuzz: analyze %q: %w", q, err)
		}
		succ := resWL.SuccessFor(fn)

		var alts []altSummary
		if opt.CrossStrategies {
			var v *Violation
			alts, v, err = crossCheck(tab, fn, succ, resWL, run, viol, q, opt.StrictCross, &st)
			if err != nil {
				return nil, st, err
			}
			if v != nil {
				return v, st, nil
			}
		}

		if opt.MutateSummary != nil && succ != nil {
			succ = opt.MutateSummary(tab, succ)
		}

		// Run the query concretely; collect up to MaxSolutions
		// instantiated argument vectors.
		in := refint.New(tab, exp)
		in.MaxSteps = opt.ConcreteSteps
		var sols [][]*term.Term
		_, cerr := in.Solve([]*term.Term{goal}, func() bool {
			inst := make([]*term.Term, len(goal.Args))
			for i, a := range goal.Args {
				inst[i] = in.ReadBinding(a)
			}
			sols = append(sols, inst)
			return len(sols) < opt.MaxSolutions
		})
		if cerr != nil {
			// Budget or runtime error: whatever solutions were observed
			// before the error are still genuine and checked below.
			st.Skipped++
		} else {
			st.Queries++
		}

		// refint.ReadBinding truncates terms past a depth guard to a
		// sentinel atom; a truncated answer is not a faithful witness,
		// so drop those rather than risk a false violation.
		deep := tab.Intern("<deep>")
		kept := sols[:0]
		for _, sol := range sols {
			ok := true
			for _, tm := range sol {
				if containsAtom(tm, deep) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, sol)
			}
		}
		sols = kept
		st.Solutions += len(sols)

		// Every strategy's summary must cover every observed answer.
		checks := append([]altSummary{{"worklist", succ}}, alts...)
		for _, ch := range checks {
			if len(sols) > 0 && ch.succ == nil {
				return viol("bottom-success", q, fmt.Sprintf(
					"%s analysis claims %s cannot succeed but %d concrete solutions exist",
					ch.label, cp.String(tab), len(sols))), st, nil
			}
			for si, sol := range sols {
				for i, tm := range sol {
					if !domain.Member(tab, tm, ch.succ.Args[i]) {
						return viol("soundness", q, fmt.Sprintf(
							"%s: solution %d argument %d: concrete value %s escapes abstract %s (summary %s)",
							ch.label, si, i+1, tab.Write(tm), ch.succ.Args[i].String(tab), ch.succ.String(tab))), st, nil
					}
				}
			}
		}
	}
	return nil, st, nil
}

// altSummary is a non-worklist strategy's success summary for the
// query predicate, carried into the soundness check.
type altSummary struct {
	label string
	succ  *domain.Pattern
}

// crossCheck runs the other fixpoint strategies on the same entry
// pattern and returns their summaries for the soundness check. Under
// strict mode it enforces the schedule-confluence contract: worklist,
// naive and parallel-N tables must all be byte-identical. Outside
// strict mode a byte-level disagreement only increments Stats.Diverged
// (each strategy's summary is still individually checked for
// soundness); that mode survives as an escape hatch for fault
// injection and for bisecting a confluence regression.
func crossCheck(tab *term.Tab, fn term.Functor, succWL *domain.Pattern,
	resWL *core.Result, run func(core.Strategy, int) (*core.Result, error),
	viol func(kind, query, detail string) *Violation, q string,
	strict bool, st *Stats) ([]altSummary, *Violation, error) {

	divergence := func(label string, other *core.Result) *Violation {
		pred, pair := FirstDivergence(resWL, other)
		v := viol("strategy-divergence", q, fmt.Sprintf(
			"worklist and %s results are not byte-identical; first divergence at %s: %s vs %s",
			label, pred, pair[0], pair[1]))
		v.DivergedPred = pred
		v.DivergedPair = pair[:]
		return v
	}

	var alts []altSummary
	for _, par := range []int{2, 4} {
		resPar, err := run(core.StrategyParallel, par)
		if errors.Is(err, core.ErrStepLimit) {
			continue
		}
		if err != nil {
			return nil, nil, fmt.Errorf("fuzz: parallel-%d analyze %q: %w", par, q, err)
		}
		if resWL.Marshal() != resPar.Marshal() {
			if strict {
				return nil, divergence(fmt.Sprintf("parallel-%d", par), resPar), nil
			}
			st.Diverged++
		}
		alts = append(alts, altSummary{fmt.Sprintf("parallel-%d", par), resPar.SuccessFor(fn)})
	}
	resNaive, err := run(core.StrategyNaive, 0)
	if errors.Is(err, core.ErrStepLimit) {
		return alts, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("fuzz: naive analyze %q: %w", q, err)
	}
	if resWL.Marshal() != resNaive.Marshal() {
		if strict {
			return nil, divergence("naive", resNaive), nil
		}
		st.Diverged++
	}
	alts = append(alts, altSummary{"naive", resNaive.SuccessFor(fn)})
	return alts, nil, nil
}

// FirstDivergence locates the first table entry on which two analysis
// results disagree, keyed by calling pattern. It returns the calling
// pattern and the two summaries ("missing" when one table lacks the
// entry, "bottom" for a nil summary). Entries are compared in a's
// presentation order, then b is scanned for entries absent from a.
func FirstDivergence(a, b *core.Result) (string, [2]string) {
	sumStr := func(r *core.Result, e *core.Entry) string {
		if e == nil {
			return "missing"
		}
		if e.Succ == nil {
			return "bottom"
		}
		return e.Succ.String(r.Tab)
	}
	bByKey := make(map[string]*core.Entry, len(b.Entries))
	for _, e := range b.Entries {
		bByKey[e.CP.Key()] = e
	}
	seen := make(map[string]bool, len(a.Entries))
	for _, e := range a.Entries {
		key := e.CP.Key()
		seen[key] = true
		be := bByKey[key]
		as, bs := sumStr(a, e), sumStr(b, be)
		if as != bs {
			return e.CP.String(a.Tab), [2]string{as, bs}
		}
	}
	for _, e := range b.Entries {
		if !seen[e.CP.Key()] {
			return e.CP.String(b.Tab), [2]string{"missing", sumStr(b, e)}
		}
	}
	// Same keyed rows: the byte difference is in presentation order.
	al, bl := strings.Split(a.Marshal(), "\n"), strings.Split(b.Marshal(), "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		var x, y string
		if i < len(al) {
			x = al[i]
		}
		if i < len(bl) {
			y = bl[i]
		}
		if x != y {
			return "(presentation order)", [2]string{x, y}
		}
	}
	return "", [2]string{"", ""}
}

// CheckMetamorphic applies the metamorphic oracle to a case: reversing
// clause order (within and across predicates) and uniformly renaming
// predicates must both leave every query's success summary unchanged —
// the abstract semantics is a property of the clause set, not its
// presentation.
func CheckMetamorphic(c Case, opt Options) (*Violation, error) {
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, c.Source)
	if err != nil {
		return nil, fmt.Errorf("fuzz: parse: %w", err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		return nil, fmt.Errorf("fuzz: compile: %w", err)
	}

	// Build the two transformed programs once, in the same atom table
	// so data functors keep their identities across variants.
	reordered := reorderSource(tab, prog)
	progR, err := parser.ParseProgram(tab, reordered)
	if err != nil {
		return nil, fmt.Errorf("fuzz: reparse reordered: %w", err)
	}
	modR, err := compiler.Compile(tab, progR)
	if err != nil {
		return nil, fmt.Errorf("fuzz: recompile reordered: %w", err)
	}
	renamed, ren := renameSource(tab, prog)
	progN, err := parser.ParseProgram(tab, renamed)
	if err != nil {
		return nil, fmt.Errorf("fuzz: reparse renamed: %w", err)
	}
	modN, err := compiler.Compile(tab, progN)
	if err != nil {
		return nil, fmt.Errorf("fuzz: recompile renamed: %w", err)
	}

	viol := func(kind, query, detail string) *Violation {
		return &Violation{
			Kind:    kind,
			Seed:    c.Seed,
			Source:  c.Source,
			Query:   query,
			Detail:  detail,
			Clauses: len(prog.Clauses),
		}
	}
	cfg := core.DefaultConfig()
	cfg.Depth = opt.Depth
	cfg.MaxSteps = opt.AbstractSteps
	cfg.Strategy = core.StrategyWorklist

	for _, q := range c.Queries {
		goals, err := parser.ParseGoal(tab, q)
		if err != nil || len(goals) != 1 {
			continue
		}
		goal := goals[0]
		fn, ok := term.Indicator(goal)
		if !ok || len(prog.Preds[fn]) == 0 {
			continue
		}
		shares := make(map[*term.VarRef]int)
		argAbs := make([]*domain.Term, len(goal.Args))
		for i, a := range goal.Args {
			argAbs[i] = domain.AbstractConcrete(tab, a, shares)
		}
		cp := domain.WidenPattern(tab, domain.NewPattern(fn, argAbs), opt.Depth)

		resO, err := core.NewWith(mod, cfg).Analyze(cp)
		if errors.Is(err, core.ErrStepLimit) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("fuzz: analyze %q: %w", q, err)
		}
		succO := resO.SuccessFor(fn)

		resR, err := core.NewWith(modR, cfg).Analyze(cp)
		if err != nil && !errors.Is(err, core.ErrStepLimit) {
			return nil, fmt.Errorf("fuzz: analyze reordered %q: %w", q, err)
		}
		if err == nil {
			succR := resR.SuccessFor(fn)
			if !patternsEqual(succO, succR) {
				return viol("metamorphic-reorder", q, fmt.Sprintf(
					"summary changed under clause reordering: %s vs %s",
					patStr(tab, succO), patStr(tab, succR))), nil
			}
		}

		rfn := ren[fn]
		cpN := domain.NewPattern(rfn, cp.Args)
		resN, err := core.NewWith(modN, cfg).Analyze(cpN)
		if err != nil && !errors.Is(err, core.ErrStepLimit) {
			return nil, fmt.Errorf("fuzz: analyze renamed %q: %w", q, err)
		}
		if err == nil {
			succN := resN.SuccessFor(rfn)
			// Compare modulo the predicate name: rebuild the renamed
			// summary over the original functor.
			var succNBack *domain.Pattern
			if succN != nil {
				succNBack = domain.NewPattern(fn, succN.Args)
			}
			if !patternsEqual(succO, succNBack) {
				return viol("metamorphic-rename", q, fmt.Sprintf(
					"summary changed under predicate renaming: %s vs %s",
					patStr(tab, succO), patStr(tab, succNBack))), nil
			}
		}
	}
	return nil, nil
}

// containsAtom reports whether tm contains the given atom anywhere.
func containsAtom(tm *term.Term, a term.Atom) bool {
	switch tm.Kind {
	case term.KAtom:
		return tm.Fn.Name == a
	case term.KStruct:
		for _, arg := range tm.Args {
			if containsAtom(arg, a) {
				return true
			}
		}
	}
	return false
}

func patternsEqual(p, q *domain.Pattern) bool {
	if p == nil || q == nil {
		return p == nil && q == nil
	}
	return p.Equal(q)
}

func patStr(tab *term.Tab, p *domain.Pattern) string {
	if p == nil {
		return "⊥"
	}
	return p.String(tab)
}

// reorderSource renders the program with predicate groups in reverse
// definition order and the clauses of each predicate reversed.
func reorderSource(tab *term.Tab, prog *term.Program) string {
	var b strings.Builder
	for i := len(prog.Order) - 1; i >= 0; i-- {
		cls := prog.ClausesOf(prog.Order[i])
		for j := len(cls) - 1; j >= 0; j-- {
			b.WriteString(tab.WriteClause(cls[j]))
			b.WriteString("\n")
		}
	}
	return b.String()
}

// renameSource renders the program with every defined predicate
// renamed to "rn_<name>", leaving data functors untouched (only call
// positions — clause heads and body goals, including goals nested
// under the control constructs — are rewritten).
func renameSource(tab *term.Tab, prog *term.Program) (string, map[term.Functor]term.Functor) {
	ren := make(map[term.Functor]term.Functor, len(prog.Order))
	for _, fn := range prog.Order {
		ren[fn] = tab.Func("rn_"+tab.Name(fn.Name), fn.Arity)
	}
	semi := tab.Intern(";")
	arrow := tab.Intern("->")
	naf := tab.Intern("\\+")

	var renameGoal func(tm *term.Term) *term.Term
	renameGoal = func(tm *term.Term) *term.Term {
		switch tm.Kind {
		case term.KAtom:
			if nfn, ok := ren[tm.Fn]; ok {
				return &term.Term{Kind: term.KAtom, Fn: nfn}
			}
		case term.KStruct:
			if (tm.Fn.Name == semi || tm.Fn.Name == arrow || tm.Fn.Name == tab.Comma) && tm.Fn.Arity == 2 {
				return &term.Term{Kind: term.KStruct, Fn: tm.Fn,
					Args: []*term.Term{renameGoal(tm.Args[0]), renameGoal(tm.Args[1])}}
			}
			if tm.Fn.Name == naf && tm.Fn.Arity == 1 {
				return &term.Term{Kind: term.KStruct, Fn: tm.Fn,
					Args: []*term.Term{renameGoal(tm.Args[0])}}
			}
			if nfn, ok := ren[tm.Fn]; ok {
				return &term.Term{Kind: term.KStruct, Fn: nfn, Args: tm.Args}
			}
		}
		return tm
	}

	var b strings.Builder
	for _, cl := range prog.Clauses {
		nc := term.Clause{Head: renameGoal(cl.Head), Body: make([]*term.Term, len(cl.Body))}
		for i, g := range cl.Body {
			nc.Body[i] = renameGoal(g)
		}
		b.WriteString(tab.WriteClause(nc))
		b.WriteString("\n")
	}
	return b.String(), ren
}
