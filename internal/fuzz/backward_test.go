package fuzz

import (
	"encoding/json"
	"fmt"
	"testing"

	"awam/internal/bench"
)

// TestPropertyBackwardConsistency is the forward/backward consistency
// property over the full benchmark suite (Table 1 and the extended
// programs — the same corpus the source fuzzer seeds from) and a slice
// of the generated corpus: analyzing forward from every non-bottom
// inferred demand must report a non-bottom success pattern. See
// CheckBackward for the oracle.
func TestPropertyBackwardConsistency(t *testing.T) {
	opt := DefaultOptions()
	for _, p := range bench.AllPrograms() {
		p := p
		t.Run("bench/"+p.Name, func(t *testing.T) {
			t.Parallel()
			v, st, err := CheckBackward(Case{Source: p.Source}, opt)
			if err != nil {
				t.Fatalf("oracle infrastructure error: %v", err)
			}
			if v != nil {
				b, _ := json.MarshalIndent(v, "", "  ")
				t.Fatalf("backward consistency violation:\n%s", b)
			}
			if st.Queries == 0 && st.Skipped == 0 {
				t.Error("oracle checked nothing")
			}
		})
	}

	const cases = 96
	const shards = 8
	cfg := DefaultGenConfig()
	for s := 0; s < shards; s++ {
		s := s
		t.Run(fmt.Sprintf("gen/shard%02d", s), func(t *testing.T) {
			t.Parallel()
			for i := s; i < cases; i += shards {
				seed := int64(baseSeed + i)
				c := Generate(seed, cfg)
				v, _, err := CheckBackward(c, opt)
				if err != nil {
					t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, c.Source)
				}
				if v != nil {
					b, _ := json.MarshalIndent(v, "", "  ")
					t.Fatalf("backward consistency violation (seed %d):\n%s", seed, b)
				}
			}
		})
	}
}
