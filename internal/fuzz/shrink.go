package fuzz

import (
	"strings"

	"awam/internal/parser"
	"awam/internal/term"
)

// ShrinkBudget bounds how many oracle invocations a single Shrink call
// may spend (each invocation re-analyzes and re-runs the candidate).
const ShrinkBudget = 400

// Shrink minimizes a failing case: it first narrows the query set to a
// single failing query, then greedily deletes whole clauses, then
// individual body goals, re-running the oracle after each candidate
// deletion and keeping any candidate that still fails. The returned
// case is 1-minimal up to the budget: removing any one clause (or any
// one body goal) makes the violation disappear. Returns the original
// case and nil if the case does not actually fail.
func Shrink(c Case, opt Options) (Case, *Violation) {
	v, _, err := Check(c, opt)
	if err != nil || v == nil {
		return c, nil
	}
	budget := ShrinkBudget

	// fails reruns the oracle on a candidate, treating infrastructure
	// errors (the deletion broke the program) as "does not fail".
	fails := func(cand Case) *Violation {
		if budget <= 0 {
			return nil
		}
		budget--
		cv, _, err := Check(cand, opt)
		if err != nil {
			return nil
		}
		return cv
	}

	// Narrow to the single query named in the violation.
	if v.Query != "" && len(c.Queries) > 1 {
		cand := c
		cand.Queries = []string{v.Query}
		if cv := fails(cand); cv != nil {
			c, v = cand, cv
		}
	}

	for {
		improved := false

		// Pass 1: drop whole clauses.
		tab := term.NewTab()
		clauses, err := parser.ParseClauses(tab, c.Source)
		if err != nil {
			return c, v
		}
		for i := 0; i < len(clauses) && budget > 0; i++ {
			cand := c
			cand.Source = renderClauses(tab, clauses, i, -1)
			if cv := fails(cand); cv != nil {
				c, v = cand, cv
				improved = true
				break
			}
		}
		if improved {
			continue
		}

		// Pass 2: drop single body goals.
	goalLoop:
		for i := 0; i < len(clauses) && budget > 0; i++ {
			for j := 0; j < len(clauses[i].Body) && budget > 0; j++ {
				cand := c
				cand.Source = renderClauses(tab, clauses, i, j)
				if cv := fails(cand); cv != nil {
					c, v = cand, cv
					improved = true
					break goalLoop
				}
			}
		}
		if !improved || budget <= 0 {
			return c, v
		}
	}
}

// renderClauses re-renders the clause list, omitting clause dropClause
// entirely when dropGoal < 0, or only body goal dropGoal of that
// clause otherwise.
func renderClauses(tab *term.Tab, clauses []term.Clause, dropClause, dropGoal int) string {
	var b strings.Builder
	for i, cl := range clauses {
		if i == dropClause && dropGoal < 0 {
			continue
		}
		if i == dropClause {
			nc := term.Clause{Head: cl.Head}
			for j, g := range cl.Body {
				if j != dropGoal {
					nc.Body = append(nc.Body, g)
				}
			}
			cl = nc
		}
		b.WriteString(tab.WriteClause(cl))
		b.WriteString("\n")
	}
	return b.String()
}
