package fuzz

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// GenConfig tunes the random program generator. Every knob is bounded
// so that generated queries terminate by construction: recursion is
// structural on a ground (or finite) argument, and list/peano inputs
// have bounded length.
type GenConfig struct {
	// MinTemplates/MaxTemplates bound how many predicate templates are
	// instantiated per case (each contributes 1-5 clauses).
	MinTemplates int
	MaxTemplates int
	// MaxListLen bounds generated ground list lengths (and peano
	// numeral depth).
	MaxListLen int
	// MaxInt bounds integer literal magnitude.
	MaxInt int
	// MaxQueries bounds the query count per case.
	MaxQueries int
	// Glue, when set, lets the generator compose compatible template
	// instances into a chained predicate (deeper call graphs).
	Glue bool
	// Cuts, when set, lets templates include `!` in clause bodies.
	Cuts bool
}

// DefaultGenConfig is the configuration the property suite and the
// native fuzz harnesses use.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		MinTemplates: 2,
		MaxTemplates: 5,
		MaxListLen:   6,
		MaxInt:       20,
		MaxQueries:   4,
		Glue:         true,
		Cuts:         true,
	}
}

// Generate builds a deterministic random case from seed. Equal seeds
// and configs yield byte-identical cases.
func Generate(seed int64, cfg GenConfig) Case {
	if cfg.MinTemplates < 1 {
		cfg.MinTemplates = 1
	}
	if cfg.MaxTemplates < cfg.MinTemplates {
		cfg.MaxTemplates = cfg.MinTemplates
	}
	if cfg.MaxListLen < 1 {
		cfg.MaxListLen = 1
	}
	if cfg.MaxInt < 1 {
		cfg.MaxInt = 1
	}
	if cfg.MaxQueries < 1 {
		cfg.MaxQueries = 1
	}
	g := &gen{r: rand.New(rand.NewSource(seed)), cfg: cfg}
	n := cfg.MinTemplates + g.r.Intn(cfg.MaxTemplates-cfg.MinTemplates+1)
	order := g.r.Perm(len(templates))
	for i := 0; i < n; i++ {
		templates[order[i%len(templates)]](g, fmt.Sprintf("p%d", i))
	}
	if cfg.Glue {
		g.glue()
	}
	qs := g.queries
	if len(qs) > cfg.MaxQueries {
		idx := g.r.Perm(len(qs))[:cfg.MaxQueries]
		sort.Ints(idx)
		sel := make([]string, len(idx))
		for i, j := range idx {
			sel[i] = qs[j]
		}
		qs = sel
	}
	return Case{Seed: seed, Source: g.b.String(), Queries: qs}
}

// gen carries generator state: the PRNG, the accumulated source text
// and query pool, and the registry of instantiated predicates that the
// glue template can compose.
type gen struct {
	r       *rand.Rand
	cfg     GenConfig
	b       strings.Builder
	queries []string
	// il2il lists arity-2 predicates mapping an int list to an int
	// list; il2i lists arity-3 fold predicates p(IntList, 0, Int).
	il2il []string
	il2i  []string
}

func (g *gen) emit(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
}

func (g *gen) query(format string, args ...any) {
	g.queries = append(g.queries, fmt.Sprintf(format, args...))
}

func (g *gen) intLit() int {
	return g.r.Intn(2*g.cfg.MaxInt+1) - g.cfg.MaxInt
}

// atomPool is disjoint from every generated predicate name (those all
// start with "p" followed by a digit) so metamorphic renaming of
// predicates can never capture a data constant.
var atomPool = []string{"a", "b", "c", "d", "e", "foo", "bar"}

func (g *gen) atomLit() string {
	return atomPool[g.r.Intn(len(atomPool))]
}

func (g *gen) intList() string {
	n := g.r.Intn(g.cfg.MaxListLen + 1)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = fmt.Sprint(g.intLit())
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func (g *gen) atomList() string {
	n := g.r.Intn(g.cfg.MaxListLen + 1)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = g.atomLit()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// elemList returns a ground list of a coin-flipped element type.
func (g *gen) elemList() string {
	if g.r.Intn(2) == 0 {
		return g.intList()
	}
	return g.atomList()
}

func (g *gen) peano(n int) string {
	s := "0"
	for i := 0; i < n; i++ {
		s = "s(" + s + ")"
	}
	return s
}

// groundTerm returns a random ground term of bounded depth, for
// templates exercising functor/3, arg/3 and the standard order.
func (g *gen) groundTerm(depth int) string {
	switch k := g.r.Intn(4); {
	case k == 0:
		return fmt.Sprint(g.intLit())
	case k == 1 || depth <= 0:
		return g.atomLit()
	default:
		fn := []string{"f", "g", "h"}[g.r.Intn(3)]
		n := 1 + g.r.Intn(2)
		args := make([]string, n)
		for i := range args {
			args[i] = g.groundTerm(depth - 1)
		}
		return fn + "(" + strings.Join(args, ", ") + ")"
	}
}

// cut returns "!, " or "" depending on config and a coin flip.
func (g *gen) cut() string {
	if g.cfg.Cuts && g.r.Intn(2) == 0 {
		return "!, "
	}
	return ""
}

// templates is the pool of predicate generators. Each receives a
// unique prefix ("p0", "p1", ...) for its predicate names; data
// functors come from a disjoint pool (f, g, h, s, t, leaf, ...).
var templates = []func(*gen, string){
	tFacts, tMapArith, tMapWrap, tFilter, tFoldSum, tAppend,
	tReverse, tMember, tAlias, tPeano, tClassify, tFunctorArg,
	tCompare, tTree,
}

// tFacts: a small extensional relation; queries enumerate it with
// open and half-bound modes.
func tFacts(g *gen, p string) {
	n := 2 + g.r.Intn(4)
	for i := 0; i < n; i++ {
		g.emit("%sfact(%s, %d).\n", p, g.atomLit(), g.intLit())
	}
	g.query("%sfact(A, B)", p)
	g.query("%sfact(%s, N)", p, g.atomLit())
}

// tMapArith: structural map with arithmetic in the body.
func tMapArith(g *gen, p string) {
	a, b := 1+g.r.Intn(3), g.intLit()
	g.emit("%sscale([], []).\n", p)
	g.emit("%sscale([X|T], [Y|R]) :- Y is X * %d + %d, %sscale(T, R).\n", p, a, b, p)
	g.il2il = append(g.il2il, p+"scale")
	g.query("%sscale(%s, R)", p, g.intList())
}

// tMapWrap: map that builds structure around each element; sometimes
// queried backwards (terminating: recursion consumes the second arg).
func tMapWrap(g *gen, p string) {
	fn := []string{"f", "g", "h"}[g.r.Intn(3)]
	c := g.atomLit()
	g.emit("%swrap([], []).\n", p)
	g.emit("%swrap([X|T], [%s(X, %s)|R]) :- %swrap(T, R).\n", p, fn, c, p)
	g.query("%swrap(%s, R)", p, g.intList())
	if g.r.Intn(2) == 0 {
		g.query("%swrap(L, [%s(%d, %s), %s(%d, %s)])",
			p, fn, g.intLit(), c, fn, g.intLit(), c)
	}
}

// tFilter: guarded list filter in one of four variants — with or
// without cut, with or without the complementary guard clause.
func tFilter(g *gen, p string) {
	c := g.intLit()
	g.emit("%skeep([], []).\n", p)
	switch v := g.r.Intn(4); v {
	case 0: // complementary guards, no cut
		g.emit("%skeep([X|T], [X|R]) :- X > %d, %skeep(T, R).\n", p, c, p)
		g.emit("%skeep([X|T], R) :- X =< %d, %skeep(T, R).\n", p, c, p)
	case 1: // cut plus complementary guard (deterministic either way)
		g.emit("%skeep([X|T], [X|R]) :- X > %d, !, %skeep(T, R).\n", p, c, p)
		g.emit("%skeep([X|T], R) :- X =< %d, %skeep(T, R).\n", p, c, p)
	case 2: // classic cut filter
		g.emit("%skeep([X|T], [X|R]) :- X > %d, !, %skeep(T, R).\n", p, c, p)
		g.emit("%skeep([Y|T], R) :- %skeep(T, R).\n", p, p)
	default: // nondeterministic sublists
		g.emit("%skeep([X|T], [X|R]) :- X > %d, %skeep(T, R).\n", p, c, p)
		g.emit("%skeep([Y|T], R) :- %skeep(T, R).\n", p, p)
	}
	g.il2il = append(g.il2il, p+"keep")
	g.query("%skeep(%s, R)", p, g.intList())
}

// tFoldSum: accumulator fold; the canonical int-list-to-int shape.
func tFoldSum(g *gen, p string) {
	g.emit("%ssum([], A, A).\n", p)
	g.emit("%ssum([X|T], A, S) :- A1 is A + X, %ssum(T, A1, S).\n", p, p)
	g.il2i = append(g.il2i, p+"sum")
	g.query("%ssum(%s, 0, S)", p, g.intList())
}

// tAppend: queried forwards and backwards (the backward mode is the
// classic nondeterministic split and terminates structurally).
func tAppend(g *gen, p string) {
	g.emit("%sapp([], L, L).\n", p)
	g.emit("%sapp([X|T], L, [X|R]) :- %sapp(T, L, R).\n", p, p)
	g.query("%sapp(%s, %s, R)", p, g.elemList(), g.elemList())
	g.query("%sapp(A, B, %s)", p, g.elemList())
}

// tReverse: accumulator reverse.
func tReverse(g *gen, p string) {
	g.emit("%srev([], A, A).\n", p)
	g.emit("%srev([X|T], A, R) :- %srev(T, [X|A], R).\n", p, p)
	g.query("%srev(%s, [], R)", p, g.elemList())
}

// tMember: enumeration over a ground list.
func tMember(g *gen, p string) {
	g.emit("%smem(X, [X|T]).\n", p)
	g.emit("%smem(X, [Y|T]) :- %smem(X, T).\n", p, p)
	g.query("%smem(E, %s)", p, g.elemList())
	g.query("%smem(%d, %s)", p, g.intLit(), g.intList())
}

// tAlias: non-recursive structure building with repeated variables —
// the aliasing corner of the domain — plus a partial-list projection.
func tAlias(g *gen, p string) {
	g.emit("%spair(X, Y, f(X, X, Y)).\n", p)
	g.emit("%sfront([X|T], X).\n", p)
	g.query("%spair(U, V, P)", p)
	g.query("%spair(%d, %s, P)", p, g.intLit(), g.atomLit())
	g.query("%sfront([%d|T], F)", p, g.intLit())
}

// tPeano: successor arithmetic, queried forwards and backwards.
func tPeano(g *gen, p string) {
	g.emit("%sadd(0, Y, Y).\n", p)
	g.emit("%sadd(s(X), Y, s(Z)) :- %sadd(X, Y, Z).\n", p, p)
	k := 1 + g.r.Intn(g.cfg.MaxListLen)
	g.query("%sadd(%s, %s, Z)", p, g.peano(k), g.peano(g.r.Intn(3)))
	g.query("%sadd(A, B, %s)", p, g.peano(k))
}

// tClassify: type-test guards with optional cuts.
func tClassify(g *gen, p string) {
	cut := ""
	if g.cfg.Cuts && g.r.Intn(2) == 0 {
		cut = ", !"
	}
	g.emit("%scls(X, int) :- integer(X)%s.\n", p, cut)
	g.emit("%scls(X, atm) :- atom(X)%s.\n", p, cut)
	g.emit("%scls(X, oth) :- nonvar(X).\n", p)
	g.query("%scls(%d, C)", p, g.intLit())
	g.query("%scls(%s, C)", p, g.atomLit())
	g.query("%scls(%s, C)", p, g.groundTerm(2))
}

// tFunctorArg: term inspection via functor/3 and arg/3.
func tFunctorArg(g *gen, p string) {
	g.emit("%sfa(T, F, A, X) :- functor(T, F, A), arg(1, T, X).\n", p)
	fn := []string{"f", "g", "h"}[g.r.Intn(3)]
	g.query("%sfa(%s(%d, %s), F, A, X)", p, fn, g.intLit(), g.atomLit())
}

// tCompare: standard-order minimum with complementary guards.
func tCompare(g *gen, p string) {
	g.emit("%smin(X, Y, X) :- X @< Y%s.\n", p, map[bool]string{true: ", !", false: ""}[g.cfg.Cuts && g.r.Intn(2) == 0])
	g.emit("%smin(X, Y, Y) :- Y @=< X.\n", p)
	g.query("%smin(%s, %s, M)", p, g.groundTerm(1), g.groundTerm(1))
	g.query("%smin(%d, %s, M)", p, g.intLit(), g.atomLit())
}

// tTree: binary search tree insertion driven by a ground list — two
// mutually recursive predicates with structure building and guards.
func tTree(g *gen, p string) {
	cut := ""
	if g.cfg.Cuts && g.r.Intn(2) == 0 {
		cut = "!, "
	}
	g.emit("%smk([], leaf).\n", p)
	g.emit("%smk([X|T], R) :- %smk(T, R0), %sins(X, R0, R).\n", p, p, p)
	g.emit("%sins(X, leaf, t(leaf, X, leaf)).\n", p)
	g.emit("%sins(X, t(L, Y, R), t(L2, Y, R)) :- X =< Y, %s%sins(X, L, L2).\n", p, cut, p)
	g.emit("%sins(X, t(L, Y, R), t(L, Y, R2)) :- X > Y, %sins(X, R, R2).\n", p, p)
	g.query("%smk(%s, T)", p, g.intList())
}

// glue chains registered int-list transformers (and optionally a fold)
// into one composite predicate, deepening the analyzed call graph.
func (g *gen) glue() {
	if len(g.il2il) < 2 {
		return
	}
	chain := g.r.Perm(len(g.il2il))
	if len(chain) > 3 {
		chain = chain[:3]
	}
	var body []string
	in := "L"
	for i, ci := range chain {
		out := fmt.Sprintf("M%d", i)
		body = append(body, fmt.Sprintf("%s(%s, %s)", g.il2il[ci], in, out))
		in = out
	}
	if len(g.il2i) > 0 && g.r.Intn(2) == 0 {
		body = append(body, fmt.Sprintf("%s(%s, 0, Out)", g.il2i[g.r.Intn(len(g.il2i))], in))
	} else {
		body = append(body, fmt.Sprintf("Out = %s", in))
	}
	g.emit("pglue(L, Out) :- %s.\n", strings.Join(body, ", "))
	g.query("pglue(%s, Out)", g.intList())
}
