package fuzz

import (
	"testing"

	"awam/internal/bench"
)

func TestBenchSourcesFitSourceFuzzCap(t *testing.T) {
	for _, p := range bench.AllPrograms() {
		if len(p.Source) > maxFuzzSource {
			t.Errorf("%s source is %d bytes, over the %d source-fuzz cap", p.Name, len(p.Source), maxFuzzSource)
		}
	}
}
