package fuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"awam/internal/bench"
)

// FuzzSoundness drives the differential oracle from a generator seed.
// Every input is a valid, terminating program by construction, so any
// oracle error here is a generator bug and any violation a real
// soundness or determinism defect.
func FuzzSoundness(f *testing.F) {
	for i := int64(0); i < 16; i++ {
		f.Add(baseSeed + i)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c := Generate(seed, DefaultGenConfig())
		opt := DefaultOptions()
		v, _, err := Check(c, opt)
		if err != nil {
			t.Fatalf("generator produced an invalid program (seed %d): %v\nsource:\n%s", seed, err, c.Source)
		}
		if v != nil {
			reportViolation(t, c, v, opt)
		}
		if v, err := CheckMetamorphic(c, opt); err == nil && v != nil {
			reportViolation(t, c, v, opt)
		}
	})
}

// maxFuzzSource caps program size for the raw-source harness; all
// bench seed programs fit under it (pinned by a test).
const maxFuzzSource = 1 << 12

// FuzzSoundnessSource feeds raw (source, query) pairs to the oracle —
// the corpus starts from the paper's Table 1 programs and mutates from
// there. Unparsable or uncompilable inputs are skipped; inputs that
// parse must satisfy the soundness oracle. With FUZZ_BACKWARD set, each
// input additionally runs the forward/backward consistency oracle
// (CheckBackward) — opt-in because it analyzes forward once per visited
// predicate, a multiple of the base oracle's cost per exec.
func FuzzSoundnessSource(f *testing.F) {
	checkBackward := os.Getenv("FUZZ_BACKWARD") != ""
	for _, p := range bench.AllPrograms() {
		if p.Query != "" {
			f.Add(p.Source, p.Query)
		}
	}
	f.Fuzz(func(t *testing.T, src, query string) {
		// The caps bound single-exec latency: the Go fuzzer has no
		// per-input timeout, so a 64 KB program analyzed under four
		// strategies would stall a worker for seconds per exec.
		if len(src) > maxFuzzSource || len(query) > 1<<10 {
			t.Skip("oversized input")
		}
		c := Case{Source: src, Queries: []string{query}}
		opt := DefaultOptions()
		opt.MaxSolutions = 4
		opt.ConcreteSteps = 50_000
		opt.AbstractSteps = 200_000
		// StrictCross stays on (the DefaultOptions value): with the
		// widening restructured into an upper closure, byte-identical
		// results across schedules are a theorem for arbitrary
		// programs, not a property of the curated corpus.
		v, _, err := Check(c, opt)
		if err != nil {
			t.Skip("input does not parse or compile")
		}
		if v != nil {
			reportViolation(t, c, v, opt)
		}
		if checkBackward {
			if bv, _, err := CheckBackward(c, opt); err == nil && bv != nil {
				reportViolation(t, c, bv, opt)
			}
		}
	})
}

// TestWriteSeedCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/ when FUZZ_WRITE_CORPUS is set; otherwise it verifies
// the corpus directories are present (CI runs the fuzz smoke against
// them).
func TestWriteSeedCorpus(t *testing.T) {
	writeCorpus := os.Getenv("FUZZ_WRITE_CORPUS") != ""
	soundDir := filepath.Join("testdata", "fuzz", "FuzzSoundness")
	srcDir := filepath.Join("testdata", "fuzz", "FuzzSoundnessSource")
	if !writeCorpus {
		for _, dir := range []string{soundDir, srcDir} {
			ents, err := os.ReadDir(dir)
			if err != nil || len(ents) == 0 {
				t.Fatalf("seed corpus missing under %s (run with FUZZ_WRITE_CORPUS=1 to regenerate): %v", dir, err)
			}
		}
		return
	}
	for _, dir := range []string{soundDir, srcDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	// Generator seeds: the first 16 property-suite seeds.
	for i := int64(0); i < 16; i++ {
		body := fmt.Sprintf("go test fuzz v1\nint64(%d)\n", baseSeed+i)
		name := filepath.Join(soundDir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Table 1 (and extended) benchmark programs with their queries.
	for _, p := range bench.AllPrograms() {
		if p.Query == "" {
			continue
		}
		body := fmt.Sprintf("go test fuzz v1\nstring(%s)\nstring(%s)\n",
			strconv.Quote(p.Source), strconv.Quote(p.Query))
		name := filepath.Join(srcDir, "bench-"+p.Name)
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
