package fuzz

import (
	"context"
	"errors"
	"fmt"

	"awam/internal/backward"
	"awam/internal/compiler"
	"awam/internal/core"
	"awam/internal/parser"
	"awam/internal/term"
)

// CheckBackward runs the forward/backward consistency oracle on one
// case: infer the weakest demands for the program's default goal set
// (main/0 when defined, else every source predicate), then re-analyze
// forward from each non-bottom demand and require a non-bottom success
// pattern. The backward gfp promises exactly that its answer cannot be
// refuted by the forward semantics, so a refutation is a real defect in
// one of the two transfer functions — reported as a
// "backward-consistency" violation. Bottom demands are vacuous (the
// engine already concluded no call is safe) and undefined
// pseudo-components have no forward summary to consult; both are
// skipped. Step-budget exhaustion on either direction skips the case
// rather than failing it, as in Check.
func CheckBackward(c Case, opt Options) (*Violation, Stats, error) {
	var st Stats
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, c.Source)
	if err != nil {
		return nil, st, fmt.Errorf("fuzz: parse: %w", err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		return nil, st, fmt.Errorf("fuzz: compile: %w", err)
	}
	bres, err := backward.NewEngine(nil).Analyze(context.Background(), mod, prog,
		backward.Config{Depth: opt.Depth, MaxSteps: opt.AbstractSteps})
	if errors.Is(err, core.ErrStepLimit) {
		st.Skipped++
		return nil, st, nil
	}
	if err != nil {
		return nil, st, fmt.Errorf("fuzz: backward: %w", err)
	}

	cfg := core.DefaultConfig()
	cfg.Depth = opt.Depth
	cfg.MaxSteps = opt.AbstractSteps
	cfg.Strategy = core.StrategyWorklist
	for _, fn := range bres.Predicates() {
		d, _ := bres.DemandFor(fn)
		if d == nil || len(prog.Preds[fn]) == 0 {
			st.Skipped++
			continue
		}
		res, err := core.NewWith(mod, cfg).Analyze(d)
		if errors.Is(err, core.ErrStepLimit) {
			st.Skipped++
			continue
		}
		if err != nil {
			return nil, st, fmt.Errorf("fuzz: forward from demand %s: %w", d.String(tab), err)
		}
		st.Queries++
		if res.SuccessFor(fn) == nil {
			return &Violation{
				Kind:   "backward-consistency",
				Seed:   c.Seed,
				Source: c.Source,
				Query:  tab.FuncString(fn),
				Detail: fmt.Sprintf(
					"backward analysis claims %s is the weakest safe demand but the forward analysis refutes success from it",
					d.String(tab)),
				Clauses: len(prog.Clauses),
			}, st, nil
		}
	}
	return nil, st, nil
}
