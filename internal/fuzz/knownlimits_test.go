package fuzz

import (
	"strings"
	"testing"

	"awam/internal/compiler"
	"awam/internal/core"
	"awam/internal/domain"
	"awam/internal/parser"
	"awam/internal/term"
)

// nonConfluentSrc is a counterexample FuzzSoundnessSource discovered
// (a mutated qsort whose partition lost its body and whose first
// clause calls qsort on an unbound L1): the fixpoint reached depends
// on iteration order. Different schedules of the parallel engine — and
// the worklist engine — land on different, individually sound,
// post-fixpoints, because lub/widen interleaving is not confluent for
// this program. The byte-identity contract between worklist and
// parallel-N therefore only holds for schedule-confluent programs;
// making the domain operations confluent (so the least fixpoint is
// schedule-independent) is tracked as an open roadmap item.
const nonConfluentSrc = `qsort([X|L], R, R0) :- partition(L, X, b1, L2), qsort(L2, R1, R0), qsort(L1, R, [X|R1]).
qsort([], R, R).
partition([X|L], Y, L1, [X|L2]).
partition([], _G0, [], []).
`

const nonConfluentQuery = "qsort([3,1,2], R, [])"

// TestKnownNonConfluence pins what IS guaranteed on the counterexample:
// every strategy, under every schedule, must still produce a sound
// summary — the oracle in non-strict mode verifies exactly that. The
// test also records (without failing) whether the byte-identity gap is
// still present, so whoever fixes confluence notices and can promote
// StrictCross to the source-fuzz harness.
func TestKnownNonConfluence(t *testing.T) {
	c := Case{Source: nonConfluentSrc, Queries: []string{nonConfluentQuery}}
	opt := DefaultOptions()
	opt.StrictCross = false
	// The mutilated partition makes the concrete search explode; a few
	// thousand steps observe plenty of answers.
	opt.ConcreteSteps = 20_000
	opt.MaxSolutions = 4
	var diverged int
	for i := 0; i < 20; i++ {
		v, st, err := Check(c, opt)
		if err != nil {
			t.Fatal(err)
		}
		if v != nil {
			t.Fatalf("non-confluent program must still be sound under every strategy: %+v", v)
		}
		diverged += st.Diverged
	}
	if diverged == 0 {
		t.Log("no worklist/parallel divergence observed in 20 runs; if lub/widen became confluent, consider enabling StrictCross in FuzzSoundnessSource")
	} else {
		t.Logf("observed %d worklist/parallel divergences across 20 runs (known non-confluence)", diverged)
	}
}

// TestWorklistSelfDeterminism pins the sequential engines' contract on
// the same adversarial program: repeated worklist (and naive) runs
// must be byte-identical — only across-schedule comparison is exempt.
func TestWorklistSelfDeterminism(t *testing.T) {
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, nonConfluentSrc)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		t.Fatal(err)
	}
	goals, err := parser.ParseGoal(tab, nonConfluentQuery)
	if err != nil {
		t.Fatal(err)
	}
	goal := goals[0]
	fn, _ := term.Indicator(goal)
	shares := make(map[*term.VarRef]int)
	argAbs := make([]*domain.Term, len(goal.Args))
	for i, a := range goal.Args {
		argAbs[i] = domain.AbstractConcrete(tab, a, shares)
	}
	cp := domain.WidenPattern(tab, domain.NewPattern(fn, argAbs), 4)
	for _, strat := range []core.Strategy{core.StrategyWorklist, core.StrategyNaive} {
		var first string
		for i := 0; i < 10; i++ {
			cfg := core.DefaultConfig()
			cfg.Strategy = strat
			res, err := core.NewWith(mod, cfg).Analyze(cp)
			if err != nil {
				t.Fatal(err)
			}
			m := res.Marshal()
			if i == 0 {
				first = m
			} else if m != first {
				t.Fatalf("strategy %v nondeterministic on run %d", strat, i)
			}
		}
		if !strings.Contains(first, "qsort") {
			t.Fatal("marshal output missing the entry predicate")
		}
	}
}
