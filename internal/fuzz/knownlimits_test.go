package fuzz

import (
	"strings"
	"testing"

	"awam/internal/compiler"
	"awam/internal/core"
	"awam/internal/domain"
	"awam/internal/parser"
	"awam/internal/term"
)

// confluenceRegressionSrc is the counterexample FuzzSoundnessSource
// discovered before the widening was restructured into an upper
// closure (a mutated qsort whose partition lost its body and whose
// first clause calls qsort on an unbound L1). Under the old domain the
// fixpoint reached depended on iteration order: whether a deep cons
// chain was widened to list(e) — silently admitting [] and changing
// base-clause reachability downstream — depended on the schedule's
// accumulated chain depth, so worklist, naive and parallel-N landed on
// different, individually sound, post-fixpoints (typically 3-6
// byte-level divergences in 20 parallel runs). The uniform-list
// closure removed the nil injection, and this file pins the program as
// a byte-identity regression test.
const confluenceRegressionSrc = `qsort([X|L], R, R0) :- partition(L, X, b1, L2), qsort(L2, R1, R0), qsort(L1, R, [X|R1]).
qsort([], R, R).
partition([X|L], Y, L1, [X|L2]).
partition([], _G0, [], []).
`

const confluenceRegressionQuery = "qsort([3,1,2], R, [])"

// analyzeRegression runs one strategy on the pinned program and
// returns the marshaled table.
func analyzeRegression(t *testing.T, strat core.Strategy, par int) string {
	t.Helper()
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, confluenceRegressionSrc)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		t.Fatal(err)
	}
	goals, err := parser.ParseGoal(tab, confluenceRegressionQuery)
	if err != nil {
		t.Fatal(err)
	}
	goal := goals[0]
	fn, _ := term.Indicator(goal)
	shares := make(map[*term.VarRef]int)
	argAbs := make([]*domain.Term, len(goal.Args))
	for i, a := range goal.Args {
		argAbs[i] = domain.AbstractConcrete(tab, a, shares)
	}
	cp := domain.WidenPattern(tab, domain.NewPattern(fn, argAbs), 4)
	cfg := core.DefaultConfig()
	cfg.Strategy = strat
	cfg.Parallelism = par
	res, err := core.NewWith(mod, cfg).Analyze(cp)
	if err != nil {
		t.Fatal(err)
	}
	return res.Marshal()
}

// TestConfluenceRegression: on the historical counterexample, every
// strategy under every schedule must now produce the byte-identical
// table. Parallel legs are repeated because a single run exercises
// only one schedule; 20 rounds of parallel-1/2/4 was enough to show
// several divergent schedules under the old domain.
func TestConfluenceRegression(t *testing.T) {
	want := analyzeRegression(t, core.StrategyWorklist, 0)
	if !strings.Contains(want, "qsort") {
		t.Fatal("marshal output missing the entry predicate")
	}
	if got := analyzeRegression(t, core.StrategyNaive, 0); got != want {
		t.Fatalf("naive diverges from worklist:\nworklist:\n%s\nnaive:\n%s", want, got)
	}
	for round := 0; round < 20; round++ {
		for _, par := range []int{1, 2, 4} {
			if got := analyzeRegression(t, core.StrategyParallel, par); got != want {
				t.Fatalf("parallel-%d diverges from worklist on round %d:\nworklist:\n%s\nparallel:\n%s",
					par, round, want, got)
			}
		}
	}
	// The strict oracle must agree: full cross-strategy byte-identity
	// plus soundness of the shared result against concrete answers.
	c := Case{Source: confluenceRegressionSrc, Queries: []string{confluenceRegressionQuery}}
	opt := DefaultOptions()
	// The mutilated partition makes the concrete search explode; a few
	// thousand steps observe plenty of answers.
	opt.ConcreteSteps = 20_000
	opt.MaxSolutions = 4
	v, _, err := Check(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("strict oracle violation on pinned program: %+v", v)
	}
}

// TestWorklistSelfDeterminism pins the sequential engines' contract on
// the same program: repeated worklist (and naive) runs must be
// byte-identical run to run.
func TestWorklistSelfDeterminism(t *testing.T) {
	for _, strat := range []core.Strategy{core.StrategyWorklist, core.StrategyNaive} {
		var first string
		for i := 0; i < 10; i++ {
			m := analyzeRegression(t, strat, 0)
			if i == 0 {
				first = m
			} else if m != first {
				t.Fatalf("strategy %v nondeterministic on run %d", strat, i)
			}
		}
	}
}
