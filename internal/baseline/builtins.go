package baseline

import (
	"fmt"

	"awam/internal/term"
	"awam/internal/wam"
)

// builtin gives inline builtins the same abstract semantics as the core
// analyzer (see core/builtins.go for the soundness argument).
func (a *Analyzer) builtin(id wam.BuiltinID, g *term.Term, env map[*term.VarRef]*node) bool {
	arg := func(i int) *node { return instantiate(a.tab, g.Args[i], env) }
	switch id {
	case wam.BITrue, wam.BIWrite, wam.BINl, wam.BIHalt:
		return true
	case wam.BIFail:
		return false
	case wam.BIIs:
		if !a.unify(arg(0), mkLeaf(kIntCls)) {
			return false
		}
		return a.unify(arg(1), mkLeaf(kGround))
	case wam.BILt, wam.BILe, wam.BIGt, wam.BIGe, wam.BIArithEq, wam.BIArithNe:
		return a.unify(arg(0), mkLeaf(kGround)) && a.unify(arg(1), mkLeaf(kGround))
	case wam.BIUnify, wam.BIEq:
		return a.unify(arg(0), arg(1))
	case wam.BINotUnify, wam.BINotEq:
		return true
	case wam.BIVar:
		switch a.deref(arg(0)).kind {
		case kVar, kAny:
			return true
		}
		return false
	case wam.BINonvar:
		n := a.deref(arg(0))
		switch n.kind {
		case kVar:
			return false
		case kAny:
			a.bind(n, mkLeaf(kNV))
			return true
		}
		return true
	case wam.BIAtom:
		return a.narrowTo(arg(0), kAtomCls)
	case wam.BIInteger:
		return a.narrowTo(arg(0), kIntCls)
	case wam.BIAtomic:
		return a.narrowTo(arg(0), kConstCls)
	case wam.BIFunctor:
		if !a.unify(arg(0), mkLeaf(kNV)) {
			return false
		}
		if !a.unify(arg(1), mkLeaf(kConstCls)) {
			return false
		}
		return a.unify(arg(2), mkLeaf(kIntCls))
	case wam.BIArg:
		if !a.narrowTo(arg(0), kIntCls) {
			return false
		}
		if !a.unify(arg(1), mkLeaf(kNV)) {
			return false
		}
		n := a.deref(arg(2))
		if n.kind == kVar {
			a.bind(n, mkLeaf(kAny))
		}
		return true
	case wam.BICompare:
		return a.unify(arg(0), mkLeaf(kAtomCls))
	case wam.BITermLt, wam.BITermLe, wam.BITermGt, wam.BITermGe:
		return true
	case wam.BILength:
		if !a.unify(arg(0), mkListNode(mkLeaf(kAny))) {
			return false
		}
		return a.unify(arg(1), mkLeaf(kIntCls))
	case wam.BIAssert, wam.BIRetract:
		return true // not modeled (see core/builtins.go)
	default:
		a.fail(fmt.Errorf("baseline: builtin %s has no abstract semantics", wam.BuiltinName(id)))
		return false
	}
}

// narrowTo mirrors core's type-test semantics.
func (a *Analyzer) narrowTo(x *node, target kind) bool {
	n := a.deref(x)
	switch n.kind {
	case kVar:
		return false
	case kConAtom:
		return target != kIntCls
	case kConInt:
		return target == kIntCls || target == kConstCls
	case kStruct:
		return false
	case kAny, kNV, kGround, kConstCls:
		a.bind(n, mkLeaf(target))
		return true
	case kAtomCls:
		return target == kAtomCls || target == kConstCls
	case kIntCls:
		return target == kIntCls || target == kConstCls
	case kListT:
		if target == kAtomCls || target == kConstCls {
			a.bind(n, mkAtom(a.tab.Nil))
			return true
		}
		return false
	}
	return false
}
