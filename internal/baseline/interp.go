package baseline

import (
	"errors"
	"fmt"

	"awam/internal/core"
	"awam/internal/domain"
	"awam/internal/term"
	"awam/internal/wam"
)

// Config holds the baseline analyzer's options (the same analysis knobs
// as internal/core, minus indexing — meta-interpreters don't index the
// object program).
type Config struct {
	// Depth is the term-depth restriction (the paper's k = 4).
	Depth int
	// MaxSteps bounds abstract operations.
	MaxSteps int64
}

// DefaultConfig matches the core analyzer's defaults.
func DefaultConfig() Config { return Config{Depth: 4, MaxSteps: 2_000_000_000} }

// ErrStepLimit reports an exceeded step budget.
var ErrStepLimit = errors.New("baseline: abstract step limit exceeded")

// finTable holds the state of the post-convergence presentation replay
// (mirroring core/finalize.go): a single depth-first pass from the entry
// pattern that rebuilds the table in demand order, consulting the
// converged table as an oracle for cyclic calls. The replay drops
// schedule-transient entries — calling patterns that were consulted
// while summaries were still growing but are unreachable at the
// fixpoint — so the presented table matches the core analyzer's.
type finTable struct {
	oracle map[string]*domain.Pattern
	index  map[string]*tblEntry
	order  []*tblEntry
}

// tblEntry is one record of the linear extension table.
type tblEntry struct {
	key          string
	cp           *domain.Pattern
	succ         *domain.Pattern
	exploredIter int
	lookups      int
	updates      int
}

// Analyzer is the meta-interpreting abstract interpreter.
type Analyzer struct {
	tab  *term.Tab
	prog *term.Program
	cfg  Config

	builtins map[term.Functor]wam.BuiltinID
	subst    []binding   // association-list substitution (Prolog style)
	table    []*tblEntry // the paper's linear list
	fin      *finTable   // non-nil during the presentation replay

	// Steps counts abstract operations (unification visits and goal
	// reductions); wall-clock time is what Table 1 reports.
	Steps      int64
	Iterations int

	iter    int
	changed bool
	err     error
}

// New returns a baseline analyzer for the program.
func New(tab *term.Tab, prog *term.Program) *Analyzer {
	return NewWith(tab, prog, DefaultConfig())
}

// NewWith returns a baseline analyzer with explicit options.
func NewWith(tab *term.Tab, prog *term.Program, cfg Config) *Analyzer {
	if cfg.Depth <= 0 {
		cfg.Depth = 4
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 2_000_000_000
	}
	return &Analyzer{tab: tab, prog: prog, cfg: cfg, builtins: wam.Builtins(tab)}
}

// AnalyzeMain analyzes from main/0.
func (a *Analyzer) AnalyzeMain() (*core.Result, error) {
	return a.Analyze(domain.NewPattern(a.tab.Func("main", 0), nil))
}

// Analyze runs the extension-table fixpoint from the entry pattern and
// returns the table in the same Result shape as the core analyzer, so
// results can be compared directly.
func (a *Analyzer) Analyze(entry *domain.Pattern) (*core.Result, error) {
	a.table = nil
	a.Steps = 0
	a.err = nil
	// The table only ever stores widened canonical patterns (the same
	// invariant as core: widening is an upper closure applied at ingest).
	entry = domain.WidenPattern(a.tab, entry.Canonical(), a.cfg.Depth)
	const maxIterations = 1000
	for a.Iterations = 1; a.Iterations <= maxIterations; a.Iterations++ {
		a.iter = a.Iterations
		a.changed = false
		a.subst = a.subst[:0]
		a.solve(entry.Canonical())
		if a.err != nil {
			return nil, a.err
		}
		// Re-explore entries no longer reached from the entry point (see
		// core/analyzer.go: summaries that stop being called as keys move
		// must still converge, or the table retains stale values).
		for i := 0; i < len(a.table); i++ {
			if a.table[i].exploredIter != a.iter {
				a.solve(a.table[i].cp)
				if a.err != nil {
					return nil, a.err
				}
			}
		}
		if !a.changed {
			break
		}
	}
	if a.Iterations > maxIterations {
		entries := make([]*core.Entry, len(a.table))
		for i, e := range a.table {
			entries[i] = &core.Entry{
				CP: e.cp, Succ: e.succ,
				Lookups: e.lookups, Updates: e.updates,
			}
		}
		return &core.Result{
			Tab:        a.tab,
			Entries:    entries,
			Steps:      a.Steps,
			Iterations: a.Iterations,
			TableSize:  len(a.table),
		}, fmt.Errorf("baseline: fixpoint did not converge")
	}
	// Presentation replay: rebuild the table in demand order from the
	// converged summaries, dropping transients (see finTable). The replay
	// runs off the same step counter but never changes summaries.
	a.fin = &finTable{
		oracle: make(map[string]*domain.Pattern, len(a.table)),
		index:  make(map[string]*tblEntry, len(a.table)),
	}
	for _, e := range a.table {
		a.fin.oracle[e.key] = e.succ
	}
	a.subst = a.subst[:0]
	a.solve(entry.Canonical())
	fin := a.fin
	a.fin = nil
	if a.err != nil {
		return nil, a.err
	}
	entries := make([]*core.Entry, len(fin.order))
	for i, e := range fin.order {
		entries[i] = &core.Entry{
			CP: e.cp, Succ: e.succ,
			Lookups: e.lookups, Updates: e.updates,
		}
	}
	return &core.Result{
		Tab:        a.tab,
		Entries:    entries,
		Steps:      a.Steps,
		Iterations: a.Iterations,
		TableSize:  len(entries),
	}, nil
}

// lookup scans the linear table.
func (a *Analyzer) lookup(key string) *tblEntry {
	for _, e := range a.table {
		a.Steps++
		if e.key == key {
			return e
		}
	}
	return nil
}

// solve is the extension-table call: consult the memo or explore the
// predicate's clauses.
func (a *Analyzer) solve(cp *domain.Pattern) *domain.Pattern {
	if a.err != nil {
		return nil
	}
	if a.Steps >= a.cfg.MaxSteps {
		a.fail(ErrStepLimit)
		return nil
	}
	if a.fin != nil {
		return a.solveFin(cp)
	}
	key := cp.Key()
	e := a.lookup(key)
	if e != nil {
		if e.exploredIter == a.iter {
			e.lookups++
			return e.succ
		}
	} else {
		e = &tblEntry{key: key, cp: cp}
		a.table = append(a.table, e)
	}
	e.exploredIter = a.iter

	clauses, defined := a.prog.Preds[cp.Fn]
	if !defined {
		return e.succ
	}
	for _, ci := range clauses {
		cl := a.prog.Clauses[ci]
		mark := a.mark()
		args := a.materialize(cp)
		if a.tryClause(cl, args) {
			sp := a.abstract(cp.Fn, args)
			next := domain.WidenPattern(a.tab, domain.LubPattern(a.tab, e.succ, sp), a.cfg.Depth)
			if !next.Equal(e.succ) {
				e.succ = next
				e.updates++
				a.changed = true
			}
		}
		a.undo(mark)
	}
	return e.succ
}

// solveFin is solve's replay twin: each calling pattern is explored at
// most once, with its summary seeded from the converged oracle so
// cyclic consultations read the fixpoint value. Because the table is
// converged, re-deriving the summary from the clause bodies cannot
// change it; the pass only records which entries are demanded.
func (a *Analyzer) solveFin(cp *domain.Pattern) *domain.Pattern {
	if a.err != nil {
		return nil
	}
	if a.Steps >= a.cfg.MaxSteps {
		a.fail(ErrStepLimit)
		return nil
	}
	key := cp.Key()
	if e, ok := a.fin.index[key]; ok {
		e.lookups++
		return e.succ
	}
	e := &tblEntry{key: key, cp: cp, succ: a.fin.oracle[key]}
	a.fin.index[key] = e
	a.fin.order = append(a.fin.order, e)

	clauses, defined := a.prog.Preds[cp.Fn]
	if !defined {
		return e.succ
	}
	var acc *domain.Pattern
	for _, ci := range clauses {
		cl := a.prog.Clauses[ci]
		mark := a.mark()
		args := a.materialize(cp)
		if a.tryClause(cl, args) {
			sp := a.abstract(cp.Fn, args)
			acc = domain.WidenPattern(a.tab, domain.LubPattern(a.tab, acc, sp), a.cfg.Depth)
		}
		a.undo(mark)
	}
	e.succ = acc
	return e.succ
}

// tryClause interprets one clause against the materialized call
// arguments: copy the clause (fresh variables), unify the head, run the
// body goals left to right.
func (a *Analyzer) tryClause(cl term.Clause, args []*node) bool {
	a.Steps++
	env := make(map[*term.VarRef]*node)
	if cl.Head.Kind == term.KStruct {
		for i, harg := range cl.Head.Args {
			hn := instantiate(a.tab, harg, env)
			if !a.unify(args[i], hn) {
				return false
			}
		}
	}
	for _, g := range cl.Body {
		if !a.call(g, env) {
			return false
		}
	}
	return true
}

// call reduces one body goal.
func (a *Analyzer) call(g *term.Term, env map[*term.VarRef]*node) bool {
	if a.err != nil {
		return false
	}
	if a.Steps >= a.cfg.MaxSteps {
		a.fail(ErrStepLimit)
		return false
	}
	a.Steps++
	fn, ok := term.Indicator(g)
	if !ok {
		a.fail(fmt.Errorf("baseline: non-callable goal"))
		return false
	}
	switch {
	case fn.Name == a.tab.Cut && fn.Arity == 0:
		return true // cut ignored, as in core
	case fn.Name == a.tab.True && fn.Arity == 0:
		return true
	}
	if id, isBI := a.builtins[fn]; isBI {
		return a.builtin(id, g, env)
	}
	args := make([]*node, fn.Arity)
	for i := 0; i < fn.Arity; i++ {
		args[i] = instantiate(a.tab, g.Args[i], env)
	}
	cp := a.abstract(fn, args)
	succ := a.solve(cp)
	if a.err != nil || succ == nil {
		return false
	}
	return a.apply(succ, args)
}

// abstract builds the depth-restricted canonical pattern of the args,
// with the same dropped-sharing var widening as the core analyzer.
func (a *Analyzer) abstract(fn term.Functor, args []*node) *domain.Pattern {
	conv := &abstractor{a: a, tab: a.tab, groups: make(map[*node]int)}
	ts := make([]*domain.Term, len(args))
	for i, n := range args {
		ts[i] = conv.toDomain(n, make(map[*node]bool))
	}
	full := domain.NewPattern(fn, ts)
	wargs := make([]*domain.Term, len(ts))
	for i := range ts {
		wargs[i] = domain.Widen(a.tab, ts[i], a.cfg.Depth)
	}
	p := domain.NewPattern(fn, wargs)
	before := countGroups(full)
	after := countGroups(p)
	dropped := make(map[int]bool)
	for g, n := range before {
		if after[g] < n {
			dropped[g] = true
		}
	}
	if len(dropped) > 0 {
		p = devarifyGroups(p, dropped)
	}
	return p.Canonical()
}

// materialize realizes a pattern as fresh nodes.
func (a *Analyzer) materialize(p *domain.Pattern) []*node {
	groups := make(map[int]*node)
	out := make([]*node, len(p.Args))
	for i, t := range p.Args {
		out[i] = fromDomain(a.tab, t, groups)
	}
	return out
}

// apply unifies a success pattern onto the caller's argument nodes.
func (a *Analyzer) apply(p *domain.Pattern, args []*node) bool {
	mat := a.materialize(p)
	for i := range args {
		if !a.unify(args[i], mat[i]) {
			return false
		}
	}
	return true
}

func (a *Analyzer) fail(err error) {
	if a.err == nil {
		a.err = err
	}
}

// countGroups and devarifyGroups mirror the core analyzer's handling of
// share groups dropped by widening.
func countGroups(p *domain.Pattern) map[int]int {
	out := make(map[int]int)
	var walk func(t *domain.Term)
	walk = func(t *domain.Term) {
		if t.Share != 0 {
			out[t.Share]++
		}
		if t.Kind == domain.Struct {
			for _, c := range t.Args {
				walk(c)
			}
		}
		if t.Kind == domain.List {
			walk(t.Elem)
		}
	}
	for _, t := range p.Args {
		walk(t)
	}
	return out
}

func devarifyGroups(p *domain.Pattern, groups map[int]bool) *domain.Pattern {
	var rew func(t *domain.Term) *domain.Term
	rew = func(t *domain.Term) *domain.Term {
		out := *t
		if t.Share != 0 && groups[t.Share] && t.Kind == domain.Var {
			out.Kind = domain.Any
		}
		if t.Kind == domain.Struct {
			out.Args = make([]*domain.Term, len(t.Args))
			for i, c := range t.Args {
				out.Args[i] = rew(c)
			}
		}
		if t.Kind == domain.List {
			out.Elem = rew(t.Elem)
		}
		return &out
	}
	args := make([]*domain.Term, len(p.Args))
	for i, t := range p.Args {
		args[i] = rew(t)
	}
	return domain.NewPattern(p.Fn, args)
}
