package baseline

import (
	"testing"

	"awam/internal/bench"
	"awam/internal/compiler"
	"awam/internal/core"
	"awam/internal/domain"
	"awam/internal/parser"
	"awam/internal/term"
)

func buildProg(t *testing.T, src string) (*term.Tab, *term.Program) {
	t.Helper()
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return tab, prog
}

func analyzeEntry(t *testing.T, tab *term.Tab, prog *term.Program, entry string) *core.Result {
	t.Helper()
	cp, err := domain.ParseAbs(tab, entry)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(tab, prog).Analyze(cp)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFigure3Baseline: the meta-interpreter reproduces the paper's
// Section 4.1 example exactly like the compiled analyzer (including the
// uniform-list presentation of [f(g)|list(g)] as [g|list(g)]).
func TestFigure3Baseline(t *testing.T) {
	tab, prog := buildProg(t, "p(a, [f(V)|L]) :- q(V, L).\nq(_, _).\n")
	res := analyzeEntry(t, tab, prog, "p(atom, list(g))")
	succ := res.SuccessFor(tab.Func("p", 2))
	if succ == nil {
		t.Fatal("no success")
	}
	if got := succ.String(tab); got != "p(atom, [g|list(g)])" {
		t.Fatalf("success = %s", got)
	}
}

func TestListInferenceBaseline(t *testing.T) {
	tab, prog := buildProg(t, `
concatenate([X|L1], L2, [X|L3]) :- concatenate(L1, L2, L3).
concatenate([], L, L).
`)
	res := analyzeEntry(t, tab, prog, "concatenate(list(g), list(g), var)")
	succ := res.SuccessFor(tab.Func("concatenate", 3))
	if got := succ.String(tab); got != "concatenate(list(g), list(g), list(g))" {
		t.Fatalf("success = %s", got)
	}
}

func TestBuiltinsBaseline(t *testing.T) {
	tab, prog := buildProg(t, "double(X, Y) :- Y is X + X.\n")
	res := analyzeEntry(t, tab, prog, "double(any, var)")
	succ := res.SuccessFor(tab.Func("double", 2))
	if got := succ.String(tab); got != "double(g, int)" {
		t.Fatalf("success = %s", got)
	}
}

func TestFailureBaseline(t *testing.T) {
	tab, prog := buildProg(t, "p(X) :- q(X).\nq(a) :- fail.\n")
	res := analyzeEntry(t, tab, prog, "p(any)")
	if res.SuccessFor(tab.Func("p", 1)) != nil {
		t.Fatal("p should be bottom")
	}
}

func TestAliasingBaseline(t *testing.T) {
	tab, prog := buildProg(t, "eq(X, X).\n")
	res := analyzeEntry(t, tab, prog, "eq(var, var)")
	succ := res.SuccessFor(tab.Func("eq", 2))
	pairs := succ.ArgSharePairs()
	if len(pairs) != 1 || pairs[0] != [2]int{0, 1} {
		t.Fatalf("aliasing = %v", pairs)
	}
}

// TestCrossValidation is the repository's strongest correctness test:
// the compiled analyzer (core) and the meta-interpreting analyzer
// (baseline) are independent implementations of the same abstract
// semantics and must agree on every benchmark — same calling patterns,
// same success patterns.
func TestCrossValidation(t *testing.T) {
	for _, p := range bench.Programs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tab, prog := buildProg(t, p.Source)
			mod, err := compiler.Compile(tab, prog)
			if err != nil {
				t.Fatal(err)
			}
			coreRes, err := core.New(mod).AnalyzeMain()
			if err != nil {
				t.Fatalf("core: %v", err)
			}
			baseRes, err := New(tab, prog).AnalyzeMain()
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}

			coreKeys := make(map[string]*core.Entry)
			for _, e := range coreRes.Entries {
				coreKeys[e.Key()] = e
			}
			baseKeys := make(map[string]*core.Entry)
			for _, e := range baseRes.Entries {
				baseKeys[e.Key()] = e
			}
			for k, ce := range coreKeys {
				be, ok := baseKeys[k]
				if !ok {
					t.Errorf("calling pattern %s only found by core", ce.CP.String(tab))
					continue
				}
				if !ce.Succ.Equal(be.Succ) {
					t.Errorf("success mismatch for %s:\n  core:     %s\n  baseline: %s",
						ce.CP.String(tab), ce.Succ.String(tab), be.Succ.String(tab))
				}
			}
			for k, be := range baseKeys {
				if _, ok := coreKeys[k]; !ok {
					t.Errorf("calling pattern %s only found by baseline", be.CP.String(tab))
				}
			}
		})
	}
}

// TestBaselineSlower sanity-checks the performance narrative on a real
// benchmark: the meta-interpreter performs far more abstract operations
// per analysis than the compiled analyzer executes instructions.
func TestBaselineOperationCounts(t *testing.T) {
	p, _ := bench.ByName("qsort")
	tab, prog := buildProg(t, p.Source)
	a := New(tab, prog)
	if _, err := a.AnalyzeMain(); err != nil {
		t.Fatal(err)
	}
	if a.Steps == 0 {
		t.Fatal("baseline should count operations")
	}
}

// TestExtendedCrossValidation: the Go meta-interpreter agrees with the
// compiled analyzer on the extended suite (control constructs included).
// The meta-interpreter sees the expanded program — the compiler's view.
func TestExtendedCrossValidation(t *testing.T) {
	for _, p := range bench.Extended {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tab, prog := buildProg(t, p.Source)
			mod, err := compiler.Compile(tab, prog)
			if err != nil {
				t.Fatal(err)
			}
			coreRes, err := core.New(mod).AnalyzeMain()
			if err != nil {
				t.Fatal(err)
			}
			expanded, err := compiler.ExpandedProgram(tab, prog)
			if err != nil {
				t.Fatal(err)
			}
			baseRes, err := New(tab, expanded).AnalyzeMain()
			if err != nil {
				t.Fatal(err)
			}
			coreKeys := make(map[string]*core.Entry)
			for _, e := range coreRes.Entries {
				coreKeys[e.Key()] = e
			}
			for _, be := range baseRes.Entries {
				ce, ok := coreKeys[be.Key()]
				if !ok {
					t.Errorf("pattern %s only in baseline", be.CP.String(tab))
					continue
				}
				if !ce.Succ.Equal(be.Succ) {
					t.Errorf("success mismatch for %s: %s vs %s",
						be.CP.String(tab), ce.Succ.String(tab), be.Succ.String(tab))
				}
			}
			if len(baseRes.Entries) != len(coreRes.Entries) {
				t.Errorf("table sizes differ: %d vs %d", len(baseRes.Entries), len(coreRes.Entries))
			}
		})
	}
}
