package baseline

// Generic abstract unification over tree nodes: the meta-interpreting
// counterpart of internal/core's compiled s_unify rules. The rule table
// is deliberately identical — only the representation and dispatch
// differ — so the two analyzers must agree on every program.

const maxUnifyDepth = 64

// binding is one element of the association-list substitution.
type binding struct {
	n   *node
	val *node
}

// bind extends the substitution: {n/val} ∘ subst.
func (a *Analyzer) bind(n, to *node) {
	a.subst = append(a.subst, binding{n: n, val: to})
}

// undo truncates the substitution to a mark (clause-exit reset).
func (a *Analyzer) undo(mark int) {
	a.subst = a.subst[:mark]
}

// mark returns the current substitution length.
func (a *Analyzer) mark() int { return len(a.subst) }

// deref resolves a node through the substitution, scanning the
// association list per step — the meta-interpreter's lookup cost.
func (a *Analyzer) deref(n *node) *node {
	for {
		found := false
		// Most recent binding wins; scan from the tail.
		for i := len(a.subst) - 1; i >= 0; i-- {
			a.Steps++
			if a.subst[i].n == n {
				n = a.subst[i].val
				found = true
				break
			}
		}
		if !found {
			return n
		}
	}
}

func (a *Analyzer) unify(x, y *node) bool { return a.unifyDepth(x, y, 0) }

func (a *Analyzer) unifyDepth(x, y *node, depth int) bool {
	a.Steps++
	if depth > maxUnifyDepth {
		return true // widen rather than diverge (sound over-approximation)
	}
	x, y = a.deref(x), a.deref(y)
	if x == y {
		return true
	}
	if x.kind > y.kind {
		x, y = y, x
	}
	switch x.kind {
	case kVar:
		a.bind(x, y)
		return true
	case kAny:
		a.bind(x, y)
		a.anyify(y, make(map[*node]bool))
		return true
	case kNV:
		switch y.kind {
		case kNV, kGround, kConstCls, kAtomCls, kIntCls, kListT, kConAtom, kConInt:
			a.bind(x, y)
			return true
		case kStruct:
			a.bind(x, y)
			a.anyify(y, make(map[*node]bool))
			return true
		}
		return false
	case kGround:
		switch y.kind {
		case kGround, kConstCls, kAtomCls, kIntCls, kConAtom, kConInt:
			a.bind(x, y)
			return true
		case kListT, kStruct:
			a.bind(x, y)
			a.groundify(y, make(map[*node]bool))
			return true
		}
		return false
	case kConstCls:
		switch y.kind {
		case kConstCls, kAtomCls, kIntCls, kConAtom, kConInt:
			a.bind(x, y)
			return true
		case kListT:
			nilNode := mkAtom(a.tab.Nil)
			a.bind(x, nilNode)
			a.bind(y, nilNode)
			return true
		}
		return false
	case kAtomCls:
		switch y.kind {
		case kAtomCls, kConAtom:
			return true
		case kListT:
			a.bind(y, mkAtom(a.tab.Nil))
			return true
		}
		return false
	case kIntCls:
		return y.kind == kIntCls || y.kind == kConInt
	case kListT:
		switch y.kind {
		case kListT:
			// Both list types contain []; element-type clashes leave the
			// empty list as the common instance.
			mark := a.mark()
			a.bind(x, y)
			if a.unifyDepth(x.elem, y.elem, depth+1) {
				return true
			}
			a.undo(mark)
			nilNode := mkAtom(a.tab.Nil)
			a.bind(x, nilNode)
			a.bind(y, nilNode)
			return true
		case kConAtom:
			if y.fn.Name == a.tab.Nil {
				a.bind(x, y)
				return true
			}
			return false
		case kStruct:
			if y.fn.Name != a.tab.Dot || y.fn.Arity != 2 {
				return false
			}
			elem := x.elem
			a.bind(x, y)
			car := a.copyType(elem, make(map[*node]*node))
			if !a.unifyDepth(y.args[0], car, depth+1) {
				return false
			}
			return a.unifyDepth(y.args[1], mkListNode(elem), depth+1)
		}
		return false
	case kConAtom:
		return y.kind == kConAtom && x.fn.Name == y.fn.Name
	case kConInt:
		return y.kind == kConInt && x.i == y.i
	case kStruct:
		if y.kind != kStruct || x.fn != y.fn {
			return false
		}
		for i := range x.args {
			if !a.unifyDepth(x.args[i], y.args[i], depth+1) {
				return false
			}
		}
		return true
	}
	return false
}

// anyify widens the unbound variables inside a term to any.
func (a *Analyzer) anyify(n *node, seen map[*node]bool) {
	n = a.deref(n)
	if seen[n] {
		return
	}
	seen[n] = true
	switch n.kind {
	case kVar:
		a.bind(n, mkLeaf(kAny))
	case kStruct:
		for _, c := range n.args {
			a.anyify(c, seen)
		}
	}
}

// groundify narrows a term to its ground instances.
func (a *Analyzer) groundify(n *node, seen map[*node]bool) {
	n = a.deref(n)
	if seen[n] {
		return
	}
	seen[n] = true
	switch n.kind {
	case kVar, kAny, kNV:
		a.bind(n, mkLeaf(kGround))
	case kListT:
		a.groundify(n.elem, seen)
	case kStruct:
		for _, c := range n.args {
			a.groundify(c, seen)
		}
	}
}

// copyType clones a type graph with fresh open nodes, one instance per
// list element (mirrors core.copyTypeGraph).
func (a *Analyzer) copyType(n *node, copies map[*node]*node) *node {
	n = a.deref(n)
	if dst, ok := copies[n]; ok {
		return dst
	}
	var dst *node
	switch n.kind {
	case kConAtom, kConInt:
		return n // immutable
	case kListT:
		dst = &node{kind: kListT}
		copies[n] = dst
		dst.elem = a.copyType(n.elem, copies)
		return dst
	case kStruct:
		dst = &node{kind: kStruct, fn: n.fn}
		copies[n] = dst
		dst.args = make([]*node, len(n.args))
		for i, c := range n.args {
			dst.args[i] = a.copyType(c, copies)
		}
		return dst
	default:
		dst = mkLeaf(n.kind)
		copies[n] = dst
		return dst
	}
}
