// Package baseline implements the comparison analyzer: a
// meta-interpreting abstract interpreter over source clauses, in the
// implementation style of the Prolog-hosted analyzers the paper measures
// against (the Aquarius analyzer and its relatives).
//
// It computes the same analysis as internal/core — same abstract domain,
// same extension-table control scheme, same term-depth restriction — but
// the way such analyzers were actually built: clauses are copied term
// trees instantiated per attempt, unification is a generic recursive
// procedure dispatching on tree nodes, no compiled unification
// instructions exist, no clause indexing is consulted, and the extension
// table is a linear list of (calling pattern, success pattern) pairs.
// The per-benchmark time ratio between this package and internal/core
// reproduces the shape of the paper's Table 1 speedups.
//
// Because the two analyzers are independent implementations of the same
// abstract semantics, equality of their results over the benchmark suite
// is also the repository's strongest cross-validation test.
package baseline

import (
	"awam/internal/domain"
	"awam/internal/term"
)

// kind discriminates runtime nodes of the meta-interpreter.
type kind uint8

const (
	kVar kind = iota
	kAny
	kNV
	kGround
	kConstCls // the class of constants
	kAtomCls  // the class of atoms
	kIntCls   // the class of integers
	kListT    // parameterized list type
	kConAtom  // a specific atom
	kConInt   // a specific integer
	kStruct   // concrete structure (including cons cells)
)

// node is an immutable runtime value descriptor. Binding a node does not
// mutate it: the analyzer extends its association-list substitution, the
// way Prolog-hosted analyzers represent abstract substitutions, and
// dereferencing scans that list. This is the central interpretive
// overhead the paper's compilation removes (the concrete machine and the
// abstract WAM both bind destructively through tagged heap cells).
type node struct {
	kind kind
	fn   term.Functor
	i    int64
	args []*node
	elem *node
}

// open reports whether the node can be instantiated.
func (n *node) open() bool {
	switch n.kind {
	case kVar, kAny, kNV, kGround, kConstCls, kListT:
		return true
	}
	return false
}

func mkLeaf(k kind) *node         { return &node{kind: k} }
func mkAtom(a term.Atom) *node    { return &node{kind: kConAtom, fn: term.Functor{Name: a}} }
func mkInt(v int64) *node         { return &node{kind: kConInt, i: v} }
func mkListNode(elem *node) *node { return &node{kind: kListT, elem: elem} }
func mkStruct(fn term.Functor, args []*node) *node {
	return &node{kind: kStruct, fn: fn, args: args}
}

// fromKind maps a domain kind to a runtime node (materialization).
func fromDomain(tab *term.Tab, t *domain.Term, groups map[int]*node) *node {
	if t.Share != 0 {
		if n, ok := groups[t.Share]; ok {
			return n
		}
	}
	var n *node
	switch t.Kind {
	case domain.Var:
		n = mkLeaf(kVar)
	case domain.Any, domain.Empty:
		n = mkLeaf(kAny)
	case domain.NV:
		n = mkLeaf(kNV)
	case domain.Ground:
		n = mkLeaf(kGround)
	case domain.Const:
		n = mkLeaf(kConstCls)
	case domain.Atom:
		n = mkLeaf(kAtomCls)
	case domain.Intg:
		n = mkLeaf(kIntCls)
	case domain.Nil:
		n = mkAtom(tab.Nil)
	case domain.List:
		n = mkListNode(fromDomain(tab, t.Elem, groups))
	case domain.Struct:
		args := make([]*node, len(t.Args))
		for i, a := range t.Args {
			args[i] = fromDomain(tab, a, groups)
		}
		n = mkStruct(t.Fn, args)
	default:
		n = mkLeaf(kAny)
	}
	if t.Share != 0 {
		groups[t.Share] = n
	}
	return n
}

// toDomain abstracts a runtime node into a domain term, assigning share
// groups per open node identity (mirrors core's heap abstraction).
type abstractor struct {
	a      *Analyzer
	tab    *term.Tab
	groups map[*node]int
}

func (c *abstractor) group(n *node) int {
	id, ok := c.groups[n]
	if !ok {
		id = len(c.groups) + 1
		c.groups[n] = id
	}
	return id
}

func (c *abstractor) toDomain(n *node, busy map[*node]bool) *domain.Term {
	n = c.a.deref(n)
	if busy[n] {
		return domain.Top()
	}
	switch n.kind {
	case kVar:
		return &domain.Term{Kind: domain.Var, Share: c.group(n)}
	case kAny:
		return &domain.Term{Kind: domain.Any, Share: c.group(n)}
	case kNV:
		return &domain.Term{Kind: domain.NV, Share: c.group(n)}
	case kGround:
		return &domain.Term{Kind: domain.Ground, Share: c.group(n)}
	case kConstCls:
		return &domain.Term{Kind: domain.Const, Share: c.group(n)}
	case kAtomCls:
		return domain.MkLeaf(domain.Atom)
	case kIntCls:
		return domain.MkLeaf(domain.Intg)
	case kConAtom:
		if n.fn.Name == c.tab.Nil {
			return domain.MkLeaf(domain.Nil)
		}
		return domain.MkLeaf(domain.Atom)
	case kConInt:
		return domain.MkLeaf(domain.Intg)
	case kListT:
		t := &domain.Term{Kind: domain.List, Share: c.group(n)}
		busy[n] = true
		t.Elem = c.toDomain(n.elem, busy)
		delete(busy, n)
		return t
	case kStruct:
		args := make([]*domain.Term, len(n.args))
		busy[n] = true
		for i, a := range n.args {
			args[i] = c.toDomain(a, busy)
		}
		delete(busy, n)
		return domain.MkStructT(n.fn, args...)
	}
	return domain.Top()
}

// instantiate copies a source term into runtime nodes, allocating one
// fresh variable node per clause variable — the meta-interpreter's
// clause-copying overhead.
func instantiate(tab *term.Tab, tm *term.Term, env map[*term.VarRef]*node) *node {
	switch tm.Kind {
	case term.KVar:
		if n, ok := env[tm.Ref]; ok {
			return n
		}
		n := mkLeaf(kVar)
		env[tm.Ref] = n
		return n
	case term.KAtom:
		return mkAtom(tm.Fn.Name)
	case term.KInt:
		return mkInt(tm.Int)
	case term.KStruct:
		args := make([]*node, len(tm.Args))
		for i, a := range tm.Args {
			args[i] = instantiate(tab, a, env)
		}
		return mkStruct(tm.Fn, args)
	}
	return mkLeaf(kAny)
}
