package transform

import (
	"strings"
	"testing"

	"awam/internal/parser"
	"awam/internal/term"
	"awam/internal/wam"
)

// TestSection5Example reproduces the paper's Section 5 transformation of
//
//	p(X) :- q, r(X).
//	p(a).
func TestSection5Example(t *testing.T) {
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, "p(X) :- q, r(X).\np(a).\nq.\nr(_).\n")
	if err != nil {
		t.Fatal(err)
	}
	out := Predicate(tab, prog, tab.Func("p", 1), wam.Builtins(tab))
	for _, want := range []string{
		"p'(X1) :-",
		"abstract([X1], [Xa1])",
		"explored(p(Xa1)) -> lookupET(p(Xa1))",
		"assert(explored(p(Xa1))), p(Xa1)",
		"p(X) :- q', r'(X), updateET(p(X)), fail.",
		"p(a) :- updateET(p(a)), fail.",
		"p(Lub1) :- lookupET(p(Lub1)).",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestBuiltinsNotRedirected(t *testing.T) {
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, "p(X, Y) :- Y is X + 1, q(Y).\nq(_).\n")
	if err != nil {
		t.Fatal(err)
	}
	out := Program(tab, prog)
	if strings.Contains(out, "is'") {
		t.Fatalf("builtin is/2 must not be primed:\n%s", out)
	}
	if !strings.Contains(out, "q'(Y)") {
		t.Fatalf("user call q must be primed:\n%s", out)
	}
}

func TestZeroArityPredicates(t *testing.T) {
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, "main :- go.\ngo.\n")
	if err != nil {
		t.Fatal(err)
	}
	out := Program(tab, prog)
	if !strings.Contains(out, "main' :-") {
		t.Fatalf("zero-arity wrapper missing:\n%s", out)
	}
	if strings.Contains(out, "abstract([]") {
		t.Fatalf("zero-arity predicates need no abstraction:\n%s", out)
	}
	if !strings.Contains(out, "go', updateET(main), fail.") {
		t.Fatalf("body call should be primed:\n%s", out)
	}
}

func TestCutPreserved(t *testing.T) {
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, "p(X) :- !, q(X).\np(_).\nq(_).\n")
	if err != nil {
		t.Fatal(err)
	}
	out := Program(tab, prog)
	if !strings.Contains(out, ":- !, q'(X), updateET") {
		t.Fatalf("cut should be kept in place:\n%s", out)
	}
}
