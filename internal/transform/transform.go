// Package transform renders the paper's Section 5 source-to-source
// transformation: the program a "transforming approach" analyzer would
// partially evaluate and then run. For every predicate p it produces
//
//	p'(X...) :- abstract(X..., Xa...),
//	            ( explored(p(Xa...)) -> lookupET(p(Xa...))
//	            ; assert(explored(p(Xa...))), p(Xa...) ).
//
//	p(X...) :- <body with q replaced by q'>, updateET(p(X...)), fail.
//	...
//	p(Lub...) :- lookupET(p(Lub...)).
//
// The output is explanatory (the abstract WAM performs this control
// scheme directly in its reinterpreted call/proceed, so the transformed
// program never needs to be executed here); it exists to document the
// equivalence the paper draws between the two implementations and to
// serve the transform subcommand and tests (experiment E7).
package transform

import (
	"fmt"
	"strings"

	"awam/internal/term"
	"awam/internal/wam"
)

// Program renders the transformed source of an entire program.
func Program(tab *term.Tab, prog *term.Program) string {
	var b strings.Builder
	builtins := wam.Builtins(tab)
	for _, fn := range prog.Order {
		b.WriteString(Predicate(tab, prog, fn, builtins))
		b.WriteString("\n")
	}
	return b.String()
}

// Predicate renders the transformed clauses of one predicate.
func Predicate(tab *term.Tab, prog *term.Program, fn term.Functor, builtins map[term.Functor]wam.BuiltinID) string {
	var b strings.Builder
	name := tab.Name(fn.Name)

	// The wrapper predicate p'.
	vars := fresh(fn.Arity, "X")
	avars := fresh(fn.Arity, "Xa")
	head := apply(name+"'", vars)
	pat := apply(name, avars)
	fmt.Fprintf(&b, "%s :-\n", head)
	if fn.Arity > 0 {
		fmt.Fprintf(&b, "\tabstract([%s], [%s]),\n", strings.Join(vars, ", "), strings.Join(avars, ", "))
	}
	fmt.Fprintf(&b, "\t( explored(%s) -> lookupET(%s)\n", pat, pat)
	fmt.Fprintf(&b, "\t; assert(explored(%s)), %s\n\t).\n", pat, pat)

	// The deterministic clauses: original bodies with calls redirected to
	// wrappers, then updateET + artificial failure.
	for _, cl := range prog.ClausesOf(fn) {
		headTxt := tab.Write(cl.Head)
		var goals []string
		for _, g := range cl.Body {
			goals = append(goals, renameGoal(tab, g, builtins))
		}
		goals = append(goals, fmt.Sprintf("updateET(%s)", headTxt), "fail")
		fmt.Fprintf(&b, "%s :- %s.\n", headTxt, strings.Join(goals, ", "))
	}

	// The summarizing return clause.
	lubs := fresh(fn.Arity, "Lub")
	lubHead := apply(name, lubs)
	fmt.Fprintf(&b, "%s :- lookupET(%s).\n", lubHead, lubHead)
	return b.String()
}

// renameGoal redirects user-predicate calls to their primed wrappers;
// builtins and control goals stay as they are.
func renameGoal(tab *term.Tab, g *term.Term, builtins map[term.Functor]wam.BuiltinID) string {
	fn, ok := term.Indicator(g)
	if !ok {
		return tab.Write(g)
	}
	if _, isBI := builtins[fn]; isBI || fn.Name == tab.Cut || fn.Name == tab.True {
		return tab.Write(g)
	}
	if g.Kind == term.KAtom {
		return tab.Name(fn.Name) + "'"
	}
	args := make([]string, len(g.Args))
	for i, a := range g.Args {
		args[i] = tab.Write(a)
	}
	return apply(tab.Name(fn.Name)+"'", args)
}

func fresh(n int, prefix string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i+1)
	}
	return out
}

func apply(name string, args []string) string {
	if len(args) == 0 {
		return name
	}
	return name + "(" + strings.Join(args, ", ") + ")"
}
