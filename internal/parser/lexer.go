// Package parser implements a Prolog reader: a tokenizer and an
// operator-precedence parser producing term.Clause values. It covers the
// subset of ISO syntax exercised by the PLM benchmark suite: atoms
// (unquoted, quoted, symbolic), variables, integers, double-quoted strings
// (read as lists of character codes), lists, curly-free compound terms,
// and the standard operator table.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokAtom
	tokVar
	tokInt
	tokStr    // "..." — list of codes
	tokPunct  // ( ) [ ] | ,  and the solo chars
	tokEnd    // clause-terminating period
	tokOpenCT // '(' immediately after a name: functor application
)

type token struct {
	kind tokKind
	text string
	ival int64
	line int
	col  int
}

func (tk token) String() string {
	switch tk.kind {
	case tokEOF:
		return "<eof>"
	case tokEnd:
		return "."
	case tokInt:
		return fmt.Sprintf("%d", tk.ival)
	default:
		return tk.text
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	// prevWasName tracks whether the previous token could be a functor
	// name, so that a following '(' with no space becomes tokOpenCT.
	prevWasName bool
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Error is a parse error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("prolog parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

func (lx *lexer) errorf(format string, args ...interface{}) error {
	return &Error{Line: lx.line, Col: lx.col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekByte() (byte, bool) {
	if lx.pos >= len(lx.src) {
		return 0, false
	}
	return lx.src[lx.pos], true
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

// skipLayout consumes whitespace and comments. It reports whether any
// layout was skipped (needed for the name-'(' adjacency rule).
func (lx *lexer) skipLayout() (bool, error) {
	skipped := false
	for {
		c, ok := lx.peekByte()
		if !ok {
			return skipped, nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
			skipped = true
		case c == '%':
			for {
				c2, ok2 := lx.peekByte()
				if !ok2 || c2 == '\n' {
					break
				}
				lx.advance()
			}
			skipped = true
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.src[lx.pos] == '*' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return skipped, lx.errorf("unterminated block comment")
			}
			skipped = true
		default:
			return skipped, nil
		}
	}
}

const symbolChars = "+-*/\\^<>=~:.?@#&$"

func isSymbolChar(c byte) bool { return strings.IndexByte(symbolChars, c) >= 0 }

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	layout, err := lx.skipLayout()
	if err != nil {
		return token{}, err
	}
	tk := token{line: lx.line, col: lx.col}
	c, ok := lx.peekByte()
	if !ok {
		tk.kind = tokEOF
		lx.prevWasName = false
		return tk, nil
	}
	switch {
	case c == '(':
		lx.advance()
		if lx.prevWasName && !layout {
			tk.kind = tokOpenCT
		} else {
			tk.kind = tokPunct
		}
		tk.text = "("
		lx.prevWasName = false
		return tk, nil
	case c == ')' || c == ']' || c == '}':
		lx.advance()
		tk.kind = tokPunct
		tk.text = string(c)
		lx.prevWasName = true // ")(" never a functor application in our subset
		return tk, nil
	case c == '[' || c == '{' || c == '|':
		lx.advance()
		tk.kind = tokPunct
		tk.text = string(c)
		lx.prevWasName = false
		return tk, nil
	case c == ',':
		lx.advance()
		tk.kind = tokPunct
		tk.text = ","
		lx.prevWasName = false
		return tk, nil
	case c == '!':
		lx.advance()
		tk.kind = tokAtom
		tk.text = "!"
		lx.prevWasName = true
		return tk, nil
	case c == ';':
		lx.advance()
		tk.kind = tokAtom
		tk.text = ";"
		lx.prevWasName = true
		return tk, nil
	case c >= '0' && c <= '9':
		return lx.lexNumber(tk)
	case c == '_' || unicode.IsUpper(rune(c)):
		start := lx.pos
		for lx.pos < len(lx.src) && isAlnum(lx.src[lx.pos]) {
			lx.advance()
		}
		tk.kind = tokVar
		tk.text = lx.src[start:lx.pos]
		lx.prevWasName = false
		return tk, nil
	case c >= 'a' && c <= 'z':
		start := lx.pos
		for lx.pos < len(lx.src) && isAlnum(lx.src[lx.pos]) {
			lx.advance()
		}
		tk.kind = tokAtom
		tk.text = lx.src[start:lx.pos]
		lx.prevWasName = true
		return tk, nil
	case c == '\'':
		return lx.lexQuoted(tk)
	case c == '"':
		return lx.lexString(tk)
	case isSymbolChar(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isSymbolChar(lx.src[lx.pos]) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		// A solitary '.' followed by layout or EOF terminates the clause.
		if text == "." {
			tk.kind = tokEnd
			lx.prevWasName = false
			return tk, nil
		}
		// A symbolic token ending in '.' where the '.' is clause-final
		// (e.g. "foo:-bar." lexes ":-" then later "."), only matters when
		// the whole token is the terminator; symbol runs are maximal-munch
		// otherwise, matching standard Prolog tokenization.
		tk.kind = tokAtom
		tk.text = text
		lx.prevWasName = true
		return tk, nil
	default:
		return tk, lx.errorf("unexpected character %q", c)
	}
}

func (lx *lexer) lexNumber(tk token) (token, error) {
	start := lx.pos
	for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
		lx.advance()
	}
	// 0'c character code notation
	if lx.pos-start == 1 && lx.src[start] == '0' && lx.pos < len(lx.src) && lx.src[lx.pos] == '\'' {
		lx.advance()
		if lx.pos >= len(lx.src) {
			return tk, lx.errorf("unterminated character code")
		}
		ch := lx.advance()
		if ch == '\\' {
			esc, err := lx.lexEscape()
			if err != nil {
				return tk, err
			}
			ch = esc
		}
		tk.kind = tokInt
		tk.ival = int64(ch)
		lx.prevWasName = false
		return tk, nil
	}
	var n int64
	for _, d := range lx.src[start:lx.pos] {
		n = n*10 + int64(d-'0')
	}
	tk.kind = tokInt
	tk.ival = n
	lx.prevWasName = false
	return tk, nil
}

func (lx *lexer) lexEscape() (byte, error) {
	if lx.pos >= len(lx.src) {
		return 0, lx.errorf("unterminated escape")
	}
	c := lx.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case 'a':
		return 7, nil
	case 'b':
		return 8, nil
	case 'f':
		return 12, nil
	case 'v':
		return 11, nil
	case '\\', '\'', '"', '`':
		return c, nil
	case '0':
		return 0, nil
	default:
		return 0, lx.errorf("unknown escape \\%c", c)
	}
}

func (lx *lexer) lexQuoted(tk token) (token, error) {
	lx.advance() // opening quote
	var b strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return tk, lx.errorf("unterminated quoted atom")
		}
		c := lx.advance()
		switch c {
		case '\'':
			if nc, ok := lx.peekByte(); ok && nc == '\'' {
				lx.advance()
				b.WriteByte('\'')
				continue
			}
			tk.kind = tokAtom
			tk.text = b.String()
			lx.prevWasName = true
			return tk, nil
		case '\\':
			esc, err := lx.lexEscape()
			if err != nil {
				return tk, err
			}
			b.WriteByte(esc)
		default:
			b.WriteByte(c)
		}
	}
}

func (lx *lexer) lexString(tk token) (token, error) {
	lx.advance() // opening quote
	var b strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return tk, lx.errorf("unterminated string")
		}
		c := lx.advance()
		switch c {
		case '"':
			tk.kind = tokStr
			tk.text = b.String()
			lx.prevWasName = false
			return tk, nil
		case '\\':
			esc, err := lx.lexEscape()
			if err != nil {
				return tk, err
			}
			b.WriteByte(esc)
		default:
			b.WriteByte(c)
		}
	}
}
