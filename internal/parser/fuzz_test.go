package parser

import (
	"testing"

	"awam/internal/term"
)

// FuzzParseProgram checks the parser never panics and that anything it
// accepts can be written back and re-parsed. The seed corpus runs as
// part of the normal test suite; `go test -fuzz=FuzzParseProgram` digs
// deeper.
func FuzzParseProgram(f *testing.F) {
	seeds := []string{
		"p(a).",
		"p(X) :- q(X), r(X, [1,2|T]).",
		"d(U+V, X, DU+DV) :- !, d(U, X, DU), d(V, X, DV).",
		"a :- (b ; c -> d ; \\+ e).",
		`s("ABLE WAS I").`,
		"p(0'a, 'quoted atom', \"str\").",
		"p([]). p([_|_]). p(f(g(h(1)))). p(-42).",
		"x :- Y is 3 mod -2, Y < 10.",
		"% comment\n/* block */ p.",
		"p(", "p(a) q", ":- 3.", "'unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tab := term.NewTab()
		clauses, err := ParseClauses(tab, src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, c := range clauses {
			text := tab.WriteClause(c)
			if _, err := ParseClauses(term.NewTab(), text); err != nil {
				t.Fatalf("accepted %q but rejected its own rendering %q: %v", src, text, err)
			}
		}
	})
}
