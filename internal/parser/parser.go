package parser

import (
	"fmt"

	"awam/internal/term"
)

// opType is the ISO operator specifier.
type opType uint8

const (
	xfx opType = iota
	xfy
	yfx
	fy
	fx
)

type opInfo struct {
	prio int
	typ  opType
}

// Standard operator table (the subset the benchmark suite needs).
var infixOps = map[string]opInfo{
	":-":   {1200, xfx},
	"-->":  {1200, xfx},
	";":    {1100, xfy},
	"->":   {1050, xfy},
	",":    {1000, xfy},
	"=":    {700, xfx},
	"\\=":  {700, xfx},
	"==":   {700, xfx},
	"\\==": {700, xfx},
	"@<":   {700, xfx},
	"@>":   {700, xfx},
	"@=<":  {700, xfx},
	"@>=":  {700, xfx},
	"is":   {700, xfx},
	"=:=":  {700, xfx},
	"=\\=": {700, xfx},
	"<":    {700, xfx},
	">":    {700, xfx},
	"=<":   {700, xfx},
	">=":   {700, xfx},
	"=..":  {700, xfx},
	"+":    {500, yfx},
	"-":    {500, yfx},
	"/\\":  {500, yfx},
	"\\/":  {500, yfx},
	"xor":  {500, yfx},
	"*":    {400, yfx},
	"/":    {400, yfx},
	"//":   {400, yfx},
	"mod":  {400, yfx},
	"rem":  {400, yfx},
	"<<":   {400, yfx},
	">>":   {400, yfx},
	"**":   {200, xfx},
	"^":    {200, xfy},
}

var prefixOps = map[string]opInfo{
	":-":  {1200, fx},
	"?-":  {1200, fx},
	"\\+": {900, fy},
	"-":   {200, fy},
	"+":   {200, fy},
	"\\":  {200, fy},
}

// Parser reads clauses from a source string.
type Parser struct {
	tab  *term.Tab
	lx   *lexer
	tok  token
	vars map[string]*term.Term // per-clause variable scope
}

// New returns a parser over src interning into tab.
func New(tab *term.Tab, src string) (*Parser, error) {
	p := &Parser{tab: tab, lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Parser) advance() error {
	tk, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = tk
	return nil
}

func (p *Parser) errorf(format string, args ...interface{}) error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

// ReadClause reads the next clause; it returns ok=false at end of input.
// Directives (:- Goal.) are returned as clauses whose Head is the atom
// '$directive' and whose Body is the directive goal sequence.
func (p *Parser) ReadClause() (term.Clause, bool, error) {
	if p.tok.kind == tokEOF {
		return term.Clause{}, false, nil
	}
	p.vars = make(map[string]*term.Term)
	tm, err := p.parse(1200)
	if err != nil {
		return term.Clause{}, false, err
	}
	if p.tok.kind != tokEnd {
		return term.Clause{}, false, p.errorf("expected '.' after clause, got %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return term.Clause{}, false, err
	}
	return p.toClause(tm)
}

func (p *Parser) toClause(tm *term.Term) (term.Clause, bool, error) {
	neck := p.tab.Func(":-", 2)
	dir1 := p.tab.Func(":-", 1)
	switch {
	case tm.Kind == term.KStruct && tm.Fn == neck:
		head := tm.Args[0]
		if _, ok := term.Indicator(head); !ok {
			return term.Clause{}, false, p.errorf("clause head must be callable")
		}
		return term.Clause{Head: head, Body: p.flattenConj(tm.Args[1])}, true, nil
	case tm.Kind == term.KStruct && tm.Fn == dir1:
		return term.Clause{
			Head: term.MkAtom(p.tab.Intern("$directive")),
			Body: p.flattenConj(tm.Args[0]),
		}, true, nil
	default:
		if _, ok := term.Indicator(tm); !ok {
			return term.Clause{}, false, p.errorf("clause head must be callable")
		}
		return term.Clause{Head: tm}, true, nil
	}
}

// flattenConj flattens nested ','/2 into a goal list. Control constructs
// other than conjunction (';', '->') remain single goals for the compiler
// to reject or expand.
func (p *Parser) flattenConj(tm *term.Term) []*term.Term {
	comma := term.Functor{Name: p.tab.Comma, Arity: 2}
	var out []*term.Term
	var walk func(g *term.Term)
	walk = func(g *term.Term) {
		if g.Kind == term.KStruct && g.Fn == comma {
			walk(g.Args[0])
			walk(g.Args[1])
			return
		}
		out = append(out, g)
	}
	walk(tm)
	return out
}

// parse reads a term of priority at most maxPrio.
func (p *Parser) parse(maxPrio int) (*term.Term, error) {
	left, leftPrio, err := p.parsePrimary(maxPrio)
	if err != nil {
		return nil, err
	}
	return p.parseInfix(left, leftPrio, maxPrio)
}

func (p *Parser) parseInfix(left *term.Term, leftPrio, maxPrio int) (*term.Term, error) {
	for {
		var name string
		switch {
		case p.tok.kind == tokAtom:
			name = p.tok.text
		case p.tok.kind == tokPunct && p.tok.text == ",":
			name = ","
		case p.tok.kind == tokPunct && p.tok.text == "|":
			// '|' as an infix is only valid inside lists, handled there.
			return left, nil
		default:
			return left, nil
		}
		op, ok := infixOps[name]
		if !ok || op.prio > maxPrio {
			return left, nil
		}
		leftMax, rightMax := op.prio-1, op.prio-1
		switch op.typ {
		case xfy:
			rightMax = op.prio
		case yfx:
			leftMax = op.prio
		}
		if leftPrio > leftMax {
			return left, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parse(rightMax)
		if err != nil {
			return nil, err
		}
		left = term.MkStruct(p.tab.Func(name, 2), left, right)
		leftPrio = op.prio
	}
}

// parsePrimary reads one operand, returning the term and its priority
// (operators read as prefix applications carry their operator priority).
func (p *Parser) parsePrimary(maxPrio int) (*term.Term, int, error) {
	tk := p.tok
	switch tk.kind {
	case tokEOF:
		return nil, 0, p.errorf("unexpected end of input")
	case tokInt:
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		return term.MkInt(tk.ival), 0, nil
	case tokVar:
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		if tk.text == "_" {
			return term.NewVar("_"), 0, nil
		}
		if v, ok := p.vars[tk.text]; ok {
			return v, 0, nil
		}
		v := term.NewVar(tk.text)
		p.vars[tk.text] = v
		return v, 0, nil
	case tokStr:
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		codes := make([]*term.Term, len(tk.text))
		for i := 0; i < len(tk.text); i++ {
			codes[i] = term.MkInt(int64(tk.text[i]))
		}
		return term.MkList(p.tab, codes, nil), 0, nil
	case tokOpenCT, tokPunct:
		// A '(' reached here (rather than via the functor-application
		// check below) groups a subterm, even when it followed an
		// operator with no layout, e.g. "X/(Y*Z)".
		switch tk.text {
		case "(":
			if err := p.advance(); err != nil {
				return nil, 0, err
			}
			tm, err := p.parse(1200)
			if err != nil {
				return nil, 0, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, 0, err
			}
			return tm, 0, nil
		case "[":
			if err := p.advance(); err != nil {
				return nil, 0, err
			}
			return p.parseList()
		case "{":
			if err := p.advance(); err != nil {
				return nil, 0, err
			}
			if p.tok.kind == tokPunct && p.tok.text == "}" {
				if err := p.advance(); err != nil {
					return nil, 0, err
				}
				return term.MkAtom(p.tab.Intern("{}")), 0, nil
			}
			tm, err := p.parse(1200)
			if err != nil {
				return nil, 0, err
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, 0, err
			}
			return term.MkStruct(p.tab.Func("{}", 1), tm), 0, nil
		default:
			return nil, 0, p.errorf("unexpected %q", tk.text)
		}
	case tokAtom:
		name := tk.text
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		// Functor application: name immediately followed by '('.
		if p.tok.kind == tokOpenCT {
			if err := p.advance(); err != nil {
				return nil, 0, err
			}
			args, err := p.parseArgs()
			if err != nil {
				return nil, 0, err
			}
			return term.MkStruct(p.tab.Func(name, len(args)), args...), 0, nil
		}
		// Prefix operator.
		if op, ok := prefixOps[name]; ok && op.prio <= maxPrio && p.canStartTerm() {
			// Negative integer literals fold immediately.
			if name == "-" && p.tok.kind == tokInt {
				n := p.tok.ival
				if err := p.advance(); err != nil {
					return nil, 0, err
				}
				return term.MkInt(-n), 0, nil
			}
			argMax := op.prio
			if op.typ == fx {
				argMax = op.prio - 1
			}
			arg, err := p.parse(argMax)
			if err != nil {
				return nil, 0, err
			}
			return term.MkStruct(p.tab.Func(name, 1), arg), op.prio, nil
		}
		return term.MkAtom(p.tab.Intern(name)), 0, nil
	default:
		return nil, 0, p.errorf("unexpected token %s", tk)
	}
}

// canStartTerm reports whether the current token can begin an operand, so
// that an atom like '-' standing alone is not misread as a prefix operator.
func (p *Parser) canStartTerm() bool {
	switch p.tok.kind {
	case tokInt, tokVar, tokStr, tokOpenCT:
		return true
	case tokAtom:
		// An infix operator cannot start a term unless it is also prefix
		// or a plain atom; be permissive — primary parsing will decide.
		return true
	case tokPunct:
		return p.tok.text == "(" || p.tok.text == "[" || p.tok.text == "{"
	default:
		return false
	}
}

func (p *Parser) parseArgs() ([]*term.Term, error) {
	var args []*term.Term
	for {
		a, err := p.parse(999)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.tok.kind == tokPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return args, nil
	}
}

func (p *Parser) parseList() (*term.Term, int, error) {
	if p.tok.kind == tokPunct && p.tok.text == "]" {
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		return term.MkAtom(p.tab.Nil), 0, nil
	}
	var elems []*term.Term
	for {
		e, err := p.parse(999)
		if err != nil {
			return nil, 0, err
		}
		elems = append(elems, e)
		if p.tok.kind == tokPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return nil, 0, err
			}
			continue
		}
		break
	}
	var tail *term.Term
	if p.tok.kind == tokPunct && p.tok.text == "|" {
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		t, err := p.parse(999)
		if err != nil {
			return nil, 0, err
		}
		tail = t
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, 0, err
	}
	return term.MkList(p.tab, elems, tail), 0, nil
}

func (p *Parser) expectPunct(text string) error {
	if p.tok.kind != tokPunct || p.tok.text != text {
		return p.errorf("expected %q, got %s", text, p.tok)
	}
	return p.advance()
}

// ParseProgram parses a complete program source into grouped clauses.
// Directives are dropped (the benchmark suite defines entry points as
// ordinary main/0 predicates).
func ParseProgram(tab *term.Tab, src string) (*term.Program, error) {
	clauses, err := ParseClauses(tab, src)
	if err != nil {
		return nil, err
	}
	return term.NewProgram(clauses)
}

// ParseClauses parses all clauses in src, dropping directives.
func ParseClauses(tab *term.Tab, src string) ([]term.Clause, error) {
	p, err := New(tab, src)
	if err != nil {
		return nil, err
	}
	directive := tab.Intern("$directive")
	var out []term.Clause
	for {
		c, ok, err := p.ReadClause()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if c.Head.Kind == term.KAtom && c.Head.Fn.Name == directive {
			continue
		}
		out = append(out, c)
	}
	return out, nil
}

// ParseTerm parses a single term (no trailing period required).
func ParseTerm(tab *term.Tab, src string) (*term.Term, error) {
	p, err := New(tab, src)
	if err != nil {
		return nil, err
	}
	p.vars = make(map[string]*term.Term)
	tm, err := p.parse(1200)
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF && p.tok.kind != tokEnd {
		return nil, p.errorf("trailing input after term: %s", p.tok)
	}
	return tm, nil
}

// ParseGoal parses a goal conjunction such as "p(X), q(X)" into a flat
// goal list sharing one variable scope.
func ParseGoal(tab *term.Tab, src string) ([]*term.Term, error) {
	p, err := New(tab, src)
	if err != nil {
		return nil, err
	}
	p.vars = make(map[string]*term.Term)
	tm, err := p.parse(1200)
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF && p.tok.kind != tokEnd {
		return nil, p.errorf("trailing input after goal: %s", p.tok)
	}
	return p.flattenConj(tm), nil
}
