package parser

import (
	"math/rand"
	"testing"
	"testing/quick"

	"awam/internal/term"
)

func mustTerm(t *testing.T, tab *term.Tab, src string) *term.Term {
	t.Helper()
	tm, err := ParseTerm(tab, src)
	if err != nil {
		t.Fatalf("ParseTerm(%q): %v", src, err)
	}
	return tm
}

func TestParseAtomsAndIntegers(t *testing.T) {
	tab := term.NewTab()
	if tm := mustTerm(t, tab, "foo"); tm.Kind != term.KAtom || tab.Name(tm.Fn.Name) != "foo" {
		t.Fatalf("foo parsed as %v", tab.Write(tm))
	}
	if tm := mustTerm(t, tab, "42"); tm.Kind != term.KInt || tm.Int != 42 {
		t.Fatalf("42 parsed as %v", tab.Write(tm))
	}
	if tm := mustTerm(t, tab, "-7"); tm.Kind != term.KInt || tm.Int != -7 {
		t.Fatalf("-7 parsed as %v", tab.Write(tm))
	}
	if tm := mustTerm(t, tab, "0'a"); tm.Kind != term.KInt || tm.Int != 'a' {
		t.Fatalf("0'a parsed as %v", tab.Write(tm))
	}
	if tm := mustTerm(t, tab, "'hello world'"); tm.Kind != term.KAtom || tab.Name(tm.Fn.Name) != "hello world" {
		t.Fatalf("quoted atom parsed as %v", tab.Write(tm))
	}
}

func TestParseVariablesShareScope(t *testing.T) {
	tab := term.NewTab()
	tm := mustTerm(t, tab, "f(X, X, Y)")
	if !term.SameVar(tm.Args[0], tm.Args[1]) {
		t.Fatal("X occurrences should share")
	}
	if term.SameVar(tm.Args[0], tm.Args[2]) {
		t.Fatal("X and Y should differ")
	}
	tm2 := mustTerm(t, tab, "f(_, _)")
	if term.SameVar(tm2.Args[0], tm2.Args[1]) {
		t.Fatal("anonymous variables must be distinct")
	}
}

func TestParseStructsAndLists(t *testing.T) {
	tab := term.NewTab()
	tm := mustTerm(t, tab, "point(1, 2)")
	if tm.Kind != term.KStruct || tm.Fn != tab.Func("point", 2) {
		t.Fatalf("parsed %v", tab.Write(tm))
	}
	l := mustTerm(t, tab, "[1, 2 | T]")
	if !tab.IsCons(l) || l.Args[0].Int != 1 {
		t.Fatalf("parsed %v", tab.Write(l))
	}
	if got := tab.Write(l); got != "[1, 2|T]" {
		t.Fatalf("list round trip = %q", got)
	}
	if tm := mustTerm(t, tab, "[]"); !tab.IsNil(tm) {
		t.Fatal("[] not parsed as nil")
	}
}

func TestParseStrings(t *testing.T) {
	tab := term.NewTab()
	tm := mustTerm(t, tab, `"AB"`)
	if !tab.IsCons(tm) || tm.Args[0].Int != 'A' || tm.Args[1].Args[0].Int != 'B' {
		t.Fatalf("string parsed as %v", tab.Write(tm))
	}
	if !tab.IsNil(tm.Args[1].Args[1]) {
		t.Fatal("string list not nil-terminated")
	}
}

func TestOperatorPrecedence(t *testing.T) {
	tab := term.NewTab()
	cases := map[string]string{
		"1+2*3":         "1 + 2 * 3",
		"(1+2)*3":       "(1 + 2) * 3",
		"1-2-3":         "1 - 2 - 3", // yfx: ((1-2)-3)
		"X is Y+1":      "X is Y + 1",
		"a = b":         "a = b",
		"X =\\= Y+N":    "X =\\= Y + N",
		"2 ^ 3 ^ 4":     "2 ^ 3 ^ 4", // xfy
		"- (1)":         "-1",
		"f(a, (b, c))":  "f(a, ','(b, c))",
		"log(log(x))":   "log(log(x))",
		"20*D1 < 21*D2": "20 * D1 < 21 * D2",
	}
	for src, want := range cases {
		tm := mustTerm(t, tab, src)
		if got := tab.Write(tm); got != want {
			t.Errorf("ParseTerm(%q) wrote %q, want %q", src, got, want)
		}
	}
}

func TestYfxAssociativity(t *testing.T) {
	tab := term.NewTab()
	tm := mustTerm(t, tab, "1-2-3")
	// ((1-2)-3): left arg is the nested struct.
	if tm.Args[0].Kind != term.KStruct {
		t.Fatalf("1-2-3 parsed right-associative: %v", tab.Write(tm))
	}
}

func TestXfyAssociativity(t *testing.T) {
	tab := term.NewTab()
	tm := mustTerm(t, tab, "a, b, c")
	// ','(a, ','(b, c)): right arg nested.
	if tm.Args[1].Kind != term.KStruct {
		t.Fatalf("conjunction parsed left-associative: %v", tab.Write(tm))
	}
}

func TestReadClauses(t *testing.T) {
	tab := term.NewTab()
	src := `
		% derivative of sums
		d(U+V, X, DU+DV) :- !, d(U, X, DU), d(V, X, DV).
		d(X, X, 1) :- !.
		d(_, _, 0).
	`
	clauses, err := ParseClauses(tab, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(clauses) != 3 {
		t.Fatalf("got %d clauses", len(clauses))
	}
	if got := len(clauses[0].Body); got != 3 {
		t.Fatalf("clause 1 body has %d goals", got)
	}
	if clauses[0].Body[0].Fn.Name != tab.Cut {
		t.Fatal("first body goal should be cut")
	}
	if len(clauses[2].Body) != 0 {
		t.Fatal("fact should have empty body")
	}
}

func TestDirectivesAreDropped(t *testing.T) {
	tab := term.NewTab()
	clauses, err := ParseClauses(tab, ":- main.\nfoo(a).\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(clauses) != 1 {
		t.Fatalf("got %d clauses, want 1", len(clauses))
	}
}

func TestParseGoalSharedScope(t *testing.T) {
	tab := term.NewTab()
	goals, err := ParseGoal(tab, "p(X), q(X, Y), r(Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(goals) != 3 {
		t.Fatalf("got %d goals", len(goals))
	}
	if !term.SameVar(goals[0].Args[0], goals[1].Args[0]) {
		t.Fatal("X must be shared across goals")
	}
}

func TestParseErrors(t *testing.T) {
	tab := term.NewTab()
	for _, src := range []string{"f(", "[1, 2", "f(a) g", "'unterminated", `"open`, "1 +", ")"} {
		if _, err := ParseTerm(tab, src); err == nil {
			t.Errorf("ParseTerm(%q): expected error", src)
		}
	}
}

func TestClauseErrors(t *testing.T) {
	tab := term.NewTab()
	for _, src := range []string{"3.", "X :- a.", "p(a) :- q(b)"} {
		if _, err := ParseClauses(tab, src); err == nil {
			t.Errorf("ParseClauses(%q): expected error", src)
		}
	}
}

func TestComments(t *testing.T) {
	tab := term.NewTab()
	clauses, err := ParseClauses(tab, "a. /* block\ncomment */ b. % line\nc.")
	if err != nil {
		t.Fatal(err)
	}
	if len(clauses) != 3 {
		t.Fatalf("got %d clauses", len(clauses))
	}
}

// genTerm builds a random ground-ish term for the write/parse round trip.
func genTerm(r *rand.Rand, depth int, tab *term.Tab) *term.Term {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return term.MkInt(int64(r.Intn(1000)))
		case 1:
			return term.MkAtom(tab.Intern(randomName(r)))
		default:
			return term.NewVar("V" + randomName(r))
		}
	}
	switch r.Intn(4) {
	case 0:
		n := r.Intn(3) + 1
		args := make([]*term.Term, n)
		for i := range args {
			args[i] = genTerm(r, depth-1, tab)
		}
		return term.MkStruct(tab.Func(randomName(r), n), args...)
	case 1:
		n := r.Intn(3)
		elems := make([]*term.Term, n)
		for i := range elems {
			elems[i] = genTerm(r, depth-1, tab)
		}
		return term.MkList(tab, elems, nil)
	default:
		return genTerm(r, 0, tab)
	}
}

func randomName(r *rand.Rand) string {
	letters := "abcdefgh"
	n := r.Intn(5) + 1
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

// equalModVars compares terms treating any two variables as equal when
// they occupy consistent positions.
func equalModVars(a, b *term.Term, env map[*term.VarRef]*term.VarRef) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case term.KVar:
		if prev, ok := env[a.Ref]; ok {
			return prev == b.Ref
		}
		env[a.Ref] = b.Ref
		return true
	case term.KAtom:
		return a.Fn.Name == b.Fn.Name
	case term.KInt:
		return a.Int == b.Int
	case term.KStruct:
		if a.Fn != b.Fn {
			return false
		}
		for i := range a.Args {
			if !equalModVars(a.Args[i], b.Args[i], env) {
				return false
			}
		}
		return true
	}
	return false
}

// TestWriteParseRoundTrip is the parser's core property: parse(write(t))
// is t up to variable renaming.
func TestWriteParseRoundTrip(t *testing.T) {
	tab := term.NewTab()
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		tm := genTerm(r, 3, tab)
		src := tab.Write(tm)
		back, err := ParseTerm(tab, src)
		if err != nil {
			t.Logf("reparse of %q failed: %v", src, err)
			return false
		}
		if !equalModVars(tm, back, make(map[*term.VarRef]*term.VarRef)) {
			t.Logf("round trip changed %q into %q", src, tab.Write(back))
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
