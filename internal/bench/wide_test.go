package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// TestWideProgramLegacyStable pins WideProgram's output against a
// golden captured before the seed plumbing landed: the committed
// BENCH_PR3.json records schedule-invariant counters for wide_256 and
// wide_512, so the seed-0 sources must never drift.
func TestWideProgramLegacyStable(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "wide_1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	got := WideProgram(1).Source
	if got != string(want) {
		t.Fatalf("WideProgram(1) drifted from the pre-seeding golden:\n%s", got)
	}
	if s := WideProgramSeeded(1, 0); s.Source != got || s.Name != "wide_1" || s.Seed != 0 {
		t.Fatal("WideProgramSeeded(n, 0) must reproduce WideProgram(n) exactly")
	}
}

// TestWideProgramSeededDeterministic checks the explicit-seed contract:
// same (families, seed) is byte-identical across calls (no hidden
// package-level generator state), different seeds actually differ, and
// the seed is recorded in the Program for harnesses to print.
func TestWideProgramSeededDeterministic(t *testing.T) {
	a := WideProgramSeeded(4, 7)
	b := WideProgramSeeded(4, 7)
	if a.Source != b.Source {
		t.Fatal("same seed produced different programs")
	}
	if a.Name != "wide_4_s7" || a.Seed != 7 {
		t.Fatalf("seeded program must carry its seed: name=%q seed=%d", a.Name, a.Seed)
	}
	if c := WideProgramSeeded(4, 8); c.Source == a.Source {
		t.Fatal("different seeds produced identical programs")
	}
	if z := WideProgramSeeded(4, 0); z.Source == a.Source {
		t.Fatal("seeded program identical to the legacy one")
	}
}
