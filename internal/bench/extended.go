package bench

// Extended is a second suite beyond the paper's Table 1: programs that
// exercise the optional features (if-then-else, negation), heavier
// arithmetic, and data shapes the PLM subset lacks. They are used by the
// integration and cross-validation tests, not by the Table 1 harness.
var Extended = []Program{
	{
		Name: "primes",
		Source: `
main :- primes(98, _).
primes(Limit, Ps) :- integers(2, Limit, Is), sift(Is, Ps).
integers(Low, High, [Low|Rest]) :-
	Low =< High, !,
	M is Low + 1,
	integers(M, High, Rest).
integers(_, _, []).
sift([], []).
sift([I|Is], [I|Ps]) :- removem(I, Is, New), sift(New, Ps).
removem(_, [], []).
removem(P, [I|Is], Nis) :- I mod P =:= 0, !, removem(P, Is, Nis).
removem(P, [I|Is], [I|Nis]) :- removem(P, Is, Nis).
`,
		Query:       "primes(12, Ps)",
		WantBinding: map[string]string{"Ps": "[2, 3, 5, 7, 11]"},
	},
	{
		Name: "hanoi",
		Source: `
main :- hanoi(10, left, right, center, _).
hanoi(0, _, _, _, []) :- !.
hanoi(N, A, B, C, Moves) :-
	N1 is N - 1,
	hanoi(N1, A, C, B, M1),
	hanoi(N1, C, B, A, M2),
	concat(M1, [mv(A, B)|M2], Moves).
concat([], L, L).
concat([H|T], L, [H|R]) :- concat(T, L, R).
`,
		Query:       "hanoi(2, l, r, c, M)",
		WantBinding: map[string]string{"M": "[mv(l, c), mv(l, r), mv(c, r)]"},
	},
	{
		Name: "fib",
		Source: `
main :- fib(18, _).
fib(N, F) :-
	( N < 2 ->
	    F = N
	;   N1 is N - 1, N2 is N - 2,
	    fib(N1, F1), fib(N2, F2),
	    F is F1 + F2
	).
`,
		Query:       "fib(10, F)",
		WantBinding: map[string]string{"F": "55"},
	},
	{
		Name: "ackermann",
		Source: `
main :- ack(2, 4, _).
ack(M, N, A) :-
	( M =:= 0 -> A is N + 1
	; N =:= 0 -> M1 is M - 1, ack(M1, 1, A)
	; M1 is M - 1, N1 is N - 1, ack(M, N1, A1), ack(M1, A1, A)
	).
`,
		Query:       "ack(2, 3, A)",
		WantBinding: map[string]string{"A": "9"},
	},
	{
		Name: "flattenl",
		Source: `
main :- flattenl([[1, [2, 3]], [4], [], [[5]]], _).
flattenl([], []).
flattenl([H|T], R) :- !, flattenl(H, FH), flattenl(T, FT), concat(FH, FT, R).
flattenl(X, [X]) :- \+ X = [].
concat([], L, L).
concat([H|T], L, [H|R]) :- concat(T, L, R).
`,
		Query:       "flattenl([[1, [2]], [], 3], F)",
		WantBinding: map[string]string{"F": "[1, 2, 3]"},
	},
	{
		Name: "gcd",
		Source: `
main :- gcd(1071, 462, _), gcd(270, 192, _).
gcd(A, 0, A) :- !.
gcd(A, B, G) :- B > 0, R is A mod B, gcd(B, R, G).
`,
		Query:       "gcd(1071, 462, G)",
		WantBinding: map[string]string{"G": "21"},
	},
	{
		Name: "treesort",
		Source: `
main :- treesort([5, 3, 8, 1, 4, 9, 2, 7, 6], _).
treesort(L, S) :- build(L, void, T), walk(T, S, []).
build([], T, T).
build([X|Xs], T0, T) :- insert(X, T0, T1), build(Xs, T1, T).
insert(X, void, tree(void, X, void)).
insert(X, tree(L, Y, R), tree(L1, Y, R)) :- X < Y, !, insert(X, L, L1).
insert(X, tree(L, Y, R), tree(L, Y, R1)) :- insert(X, R, R1).
walk(void, S, S).
walk(tree(L, X, R), S, S0) :- walk(L, S, [X|S1]), walk(R, S1, S0).
`,
		Query:       "treesort([3, 1, 2], S)",
		WantBinding: map[string]string{"S": "[1, 2, 3]"},
	},
}

func init() {
	Extended = append(Extended,
		Program{
			Name: "samsort",
			Source: `
main :- samsort([pair(3, c), pair(1, a), pair(2, b), 9, 4, zz, aa], S), length(S, 7).
samsort([], []).
samsort([X], [X]) :- !.
samsort(L, S) :- halve(L, A, B), samsort(A, SA), samsort(B, SB), merge_ord(SA, SB, S).
halve([], [], []).
halve([X|R], [X|A], B) :- halve(R, B, A).
merge_ord([], L, L) :- !.
merge_ord(L, [], L) :- !.
merge_ord([X|Xs], [Y|Ys], [X|R]) :- X @=< Y, !, merge_ord(Xs, [Y|Ys], R).
merge_ord(Xs, [Y|Ys], [Y|R]) :- merge_ord(Xs, Ys, R).
`,
			Query:       "samsort([b, 2, a, 1, f(x)], S)",
			WantBinding: map[string]string{"S": "[1, 2, a, b, f(x)]"},
		},
		Program{
			Name: "tautology",
			Source: `
main :-
	taut(impl(and(p, q), p)),
	taut(impl(p, or(p, q))),
	taut(or(p, not(p))),
	\+ taut(impl(or(p, q), p)).
taut(F) :- \+ cex(F).
cex(F) :- tv(P), tv(Q), eval(F, P, Q, f).
tv(t).
tv(f).
eval(p, P, _, P).
eval(q, _, Q, Q).
eval(not(F), P, Q, V) :- eval(F, P, Q, V0), negate(V0, V).
eval(and(A, B), P, Q, V) :- eval(A, P, Q, VA), eval(B, P, Q, VB), conj(VA, VB, V).
eval(or(A, B), P, Q, V) :- eval(A, P, Q, VA), eval(B, P, Q, VB), disj(VA, VB, V).
eval(impl(A, B), P, Q, V) :- eval(or(not(A), B), P, Q, V).
negate(t, f).
negate(f, t).
conj(t, t, t) :- !.
conj(_, _, f).
disj(f, f, f) :- !.
disj(_, _, t).
`,
			Query:       "eval(impl(p, q), t, f, V)",
			WantBinding: map[string]string{"V": "f"},
		},
		Program{
			Name: "rewriter",
			Source: `
main :-
	norm(plus(s(0), plus(s(s(0)), s(0))), N1), snat(N1),
	norm(times(s(s(0)), s(s(s(0)))), N2), snat(N2).
rw(plus(0, Y), Y).
rw(plus(s(X), Y), s(plus(X, Y))).
rw(times(0, _), 0).
rw(times(s(X), Y), plus(Y, times(X, Y))).
norm(T, N) :- step(T, T1), !, norm(T1, N).
norm(T, T).
step(T, T1) :- rw(T, T1).
step(T, T1) :- functor(T, F, A), A > 0, step_args(A, T, F, T1).
step_args(N, T, F, T1) :- N > 0, arg(N, T, Arg), step(Arg, Arg1), !, rebuild(T, F, N, Arg1, T1).
step_args(N, T, F, T1) :- N > 1, N1 is N - 1, step_args(N1, T, F, T1).
rebuild(T, F, I, NewArg, T1) :- functor(T, F, A), functor(T1, F, A), copy_args(A, I, T, T1, NewArg).
copy_args(0, _, _, _, _) :- !.
copy_args(N, I, T, T1, New) :- N =:= I, !, arg(N, T1, New), N1 is N - 1, copy_args(N1, I, T, T1, New).
copy_args(N, I, T, T1, New) :- arg(N, T, X), arg(N, T1, X), N1 is N - 1, copy_args(N1, I, T, T1, New).
snat(0).
snat(s(X)) :- snat(X).
`,
			Query:       "norm(plus(s(0), s(0)), N)",
			WantBinding: map[string]string{"N": "s(s(0))"},
		},
		Program{
			Name: "peano",
			Source: `
main :- mul(s(s(s(0))), s(s(s(s(0)))), M), len(M).
add(0, Y, Y).
add(s(X), Y, s(Z)) :- add(X, Y, Z).
mul(0, _, 0).
mul(s(X), Y, Z) :- mul(X, Y, Z1), add(Z1, Y, Z).
len(0).
len(s(N)) :- len(N).
`,
			Query:       "add(s(s(0)), s(0), R)",
			WantBinding: map[string]string{"R": "s(s(s(0)))"},
		},
	)
}

// AllPrograms returns the Table 1 suite followed by the extended suite.
func AllPrograms() []Program {
	out := make([]Program, 0, len(Programs)+len(Extended))
	out = append(out, Programs...)
	out = append(out, Extended...)
	return out
}

// ExtendedByName returns the named extended benchmark.
func ExtendedByName(name string) (Program, bool) {
	for _, p := range Extended {
		if p.Name == name {
			return p, true
		}
	}
	return Program{}, false
}
