package bench

import (
	"fmt"
	"math/rand"
	"strings"
)

// WideProgram generates a synthetic benchmark with the given number of
// independent predicate families, for scaling experiments on the
// fixpoint engines (BenchmarkAnalyzeParallel). Each family combines a
// renamed copy of the naive-reverse/length/check cluster — recursive
// predicates whose analysis produces realistic list-typed calling
// patterns — with a fan of calls to a family-local dispatch predicate,
// one distinct functor per call. Atoms all abstract to the same `atom`
// element and the depth-k restriction caps list-shape diversity, but
// distinct functors stay distinct under abstraction, so the fan gives
// the table one calling pattern per functor: the extension table grows
// linearly with the family count while each entry's clause work stays
// constant. That is the regime where the table representation (linear
// scan, hash, sharded hash) dominates the analysis cost. Wide programs
// are deliberately not part of Programs or Extended: they measure
// engine scaling, not the paper's Table 1.
func WideProgram(families int) Program {
	return WideProgramSeeded(families, 0)
}

// WideProgramSeeded is WideProgram with an explicit randomization seed.
// Seed 0 reproduces WideProgram's fixed output byte for byte (the
// committed BENCH_PR3.json depends on its schedule-invariant counters).
// A non-zero seed perturbs the per-family shape — fan width, seed-list
// contents, and dispatch-argument structure — from a rand.Rand local to
// this call; there is deliberately no package-level generator state, so
// two calls with the same (families, seed) are always identical. The
// seed is recorded in the returned Program so harnesses can print it
// and failures reproduce.
func WideProgramSeeded(families int, seed int64) Program {
	var r *rand.Rand
	if seed != 0 {
		r = rand.New(rand.NewSource(seed))
	}
	// pick returns the deterministic legacy value when unseeded and a
	// uniform draw from [lo, hi] otherwise.
	pick := func(legacy, lo, hi int) int {
		if r == nil {
			return legacy
		}
		return lo + r.Intn(hi-lo+1)
	}
	atoms := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var b strings.Builder
	mains := make([]string, families)
	for i := 0; i < families; i++ {
		fan := pick(24, 12, 32)
		seedList := "[a,b,c,d,e,f]"
		if r != nil {
			elems := make([]string, pick(6, 3, 8))
			for j := range elems {
				elems[j] = atoms[r.Intn(len(atoms))]
			}
			seedList = "[" + strings.Join(elems, ",") + "]"
		}
		goals := []string{
			fmt.Sprintf("p%[1]d_rev(%[2]s, R), p%[1]d_len(R, N), p%[1]d_check(N, R)", i, seedList),
		}
		for f := 0; f < fan; f++ {
			arg := "[b]"
			if r != nil {
				// Vary the second dispatch argument's shape; each option
				// abstracts to a distinct element, so the per-functor
				// calling patterns stay distinct across shapes too.
				switch r.Intn(3) {
				case 0:
					arg = "[b]"
				case 1:
					arg = atoms[r.Intn(len(atoms))]
				default:
					arg = fmt.Sprintf("%d", r.Intn(100))
				}
			}
			goals = append(goals, fmt.Sprintf("p%d_q(k%d(a, %s))", i, f, arg))
		}
		fmt.Fprintf(&b, `
p%[1]d_main :- %[2]s.
p%[1]d_rev([], []).
p%[1]d_rev([X|T], R) :- p%[1]d_rev(T, RT), p%[1]d_app(RT, [X], R).
p%[1]d_app([], L, L).
p%[1]d_app([X|L1], L2, [X|L3]) :- p%[1]d_app(L1, L2, L3).
p%[1]d_len([], 0).
p%[1]d_len([_|T], N) :- p%[1]d_len(T, M), N is M+1.
p%[1]d_check(0, _).
p%[1]d_check(N, L) :- N > 0, p%[1]d_use(L).
p%[1]d_use(_).
p%[1]d_q(_).
`, i, strings.Join(goals, ", "))
		mains[i] = fmt.Sprintf("p%d_main", i)
	}
	fmt.Fprintf(&b, "\nmain :- %s.\n", strings.Join(mains, ", "))
	name := fmt.Sprintf("wide_%d", families)
	if seed != 0 {
		name = fmt.Sprintf("wide_%d_s%d", families, seed)
	}
	return Program{
		Name:   name,
		Source: b.String(),
		Seed:   seed,
	}
}
