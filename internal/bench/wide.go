package bench

import (
	"fmt"
	"strings"
)

// WideProgram generates a synthetic benchmark with the given number of
// independent predicate families, for scaling experiments on the
// fixpoint engines (BenchmarkAnalyzeParallel). Each family combines a
// renamed copy of the naive-reverse/length/check cluster — recursive
// predicates whose analysis produces realistic list-typed calling
// patterns — with a fan of calls to a family-local dispatch predicate,
// one distinct functor per call. Atoms all abstract to the same `atom`
// element and the depth-k restriction caps list-shape diversity, but
// distinct functors stay distinct under abstraction, so the fan gives
// the table one calling pattern per functor: the extension table grows
// linearly with the family count while each entry's clause work stays
// constant. That is the regime where the table representation (linear
// scan, hash, sharded hash) dominates the analysis cost. Wide programs
// are deliberately not part of Programs or Extended: they measure
// engine scaling, not the paper's Table 1.
func WideProgram(families int) Program {
	const fan = 24
	var b strings.Builder
	mains := make([]string, families)
	for i := 0; i < families; i++ {
		goals := []string{
			fmt.Sprintf("p%[1]d_rev([a,b,c,d,e,f], R), p%[1]d_len(R, N), p%[1]d_check(N, R)", i),
		}
		for f := 0; f < fan; f++ {
			goals = append(goals, fmt.Sprintf("p%d_q(k%d(a, [b]))", i, f))
		}
		fmt.Fprintf(&b, `
p%[1]d_main :- %[2]s.
p%[1]d_rev([], []).
p%[1]d_rev([X|T], R) :- p%[1]d_rev(T, RT), p%[1]d_app(RT, [X], R).
p%[1]d_app([], L, L).
p%[1]d_app([X|L1], L2, [X|L3]) :- p%[1]d_app(L1, L2, L3).
p%[1]d_len([], 0).
p%[1]d_len([_|T], N) :- p%[1]d_len(T, M), N is M+1.
p%[1]d_check(0, _).
p%[1]d_check(N, L) :- N > 0, p%[1]d_use(L).
p%[1]d_use(_).
p%[1]d_q(_).
`, i, strings.Join(goals, ", "))
		mains[i] = fmt.Sprintf("p%d_main", i)
	}
	fmt.Fprintf(&b, "\nmain :- %s.\n", strings.Join(mains, ", "))
	return Program{
		Name:   fmt.Sprintf("wide_%d", families),
		Source: b.String(),
	}
}
