// Package bench embeds the benchmark programs used in the paper's
// evaluation — the subset of the Berkeley PLM benchmark suite listed in
// Table 1 — and provides the measurement harness that regenerates the
// paper's tables.
//
// The sources are the classic Warren/PLM versions (deriv, tak, nreverse,
// qsort, query, zebra, serialise, queens_8), each with a main/0 entry
// point as in the original suite. They exercise, between them: deep cut
// and neck cut, arithmetic, symbolic structure building, list traversal,
// accumulator pairs, a fact database with indexing, and heavy
// backtracking (zebra).
package bench

// Program describes one benchmark.
type Program struct {
	Name string
	// Source is the Prolog text, ending with a main/0 entry point.
	Source string
	// Query is a goal whose answer substitution the soundness tests
	// compare against the analysis; empty when main/0 is enough.
	Query string
	// WantBinding maps a query variable to its expected value, written in
	// canonical form; used by the concrete-machine integration tests.
	WantBinding map[string]string
	// Seed is the randomization seed for generated programs
	// (WideProgramSeeded); zero for the fixed Table 1 sources and for
	// the legacy deterministic wide programs. Harnesses print it so a
	// failure on a generated workload can be reproduced.
	Seed int64
}

// derivBody is the Warren symbolic-differentiation program shared by the
// four deriv benchmarks (log10, ops8, times10, divide10).
const derivBody = `
d(U+V, X, DU+DV) :- !, d(U, X, DU), d(V, X, DV).
d(U-V, X, DU-DV) :- !, d(U, X, DU), d(V, X, DV).
d(U*V, X, DU*V+U*DV) :- !, d(U, X, DU), d(V, X, DV).
d(U/V, X, (DU*V-U*DV)/(V*V)) :- !, d(U, X, DU), d(V, X, DV).
d(U^N, X, DU*N*U^N1) :- !, integer(N), N1 is N-1, d(U, X, DU).
d(-U, X, -DU) :- !, d(U, X, DU).
d(exp(U), X, exp(U)*DU) :- !, d(U, X, DU).
d(log(U), X, DU/U) :- !, d(U, X, DU).
d(X, X, 1) :- !.
d(_, _, 0).
`

// Programs lists the Table 1 benchmarks in the paper's order.
var Programs = []Program{
	{
		Name: "log10",
		Source: derivBody + `
main :- d(log(log(log(log(log(log(log(log(log(log(x)))))))))), x, _).
`,
		Query:       "d(log(log(x)), x, D)",
		WantBinding: map[string]string{"D": "1 / x / log(x)"},
	},
	{
		Name: "ops8",
		Source: derivBody + `
main :- d((x+1)*((x^2+2)*(x^3+3)), x, _).
`,
	},
	{
		Name: "times10",
		Source: derivBody + `
main :- d(((((((((x*x)*x)*x)*x)*x)*x)*x)*x)*x, x, _).
`,
	},
	{
		Name: "divide10",
		Source: derivBody + `
main :- d(((((((((x/x)/x)/x)/x)/x)/x)/x)/x)/x, x, _).
`,
	},
	{
		Name: "tak",
		Source: `
tak(X, Y, Z, A) :- X =< Y, !, Z = A.
tak(X, Y, Z, A) :-
	X1 is X - 1, Y1 is Y - 1, Z1 is Z - 1,
	tak(X1, Y, Z, A1), tak(Y1, Z, X, A2), tak(Z1, X, Y, A3),
	tak(A1, A2, A3, A).
main :- tak(18, 12, 6, _).
`,
		Query:       "tak(8, 4, 0, A)",
		WantBinding: map[string]string{"A": "1"},
	},
	{
		Name: "nreverse",
		Source: `
nreverse([X|L0], L) :- nreverse(L0, L1), concatenate(L1, [X], L).
nreverse([], []).
concatenate([X|L1], L2, [X|L3]) :- concatenate(L1, L2, L3).
concatenate([], L, L).
main :- nreverse([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,
                  16,17,18,19,20,21,22,23,24,25,26,27,28,29,30], _).
`,
		Query:       "nreverse([1,2,3], R)",
		WantBinding: map[string]string{"R": "[3, 2, 1]"},
	},
	{
		Name: "qsort",
		Source: `
qsort([X|L], R, R0) :-
	partition(L, X, L1, L2),
	qsort(L2, R1, R0),
	qsort(L1, R, [X|R1]).
qsort([], R, R).
partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
partition([], _, [], []).
main :- qsort([27,74,17,33,94,18,46,83,65,2,
               32,53,28,85,99,47,28,82,6,11,
               55,29,39,81,90,37,10,0,66,51,
               7,21,85,27,31,63,75,4,95,99,
               11,28,61,74,18,92,40,53,59,8], _, []).
`,
		Query:       "qsort([3,1,2], R, [])",
		WantBinding: map[string]string{"R": "[1, 2, 3]"},
	},
	{
		Name: "query",
		Source: `
main :- query(_).
query([C1, D1, C2, D2]) :-
	density(C1, D1), density(C2, D2),
	D1 > D2,
	20 * D1 < 21 * D2.
density(C, D) :- pop(C, P), area(C, A), D is P * 100 // A.
pop(china, 8250).
pop(india, 5863).
pop(ussr, 2521).
pop(usa, 2119).
pop(indonesia, 1276).
pop(japan, 1097).
pop(brazil, 1042).
pop(bangladesh, 750).
pop(pakistan, 682).
pop(w_germany, 620).
pop(nigeria, 613).
pop(mexico, 581).
pop(uk, 559).
pop(italy, 554).
pop(france, 525).
pop(philippines, 415).
pop(thailand, 410).
pop(turkey, 383).
pop(egypt, 364).
pop(spain, 352).
pop(poland, 337).
pop(s_korea, 335).
pop(iran, 320).
pop(ethiopia, 272).
pop(argentina, 251).
area(china, 3380).
area(india, 1139).
area(ussr, 8708).
area(usa, 3609).
area(indonesia, 570).
area(japan, 148).
area(brazil, 3288).
area(bangladesh, 55).
area(pakistan, 311).
area(w_germany, 96).
area(nigeria, 373).
area(mexico, 764).
area(uk, 86).
area(italy, 116).
area(france, 213).
area(philippines, 90).
area(thailand, 200).
area(turkey, 296).
area(egypt, 386).
area(spain, 190).
area(poland, 121).
area(s_korea, 37).
area(iran, 628).
area(ethiopia, 350).
area(argentina, 1080).
`,
	},
	{
		Name: "zebra",
		Source: `
main :- zebra(_, _, _).
zebra(Houses, Water, Zebra) :-
	Houses = [house(_, norwegian, _, _, _), _,
	          house(_, _, _, milk, _), _, _],
	member(house(red, englishman, _, _, _), Houses),
	member(house(_, spaniard, dog, _, _), Houses),
	member(house(green, _, _, coffee, _), Houses),
	member(house(_, ukrainian, _, tea, _), Houses),
	right_of(house(green, _, _, _, _), house(ivory, _, _, _, _), Houses),
	member(house(_, _, snails, _, winston), Houses),
	member(house(yellow, _, _, _, kools), Houses),
	next_to(house(_, _, _, _, chesterfields), house(_, _, fox, _, _), Houses),
	next_to(house(_, _, _, _, kools), house(_, _, horse, _, _), Houses),
	member(house(_, _, _, orange_juice, lucky_strike), Houses),
	member(house(_, japanese, _, _, parliaments), Houses),
	next_to(house(_, norwegian, _, _, _), house(blue, _, _, _, _), Houses),
	member(house(_, Water, _, water, _), Houses),
	member(house(_, Zebra, zebra, _, _), Houses).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
right_of(R, L, [L, R|_]).
right_of(R, L, [_|T]) :- right_of(R, L, T).
next_to(X, Y, L) :- right_of(X, Y, L).
next_to(X, Y, L) :- right_of(Y, X, L).
`,
		Query:       "zebra(H, W, Z)",
		WantBinding: map[string]string{"W": "norwegian", "Z": "japanese"},
	},
	{
		Name: "serialise",
		Source: `
main :- serialise("ABLE WAS I ERE I SAW ELBA", _).
serialise(L, R) :- pairlists(L, R, A), arrange(A, T), numbered(T, 1, _).
pairlists([X|L], [Y|R], [pair(X, Y)|A]) :- pairlists(L, R, A).
pairlists([], [], []).
arrange([X|L], tree(T1, X, T2)) :-
	split(L, X, L1, L2),
	arrange(L1, T1),
	arrange(L2, T2).
arrange([], void).
split([X|L], X, L1, L2) :- !, split(L, X, L1, L2).
split([X|L], Y, [X|L1], L2) :- before(X, Y), !, split(L, Y, L1, L2).
split([X|L], Y, L1, [X|L2]) :- before(Y, X), !, split(L, Y, L1, L2).
split([], _, [], []).
before(pair(X1, _), pair(X2, _)) :- X1 < X2.
numbered(tree(T1, pair(_, N1), T2), N0, N) :-
	numbered(T1, N0, N1),
	N2 is N1 + 1,
	numbered(T2, N2, N).
numbered(void, N, N).
`,
	},
	{
		Name: "queens_8",
		Source: `
main :- queens(8, _).
queens(N, Qs) :- range(1, N, Ns), queens(Ns, [], Qs).
queens([], Qs, Qs).
queens(UnplacedQs, SafeQs, Qs) :-
	selectq(UnplacedQs, UnplacedQs1, Q),
	not_attack(SafeQs, Q),
	queens(UnplacedQs1, [Q|SafeQs], Qs).
not_attack(Xs, X) :- not_attack(Xs, X, 1).
not_attack([], _, _).
not_attack([Y|Ys], X, N) :-
	X =\= Y + N, X =\= Y - N,
	N1 is N + 1,
	not_attack(Ys, X, N1).
selectq([X|Xs], Xs, X).
selectq([Y|Ys], [Y|Zs], X) :- selectq(Ys, Zs, X).
range(N, N, [N]) :- !.
range(M, N, [M|Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).
`,
		Query:       "queens(4, Qs)",
		WantBinding: map[string]string{"Qs": "[3, 1, 4, 2]"},
	},
}

// ByName returns the named benchmark.
func ByName(name string) (Program, bool) {
	for _, p := range Programs {
		if p.Name == name {
			return p, true
		}
	}
	return Program{}, false
}

// Names lists benchmark names in Table 1 order.
func Names() []string {
	out := make([]string, len(Programs))
	for i, p := range Programs {
		out[i] = p.Name
	}
	return out
}
