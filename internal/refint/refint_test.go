package refint

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"awam/internal/bench"
	"awam/internal/compiler"
	"awam/internal/machine"
	"awam/internal/parser"
	"awam/internal/term"
)

// machineSolutions enumerates up to max solutions of goalSrc on the WAM,
// rendering bindings in variable-name order.
func machineSolutions(t *testing.T, src, goalSrc string, max int) ([]string, error) {
	t.Helper()
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, src)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(mod)
	m.MaxSteps = 1_000_000
	sol, err := m.Solve(goalSrc)
	if err != nil {
		return nil, err
	}
	var out []string
	for sol.OK && len(out) < max {
		bindings := sol.Bindings()
		names := make([]string, 0, len(bindings))
		for n := range bindings {
			names = append(names, n)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, n := range names {
			parts[i] = n + "=" + tab.Write(bindings[n])
		}
		out = append(out, strings.Join(parts, ","))
		ok, err := sol.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	return out, nil
}

// refintSolutions does the same on the reference interpreter.
func refintSolutions(t *testing.T, src, goalSrc string, max int) ([]string, error) {
	t.Helper()
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, src)
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := compiler.ExpandedProgram(tab, prog)
	if err != nil {
		t.Fatal(err)
	}
	goals, err := parser.ParseGoal(tab, goalSrc)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	var vars []*term.Term
	for _, g := range goals {
		for _, v := range (&term.Clause{Head: term.MkAtom(tab.True), Body: []*term.Term{g}}).Vars() {
			if !seen[v.Ref.Name] {
				seen[v.Ref.Name] = true
				vars = append(vars, v)
			}
		}
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Ref.Name < vars[j].Ref.Name })
	in := New(tab, expanded)
	in.MaxSteps = 1_000_000
	var out []string
	_, err = in.Solve(goals, func() bool {
		parts := make([]string, len(vars))
		for i, v := range vars {
			parts[i] = v.Ref.Name + "=" + tab.Write(in.ReadBinding(v))
		}
		out = append(out, strings.Join(parts, ","))
		return len(out) < max
	})
	return out, err
}

// diff compares the two engines on one (program, goal) pair; solutions
// must agree in order and content (variables render up to renaming, so
// only variable-free answers are compared strictly).
func diff(t *testing.T, src, goal string, max int) {
	t.Helper()
	ms, errM := machineSolutions(t, src, goal, max)
	rs, errR := refintSolutions(t, src, goal, max)
	if (errM == nil) != (errR == nil) {
		t.Fatalf("error disagreement on %q: machine=%v refint=%v", goal, errM, errR)
	}
	if errM != nil {
		return
	}
	if len(ms) != len(rs) {
		t.Fatalf("solution counts differ on %q: machine %d %v vs refint %d %v",
			goal, len(ms), ms, len(rs), rs)
	}
	for i := range ms {
		if normalizeVars(ms[i]) != normalizeVars(rs[i]) {
			t.Fatalf("solution %d differs on %q:\n  machine: %s\n  refint:  %s",
				i, goal, ms[i], rs[i])
		}
	}
}

// normalizeVars replaces engine-specific fresh-variable names (_123,
// _G7) with a counter in order of appearance, making renderings
// comparable across engines.
func normalizeVars(s string) string {
	var b strings.Builder
	next := 0
	names := make(map[string]int)
	i := 0
	for i < len(s) {
		if s[i] == '_' {
			j := i + 1
			for j < len(s) && (s[j] == 'G' || (s[j] >= '0' && s[j] <= '9')) {
				j++
			}
			name := s[i:j]
			id, ok := names[name]
			if !ok {
				id = next
				next++
				names[name] = id
			}
			fmt.Fprintf(&b, "_v%d", id)
			i = j
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

func TestRefintBasics(t *testing.T) {
	src := `
		app([], L, L).
		app([H|T], L, [H|R]) :- app(T, L, R).
	`
	diff(t, src, "app([1,2], [3], R)", 10)
	diff(t, src, "app(A, B, [1,2,3])", 10)
	diff(t, src, "app([1], [2], [3])", 10) // fails in both
}

func TestRefintCut(t *testing.T) {
	src := `
		max(X, Y, X) :- X >= Y, !.
		max(_, Y, Y).
		first(X, [X|_]) :- !.
		first(X, [_|T]) :- first(X, T).
		once_member(X, [X|_]) :- !.
		once_member(X, [_|T]) :- once_member(X, T).
	`
	diff(t, src, "max(3, 2, M)", 10)
	diff(t, src, "max(1, 2, M)", 10)
	diff(t, src, "first(F, [a,b,c])", 10)
	diff(t, src, "once_member(X, [p,q,r])", 10)
}

func TestRefintDeepCutAndArith(t *testing.T) {
	src := `
		classify(X, small) :- X < 10, !.
		classify(X, big) :- X >= 10.
		range(N, N, [N]) :- !.
		range(M, N, [M|R]) :- M < N, M1 is M + 1, range(M1, N, R).
	`
	diff(t, src, "classify(5, C)", 10)
	diff(t, src, "classify(50, C)", 10)
	diff(t, src, "range(1, 5, L)", 10)
}

func TestRefintControlConstructs(t *testing.T) {
	src := `
		sign(X, neg) :- X < 0.
		sign(X, S) :- \+ X < 0, (X =:= 0 -> S = zero ; S = pos).
		pick(X) :- (X = a ; X = b).
	`
	diff(t, src, "sign(-3, S)", 10)
	diff(t, src, "sign(0, S)", 10)
	diff(t, src, "sign(9, S)", 10)
	diff(t, src, "pick(P)", 10)
}

// TestRefintBenchmarkQueries: the WAM and the reference interpreter
// agree on every benchmark query of both suites.
func TestRefintBenchmarkQueries(t *testing.T) {
	for _, p := range bench.AllPrograms() {
		if p.Query == "" {
			continue
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			diff(t, p.Source, p.Query, 5)
		})
	}
}

// TestRefintDifferentialFuzz generates random logic programs (facts,
// recursive rules, random cuts) and checks the two engines produce the
// same solutions in the same order.
func TestRefintDifferentialFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(314))
	consts := []string{"a", "b", "c"}
	const trials = 120
	for trial := 0; trial < trials; trial++ {
		var b strings.Builder
		// Random edge facts.
		for i := 0; i < 2+r.Intn(5); i++ {
			fmt.Fprintf(&b, "e(%s, %s).\n", consts[r.Intn(3)], consts[r.Intn(3)])
		}
		// A unary classification with optional cut.
		cut1 := ""
		if r.Intn(2) == 0 {
			cut1 = "!, "
		}
		fmt.Fprintf(&b, "n(%s) :- %strue.\nn(%s).\n", consts[r.Intn(3)], cut1, consts[r.Intn(3)])
		// Bounded path search (depth counter keeps both engines finite).
		b.WriteString("p(X, Y, 0) :- e(X, Y).\n")
		b.WriteString("p(X, Z, s(D)) :- e(X, Y), p(Y, Z, D).\n")
		// A rule mixing the pieces, sometimes with a cut.
		cut2 := ""
		if r.Intn(2) == 0 {
			cut2 = "!, "
		}
		fmt.Fprintf(&b, "q(X, Z) :- e(X, Y), %sn(Y), e(Y, Z).\n", cut2)
		src := b.String()
		goals := []string{
			"e(X, Y)",
			"n(X)",
			"p(a, X, s(s(0)))",
			fmt.Sprintf("p(%s, %s, D)", consts[r.Intn(3)], consts[r.Intn(3)]),
			"q(X, Z)",
		}
		goal := goals[r.Intn(len(goals))]
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("trial %d panicked on %q:\n%s\n%v", trial, goal, src, rec)
				}
			}()
			diff(t, src, goal, 20)
		}()
	}
}

// TestRefintOrderBuiltins: standard order and length/2 agree between
// the machine and the reference interpreter.
func TestRefintOrderBuiltins(t *testing.T) {
	src := `
		msort([], []).
		msort([X], [X]) :- !.
		msort(L, S) :- split(L, A, B), msort(A, SA), msort(B, SB), merge(SA, SB, S).
		split([], [], []).
		split([X|R], [X|A], B) :- split(R, B, A).
		merge([], L, L) :- !.
		merge(L, [], L) :- !.
		merge([X|Xs], [Y|Ys], [X|R]) :- X @=< Y, !, merge(Xs, [Y|Ys], R).
		merge(Xs, [Y|Ys], [Y|R]) :- merge(Xs, Ys, R).
	`
	diff(t, src, "msort([banana, apple, cherry], S)", 5)
	diff(t, src, "msort([f(2), f(1), a, 10, 2, g(x,y)], S)", 5)
	diff(t, src, "compare(O, f(1), f(2))", 5)
	diff(t, src, "compare(O, abc, abd)", 5)
	diff(t, src, "compare(O, 3, 3)", 5)
	diff(t, src, "a @< b, 1 @< a, 1 @< f(x), b @> a, c @>= c", 5)
	diff(t, src, "length([a,b,c], N)", 5)
	diff(t, src, "length(L, 3)", 5)
	diff(t, src, "length([x|T], 4)", 5)
	diff(t, src, "length([a|b], N)", 5) // improper list fails
}
