package refint

import (
	"strings"
	"testing"
)

// builtinSrc is a minimal program so the goal-only builtin tests have
// something to compile; the tests never call it.
const builtinSrc = "id(X, X).\n"

// runBuiltin evaluates a single goal against builtinSrc on the
// reference interpreter and returns the rendered solutions.
func runBuiltin(t *testing.T, goal string, max int) ([]string, error) {
	t.Helper()
	return refintSolutions(t, builtinSrc, goal, max)
}

// TestTermCompareRanks drives the standard order of terms through the
// @</@=</@>/@>= builtins: Var < Int < Atom < Struct, integers by value,
// atoms alphabetically, structures by arity then name then arguments,
// and variables by creation order.
func TestTermCompareRanks(t *testing.T) {
	cases := []struct {
		goal string
		want bool
	}{
		// Rank boundaries.
		{"X @< 1", true},         // var < int
		{"X @< a", true},         // var < atom
		{"X @< f(a)", true},      // var < struct
		{"1 @< a", true},         // int < atom
		{"1 @< f(a)", true},      // int < struct
		{"a @< f(a)", true},      // atom < struct
		{"f(a) @< a", false},     // struct not below atom
		{"a @< 1", false},        // atom not below int
		{"1 @< X, X = 2", false}, // int not below var
		// Within-rank: integers by value, atoms alphabetically.
		{"1 @< 2", true},
		{"2 @< 1", false},
		{"-3 @< 0", true},
		{"abc @< abd", true},
		{"abd @< abc", false},
		{"a @=< a", true},
		{"7 @>= 7", true},
		{"b @> a", true},
		// Structures: arity first, then name, then args left to right.
		{"f(a) @< g(a, b)", true},
		{"h(a) @< g(a, b)", true}, // arity dominates name (h > g)
		{"g(a, b) @< h(a)", false},
		{"f(a) @< g(a)", true}, // same arity: name order
		{"g(a) @< f(a)", false},
		{"f(a, 1) @< f(a, 2)", true}, // same functor: args left to right
		{"f(a, 2) @< f(a, 1)", false},
		{"f(b, 1) @< f(a, 2)", false}, // first arg decides before second
		// Variables order by creation (first-access) sequence: the first
		// conjunct touches X then Y, so X's serial is lower.
		{"X @< Y", true},
		{"Y @< X", true}, // Y is touched (hence numbered) first here
		{"X @< Y, Y @> X", true},
	}
	for _, c := range cases {
		sols, err := runBuiltin(t, c.goal, 2)
		if err != nil {
			t.Fatalf("%q: unexpected error %v", c.goal, err)
		}
		if got := len(sols) > 0; got != c.want {
			t.Errorf("%q = %v, want %v", c.goal, got, c.want)
		}
	}
}

// TestCompare3 pins compare/3's order-atom answers.
func TestCompare3(t *testing.T) {
	cases := []struct {
		goal string
		want string // rendered first solution
	}{
		{"compare(O, 1, 2)", "O=<"},
		{"compare(O, 2, 1)", "O=>"},
		{"compare(O, f(x), f(x))", "O=="}, // the order atom = renders after "O="
		{"compare(O, X, 1)", "O=<,X=X"},   // X stays unbound and renders as itself
		{"compare(O, f(1, 1), f(1, 2))", "O=<"},
		{"compare(O, g(a), f(a, a))", "O=<"},
	}
	for _, c := range cases {
		sols, err := runBuiltin(t, c.goal, 2)
		if err != nil {
			t.Fatalf("%q: unexpected error %v", c.goal, err)
		}
		if len(sols) != 1 || sols[0] != c.want {
			t.Errorf("%q = %v, want [%s]", c.goal, sols, c.want)
		}
	}
}

// TestFunctor3 covers both directions of functor/3 and its typed error
// paths.
func TestFunctor3(t *testing.T) {
	cases := []struct {
		goal    string
		want    []string // nil means failure without error
		wantErr string   // substring of the expected error
	}{
		// Decomposition: structs, atoms, integers.
		{goal: "functor(f(a, b), N, A)", want: []string{"A=2,N=f"}},
		{goal: "functor(foo, N, A)", want: []string{"A=0,N=foo"}},
		{goal: "functor(42, N, A)", want: []string{"A=0,N=42"}},
		{goal: "functor([a], N, A)", want: []string{"A=2,N=."}},
		// Construction.
		{goal: "functor(T, f, 2), arg(1, T, a), arg(2, T, b)", want: []string{"T=f(a, b)"}},
		{goal: "functor(T, foo, 0)", want: []string{"T=foo"}},
		{goal: "functor(T, 42, 0)", want: []string{"T=42"}},
		// Checking mode.
		{goal: "functor(f(a), f, 1)", want: []string{""}},
		{goal: "functor(f(a), g, 1)", want: nil},
		{goal: "functor(f(a), f, 2)", want: nil},
		// Errors.
		{goal: "functor(T, f, bar)", wantErr: "functor/3 arity not an integer"},
		{goal: "functor(T, f, A)", wantErr: "functor/3 arity not an integer"},
		{goal: "functor(T, 3, 1)", wantErr: "functor/3 name not an atom"},
		{goal: "functor(T, N, 2)", wantErr: "functor/3 name not an atom"},
	}
	for _, c := range cases {
		sols, err := runBuiltin(t, c.goal, 2)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("%q: error = %v, want substring %q", c.goal, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%q: unexpected error %v", c.goal, err)
		}
		if len(sols) != len(c.want) {
			t.Errorf("%q = %v, want %v", c.goal, sols, c.want)
			continue
		}
		for i := range sols {
			if sols[i] != c.want[i] {
				t.Errorf("%q solution %d = %q, want %q", c.goal, i, sols[i], c.want[i])
			}
		}
	}
}

// TestArg3 covers arg/3's success, silent-failure, and error paths.
func TestArg3(t *testing.T) {
	cases := []struct {
		goal    string
		want    []string
		wantErr string
	}{
		{goal: "arg(1, f(a, b), X)", want: []string{"X=a"}},
		{goal: "arg(2, f(a, b), X)", want: []string{"X=b"}},
		{goal: "arg(0, f(a, b), X)", want: nil},                     // out of range below
		{goal: "arg(3, f(a, b), X)", want: nil},                     // out of range above
		{goal: "arg(-1, f(a), X)", want: nil},                       // negative index
		{goal: "arg(1, foo, X)", want: nil},                         // atoms have no args
		{goal: "arg(1, 42, X)", want: nil},                          // nor integers
		{goal: "arg(1, f(Y), X), X = c", want: []string{"X=c,Y=c"}}, // arg aliases
		{goal: "arg(N, f(a), X)", wantErr: "arg/3 index not an integer"},
		{goal: "arg(foo, f(a), X)", wantErr: "arg/3 index not an integer"},
	}
	for _, c := range cases {
		sols, err := runBuiltin(t, c.goal, 2)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("%q: error = %v, want substring %q", c.goal, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%q: unexpected error %v", c.goal, err)
		}
		if len(sols) != len(c.want) {
			t.Errorf("%q = %v, want %v", c.goal, sols, c.want)
			continue
		}
		for i := range sols {
			if sols[i] != c.want[i] {
				t.Errorf("%q solution %d = %q, want %q", c.goal, i, sols[i], c.want[i])
			}
		}
	}
}

// TestArithmetic pins is/2 evaluation — including the mod/rem sign
// conventions and shifts — and every typed error path of eval.
func TestArithmetic(t *testing.T) {
	cases := []struct {
		goal    string
		want    string // rendered first solution; "" means check error
		wantErr string
	}{
		{goal: "X is 2 + 3 * 4", want: "X=14"},
		{goal: "X is abs(-5)", want: "X=5"},
		{goal: "X is -(5)", want: "X=-5"},
		{goal: "X is min(2, 3)", want: "X=2"},
		{goal: "X is max(2, 3)", want: "X=3"},
		{goal: "X is 7 // 2", want: "X=3"},
		{goal: "X is -7 // 2", want: "X=-3"}, // Go truncating division
		{goal: "X is -3 mod 5", want: "X=2"}, // mod follows the divisor's sign
		{goal: "X is 3 mod -5", want: "X=-2"},
		{goal: "X is -3 rem 5", want: "X=-3"}, // rem follows the dividend's sign
		{goal: "X is 2 << 3", want: "X=16"},
		{goal: "X is 17 >> 2", want: "X=4"},
		// Errors: unbound, non-arithmetic atoms, unknown functors, zero
		// divisors. Errors inside nested subterms surface too.
		{goal: "X is Y", wantErr: "arithmetic on unbound variable"},
		{goal: "X is 1 + Y", wantErr: "arithmetic on unbound variable"},
		{goal: "X is foo", wantErr: "atom foo is not arithmetic"},
		{goal: "X is foo(1)", wantErr: "unknown arithmetic functor foo/1"},
		{goal: "X is foo(1, 2)", wantErr: "unknown arithmetic functor foo/2"},
		{goal: "X is 1 / 0", wantErr: "division by zero"},
		{goal: "X is 1 // 0", wantErr: "division by zero"},
		{goal: "X is 1 mod 0", wantErr: "mod by zero"},
		{goal: "X is 1 rem 0", wantErr: "rem by zero"},
		{goal: "X is 2 + 3 / (1 - 1)", wantErr: "division by zero"},
		// Comparison builtins share eval and its errors.
		{goal: "1 < foo", wantErr: "atom foo is not arithmetic"},
		{goal: "Y =:= 1", wantErr: "arithmetic on unbound variable"},
	}
	for _, c := range cases {
		sols, err := runBuiltin(t, c.goal, 2)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("%q: error = %v, want substring %q", c.goal, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%q: unexpected error %v", c.goal, err)
		}
		if len(sols) != 1 || sols[0] != c.want {
			t.Errorf("%q = %v, want [%s]", c.goal, sols, c.want)
		}
	}
}

// TestLength2Errors pins length/2's partial-list error path (the happy
// paths are covered by the machine-differential tests).
func TestLength2Errors(t *testing.T) {
	for _, goal := range []string{"length([a|T], N)", "length(L, N)"} {
		_, err := runBuiltin(t, goal, 2)
		if err == nil || !strings.Contains(err.Error(), "length/2 with partial list needs a bound length") {
			t.Errorf("%q: error = %v, want partial-list error", goal, err)
		}
	}
}
