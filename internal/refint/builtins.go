package refint

import (
	"fmt"

	"awam/internal/term"
	"awam/internal/wam"
)

// builtin executes an inline builtin over tree terms, mirroring the
// machine's semantics exactly (the differential tests depend on it).
func (in *Interp) builtin(id wam.BuiltinID, g *term.Term) (bool, error) {
	arg := func(i int) *term.Term { return g.Args[i] }
	switch id {
	case wam.BITrue, wam.BIWrite, wam.BINl, wam.BIHalt:
		return true, nil
	case wam.BIFail:
		return false, nil
	case wam.BIIs:
		v, err := in.eval(arg(1))
		if err != nil {
			return false, err
		}
		return in.unify(arg(0), term.MkInt(v)), nil
	case wam.BILt, wam.BILe, wam.BIGt, wam.BIGe, wam.BIArithEq, wam.BIArithNe:
		l, err := in.eval(arg(0))
		if err != nil {
			return false, err
		}
		r, err := in.eval(arg(1))
		if err != nil {
			return false, err
		}
		switch id {
		case wam.BILt:
			return l < r, nil
		case wam.BILe:
			return l <= r, nil
		case wam.BIGt:
			return l > r, nil
		case wam.BIGe:
			return l >= r, nil
		case wam.BIArithEq:
			return l == r, nil
		default:
			return l != r, nil
		}
	case wam.BIUnify:
		return in.unify(arg(0), arg(1)), nil
	case wam.BINotUnify:
		m := in.mark()
		ok := in.unify(arg(0), arg(1))
		in.undo(m)
		return !ok, nil
	case wam.BIEq:
		return in.structEqual(arg(0), arg(1)), nil
	case wam.BINotEq:
		return !in.structEqual(arg(0), arg(1)), nil
	case wam.BIVar:
		return in.deref(arg(0)).Kind == term.KVar, nil
	case wam.BINonvar:
		return in.deref(arg(0)).Kind != term.KVar, nil
	case wam.BIAtom:
		return in.deref(arg(0)).Kind == term.KAtom, nil
	case wam.BIInteger:
		return in.deref(arg(0)).Kind == term.KInt, nil
	case wam.BIAtomic:
		k := in.deref(arg(0)).Kind
		return k == term.KAtom || k == term.KInt, nil
	case wam.BIFunctor:
		return in.biFunctor(g)
	case wam.BIArg:
		return in.biArg(g)
	case wam.BICompare:
		var rel string
		switch o := in.termCompare(arg(1), arg(2)); {
		case o < 0:
			rel = "<"
		case o > 0:
			rel = ">"
		default:
			rel = "="
		}
		return in.unify(arg(0), term.MkAtom(in.tab.Intern(rel))), nil
	case wam.BITermLt:
		return in.termCompare(arg(0), arg(1)) < 0, nil
	case wam.BITermLe:
		return in.termCompare(arg(0), arg(1)) <= 0, nil
	case wam.BITermGt:
		return in.termCompare(arg(0), arg(1)) > 0, nil
	case wam.BITermGe:
		return in.termCompare(arg(0), arg(1)) >= 0, nil
	case wam.BILength:
		return in.biLength(g)
	default:
		return false, fmt.Errorf("refint: builtin %s not implemented", wam.BuiltinName(id))
	}
}

// termCompare mirrors the machine's standard order of terms. Variables
// order by creation sequence (the machine uses heap addresses, which
// follow the same order).
func (in *Interp) termCompare(a, b *term.Term) int {
	// Charge the step budget: without an occurs check a cyclic term
	// compared against itself would recurse forever. Once the budget
	// trips no further solution can be yielded (solveSeq re-checks on
	// every entry), so the bogus 0 result cannot surface as an answer.
	in.Steps++
	if in.Steps > in.MaxSteps {
		in.err = ErrStepLimit
		return 0
	}
	a, b = in.deref(a), in.deref(b)
	ra, rb := refOrderRank(a), refOrderRank(b)
	if ra != rb {
		return ra - rb
	}
	switch a.Kind {
	case term.KVar:
		return in.cellOf(a.Ref).serial - in.cellOf(b.Ref).serial
	case term.KInt:
		switch {
		case a.Int < b.Int:
			return -1
		case a.Int > b.Int:
			return 1
		}
		return 0
	case term.KAtom:
		if in.tab.Name(a.Fn.Name) < in.tab.Name(b.Fn.Name) {
			return -1
		}
		if in.tab.Name(a.Fn.Name) > in.tab.Name(b.Fn.Name) {
			return 1
		}
		return 0
	default:
		if a.Fn.Arity != b.Fn.Arity {
			return a.Fn.Arity - b.Fn.Arity
		}
		na, nb := in.tab.Name(a.Fn.Name), in.tab.Name(b.Fn.Name)
		if na != nb {
			if na < nb {
				return -1
			}
			return 1
		}
		for i := range a.Args {
			if c := in.termCompare(a.Args[i], b.Args[i]); c != 0 {
				return c
			}
		}
		return 0
	}
}

func refOrderRank(t *term.Term) int {
	switch t.Kind {
	case term.KVar:
		return 0
	case term.KInt:
		return 1
	case term.KAtom:
		return 2
	default:
		return 3
	}
}

// biLength mirrors the machine's length/2.
func (in *Interp) biLength(g *term.Term) (bool, error) {
	t := in.deref(g.Args[0])
	n := 0
	for in.tab.IsCons(t) {
		// Budget the walk: a cyclic list would otherwise never end.
		in.Steps++
		if in.Steps > in.MaxSteps {
			return false, ErrStepLimit
		}
		n++
		t = in.deref(t.Args[1])
	}
	switch {
	case in.tab.IsNil(t):
		return in.unify(g.Args[1], term.MkInt(int64(n))), nil
	case t.Kind == term.KVar:
		lt := in.deref(g.Args[1])
		if lt.Kind != term.KInt {
			return false, fmt.Errorf("refint: length/2 with partial list needs a bound length")
		}
		want := int(lt.Int)
		if want < n {
			return false, nil
		}
		// Building the open tail allocates want-n fresh cells; charge
		// them so length(L, 10000000) cannot blow past the budget.
		if in.Steps+int64(want-n) > in.MaxSteps {
			return false, ErrStepLimit
		}
		in.Steps += int64(want - n)
		elems := make([]*term.Term, want-n)
		for i := range elems {
			elems[i] = term.NewVar("_")
		}
		return in.unify(t, term.MkList(in.tab, elems, nil)), nil
	default:
		return false, nil
	}
}

func (in *Interp) eval(t *term.Term) (int64, error) {
	// Charge the step budget: cyclic arithmetic terms (buildable
	// without an occurs check) would otherwise recurse forever.
	in.Steps++
	if in.Steps > in.MaxSteps {
		return 0, ErrStepLimit
	}
	t = in.deref(t)
	switch t.Kind {
	case term.KInt:
		return t.Int, nil
	case term.KVar:
		return 0, fmt.Errorf("refint: arithmetic on unbound variable")
	case term.KAtom:
		return 0, fmt.Errorf("refint: atom %s is not arithmetic", in.tab.Name(t.Fn.Name))
	}
	name := in.tab.Name(t.Fn.Name)
	if t.Fn.Arity == 1 {
		v, err := in.eval(t.Args[0])
		if err != nil {
			return 0, err
		}
		switch name {
		case "-":
			return -v, nil
		case "+":
			return v, nil
		case "abs":
			if v < 0 {
				return -v, nil
			}
			return v, nil
		}
		return 0, fmt.Errorf("refint: unknown arithmetic functor %s/1", name)
	}
	if t.Fn.Arity == 2 {
		l, err := in.eval(t.Args[0])
		if err != nil {
			return 0, err
		}
		r, err := in.eval(t.Args[1])
		if err != nil {
			return 0, err
		}
		switch name {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "//", "/":
			if r == 0 {
				return 0, fmt.Errorf("refint: division by zero")
			}
			return l / r, nil
		case "mod":
			if r == 0 {
				return 0, fmt.Errorf("refint: mod by zero")
			}
			v := l % r
			if (v < 0 && r > 0) || (v > 0 && r < 0) {
				v += r
			}
			return v, nil
		case "rem":
			if r == 0 {
				return 0, fmt.Errorf("refint: rem by zero")
			}
			return l % r, nil
		case "min":
			if l < r {
				return l, nil
			}
			return r, nil
		case "max":
			if l > r {
				return l, nil
			}
			return r, nil
		case "<<":
			return l << uint(r), nil
		case ">>":
			return l >> uint(r), nil
		}
		return 0, fmt.Errorf("refint: unknown arithmetic functor %s/2", name)
	}
	return 0, fmt.Errorf("refint: unevaluable term")
}

func (in *Interp) structEqual(a, b *term.Term) bool {
	a, b = in.deref(a), in.deref(b)
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case term.KVar:
		return a.Ref == b.Ref
	case term.KAtom:
		return a.Fn.Name == b.Fn.Name
	case term.KInt:
		return a.Int == b.Int
	case term.KStruct:
		if a.Fn != b.Fn {
			return false
		}
		for i := range a.Args {
			if !in.structEqual(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

func (in *Interp) biFunctor(g *term.Term) (bool, error) {
	t := in.deref(g.Args[0])
	switch t.Kind {
	case term.KAtom:
		return in.unify(g.Args[1], term.MkAtom(t.Fn.Name)) &&
			in.unify(g.Args[2], term.MkInt(0)), nil
	case term.KInt:
		return in.unify(g.Args[1], term.MkInt(t.Int)) &&
			in.unify(g.Args[2], term.MkInt(0)), nil
	case term.KStruct:
		return in.unify(g.Args[1], term.MkAtom(t.Fn.Name)) &&
			in.unify(g.Args[2], term.MkInt(int64(t.Fn.Arity))), nil
	case term.KVar:
		name := in.deref(g.Args[1])
		arity := in.deref(g.Args[2])
		if arity.Kind != term.KInt {
			return false, fmt.Errorf("refint: functor/3 arity not an integer")
		}
		n := int(arity.Int)
		if n == 0 {
			return in.unify(g.Args[0], name), nil
		}
		if name.Kind != term.KAtom {
			return false, fmt.Errorf("refint: functor/3 name not an atom")
		}
		args := make([]*term.Term, n)
		for i := range args {
			args[i] = term.NewVar("_")
		}
		return in.unify(g.Args[0], term.MkStruct(term.Functor{Name: name.Fn.Name, Arity: n}, args...)), nil
	}
	return false, nil
}

func (in *Interp) biArg(g *term.Term) (bool, error) {
	n := in.deref(g.Args[0])
	t := in.deref(g.Args[1])
	if n.Kind != term.KInt {
		return false, fmt.Errorf("refint: arg/3 index not an integer")
	}
	if t.Kind != term.KStruct {
		return false, nil
	}
	i := int(n.Int)
	if i < 1 || i > t.Fn.Arity {
		return false, nil
	}
	return in.unify(g.Args[2], t.Args[i-1]), nil
}
