// Package refint is a reference Prolog interpreter: a direct recursive
// SLD resolver over source clauses, with no compilation, no registers
// and no clause indexing. It exists to differentially test the WAM
// pipeline — for any goal, machine answers and refint answers must
// agree — exactly as internal/baseline cross-validates the abstract
// machine.
//
// Supported: the same builtin set as the machine (arithmetic,
// comparison, type tests, unification, functor/arg), cut, and the
// control constructs after compiler expansion (refint interprets the
// expanded program, so ';'/'->'/'\+' are covered through their auxiliary
// predicates).
package refint

import (
	"errors"
	"fmt"
	"sort"

	"awam/internal/term"
	"awam/internal/wam"
)

// ErrStepLimit reports exhausted execution budget.
var ErrStepLimit = errors.New("refint: step limit exceeded")

// binding cells: variables are bound by side effect and unwound via the
// trail, like a textbook interpreter.
type cell struct {
	bound *term.Term
	// serial is the creation sequence number, used by the standard order
	// of terms (the machine orders variables by heap address, which
	// follows the same sequence).
	serial int
}

// Interp is a reference interpreter instance.
type Interp struct {
	tab      *term.Tab
	prog     *term.Program
	builtins map[term.Functor]wam.BuiltinID

	cells map[*term.VarRef]*cell
	trail []*cell

	Steps    int64
	MaxSteps int64
	err      error
}

// New returns an interpreter for prog. The program should be the
// control-expanded form (compiler.ExpandedProgram) when it uses
// ';'/'->'/'\+'.
func New(tab *term.Tab, prog *term.Program) *Interp {
	return &Interp{
		tab:      tab,
		prog:     prog,
		builtins: wam.Builtins(tab),
		cells:    make(map[*term.VarRef]*cell),
		MaxSteps: 50_000_000,
	}
}

func (in *Interp) cellOf(v *term.VarRef) *cell {
	c, ok := in.cells[v]
	if !ok {
		c = &cell{serial: len(in.cells)}
		in.cells[v] = c
	}
	return c
}

// deref resolves variable bindings.
func (in *Interp) deref(t *term.Term) *term.Term {
	for t.Kind == term.KVar {
		c := in.cellOf(t.Ref)
		if c.bound == nil {
			return t
		}
		t = c.bound
	}
	return t
}

func (in *Interp) bind(v *term.VarRef, t *term.Term) {
	c := in.cellOf(v)
	c.bound = t
	in.trail = append(in.trail, c)
}

func (in *Interp) mark() int { return len(in.trail) }

func (in *Interp) undo(m int) {
	for i := len(in.trail) - 1; i >= m; i-- {
		in.trail[i].bound = nil
	}
	in.trail = in.trail[:m]
}

// unify is the textbook algorithm (no occurs check, as in the machine).
// The step budget is checked here as well as in solveSeq: without an
// occurs check, unifying a rational (cyclic) term against itself would
// otherwise recurse forever.
func (in *Interp) unify(a, b *term.Term) bool {
	in.Steps++
	if in.Steps > in.MaxSteps {
		in.err = ErrStepLimit
		return false
	}
	a, b = in.deref(a), in.deref(b)
	if a.Kind == term.KVar && b.Kind == term.KVar && a.Ref == b.Ref {
		return true
	}
	if a.Kind == term.KVar {
		in.bind(a.Ref, b)
		return true
	}
	if b.Kind == term.KVar {
		in.bind(b.Ref, a)
		return true
	}
	switch {
	case a.Kind == term.KAtom && b.Kind == term.KAtom:
		return a.Fn.Name == b.Fn.Name
	case a.Kind == term.KInt && b.Kind == term.KInt:
		return a.Int == b.Int
	case a.Kind == term.KStruct && b.Kind == term.KStruct:
		if a.Fn != b.Fn {
			return false
		}
		for i := range a.Args {
			if !in.unify(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// cutSignal implements cut through panic/recover across the solver's
// recursion, carrying the barrier depth of the clause body being cut.
type cutSignal struct{ depth int }

// Solve enumerates solutions of the goal list, calling yield with the
// interpreter positioned at each solution (read bindings there). yield
// returns false to stop the search. Solve reports whether the search was
// stopped early.
func (in *Interp) Solve(goals []*term.Term, yield func() bool) (bool, error) {
	in.err = nil
	stopped := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(cutSignal); ok {
					return // cut at the query level: search over
				}
				panic(r)
			}
		}()
		stopped = !in.solveSeq(goals, 0, func() bool { return yield() })
	}()
	return stopped, in.err
}

// tryResult is the outcome of attempting one clause.
type tryResult int

const (
	tryContinue tryResult = iota // try the next clause
	tryCut                       // a cut committed: skip remaining clauses
	tryAbort                     // stop the whole search
)

// solveSeq proves the goal list left to right; cont is invoked at full
// success; returning false from cont aborts the whole search. depth is
// the current clause body's cut barrier.
func (in *Interp) solveSeq(goals []*term.Term, depth int, cont func() bool) bool {
	if in.err != nil {
		return false
	}
	if len(goals) == 0 {
		return cont()
	}
	in.Steps++
	if in.Steps > in.MaxSteps {
		in.err = ErrStepLimit
		return false
	}
	g := in.deref(goals[0])
	rest := goals[1:]
	fn, ok := term.Indicator(g)
	if !ok {
		in.err = fmt.Errorf("refint: non-callable goal %s", in.tab.Write(g))
		return false
	}
	switch {
	case fn.Name == in.tab.Cut && fn.Arity == 0:
		if !in.solveSeq(rest, depth, cont) {
			return false
		}
		// Exhausted the continuation: prune this body's alternatives and
		// the predicate's remaining clauses.
		panic(cutSignal{depth: depth})
	case fn.Name == in.tab.True && fn.Arity == 0:
		return in.solveSeq(rest, depth, cont)
	}
	if id, isBI := in.builtins[fn]; isBI {
		m := in.mark()
		ok, err := in.builtin(id, g)
		if err != nil {
			in.err = err
			return false
		}
		if ok {
			if !in.solveSeq(rest, depth, cont) {
				return false
			}
		}
		in.undo(m)
		return true
	}
	idxs, defined := in.prog.Preds[fn]
	if !defined {
		return true // undefined predicates fail
	}
	for _, ci := range idxs {
		switch in.tryClause(g, ci, depth, rest, cont) {
		case tryAbort:
			return false
		case tryCut:
			return true
		}
		if in.err != nil {
			return false
		}
	}
	return true
}

// tryClause attempts one clause of the called predicate: rename, unify
// the head, run the body (with a fresh cut barrier), then the caller's
// continuation. All bindings are unwound before returning — including
// when a cut unwinds past intermediate frames, since the deferred undo
// runs during panic recovery.
func (in *Interp) tryClause(g *term.Term, ci, depth int, rest []*term.Term, cont func() bool) (res tryResult) {
	m := in.mark()
	defer in.undo(m)
	bodyDepth := depth + 1
	defer func() {
		if r := recover(); r != nil {
			if sig, ok := r.(cutSignal); ok && sig.depth == bodyDepth {
				res = tryCut
				return
			}
			panic(r)
		}
	}()
	cl := term.RenameClause(in.prog.Clauses[ci])
	if !in.unify(g, cl.Head) {
		return tryContinue
	}
	proceed := func() bool { return in.solveSeq(rest, depth, cont) }
	if !in.solveSeq(cl.Body, bodyDepth, proceed) {
		return tryAbort
	}
	return tryContinue
}

// ReadBinding returns the current value of a variable.
func (in *Interp) ReadBinding(v *term.Term) *term.Term {
	return in.resolve(v, 0)
}

func (in *Interp) resolve(t *term.Term, depth int) *term.Term {
	if depth > 10_000 {
		return term.MkAtom(in.tab.Intern("<deep>"))
	}
	t = in.deref(t)
	if t.Kind != term.KStruct {
		return t
	}
	args := make([]*term.Term, len(t.Args))
	for i, a := range t.Args {
		args[i] = in.resolve(a, depth+1)
	}
	return &term.Term{Kind: term.KStruct, Fn: t.Fn, Args: args}
}

// AllSolutions solves the goals and renders each solution's bindings of
// the given variables canonically, sorted, up to max solutions.
func (in *Interp) AllSolutions(goals []*term.Term, vars []*term.Term, max int) ([]string, error) {
	var out []string
	_, err := in.Solve(goals, func() bool {
		parts := make([]string, len(vars))
		for i, v := range vars {
			parts[i] = in.tab.Write(in.ReadBinding(v))
		}
		out = append(out, fmt.Sprintf("%v", parts))
		return len(out) < max
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
