package backward

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"

	"awam/internal/bench"
	"awam/internal/cache"
	"awam/internal/compiler"
	"awam/internal/core"
	"awam/internal/parser"
	"awam/internal/term"
	"awam/internal/wam"
)

func build(t *testing.T, src string) (*term.Tab, *wam.Module, *term.Program) {
	t.Helper()
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return tab, mod, prog
}

func analyzeBwd(t *testing.T, src string, goals ...string) (*term.Tab, *Result) {
	t.Helper()
	tab, mod, prog := build(t, src)
	cfg := Config{}
	for _, g := range goals {
		cfg.Goals = append(cfg.Goals, indicator(t, tab, g))
	}
	res, err := NewEngine(nil).Analyze(context.Background(), mod, prog, cfg)
	if err != nil {
		t.Fatalf("backward analyze: %v", err)
	}
	return tab, res
}

func indicator(t *testing.T, tab *term.Tab, s string) term.Functor {
	t.Helper()
	i := strings.LastIndex(s, "/")
	if i < 0 {
		t.Fatalf("bad indicator %q", s)
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil {
		t.Fatalf("bad indicator %q: %v", s, err)
	}
	return tab.Func(s[:i], n)
}

func demandString(t *testing.T, tab *term.Tab, res *Result, name string, arity int) string {
	t.Helper()
	d, ok := res.DemandFor(tab.Func(name, arity))
	if !ok {
		t.Fatalf("%s/%d not visited", name, arity)
	}
	return demandText(tab, d)
}

// TestQsortDemands: the paper's quicksort with difference lists. The
// first argument is consumed (partition and the heads destructure it),
// so its weakest demand is nonvar; the accumulator pair is produced.
func TestQsortDemands(t *testing.T) {
	p, _ := bench.ByName("qsort")
	tab, res := analyzeBwd(t, p.Source, "qsort/3")
	if got := demandString(t, tab, res, "qsort", 3); got != "qsort(nv, any, any)" {
		t.Errorf("qsort demand = %s", got)
	}
	if got := demandString(t, tab, res, "partition", 4); got != "partition(nv, any, any, any)" {
		t.Errorf("partition demand = %s", got)
	}
	if res.Steps == 0 || res.Iterations == 0 {
		t.Errorf("missing accounting: steps=%d iterations=%d", res.Steps, res.Iterations)
	}
}

// TestNreverseDemands: concatenate demands a nonvar first argument
// (both clauses destructure it, and a variable cannot be shown to
// reach either), while nreverse itself is a generator — an unbound
// first argument still succeeds through the base clause, so its
// weakest demand is unconstrained.
func TestNreverseDemands(t *testing.T) {
	p, _ := bench.ByName("nreverse")
	tab, res := analyzeBwd(t, p.Source)
	if got := demandString(t, tab, res, "nreverse", 2); got != "nreverse(any, any)" {
		t.Errorf("nreverse demand = %s", got)
	}
	if got := demandString(t, tab, res, "concatenate", 3); got != "concatenate(nv, any, any)" {
		t.Errorf("concatenate demand = %s", got)
	}
	if got := demandString(t, tab, res, "main", 0); got != "main" {
		t.Errorf("main demand = %s", got)
	}
}

// TestDerivOutputArgument: the deriv third argument is a binding
// template (DU+DV and friends), so it must not be demanded nonvar —
// main calls d/3 with an unbound output and must stay safe.
func TestDerivOutputArgument(t *testing.T) {
	p, _ := bench.ByName("log10")
	tab, res := analyzeBwd(t, p.Source)
	if got := demandString(t, tab, res, "d", 3); got != "d(any, any, any)" {
		t.Errorf("d/3 demand = %s", got)
	}
	if got := demandString(t, tab, res, "main", 0); got != "main" {
		t.Errorf("main demand = %s", got)
	}
}

// TestArithmeticDemand: error-freedom demands integers at arithmetic
// operands, transitively through expressions; an atom operand has no
// safe call at all.
func TestArithmeticDemand(t *testing.T) {
	tab, res := analyzeBwd(t, `
inc(X, Y) :- Y is X + 1.
scale(X, Y, Z) :- Z is (X * 100) // max(Y, 1).
broken(X) :- X is foo + 1.
cmp(X, Y) :- X < Y.
`)
	if got := demandString(t, tab, res, "inc", 2); got != "inc(int, any)" {
		t.Errorf("inc demand = %s", got)
	}
	if got := demandString(t, tab, res, "scale", 3); got != "scale(int, int, any)" {
		t.Errorf("scale demand = %s", got)
	}
	if got := demandString(t, tab, res, "broken", 1); got != "bottom" {
		t.Errorf("broken demand = %s (an atom operand must refute error-freedom)", got)
	}
	if got := demandString(t, tab, res, "cmp", 2); got != "cmp(int, int)" {
		t.Errorf("cmp demand = %s", got)
	}
}

// TestTypeTestDemands: the check family demands its tested class.
func TestTypeTestDemands(t *testing.T) {
	tab, res := analyzeBwd(t, `
need_atom(X) :- atom(X).
need_int(X) :- integer(X).
need_free(X) :- var(X).
need_bound(X) :- nonvar(X).
`)
	for _, c := range []struct{ pred, want string }{
		{"need_atom", "need_atom(atom)"},
		{"need_int", "need_int(int)"},
		{"need_free", "need_free(var)"},
		{"need_bound", "need_bound(nv)"},
	} {
		if got := demandString(t, tab, res, c.pred, 1); got != c.want {
			t.Errorf("%s demand = %s, want %s", c.pred, got, c.want)
		}
	}
}

// TestDemandPropagation: a wrapper inherits its callee's demand through
// plain argument passing, and a head structure narrows it.
func TestDemandPropagation(t *testing.T) {
	tab, res := analyzeBwd(t, `
f(X) :- g(X).
g(X) :- integer(X).
h(f(X)) :- g(X).
`)
	if got := demandString(t, tab, res, "f", 1); got != "f(int)" {
		t.Errorf("f demand = %s", got)
	}
	if got := demandString(t, tab, res, "h", 1); got != "h(f(int))" {
		t.Errorf("h demand = %s", got)
	}
}

// TestUndefinedCalleeIsBottom: calling an undefined predicate can never
// be shown safe; the demand collapses clause-wise, not program-wise.
func TestUndefinedCalleeIsBottom(t *testing.T) {
	tab, res := analyzeBwd(t, `
p(X) :- missing(X).
p(a).
q(X) :- missing(X).
`)
	// Clause 1 is unusable, clause 2 still admits an atom.
	if got := demandString(t, tab, res, "p", 1); got == "bottom" {
		t.Errorf("p demand = %s (the fact clause must survive)", got)
	}
	if got := demandString(t, tab, res, "q", 1); got != "bottom" {
		t.Errorf("q demand = %s", got)
	}
	if d, ok := res.DemandFor(tab.Func("missing", 1)); !ok || d != nil {
		t.Errorf("missing/1 = (%v, %v), want visited bottom", d, ok)
	}
}

// TestFailIsBottom: a clause containing fail contributes nothing; a
// predicate with only such clauses has no safe call.
func TestFailIsBottom(t *testing.T) {
	tab, res := analyzeBwd(t, `
never(X) :- fail.
sometimes(X) :- fail.
sometimes(a).
`)
	if got := demandString(t, tab, res, "never", 1); got != "bottom" {
		t.Errorf("never demand = %s", got)
	}
	if got := demandString(t, tab, res, "sometimes", 1); got == "bottom" {
		t.Errorf("sometimes demand = %s", got)
	}
}

// TestUnifyDemandTransfer: X = T with fresh X pushes the residual
// demand through T; with a bound head variable it demands the shape.
func TestUnifyDemandTransfer(t *testing.T) {
	tab, res := analyzeBwd(t, `
viafresh(Y) :- X = f(Y), use(X).
use(f(Z)) :- integer(Z).
shape(X) :- X = f(a).
clash(X) :- X = f(a), X = g(b).
`)
	if got := demandString(t, tab, res, "viafresh", 1); got != "viafresh(int)" {
		t.Errorf("viafresh demand = %s", got)
	}
	if got := demandString(t, tab, res, "shape", 1); got != "shape(f(atom))" {
		t.Errorf("shape demand = %s", got)
	}
	if got := demandString(t, tab, res, "clash", 1); got != "bottom" {
		t.Errorf("clash demand = %s", got)
	}
}

// TestNegationDemandsNothing: backward treats \+ G soundly — no demand
// on G's arguments, no bindings propagated out of it. The negation
// body's own demands (ground(X) would demand g) must NOT leak.
func TestNegationDemandsNothing(t *testing.T) {
	tab, res := analyzeBwd(t, `
guarded(X) :- \+ needs_int(X), use(X).
needs_int(X) :- integer(X).
use(_).
plain(X) :- needs_int(X).
`)
	// Through \+, needs_int's int demand must not reach guarded.
	if got := demandString(t, tab, res, "guarded", 1); got != "guarded(any)" {
		t.Errorf("guarded demand = %s (negation must demand nothing)", got)
	}
	// Direct call still demands.
	if got := demandString(t, tab, res, "plain", 1); got != "plain(int)" {
		t.Errorf("plain demand = %s", got)
	}
	// And no binding propagates: a later ground demand on X is not
	// discharged by the negated goal.
	tab2, res2 := analyzeBwd(t, `
g2(X) :- \+ bind(X), needs_int(X).
bind(1).
needs_int(X) :- integer(X).
`)
	if got := demandString(t, tab2, res2, "g2", 1); got != "g2(int)" {
		t.Errorf("g2 demand = %s (\\+ must not discharge the int demand)", got)
	}
}

// TestDemandCone: on a wide program a single-family goal visits only
// that family's components — the demand-driven acceptance criterion.
func TestDemandCone(t *testing.T) {
	p := bench.WideProgramSeeded(64, 0)
	tab, mod, prog := build(t, p.Source)
	res, err := NewEngine(nil).Analyze(context.Background(), mod, prog, Config{
		Goals: []term.Functor{tab.Func("p0_rev", 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSCCs < 300 {
		t.Fatalf("wide_64 should have hundreds of components, got %d", res.TotalSCCs)
	}
	// p0_rev's demand cone is itself plus p0_app: two components.
	if res.VisitedSCCs > 4 {
		t.Errorf("visited %d components for one family entry (total %d); cone is leaking", res.VisitedSCCs, res.TotalSCCs)
	}
	if res.VisitedSCCs*16 > res.TotalSCCs {
		t.Errorf("visited %d of %d components; not demand-driven", res.VisitedSCCs, res.TotalSCCs)
	}
	if _, ok := res.DemandFor(tab.Func("p0_rev", 2)); !ok {
		t.Error("goal predicate missing from result")
	}
}

// TestWarmReuse: a repeat query against the same store re-executes zero
// components, runs no forward pre-pass, and marshals byte-identically —
// the fabric-warm acceptance criterion.
func TestWarmReuse(t *testing.T) {
	p, _ := bench.ByName("qsort")
	store, err := cache.New()
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(store)

	tab1, mod1, prog1 := build(t, p.Source)
	cold, err := eng.Analyze(context.Background(), mod1, prog1, Config{Goals: []term.Functor{tab1.Func("qsort", 3)}})
	if err != nil {
		t.Fatal(err)
	}
	if cold.ExecutedSCCs == 0 || cold.ReusedSCCs != 0 {
		t.Fatalf("cold run: executed=%d reused=%d", cold.ExecutedSCCs, cold.ReusedSCCs)
	}

	// Fresh parse/compile (fresh symbol table) — only the store carries over.
	tab2, mod2, prog2 := build(t, p.Source)
	warm, err := eng.Analyze(context.Background(), mod2, prog2, Config{Goals: []term.Functor{tab2.Func("qsort", 3)}})
	if err != nil {
		t.Fatal(err)
	}
	if warm.ExecutedSCCs != 0 {
		t.Errorf("warm run executed %d components, want 0", warm.ExecutedSCCs)
	}
	if warm.ReusedSCCs != cold.ExecutedSCCs {
		t.Errorf("warm reused %d, want %d", warm.ReusedSCCs, cold.ExecutedSCCs)
	}
	if warm.ForwardDur != 0 {
		t.Errorf("warm run paid a forward pre-pass (%v)", warm.ForwardDur)
	}
	if cold.Marshal() != warm.Marshal() {
		t.Errorf("cold/warm marshal differ:\ncold:\n%s\nwarm:\n%s", cold.Marshal(), warm.Marshal())
	}
}

// TestEditInvalidation: editing one predicate re-executes its cone only;
// untouched components are still served.
func TestEditInvalidation(t *testing.T) {
	store, _ := cache.New()
	eng := NewEngine(store)
	base := `
top(X) :- mid(X).
mid(X) :- leafa(X).
leafa(a).
other(X) :- leafb(X).
leafb(b).
`
	tab, mod, prog := build(t, base)
	goals := []term.Functor{tab.Func("top", 1), tab.Func("other", 1)}
	if _, err := eng.Analyze(context.Background(), mod, prog, Config{Goals: goals}); err != nil {
		t.Fatal(err)
	}
	// Edit leafa: top's chain re-executes, other's chain is served.
	edited := strings.Replace(base, "leafa(a).", "leafa(aa).", 1)
	tab2, mod2, prog2 := build(t, edited)
	goals2 := []term.Functor{tab2.Func("top", 1), tab2.Func("other", 1)}
	res, err := eng.Analyze(context.Background(), mod2, prog2, Config{Goals: goals2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecutedSCCs != 3 {
		t.Errorf("executed %d components after one-leaf edit, want 3 (leafa+mid+top)", res.ExecutedSCCs)
	}
	if res.ReusedSCCs != 2 {
		t.Errorf("reused %d components, want 2 (leafb+other)", res.ReusedSCCs)
	}
}

// TestCorruptRecordIsMiss: a damaged cache record decodes as a miss and
// is rewritten, never an error or a wrong answer.
func TestCorruptRecordIsMiss(t *testing.T) {
	p, _ := bench.ByName("qsort")
	store, _ := cache.New()
	eng := NewEngine(store)
	tab, mod, prog := build(t, p.Source)
	goals := []term.Functor{tab.Func("qsort", 3)}
	cold, err := eng.Analyze(context.Background(), mod, prog, Config{Goals: goals})
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range cold.Visited {
		scc := cold.Plan.SCCs[idx]
		if !scc.Undefined {
			store.Put(cache.Fingerprint(scc.Fingerprint), []byte("garbage\n"))
		}
	}
	again, err := eng.Analyze(context.Background(), mod, prog, Config{Goals: goals})
	if err != nil {
		t.Fatal(err)
	}
	if again.ReusedSCCs != 0 || again.ExecutedSCCs != cold.ExecutedSCCs {
		t.Errorf("corrupt records: reused=%d executed=%d", again.ReusedSCCs, again.ExecutedSCCs)
	}
	if cold.Marshal() != again.Marshal() {
		t.Error("recovery from corrupt records changed the result")
	}
}

// TestRecordRoundTrip exercises the codec directly.
func TestRecordRoundTrip(t *testing.T) {
	tab, _, _ := build(t, "p(a).\nq(X) :- p(X).")
	_, res := analyzeBwd(t, "p(a).\nq(X) :- p(X).")
	_ = tab
	for _, idx := range res.Visited {
		scc := res.Plan.SCCs[idx]
		if scc.Undefined {
			continue
		}
		data := encodeDemands(res.Tab, scc, res.Demands)
		ds, err := decodeDemands(res.Tab, scc, data)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		for i, m := range scc.Members {
			if demandText(res.Tab, ds[i]) != demandText(res.Tab, res.Demands[m]) {
				t.Errorf("%s: decoded %s, stored %s", res.Tab.FuncString(m),
					demandText(res.Tab, ds[i]), demandText(res.Tab, res.Demands[m]))
			}
		}
		if _, err := decodeDemands(res.Tab, scc, []byte("awam-bwd 1\nnonsense")); err == nil {
			t.Error("malformed record decoded successfully")
		}
	}
}

// TestUnknownGoal: demand queries for predicates outside the program
// are rejected up front.
func TestUnknownGoal(t *testing.T) {
	tab, mod, prog := build(t, "p(a).")
	_, err := NewEngine(nil).Analyze(context.Background(), mod, prog, Config{
		Goals: []term.Functor{tab.Func("nosuch", 2)},
	})
	if err == nil || !strings.Contains(err.Error(), "unknown goal") {
		t.Fatalf("err = %v", err)
	}
}

// TestStepLimit: the backward budget aborts with the shared sentinel.
func TestStepLimit(t *testing.T) {
	p, _ := bench.ByName("qsort")
	_, mod, prog := build(t, p.Source)
	_, err := NewEngine(nil).Analyze(context.Background(), mod, prog, Config{MaxSteps: 1})
	if !errors.Is(err, core.ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

// TestCanceled: a pre-canceled context aborts with ErrCanceled.
func TestCanceled(t *testing.T) {
	p, _ := bench.ByName("qsort")
	_, mod, prog := build(t, p.Source)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewEngine(nil).Analyze(ctx, mod, prog, Config{})
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestDefaultGoalsMain: with no goals and a main/0, the query is rooted
// at main; without one, every source predicate is a root.
func TestDefaultGoalsMain(t *testing.T) {
	_, res := analyzeBwd(t, "main :- p(a).\np(a).\nq(b).")
	tab := res.Tab
	if _, ok := res.DemandFor(tab.Func("q", 1)); ok {
		t.Error("q/1 visited from main/0 root; default goal should be main only")
	}
	_, res2 := analyzeBwd(t, "p(a).\nq(b).")
	if _, ok := res2.DemandFor(res2.Tab.Func("q", 1)); !ok {
		t.Error("q/1 not visited without main/0")
	}
}
