package backward

import (
	"awam/internal/domain"
	"awam/internal/term"
	"awam/internal/wam"
)

// bspec is the backward-transfer entry of one builtin: the demand its
// arguments must satisfy for the call to be error-free and
// non-refutable, which positions it may bind, and the type its success
// guarantees at each position. A nil demand/succ entry means top.
type bspec struct {
	demand []*domain.Term
	// arith marks arguments demanded as evaluable arithmetic
	// expressions (every variable an integer, every operator known)
	// instead of a plain type demand.
	arith []bool
	// out marks binding positions: a fresh variable there is produced
	// by the builtin rather than consumed, so it takes no demand and
	// discharges against succ instead.
	out  []bool
	succ []*domain.Term
}

// builtinGoal is the backward transfer of one builtin goal; false means
// no call can be shown safe through the clause.
func (s *solver) builtinGoal(c term.Clause, i int, g *term.Term, id wam.BuiltinID, e env) bool {
	anyLeaf := domain.Top()
	intg := domain.MkLeaf(domain.Intg)
	switch id {
	case wam.BIFail:
		return false // the clause never succeeds
	case wam.BITrue, wam.BIWrite, wam.BINl, wam.BIHalt, wam.BIAssert, wam.BIRetract,
		wam.BINotUnify, wam.BINotEq, wam.BITermLt, wam.BITermLe, wam.BITermGt, wam.BITermGe:
		// Side effects, order tests and the negative checks: never an
		// instantiation error, never a binding, and failure is invisible
		// to the abstract domain — nothing to demand or discharge.
		return true
	case wam.BIUnify:
		return s.unifyGoal(c, i, g.Args[0], g.Args[1], e)
	case wam.BIEq:
		// ==/2 binds nothing; only a syntactic mismatch refutes it.
		return !definiteMismatch(g.Args[0], g.Args[1])
	case wam.BILt, wam.BILe, wam.BIGt, wam.BIGe, wam.BIArithEq, wam.BIArithNe:
		contrib := make(map[*term.VarRef]*domain.Term)
		return s.imposeArith(g.Args[0], contrib) &&
			s.imposeArith(g.Args[1], contrib) &&
			s.meetIn(contrib, e)
	case wam.BIIs:
		return s.applySpec(c, i, g, bspec{
			demand: []*domain.Term{intg, nil},
			arith:  []bool{false, true},
			out:    []bool{true, false},
			succ:   []*domain.Term{intg, nil},
		}, e)
	case wam.BIVar:
		return s.typeTest(g, domain.MkLeaf(domain.Var), e)
	case wam.BINonvar:
		return s.typeTest(g, domain.MkLeaf(domain.NV), e)
	case wam.BIAtom:
		return s.typeTest(g, domain.MkLeaf(domain.Atom), e)
	case wam.BIInteger:
		return s.typeTest(g, intg, e)
	case wam.BIAtomic:
		return s.typeTest(g, domain.MkLeaf(domain.Const), e)
	case wam.BIFunctor:
		nv := domain.MkLeaf(domain.NV)
		cons := domain.MkLeaf(domain.Const)
		return s.applySpec(c, i, g, bspec{
			demand: []*domain.Term{nv, cons, intg},
			out:    []bool{true, true, true},
			succ:   []*domain.Term{nv, cons, intg},
		}, e)
	case wam.BIArg:
		return s.applySpec(c, i, g, bspec{
			demand: []*domain.Term{intg, domain.MkLeaf(domain.NV), anyLeaf},
			out:    []bool{false, false, true},
			succ:   []*domain.Term{intg, domain.MkLeaf(domain.NV), nil},
		}, e)
	case wam.BICompare:
		return s.applySpec(c, i, g, bspec{
			demand: []*domain.Term{domain.MkLeaf(domain.Var), anyLeaf, anyLeaf},
			out:    []bool{true, false, false},
			succ:   []*domain.Term{domain.MkLeaf(domain.Atom), nil, nil},
		}, e)
	case wam.BILength:
		listAny := domain.MkListT(domain.Top())
		return s.applySpec(c, i, g, bspec{
			demand: []*domain.Term{listAny, intg},
			out:    []bool{true, true},
			succ:   []*domain.Term{listAny, intg},
		}, e)
	}
	// An unmodelled builtin: demand nothing, guarantee nothing. Sound
	// only for non-binding builtins; every current ID is handled above.
	return true
}

// typeTest handles the var/nonvar/atom/integer/atomic family: the
// argument is demanded to be in the tested class, and nothing is bound.
func (s *solver) typeTest(g *term.Term, leaf *domain.Term, e env) bool {
	contrib := make(map[*term.VarRef]*domain.Term)
	return s.impose(leaf, g.Args[0], contrib) && s.meetIn(contrib, e)
}

// applySpec runs the generic demand/out/succ transfer: in-positions
// (and out-positions holding an already-constrained term) take the
// demand; a producible variable in an out-position is produced by the
// builtin and discharges its residual demand against the success type.
func (s *solver) applySpec(c term.Clause, i int, g *term.Term, sp bspec, e env) bool {
	contrib := make(map[*term.VarRef]*domain.Term)
	produced := make([]bool, len(g.Args))
	for j, t := range g.Args {
		if sp.arith != nil && sp.arith[j] {
			if !s.imposeArith(t, contrib) {
				return false
			}
			continue
		}
		if sp.out[j] && t.Kind == term.KVar && s.producible(t.Ref, c, i, g, j) {
			produced[j] = true
			continue
		}
		d := sp.demand[j]
		if d == nil {
			d = domain.Top()
		}
		if !s.impose(d, t, contrib) {
			return false
		}
	}
	for j, t := range g.Args {
		if !produced[j] {
			continue
		}
		st := sp.succ[j]
		if st == nil {
			st = domain.Top()
		}
		r := e.get(t.Ref)
		if !isTop(r) && !domain.Leq(s.tab, st, r) {
			return false // the produced value may violate a later demand
		}
		delete(e, t.Ref)
	}
	return s.meetIn(contrib, e)
}

// imposeArith demands that t be an evaluable arithmetic expression:
// integers evaluate, variables must hold integers, and compound terms
// must be applications of the machine's operators over evaluable
// arguments. Atoms (including []) and unknown operators would raise a
// type error, so they refute error-freedom outright.
func (s *solver) imposeArith(t *term.Term, contrib map[*term.VarRef]*domain.Term) bool {
	switch t.Kind {
	case term.KInt:
		return true
	case term.KVar:
		cur := contrib[t.Ref]
		if cur == nil {
			cur = domain.Top()
		}
		m := domain.Meet(s.tab, cur, domain.MkLeaf(domain.Intg))
		if m.Kind == domain.Empty {
			return false
		}
		contrib[t.Ref] = m
		return true
	case term.KStruct:
		if !s.arithOps[t.Fn] {
			return false
		}
		for _, a := range t.Args {
			if !s.imposeArith(a, contrib) {
				return false
			}
		}
		return true
	}
	return false
}

// arithFunctors interns the operator set of the concrete evaluator
// (internal/machine): backward error-freedom must accept exactly the
// expressions is/2 and the comparisons can evaluate.
func arithFunctors(tab *term.Tab) map[term.Functor]bool {
	ops := map[term.Functor]bool{}
	for _, name := range []string{"-", "+", "abs"} {
		ops[tab.Func(name, 1)] = true
	}
	for _, name := range []string{"+", "-", "*", "//", "/", "mod", "rem", "min", "max", ">>", "<<"} {
		ops[tab.Func(name, 2)] = true
	}
	return ops
}

// definiteMismatch reports whether two terms can be decided non-identical
// syntactically (==/2 must fail). Variables decide nothing.
func definiteMismatch(x, y *term.Term) bool {
	if x.Kind == term.KVar || y.Kind == term.KVar {
		return false
	}
	if x.Kind != y.Kind {
		return true
	}
	switch x.Kind {
	case term.KInt:
		return x.Int != y.Int
	case term.KAtom:
		return x.Fn != y.Fn
	case term.KStruct:
		if x.Fn != y.Fn {
			return true
		}
		for i := range x.Args {
			if definiteMismatch(x.Args[i], y.Args[i]) {
				return true
			}
		}
	}
	return false
}

// unifyGoal is the backward transfer of X = T. Freshness decides the
// direction of information flow: a variable with no earlier occurrence
// is unbound when the goal runs, so unification with it always succeeds
// and merely transfers the residual demand to the other side; an
// already-occurring variable is conservatively demanded to match the
// other side's shape before the goal.
func (s *solver) unifyGoal(c term.Clause, i int, x, y *term.Term, e env) bool {
	if y.Kind == term.KVar && x.Kind != term.KVar {
		x, y = y, x
	}
	if x.Kind == term.KVar {
		if y.Kind == term.KVar {
			return s.unifyVars(c, i, x, y, e)
		}
		if s.freshVar(x.Ref, c, i, y) {
			// X is unbound: X = T always succeeds, binding X to T's value.
			// The residual demand on X becomes a demand on T.
			contrib := make(map[*term.VarRef]*domain.Term)
			if !s.impose(e.get(x.Ref), y, contrib) {
				return false
			}
			delete(e, x.Ref)
			return s.meetIn(contrib, e)
		}
		// X already occurs: demand its value match T's shape, which both
		// guarantees the unification and bounds the values T's variables
		// receive from it.
		nx := domain.Meet(s.tab, e.get(x.Ref), s.absOf(y))
		if nx.Kind == domain.Empty {
			return false
		}
		pv := make(map[*term.VarRef]*domain.Term)
		s.project(nx, y, pv)
		for _, v := range varsOf(y, nil) {
			if r := e.get(v); !isTop(r) && !domain.Leq(s.tab, pv[v], r) {
				return false
			}
			delete(e, v)
		}
		e[x.Ref] = nx
		return true
	}
	// Both sides non-variable: decompose structurally.
	switch {
	case x.Kind == term.KInt && y.Kind == term.KInt:
		return x.Int == y.Int
	case x.Kind == term.KAtom && y.Kind == term.KAtom:
		return x.Fn == y.Fn
	case x.Kind == term.KStruct && y.Kind == term.KStruct && x.Fn == y.Fn:
		for j := range x.Args {
			if !s.unifyGoal(c, i, x.Args[j], y.Args[j], e) {
				return false
			}
		}
		return true
	}
	return false // definite functor or kind clash
}

// unifyVars handles X = Y for two variables.
func (s *solver) unifyVars(c term.Clause, i int, x, y *term.Term, e env) bool {
	if x.Ref == y.Ref {
		return true
	}
	xf := s.freshVar(x.Ref, c, i, y)
	yf := s.freshVar(y.Ref, c, i, x)
	switch {
	case xf && yf:
		// Two unbound variables alias; neither holds a value yet, so the
		// residual demands stay put and headDemand's local-variable check
		// decides whether an unbound variable can satisfy them.
		return true
	case xf:
		m := domain.Meet(s.tab, e.get(y.Ref), e.get(x.Ref))
		if m.Kind == domain.Empty {
			return false
		}
		delete(e, x.Ref)
		if isTop(m) {
			delete(e, y.Ref)
		} else {
			e[y.Ref] = m
		}
		return true
	case yf:
		m := domain.Meet(s.tab, e.get(x.Ref), e.get(y.Ref))
		if m.Kind == domain.Empty {
			return false
		}
		delete(e, y.Ref)
		if isTop(m) {
			delete(e, x.Ref)
		} else {
			e[x.Ref] = m
		}
		return true
	default:
		// Both occur earlier: after X = Y they hold one common value, so
		// each must satisfy both demands beforehand.
		m := domain.Meet(s.tab, e.get(x.Ref), e.get(y.Ref))
		if m.Kind == domain.Empty {
			return false
		}
		e[x.Ref] = m
		e[y.Ref] = m
		return true
	}
}

// freshVar reports whether v has no occurrence before body position i
// (head included) nor inside other — i.e. it is certainly an unbound
// variable when the goal at i runs.
func (s *solver) freshVar(v *term.VarRef, c term.Clause, i int, other *term.Term) bool {
	if c.Head != nil && occurs(c.Head, v) {
		return false
	}
	for j := 0; j < i; j++ {
		if occurs(c.Body[j], v) {
			return false
		}
	}
	return other == nil || !occurs(other, v)
}

// producible reports whether the out-position variable v may be treated
// as produced by the builtin: it must not be bound by an earlier body
// goal (whose demand is only computed later in the right-to-left walk,
// so a produced-value compatibility constraint could not reach it) nor
// occur in another argument of g itself. A head occurrence is fine —
// deleting the residual demand just surfaces the position as `any` in
// the head pattern, exactly the output-mode reading: the caller may
// pass the argument unbound.
func (s *solver) producible(v *term.VarRef, c term.Clause, i int, g *term.Term, skip int) bool {
	for j := 0; j < i; j++ {
		if occurs(c.Body[j], v) {
			return false
		}
	}
	for j, a := range g.Args {
		if j != skip && occurs(a, v) {
			return false
		}
	}
	return true
}
