package backward

import (
	"strings"

	"awam/internal/domain"
	"awam/internal/term"
	"awam/internal/wam"
)

// solver computes per-clause demands over one expanded program. The
// demand of a clause is the weakest calling pattern under which the
// analysis cannot refute the clause: head matching may succeed, every
// builtin is sufficiently instantiated (no moding error), and every
// body call satisfies its callee's demand. Goals are walked RIGHT TO
// LEFT: env carries, per variable, the demand the remaining (later)
// goals impose on its value at that program point, and each goal either
// discharges those demands (when its success is known to produce a
// value below them) or pushes its own requirements further left.
type solver struct {
	tab      *term.Tab
	prog     *term.Program
	builtins map[term.Functor]wam.BuiltinID
	depth    int
	// demands holds committed demands for lower components and, during a
	// component's gfp, the current iterate for its members. Undefined
	// predicates are present with a nil (bottom) demand.
	demands map[term.Functor]*domain.Pattern
	// succ holds forward success patterns (under all-any entries) used
	// to discharge demands across binding goals: a goal's success
	// guarantees later demands only when its success type is below them.
	succ map[term.Functor]*domain.Pattern
	// arithOps is the concrete evaluator's operator set (arithFunctors).
	arithOps map[term.Functor]bool
	steps    *int64
}

// env maps each clause variable to the demand the goals to the right of
// the cursor impose on it; absent means top (nothing demanded).
type env map[*term.VarRef]*domain.Term

func (e env) get(v *term.VarRef) *domain.Term {
	if t := e[v]; t != nil {
		return t
	}
	return domain.Top()
}

func isTop(t *domain.Term) bool { return t.Kind == domain.Any }

// clauseDemand returns the demand pattern of one clause, or nil when no
// call can be shown safe through it (the clause contains fail, calls an
// undefined or bottom-demand predicate, or demands collide to empty).
func (s *solver) clauseDemand(c term.Clause) *domain.Pattern {
	e := make(env)
	for i := len(c.Body) - 1; i >= 0; i-- {
		*s.steps++
		g := c.Body[i]
		if g.Kind != term.KAtom && g.Kind != term.KStruct {
			return nil // meta-call or malformed goal: nothing guaranteed
		}
		fn := g.Fn
		if fn.Arity == 0 {
			switch fn.Name {
			case s.tab.Cut, s.tab.True:
				continue
			case s.tab.Fail:
				return nil // the clause never succeeds
			}
		}
		if id, isB := s.builtins[fn]; isB {
			if !s.builtinGoal(c, i, g, id, e) {
				return nil
			}
			continue
		}
		if isNotAux(s.tab, fn) {
			// \+ G (expanded to $not<n>): succeeds without binding anything
			// and demands nothing from G — negation as finite failure gives
			// no instantiation guarantee either way (DESIGN §3.15).
			continue
		}
		if !s.userGoal(g, fn, e) {
			return nil
		}
	}
	return s.headDemand(c, e)
}

// isNotAux reports whether fn is a negation auxiliary predicate
// ($not<n>) introduced by control expansion.
func isNotAux(tab *term.Tab, fn term.Functor) bool {
	return strings.HasPrefix(tab.Name(fn.Name), "$not")
}

// userGoal imposes the callee's demand on the goal arguments and
// discharges the variables the call may bind.
func (s *solver) userGoal(g *term.Term, fn term.Functor, e env) bool {
	d, known := s.demands[fn]
	if !known || d == nil {
		return false // undefined predicate or bottom-demand callee
	}
	contrib := make(map[*term.VarRef]*domain.Term)
	for j, arg := range g.Args {
		if !s.impose(d.Args[j], arg, contrib) {
			return false
		}
	}
	sp := s.succ[fn]
	if sp == nil {
		return false // the forward analysis says the callee cannot succeed
	}
	sv := make(map[*term.VarRef]*domain.Term)
	for j, arg := range g.Args {
		s.project(sp.Args[j], arg, sv)
	}
	// A call may bind any of its variables, so all of them discharge.
	return s.discharge(varsOf(g, nil), contrib, sv, e)
}

// discharge processes the binding variables of a goal: the residual
// demand accumulated from later goals must be covered by the goal's
// success type (else no call can be shown safe through this clause),
// and the variable's pre-goal demand becomes the goal's own
// contribution.
func (s *solver) discharge(vars []*term.VarRef, contrib, sv map[*term.VarRef]*domain.Term, e env) bool {
	for _, v := range vars {
		r := e.get(v)
		if !isTop(r) {
			succ := sv[v]
			if succ == nil {
				succ = domain.Top()
			}
			if !domain.Leq(s.tab, succ, r) {
				return false // the binding may violate a later demand
			}
		}
		if c := contrib[v]; c != nil {
			e[v] = c
		} else {
			delete(e, v)
		}
	}
	return true
}

// meetIn folds a non-binding goal's contributions into the running
// demands.
func (s *solver) meetIn(contrib map[*term.VarRef]*domain.Term, e env) bool {
	for v, c := range contrib {
		m := domain.Meet(s.tab, e.get(v), c)
		if m.Kind == domain.Empty {
			return false
		}
		e[v] = m
	}
	return true
}

// impose requires goal argument t to satisfy demand r, accumulating
// per-variable requirements (met across occurrences) into contrib.
// Constant and structure arguments are checked against r directly —
// at the class level of the domain, so an atom satisfies an atom
// demand even when the callee matches a different constant.
func (s *solver) impose(r *domain.Term, t *term.Term, contrib map[*term.VarRef]*domain.Term) bool {
	r = domain.Normalize(r)
	switch r.Kind {
	case domain.Any:
		return true
	case domain.Empty:
		return false
	}
	switch t.Kind {
	case term.KVar:
		cur := contrib[t.Ref]
		if cur == nil {
			cur = domain.Top()
		}
		m := domain.Meet(s.tab, cur, r)
		if m.Kind == domain.Empty {
			return false
		}
		contrib[t.Ref] = m
		return true
	case term.KInt:
		return domain.Leq(s.tab, domain.MkLeaf(domain.Intg), r)
	case term.KAtom:
		return domain.Leq(s.tab, s.constLeaf(t), r)
	case term.KStruct:
		switch r.Kind {
		case domain.NV:
			return true
		case domain.Ground:
			for _, a := range t.Args {
				if !s.impose(r, a, contrib) {
					return false
				}
			}
			return true
		case domain.Struct:
			if r.Fn != t.Fn {
				return false
			}
			for i, a := range t.Args {
				if !s.impose(r.Args[i], a, contrib) {
					return false
				}
			}
			return true
		case domain.List:
			if t.Fn != s.tab.ConsFunctor() {
				return false
			}
			return s.impose(r.Elem, t.Args[0], contrib) && s.impose(r, t.Args[1], contrib)
		}
		return false
	}
	return false
}

func (s *solver) constLeaf(t *term.Term) *domain.Term {
	if t.Fn.Name == s.tab.Nil {
		return domain.MkLeaf(domain.Nil)
	}
	return domain.MkLeaf(domain.Atom)
}

// project distributes a success (or demand) type over the syntactic
// shape of a goal argument, recording per-variable value bounds: when
// the call respects the pattern, the run-time value at each variable
// occurrence is below the projected type.
func (s *solver) project(st *domain.Term, t *term.Term, out map[*term.VarRef]*domain.Term) {
	if st == nil {
		st = domain.Top()
	}
	st = domain.Normalize(st)
	switch t.Kind {
	case term.KVar:
		cur := out[t.Ref]
		if cur == nil {
			cur = domain.Top()
		}
		out[t.Ref] = domain.Meet(s.tab, cur, st)
	case term.KStruct:
		for i, a := range t.Args {
			s.project(s.projectArg(st, t, i), a, out)
		}
	}
}

// projectArg gives the type of the i-th argument of struct t under
// value bound st.
func (s *solver) projectArg(st *domain.Term, t *term.Term, i int) *domain.Term {
	switch st.Kind {
	case domain.Struct:
		if st.Fn == t.Fn {
			return st.Args[i]
		}
	case domain.List:
		if t.Fn == s.tab.ConsFunctor() {
			if i == 0 {
				return st.Elem
			}
			return st // the tail is again a list
		}
	case domain.Ground:
		return st // subterms of a ground term are ground
	}
	return domain.Top()
}

// absOf abstracts a syntactic term with unconstrained variables: the
// value bound to a variable unified against t is below this type.
func (s *solver) absOf(t *term.Term) *domain.Term {
	switch t.Kind {
	case term.KVar:
		return domain.Top()
	case term.KInt:
		return domain.MkLeaf(domain.Intg)
	case term.KAtom:
		return s.constLeaf(t)
	case term.KStruct:
		args := make([]*domain.Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = s.absOf(a)
		}
		return domain.MkStructT(t.Fn, args...)
	}
	return domain.Top()
}

// headDemand abstracts the clause head under the final demands: the
// first occurrence of each variable carries its accumulated demand,
// repeated occurrences demand a fresh variable (so head unification is
// guaranteed to bind rather than test), and constants demand their
// class. An output-like argument — a structure serving purely as a
// binding template, see outputLike — demands an unbound variable
// instead of its shape. Local variables never bound before their first
// demanding goal must be satisfiable by a fresh unbound variable, or no
// call is safe.
func (s *solver) headDemand(c term.Clause, e env) *domain.Pattern {
	fn, ok := term.Indicator(c.Head)
	if !ok {
		return nil
	}
	seen := make(map[*term.VarRef]bool)
	var abs func(t *term.Term) *domain.Term
	abs = func(t *term.Term) *domain.Term {
		switch t.Kind {
		case term.KVar:
			if seen[t.Ref] {
				return domain.MkLeaf(domain.Var)
			}
			seen[t.Ref] = true
			return e.get(t.Ref)
		case term.KInt:
			return domain.MkLeaf(domain.Intg)
		case term.KAtom:
			return s.constLeaf(t)
		case term.KStruct:
			args := make([]*domain.Term, len(t.Args))
			for i, a := range t.Args {
				args[i] = abs(a)
			}
			return domain.MkStructT(t.Fn, args...)
		}
		return domain.Top()
	}
	varLeaf := domain.MkLeaf(domain.Var)
	args := make([]*domain.Term, fn.Arity)
	for i := range args {
		if t := c.Head.Args[i]; t.Kind == term.KStruct && s.outputLike(t, c.Head, e) {
			args[i] = varLeaf
			continue
		}
		args[i] = abs(c.Head.Args[i])
	}
	for v, r := range e {
		if !seen[v] && !isTop(r) && !domain.Leq(s.tab, varLeaf, r) {
			// A body-local variable is a fresh unbound variable when its
			// demanding goal runs; a demand no variable satisfies (ground
			// for an arithmetic operand, say) means the goal must error.
			return nil
		}
	}
	return domain.WidenPattern(s.tab, domain.NewPattern(fn, args), s.depth)
}

// outputLike reports whether head argument t is purely a binding
// template: a structure whose variables occur nowhere else in the head
// and whose residual demands all admit an unbound variable. An unbound
// call argument then unifies with a fresh copy of t — always
// successfully, leaving t's variables unbound, which every later demand
// tolerates — so the position's weakest demand is an unbound variable
// rather than t's shape (the classic deriv third argument). The two
// choices are incomparable; a structure that is also consumed (a
// variable demanded nv, or shared with an input argument) keeps the
// shape demand.
func (s *solver) outputLike(t, head *term.Term, e env) bool {
	varLeaf := domain.MkLeaf(domain.Var)
	for _, v := range varsOf(t, nil) {
		if countVar(head, v) != countVar(t, v) {
			return false
		}
		if r := e.get(v); !isTop(r) && !domain.Leq(s.tab, varLeaf, r) {
			return false
		}
	}
	return true
}

// countVar counts the occurrences of v in t.
func countVar(t *term.Term, v *term.VarRef) int {
	switch t.Kind {
	case term.KVar:
		if t.Ref == v {
			return 1
		}
	case term.KStruct:
		n := 0
		for _, a := range t.Args {
			n += countVar(a, v)
		}
		return n
	}
	return 0
}

// varsOf appends the distinct variables of t to out in first-occurrence
// order.
func varsOf(t *term.Term, out []*term.VarRef) []*term.VarRef {
	seen := make(map[*term.VarRef]bool, len(out))
	for _, v := range out {
		seen[v] = true
	}
	var walk func(t *term.Term)
	walk = func(t *term.Term) {
		switch t.Kind {
		case term.KVar:
			if !seen[t.Ref] {
				seen[t.Ref] = true
				out = append(out, t.Ref)
			}
		case term.KStruct:
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	walk(t)
	return out
}

// occurs reports whether variable v occurs in t.
func occurs(t *term.Term, v *term.VarRef) bool {
	switch t.Kind {
	case term.KVar:
		return t.Ref == v
	case term.KStruct:
		for _, a := range t.Args {
			if occurs(a, v) {
				return true
			}
		}
	}
	return false
}
