package backward

import (
	"errors"
	"fmt"
	"strings"

	"awam/internal/domain"
	"awam/internal/inc"
	"awam/internal/term"
)

// A demand record is the cached artifact for one component: one line
// per member, in member order, under the shared version header:
//
//	awam-bwd 1
//	demand part/4 part(nv, any, any, any)
//	demand qsort/3 qsort(nv, any, any)
//
// "bottom" stands for a nil demand. Patterns are stored as text
// (domain.PatternText) and re-parsed into the consuming run's symbol
// table, exactly like forward SCC records.

// ErrBadRecord reports a malformed or foreign demand record; the engine
// treats it as a cache miss and rewrites the record after solving.
var ErrBadRecord = errors.New("backward: malformed demand record")

func demandText(tab *term.Tab, p *domain.Pattern) string {
	if p == nil {
		return "bottom"
	}
	return domain.PatternText(tab, p)
}

// encodeDemands serializes the converged demands of one component.
func encodeDemands(tab *term.Tab, scc *inc.SCC, demands map[term.Functor]*domain.Pattern) []byte {
	var b strings.Builder
	b.WriteString(marshalHeader)
	b.WriteByte('\n')
	for _, m := range scc.Members {
		fmt.Fprintf(&b, "demand %s %s\n", tab.FuncString(m), demandText(tab, demands[m]))
	}
	return []byte(b.String())
}

// decodeDemands parses a record produced by encodeDemands, validating
// that it covers exactly scc's members in order — a mismatch means
// corruption or a fingerprint collision and decodes as a miss.
func decodeDemands(tab *term.Tab, scc *inc.SCC, data []byte) ([]*domain.Pattern, error) {
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != len(scc.Members)+1 {
		return nil, fmt.Errorf("%w: %d lines for %d members", ErrBadRecord, len(lines), len(scc.Members))
	}
	if strings.TrimSpace(lines[0]) != marshalHeader {
		return nil, fmt.Errorf("%w: not an %s record", ErrBadRecord, marshalHeader)
	}
	out := make([]*domain.Pattern, len(scc.Members))
	for i, m := range scc.Members {
		fields := strings.SplitN(strings.TrimSpace(lines[i+1]), " ", 3)
		if len(fields) != 3 || fields[0] != "demand" || fields[1] != tab.FuncString(m) {
			return nil, fmt.Errorf("%w: line %d: want demand for %s", ErrBadRecord, i+2, tab.FuncString(m))
		}
		if fields[2] == "bottom" {
			continue
		}
		p, err := domain.ParseAbsQuick(tab, fields[2])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadRecord, i+2, err)
		}
		if p == nil || p.Fn != m {
			return nil, fmt.Errorf("%w: line %d: pattern is not %s", ErrBadRecord, i+2, tab.FuncString(m))
		}
		out[i] = p
	}
	return out, nil
}
