// Package backward implements the demand-driven backward analysis: for
// each predicate in the demanded cone of a goal set, it infers the
// weakest abstract call pattern — a demand — under which the abstract
// semantics cannot refute success and every builtin is used error-free
// (arithmetic over evaluable expressions, type tests on the demanded
// class, and so on), in the spirit of King & Lu's backward analysis for
// logic programs.
//
// It is a second fixpoint over the machinery the forward engine already
// built. Demands live in the same widened type domain (internal/domain,
// extended with the gfp-direction Meet); propagation runs per strongly
// connected component of internal/inc's condensation, ascending — a
// component's demand depends only on its callees' demands and forward
// success patterns — and visits only the cone reachable from the goal
// predicates. Converged component demands are cached in cache.Store
// records content-addressed by the same fingerprints as forward
// summaries under a distinct format salt ("awam-bwd-fp 1"), so backward
// results warm-start through the memory/disk/fabric tiers exactly like
// forward ones: a clean repeat query re-executes zero components.
//
// The inferred demand is validated against the forward analysis, not
// the concrete semantics: analyzing forward from a demand must report a
// non-bottom success pattern (the soundness oracle wired into the fuzz
// harness). Joining clause demands and abstracting multiplicity away
// both lose precision in the usual abstract-interpretation sense;
// DESIGN §3.15 spells out the guarantees and the gaps.
package backward

import (
	"sort"
	"strings"
	"time"

	"awam/internal/cache"
	"awam/internal/domain"
	"awam/internal/inc"
	"awam/internal/term"
)

// Result is one backward analysis outcome: per-predicate demands over
// the visited cone, plus fixpoint and cache accounting.
type Result struct {
	Tab  *term.Tab
	Plan *inc.Plan
	// Demands maps every predicate of the visited cone — goal
	// predicates, their transitive demand callees, and undefined
	// pseudo-components — to its weakest inferred call pattern; nil is
	// bottom (no call can be shown safe: the predicate is undefined,
	// can never succeed, or needs something the domain cannot express).
	Demands map[term.Functor]*domain.Pattern
	// Visited lists the visited component indices, ascending; the cone
	// criterion is len(Visited) ≪ len(Plan.SCCs) on wide programs.
	Visited []int

	// Steps counts abstract transfer steps (one per body goal walked);
	// Iterations counts gfp sweeps over component members.
	Steps      int64
	Iterations int
	// VisitedSCCs = len(Visited); TotalSCCs = len(Plan.SCCs).
	// ReusedSCCs were served from the summary store; ExecutedSCCs ran
	// the gfp. Undefined pseudo-components count in neither.
	VisitedSCCs, TotalSCCs   int
	ReusedSCCs, ExecutedSCCs int
	// Store is the summary store's state after the run.
	Store cache.Stats
	// Phase wall-clock: condensation+cone, the lazy forward success
	// pre-pass (zero when every component was served), and the gfp.
	CondenseDur, ForwardDur, SolveDur time.Duration
}

// DemandFor returns the inferred demand for fn; ok is false when fn was
// outside the visited cone. A nil demand with ok=true is bottom.
func (r *Result) DemandFor(fn term.Functor) (*domain.Pattern, bool) {
	d, ok := r.Demands[fn]
	return d, ok
}

// marshalHeader versions the presentation format (and the cache record
// layout, which reuses the per-line shape).
const marshalHeader = "awam-bwd 1"

// Marshal renders the demands of the visited cone, one line per
// predicate sorted by name/arity — byte-identical for byte-identical
// results, which is what the cold-vs-warm acceptance check compares.
func (r *Result) Marshal() string {
	var keys []string
	for _, idx := range r.Visited {
		for _, m := range r.Plan.SCCs[idx].Members {
			keys = append(keys, r.Tab.FuncString(m)+" "+demandText(r.Tab, r.Demands[m]))
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(marshalHeader)
	b.WriteByte('\n')
	for _, k := range keys {
		b.WriteString("demand ")
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return b.String()
}

// Predicates returns the visited predicates sorted by name/arity.
func (r *Result) Predicates() []term.Functor {
	var fns []term.Functor
	for _, idx := range r.Visited {
		fns = append(fns, r.Plan.SCCs[idx].Members...)
	}
	sort.Slice(fns, func(i, j int) bool {
		return r.Tab.FuncString(fns[i]) < r.Tab.FuncString(fns[j])
	})
	return fns
}
