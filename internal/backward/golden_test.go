package backward

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"awam/internal/bench"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestDemandGolden pins the exact Marshal output for the Table 1
// programs: the demand set of each program under its default goals must
// be byte-identical to its golden file (regenerate with -update). These
// are the values README and DESIGN §3.15 quote — qsort's consumed first
// argument, deriv's output third argument, nreverse-as-generator — so a
// transfer change that shifts any of them must be a deliberate edit
// here, not an accident.
func TestDemandGolden(t *testing.T) {
	for _, name := range []string{
		"qsort", "nreverse", "log10", "ops8", "times10", "divide10",
		"tak", "serialise", "queens_8", "query", "zebra",
	} {
		t.Run(name, func(t *testing.T) {
			p, ok := bench.ByName(name)
			if !ok {
				t.Fatalf("no bench program %q", name)
			}
			_, res := analyzeBwd(t, p.Source)
			got := res.Marshal()
			golden := filepath.Join("testdata", name+".demand")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("demands for %s drifted:\ngot:\n%s\nwant:\n%s", name, got, want)
			}
		})
	}
}
