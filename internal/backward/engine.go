package backward

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"awam/internal/cache"
	"awam/internal/compiler"
	"awam/internal/core"
	"awam/internal/domain"
	"awam/internal/inc"
	"awam/internal/term"
	"awam/internal/wam"
)

// ErrUnknownGoal reports a demand query for a predicate the program
// neither defines nor calls; the facade maps it onto its typed option
// error.
var ErrUnknownGoal = errors.New("unknown goal predicate")

// fpFormat is the fingerprint schema salt for backward demand records:
// the condensation and content hashing are shared with the forward
// engine, but the two record universes must never satisfy each other's
// probes, even through a shared store.
const fpFormat = "awam-bwd-fp 1"

// Config parameterizes one backward analysis. The zero value selects
// the defaults (depth 4, 50M-step budget, goals from the module).
type Config struct {
	// Depth is the widening depth bound demands are closed under — the
	// same k as the forward analysis, and part of the cache salt.
	Depth int
	// MaxSteps bounds backward transfer steps; exceeding it aborts with
	// an error wrapping core.ErrStepLimit.
	MaxSteps int64
	// Goals are the demand entry points. Empty means main/0 when
	// defined, else every source-level predicate (expansion auxiliaries
	// excluded).
	Goals []term.Functor
}

func (c Config) withDefaults() Config {
	if c.Depth == 0 {
		c.Depth = 4
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 50_000_000
	}
	return c
}

// Engine runs demand queries against a summary store. Like the forward
// inc.Engine it is stateless apart from the store, so one engine serves
// many modules and the daemon shares one across requests.
type Engine struct {
	store cache.ChunkStore
}

// NewEngine returns an engine over store; a nil store gets a private
// in-memory store with the default budget.
func NewEngine(store cache.ChunkStore) *Engine {
	if store == nil {
		store, _ = cache.New() // memory-only construction cannot fail
	}
	return &Engine{store: store}
}

// Store exposes the engine's summary store (for stats and tests).
func (e *Engine) Store() cache.ChunkStore { return e.store }

// prefetcher and flusher mirror the optional tiered-store hooks the
// forward engine uses (see internal/inc): batch-fault the cone's
// fingerprints up front, ship novel records at the end.
type prefetcher interface {
	Prefetch(fps []cache.Fingerprint)
}

type flusher interface {
	Flush()
}

// Analyze infers demands for cfg.Goals over mod/prog. prog must be the
// source program mod was compiled from: demands are computed over its
// control-expanded clauses, whose auxiliary predicates line up with the
// compiled module's by construction.
func (e *Engine) Analyze(ctx context.Context, mod *wam.Module, prog *term.Program, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Depth < 0 {
		return nil, fmt.Errorf("backward: negative depth %d", cfg.Depth)
	}
	if cfg.MaxSteps < 0 {
		return nil, fmt.Errorf("backward: negative step budget %d", cfg.MaxSteps)
	}
	tab := mod.Tab
	exp, err := compiler.ExpandedProgram(tab, prog)
	if err != nil {
		return nil, err
	}
	builtins := wam.Builtins(tab)

	t0 := time.Now()
	plan := inc.NewPlanFormat(mod, fpFormat, fmt.Sprintf("bwd depth=%d", cfg.Depth))
	goals := cfg.Goals
	if len(goals) == 0 {
		goals = defaultGoals(tab, mod)
	}
	for _, g := range goals {
		if _, ok := plan.PredSCC[g]; !ok {
			return nil, fmt.Errorf("backward: %w %s", ErrUnknownGoal, tab.FuncString(g))
		}
	}
	visited := demandCone(tab, plan, exp, builtins, goals)

	res := &Result{
		Tab:         tab,
		Plan:        plan,
		Demands:     make(map[term.Functor]*domain.Pattern),
		Visited:     visited,
		VisitedSCCs: len(visited),
		TotalSCCs:   len(plan.SCCs),
	}
	res.CondenseDur = time.Since(t0)

	if p, ok := e.store.(prefetcher); ok {
		var fps []cache.Fingerprint
		for _, idx := range visited {
			if scc := plan.SCCs[idx]; !scc.Undefined {
				fps = append(fps, cache.Fingerprint(scc.Fingerprint))
			}
		}
		p.Prefetch(fps)
	}

	succ := make(map[term.Functor]*domain.Pattern)
	sol := &solver{
		tab:      tab,
		prog:     exp,
		builtins: builtins,
		depth:    cfg.Depth,
		demands:  res.Demands,
		succ:     succ,
		arithOps: arithFunctors(tab),
		steps:    &res.Steps,
	}
	// The forward success pre-pass runs at most once, and only when a
	// component actually needs solving: a fully-served query must not
	// pay for (or depend on) any forward work.
	forwardDone := false
	ensureForward := func() error {
		if forwardDone {
			return nil
		}
		forwardDone = true
		t := time.Now()
		defer func() { res.ForwardDur = time.Since(t) }()
		var entries []*domain.Pattern
		for _, idx := range visited {
			scc := plan.SCCs[idx]
			if scc.Undefined {
				continue
			}
			for _, m := range scc.Members {
				entries = append(entries, allAny(m))
			}
		}
		an := core.NewWith(mod, core.Config{Depth: cfg.Depth})
		fres, err := an.AnalyzeEntriesContext(ctx, entries)
		if err != nil {
			return fmt.Errorf("backward: forward success pre-pass: %w", err)
		}
		for _, en := range entries {
			succ[en.Fn] = fres.SuccessFor(en.Fn)
		}
		return nil
	}

	solveStart := time.Now()
	for _, idx := range visited {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		scc := plan.SCCs[idx]
		if scc.Undefined {
			res.Demands[scc.Members[0]] = nil
			continue
		}
		fp := cache.Fingerprint(scc.Fingerprint)
		if data, ok := e.store.Get(fp); ok {
			if ds, derr := decodeDemands(tab, scc, data); derr == nil {
				for i, m := range scc.Members {
					res.Demands[m] = ds[i]
				}
				res.ReusedSCCs++
				continue
			}
		}
		if err := ensureForward(); err != nil {
			return nil, err
		}
		if err := e.solveSCC(ctx, sol, scc, exp, cfg, res); err != nil {
			return nil, err
		}
		res.ExecutedSCCs++
		e.store.Put(fp, encodeDemands(tab, scc, res.Demands))
	}
	res.SolveDur = time.Since(solveStart)
	if f, ok := e.store.(flusher); ok {
		f.Flush()
	}
	res.Store = e.store.Stats()
	return res, nil
}

// defaultGoals is main/0 when defined, else every source predicate —
// the expansion auxiliaries ($or/$ite/$not) are implementation detail,
// not something a library author asks demands for.
func defaultGoals(tab *term.Tab, mod *wam.Module) []term.Functor {
	main := tab.Func("main", 0)
	if mod.Proc(main) != nil {
		return []term.Functor{main}
	}
	var goals []term.Functor
	for _, fn := range mod.Order {
		if !strings.HasPrefix(tab.Name(fn.Name), "$") {
			goals = append(goals, fn)
		}
	}
	if len(goals) == 0 {
		goals = append(goals, mod.Order...)
	}
	return goals
}

// demandCone returns the component indices the demand computation must
// visit, ascending: the goal components plus everything reachable over
// demand edges — body calls to user predicates, with negation
// auxiliaries excluded (backward demands nothing from \+ G) and
// fail-containing clauses skipped (their demand is bottom regardless of
// any callee).
func demandCone(tab *term.Tab, plan *inc.Plan, exp *term.Program, builtins map[term.Functor]wam.BuiltinID, goals []term.Functor) []int {
	seen := make(map[int]bool)
	var queue []int
	for _, g := range goals {
		if idx, ok := plan.PredSCC[g]; ok && !seen[idx] {
			seen[idx] = true
			queue = append(queue, idx)
		}
	}
	for len(queue) > 0 {
		idx := queue[0]
		queue = queue[1:]
		scc := plan.SCCs[idx]
		if scc.Undefined {
			continue
		}
		for _, m := range scc.Members {
			for _, c := range exp.ClausesOf(m) {
				if clauseHasFail(tab, c) {
					continue
				}
				for _, g := range c.Body {
					if g.Kind != term.KAtom && g.Kind != term.KStruct {
						continue
					}
					fn := g.Fn
					if fn.Arity == 0 && (fn.Name == tab.Cut || fn.Name == tab.True) {
						continue
					}
					if _, isB := builtins[fn]; isB {
						continue
					}
					if isNotAux(tab, fn) {
						continue
					}
					if j, ok := plan.PredSCC[fn]; ok && !seen[j] {
						seen[j] = true
						queue = append(queue, j)
					}
				}
			}
		}
	}
	visited := make([]int, 0, len(seen))
	for idx := range seen {
		visited = append(visited, idx)
	}
	sort.Ints(visited)
	return visited
}

func clauseHasFail(tab *term.Tab, c term.Clause) bool {
	for _, g := range c.Body {
		if g.Kind == term.KAtom && g.Fn.Arity == 0 && g.Fn.Name == tab.Fail {
			return true
		}
	}
	return false
}

// solveSCC runs the descending Kleene iteration for one component: all
// members start at the all-any demand (no constraint) and shrink until
// the sweep is a no-op. Each sweep computes every member from the same
// snapshot, so the result is schedule-free. The iteration cap is a
// backstop against oscillation through the widened lattice; hitting it
// commits the sound answer (bottom) for the whole component.
func (e *Engine) solveSCC(ctx context.Context, s *solver, scc *inc.SCC, exp *term.Program, cfg Config, res *Result) error {
	const maxIter = 256
	for _, m := range scc.Members {
		s.demands[m] = allAny(m)
	}
	for iter := 1; ; iter++ {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		if iter > maxIter {
			for _, m := range scc.Members {
				s.demands[m] = nil
			}
			res.Iterations += maxIter
			return nil
		}
		changed := false
		next := make([]*domain.Pattern, len(scc.Members))
		for k, m := range scc.Members {
			var nd *domain.Pattern
			if s.succ[m] != nil {
				// A predicate the forward analysis proves unable to succeed
				// has no safe call at all; otherwise one clause suffices, so
				// clause demands join.
				for _, c := range exp.ClausesOf(m) {
					nd = domain.LubPattern(s.tab, nd, s.clauseDemand(c))
					if *s.steps > cfg.MaxSteps {
						return fmt.Errorf("backward: %w", core.ErrStepLimit)
					}
				}
				nd = domain.WidenPattern(s.tab, nd, s.depth)
			}
			next[k] = nd
			if !eqPattern(s.demands[m], nd) {
				changed = true
			}
		}
		for k, m := range scc.Members {
			s.demands[m] = next[k]
		}
		if !changed {
			res.Iterations += iter
			return nil
		}
	}
}

func eqPattern(p, q *domain.Pattern) bool {
	if p == nil || q == nil {
		return p == q
	}
	return p.Equal(q)
}

func allAny(fn term.Functor) *domain.Pattern {
	args := make([]*domain.Term, fn.Arity)
	for i := range args {
		args[i] = domain.Top()
	}
	return domain.NewPattern(fn, args)
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return fmt.Errorf("%w: %w", core.ErrCanceled, ctx.Err())
	default:
		return nil
	}
}
