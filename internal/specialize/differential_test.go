package specialize_test

// The specialized transfer streams promise byte-identity: for every
// program and every strategy, a specialized analysis must produce the
// same Marshal output, execute the same number of abstract steps and
// charge the same opcode histogram as the generic switch engine — only
// wall time may differ. This file enforces that promise differentially
// over every committed program corpus: the generated fuzz seeds, the
// raw-source fuzz corpus, the Table 1 + extended benchmark suites, and
// the historical non-confluence counterexample.
//
// Strategy coverage: the worklist comparison is exact (Marshal + Steps
// + Opcodes; the sequential engine is fully deterministic). Parallel-2
// and parallel-4 compare Marshal only — the step totals of a parallel
// run are schedule-dependent in both engines. Since the widening
// became an upper closure the generic engine is schedule-confluent on
// every program, so parallel results are additionally pinned against
// the generic worklist (a divergence there is a confluence regression,
// not a reason to skip) and every ablation leg is compared under the
// parallel strategy too. The interner counters are deliberately NOT
// compared: the pre-interning specialization exists to eliminate
// interner traffic, so those counters are legitimately lower.

import (
	"bufio"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"awam/internal/bench"
	"awam/internal/compiler"
	"awam/internal/core"
	"awam/internal/fuzz"
	"awam/internal/inc"
	"awam/internal/parser"
	"awam/internal/specialize"
	"awam/internal/term"
	"awam/internal/wam"
)

// confluenceRegressionSrc is the historical non-confluence
// counterexample (see internal/fuzz/knownlimits_test.go): under the
// pre-closure domain its schedules landed on different sound
// post-fixpoints. It is now byte-identical under every strategy and is
// exercised with the full parallel comparison like any other program.
const confluenceRegressionSrc = `qsort([X|L], R, R0) :- partition(L, X, b1, L2), qsort(L2, R1, R0), qsort(L1, R, [X|R1]).
qsort([], R, R).
partition([X|L], Y, L1, [X|L2]).
partition([], _G0, [], []).
`

func buildMod(t *testing.T, src string) (*term.Tab, *wam.Module) {
	t.Helper()
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return tab, mod
}

// buildSpec assembles the specialized program the way the facade does:
// components from the module's condensation, fusion set from the static
// opcode profile.
func buildSpec(mod *wam.Module, opts specialize.Options) *specialize.Program {
	plan := inc.Condense(mod, core.Config{})
	comps := make([][]term.Functor, len(plan.SCCs))
	for i, scc := range plan.SCCs {
		comps[i] = scc.Members
	}
	return specialize.Build(mod, comps, specialize.StaticProfile(mod), opts)
}

func analyzeWith(t *testing.T, mod *wam.Module, strat core.Strategy, workers int, spec *specialize.Program) *core.Result {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Strategy = strat
	cfg.Parallelism = workers
	cfg.Spec = spec
	res, err := core.NewWith(mod, cfg).AnalyzeAll()
	if err != nil {
		t.Fatalf("analyze (spec=%v): %v", spec != nil, err)
	}
	return res
}

// checkIdentical is the exact worklist comparison.
func checkIdentical(t *testing.T, name string, generic, spec *core.Result) {
	t.Helper()
	if g, s := generic.Marshal(), spec.Marshal(); g != s {
		t.Errorf("%s: Marshal differs\n--- generic ---\n%s--- specialized ---\n%s", name, g, s)
	}
	if generic.Steps != spec.Steps {
		t.Errorf("%s: Steps differ: generic %d, specialized %d", name, generic.Steps, spec.Steps)
	}
	if generic.Metrics != nil && spec.Metrics != nil && generic.Metrics.Opcodes != spec.Metrics.Opcodes {
		for op := range generic.Metrics.Opcodes {
			if generic.Metrics.Opcodes[op] != spec.Metrics.Opcodes[op] {
				t.Errorf("%s: opcode %v count: generic %d, specialized %d",
					name, wam.Op(op), generic.Metrics.Opcodes[op], spec.Metrics.Opcodes[op])
			}
		}
	}
}

// ablationLegs are the specializer configurations under test; every one
// must be byte-identical to generic.
var ablationLegs = []struct {
	name string
	opts specialize.Options
}{
	{"flatten", specialize.Options{}},
	{"fuse", specialize.Options{Fuse: true}},
	{"full", specialize.Options{Fuse: true, PreIntern: true}},
}

// diffProgram runs the full differential comparison for one source.
func diffProgram(t *testing.T, src string, parallel bool) {
	t.Helper()
	_, mod := buildMod(t, src)
	wl := analyzeWith(t, mod, core.StrategyWorklist, 0, nil)
	for _, leg := range ablationLegs {
		spec := buildSpec(mod, leg.opts)
		checkIdentical(t, "worklist/"+leg.name, wl, analyzeWith(t, mod, core.StrategyWorklist, 0, spec))
	}
	if !parallel {
		return
	}
	for _, workers := range []int{2, 4} {
		genPar := analyzeWith(t, mod, core.StrategyParallel, workers, nil)
		if genPar.Marshal() != wl.Marshal() {
			t.Errorf("parallel-%d: generic engine diverged from its own worklist (confluence regression)\n--- worklist ---\n%s--- parallel ---\n%s",
				workers, wl.Marshal(), genPar.Marshal())
			continue
		}
		for _, leg := range ablationLegs {
			spec := buildSpec(mod, leg.opts)
			specPar := analyzeWith(t, mod, core.StrategyParallel, workers, spec)
			if got := specPar.Marshal(); got != wl.Marshal() {
				t.Errorf("parallel-%d/%s: Marshal differs\n--- generic ---\n%s--- specialized ---\n%s",
					workers, leg.name, wl.Marshal(), got)
			}
		}
	}
}

// TestDifferentialBench covers the Table 1 and extended benchmark
// suites under worklist (all three ablation legs) and parallel-2/4.
func TestDifferentialBench(t *testing.T) {
	for _, p := range bench.AllPrograms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			diffProgram(t, p.Source, true)
		})
	}
}

// TestDifferentialFuzzSeeds covers the committed generated-fuzz seed
// corpus (testdata/fuzz/FuzzSoundness in internal/fuzz): each seed file
// holds the generator seed of one program.
func TestDifferentialFuzzSeeds(t *testing.T) {
	dir := filepath.Join("..", "fuzz", "testdata", "fuzz", "FuzzSoundness")
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("committed fuzz corpus missing: %v", err)
	}
	ran := 0
	for _, f := range files {
		vals, err := readCorpusFile(filepath.Join(dir, f.Name()))
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if len(vals) != 1 {
			t.Fatalf("%s: want 1 corpus value, got %d", f.Name(), len(vals))
		}
		seed, err := strconv.ParseInt(vals[0], 10, 64)
		if err != nil {
			t.Fatalf("%s: bad seed: %v", f.Name(), err)
		}
		c := fuzz.Generate(seed, fuzz.DefaultGenConfig())
		name := f.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			diffProgram(t, c.Source, true)
		})
		ran++
	}
	if ran == 0 {
		t.Fatal("empty fuzz seed corpus")
	}
}

// TestDifferentialFuzzSources covers the committed raw-source fuzz
// corpus (testdata/fuzz/FuzzSoundnessSource): two strings per file,
// program source and query; only the source matters here.
func TestDifferentialFuzzSources(t *testing.T) {
	dir := filepath.Join("..", "fuzz", "testdata", "fuzz", "FuzzSoundnessSource")
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("committed fuzz corpus missing: %v", err)
	}
	ran := 0
	for _, f := range files {
		vals, err := readCorpusFile(filepath.Join(dir, f.Name()))
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if len(vals) != 2 {
			t.Fatalf("%s: want 2 corpus values, got %d", f.Name(), len(vals))
		}
		src := vals[0]
		name := f.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if _, err := parser.ParseProgram(term.NewTab(), src); err != nil {
				t.Skipf("corpus entry does not parse: %v", err)
			}
			diffProgram(t, src, true)
		})
		ran++
	}
	if ran == 0 {
		t.Fatal("empty fuzz source corpus")
	}
}

// TestDifferentialConfluenceRegression pins the historical
// counterexample with the full comparison, parallel legs included: the
// program that once separated schedules must now be byte-identical
// across every engine and strategy.
func TestDifferentialConfluenceRegression(t *testing.T) {
	diffProgram(t, confluenceRegressionSrc, true)
}

// readCorpusFile parses the "go test fuzz v1" encoding: a header line
// followed by one Go-syntax literal per line (string("...") or
// int64(N)); the literal payloads are returned in order.
func readCorpusFile(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var vals []string
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if first {
			first = false
			continue // "go test fuzz v1"
		}
		if line == "" {
			continue
		}
		open := strings.Index(line, "(")
		close := strings.LastIndex(line, ")")
		if open < 0 || close < open {
			continue
		}
		payload := line[open+1 : close]
		if strings.HasPrefix(line, "string(") {
			s, err := strconv.Unquote(payload)
			if err != nil {
				return nil, err
			}
			vals = append(vals, s)
		} else {
			vals = append(vals, payload)
		}
	}
	return vals, sc.Err()
}
