package specialize_test

import (
	"os"
	"path/filepath"
	"testing"

	"awam/internal/bench"
	"awam/internal/specialize"
)

// TestSpecDisasmGolden pins the specialized instruction streams of the
// Table 1 suite against goldens under testdata/: the fused
// superinstruction selection, the flattened component layout and the
// pre-resolved call sites all show up in review as a plain-text diff
// whenever the specializer's output changes. Regenerate with
// SPEC_WRITE_GOLDEN=1 after an intentional change.
func TestSpecDisasmGolden(t *testing.T) {
	write := os.Getenv("SPEC_WRITE_GOLDEN") != ""
	if write {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range bench.Programs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tab, mod := buildMod(t, p.Source)
			spec := buildSpec(mod, specialize.Options{Fuse: true, PreIntern: true})
			text := specialize.Disasm(tab, spec)
			golden := filepath.Join("testdata", p.Name+".spec")
			if write {
				if err := os.WriteFile(golden, []byte(text), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with SPEC_WRITE_GOLDEN=1 to regenerate): %v", err)
			}
			if text != string(want) {
				t.Fatalf("specialized stream drifted from %s; regenerate with SPEC_WRITE_GOLDEN=1 if intentional\n--- got ---\n%s", golden, text)
			}
		})
	}
}
