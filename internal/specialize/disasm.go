package specialize

import (
	"fmt"
	"strings"

	"awam/internal/rt"
	"awam/internal/term"
)

// Disasm renders the specialized program deterministically: components
// in condensation order, clauses in stream order, one pre-resolved
// word per line. The golden tests compare it byte for byte, like the
// WAM disassembly goldens.
func Disasm(tab *term.Tab, p *Program) string {
	var b strings.Builder
	comps, clauses, fused, static := p.Stats()
	fmt.Fprintf(&b, "%% specialize v%d fuse=%t pre=%t: %d components, %d clauses, %d fused, %d static sites\n",
		Version, p.Opts.Fuse, p.Opts.PreIntern, comps, clauses, fused, static)
	for _, cs := range p.Comps {
		names := make([]string, len(cs.Members))
		for i, fn := range cs.Members {
			names[i] = tab.FuncString(fn)
		}
		fmt.Fprintf(&b, "%% component %d {%s} mask=%s\n", cs.Index, strings.Join(names, ", "), maskString(cs.FusionMask))
		for ci, info := range cs.Clauses {
			end := int32(len(cs.Code))
			if ci+1 < len(cs.Clauses) {
				end = cs.Clauses[ci+1].Off
			}
			fmt.Fprintf(&b, "%% %s clause @%d (maxX=%d, fused=%d):\n",
				tab.FuncString(info.Fn), info.Addr, info.MaxX, info.Fused)
			for off := info.Off; off < end; off++ {
				fmt.Fprintf(&b, "%5d  %s\n", off, disasmWord(tab, cs, cs.Code[off]))
			}
		}
	}
	return b.String()
}

func maskString(mask uint32) string {
	if mask == 0 {
		return "-"
	}
	var parts []string
	for k := 0; k < NumFusedKinds; k++ {
		if mask&(1<<uint(k)) != 0 {
			parts = append(parts, fusedNames[k])
		}
	}
	return strings.Join(parts, "+")
}

func cellString(tab *term.Tab, c rt.Cell) string {
	switch c.Tag {
	case rt.Con:
		return tab.Name(c.F.Name)
	case rt.Int:
		return fmt.Sprintf("%d", c.I)
	default:
		return fmt.Sprintf("cell(tag=%d)", c.Tag)
	}
}

func slotString(tab *term.Tab, cs *CompStream, kind uint8, w fmt.Stringer, operand uint16) string {
	switch kind {
	case SlotVarX:
		return fmt.Sprintf("%s X%d", w, operand)
	case SlotValX:
		return fmt.Sprintf("%s X%d", w, operand)
	case SlotCell:
		return fmt.Sprintf("%s %s", w, cellString(tab, cs.Cells[operand]))
	}
	return fmt.Sprintf("slot(%d)", kind)
}

func callString(tab *term.Tab, cs *CompStream, k int32) string {
	cr := cs.Calls[k]
	s := tab.FuncString(cr.Fn)
	if cr.Comp == int32(cs.Index) {
		s += fmt.Sprintf(" [intra clause0=%d]", cr.Clause0)
	} else if cr.Comp >= 0 {
		s += fmt.Sprintf(" [comp %d]", cr.Comp)
	} else {
		s += " [extern]"
	}
	if cr.Static >= 0 {
		s += fmt.Sprintf(" [static #%d]", cr.Static)
	}
	return s
}

func disasmWord(tab *term.Tab, cs *CompStream, ins SInstr) string {
	switch ins.Op {
	case SNop:
		return "s_nop"
	case SGetVarX:
		return fmt.Sprintf("s_get_variable X%d, A%d", ins.B, ins.A)
	case SGetVarY:
		return fmt.Sprintf("s_get_variable Y%d, A%d", ins.B, ins.A)
	case SGetValX:
		return fmt.Sprintf("s_get_value X%d, A%d", ins.B, ins.A)
	case SGetValY:
		return fmt.Sprintf("s_get_value Y%d, A%d", ins.B, ins.A)
	case SGetCell:
		return fmt.Sprintf("s_get %s, A%d  (%s)", cellString(tab, cs.Cells[ins.K]), ins.A, ins.W)
	case SGetList:
		return fmt.Sprintf("s_get_list A%d  (%s)", ins.A, ins.W)
	case SGetStruct:
		return fmt.Sprintf("s_get_structure %s, A%d  (%s)", tab.FuncString(cs.Fns[ins.K]), ins.A, ins.W)
	case SPutVarX:
		return fmt.Sprintf("s_put_variable X%d, A%d", ins.B, ins.A)
	case SPutVarY:
		return fmt.Sprintf("s_put_variable Y%d, A%d", ins.B, ins.A)
	case SPutValX:
		return fmt.Sprintf("s_put_value X%d, A%d", ins.B, ins.A)
	case SPutValY:
		return fmt.Sprintf("s_put_value Y%d, A%d", ins.B, ins.A)
	case SPutCell:
		return fmt.Sprintf("s_put %s, A%d  (%s)", cellString(tab, cs.Cells[ins.K]), ins.A, ins.W)
	case SPutList:
		return fmt.Sprintf("s_put_list A%d", ins.A)
	case SPutStruct:
		return fmt.Sprintf("s_put_structure %s, A%d", tab.FuncString(cs.Fns[ins.K]), ins.A)
	case SUnifyVarX:
		return fmt.Sprintf("s_unify_variable X%d", ins.A)
	case SUnifyVarY:
		return fmt.Sprintf("s_unify_variable Y%d", ins.A)
	case SUnifyValX:
		return fmt.Sprintf("s_unify_value X%d", ins.A)
	case SUnifyValY:
		return fmt.Sprintf("s_unify_value Y%d", ins.A)
	case SUnifyCell:
		return fmt.Sprintf("s_unify %s  (%s)", cellString(tab, cs.Cells[ins.K]), ins.W)
	case SUnifyVoid:
		return fmt.Sprintf("s_unify_void %d", ins.A)
	case SAllocate:
		return fmt.Sprintf("s_allocate %d", ins.A)
	case SDeallocate:
		return "s_deallocate"
	case SCall:
		return "s_call " + callString(tab, cs, ins.K)
	case SExecute:
		return "s_execute " + callString(tab, cs, ins.K)
	case SProceed:
		return "s_proceed"
	case SBuiltin:
		return fmt.Sprintf("s_builtin #%d/%d", ins.A, ins.B)
	case SHalt:
		return "s_halt"
	case SCutNop:
		return fmt.Sprintf("s_cut_nop  (%s)", ins.W)
	case SFGetList2:
		return fmt.Sprintf("FGET_LIST2 A%d {%s; %s}", ins.A,
			slotString(tab, cs, ins.M&3, ins.W1, ins.B),
			slotString(tab, cs, (ins.M>>2)&3, ins.W2, ins.C))
	case SFGetStruct2:
		return fmt.Sprintf("FGET_STRUCT2 %s, A%d {%s; %s}", tab.FuncString(cs.Fns[ins.K]), ins.A,
			slotString(tab, cs, ins.M&3, ins.W1, ins.B),
			slotString(tab, cs, (ins.M>>2)&3, ins.W2, ins.C))
	case SFPutList2:
		return fmt.Sprintf("FPUT_LIST2 A%d {%s; %s}", ins.A,
			slotString(tab, cs, ins.M&3, ins.W1, ins.B),
			slotString(tab, cs, (ins.M>>2)&3, ins.W2, ins.C))
	case SFPutStruct2:
		return fmt.Sprintf("FPUT_STRUCT2 %s, A%d {%s; %s}", tab.FuncString(cs.Fns[ins.K]), ins.A,
			slotString(tab, cs, ins.M&3, ins.W1, ins.B),
			slotString(tab, cs, (ins.M>>2)&3, ins.W2, ins.C))
	}
	return fmt.Sprintf("sop(%d)", ins.Op)
}
