package specialize

import (
	"awam/internal/rt"
	"awam/internal/term"
	"awam/internal/wam"
)

// maxTrackRegs bounds the static-call simulation's register file;
// clauses using higher registers simply get no static call sites.
const maxTrackRegs = 128

// Build specializes a compiled module into per-component transfer
// streams. comps is the module's condensation (e.g. the SCC plan's
// member lists, in topological order); nil means one singleton
// component per predicate in definition order. prof drives fusion
// selection (StaticProfile(mod) when no measured histogram exists).
//
// Build is total: clauses the translator cannot prove straight-line
// (unexpected opcodes, register overflow) are left unspecialized and
// the engine falls back to the generic switch for them.
func Build(mod *wam.Module, comps [][]term.Functor, prof *Profile, opts Options) *Program {
	if comps == nil {
		comps = make([][]term.Functor, 0, len(mod.Order))
		for _, fn := range mod.Order {
			comps = append(comps, []term.Functor{fn})
		}
	}
	b := &builder{mod: mod, prof: prof, opts: opts}
	prog := &Program{
		Opts: opts,
		locs: make([]Loc, len(mod.Code)),
	}
	for i := range prog.locs {
		prog.locs[i] = Loc{Comp: -1, Clause: -1}
	}
	compOf := make(map[term.Functor]int32, len(mod.Order))
	for ci, members := range comps {
		for _, fn := range members {
			compOf[fn] = int32(ci)
		}
	}
	b.compOf = compOf
	for ci, members := range comps {
		cs := &CompStream{
			Index:      ci,
			Members:    members,
			FusionMask: enabledMask(prof, members, opts),
		}
		b.cs = cs
		b.cellIdx = make(map[rt.Cell]int32)
		b.fnIdx = make(map[term.Functor]int32)
		for _, fn := range members {
			proc := mod.Proc(fn)
			if proc == nil {
				continue
			}
			for _, addr := range proc.Clauses {
				if ci2 := prog.locs[addr]; ci2.Comp >= 0 {
					continue // shared clause address already specialized
				}
				info, ok := b.translateClause(fn, addr)
				if !ok {
					continue
				}
				prog.locs[addr] = Loc{Comp: int32(ci), Clause: int32(len(cs.Clauses))}
				cs.Clauses = append(cs.Clauses, info)
			}
		}
		prog.Comps = append(prog.Comps, cs)
	}
	// Second pass: resolve call sites now that every callee's stream
	// location is known.
	for _, cs := range prog.Comps {
		for i := range cs.Calls {
			cr := &cs.Calls[i]
			cr.Comp = -1
			cr.Clause0 = -1
			if ci, ok := compOf[cr.Fn]; ok {
				cr.Comp = ci
				if proc := mod.Proc(cr.Fn); proc != nil && len(proc.Clauses) > 0 {
					if loc := prog.Loc(proc.Clauses[0]); loc.Comp == ci {
						cr.Clause0 = loc.Clause
					}
				}
			}
		}
	}
	prog.StaticSites = b.staticSites
	prog.Hash = hashProgram(mod.Tab, prog.Comps, opts)
	return prog
}

type builder struct {
	mod    *wam.Module
	prof   *Profile
	opts   Options
	compOf map[term.Functor]int32

	cs          *CompStream
	cellIdx     map[rt.Cell]int32
	fnIdx       map[term.Functor]int32
	staticSites int
}

func (b *builder) cell(c rt.Cell) int32 {
	if i, ok := b.cellIdx[c]; ok {
		return i
	}
	i := int32(len(b.cs.Cells))
	b.cs.Cells = append(b.cs.Cells, c)
	b.cellIdx[c] = i
	return i
}

func (b *builder) fn(f term.Functor) int32 {
	if i, ok := b.fnIdx[f]; ok {
		return i
	}
	i := int32(len(b.cs.Fns))
	b.cs.Fns = append(b.cs.Fns, f)
	b.fnIdx[f] = i
	return i
}

// unifyCtx tracks which anchor governs the current unify run during
// the static-call simulation: unify slots after a put build fresh
// structure (context-independent), after a get they bind incoming
// arguments (context-dependent).
type unifyCtx uint8

const (
	ctxGet unifyCtx = iota
	ctxPut
)

// translateClause compiles one clause into the current component
// stream. It mirrors runClause's straight-line walk: from the clause
// address to its proceed/execute/halt, bailing out (ok=false) on
// anything else — such clauses stay on the generic switch.
//
// Alongside translation it runs the static-call simulation: a register
// is static when its value was rebuilt in this clause from constants
// and fresh variables only, so the abstracted calling pattern at a
// call site whose arguments are all static is identical on every
// execution. Any call, execute or builtin poisons all registers (its
// success application may bind fresh variables reachable from them),
// and unify runs governed by a get poison the registers they write
// (they alias incoming subterms).
func (b *builder) translateClause(fn term.Functor, addr int) (ClauseInfo, bool) {
	code := b.mod.Code
	var out []SInstr
	maxX := 0
	static := [maxTrackRegs]bool{}
	trackOK := true
	uctx := ctxGet

	poisonAll := func() {
		static = [maxTrackRegs]bool{}
	}
	setStatic := func(reg int, v bool) {
		if reg >= 0 && reg < maxTrackRegs {
			static[reg] = v
		} else if v {
			trackOK = false
		}
	}
	isStatic := func(reg int) bool {
		return trackOK && reg >= 0 && reg < maxTrackRegs && static[reg]
	}

	reg16 := func(n int) (uint16, bool) {
		if n < 0 || n > 0xFFFF {
			return 0, false
		}
		return uint16(n), true
	}

	for p := addr; ; p++ {
		if p >= len(code) {
			return ClauseInfo{}, false
		}
		ins := code[p]
		if ins.A1 > maxX {
			maxX = ins.A1
		}
		if ins.A2 > maxX {
			maxX = ins.A2
		}
		a1, ok1 := reg16(ins.A1)
		a2, ok2 := reg16(ins.A2)
		if !ok1 || !ok2 {
			return ClauseInfo{}, false
		}
		w := ins.Op
		switch ins.Op {
		case wam.OpNop:
			out = append(out, SInstr{Op: SNop, W: w})

		case wam.OpGetVarX:
			out = append(out, SInstr{Op: SGetVarX, W: w, A: a1, B: a2})
			setStatic(ins.A2, false)
		case wam.OpGetVarY:
			out = append(out, SInstr{Op: SGetVarY, W: w, A: a1, B: a2})
		case wam.OpGetValX:
			out = append(out, SInstr{Op: SGetValX, W: w, A: a1, B: a2})
		case wam.OpGetValY:
			out = append(out, SInstr{Op: SGetValY, W: w, A: a1, B: a2})
		case wam.OpGetConst, wam.OpGetConstCmp:
			out = append(out, SInstr{Op: SGetCell, W: w, A: a1, K: b.cell(rt.MkCon(ins.Fn.Name))})
		case wam.OpGetInt, wam.OpGetIntCmp:
			out = append(out, SInstr{Op: SGetCell, W: w, A: a1, K: b.cell(rt.MkInt(ins.I))})
		case wam.OpGetNil, wam.OpGetNilCmp:
			out = append(out, SInstr{Op: SGetCell, W: w, A: a1, K: b.cell(rt.MkCon(b.mod.Tab.Nil))})
		case wam.OpGetList, wam.OpGetListRead:
			out = append(out, SInstr{Op: SGetList, W: w, A: a1})
			uctx = ctxGet
		case wam.OpGetStruct, wam.OpGetStructRead:
			out = append(out, SInstr{Op: SGetStruct, W: w, A: a1, K: b.fn(ins.Fn)})
			uctx = ctxGet

		case wam.OpPutVarX:
			out = append(out, SInstr{Op: SPutVarX, W: w, A: a1, B: a2})
			setStatic(ins.A1, true)
			setStatic(ins.A2, true)
		case wam.OpPutVarY:
			out = append(out, SInstr{Op: SPutVarY, W: w, A: a1, B: a2})
			setStatic(ins.A1, true)
		case wam.OpPutValX:
			out = append(out, SInstr{Op: SPutValX, W: w, A: a1, B: a2})
			setStatic(ins.A1, isStatic(ins.A2))
		case wam.OpPutValY:
			out = append(out, SInstr{Op: SPutValY, W: w, A: a1, B: a2})
			setStatic(ins.A1, false)
		case wam.OpPutConst:
			out = append(out, SInstr{Op: SPutCell, W: w, A: a1, K: b.cell(rt.MkCon(ins.Fn.Name))})
			setStatic(ins.A1, true)
		case wam.OpPutInt:
			out = append(out, SInstr{Op: SPutCell, W: w, A: a1, K: b.cell(rt.MkInt(ins.I))})
			setStatic(ins.A1, true)
		case wam.OpPutNil:
			out = append(out, SInstr{Op: SPutCell, W: w, A: a1, K: b.cell(rt.MkCon(b.mod.Tab.Nil))})
			setStatic(ins.A1, true)
		case wam.OpPutList:
			out = append(out, SInstr{Op: SPutList, W: w, A: a1})
			// Static until a following unify slot proves otherwise.
			setStatic(ins.A1, true)
			uctx = ctxPut
		case wam.OpPutStruct:
			out = append(out, SInstr{Op: SPutStruct, W: w, A: a1, K: b.fn(ins.Fn)})
			setStatic(ins.A1, true)
			uctx = ctxPut

		case wam.OpUnifyVarX:
			out = append(out, SInstr{Op: SUnifyVarX, W: w, A: a2})
			// After a put the slot pushes a fresh variable (static);
			// after a get it aliases an incoming subterm.
			setStatic(ins.A2, uctx == ctxPut)
		case wam.OpUnifyVarY:
			out = append(out, SInstr{Op: SUnifyVarY, W: w, A: a2})
		case wam.OpUnifyValX:
			out = append(out, SInstr{Op: SUnifyValX, W: w, A: a2})
			if uctx == ctxGet {
				// Read mode may bind the register's referent to an
				// incoming subterm.
				setStatic(ins.A2, false)
			} else if !isStatic(ins.A2) {
				// A dynamic cell flows into the structure being built.
				b.poisonPutAnchor(out, &static)
			}
		case wam.OpUnifyValY:
			out = append(out, SInstr{Op: SUnifyValY, W: w, A: a2})
			if uctx == ctxPut {
				b.poisonPutAnchor(out, &static)
			}
		case wam.OpUnifyConst:
			out = append(out, SInstr{Op: SUnifyCell, W: w, K: b.cell(rt.MkCon(ins.Fn.Name))})
		case wam.OpUnifyInt:
			out = append(out, SInstr{Op: SUnifyCell, W: w, K: b.cell(rt.MkInt(ins.I))})
		case wam.OpUnifyNil:
			out = append(out, SInstr{Op: SUnifyCell, W: w, K: b.cell(rt.MkCon(b.mod.Tab.Nil))})
		case wam.OpUnifyVoid:
			out = append(out, SInstr{Op: SUnifyVoid, W: w, A: a2})

		case wam.OpAllocate:
			out = append(out, SInstr{Op: SAllocate, W: w, A: a2})
		case wam.OpDeallocate:
			out = append(out, SInstr{Op: SDeallocate, W: w})
		case wam.OpCall, wam.OpExecute:
			op := SCall
			if ins.Op == wam.OpExecute {
				op = SExecute
			}
			cr := CallRef{Fn: ins.Fn, Comp: -1, Clause0: -1, Static: -1}
			if b.opts.PreIntern && b.allArgsStatic(ins.Fn.Arity, &static, trackOK) {
				cr.Static = int32(b.staticSites)
				b.staticSites++
			}
			k := int32(len(b.cs.Calls))
			b.cs.Calls = append(b.cs.Calls, cr)
			if ins.Fn.Arity > maxX {
				maxX = ins.Fn.Arity
			}
			out = append(out, SInstr{Op: op, W: w, K: k})
			poisonAll()
			if ins.Op == wam.OpExecute {
				return b.finishClause(fn, addr, out, maxX), true
			}
		case wam.OpProceed:
			out = append(out, SInstr{Op: SProceed, W: w})
			return b.finishClause(fn, addr, out, maxX), true
		case wam.OpBuiltin:
			out = append(out, SInstr{Op: SBuiltin, W: w, A: a1, B: a2})
			poisonAll()
		case wam.OpHalt:
			out = append(out, SInstr{Op: SHalt, W: w})
			return b.finishClause(fn, addr, out, maxX), true

		case wam.OpNeckCut, wam.OpGetLevel, wam.OpCutTo:
			out = append(out, SInstr{Op: SCutNop, W: w})

		default:
			// Choice or indexing instruction inside a clause body: not a
			// straight-line clause. Leave it to the generic switch.
			return ClauseInfo{}, false
		}
	}
}

// poisonPutAnchor marks the structure currently being built (and
// anything that may alias it) context-dependent. We cannot cheaply
// name the anchor register here, so poison the whole file — rare
// enough (a dynamic unify_value inside a put run) not to matter.
func (b *builder) poisonPutAnchor(_ []SInstr, static *[maxTrackRegs]bool) {
	*static = [maxTrackRegs]bool{}
}

func (b *builder) allArgsStatic(arity int, static *[maxTrackRegs]bool, trackOK bool) bool {
	if !trackOK || arity >= maxTrackRegs {
		return false
	}
	for i := 1; i <= arity; i++ {
		if !static[i] {
			return false
		}
	}
	return true
}

// finishClause applies the component's fusion rules to the translated
// body and records it in the stream.
func (b *builder) finishClause(fn term.Functor, addr int, body []SInstr, maxX int) ClauseInfo {
	fused := 0
	if b.cs.FusionMask != 0 {
		body, fused = fuseClause(body, b.cs.FusionMask)
	}
	if maxX > 0xFFFF {
		maxX = 0xFFFF
	}
	info := ClauseInfo{
		Fn:    fn,
		Addr:  int32(addr),
		Off:   int32(len(b.cs.Code)),
		MaxX:  uint16(maxX),
		Fused: uint16(fused),
	}
	b.cs.Code = append(b.cs.Code, body...)
	return info
}

// fuseSlot classifies a word as a fusable unify slot, returning its
// slot kind, charge opcode and 16-bit operand.
func fuseSlot(ins SInstr) (kind uint8, w wam.Op, operand uint16, ok bool) {
	switch ins.Op {
	case SUnifyVarX:
		return SlotVarX, ins.W, ins.A, true
	case SUnifyValX:
		return SlotValX, ins.W, ins.A, true
	case SUnifyCell:
		if ins.K >= 0 && ins.K <= 0xFFFF {
			return SlotCell, ins.W, uint16(ins.K), true
		}
	}
	return 0, 0, 0, false
}

// fuseClause rewrites anchor+unify+unify triples into single
// superinstruction words according to the enabled rule mask.
func fuseClause(body []SInstr, mask uint32) ([]SInstr, int) {
	out := body[:0]
	fused := 0
	for i := 0; i < len(body); i++ {
		ins := body[i]
		var fop SOp
		var bit uint32
		switch ins.Op {
		case SGetList:
			fop, bit = SFGetList2, FuseGetList
		case SGetStruct:
			fop, bit = SFGetStruct2, FuseGetStruct
		case SPutList:
			fop, bit = SFPutList2, FusePutList
		case SPutStruct:
			fop, bit = SFPutStruct2, FusePutStruct
		}
		if fop != 0 && mask&bit != 0 && i+2 < len(body) {
			k1, w1, op1, ok1 := fuseSlot(body[i+1])
			k2, w2, op2, ok2 := fuseSlot(body[i+2])
			if ok1 && ok2 {
				out = append(out, SInstr{
					Op: fop,
					W:  ins.W, W1: w1, W2: w2,
					M: k1 | k2<<2,
					A: ins.A, B: op1, C: op2,
					K: ins.K,
				})
				fused++
				i += 2
				continue
			}
		}
		out = append(out, ins)
	}
	return out, fused
}
