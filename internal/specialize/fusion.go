package specialize

import (
	"fmt"
	"hash/fnv"
	"sort"

	"awam/internal/term"
	"awam/internal/wam"
)

// Fusion-rule bits for CompStream.FusionMask. Each rule fuses one
// anchor opcode with its two following unify slots into a single
// superinstruction word.
const (
	FuseGetList uint32 = 1 << iota // get_list + unify, unify
	FuseGetStruct
	FusePutList
	FusePutStruct
)

// NumFusedKinds is the superinstruction count — the size of the fused
// histogram in Metrics.
const NumFusedKinds = 4

// hotShareDen sets the hotness threshold: a component is hot when its
// predicates carry at least 1/hotShareDen (~0.1%) of the profile's
// total predicate steps. Cold components keep plain flattened streams;
// fusing them would grow the fused histogram for no measurable win.
const hotShareDen = 1024

// FusedKindOf maps a fused SOp to its histogram kind, or -1.
func FusedKindOf(op SOp) int {
	switch op {
	case SFGetList2:
		return 0
	case SFGetStruct2:
		return 1
	case SFPutList2:
		return 2
	case SFPutStruct2:
		return 3
	}
	return -1
}

var fusedNames = [NumFusedKinds]string{"fget_list2", "fget_struct2", "fput_list2", "fput_struct2"}

var fusedAnchors = [NumFusedKinds]string{"get_list", "get_structure", "put_list", "put_structure"}

// FusedKindName returns the superinstruction mnemonic for a histogram
// kind.
func FusedKindName(k int) string {
	if k < 0 || k >= NumFusedKinds {
		return fmt.Sprintf("fused(%d)", k)
	}
	return fusedNames[k]
}

// FusedKindBases describes the base-opcode decomposition of a kind —
// rendered next to the fused histogram so readers can reconcile it with
// the base opcode rows (each fused execution also counted its anchor
// and both slot opcodes there).
func FusedKindBases(k int) string {
	if k < 0 || k >= NumFusedKinds {
		return "?"
	}
	return fusedAnchors[k] + " + 2 unify"
}

// anchorCount sums a rule's anchor opcode occurrences in the profile,
// including the optimizer's known-nonvar variants.
func anchorCount(prof *Profile, kind int) int64 {
	switch kind {
	case 0:
		return prof.Opcodes[wam.OpGetList] + prof.Opcodes[wam.OpGetListRead]
	case 1:
		return prof.Opcodes[wam.OpGetStruct] + prof.Opcodes[wam.OpGetStructRead]
	case 2:
		return prof.Opcodes[wam.OpPutList]
	case 3:
		return prof.Opcodes[wam.OpPutStruct]
	}
	return 0
}

// slotCount sums the fusable unify-slot opcodes in the profile.
func slotCount(prof *Profile) int64 {
	return prof.Opcodes[wam.OpUnifyVarX] + prof.Opcodes[wam.OpUnifyValX] +
		prof.Opcodes[wam.OpUnifyConst] + prof.Opcodes[wam.OpUnifyInt] +
		prof.Opcodes[wam.OpUnifyNil]
}

// enabledMask selects the fusion rules for one component: fusion must
// be switched on, the component must be hot (its predicates' share of
// the profile's step weight clears 1/hotShareDen), and the rule's
// anchor and slot opcodes must actually occur in the profile. The
// decision is per component and per rule — the mask is recorded on the
// stream and folded into the program hash, so the incremental cache
// distinguishes runs with different fusion sets.
func enabledMask(prof *Profile, members []term.Functor, opts Options) uint32 {
	if !opts.Fuse || prof == nil {
		return 0
	}
	if total := prof.totalPredSteps(); total > 0 {
		var mine int64
		for _, fn := range members {
			mine += prof.PredSteps[fn]
		}
		if mine*hotShareDen < total {
			return 0
		}
	}
	if slotCount(prof) == 0 {
		return 0
	}
	var mask uint32
	for k := 0; k < NumFusedKinds; k++ {
		if anchorCount(prof, k) > 0 {
			mask |= 1 << uint(k)
		}
	}
	return mask
}

// hashProgram fingerprints the specialization decisions over stable
// names (never interned atom ids, which vary across processes): the
// format version, the options, and each component's member list and
// fusion mask in component order. The result salts incremental-cache
// fingerprints via Program.Salt.
func hashProgram(tab *term.Tab, comps []*CompStream, opts Options) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "awam/specialize v%d fuse=%t pre=%t", Version, opts.Fuse, opts.PreIntern)
	for _, c := range comps {
		names := make([]string, len(c.Members))
		for i, fn := range c.Members {
			names[i] = tab.FuncString(fn)
		}
		sort.Strings(names)
		fmt.Fprintf(h, "|comp %d mask=%d", c.Index, c.FusionMask)
		for _, n := range names {
			fmt.Fprintf(h, " %s", n)
		}
	}
	return h.Sum64()
}
