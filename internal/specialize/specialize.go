// Package specialize compiles the abstract machine's clause code into
// per-SCC specialized transfer streams — the "compile the interpreter
// away" stage between compilation and fixpoint execution.
//
// The generic abstract engine (internal/core/exec.go) re-dispatches a
// 30-way switch over 120-byte wam.Instr values for every abstract step.
// This package flattens each condensation component's clauses into one
// contiguous stream of compact 16-byte SInstr words with all operands
// pre-resolved at specialize time:
//
//   - constant operands (get/put/unify constants, integers, nil) become
//     indices into a per-component rt.Cell pool, so the hot loop never
//     re-boxes a constant;
//   - structure functors become indices into a functor pool;
//   - call sites become CallRef records that carry the callee's
//     component and clause-stream offsets (intra-SCC calls are fully
//     pre-resolved; the extension-table consult remains the call's
//     semantics, exactly as in the generic engine);
//   - call sites whose argument registers are provably rebuilt from
//     constants and fresh variables on every execution are marked
//     static: the engine computes their calling pattern once per
//     analysis and never touches the abstractor or the interner for
//     them again (no interner round-trips on the hot path);
//   - dominant get_*/unify_* opcode pairs are fused into superinstruction
//     words with hand-written combined transfer functions (fusion.go),
//     selected per component from the Metrics opcode histogram.
//
// The streams are an execution plan, not new semantics: internal/core
// interprets them with the same transfer helpers (getList, absUnify,
// absCall, ...) and charges the step budget and opcode histogram per
// original base opcode, so results, Steps and Metrics stay byte-for-byte
// identical to the generic engine. Clauses the translator cannot prove
// it understands are simply left out of the program; the engine falls
// back to the generic switch for them.
package specialize

import (
	"fmt"

	"awam/internal/rt"
	"awam/internal/term"
	"awam/internal/wam"
)

// Version is the specialization format/semantics version. It salts the
// incremental engine's component fingerprints (via Program.Salt), so
// cached summaries produced by one specializer generation are never
// served to another.
const Version = 1

// SOp enumerates the specialized stream operations. The set mirrors the
// clause-body subset of wam.Op with operands pre-resolved, plus the
// fused superinstructions.
type SOp uint8

const (
	SNop SOp = iota

	// Head/get operations. A is the argument register.
	SGetVarX   // x[B] = x[A]
	SGetVarY   // env[B] = x[A]
	SGetValX   // absUnify(x[B], x[A])
	SGetValY   // absUnify(env[B], x[A])
	SGetCell   // absUnify(x[A], Cells[K])
	SGetList   // s,mode = getList(x[A])
	SGetStruct // s,mode = getStruct(x[A], Fns[K])

	// Put operations.
	SPutVarX   // fresh var; x[B] = x[A] = ref
	SPutVarY   // fresh var; env[B], x[A]
	SPutValX   // x[A] = x[B]
	SPutValY   // x[A] = env[B]
	SPutCell   // x[A] = Cells[K]
	SPutList   // x[A] = list(heap top); write mode
	SPutStruct // push functor Fns[K]; x[A] = str; write mode

	// Unify operations (mode-dependent).
	SUnifyVarX // A = Xn
	SUnifyVarY // A = Yn
	SUnifyValX // A = Xn
	SUnifyValY // A = Yn
	SUnifyCell // Cells[K]
	SUnifyVoid // A = count

	// Procedural operations.
	SAllocate   // A = environment size
	SDeallocate //
	SCall       // Calls[K]
	SExecute    // Calls[K], then return
	SProceed    //
	SBuiltin    // A = builtin id, B = arity
	SHalt       //
	SCutNop     // neck_cut / get_level / cut: charged no-ops

	// Fused superinstructions (fusion.go). Each charges its base
	// opcodes individually (W, W1, W2), so step totals and the opcode
	// histogram are invariant under fusion.
	SFGetList2   // get_list A + two unify slots (M, B, C)
	SFGetStruct2 // get_structure Fns[K], A + two unify slots
	SFPutList2   // put_list A + two write-mode unify slots
	SFPutStruct2 // put_structure Fns[K], A + two write-mode unify slots

	NumSOps
)

// Slot kinds for fused superinstruction operand slots, packed into
// SInstr.M (slot 1 = M&3, slot 2 = (M>>2)&3).
const (
	SlotVarX = 0 // operand is an X register: unify_variable_x
	SlotValX = 1 // operand is an X register: unify_value_x
	SlotCell = 2 // operand is a Cells pool index: unify_constant/int/nil
)

// SInstr is one specialized stream word: 16 bytes versus the ~120-byte
// wam.Instr the generic switch copies per step.
type SInstr struct {
	Op SOp
	// W is the original wam opcode this word charges to the step budget
	// and opcode histogram (the anchor opcode for fused words); W1/W2
	// are the fused slots' charge opcodes.
	W, W1, W2 wam.Op
	// M packs the fused slot kinds.
	M uint8
	// A, B, C are register/count operands; K indexes the component
	// pools (Cells, Fns, Calls) and carries fused cell-slot operands.
	A, B, C uint16
	K       int32
}

// CallRef is a pre-resolved call site.
type CallRef struct {
	Fn term.Functor
	// Comp is the callee's component index, -1 for undefined predicates
	// (intra-SCC calls have Comp == the caller's component: the callee's
	// clause offsets live in the same stream).
	Comp int32
	// Clause0 is the callee's first ClauseInfo index within Comp's
	// stream (-1 when the callee has no specialized clauses).
	Clause0 int32
	// Static is the site's index into the analysis' static-pattern
	// cache when the builder proved the call's argument registers are
	// rebuilt from constants and fresh variables on every execution
	// (the calling pattern is context-independent); -1 otherwise.
	Static int32
}

// ClauseInfo locates one specialized clause inside its component stream.
type ClauseInfo struct {
	Fn term.Functor
	// Addr is the clause's address in the original wam code array.
	Addr int32
	// Off is the clause's first instruction in CompStream.Code.
	Off int32
	// MaxX is the clause's X-register high-water mark; the engine
	// ensures the register file once per clause instead of per
	// instruction.
	MaxX uint16
	// Fused counts superinstructions emitted into this clause.
	Fused uint16
}

// CompStream is one condensation component compiled to a contiguous
// specialized stream with its operand pools.
type CompStream struct {
	Index   int
	Members []term.Functor
	Code    []SInstr
	Cells   []rt.Cell
	Fns     []term.Functor
	Calls   []CallRef
	Clauses []ClauseInfo
	// FusionMask is the enabled fusion-rule bitmask chosen for this
	// component by the profile policy (fusion.go).
	FusionMask uint32
}

// Loc addresses one specialized clause: the component and its
// ClauseInfo index. Comp < 0 means the clause is not specialized.
type Loc struct {
	Comp   int32
	Clause int32
}

// Options selects the specialization stages, the axes of the benchtab
// ablation. The zero value is flatten-only: compact streams, dense
// dispatch, pre-resolved operands and hoisted register growth, but no
// superinstructions and no pattern pre-interning.
type Options struct {
	// Fuse enables profile-guided superinstruction fusion.
	Fuse bool
	// PreIntern enables the calling-pattern fast paths: static call
	// sites bypass the abstractor/interner, pattern materialization
	// replays cached cell templates, and the extension table (and the
	// finalize index) become dense PatternID-indexed arrays instead of
	// scan/hash structures.
	PreIntern bool
}

// Program is a module's specialized transfer streams.
type Program struct {
	Opts  Options
	Comps []*CompStream
	// StaticSites is the number of static call sites across all
	// components; the engine sizes its per-analysis pattern cache by it.
	StaticSites int
	// Hash fingerprints the specialization: version, options and the
	// per-component fusion-rule selection (over stable member names, so
	// it is identical across processes). It salts incremental-cache
	// fingerprints via Salt.
	Hash uint64

	locs []Loc
}

// Loc returns the specialized location of the clause at the given wam
// code address, or a Loc with Comp < 0 when the clause was not
// specialized (the engine falls back to the generic switch).
func (p *Program) Loc(addr int) Loc {
	if addr < 0 || addr >= len(p.locs) {
		return Loc{Comp: -1, Clause: -1}
	}
	return p.locs[addr]
}

// Salt is the fingerprint-salt component recorded by the incremental
// engine: cached summaries from a generic run and from specialized runs
// with different fusion sets must live at different store addresses.
func (p *Program) Salt() string {
	return fmt.Sprintf("spec=v%d:%016x:fuse=%t:pre=%t", Version, p.Hash, p.Opts.Fuse, p.Opts.PreIntern)
}

// Stats summarizes the program for logs and tests.
func (p *Program) Stats() (comps, clauses, fused, static int) {
	for _, c := range p.Comps {
		comps++
		clauses += len(c.Clauses)
		for _, ci := range c.Clauses {
			fused += int(ci.Fused)
		}
	}
	return comps, clauses, fused, p.StaticSites
}
