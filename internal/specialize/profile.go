package specialize

import (
	"awam/internal/term"
	"awam/internal/wam"
)

// Profile is the fusion profile: the per-opcode execution histogram and
// per-predicate step weights that drive superinstruction selection. It
// is the shape of core.Metrics' Opcodes/PredSteps fields without the
// import (core depends on this package, not the reverse); callers with
// a measured Metrics copy the two fields across, and StaticProfile
// derives a static estimate when no run has been observed yet.
type Profile struct {
	// Opcodes counts executed (or statically present) instructions per
	// wam opcode.
	Opcodes [wam.NumOps]int64
	// PredSteps weighs each predicate; component hotness is its share
	// of the total. A nil/empty map means "no weights": every
	// component is considered hot.
	PredSteps map[term.Functor]int64
}

// StaticProfile estimates a fusion profile from the module text alone:
// each instruction counts once, each predicate weighs its static
// instruction count. Used for cold starts, before any Metrics
// histogram exists; a static count is a lower bound that already
// proves which opcode pairs occur at all.
func StaticProfile(mod *wam.Module) *Profile {
	p := &Profile{PredSteps: make(map[term.Functor]int64, len(mod.Order))}
	for _, ins := range mod.Code {
		p.Opcodes[ins.Op]++
	}
	for _, fn := range mod.Order {
		proc := mod.Procs[fn]
		if proc == nil {
			continue
		}
		w := int64(proc.Profile.Instructions)
		if w <= 0 {
			w = 1
		}
		p.PredSteps[fn] = w
	}
	return p
}

func (p *Profile) totalPredSteps() int64 {
	var t int64
	for _, v := range p.PredSteps {
		t += v
	}
	return t
}
