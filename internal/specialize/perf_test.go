package specialize_test

import (
	"os"
	"testing"
	"time"

	"awam/internal/bench"
	"awam/internal/core"
	"awam/internal/specialize"
)

// TestPerfSmoke is the CI perf gate: on wide_256 under the worklist,
// the fully specialized engine must not be slower than the generic
// switch. Timing on shared runners is noisy, so each engine gets the
// best of three runs and the specialized side a small grace factor —
// the gate exists to catch a specialization that has stopped paying for
// itself (a real regression shows up as 2x+, not 10%). Gated behind
// AWAM_PERF_SMOKE=1 so ordinary `go test ./...` stays timing-free.
func TestPerfSmoke(t *testing.T) {
	if os.Getenv("AWAM_PERF_SMOKE") == "" {
		t.Skip("set AWAM_PERF_SMOKE=1 to run the perf smoke gate")
	}
	_, mod := buildMod(t, bench.WideProgram(256).Source)
	spec := buildSpec(mod, specialize.Options{Fuse: true, PreIntern: true})

	bestOf := func(spec *specialize.Program) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			cfg := core.DefaultConfig()
			cfg.Strategy = core.StrategyWorklist
			cfg.Spec = spec
			start := time.Now()
			if _, err := core.NewWith(mod, cfg).AnalyzeMain(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	generic := bestOf(nil)
	specialized := bestOf(spec)
	t.Logf("wide_256 worklist: generic %v, specialized %v (%.2fx)",
		generic, specialized, float64(generic)/float64(specialized))
	if float64(specialized) > float64(generic)*1.10 {
		t.Fatalf("specialized engine slower than generic on wide_256: %v vs %v", specialized, generic)
	}
}
