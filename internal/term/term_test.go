package term

import (
	"testing"
	"testing/quick"
)

func TestInternIsStable(t *testing.T) {
	tab := NewTab()
	a := tab.Intern("foo")
	b := tab.Intern("foo")
	if a != b {
		t.Fatalf("Intern not stable: %d vs %d", a, b)
	}
	if tab.Name(a) != "foo" {
		t.Fatalf("Name(%d) = %q", a, tab.Name(a))
	}
}

func TestInternDistinct(t *testing.T) {
	tab := NewTab()
	if tab.Intern("foo") == tab.Intern("bar") {
		t.Fatal("distinct names interned to same atom")
	}
}

func TestWellKnownAtoms(t *testing.T) {
	tab := NewTab()
	if tab.Name(tab.Nil) != "[]" || tab.Name(tab.Dot) != "." || tab.Name(tab.Cut) != "!" {
		t.Fatal("well-known atoms misregistered")
	}
}

func TestInternPropertyRoundTrip(t *testing.T) {
	tab := NewTab()
	f := func(s string) bool { return tab.Name(tab.Intern(s)) == s }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMkStructArityPanics(t *testing.T) {
	tab := NewTab()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	MkStruct(tab.Func("f", 2), MkInt(1))
}

func TestMkStructZeroArityIsAtom(t *testing.T) {
	tab := NewTab()
	tm := MkStruct(tab.Func("a", 0))
	if tm.Kind != KAtom {
		t.Fatalf("zero-arity struct should be an atom, got kind %d", tm.Kind)
	}
}

func TestMkListAndWrite(t *testing.T) {
	tab := NewTab()
	l := MkList(tab, []*Term{MkInt(1), MkInt(2), MkInt(3)}, nil)
	if got := tab.Write(l); got != "[1, 2, 3]" {
		t.Fatalf("Write list = %q", got)
	}
	partial := MkList(tab, []*Term{MkInt(1)}, NewVar("T"))
	if got := tab.Write(partial); got != "[1|T]" {
		t.Fatalf("Write partial list = %q", got)
	}
}

func TestWriteOperators(t *testing.T) {
	tab := NewTab()
	x := NewVar("X")
	plus := MkStruct(tab.Func("+", 2), x, MkInt(1))
	times := MkStruct(tab.Func("*", 2), plus, MkInt(2))
	if got := tab.Write(times); got != "(X + 1) * 2" {
		t.Fatalf("Write = %q", got)
	}
	// Left-associative chains need no parentheses.
	chain := MkStruct(tab.Func("-", 2), MkStruct(tab.Func("-", 2), MkInt(1), MkInt(2)), MkInt(3))
	if got := tab.Write(chain); got != "1 - 2 - 3" {
		t.Fatalf("Write chain = %q", got)
	}
}

func TestWriteQuotesOddAtoms(t *testing.T) {
	tab := NewTab()
	if got := tab.Write(MkAtom(tab.Intern("hello world"))); got != "'hello world'" {
		t.Fatalf("Write = %q", got)
	}
	if got := tab.Write(MkAtom(tab.Nil)); got != "[]" {
		t.Fatalf("Write nil = %q", got)
	}
}

func TestClauseVarsOrder(t *testing.T) {
	tab := NewTab()
	x, y, z := NewVar("X"), NewVar("Y"), NewVar("Z")
	c := Clause{
		Head: MkStruct(tab.Func("p", 2), x, y),
		Body: []*Term{MkStruct(tab.Func("q", 2), y, z)},
	}
	vars := c.Vars()
	if len(vars) != 3 || vars[0].Ref != x.Ref || vars[1].Ref != y.Ref || vars[2].Ref != z.Ref {
		t.Fatalf("Vars order wrong: %v", vars)
	}
}

func TestRenameClauseFreshVars(t *testing.T) {
	tab := NewTab()
	x := NewVar("X")
	c := Clause{Head: MkStruct(tab.Func("p", 2), x, x)}
	r := RenameClause(c)
	if r.Head.Args[0].Ref == x.Ref {
		t.Fatal("rename did not freshen variable")
	}
	if r.Head.Args[0].Ref != r.Head.Args[1].Ref {
		t.Fatal("rename broke variable sharing")
	}
}

func TestEqual(t *testing.T) {
	tab := NewTab()
	a := MkStruct(tab.Func("f", 2), MkInt(1), MkAtom(tab.Intern("a")))
	b := MkStruct(tab.Func("f", 2), MkInt(1), MkAtom(tab.Intern("a")))
	if !Equal(a, b) {
		t.Fatal("structurally equal terms reported unequal")
	}
	c := MkStruct(tab.Func("f", 2), MkInt(2), MkAtom(tab.Intern("a")))
	if Equal(a, c) {
		t.Fatal("unequal terms reported equal")
	}
	if Equal(NewVar("X"), NewVar("X")) {
		t.Fatal("distinct variables reported equal")
	}
}

func TestProgramGrouping(t *testing.T) {
	tab := NewTab()
	p2 := tab.Func("p", 1)
	q0 := tab.Func("q", 0)
	clauses := []Clause{
		{Head: MkStruct(p2, MkInt(1))},
		{Head: MkAtom(q0.Name)},
		{Head: MkStruct(p2, MkInt(2))},
	}
	prog, err := NewProgram(clauses)
	if err != nil {
		t.Fatal(err)
	}
	if prog.NumPreds() != 2 {
		t.Fatalf("NumPreds = %d", prog.NumPreds())
	}
	if prog.ArgPlaces() != 1 {
		t.Fatalf("ArgPlaces = %d", prog.ArgPlaces())
	}
	if got := prog.ClausesOf(p2); len(got) != 2 {
		t.Fatalf("ClausesOf(p/1) = %d clauses", len(got))
	}
	if len(prog.Order) != 2 || prog.Order[0] != p2 {
		t.Fatalf("Order = %v", prog.Order)
	}
}

func TestProgramRejectsNonCallableHead(t *testing.T) {
	if _, err := NewProgram([]Clause{{Head: MkInt(3)}}); err == nil {
		t.Fatal("expected error for integer clause head")
	}
}

func TestIndicator(t *testing.T) {
	tab := NewTab()
	if f, ok := Indicator(MkAtom(tab.Intern("a"))); !ok || f.Arity != 0 {
		t.Fatal("Indicator of atom wrong")
	}
	if _, ok := Indicator(NewVar("X")); ok {
		t.Fatal("Indicator of var should fail")
	}
}
