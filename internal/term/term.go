// Package term defines the representation of Prolog terms shared by the
// parser, the clause compiler, both abstract-interpretation analyzers and
// the concrete machine: interned atoms, functors (name/arity pairs), and
// source-level term trees.
//
// Atoms are interned through a Tab so that the rest of the system can
// compare names and functors with ==. A Tab is not safe for concurrent
// mutation; each pipeline owns one.
package term

import (
	"fmt"
	"sort"
	"strings"
)

// Atom is an interned constant name. The zero Atom is the empty name.
type Atom int32

// Functor identifies a predicate or structure: a name and an arity.
// An atomic constant is a Functor with Arity 0.
type Functor struct {
	Name  Atom
	Arity int
}

// Tab interns atom names and caches the handful of atoms the system
// needs to recognize structurally (lists, conjunction, clause neck).
type Tab struct {
	names []string
	index map[string]Atom

	// Frequently tested atoms, interned at construction.
	Nil   Atom // []
	Dot   Atom // '.'  (list constructor)
	Comma Atom // ','
	Neck  Atom // ':-'
	True  Atom // true
	Fail  Atom // fail
	Cut   Atom // !
}

// NewTab returns a fresh atom table with the well-known atoms interned.
func NewTab() *Tab {
	t := &Tab{index: make(map[string]Atom)}
	t.Intern("") // reserve Atom(0)
	t.Nil = t.Intern("[]")
	t.Dot = t.Intern(".")
	t.Comma = t.Intern(",")
	t.Neck = t.Intern(":-")
	t.True = t.Intern("true")
	t.Fail = t.Intern("fail")
	t.Cut = t.Intern("!")
	return t
}

// Intern returns the unique Atom for name, creating it if necessary.
func (t *Tab) Intern(name string) Atom {
	if a, ok := t.index[name]; ok {
		return a
	}
	a := Atom(len(t.names))
	t.names = append(t.names, name)
	t.index[name] = a
	return a
}

// Name returns the spelling of an interned atom.
func (t *Tab) Name(a Atom) string {
	if int(a) < 0 || int(a) >= len(t.names) {
		return fmt.Sprintf("<atom#%d>", int(a))
	}
	return t.names[a]
}

// Func interns name and returns the functor name/arity.
func (t *Tab) Func(name string, arity int) Functor {
	return Functor{Name: t.Intern(name), Arity: arity}
}

// FuncString renders a functor as name/arity.
func (t *Tab) FuncString(f Functor) string {
	return fmt.Sprintf("%s/%d", t.Name(f.Name), f.Arity)
}

// ConsFunctor returns the list constructor './2'.
func (t *Tab) ConsFunctor() Functor { return Functor{Name: t.Dot, Arity: 2} }

// Kind discriminates the source-level term variants.
type Kind uint8

const (
	// KVar is a logic variable; identity is the Ref pointer.
	KVar Kind = iota
	// KAtom is an atomic constant (arity-0 functor).
	KAtom
	// KInt is an integer constant.
	KInt
	// KStruct is a compound term, including list cells './2'.
	KStruct
)

// VarRef carries the identity and source name of a variable. Two *Term
// values denote the same variable exactly when they share a VarRef.
type VarRef struct {
	Name string
}

// Term is a source-level Prolog term tree.
type Term struct {
	Kind Kind
	Fn   Functor // KAtom (Arity 0) and KStruct
	Int  int64   // KInt
	Args []*Term // KStruct
	Ref  *VarRef // KVar
}

// NewVar returns a fresh variable term with the given display name.
func NewVar(name string) *Term {
	return &Term{Kind: KVar, Ref: &VarRef{Name: name}}
}

// SameVar reports whether both terms are the same variable.
func SameVar(a, b *Term) bool {
	return a.Kind == KVar && b.Kind == KVar && a.Ref == b.Ref
}

// MkAtom returns an atomic-constant term.
func MkAtom(a Atom) *Term { return &Term{Kind: KAtom, Fn: Functor{Name: a}} }

// MkInt returns an integer-constant term.
func MkInt(n int64) *Term { return &Term{Kind: KInt, Int: n} }

// MkStruct returns a compound term f(args...). It panics if the arity of
// f does not match len(args): that is always a construction bug.
func MkStruct(f Functor, args ...*Term) *Term {
	if f.Arity != len(args) {
		panic(fmt.Sprintf("term: functor arity %d with %d args", f.Arity, len(args)))
	}
	if f.Arity == 0 {
		return MkAtom(f.Name)
	}
	return &Term{Kind: KStruct, Fn: f, Args: args}
}

// MkList builds a proper or partial list from elems ending in tail.
// A nil tail means the empty list constant.
func MkList(t *Tab, elems []*Term, tail *Term) *Term {
	if tail == nil {
		tail = MkAtom(t.Nil)
	}
	out := tail
	cons := t.ConsFunctor()
	for i := len(elems) - 1; i >= 0; i-- {
		out = MkStruct(cons, elems[i], out)
	}
	return out
}

// IsNil reports whether tm is the empty-list constant.
func (t *Tab) IsNil(tm *Term) bool {
	return tm.Kind == KAtom && tm.Fn.Name == t.Nil
}

// IsCons reports whether tm is a list cell './2'.
func (t *Tab) IsCons(tm *Term) bool {
	return tm.Kind == KStruct && tm.Fn.Name == t.Dot && tm.Fn.Arity == 2
}

// Indicator returns the functor of a callable term (atom or struct), and
// false for variables and integers.
func Indicator(tm *Term) (Functor, bool) {
	switch tm.Kind {
	case KAtom, KStruct:
		return tm.Fn, true
	default:
		return Functor{}, false
	}
}

// Clause is a program clause Head :- Body1, ..., BodyN. Facts have an
// empty body.
type Clause struct {
	Head *Term
	Body []*Term
}

// Vars returns the distinct variables of the clause in first-occurrence
// order.
func (c *Clause) Vars() []*Term {
	seen := make(map[*VarRef]bool)
	var out []*Term
	var walk func(tm *Term)
	walk = func(tm *Term) {
		switch tm.Kind {
		case KVar:
			if !seen[tm.Ref] {
				seen[tm.Ref] = true
				out = append(out, tm)
			}
		case KStruct:
			for _, a := range tm.Args {
				walk(a)
			}
		}
	}
	walk(c.Head)
	for _, g := range c.Body {
		walk(g)
	}
	return out
}

// Program is a parsed Prolog program: the clause list in source order and
// the predicate grouping derived from it.
type Program struct {
	Clauses []Clause
	// Preds maps each defined predicate to the indices of its clauses in
	// source order.
	Preds map[Functor][]int
	// Order lists defined predicates in first-definition order.
	Order []Functor
}

// NewProgram groups clauses by predicate, preserving source order.
func NewProgram(clauses []Clause) (*Program, error) {
	p := &Program{Clauses: clauses, Preds: make(map[Functor][]int)}
	for i, c := range clauses {
		f, ok := Indicator(c.Head)
		if !ok {
			return nil, fmt.Errorf("term: clause %d head is not callable", i)
		}
		if _, seen := p.Preds[f]; !seen {
			p.Order = append(p.Order, f)
		}
		p.Preds[f] = append(p.Preds[f], i)
	}
	return p, nil
}

// ClausesOf returns the clauses of predicate f in source order.
func (p *Program) ClausesOf(f Functor) []Clause {
	idx := p.Preds[f]
	out := make([]Clause, len(idx))
	for i, j := range idx {
		out[i] = p.Clauses[j]
	}
	return out
}

// ArgPlaces returns the total number of argument positions over all
// defined predicates — the "Args" profile column of the paper's Table 1.
func (p *Program) ArgPlaces() int {
	n := 0
	for _, f := range p.Order {
		n += f.Arity
	}
	return n
}

// NumPreds returns the number of defined predicates (Table 1 "Preds").
func (p *Program) NumPreds() int { return len(p.Order) }

// Rename returns a copy of tm with every variable replaced by a fresh one,
// consistently within the call. It is used to instantiate clause copies.
func Rename(tm *Term) *Term {
	return renameWith(tm, make(map[*VarRef]*Term))
}

// RenameClause returns a fresh-variable copy of c.
func RenameClause(c Clause) Clause {
	env := make(map[*VarRef]*Term)
	out := Clause{Head: renameWith(c.Head, env)}
	for _, g := range c.Body {
		out.Body = append(out.Body, renameWith(g, env))
	}
	return out
}

func renameWith(tm *Term, env map[*VarRef]*Term) *Term {
	switch tm.Kind {
	case KVar:
		if v, ok := env[tm.Ref]; ok {
			return v
		}
		v := NewVar(tm.Ref.Name)
		env[tm.Ref] = v
		return v
	case KStruct:
		args := make([]*Term, len(tm.Args))
		for i, a := range tm.Args {
			args[i] = renameWith(a, env)
		}
		return &Term{Kind: KStruct, Fn: tm.Fn, Args: args}
	default:
		return tm
	}
}

// Equal reports structural equality; variables are equal iff identical.
func Equal(a, b *Term) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KVar:
		return a.Ref == b.Ref
	case KAtom:
		return a.Fn.Name == b.Fn.Name
	case KInt:
		return a.Int == b.Int
	case KStruct:
		if a.Fn != b.Fn {
			return false
		}
		for i := range a.Args {
			if !Equal(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Write renders tm in a readable, re-parsable form: lists in bracket
// notation, common operators infix, everything else canonical.
func (t *Tab) Write(tm *Term) string {
	var b strings.Builder
	t.write(&b, tm, 1200, make(map[*VarRef]string))
	return b.String()
}

// WriteAll renders several terms, comma separated.
func (t *Tab) WriteAll(tms []*Term) string {
	parts := make([]string, len(tms))
	for i, tm := range tms {
		parts[i] = t.Write(tm)
	}
	return strings.Join(parts, ", ")
}

// WriteClause renders a clause with its neck and period.
func (t *Tab) WriteClause(c Clause) string {
	if len(c.Body) == 0 {
		return t.Write(c.Head) + "."
	}
	return t.Write(c.Head) + " :- " + t.WriteAll(c.Body) + "."
}

// infix operators the writer knows, by priority (subset of the parser's
// table; anything else prints canonically).
var writeOps = map[string]struct {
	prio        int
	left, right int
}{
	";":    {1100, 1100, 1050},
	"->":   {1050, 1049, 1050},
	"=":    {700, 699, 699},
	"\\=":  {700, 699, 699},
	"==":   {700, 699, 699},
	"\\==": {700, 699, 699},
	"is":   {700, 699, 699},
	"=:=":  {700, 699, 699},
	"=\\=": {700, 699, 699},
	"<":    {700, 699, 699},
	">":    {700, 699, 699},
	"=<":   {700, 699, 699},
	">=":   {700, 699, 699},
	"+":    {500, 500, 499},
	"-":    {500, 500, 499},
	"*":    {400, 400, 399},
	"/":    {400, 400, 399},
	"//":   {400, 400, 399},
	"mod":  {400, 400, 399},
	"^":    {200, 199, 200},
}

func (t *Tab) write(b *strings.Builder, tm *Term, maxPrio int, names map[*VarRef]string) {
	switch tm.Kind {
	case KVar:
		name, ok := names[tm.Ref]
		if !ok {
			name = tm.Ref.Name
			if name == "" || name == "_" {
				name = fmt.Sprintf("_G%d", len(names))
			}
			names[tm.Ref] = name
		}
		b.WriteString(name)
	case KInt:
		fmt.Fprintf(b, "%d", tm.Int)
	case KAtom:
		b.WriteString(t.atomText(tm.Fn.Name))
	case KStruct:
		if t.IsCons(tm) {
			t.writeList(b, tm, names)
			return
		}
		name := t.Name(tm.Fn.Name)
		if op, ok := writeOps[name]; ok && tm.Fn.Arity == 2 {
			paren := op.prio > maxPrio
			if paren {
				b.WriteByte('(')
			}
			t.write(b, tm.Args[0], op.left, names)
			if name == "," {
				b.WriteString(", ")
			} else {
				b.WriteByte(' ')
				b.WriteString(name)
				b.WriteByte(' ')
			}
			t.write(b, tm.Args[1], op.right, names)
			if paren {
				b.WriteByte(')')
			}
			return
		}
		if name == "-" && tm.Fn.Arity == 1 {
			b.WriteString("-")
			t.write(b, tm.Args[0], 200, names)
			return
		}
		b.WriteString(t.atomText(tm.Fn.Name))
		b.WriteByte('(')
		for i, a := range tm.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			t.write(b, a, 999, names)
		}
		b.WriteByte(')')
	}
}

func (t *Tab) writeList(b *strings.Builder, tm *Term, names map[*VarRef]string) {
	b.WriteByte('[')
	first := true
	for t.IsCons(tm) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		t.write(b, tm.Args[0], 999, names)
		tm = tm.Args[1]
	}
	if !t.IsNil(tm) {
		b.WriteByte('|')
		t.write(b, tm, 999, names)
	}
	b.WriteByte(']')
}

// atomText quotes an atom when its spelling would not re-read as an atom.
func (t *Tab) atomText(a Atom) string {
	s := t.Name(a)
	if s == "" {
		return "''"
	}
	if s == "[]" || s == "!" || s == ";" || s == "{}" {
		return s
	}
	if isLowerAlnum(s) || isSymbolic(s) {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", "\\'") + "'"
}

func isLowerAlnum(s string) bool {
	if s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
			return false
		}
	}
	return true
}

const symbolChars = "+-*/\\^<>=~:.?@#&$"

func isSymbolic(s string) bool {
	for i := 0; i < len(s); i++ {
		if !strings.ContainsRune(symbolChars, rune(s[i])) {
			return false
		}
	}
	return true
}

// SortedFunctors returns functors sorted by name then arity — a stable
// order for reports.
func (t *Tab) SortedFunctors(fs []Functor) []Functor {
	out := append([]Functor(nil), fs...)
	sort.Slice(out, func(i, j int) bool {
		ni, nj := t.Name(out[i].Name), t.Name(out[j].Name)
		if ni != nj {
			return ni < nj
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}
