package machine

import (
	"fmt"

	"awam/internal/compiler"
	"awam/internal/parser"
	"awam/internal/rt"
	"awam/internal/term"
)

// Solution is the result of a query: whether it succeeded and, while it
// holds, the bindings of the query's variables.
type Solution struct {
	OK    bool
	m     *Machine
	vars  []*term.Term
	addrs []int
}

// SolveGoal compiles the goal conjunction as a query predicate, loads its
// variables on the heap and runs to the first solution.
func (m *Machine) SolveGoal(goals []*term.Term) (*Solution, error) {
	fn, vars, err := compiler.AddQuery(m.Mod, goals)
	if err != nil {
		return nil, err
	}
	env := make(map[*term.VarRef]int)
	addrs := make([]int, len(vars))
	for i, v := range vars {
		addrs[i] = m.H.LoadTerm(m.Mod.Tab, v, env)
	}
	ok, err := m.CallAddrs(fn, addrs)
	if err != nil {
		return nil, err
	}
	return &Solution{OK: ok, m: m, vars: vars, addrs: addrs}, nil
}

// Solve parses src as a goal conjunction and solves it.
func (m *Machine) Solve(src string) (*Solution, error) {
	goals, err := parser.ParseGoal(m.Mod.Tab, src)
	if err != nil {
		return nil, err
	}
	return m.SolveGoal(goals)
}

// RunMain runs the conventional benchmark entry point main/0.
func (m *Machine) RunMain() (bool, error) {
	fn := m.Mod.Tab.Func("main", 0)
	return m.CallAddrs(fn, nil)
}

// Next searches for the next solution by backtracking.
func (s *Solution) Next() (bool, error) {
	if !s.OK {
		return false, nil
	}
	ok, err := s.m.Redo()
	s.OK = ok
	return ok, err
}

// Binding returns the current value of the named query variable.
func (s *Solution) Binding(name string) (*term.Term, error) {
	if !s.OK {
		return nil, fmt.Errorf("machine: no active solution")
	}
	for i, v := range s.vars {
		if v.Ref.Name == name {
			return s.m.H.ReadTerm(s.m.Mod.Tab, s.addrs[i], make(map[int]*term.Term)), nil
		}
	}
	return nil, fmt.Errorf("machine: no query variable %q", name)
}

// Bindings returns all query-variable values, sharing variable identity
// across entries.
func (s *Solution) Bindings() map[string]*term.Term {
	out := make(map[string]*term.Term, len(s.vars))
	if !s.OK {
		return out
	}
	shared := make(map[int]*term.Term)
	for i, v := range s.vars {
		out[v.Ref.Name] = s.m.H.ReadTerm(s.m.Mod.Tab, s.addrs[i], shared)
	}
	return out
}

// BindingCells exposes the raw heap addresses of the query variables, in
// query-variable order; the soundness tests compare these against
// abstract success patterns.
func (s *Solution) BindingCells() ([]*term.Term, []int) {
	return s.vars, s.addrs
}

// Heap exposes the machine heap (tests and the soundness checker).
func (m *Machine) Heap() *rt.Heap { return m.H }
