package machine

import (
	"strings"
	"testing"

	"awam/internal/bench"
	"awam/internal/compiler"
	"awam/internal/parser"
	"awam/internal/term"
	"awam/internal/wam"
)

func build(t *testing.T, src string) *Machine {
	t.Helper()
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return New(mod)
}

func solve(t *testing.T, m *Machine, goal string) *Solution {
	t.Helper()
	s, err := m.Solve(goal)
	if err != nil {
		t.Fatalf("solve %q: %v", goal, err)
	}
	return s
}

func wantBinding(t *testing.T, s *Solution, name, want string) {
	t.Helper()
	tm, err := s.Binding(name)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.m.Mod.Tab.Write(tm); got != want {
		t.Fatalf("%s = %s, want %s", name, got, want)
	}
}

func TestFactsAndUnification(t *testing.T) {
	m := build(t, "p(a).\np(b).\n")
	s := solve(t, m, "p(X)")
	if !s.OK {
		t.Fatal("p(X) should succeed")
	}
	wantBinding(t, s, "X", "a")
	ok, err := s.Next()
	if err != nil || !ok {
		t.Fatalf("second solution: %v %v", ok, err)
	}
	wantBinding(t, s, "X", "b")
	ok, err = s.Next()
	if err != nil || ok {
		t.Fatalf("should have exactly two solutions")
	}
}

func TestFailingGoal(t *testing.T) {
	m := build(t, "p(a).")
	s := solve(t, m, "p(b)")
	if s.OK {
		t.Fatal("p(b) should fail")
	}
}

func TestStructureUnification(t *testing.T) {
	m := build(t, "eq(X, X).")
	s := solve(t, m, "eq(f(Y, b), f(a, Z))")
	if !s.OK {
		t.Fatal("structure unification failed")
	}
	wantBinding(t, s, "Y", "a")
	wantBinding(t, s, "Z", "b")
}

func TestListBuilding(t *testing.T) {
	m := build(t, `
		app([], L, L).
		app([H|T], L, [H|R]) :- app(T, L, R).
	`)
	s := solve(t, m, "app([1,2], [3,4], R)")
	if !s.OK {
		t.Fatal("append failed")
	}
	wantBinding(t, s, "R", "[1, 2, 3, 4]")

	// Reverse mode: splitting a list via backtracking.
	s2 := solve(t, m, "app(A, B, [1,2])")
	if !s2.OK {
		t.Fatal("split failed")
	}
	wantBinding(t, s2, "A", "[]")
	wantBinding(t, s2, "B", "[1, 2]")
	n := 1
	for {
		ok, err := s2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("app(A, B, [1,2]) gave %d solutions, want 3", n)
	}
}

func TestArithmetic(t *testing.T) {
	m := build(t, "double(X, Y) :- Y is X * 2.")
	s := solve(t, m, "double(21, Y)")
	wantBinding(t, s, "Y", "42")

	s2 := solve(t, m, "X is 7 // 2 + 10 mod 3")
	wantBinding(t, s2, "X", "4")

	s3 := solve(t, m, "X is -(5) + abs(-3)")
	wantBinding(t, s3, "X", "-2")
}

func TestArithmeticErrors(t *testing.T) {
	m := build(t, "p(X) :- X is foo + 1.")
	if _, err := m.Solve("p(X)"); err == nil {
		t.Fatal("expected arithmetic type error")
	}
	m2 := build(t, "p(X) :- X is 1 // 0.")
	if _, err := m2.Solve("p(X)"); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestComparisons(t *testing.T) {
	m := build(t, "p.")
	for goal, want := range map[string]bool{
		"1 < 2":      true,
		"2 < 1":      false,
		"2 =< 2":     true,
		"3 > 1+1":    true,
		"2+2 =:= 4":  true,
		"2+2 =\\= 4": false,
		"5 >= 2*3":   false,
	} {
		s := solve(t, m, goal)
		if s.OK != want {
			t.Errorf("%s = %v, want %v", goal, s.OK, want)
		}
	}
}

func TestCutPrunesAlternatives(t *testing.T) {
	m := build(t, `
		max(X, Y, X) :- X >= Y, !.
		max(_, Y, Y).
	`)
	s := solve(t, m, "max(3, 2, M)")
	wantBinding(t, s, "M", "3")
	if ok, _ := s.Next(); ok {
		t.Fatal("cut should remove the second clause alternative")
	}
	s2 := solve(t, m, "max(1, 2, M)")
	wantBinding(t, s2, "M", "2")
}

func TestDeepCutRuntime(t *testing.T) {
	m := build(t, `
		p(X) :- q(X), !, r(X).
		p(99).
		q(1).
		q(2).
		r(2).
	`)
	// q(1) commits via cut, then r(1) fails; the cut must prevent both
	// q's second answer and p's second clause.
	s := solve(t, m, "p(X)")
	if s.OK {
		t.Fatalf("p(X) should fail under deep cut, got X")
	}
}

func TestNegationBuiltins(t *testing.T) {
	m := build(t, "p.")
	cases := map[string]bool{
		"X = a, X == a":       true,
		"X = a, X == b":       false,
		"a \\== b":            true,
		"f(X) = f(1), X == 1": true,
		"a \\= a":             false,
		"a \\= b":             true,
		"X \\= Y":             false, // variables unify
		"var(_)":              true,
		"X = 1, integer(X)":   true,
		"atom(foo)":           true,
		"atom(1)":             false,
		"atomic(1)":           true,
		"nonvar(f(_))":        true,
	}
	for goal, want := range cases {
		s := solve(t, m, goal)
		if s.OK != want {
			t.Errorf("%s = %v, want %v", goal, s.OK, want)
		}
	}
}

func TestNotUnifyLeavesNoBindings(t *testing.T) {
	m := build(t, "p.")
	s := solve(t, m, "X = f(Y), X \\= f(g(_)), Y = 1")
	// X \= f(g(_)) must fail since f(Y) unifies with f(g(_))... it binds Y.
	// The point: whatever the outcome, bindings from the attempt are undone.
	if s.OK {
		t.Fatal("f(Y) unifies with f(g(_)), so \\= must fail")
	}
	s2 := solve(t, m, "X = f(a), X \\= f(b), X == f(a)")
	if !s2.OK {
		t.Fatal("\\= should succeed and leave X intact")
	}
}

func TestFunctorArg(t *testing.T) {
	m := build(t, "p.")
	s := solve(t, m, "functor(foo(a, b), N, A)")
	wantBinding(t, s, "N", "foo")
	wantBinding(t, s, "A", "2")
	s2 := solve(t, m, "functor(T, foo, 2)")
	tm, err := s2.Binding("T")
	if err != nil {
		t.Fatal(err)
	}
	if tm.Kind != term.KStruct || tm.Fn.Arity != 2 {
		t.Fatalf("functor/3 built %v", s2.m.Mod.Tab.Write(tm))
	}
	s3 := solve(t, m, "arg(2, foo(a, b), X)")
	wantBinding(t, s3, "X", "b")
}

func TestWriteOutput(t *testing.T) {
	m := build(t, "greet :- write(hello), nl, write([1,2]).")
	var sb strings.Builder
	m.Out = &sb
	s := solve(t, m, "greet")
	if !s.OK {
		t.Fatal("greet failed")
	}
	if got := sb.String(); got != "hello\n[1, 2]" {
		t.Fatalf("output = %q", got)
	}
}

func TestIndexingSelectsClause(t *testing.T) {
	m := build(t, `
		kind(1, int).
		kind(a, atom).
		kind([_|_], list).
		kind(f(_), struct).
	`)
	for goal, want := range map[string]string{
		"kind(1, K)":    "int",
		"kind(a, K)":    "atom",
		"kind([x], K)":  "list",
		"kind(f(z), K)": "struct",
	} {
		s := solve(t, m, goal)
		if !s.OK {
			t.Fatalf("%s failed", goal)
		}
		wantBinding(t, s, "K", want)
	}
	if s := solve(t, m, "kind(b, K)"); s.OK {
		t.Fatal("kind(b, K) should fail via the constant switch")
	}
	// Unbound first argument must still enumerate all clauses.
	s := solve(t, m, "kind(X, K)")
	n := 0
	for s.OK {
		n++
		ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if n != 4 {
		t.Fatalf("unbound dispatch found %d solutions, want 4", n)
	}
}

func TestBacktrackingRestoresState(t *testing.T) {
	m := build(t, `
		p(X, Y) :- q(X), r(X, Y).
		q(1).
		q(2).
		r(2, found).
	`)
	s := solve(t, m, "p(X, Y)")
	if !s.OK {
		t.Fatal("p should succeed via backtracking into q")
	}
	wantBinding(t, s, "X", "2")
	wantBinding(t, s, "Y", "found")
}

func TestUndefinedPredicateFails(t *testing.T) {
	m := build(t, "p :- missing.")
	s := solve(t, m, "p")
	if s.OK {
		t.Fatal("call to undefined predicate should fail")
	}
}

func TestStepLimit(t *testing.T) {
	m := build(t, "loop :- loop.")
	m.MaxSteps = 1000
	if _, err := m.Solve("loop"); err != ErrStepLimit {
		t.Fatalf("expected step limit, got %v", err)
	}
}

func TestHaltBuiltin(t *testing.T) {
	m := build(t, "p :- halt, fail.")
	s := solve(t, m, "p")
	if !s.OK {
		t.Fatal("halt should succeed immediately")
	}
}

// TestBenchmarksRun executes every Table 1 benchmark's main/0 on the
// concrete machine — the paper's Figure 1 "compiled execution" path.
func TestBenchmarksRun(t *testing.T) {
	for _, p := range bench.Programs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tab := term.NewTab()
			prog, err := parser.ParseProgram(tab, p.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			mod, err := compiler.Compile(tab, prog)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			m := New(mod)
			ok, err := m.RunMain()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !ok {
				t.Fatal("main/0 failed")
			}
		})
	}
}

// TestBenchmarkQueries checks expected answers where the suite records
// them.
func TestBenchmarkQueries(t *testing.T) {
	for _, p := range bench.Programs {
		if p.Query == "" {
			continue
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tab := term.NewTab()
			prog, err := parser.ParseProgram(tab, p.Source)
			if err != nil {
				t.Fatal(err)
			}
			mod, err := compiler.Compile(tab, prog)
			if err != nil {
				t.Fatal(err)
			}
			m := New(mod)
			s, err := m.Solve(p.Query)
			if err != nil {
				t.Fatal(err)
			}
			if !s.OK {
				t.Fatalf("query %q failed", p.Query)
			}
			for name, want := range p.WantBinding {
				wantBinding(t, s, name, want)
			}
		})
	}
}

// TestBenchmarksUnindexed re-runs the suite with indexing disabled; the
// answers must not depend on the indexing instructions.
func TestBenchmarksUnindexed(t *testing.T) {
	for _, p := range bench.Programs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tab := term.NewTab()
			prog, err := parser.ParseProgram(tab, p.Source)
			if err != nil {
				t.Fatal(err)
			}
			mod, err := compiler.CompileWith(tab, prog, compiler.Options{Indexing: false})
			if err != nil {
				t.Fatal(err)
			}
			m := New(mod)
			ok, err := m.RunMain()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !ok {
				t.Fatal("main/0 failed without indexing")
			}
		})
	}
}

func TestModuleSizeCounts(t *testing.T) {
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, "p(a).\n")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Size() == 0 {
		t.Fatal("module size should be positive")
	}
	if mod.Proc(tab.Func("p", 1)).Profile.Instructions == 0 {
		t.Fatal("proc profile should count instructions")
	}
	_ = wam.FailAddr
}

func TestTraceOutput(t *testing.T) {
	m := build(t, "p(a).")
	var sb strings.Builder
	m.Trace = &sb
	if s := solve(t, m, "p(a)"); !s.OK {
		t.Fatal("p(a) failed")
	}
	out := sb.String()
	if !strings.Contains(out, "get_constant a, A1") || !strings.Contains(out, "proceed") {
		t.Fatalf("trace incomplete:\n%s", out)
	}
}

func TestStandardOrderBuiltins(t *testing.T) {
	m := build(t, "p.")
	cases := map[string]bool{
		"a @< b":          true,
		"b @< a":          false,
		"1 @< a":          true, // numbers before atoms
		"X @< 1":          true, // variables first
		"a @< f(a)":       true, // atoms before compounds
		"f(a) @< f(b)":    true,
		"f(a) @< g(a)":    true, // same arity: by name
		"f(a) @< h(a, b)": true, // lower arity first
		"[1] @< [2]":      true,
		"c @>= c":         true,
		"c @> b":          true,
		"a @=< a":         true,
	}
	for goal, want := range cases {
		s := solve(t, m, goal)
		if s.OK != want {
			t.Errorf("%s = %v, want %v", goal, s.OK, want)
		}
	}
	s := solve(t, m, "compare(O, f(1, 2), f(1, 3))")
	wantBinding(t, s, "O", "<")
	s2 := solve(t, m, "compare(O, [a], [a])")
	wantBinding(t, s2, "O", "=")
}

func TestLengthBuiltin(t *testing.T) {
	m := build(t, "p.")
	s := solve(t, m, "length([a, b, c], N)")
	wantBinding(t, s, "N", "3")
	s2 := solve(t, m, "length(L, 2), L = [x, Y], Y = z")
	wantBinding(t, s2, "L", "[x, z]")
	if s3 := solve(t, m, "length([a|b], N)"); s3.OK {
		t.Fatal("improper list should fail")
	}
	if s4 := solve(t, m, "length([a, b], 3)"); s4.OK {
		t.Fatal("wrong length should fail")
	}
	s5 := solve(t, m, "length([a|T], 3)")
	if !s5.OK {
		t.Fatal("partial list completion failed")
	}
	if _, err := m.Solve("length(L, N)"); err == nil {
		t.Fatal("doubly unbound length should error")
	}
}

func TestAssertRetract(t *testing.T) {
	m := build(t, "p.")
	s := solve(t, m, "assert(fact(1)), assert(fact(2)), assert(fact(3)), fact(X)")
	if !s.OK {
		t.Fatal("asserted facts not callable")
	}
	wantBinding(t, s, "X", "1")
	var got []string
	for s.OK {
		x, _ := s.Binding("X")
		got = append(got, m.Mod.Tab.Write(x))
		if ok, _ := s.Next(); !ok {
			break
		}
	}
	if strings.Join(got, ",") != "1,2,3" {
		t.Fatalf("fact enumeration = %v", got)
	}
	// Retract removes the first match.
	s2 := solve(t, m, "retract(fact(2)), fact(X), X == 2")
	if s2.OK {
		t.Fatal("retracted fact still present")
	}
	s3 := solve(t, m, "retract(fact(99))")
	if s3.OK {
		t.Fatal("retracting an absent fact should fail")
	}
}

func TestAssertWithVariables(t *testing.T) {
	m := build(t, "p.")
	s := solve(t, m, "assert(pair(X, X)), pair(7, Y)")
	if !s.OK {
		t.Fatal("asserted fact with shared variables failed")
	}
	wantBinding(t, s, "Y", "7")
}

func TestAssertBacktrackPersists(t *testing.T) {
	// Asserts are not undone by backtracking (standard Prolog).
	m := build(t, `
		go :- assert(mark(yes)), fail.
		go.
	`)
	s := solve(t, m, "go, mark(M)")
	if !s.OK {
		t.Fatal("assert should survive backtracking")
	}
	wantBinding(t, s, "M", "yes")
}

func TestAssertIntoCompiledPredicateFails(t *testing.T) {
	m := build(t, "p(static).")
	if _, err := m.Solve("assert(p(dynamic))"); err == nil {
		t.Fatal("asserting into a compiled predicate must error")
	}
}

func TestDynamicClearLoop(t *testing.T) {
	// retract/1 is deterministic here (one removal per call, not
	// re-satisfiable on backtracking), so tables are cleared with the
	// recursive idiom.
	m := build(t, `
		fill :- assert(d(1)), assert(d(2)), assert(d(3)).
		clear :- retract(d(_)), !, clear.
		clear.
	`)
	s := solve(t, m, "fill, clear, d(_)")
	if s.OK {
		t.Fatal("cleared table should have no facts")
	}
	s2 := solve(t, m, "fill, d(X), X == 3")
	if !s2.OK {
		t.Fatal("refilled table should enumerate to 3")
	}
}
