package machine

import (
	"fmt"

	"awam/internal/rt"
	"awam/internal/term"
	"awam/internal/wam"
)

// Dynamic fact database: assert/1, retract/1 and calling asserted
// predicates. The paper notes that Prolog-hosted analyzers keep their
// extension table in the assert database; supporting facts (clauses
// without bodies) is what that usage — and our executable version of the
// Section 5 transformation — requires.
//
// Facts are stored as source terms (variables generalized), appended in
// assertion order. A call to a predicate with no compiled clauses falls
// back to the dynamic database, enumerating matching facts through the
// normal choice-point machinery.

// dynPred holds the asserted facts of one predicate.
type dynPred struct {
	facts []*term.Term
}

// assertFact stores a copy of the cell as a fact.
func (m *Machine) assertFact(c rt.Cell) (bool, error) {
	tm := m.readCell(c)
	fn, ok := term.Indicator(tm)
	if !ok {
		return false, fmt.Errorf("machine: assert of a non-callable term")
	}
	if m.Mod.Proc(fn) != nil {
		return false, fmt.Errorf("machine: cannot assert into compiled predicate %s", m.Mod.Tab.FuncString(fn))
	}
	if m.dyn == nil {
		m.dyn = make(map[term.Functor]*dynPred)
	}
	p := m.dyn[fn]
	if p == nil {
		p = &dynPred{}
		m.dyn[fn] = p
	}
	p.facts = append(p.facts, tm)
	return true, nil
}

// retractFact removes the first fact unifying with the cell.
func (m *Machine) retractFact(c rt.Cell) (bool, error) {
	tm := m.readCell(c)
	fn, ok := term.Indicator(tm)
	if !ok {
		return false, fmt.Errorf("machine: retract of a non-callable term")
	}
	p := m.dyn[fn]
	if p == nil {
		return false, nil
	}
	for i, f := range p.facts {
		mark := m.H.Mark()
		addr := m.H.LoadTerm(m.Mod.Tab, term.Rename(f), make(map[*term.VarRef]int))
		if m.unify(c, rt.MkRef(addr)) {
			p.facts = append(p.facts[:i], p.facts[i+1:]...)
			return true, nil
		}
		m.H.Undo(mark)
	}
	return false, nil
}

// dynCall dispatches a call/execute whose target has no compiled code to
// the dynamic database. isExecute selects the continuation (proceed vs
// next instruction). startIdx resumes enumeration after backtracking.
// It returns false to fail (no matching fact from startIdx on).
func (m *Machine) dynCall(fn term.Functor, isExecute bool, callAddr, startIdx int) bool {
	p := m.dyn[fn]
	if p == nil {
		return false
	}
	for idx := startIdx; idx < len(p.facts); idx++ {
		mark := m.H.Mark()
		addr := m.H.LoadTerm(m.Mod.Tab, term.Rename(p.facts[idx]), make(map[*term.VarRef]int))
		_, factCell := m.H.DerefCell(addr)
		if !m.unifyDynHead(fn, factCell) {
			m.H.Undo(mark)
			continue
		}
		// Matched: leave a resume point for the remaining facts.
		if idx+1 < len(p.facts) {
			m.pushCP(0)
			cp := &m.cps[len(m.cps)-1]
			cp.dynFn = fn
			cp.dynNext = idx + 1
			cp.dynAddr = callAddr
			cp.dynExec = isExecute
			// The choice point's heap mark must predate this attempt's
			// bindings so they unwind on retry.
			cp.mark = mark
		}
		if isExecute {
			m.p = m.cp
		} else {
			m.p = callAddr + 1
		}
		return true
	}
	return false
}

// unifyDynHead unifies the loaded fact's arguments with the argument
// registers.
func (m *Machine) unifyDynHead(fn term.Functor, fact rt.Cell) bool {
	if fn.Arity == 0 {
		return fact.Tag == rt.Con && fact.F == fn
	}
	_, args := m.compoundShape(fact)
	for i := 0; i < fn.Arity; i++ {
		if !m.unify(m.getX(i+1), rt.MkRef(args+i)) {
			return false
		}
	}
	return true
}

// DynamicFacts exposes the asserted facts of a predicate (tests and
// diagnostics).
func (m *Machine) DynamicFacts(fn term.Functor) []*term.Term {
	if p := m.dyn[fn]; p != nil {
		return append([]*term.Term(nil), p.facts...)
	}
	return nil
}

// dynBuiltins handles assert/1 (and assertz/1), retract/1.
func (m *Machine) dynBuiltin(id wam.BuiltinID) (bool, error) {
	switch id {
	case wam.BIAssert:
		return m.assertFact(m.getX(1))
	case wam.BIRetract:
		return m.retractFact(m.getX(1))
	}
	return false, fmt.Errorf("machine: unknown dynamic builtin %d", id)
}
