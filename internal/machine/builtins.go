package machine

import (
	"fmt"
	"strings"

	"awam/internal/rt"
	"awam/internal/term"
	"awam/internal/wam"
)

// callBuiltin executes an inline builtin over the argument registers.
// The boolean is the goal's success; the error aborts execution (type
// errors in arithmetic and the like).
func (m *Machine) callBuiltin(id wam.BuiltinID) (bool, error) {
	switch id {
	case wam.BITrue:
		return true, nil
	case wam.BIFail:
		return false, nil
	case wam.BIHalt:
		m.p = haltPC - 1 // advanced by the caller to haltPC
		return true, nil
	case wam.BIIs:
		v, err := m.evalArith(m.getX(2))
		if err != nil {
			return false, err
		}
		return m.unify(m.getX(1), rt.MkInt(v)), nil
	case wam.BILt, wam.BILe, wam.BIGt, wam.BIGe, wam.BIArithEq, wam.BIArithNe:
		l, err := m.evalArith(m.getX(1))
		if err != nil {
			return false, err
		}
		r, err := m.evalArith(m.getX(2))
		if err != nil {
			return false, err
		}
		switch id {
		case wam.BILt:
			return l < r, nil
		case wam.BILe:
			return l <= r, nil
		case wam.BIGt:
			return l > r, nil
		case wam.BIGe:
			return l >= r, nil
		case wam.BIArithEq:
			return l == r, nil
		default:
			return l != r, nil
		}
	case wam.BIUnify:
		return m.unify(m.getX(1), m.getX(2)), nil
	case wam.BINotUnify:
		mark := m.H.Mark()
		ok := m.unify(m.getX(1), m.getX(2))
		m.H.UndoTrailOnly(mark)
		return !ok, nil
	case wam.BIEq:
		return m.structEqual(m.getX(1), m.getX(2)), nil
	case wam.BINotEq:
		return !m.structEqual(m.getX(1), m.getX(2)), nil
	case wam.BIVar:
		c, _ := m.H.ResolveCell(m.getX(1))
		return c.Tag == rt.Ref, nil
	case wam.BINonvar:
		c, _ := m.H.ResolveCell(m.getX(1))
		return c.Tag != rt.Ref, nil
	case wam.BIAtom:
		c, _ := m.H.ResolveCell(m.getX(1))
		return c.Tag == rt.Con, nil
	case wam.BIInteger:
		c, _ := m.H.ResolveCell(m.getX(1))
		return c.Tag == rt.Int, nil
	case wam.BIAtomic:
		c, _ := m.H.ResolveCell(m.getX(1))
		return c.Tag == rt.Con || c.Tag == rt.Int, nil
	case wam.BIWrite:
		if m.Out != nil {
			tm := m.readCell(m.getX(1))
			fmt.Fprint(m.Out, m.Mod.Tab.Write(tm))
		}
		return true, nil
	case wam.BINl:
		if m.Out != nil {
			fmt.Fprintln(m.Out)
		}
		return true, nil
	case wam.BIFunctor:
		return m.biFunctor()
	case wam.BIArg:
		return m.biArg()
	case wam.BICompare:
		var rel term.Atom
		switch o := m.termCompare(m.getX(2), m.getX(3)); {
		case o < 0:
			rel = m.Mod.Tab.Intern("<")
		case o > 0:
			rel = m.Mod.Tab.Intern(">")
		default:
			rel = m.Mod.Tab.Intern("=")
		}
		return m.unify(m.getX(1), rt.MkCon(rel)), nil
	case wam.BITermLt:
		return m.termCompare(m.getX(1), m.getX(2)) < 0, nil
	case wam.BITermLe:
		return m.termCompare(m.getX(1), m.getX(2)) <= 0, nil
	case wam.BITermGt:
		return m.termCompare(m.getX(1), m.getX(2)) > 0, nil
	case wam.BITermGe:
		return m.termCompare(m.getX(1), m.getX(2)) >= 0, nil
	case wam.BILength:
		return m.biLength()
	case wam.BIAssert, wam.BIRetract:
		return m.dynBuiltin(id)
	default:
		return false, fmt.Errorf("machine: builtin %d not implemented", id)
	}
}

// termCompare implements the standard order of terms:
// Var < Int < Atom < compound; variables by heap address, integers by
// value, atoms alphabetically, compounds by arity, then name, then
// arguments left to right.
func (m *Machine) termCompare(a, b rt.Cell) int {
	ca, aa := m.H.ResolveCell(a)
	cb, ab := m.H.ResolveCell(b)
	ra, rb := orderRank(ca.Tag), orderRank(cb.Tag)
	if ra != rb {
		return ra - rb
	}
	switch ca.Tag {
	case rt.Ref:
		return aa - ab
	case rt.Int:
		switch {
		case ca.I < cb.I:
			return -1
		case ca.I > cb.I:
			return 1
		}
		return 0
	case rt.Con:
		return strings.Compare(m.Mod.Tab.Name(ca.F.Name), m.Mod.Tab.Name(cb.F.Name))
	default: // compound (Lis or Str)
		fa, argA := m.compoundShape(ca)
		fb, argB := m.compoundShape(cb)
		if fa.Arity != fb.Arity {
			return fa.Arity - fb.Arity
		}
		if c := strings.Compare(m.Mod.Tab.Name(fa.Name), m.Mod.Tab.Name(fb.Name)); c != 0 {
			return c
		}
		for i := 0; i < fa.Arity; i++ {
			if c := m.termCompare(rt.MkRef(argA+i), rt.MkRef(argB+i)); c != 0 {
				return c
			}
		}
		return 0
	}
}

// orderRank places tags in the standard order.
func orderRank(t rt.Tag) int {
	switch t {
	case rt.Ref:
		return 0
	case rt.Int:
		return 1
	case rt.Con:
		return 2
	default:
		return 3
	}
}

// compoundShape returns the functor and the address of the first
// argument cell of a compound.
func (m *Machine) compoundShape(c rt.Cell) (term.Functor, int) {
	if c.Tag == rt.Lis {
		return m.Mod.Tab.ConsFunctor(), c.A
	}
	fn := m.H.At(c.A)
	return fn.F, c.A + 1
}

// biLength implements length/2 in both directions (proper list ->
// count, and var + count -> skeleton of fresh variables).
func (m *Machine) biLength() (bool, error) {
	c, addr := m.H.ResolveCell(m.getX(1))
	// Walk the list spine as far as it is instantiated.
	n := 0
	for c.Tag == rt.Lis {
		n++
		na, nc := m.H.DerefCell(c.A + 1)
		c, addr = nc, na
	}
	switch c.Tag {
	case rt.Con:
		if c.F.Name != m.Mod.Tab.Nil {
			return false, nil
		}
		return m.unify(m.getX(2), rt.MkInt(int64(n))), nil
	case rt.Ref:
		// Partial list: the length argument must supply the total.
		lc, _ := m.H.ResolveCell(m.getX(2))
		if lc.Tag != rt.Int {
			return false, fmt.Errorf("machine: length/2 with partial list needs a bound length")
		}
		want := int(lc.I)
		if want < n {
			return false, nil
		}
		for i := n; i < want; i++ {
			pair := m.H.PushVar()
			m.H.PushVar()
			m.H.Bind(addr, rt.Cell{Tag: rt.Lis, A: pair})
			addr = pair + 1
		}
		m.H.Bind(addr, rt.MkCon(m.Mod.Tab.Nil))
		return true, nil
	default:
		return false, nil
	}
}

// evalArith evaluates an arithmetic expression cell.
func (m *Machine) evalArith(c rt.Cell) (int64, error) {
	rc, _ := m.H.ResolveCell(c)
	switch rc.Tag {
	case rt.Int:
		return rc.I, nil
	case rt.Ref:
		return 0, fmt.Errorf("machine: arithmetic on unbound variable")
	case rt.Str:
		fn := m.H.At(rc.A).F
		name := m.Mod.Tab.Name(fn.Name)
		if fn.Arity == 1 {
			v, err := m.evalArith(rt.MkRef(rc.A + 1))
			if err != nil {
				return 0, err
			}
			switch name {
			case "-":
				return -v, nil
			case "+":
				return v, nil
			case "abs":
				if v < 0 {
					return -v, nil
				}
				return v, nil
			}
			return 0, fmt.Errorf("machine: unknown arithmetic functor %s/1", name)
		}
		if fn.Arity == 2 {
			l, err := m.evalArith(rt.MkRef(rc.A + 1))
			if err != nil {
				return 0, err
			}
			r, err := m.evalArith(rt.MkRef(rc.A + 2))
			if err != nil {
				return 0, err
			}
			switch name {
			case "+":
				return l + r, nil
			case "-":
				return l - r, nil
			case "*":
				return l * r, nil
			case "//", "/":
				if r == 0 {
					return 0, fmt.Errorf("machine: division by zero")
				}
				return l / r, nil
			case "mod":
				if r == 0 {
					return 0, fmt.Errorf("machine: mod by zero")
				}
				v := l % r
				if (v < 0 && r > 0) || (v > 0 && r < 0) {
					v += r
				}
				return v, nil
			case "rem":
				if r == 0 {
					return 0, fmt.Errorf("machine: rem by zero")
				}
				return l % r, nil
			case "min":
				if l < r {
					return l, nil
				}
				return r, nil
			case "max":
				if l > r {
					return l, nil
				}
				return r, nil
			case ">>":
				return l >> uint(r), nil
			case "<<":
				return l << uint(r), nil
			}
			return 0, fmt.Errorf("machine: unknown arithmetic functor %s/2", name)
		}
		return 0, fmt.Errorf("machine: unevaluable functor %s/%d", name, fn.Arity)
	case rt.Con:
		return 0, fmt.Errorf("machine: atom %s is not arithmetic", m.Mod.Tab.Name(rc.F.Name))
	default:
		return 0, fmt.Errorf("machine: unevaluable cell %s", rc.Tag)
	}
}

// structEqual implements ==/2 (no bindings).
func (m *Machine) structEqual(a, b rt.Cell) bool {
	ca, aa := m.H.ResolveCell(a)
	cb, ab := m.H.ResolveCell(b)
	if ca.Tag != cb.Tag {
		return false
	}
	switch ca.Tag {
	case rt.Ref:
		return aa == ab
	case rt.Con:
		return ca.F.Name == cb.F.Name
	case rt.Int:
		return ca.I == cb.I
	case rt.Lis:
		return m.structEqual(rt.MkRef(ca.A), rt.MkRef(cb.A)) &&
			m.structEqual(rt.MkRef(ca.A+1), rt.MkRef(cb.A+1))
	case rt.Str:
		fa, fb := m.H.At(ca.A), m.H.At(cb.A)
		if fa.F != fb.F {
			return false
		}
		for i := 1; i <= fa.F.Arity; i++ {
			if !m.structEqual(rt.MkRef(ca.A+i), rt.MkRef(cb.A+i)) {
				return false
			}
		}
		return true
	}
	return false
}

// biFunctor implements functor/3 in both directions.
func (m *Machine) biFunctor() (bool, error) {
	c, _ := m.H.ResolveCell(m.getX(1))
	tab := m.Mod.Tab
	switch c.Tag {
	case rt.Con:
		return m.unify(m.getX(2), rt.MkCon(c.F.Name)) &&
			m.unify(m.getX(3), rt.MkInt(0)), nil
	case rt.Int:
		return m.unify(m.getX(2), rt.MkInt(c.I)) &&
			m.unify(m.getX(3), rt.MkInt(0)), nil
	case rt.Lis:
		return m.unify(m.getX(2), rt.MkCon(tab.Dot)) &&
			m.unify(m.getX(3), rt.MkInt(2)), nil
	case rt.Str:
		fn := m.H.At(c.A).F
		return m.unify(m.getX(2), rt.MkCon(fn.Name)) &&
			m.unify(m.getX(3), rt.MkInt(int64(fn.Arity))), nil
	case rt.Ref:
		nameC, _ := m.H.ResolveCell(m.getX(2))
		arityC, _ := m.H.ResolveCell(m.getX(3))
		if arityC.Tag != rt.Int {
			return false, fmt.Errorf("machine: functor/3 arity not an integer")
		}
		n := int(arityC.I)
		if n == 0 {
			return m.unify(m.getX(1), nameC), nil
		}
		if nameC.Tag != rt.Con {
			return false, fmt.Errorf("machine: functor/3 name not an atom")
		}
		fn := term.Functor{Name: nameC.F.Name, Arity: n}
		var cell rt.Cell
		if fn.Name == tab.Dot && n == 2 {
			pair := m.H.PushVar()
			m.H.PushVar()
			cell = rt.Cell{Tag: rt.Lis, A: pair}
		} else {
			fnAddr := m.H.Push(rt.Cell{Tag: rt.Fun, F: fn})
			for i := 0; i < n; i++ {
				m.H.PushVar()
			}
			cell = rt.Cell{Tag: rt.Str, A: fnAddr}
		}
		return m.unify(m.getX(1), cell), nil
	}
	return false, nil
}

// biArg implements arg/3 (first direction only).
func (m *Machine) biArg() (bool, error) {
	nC, _ := m.H.ResolveCell(m.getX(1))
	tC, _ := m.H.ResolveCell(m.getX(2))
	if nC.Tag != rt.Int {
		return false, fmt.Errorf("machine: arg/3 index not an integer")
	}
	n := int(nC.I)
	switch tC.Tag {
	case rt.Lis:
		if n < 1 || n > 2 {
			return false, nil
		}
		return m.unify(m.getX(3), rt.MkRef(tC.A+n-1)), nil
	case rt.Str:
		fn := m.H.At(tC.A).F
		if n < 1 || n > fn.Arity {
			return false, nil
		}
		return m.unify(m.getX(3), rt.MkRef(tC.A+n)), nil
	default:
		return false, nil
	}
}

// readCell reconstructs a source term from a register cell.
func (m *Machine) readCell(c rt.Cell) *term.Term {
	return m.H.ReadCellTerm(m.Mod.Tab, c, make(map[int]*term.Term))
}
