package machine

import (
	"fmt"
	"strings"
	"testing"

	"awam/internal/compiler"
	"awam/internal/parser"
	"awam/internal/term"
	"awam/internal/wam"
)

// TestDeepRecursionEnvironments: long last-call chains must not grow the
// environment chain (LCO) and deep non-tail recursion must work.
func TestDeepRecursion(t *testing.T) {
	m := build(t, `
		count(N, N) :- !.
		count(I, N) :- I < N, I1 is I + 1, count(I1, N).
		sum(0, 0) :- !.
		sum(N, S) :- N1 is N - 1, sum(N1, S1), S is S1 + N.
	`)
	s := solve(t, m, "count(0, 50000)")
	if !s.OK {
		t.Fatal("tail-recursive count failed")
	}
	s2 := solve(t, m, "sum(2000, S)")
	wantBinding(t, s2, "S", "2001000")
}

// TestBacktrackingRestoresArgumentRegisters: choice points must restore
// the argument registers exactly.
func TestBacktrackingRestoresArgs(t *testing.T) {
	m := build(t, `
		p(X, Y) :- q(X), X = Y.
		q(1).
		q(2).
		q(3).
	`)
	// Force failure of the first two alternatives via the second arg.
	s := solve(t, m, "p(V, 3)")
	if !s.OK {
		t.Fatal("p(V, 3) should succeed via the third alternative")
	}
	wantBinding(t, s, "V", "3")
}

// TestTrailAcrossDeepBacktracking: bindings made many choice points deep
// must unwind correctly.
func TestTrailAcrossDeepBacktracking(t *testing.T) {
	m := build(t, `
		perm([], []).
		perm(L, [X|P]) :- sel(X, L, R), perm(R, P).
		sel(X, [X|T], T).
		sel(X, [H|T], [H|R]) :- sel(X, T, R).
	`)
	s := solve(t, m, "perm([1,2,3,4], P)")
	count := 0
	seen := make(map[string]bool)
	for s.OK {
		p, err := s.Binding("P")
		if err != nil {
			t.Fatal(err)
		}
		key := m.Mod.Tab.Write(p)
		if seen[key] {
			t.Fatalf("duplicate permutation %s", key)
		}
		seen[key] = true
		count++
		ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if count != 24 {
		t.Fatalf("got %d permutations, want 24", count)
	}
}

// TestCutInsideBacktracking: cut committing inside a deep alternative.
func TestCutCommitsFirstSolutionOnly(t *testing.T) {
	m := build(t, `
		first(X, L) :- member(X, L), !.
		member(X, [X|_]).
		member(X, [_|T]) :- member(X, T).
	`)
	s := solve(t, m, "first(F, [a,b,c])")
	wantBinding(t, s, "F", "a")
	if ok, _ := s.Next(); ok {
		t.Fatal("cut should leave exactly one solution")
	}
}

// TestLargeTermConstruction: building and decomposing a wide structure.
func TestLargeTerms(t *testing.T) {
	args := make([]string, 100)
	for i := range args {
		args[i] = fmt.Sprintf("%d", i)
	}
	src := "big(f(" + strings.Join(args, ",") + ")).\n"
	m := build(t, src)
	s := solve(t, m, "big(T), arg(57, T, A)")
	if !s.OK {
		t.Fatal("big term query failed")
	}
	wantBinding(t, s, "A", "56")
}

// TestHeapGrowthAndReset: repeated failing attempts must not leak heap
// between solutions (heap is truncated on backtracking).
func TestHeapTruncationOnBacktrack(t *testing.T) {
	m := build(t, `
		waste(0) :- !.
		waste(N) :- mk(N, _), N1 is N - 1, waste(N1).
		mk(N, f(N, N, N, N)).
		pick(1) :- waste(50), fail.
		pick(2).
	`)
	s := solve(t, m, "pick(X)")
	wantBinding(t, s, "X", "2")
}

// TestFailureInjectionBadTarget: a module whose call targets are
// corrupted must produce machine errors, not panics.
func TestFailureInjectionBadTarget(t *testing.T) {
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, "p :- q.\nq.\n")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the call target to point past the code (a single trailing
	// goal compiles to execute, so patch both).
	for i := range mod.Code {
		if mod.Code[i].Op == wam.OpCall || mod.Code[i].Op == wam.OpExecute {
			mod.Code[i].L = len(mod.Code) + 100
		}
	}
	m := New(mod)
	if _, err := m.Solve("p"); err == nil {
		t.Fatal("expected pc-out-of-range error")
	}
}

// TestFailureInjectionBadOpcode: unknown opcodes error out cleanly.
func TestFailureInjectionBadOpcode(t *testing.T) {
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, "p.\n")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		t.Fatal(err)
	}
	mod.Code[mod.Procs[tab.Func("p", 0)].Entry] = wam.Instr{Op: 250}
	m := New(mod)
	if _, err := m.Solve("p"); err == nil {
		t.Fatal("expected unknown-opcode error")
	}
}

// TestZeroArityChainsAndSteps: step counting is monotone and the same
// query gives the same count when re-run on a fresh machine.
func TestDeterministicStepCounts(t *testing.T) {
	src := `
		main :- a, b, c.
		a. b. c.
	`
	run := func() int64 {
		m := build(t, src)
		ok, err := m.RunMain()
		if err != nil || !ok {
			t.Fatalf("run: %v %v", ok, err)
		}
		return m.Steps
	}
	if run() != run() {
		t.Fatal("step counts must be deterministic")
	}
}

// TestArithmeticEdgeCases covers negatives and mod/rem semantics.
func TestArithmeticEdgeCases(t *testing.T) {
	m := build(t, "p.")
	cases := map[string]string{
		"X is -7 mod 3":        "2", // mod follows the divisor's sign
		"X is 7 mod -3":        "-2",
		"X is -7 rem 3":        "-1", // rem follows the dividend's sign
		"X is -2147483648 - 1": "-2147483649",
		"X is 2 * 3 - 10":      "-4",
		"X is min(3, -2)":      "-2",
		"X is max(3, -2)":      "3",
		"X is abs(-9)":         "9",
		"X is 1 << 10":         "1024",
		"X is 1024 >> 3":       "128",
	}
	for goal, want := range cases {
		s := solve(t, m, goal)
		if !s.OK {
			t.Errorf("%s failed", goal)
			continue
		}
		got, err := s.Binding("X")
		if err != nil {
			t.Fatal(err)
		}
		if m.Mod.Tab.Write(got) != want {
			t.Errorf("%s = %s, want %s", goal, m.Mod.Tab.Write(got), want)
		}
	}
}

// TestEnvironmentProtectedByChoicePoints: an environment deallocated by
// LCO must stay usable by an older choice point's alternatives (the
// classic WAM stack-protection scenario; here environments are linked,
// so the test pins the behavioral contract).
func TestEnvironmentProtection(t *testing.T) {
	m := build(t, `
		top(R) :- mid(X), last(X, R).
		mid(X) :- pick(X), check(X).
		pick(1).
		pick(2).
		pick(3).
		check(X) :- X > 1.
		last(X, R) :- R is X * 10.
	`)
	// pick(1) fails check; the retry must see mid's environment intact.
	s := solve(t, m, "top(R)")
	if !s.OK {
		t.Fatal("top failed")
	}
	wantBinding(t, s, "R", "20")
	ok, err := s.Next()
	if err != nil || !ok {
		t.Fatalf("second solution: %v %v", ok, err)
	}
	wantBinding(t, s, "R", "30")
}

// TestYRegistersSurviveNestedCalls: permanent variables hold across
// deeply nested calls that thrash the X registers.
func TestYRegistersSurviveNestedCalls(t *testing.T) {
	m := build(t, `
		go(A, B, C, R) :- wide(A), wide(B), wide(C), R = t(A, B, C).
		wide(X) :- f8(X, _, _, _, _, _, _, _).
		f8(X, X, X, X, X, X, X, X).
	`)
	s := solve(t, m, "go(1, 2, 3, R)")
	wantBinding(t, s, "R", "t(1, 2, 3)")
}

// TestChoicePointHeapDiscipline: heap addresses saved in a choice point
// stay valid across repeated deep failures (value-trail restoration).
func TestChoicePointHeapDiscipline(t *testing.T) {
	m := build(t, `
		search(In, Out) :- transform(In, Mid), accept(Mid, Out).
		transform(X, big(X, [X, X])).
		transform(X, small(X)).
		accept(small(X), X).
	`)
	s := solve(t, m, "search(42, Out)")
	if !s.OK {
		t.Fatal("search failed")
	}
	wantBinding(t, s, "Out", "42")
}
