// Package machine implements the concrete (standard) WAM: the left-hand
// path of the paper's Figure 1. It executes the code produced by
// internal/compiler with the usual register set (argument/temporary X
// registers, environment Y slots), a heap, a value trail, environments
// linked through pointers, and a choice-point stack.
//
// The machine exists for three reasons: it runs the benchmark programs
// (so the repository is a complete Prolog system, as the paper's pipeline
// requires), it validates the compiler that feeds the abstract analyzer,
// and it provides the ground truth for the analysis soundness tests —
// every concrete answer must be a member of the analyzer's inferred
// success pattern.
package machine

import (
	"errors"
	"fmt"
	"io"

	"awam/internal/rt"
	"awam/internal/term"
	"awam/internal/wam"
)

// haltPC is the continuation sentinel meaning "query solved".
const haltPC = -2

// ErrStepLimit is returned when execution exceeds Machine.MaxSteps.
var ErrStepLimit = errors.New("machine: step limit exceeded")

type mode uint8

const (
	readMode mode = iota
	writeMode
)

// Env is an environment frame (AND-stack record). Frames are linked by
// pointer rather than stacked in an array so that choice points can keep
// deallocated-but-protected frames alive without an explicit barrier.
type Env struct {
	prev *Env
	cp   int // continuation (return address) saved by allocate
	y    []rt.Cell
}

// ChoicePoint saves the machine state needed to retry an alternative.
// For dynamic-fact enumeration (assert/1 database), dynNext > 0 marks a
// resume point in the fact list instead of a code alternative.
type ChoicePoint struct {
	alt   int
	e     *Env
	cp    int
	mark  rt.Mark
	args  []rt.Cell
	b0    int
	arity int

	dynFn   term.Functor
	dynNext int
	dynAddr int
	dynExec bool
}

// Machine is a concrete WAM instance over one compiled module.
type Machine struct {
	Mod *wam.Module
	H   *rt.Heap

	x        []rt.Cell // X/A registers, 1-based (x[0] unused)
	e        *Env
	cps      []ChoicePoint
	p        int
	cp       int
	b0       int
	s        int
	mode     mode
	curArity int

	// Steps counts executed instructions (the concrete analogue of the
	// paper's "Exec" column).
	Steps int64
	// MaxSteps bounds execution; 0 means the default.
	MaxSteps int64
	// Out receives write/1 and nl/0 output; nil discards it.
	Out io.Writer
	// Trace, when non-nil, receives one line per executed instruction
	// (address and disassembly) — the classic WAM debugging aid.
	Trace io.Writer

	dyn        map[term.Functor]*dynPred
	builtinErr error
}

// New returns a machine for mod.
func New(mod *wam.Module) *Machine {
	return &Machine{
		Mod:      mod,
		H:        rt.NewHeap(),
		x:        make([]rt.Cell, 16),
		MaxSteps: 200_000_000,
	}
}

func (m *Machine) ensureX(n int) {
	for len(m.x) <= n {
		m.x = append(m.x, rt.Cell{})
	}
}

func (m *Machine) setX(n int, c rt.Cell) {
	m.ensureX(n)
	m.x[n] = c
}

func (m *Machine) getX(n int) rt.Cell {
	m.ensureX(n)
	return m.x[n]
}

// CallAddrs invokes predicate fn with the heap addresses argAddrs as
// arguments and runs to the first solution.
func (m *Machine) CallAddrs(fn term.Functor, argAddrs []int) (bool, error) {
	proc := m.Mod.Proc(fn)
	if proc == nil {
		return false, fmt.Errorf("machine: undefined predicate %s", m.Mod.Tab.FuncString(fn))
	}
	if len(argAddrs) != fn.Arity {
		return false, fmt.Errorf("machine: %s called with %d args", m.Mod.Tab.FuncString(fn), len(argAddrs))
	}
	m.cps = m.cps[:0]
	m.e = nil
	m.cp = haltPC
	m.b0 = 0
	m.curArity = fn.Arity
	for i, a := range argAddrs {
		m.setX(i+1, rt.MkRef(a))
	}
	m.p = proc.Entry
	return m.run()
}

// Redo backtracks into the most recent solution's remaining choice points
// and searches for the next solution.
func (m *Machine) Redo() (bool, error) {
	if !m.backtrack() {
		return false, nil
	}
	return m.run()
}

// run executes until success (continuation reaches the halt sentinel),
// definite failure, or an error.
func (m *Machine) run() (bool, error) {
	if m.MaxSteps == 0 {
		m.MaxSteps = 200_000_000
	}
	for {
		if m.p == haltPC {
			return true, nil
		}
		if m.p < 0 || m.p >= len(m.Mod.Code) {
			return false, fmt.Errorf("machine: pc %d out of range", m.p)
		}
		if m.Steps >= m.MaxSteps {
			return false, ErrStepLimit
		}
		m.Steps++
		ins := m.Mod.Code[m.p]
		if m.Trace != nil {
			fmt.Fprintf(m.Trace, "%6d  %s\n", m.p, m.Mod.DisasmInstr(ins))
		}
		ok := m.step(ins)
		if m.builtinErr != nil {
			err := m.builtinErr
			if fn, found := m.Mod.OwnerOf(m.p); found {
				err = fmt.Errorf("%w (at %d in %s)", err, m.p, m.Mod.Tab.FuncString(fn))
			}
			return false, err
		}
		if !ok && !m.backtrack() {
			return false, nil
		}
	}
}

// step executes one instruction; false means "unification failed,
// backtrack".
func (m *Machine) step(ins wam.Instr) bool {
	switch ins.Op {
	case wam.OpNop:
		m.p++

	// --- get instructions ---
	case wam.OpGetVarX:
		m.setX(ins.A2, m.getX(ins.A1))
		m.p++
	case wam.OpGetVarY:
		m.e.y[ins.A2] = m.getX(ins.A1)
		m.p++
	case wam.OpGetValX:
		if !m.unify(m.getX(ins.A2), m.getX(ins.A1)) {
			return false
		}
		m.p++
	case wam.OpGetValY:
		if !m.unify(m.e.y[ins.A2], m.getX(ins.A1)) {
			return false
		}
		m.p++
	case wam.OpGetConst:
		if !m.getConstant(rt.MkCon(ins.Fn.Name), ins.A1) {
			return false
		}
		m.p++
	case wam.OpGetInt:
		if !m.getConstant(rt.MkInt(ins.I), ins.A1) {
			return false
		}
		m.p++
	case wam.OpGetNil:
		if !m.getConstant(rt.MkCon(m.Mod.Tab.Nil), ins.A1) {
			return false
		}
		m.p++
	case wam.OpGetList:
		c, addr := m.H.ResolveCell(m.getX(ins.A1))
		switch c.Tag {
		case rt.Lis:
			m.s = c.A
			m.mode = readMode
		case rt.Ref:
			m.H.Bind(addr, rt.Cell{Tag: rt.Lis, A: m.H.Top()})
			m.mode = writeMode
		default:
			return false
		}
		m.p++
	case wam.OpGetStruct:
		c, addr := m.H.ResolveCell(m.getX(ins.A1))
		switch c.Tag {
		case rt.Str:
			if m.H.At(c.A).F != ins.Fn {
				return false
			}
			m.s = c.A + 1
			m.mode = readMode
		case rt.Ref:
			fnAddr := m.H.Push(rt.Cell{Tag: rt.Fun, F: ins.Fn})
			m.H.Bind(addr, rt.Cell{Tag: rt.Str, A: fnAddr})
			m.mode = writeMode
		default:
			return false
		}
		m.p++

	// --- put instructions ---
	case wam.OpPutVarX:
		a := m.H.PushVar()
		m.setX(ins.A2, rt.MkRef(a))
		m.setX(ins.A1, rt.MkRef(a))
		m.p++
	case wam.OpPutVarY:
		a := m.H.PushVar()
		m.e.y[ins.A2] = rt.MkRef(a)
		m.setX(ins.A1, rt.MkRef(a))
		m.p++
	case wam.OpPutValX:
		m.setX(ins.A1, m.getX(ins.A2))
		m.p++
	case wam.OpPutValY:
		m.setX(ins.A1, m.e.y[ins.A2])
		m.p++
	case wam.OpPutConst:
		m.setX(ins.A1, rt.MkCon(ins.Fn.Name))
		m.p++
	case wam.OpPutInt:
		m.setX(ins.A1, rt.MkInt(ins.I))
		m.p++
	case wam.OpPutNil:
		m.setX(ins.A1, rt.MkCon(m.Mod.Tab.Nil))
		m.p++
	case wam.OpPutList:
		m.setX(ins.A1, rt.Cell{Tag: rt.Lis, A: m.H.Top()})
		m.mode = writeMode
		m.p++
	case wam.OpPutStruct:
		fnAddr := m.H.Push(rt.Cell{Tag: rt.Fun, F: ins.Fn})
		m.setX(ins.A1, rt.Cell{Tag: rt.Str, A: fnAddr})
		m.mode = writeMode
		m.p++

	// --- unify instructions ---
	case wam.OpUnifyVarX:
		if m.mode == readMode {
			m.setX(ins.A2, rt.MkRef(m.s))
			m.s++
		} else {
			a := m.H.PushVar()
			m.setX(ins.A2, rt.MkRef(a))
		}
		m.p++
	case wam.OpUnifyVarY:
		if m.mode == readMode {
			m.e.y[ins.A2] = rt.MkRef(m.s)
			m.s++
		} else {
			a := m.H.PushVar()
			m.e.y[ins.A2] = rt.MkRef(a)
		}
		m.p++
	case wam.OpUnifyValX:
		if m.mode == readMode {
			if !m.unify(m.getX(ins.A2), rt.MkRef(m.s)) {
				return false
			}
			m.s++
		} else {
			m.H.Push(m.getX(ins.A2))
		}
		m.p++
	case wam.OpUnifyValY:
		if m.mode == readMode {
			if !m.unify(m.e.y[ins.A2], rt.MkRef(m.s)) {
				return false
			}
			m.s++
		} else {
			m.H.Push(m.e.y[ins.A2])
		}
		m.p++
	case wam.OpUnifyConst:
		if !m.unifyStep(rt.MkCon(ins.Fn.Name)) {
			return false
		}
		m.p++
	case wam.OpUnifyInt:
		if !m.unifyStep(rt.MkInt(ins.I)) {
			return false
		}
		m.p++
	case wam.OpUnifyNil:
		if !m.unifyStep(rt.MkCon(m.Mod.Tab.Nil)) {
			return false
		}
		m.p++
	case wam.OpUnifyVoid:
		if m.mode == readMode {
			m.s += ins.A2
		} else {
			for i := 0; i < ins.A2; i++ {
				m.H.PushVar()
			}
		}
		m.p++

	// --- procedural instructions ---
	case wam.OpAllocate:
		m.e = &Env{prev: m.e, cp: m.cp, y: make([]rt.Cell, ins.A2)}
		m.p++
	case wam.OpDeallocate:
		m.cp = m.e.cp
		m.e = m.e.prev
		m.p++
	case wam.OpCall:
		if ins.L == wam.FailAddr {
			return m.dynCallEntry(ins.Fn, false)
		}
		m.cp = m.p + 1
		m.b0 = len(m.cps)
		m.curArity = ins.Fn.Arity
		m.p = ins.L
	case wam.OpExecute:
		if ins.L == wam.FailAddr {
			return m.dynCallEntry(ins.Fn, true)
		}
		m.b0 = len(m.cps)
		m.curArity = ins.Fn.Arity
		m.p = ins.L
	case wam.OpProceed:
		m.p = m.cp
	case wam.OpBuiltin:
		ok, err := m.callBuiltin(wam.BuiltinID(ins.A1))
		if err != nil {
			m.builtinErr = err
			return true // run() notices builtinErr
		}
		if !ok {
			return false
		}
		m.p++
	case wam.OpHalt:
		m.p = haltPC

	// --- cut ---
	case wam.OpNeckCut:
		if len(m.cps) > m.b0 {
			m.cps = m.cps[:m.b0]
		}
		m.p++
	case wam.OpGetLevel:
		m.e.y[ins.A2] = rt.MkInt(int64(m.b0))
		m.p++
	case wam.OpCutTo:
		barrier := int(m.e.y[ins.A2].I)
		if len(m.cps) > barrier {
			m.cps = m.cps[:barrier]
		}
		m.p++

	// --- choice instructions ---
	case wam.OpTryMeElse:
		m.pushCP(ins.L)
		m.p++
	case wam.OpRetryMeElse:
		m.cps[len(m.cps)-1].alt = ins.L
		m.p++
	case wam.OpTrustMe:
		m.cps = m.cps[:len(m.cps)-1]
		m.p++
	case wam.OpTry:
		m.pushCP(m.p + 1)
		m.p = ins.L
	case wam.OpRetry:
		m.cps[len(m.cps)-1].alt = m.p + 1
		m.p = ins.L
	case wam.OpTrust:
		m.cps = m.cps[:len(m.cps)-1]
		m.p = ins.L

	// --- indexing ---
	case wam.OpSwitchOnTerm:
		c, _ := m.H.ResolveCell(m.getX(1))
		var tgt int
		switch c.Tag {
		case rt.Ref:
			tgt = ins.LV
		case rt.Con, rt.Int:
			tgt = ins.LC
		case rt.Lis:
			tgt = ins.LL
		case rt.Str:
			tgt = ins.LS
		default:
			tgt = ins.LV
		}
		if tgt == wam.FailAddr {
			return false
		}
		m.p = tgt
	case wam.OpSwitchOnConst:
		c, _ := m.H.ResolveCell(m.getX(1))
		var key wam.ConstKey
		switch c.Tag {
		case rt.Int:
			key = wam.ConstKey{IsInt: true, I: c.I}
		case rt.Con:
			key = wam.ConstKey{A: c.F.Name}
		default:
			return false
		}
		tgt, ok := ins.TblC[key]
		if !ok {
			// Key absent: take the table's default (the optimizer's
			// var-headed-clause block) when present, else fail.
			if ins.LD == 0 {
				return false
			}
			tgt = ins.LD
		}
		if tgt == wam.FailAddr {
			return false
		}
		m.p = tgt
	case wam.OpSwitchOnStruct:
		c, _ := m.H.ResolveCell(m.getX(1))
		if c.Tag != rt.Str {
			return false
		}
		tgt, ok := ins.TblS[m.H.At(c.A).F]
		if !ok {
			if ins.LD == 0 {
				return false
			}
			tgt = ins.LD
		}
		if tgt == wam.FailAddr {
			return false
		}
		m.p = tgt

	// --- specialized instructions (internal/optimize) ---
	// The analysis proved the argument non-variable; the binding paths
	// are gone. Meeting an unbound variable here would mean the analysis
	// was unsound, which the optimizer tests assert never happens.
	case wam.OpGetConstCmp, wam.OpGetIntCmp, wam.OpGetNilCmp:
		c, _ := m.H.ResolveCell(m.getX(ins.A1))
		var k rt.Cell
		switch ins.Op {
		case wam.OpGetConstCmp:
			k = rt.MkCon(ins.Fn.Name)
		case wam.OpGetIntCmp:
			k = rt.MkInt(ins.I)
		default:
			k = rt.MkCon(m.Mod.Tab.Nil)
		}
		switch c.Tag {
		case rt.Ref:
			m.builtinErr = fmt.Errorf("machine: specialized %s met an unbound variable (unsound analysis)",
				m.Mod.DisasmInstr(ins))
			return true
		case rt.Con:
			if !(k.Tag == rt.Con && c.F.Name == k.F.Name) {
				return false
			}
		case rt.Int:
			if !(k.Tag == rt.Int && c.I == k.I) {
				return false
			}
		default:
			return false
		}
		m.p++
	case wam.OpGetListRead:
		c, _ := m.H.ResolveCell(m.getX(ins.A1))
		switch c.Tag {
		case rt.Lis:
			m.s = c.A
			m.mode = readMode
		case rt.Ref:
			m.builtinErr = fmt.Errorf("machine: get_list* met an unbound variable (unsound analysis)")
			return true
		default:
			return false
		}
		m.p++
	case wam.OpGetStructRead:
		c, _ := m.H.ResolveCell(m.getX(ins.A1))
		switch c.Tag {
		case rt.Str:
			if m.H.At(c.A).F != ins.Fn {
				return false
			}
			m.s = c.A + 1
			m.mode = readMode
		case rt.Ref:
			m.builtinErr = fmt.Errorf("machine: get_structure* met an unbound variable (unsound analysis)")
			return true
		default:
			return false
		}
		m.p++

	default:
		m.builtinErr = fmt.Errorf("machine: unknown opcode %d at %d", ins.Op, m.p)
	}
	return true
}

// getConstant unifies the constant cell k with argument register ai.
func (m *Machine) getConstant(k rt.Cell, ai int) bool {
	c, addr := m.H.ResolveCell(m.getX(ai))
	switch c.Tag {
	case rt.Ref:
		m.H.Bind(addr, k)
		return true
	case rt.Con:
		return k.Tag == rt.Con && c.F.Name == k.F.Name
	case rt.Int:
		return k.Tag == rt.Int && c.I == k.I
	default:
		return false
	}
}

// unifyStep handles unify_constant/integer/nil in the current mode.
func (m *Machine) unifyStep(k rt.Cell) bool {
	if m.mode == readMode {
		ok := m.unify(rt.MkRef(m.s), k)
		m.s++
		return ok
	}
	m.H.Push(k)
	return true
}

func (m *Machine) pushCP(alt int) {
	n := m.curArity
	args := make([]rt.Cell, n)
	for i := 0; i < n; i++ {
		args[i] = m.getX(i + 1)
	}
	m.cps = append(m.cps, ChoicePoint{
		alt:   alt,
		e:     m.e,
		cp:    m.cp,
		mark:  m.H.Mark(),
		args:  args,
		b0:    m.b0,
		arity: n,
	})
}

// backtrack restores the newest choice point and jumps to its
// alternative; false when no choice point remains.
func (m *Machine) backtrack() bool {
	for {
		if len(m.cps) == 0 {
			return false
		}
		cp := &m.cps[len(m.cps)-1]
		m.H.Undo(cp.mark)
		m.e = cp.e
		m.cp = cp.cp
		m.b0 = cp.b0
		m.curArity = cp.arity
		for i, c := range cp.args {
			m.setX(i+1, c)
		}
		if cp.dynNext > 0 {
			// Dynamic-fact resume: this choice point is consumed; the
			// next matching fact (if any) pushes a fresh one.
			fn, exec, addr, next := cp.dynFn, cp.dynExec, cp.dynAddr, cp.dynNext
			m.cps = m.cps[:len(m.cps)-1]
			if m.dynCall(fn, exec, addr, next) {
				return true
			}
			continue
		}
		m.p = cp.alt
		return true
	}
}

// dynCallEntry is the call/execute path for predicates with no compiled
// code: consult the dynamic database.
func (m *Machine) dynCallEntry(fn term.Functor, isExecute bool) bool {
	if m.dyn[fn] == nil {
		return false
	}
	m.curArity = fn.Arity
	return m.dynCall(fn, isExecute, m.p, 0)
}

// unify performs general unification of two cells with an explicit stack.
func (m *Machine) unify(a, b rt.Cell) bool {
	type pair struct{ a, b rt.Cell }
	stack := []pair{{a, b}}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ca, aa := m.H.ResolveCell(p.a)
		cb, ab := m.H.ResolveCell(p.b)
		if aa >= 0 && aa == ab {
			continue
		}
		switch {
		case ca.Tag == rt.Ref && cb.Tag == rt.Ref:
			// Bind the younger variable to the older one.
			if aa > ab {
				m.H.Bind(aa, rt.MkRef(ab))
			} else {
				m.H.Bind(ab, rt.MkRef(aa))
			}
		case ca.Tag == rt.Ref:
			if ab >= 0 {
				m.H.Bind(aa, rt.MkRef(ab))
			} else {
				m.H.Bind(aa, cb)
			}
		case cb.Tag == rt.Ref:
			if aa >= 0 {
				m.H.Bind(ab, rt.MkRef(aa))
			} else {
				m.H.Bind(ab, ca)
			}
		case ca.Tag == rt.Con && cb.Tag == rt.Con:
			if ca.F.Name != cb.F.Name {
				return false
			}
		case ca.Tag == rt.Int && cb.Tag == rt.Int:
			if ca.I != cb.I {
				return false
			}
		case ca.Tag == rt.Lis && cb.Tag == rt.Lis:
			stack = append(stack,
				pair{rt.MkRef(ca.A), rt.MkRef(cb.A)},
				pair{rt.MkRef(ca.A + 1), rt.MkRef(cb.A + 1)})
		case ca.Tag == rt.Str && cb.Tag == rt.Str:
			fa, fb := m.H.At(ca.A), m.H.At(cb.A)
			if fa.F != fb.F {
				return false
			}
			for i := 1; i <= fa.F.Arity; i++ {
				stack = append(stack, pair{rt.MkRef(ca.A + i), rt.MkRef(cb.A + i)})
			}
		default:
			return false
		}
	}
	return true
}
