package core

import (
	"testing"

	"awam/internal/bench"
	"awam/internal/compiler"
	"awam/internal/machine"
	"awam/internal/parser"
	"awam/internal/term"
)

// TestExtendedSuiteRuns: every extended benchmark runs concretely and
// produces its expected answers (control constructs included).
func TestExtendedSuiteRuns(t *testing.T) {
	for _, p := range bench.Extended {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tab := term.NewTab()
			prog, err := parser.ParseProgram(tab, p.Source)
			if err != nil {
				t.Fatal(err)
			}
			mod, err := compiler.Compile(tab, prog)
			if err != nil {
				t.Fatal(err)
			}
			m := machine.New(mod)
			ok, err := m.RunMain()
			if err != nil || !ok {
				t.Fatalf("main: ok=%v err=%v", ok, err)
			}
			if p.Query != "" {
				m2 := machine.New(mod)
				sol, err := m2.Solve(p.Query)
				if err != nil {
					t.Fatal(err)
				}
				if !sol.OK {
					t.Fatalf("query %q failed", p.Query)
				}
				for name, want := range p.WantBinding {
					tm, err := sol.Binding(name)
					if err != nil {
						t.Fatal(err)
					}
					if got := tab.Write(tm); got != want {
						t.Fatalf("%s = %s, want %s", name, got, want)
					}
				}
			}
		})
	}
}

// TestExtendedSuiteAnalyzes: the analyzer reaches a fixpoint on the
// extended suite (expanded control constructs included) and sees main
// succeed.
func TestExtendedSuiteAnalyzes(t *testing.T) {
	for _, p := range bench.Extended {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tab := term.NewTab()
			prog, err := parser.ParseProgram(tab, p.Source)
			if err != nil {
				t.Fatal(err)
			}
			mod, err := compiler.Compile(tab, prog)
			if err != nil {
				t.Fatal(err)
			}
			res, err := New(mod).AnalyzeMain()
			if err != nil {
				t.Fatal(err)
			}
			if res.SuccessFor(tab.Func("main", 0)) == nil {
				t.Fatal("analysis claims main/0 cannot succeed")
			}
		})
	}
}
