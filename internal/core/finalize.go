package core

import (
	"awam/internal/domain"
	"awam/internal/rt"
	"awam/internal/term"
)

// This file implements the deterministic presentation pass shared by
// all three strategies (naive, worklist, parallel).
//
// Every strategy converges the summary function (calling pattern ->
// merged success pattern) by chaotic iteration. Since the widening
// became an upper closure, the converged summary function itself is
// schedule-independent: the table stores only widened canonical
// patterns, and merge = widen ∘ lub is an idempotent, commutative,
// associative join on that subdomain (domain/laws_test.go), so the
// accumulated value of each entry is the join of the set of
// contributions, not of their history. What stays schedule-dependent
// is the raw table's *presentation*: a clause explored under an
// intermediate summary can generate calling patterns that no longer
// occur once its callees reach their fixpoint (transients), and
// discovery order differs per schedule.
//
// The finalize pass removes that dependence: it re-explores the program
// once, depth-first from the entry patterns, and rebuilds both parts of
// the presentation from scratch. Calling patterns are rediscovered
// exactly as reachable under converged summaries, in deterministic
// depth-first order; each entry's published summary is recomputed as the
// lub of its clause successes under those summaries, free of historical
// contributions. The converged oracle is consulted only where the replay
// cannot supply a value of its own: a cyclic consultation (the entry is
// still running its own clauses) reads the oracle's converged summary.
// At such points the strategies' oracles agree — the converged summary
// function is the same under every schedule (the join argument above) —
// so the reported table (Entries, summaries, TableSize, Report,
// Marshal) is a pure function of the fixpoint, identical across
// strategies, worker counts and schedules. internal/baseline runs the
// same replay over its meta-interpreted table, which is what lets the
// cross-validation suite compare the two analyzers byte for byte.
//
// Termination needs no in-flight bookkeeping: an entry is added to the
// presentation table before its clauses run (carrying the oracle summary
// while in progress), so recursive occurrences memo-return immediately
// and each calling pattern is explored at most once.
//
// Completeness of the oracle is a property of the converged strategies:
// at termination every entry's last exploration read only final
// summaries (any later growth would have re-enqueued it), so the calling
// patterns generated under final summaries were all inserted before the
// queue drained. Soundness of the recomputed summaries follows by
// induction over the replay: every callee value read is either itself
// recomputed from sound values or a converged (sound) oracle summary,
// and clause execution over sound callee summaries yields sound success
// patterns.

// summaryOracle answers converged-summary lookups by interned ID; both
// the sequential Table implementations and the ShardedTable satisfy it.
// The replay shares the fixpoint phase's interner, so its IDs are
// directly comparable with the oracle's.
type summaryOracle interface {
	Get(id domain.PatternID) *Entry
}

// finState is the finalize-pass bookkeeping; solve dispatches on it.
// The presentation index is a map by default; pre-interning
// specialization uses the dense ID-indexed slice instead (useDense).
type finState struct {
	oracle   summaryOracle
	index    map[domain.PatternID]*Entry
	dense    []*Entry
	useDense bool
	order    []*Entry
	// cur is the entry whose clauses (or cached trace) are being
	// replayed; consultations are recorded on it, deduplicated through
	// the entry's finSeen scratch (first occurrences only — repeats are
	// no-ops for discovery, so replaying first sights reproduces the
	// order).
	cur *Entry
}

// get returns the presented entry for id, or nil.
func (f *finState) get(id domain.PatternID) *Entry {
	if f.useDense {
		if int(id) < len(f.dense) {
			return f.dense[id]
		}
		return nil
	}
	return f.index[id]
}

// put records a presented entry under its ID.
func (f *finState) put(id domain.PatternID, e *Entry) {
	if f.useDense {
		for int(id) >= len(f.dense) {
			f.dense = append(f.dense, nil)
		}
		f.dense[id] = e
		return
	}
	f.index[id] = e
}

// consult records that the current entry's replay consulted id.
func (f *finState) consult(id domain.PatternID, cp *domain.Pattern) {
	if f.cur == nil {
		return
	}
	for _, s := range f.cur.finSeen {
		if s == id {
			return
		}
	}
	f.cur.finSeen = append(f.cur.finSeen, id)
	f.cur.Consults = append(f.cur.Consults, cp)
}

// finalize rebuilds the presentation table from the converged oracle.
// The abstract instructions it executes are not charged to a.Steps: the
// Exec statistic stays comparable to the paper's Table 1 (fixpoint work
// only). For the same reason the replay is invisible to the
// observability layer — its instructions land in a scratch metrics shard
// that is thrown away, the tracer is detached, and it draws on a private
// step budget — so Metrics totals stay equal to Result.Steps and a
// nearly exhausted fixpoint budget cannot fail the presentation pass.
func (a *Analyzer) finalize(entries []*domain.Pattern, oracle summaryOracle) ([]*Entry, error) {
	savedSteps := a.Steps
	savedMet, savedTr := a.met, a.tr
	savedBudget, savedAllow := a.budget, a.allow
	savedAttrFn, savedAttrStart := a.attrFn, a.attrStart
	a.Steps = 0
	a.met = newMetricsShard()
	a.tr = nil
	finBudget := a.cfg.MaxSteps
	a.budget = &finBudget
	a.allow = 0
	a.attrFn = term.Functor{}
	a.attrStart = 0
	a.fin = &finState{
		oracle:   oracle,
		index:    make(map[domain.PatternID]*Entry),
		useDense: a.specPre,
	}
	defer func() {
		a.fin = nil
		a.Steps = savedSteps
		a.met, a.tr = savedMet, savedTr
		a.budget, a.allow = savedBudget, savedAllow
		a.attrFn, a.attrStart = savedAttrFn, savedAttrStart
	}()
	for _, cp := range entries {
		// Top level: nothing survives between explorations (the
		// specialized engine reuses heap capacity via Reset; the parallel
		// driver reaches here with a nil heap of its own).
		if a.specOn && a.h != nil {
			a.h.Reset()
		} else {
			a.h = rt.NewHeap()
		}
		a.solveFin(cp.Canonical())
		if a.err != nil {
			return nil, a.err
		}
	}
	for _, e := range a.fin.order {
		e.finSeen = nil // scratch only; don't retain it in the result
	}
	return a.fin.order, nil
}

// solveFin is the reinterpreted call during finalization: memo-return
// when the calling pattern was already presented, otherwise record it
// and explore its clauses once (inline, depth-first — the discovery
// order of a sequential first sight), recomputing its summary from the
// clause successes. While the entry's own clauses run, Succ holds the
// converged oracle summary so that cyclic consultations read the
// fixpoint value; exploreFin replaces it with the recomputed lub.
func (a *Analyzer) solveFin(cp *domain.Pattern) *domain.Pattern {
	if a.err != nil {
		return nil
	}
	succ, _ := a.solveFinID(cp, a.intern(cp))
	return succ
}

// solveFinID is solveFin's core over a pre-interned calling pattern;
// see solveNaiveID.
func (a *Analyzer) solveFinID(cp *domain.Pattern, id domain.PatternID) (*domain.Pattern, domain.PatternID) {
	if a.err != nil {
		return nil, domain.BottomID
	}
	if e := a.fin.get(id); e != nil {
		e.Lookups++
		a.fin.consult(id, e.CP)
		return e.Succ, e.succID
	}
	e := &Entry{ID: id, CP: a.in.Pattern(id)}
	a.fin.consult(id, e.CP)
	// Warm start: a cached entry's presentation is replayed from its
	// recorded trace — same summary, same discovery order — without
	// executing its clauses. The probe comes before the oracle lookup:
	// trace-replayed callee patterns were never consulted during the
	// warm fixpoint phase, so the converged table has no record of them.
	if a.cfg.Warm != nil {
		if sp, ok := a.cfg.Warm.Seed(cp.Fn, e.CP.Key()); ok {
			spID := a.intern(sp)
			e.Succ = a.in.Pattern(spID)
			e.succID = spID
			e.warm = true
			a.fin.put(id, e)
			a.fin.order = append(a.fin.order, e)
			prev := a.fin.cur
			a.fin.cur = e
			for _, dep := range a.cfg.Warm.Trace(cp.Fn, e.CP.Key()) {
				a.solveFin(dep)
				if a.err != nil {
					break
				}
			}
			a.fin.cur = prev
			return e.Succ, e.succID
		}
	}
	if oe := a.fin.oracle.Get(id); oe != nil {
		e.Succ = oe.Succ
		e.succID = oe.succID
	} else {
		// Should be unreachable at a true fixpoint; kept as a warning so
		// a convergence bug surfaces as imprecision, not silence.
		a.warnOnce("core: finalize: calling pattern missing from converged table: " + cp.String(a.tab))
	}
	a.fin.put(id, e)
	a.fin.order = append(a.fin.order, e)
	prev := a.fin.cur
	a.fin.cur = e
	a.exploreFin(e)
	a.fin.cur = prev
	return e.Succ, e.succID
}

// exploreFin runs the entry's clauses once against the converged
// summaries and recomputes the published summary as the lub of the
// clause successes — the single-history value every schedule agrees on.
// The converged summary (held in e.Succ during the loop, visible to
// cyclic consultations) must bound each clause success; a violation
// means the fixpoint phase did not actually converge.
func (a *Analyzer) exploreFin(e *Entry) {
	proc := a.mod.Proc(e.CP.Fn)
	if proc == nil {
		return
	}
	accID := domain.BottomID
	for _, clauseAddr := range a.selectClausesEntry(proc, e.CP, e.ID) {
		mark := a.h.Mark()
		argAddrs := a.materializeEntry(e.CP, e.ID)
		a.ensureX(e.CP.Fn.Arity)
		for i, addr := range argAddrs {
			a.x[i+1] = rt.MkRef(addr)
		}
		ok := a.run(clauseAddr)
		if a.err != nil {
			return
		}
		if ok {
			sp := a.abstractArgs(e.CP.Fn, argAddrs)
			spID := a.intern(sp)
			if e.succID == domain.BottomID || !a.leqSumm(spID, e.succID) {
				a.warnOnce("core: finalize: summary not converged for " + e.CP.String(a.tab))
			}
			accID, _ = a.mergeSumm(accID, spID)
		}
		a.h.Undo(mark)
	}
	e.Succ = a.in.Pattern(accID)
	e.succID = accID
}
