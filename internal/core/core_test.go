package core

import (
	"strings"
	"testing"

	"awam/internal/bench"
	"awam/internal/compiler"
	"awam/internal/domain"
	"awam/internal/parser"
	"awam/internal/term"
	"awam/internal/wam"
)

func buildMod(t *testing.T, src string) (*term.Tab, *wam.Module) {
	t.Helper()
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return tab, mod
}

func analyzeFrom(t *testing.T, tab *term.Tab, mod *wam.Module, entry string) *Result {
	t.Helper()
	cp, err := domain.ParseAbs(tab, entry)
	if err != nil {
		t.Fatalf("entry pattern: %v", err)
	}
	a := New(mod)
	res, err := a.Analyze(cp)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res
}

func successString(t *testing.T, res *Result, tab *term.Tab, fn term.Functor) string {
	t.Helper()
	s := res.SuccessFor(fn)
	if s == nil {
		return "bottom"
	}
	return s.String(tab)
}

// TestFigure3 reproduces the paper's central example: analyzing the head
// p(a, [f(V)|L]) under the calling pattern p(atom, glist) must succeed
// with the second argument instantiated to a ground non-empty list —
// the composition of s_unify steps (1), (2.1) and (2.2) in Section 4.1
// yields [f(g)|list(g)], which the schedule-confluent uniform-list
// closure presents as [g|list(g)] (head and tail element joined).
func TestFigure3(t *testing.T) {
	tab, mod := buildMod(t, "p(a, [f(V)|L]) :- q(V, L).\nq(_, _).\n")
	res := analyzeFrom(t, tab, mod, "p(atom, list(g))")
	succ := res.SuccessFor(tab.Func("p", 2))
	if succ == nil {
		t.Fatal("p(atom, glist) should succeed")
	}
	got := succ.String(tab)
	if got != "p(atom, [g|list(g)])" {
		t.Fatalf("success pattern = %s, want p(atom, [g|list(g)])", got)
	}
}

// TestFigure3Steps checks the intermediate patterns seen by the callee:
// q must be called with V = g and L = glist.
func TestFigure3Steps(t *testing.T) {
	tab, mod := buildMod(t, "p(a, [f(V)|L]) :- q(V, L).\nq(_, _).\n")
	res := analyzeFrom(t, tab, mod, "p(atom, list(g))")
	entries := res.EntriesFor(tab.Func("q", 2))
	if len(entries) != 1 {
		t.Fatalf("expected one calling pattern for q, got %d", len(entries))
	}
	if got := entries[0].CP.String(tab); got != "q(g, list(g))" {
		t.Fatalf("q called with %s, want q(g, list(g))", got)
	}
}

// TestGetListReinterpretation is experiment E6: get_list over each
// abstract argument type (the paper's Figure 4).
func TestGetListReinterpretation(t *testing.T) {
	src := "p([H|T]) :- q(H, T).\nq(_, _).\n"
	cases := []struct {
		entry    string
		wantCall string // calling pattern of q, or "" for failure
	}{
		{"p(any)", "q(any, any)"},
		{"p(nv)", "q(any, any)"},
		{"p(g)", "q(g, g)"},
		{"p(list(g))", "q(g, list(g))"},
		{"p(list(atom))", "q(atom, list(atom))"},
		{"p(var)", "q(var, var)"},
		{"p(atom)", ""},
		{"p(int)", ""},
		{"p(const)", ""},
		{"p([])", ""},
	}
	for _, c := range cases {
		tab, mod := buildMod(t, src)
		res := analyzeFrom(t, tab, mod, c.entry)
		entries := res.EntriesFor(tab.Func("q", 2))
		if c.wantCall == "" {
			if len(entries) != 0 {
				t.Errorf("%s: get_list should fail, but q was called with %s",
					c.entry, entries[0].CP.String(tab))
			}
			continue
		}
		if len(entries) != 1 {
			t.Errorf("%s: expected one q call, got %d", c.entry, len(entries))
			continue
		}
		if got := entries[0].CP.String(tab); got != c.wantCall {
			t.Errorf("%s: q called with %s, want %s", c.entry, got, c.wantCall)
		}
	}
}

// TestGetStructGround: the paper's step 2.2 — get_structure f/1 on a g
// instance produces f(g).
func TestGetStructReinterpretation(t *testing.T) {
	src := "p(f(X)) :- q(X).\nq(_).\n"
	cases := []struct {
		entry    string
		wantCall string
	}{
		{"p(g)", "q(g)"},
		{"p(any)", "q(any)"},
		{"p(nv)", "q(any)"},
		{"p(var)", "q(var)"},
		{"p(atom)", ""},
		{"p(list(g))", ""},
		{"p(h(g))", ""}, // wrong functor
		{"p(f(atom))", "q(atom)"},
	}
	for _, c := range cases {
		tab, mod := buildMod(t, src)
		res := analyzeFrom(t, tab, mod, c.entry)
		entries := res.EntriesFor(tab.Func("q", 1))
		if c.wantCall == "" {
			if len(entries) != 0 {
				t.Errorf("%s: expected failure, q called with %s", c.entry, entries[0].CP.String(tab))
			}
			continue
		}
		if len(entries) != 1 || entries[0].CP.String(tab) != c.wantCall {
			t.Errorf("%s: q calls = %v", c.entry, entries)
		}
	}
}

// TestGetConstAbstract: get_constant against each abstract class.
func TestGetConstReinterpretation(t *testing.T) {
	src := "p(a).\n"
	cases := map[string]string{
		"p(atom)":  "p(atom)",
		"p(const)": "p(atom)",
		"p(g)":     "p(atom)",
		"p(any)":   "p(atom)",
		"p(var)":   "p(atom)",
		"p(int)":   "bottom",
		"p([])":    "bottom",
	}
	for entry, want := range cases {
		tab, mod := buildMod(t, src)
		res := analyzeFrom(t, tab, mod, entry)
		if got := successString(t, res, tab, tab.Func("p", 1)); got != want {
			t.Errorf("%s: success = %s, want %s", entry, got, want)
		}
	}
}

// TestListInference: append with unknown lists — the classic alpha-list
// result. Calling concatenate(list(g), list(g), var) must succeed with a
// glist third argument.
func TestListInference(t *testing.T) {
	src := `
concatenate([X|L1], L2, [X|L3]) :- concatenate(L1, L2, L3).
concatenate([], L, L).
`
	tab, mod := buildMod(t, src)
	res := analyzeFrom(t, tab, mod, "concatenate(list(g), list(g), var)")
	got := successString(t, res, tab, tab.Func("concatenate", 3))
	if got != "concatenate(list(g), list(g), list(g))" {
		t.Fatalf("append success = %s", got)
	}
}

// TestNreverseMain: full fixpoint from main/0 on the nreverse benchmark;
// nreverse must be seen to map a ground list to a ground list.
func TestNreverseMain(t *testing.T) {
	p, _ := bench.ByName("nreverse")
	tab, mod := buildMod(t, p.Source)
	a := New(mod)
	res, err := a.AnalyzeMain()
	if err != nil {
		t.Fatal(err)
	}
	succ := res.SuccessFor(tab.Func("nreverse", 2))
	if succ == nil {
		t.Fatal("nreverse has no success pattern")
	}
	got := succ.String(tab)
	if got != "nreverse(list(int), list(int))" && got != "nreverse(list(g), list(g))" {
		t.Fatalf("nreverse success = %s", got)
	}
	if res.Iterations < 2 {
		t.Fatalf("recursive list program should need >1 iteration, got %d", res.Iterations)
	}
}

// TestArithmeticNarrowing: is/2 must bind results to integer and require
// ground expressions.
func TestArithmeticNarrowing(t *testing.T) {
	src := "double(X, Y) :- Y is X + X.\n"
	tab, mod := buildMod(t, src)
	res := analyzeFrom(t, tab, mod, "double(int, var)")
	got := successString(t, res, tab, tab.Func("double", 2))
	if got != "double(int, int)" {
		t.Fatalf("double success = %s", got)
	}
	// With an 'any' input the expression narrows to ground.
	tab2, mod2 := buildMod(t, src)
	res2 := analyzeFrom(t, tab2, mod2, "double(any, var)")
	got2 := successString(t, res2, tab2, tab2.Func("double", 2))
	if got2 != "double(g, int)" {
		t.Fatalf("double(any) success = %s", got2)
	}
}

// TestRecursionBottomFirstIteration: a predicate whose only success
// comes through recursion still converges.
func TestRecursionFixpoint(t *testing.T) {
	src := `
nat(z).
nat(s(N)) :- nat(N).
`
	tab, mod := buildMod(t, src)
	res := analyzeFrom(t, tab, mod, "nat(any)")
	got := successString(t, res, tab, tab.Func("nat", 1))
	// z joins s(...) at depth 4: s(s(s(nv-or-g))).
	if !strings.HasPrefix(got, "nat(") || got == "bottom" {
		t.Fatalf("nat success = %s", got)
	}
	succ := res.SuccessFor(tab.Func("nat", 1))
	if !domain.Leq(tab, succ.Args[0], domain.MkLeaf(domain.Ground)) {
		t.Fatalf("nat results should be ground, got %s", got)
	}
}

// TestFailurePropagation: a goal that always fails yields bottom and the
// caller records no success.
func TestFailurePropagation(t *testing.T) {
	src := "p(X) :- q(X).\nq(a) :- fail.\n"
	tab, mod := buildMod(t, src)
	res := analyzeFrom(t, tab, mod, "p(any)")
	if got := successString(t, res, tab, tab.Func("p", 1)); got != "bottom" {
		t.Fatalf("p should be bottom, got %s", got)
	}
	if got := successString(t, res, tab, tab.Func("q", 1)); got != "bottom" {
		t.Fatalf("q should be bottom, got %s", got)
	}
}

// TestUndefinedPredicateIsBottom mirrors Prolog failure semantics.
func TestUndefinedPredicateIsBottom(t *testing.T) {
	src := "p(X) :- missing(X).\n"
	tab, mod := buildMod(t, src)
	res := analyzeFrom(t, tab, mod, "p(any)")
	if got := successString(t, res, tab, tab.Func("p", 1)); got != "bottom" {
		t.Fatalf("p should be bottom, got %s", got)
	}
}

// TestSharingAcrossCall: unifying two arguments records aliasing in the
// success pattern.
func TestSharingAcrossCall(t *testing.T) {
	src := "eq(X, X).\n"
	tab, mod := buildMod(t, src)
	res := analyzeFrom(t, tab, mod, "eq(var, var)")
	succ := res.SuccessFor(tab.Func("eq", 2))
	if succ == nil {
		t.Fatal("eq should succeed")
	}
	pairs := succ.ArgSharePairs()
	if len(pairs) != 1 || pairs[0] != [2]int{0, 1} {
		t.Fatalf("eq aliasing = %v (pattern %s)", pairs, succ.String(tab))
	}
}

// TestTypeTestBuiltins: integer/1, atom/1, var/1 narrowing and failure.
func TestTypeTestBuiltins(t *testing.T) {
	src := `
onlyint(X) :- integer(X).
onlyatom(X) :- atom(X).
onlyvar(X) :- var(X).
`
	cases := []struct {
		entry, want string
	}{
		{"onlyint(int)", "onlyint(int)"},
		{"onlyint(atom)", "bottom"},
		{"onlyint(any)", "onlyint(int)"},
		{"onlyint(g)", "onlyint(int)"},
		{"onlyint(var)", "bottom"},
		{"onlyatom(list(g))", "onlyatom([])"},
		{"onlyvar(nv)", "bottom"},
		{"onlyvar(var)", "onlyvar(var)"},
	}
	for _, c := range cases {
		tab, mod := buildMod(t, src)
		res := analyzeFrom(t, tab, mod, c.entry)
		fn, _ := term.Indicator(mustParse(t, tab, c.entry))
		if got := successString(t, res, tab, fn); got != c.want {
			t.Errorf("%s: success = %s, want %s", c.entry, got, c.want)
		}
	}
}

func mustParse(t *testing.T, tab *term.Tab, src string) *term.Term {
	t.Helper()
	tm, err := parser.ParseTerm(tab, src)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

// TestCutIgnoredSoundly: the analyzer must include clauses a cut would
// prune (over-approximation).
func TestCutIgnoredSoundly(t *testing.T) {
	src := `
max(X, Y, X) :- X >= Y, !.
max(_, Y, Y).
`
	tab, mod := buildMod(t, src)
	res := analyzeFrom(t, tab, mod, "max(int, int, var)")
	got := successString(t, res, tab, tab.Func("max", 3))
	if got != "max(g, g, g)" && got != "max(int, int, g)" && got != "max(g, g, any)" {
		// Third argument covers both clauses' outcomes.
		t.Logf("note: max success = %s", got)
	}
	succ := res.SuccessFor(tab.Func("max", 3))
	if succ == nil {
		t.Fatal("max should succeed")
	}
	if !domain.Leq(tab, succ.Args[2], domain.MkLeaf(domain.Ground)) {
		t.Fatalf("third arg should be ground after either clause: %s", got)
	}
}

// TestDeterministicReturn: repeated calls with the same pattern hit the
// memo table rather than re-exploring.
func TestMemoHits(t *testing.T) {
	src := `
p :- q(a), q(a), q(a).
q(_).
`
	tab, mod := buildMod(t, src)
	res := analyzeFrom(t, tab, mod, "p")
	entries := res.EntriesFor(tab.Func("q", 1))
	if len(entries) != 1 {
		t.Fatalf("q should have one calling pattern, got %d", len(entries))
	}
	if entries[0].Lookups < 2 {
		t.Fatalf("repeated calls should hit the memo, lookups = %d", entries[0].Lookups)
	}
}

// TestIndexingSelectsClausesAbstractly: with a struct-typed dispatch
// argument only matching clauses are explored; with 'any' all are.
func TestIndexingClauseSelection(t *testing.T) {
	src := `
k(f(_), struct_f).
k(h(_), struct_h).
k([], empty).
k([_|_], cons).
k(77, number).
`
	tab, mod := buildMod(t, src)
	res := analyzeFrom(t, tab, mod, "k(f(any), var)")
	got := successString(t, res, tab, tab.Func("k", 2))
	if got != "k(f(any), atom)" {
		t.Fatalf("struct dispatch success = %s", got)
	}
	// A list-typed argument reaches both the nil and cons clauses.
	tab2, mod2 := buildMod(t, src)
	res2 := analyzeFrom(t, tab2, mod2, "k(list(g), var)")
	succ2 := res2.SuccessFor(tab2.Func("k", 2))
	if succ2 == nil {
		t.Fatal("list dispatch should succeed")
	}
	if !domain.Leq(tab2, succ2.Args[1], domain.MkLeaf(domain.Atom)) {
		t.Fatalf("list dispatch second arg = %s", succ2.String(tab2))
	}
	// Exec counts must shrink when indexing filters clauses.
	tabAll, modAll := buildMod(t, src)
	aNoIdx := NewWith(modAll, Config{Depth: 4, Indexing: false})
	cp, _ := domain.ParseAbs(tabAll, "k(f(any), var)")
	resNoIdx, err := aNoIdx.Analyze(cp)
	if err != nil {
		t.Fatal(err)
	}
	if resNoIdx.Steps <= res.Steps {
		t.Fatalf("unindexed analysis should execute more instructions: %d vs %d",
			resNoIdx.Steps, res.Steps)
	}
}

// TestDepthRestrictionTerminates: an ever-growing recursive structure
// must converge thanks to the term-depth restriction.
func TestDepthRestrictionTerminates(t *testing.T) {
	src := `
grow(X) :- grow(s(X)).
grow(stop).
`
	tab, mod := buildMod(t, src)
	res := analyzeFrom(t, tab, mod, "grow(any)")
	if res.TableSize > 16 {
		t.Fatalf("depth restriction should bound the table, got %d entries", res.TableSize)
	}
}

// TestAnalyzeAllBenchmarks: every Table 1 benchmark analyzes to a
// fixpoint from main/0 without errors.
func TestAnalyzeAllBenchmarks(t *testing.T) {
	for _, p := range bench.Programs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tab, mod := buildMod(t, p.Source)
			a := New(mod)
			res, err := a.AnalyzeMain()
			if err != nil {
				t.Fatal(err)
			}
			if res.TableSize == 0 {
				t.Fatal("no calling patterns recorded")
			}
			// main/0 must be seen to succeed: every benchmark runs.
			if res.SuccessFor(tab.Func("main", 0)) == nil {
				t.Fatal("analysis claims main/0 cannot succeed")
			}
			if res.Steps == 0 {
				t.Fatal("no abstract instructions counted")
			}
		})
	}
}

// TestHashTableMatchesLinear: both table representations produce the
// same analysis results.
func TestHashTableMatchesLinear(t *testing.T) {
	for _, name := range []string{"qsort", "serialise", "queens_8"} {
		p, _ := bench.ByName(name)
		tab1, mod1 := buildMod(t, p.Source)
		r1, err := New(mod1).AnalyzeMain()
		if err != nil {
			t.Fatal(err)
		}
		tab2, mod2 := buildMod(t, p.Source)
		r2, err := NewWith(mod2, Config{Depth: 4, Table: TableHash, Indexing: true}).AnalyzeMain()
		if err != nil {
			t.Fatal(err)
		}
		if r1.TableSize != r2.TableSize {
			t.Fatalf("%s: table sizes differ: %d vs %d", name, r1.TableSize, r2.TableSize)
		}
		for _, e1 := range r1.Entries {
			fn := e1.CP.Fn
			s1 := successString(t, r1, tab1, fn)
			s2 := successString(t, r2, tab2, fn)
			if s1 != s2 {
				t.Fatalf("%s: %s success differs: %s vs %s", name, tab1.FuncString(fn), s1, s2)
			}
		}
	}
}

// TestReportRenders smoke-tests the report output.
func TestReportRenders(t *testing.T) {
	p, _ := bench.ByName("qsort")
	tab, mod := buildMod(t, p.Source)
	res, err := New(mod).AnalyzeMain()
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if !strings.Contains(rep, "qsort(") || !strings.Contains(rep, "mode") {
		t.Fatalf("report incomplete:\n%s", rep)
	}
	_ = tab
}

// TestWorklistMatchesNaive: the worklist fixpoint (the future-work
// algorithm of Section 6) agrees with the paper's naive iteration, on
// both benchmark suites — byte-identically. Both strategies converge
// to the same table (merge is a join on the widened subdomain, so the
// fixpoint is schedule-independent) and both present it through the
// same finalize pass, so Marshal output must match exactly.
func TestWorklistMatchesNaive(t *testing.T) {
	for _, p := range bench.AllPrograms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			_, mod := buildMod(t, p.Source)
			naive, err := New(mod).AnalyzeMain()
			if err != nil {
				t.Fatal(err)
			}
			wlCfg := DefaultConfig()
			wlCfg.Strategy = StrategyWorklist
			wl, err := NewWith(mod, wlCfg).AnalyzeMain()
			if err != nil {
				t.Fatal(err)
			}
			if wl.TableSize == 0 {
				t.Fatal("finalized worklist table is empty")
			}
			if nm, wm := naive.Marshal(), wl.Marshal(); nm != wm {
				t.Fatalf("naive and worklist results differ\n--- naive ---\n%s--- worklist ---\n%s", nm, wm)
			}
			t.Logf("%s: naive %d steps/%d entries, worklist %d steps/%d entries",
				p.Name, naive.Steps, naive.TableSize, wl.Steps, wl.TableSize)
		})
	}
}

// TestLengthAbstract: the abstract semantics of length/2 infer listness.
func TestLengthAbstract(t *testing.T) {
	tab, mod := buildMod(t, "p(L, N) :- length(L, N).\n")
	res := analyzeFrom(t, tab, mod, "p(any, var)")
	got := successString(t, res, tab, tab.Func("p", 2))
	if got != "p(list(any), int)" {
		t.Fatalf("length abstract success = %s", got)
	}
	// A ground input list stays ground.
	tab2, mod2 := buildMod(t, "p(L, N) :- length(L, N).\n")
	res2 := analyzeFrom(t, tab2, mod2, "p(list(g), var)")
	got2 := successString(t, res2, tab2, tab2.Func("p", 2))
	if got2 != "p(list(g), int)" {
		t.Fatalf("ground list success = %s", got2)
	}
}

// TestCompareAbstract: compare/3 binds its order argument to an atom.
func TestCompareAbstract(t *testing.T) {
	tab, mod := buildMod(t, "p(O) :- compare(O, a, b).\n")
	res := analyzeFrom(t, tab, mod, "p(var)")
	got := successString(t, res, tab, tab.Func("p", 1))
	if got != "p(atom)" {
		t.Fatalf("compare abstract success = %s", got)
	}
}

// TestShareDropWidening exercises the devarify path directly: a clause
// binds two arguments to the same variable buried deeper than the depth
// restriction on one side; the surviving occurrence must widen from var
// to any (a truncated alias could instantiate it invisibly).
func TestShareDropWidening(t *testing.T) {
	tab, mod := buildMod(t, `
p(X, Y) :- mk(X, V), Y = V, q(X, Y).
mk(f(f(f(f(V)))), V).
q(_, _).
`)
	res := analyzeFrom(t, tab, mod, "p(var, var)")
	entries := res.EntriesFor(tab.Func("q", 2))
	if len(entries) == 0 {
		t.Fatal("q never called")
	}
	for _, e := range entries {
		// The second argument aliases a variable that sits at depth 5 in
		// the first argument — beyond k=4. After widening, claiming it is
		// still definitely 'var' would be unsound.
		arg2 := e.CP.Args[1]
		if arg2.Kind == domain.Var && arg2.Share == 0 {
			t.Fatalf("dropped alias left an unshared var claim: %s", e.CP.String(tab))
		}
	}
}

// TestSharePreservedWithinDepth: when the alias survives the depth
// restriction, the calling pattern keeps the definite sharing.
func TestSharePreservedWithinDepth(t *testing.T) {
	tab, mod := buildMod(t, `
p(X, Y) :- X = f(V), Y = V, q(X, Y).
q(_, _).
`)
	res := analyzeFrom(t, tab, mod, "p(var, var)")
	entries := res.EntriesFor(tab.Func("q", 2))
	if len(entries) != 1 {
		t.Fatalf("q entries = %d", len(entries))
	}
	cp := entries[0].CP
	// arg1 = f(V#1), arg2 = V#1: the inner var and arg2 share a group.
	if len(cp.ArgSharePairs()) == 0 {
		t.Fatalf("expected definite sharing in %s", cp.String(tab))
	}
}

// TestWorklistSoundnessSample re-runs a soundness check under the
// worklist strategy (the main soundness suite uses the naive one).
func TestWorklistSoundnessSample(t *testing.T) {
	p, _ := bench.ByName("qsort")
	tab, mod := buildMod(t, p.Source)
	cfg := DefaultConfig()
	cfg.Strategy = StrategyWorklist
	res, err := NewWith(mod, cfg).AnalyzeMain()
	if err != nil {
		t.Fatal(err)
	}
	succ := res.SuccessFor(tab.Func("qsort", 3))
	if succ == nil {
		t.Fatal("qsort bottom under worklist")
	}
	if !domain.Leq(tab, succ.Args[1], domain.MkLeaf(domain.Ground)) {
		t.Fatalf("qsort output should be ground: %s", succ.String(tab))
	}
}
