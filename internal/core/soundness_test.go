package core

import (
	"testing"

	"awam/internal/bench"
	"awam/internal/compiler"
	"awam/internal/domain"
	"awam/internal/machine"
	"awam/internal/parser"
	"awam/internal/term"
)

// absOfConcrete abstracts a concrete query argument; it is the domain
// package's alpha function (domain.AbstractConcrete), kept as a local
// alias for the historical test names below.
func absOfConcrete(tab *term.Tab, tm *term.Term, shares map[*term.VarRef]int) *domain.Term {
	return domain.AbstractConcrete(tab, tm, shares)
}

// TestSoundnessOnBenchmarks is experiment E10: for every benchmark with
// a recorded query, run the query concretely, abstract its call, analyze
// to a fixpoint, and verify that every concrete answer argument is a
// member of the inferred success pattern's concretization.
func TestSoundnessOnBenchmarks(t *testing.T) {
	for _, p := range bench.Programs {
		if p.Query == "" {
			continue
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tab := term.NewTab()
			prog, err := parser.ParseProgram(tab, p.Source)
			if err != nil {
				t.Fatal(err)
			}
			mod, err := compiler.Compile(tab, prog)
			if err != nil {
				t.Fatal(err)
			}
			goals, err := parser.ParseGoal(tab, p.Query)
			if err != nil {
				t.Fatal(err)
			}
			if len(goals) != 1 {
				t.Fatalf("soundness queries must be single goals, got %d", len(goals))
			}
			goal := goals[0]
			fn, _ := term.Indicator(goal)

			// Abstract the query into a calling pattern and analyze.
			shares := make(map[*term.VarRef]int)
			argAbs := make([]*domain.Term, len(goal.Args))
			for i, a := range goal.Args {
				argAbs[i] = absOfConcrete(tab, a, shares)
			}
			cp := domain.WidenPattern(tab, domain.NewPattern(fn, argAbs), 4)
			a := New(mod)
			res, err := a.Analyze(cp)
			if err != nil {
				t.Fatal(err)
			}
			succ := res.SuccessFor(fn)
			if succ == nil {
				t.Fatalf("analysis claims %s cannot succeed", cp.String(tab))
			}

			// Run the query concretely and compare each solution.
			m := machine.New(mod)
			sol, err := m.Solve(p.Query)
			if err != nil {
				t.Fatal(err)
			}
			if !sol.OK {
				t.Fatalf("query %q fails concretely", p.Query)
			}
			checked := 0
			for sol.OK && checked < 10 {
				bindings := sol.Bindings()
				// Rebuild the instantiated goal arguments.
				inst := instantiate(goal, bindings)
				for i, argTm := range inst.Args {
					if !domain.Member(tab, argTm, succ.Args[i]) {
						t.Fatalf("solution %d: argument %d value %s not in inferred type %s (pattern %s)",
							checked, i+1, tab.Write(argTm), succ.Args[i].String(tab), succ.String(tab))
					}
				}
				checked++
				ok, err := sol.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
			}
			if checked == 0 {
				t.Fatal("no solutions checked")
			}
		})
	}
}

// instantiate substitutes the solution bindings into the goal term.
func instantiate(goal *term.Term, bindings map[string]*term.Term) *term.Term {
	var sub func(tm *term.Term) *term.Term
	sub = func(tm *term.Term) *term.Term {
		switch tm.Kind {
		case term.KVar:
			if b, ok := bindings[tm.Ref.Name]; ok {
				return b
			}
			return tm
		case term.KStruct:
			args := make([]*term.Term, len(tm.Args))
			for i, a := range tm.Args {
				args[i] = sub(a)
			}
			return &term.Term{Kind: term.KStruct, Fn: tm.Fn, Args: args}
		default:
			return tm
		}
	}
	return sub(goal)
}

// TestSoundnessSmallPrograms exercises the same check on hand-written
// corner cases: aliasing, partial lists, deep structures.
func TestSoundnessSmallPrograms(t *testing.T) {
	cases := []struct {
		name, src, query string
	}{
		{"alias", "eq(X, X).", "eq(f(A), f(1))"},
		{"partial", "front([X|_], X).", "front([7|T], F)"},
		{"deepground", "wrap(X, f(f(f(f(f(X)))))).", "wrap(1, W)"},
		{"mixedlist", "second([_, X|_], X).", "second([a, 9, c], S)"},
		{"buildstruct", "mk(X, Y, pair(X, Y)).", "mk(1, a, P)"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			tab := term.NewTab()
			prog, err := parser.ParseProgram(tab, c.src)
			if err != nil {
				t.Fatal(err)
			}
			mod, err := compiler.Compile(tab, prog)
			if err != nil {
				t.Fatal(err)
			}
			goals, err := parser.ParseGoal(tab, c.query)
			if err != nil {
				t.Fatal(err)
			}
			goal := goals[0]
			fn, _ := term.Indicator(goal)
			shares := make(map[*term.VarRef]int)
			argAbs := make([]*domain.Term, len(goal.Args))
			for i, a := range goal.Args {
				argAbs[i] = absOfConcrete(tab, a, shares)
			}
			cp := domain.WidenPattern(tab, domain.NewPattern(fn, argAbs), 4)
			res, err := New(mod).Analyze(cp)
			if err != nil {
				t.Fatal(err)
			}
			succ := res.SuccessFor(fn)
			if succ == nil {
				t.Fatalf("no success for %s", cp.String(tab))
			}
			m := machine.New(mod)
			sol, err := m.Solve(c.query)
			if err != nil {
				t.Fatal(err)
			}
			if !sol.OK {
				t.Fatal("query fails concretely")
			}
			inst := instantiate(goal, sol.Bindings())
			for i, argTm := range inst.Args {
				if !domain.Member(tab, argTm, succ.Args[i]) {
					t.Fatalf("arg %d value %s not in %s", i+1, tab.Write(argTm), succ.Args[i].String(tab))
				}
			}
		})
	}
}
