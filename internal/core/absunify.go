// Package core implements the paper's contribution: the abstract WAM.
// It reinterprets the instruction set produced by internal/compiler over
// the abstract domain of internal/domain (Section 4 of the paper) and
// replaces call/proceed with the extension-table control scheme
// (Section 5), yielding a compiled dataflow analyzer for mode, type and
// aliasing information.
//
// Representation (Section 4.1): abstract terms that can be instantiated
// further — any, nv, ground, const, alpha-list and var — are encoded in
// single heap cells "like variables": abstract unification overwrites
// (binds) them, the value trail undoes the overwrite on clause exit, and
// ComplexTermInst turns them into heap structures when a get_list or
// get_structure instruction demands subterms.
package core

import (
	"fmt"

	"awam/internal/rt"
	"awam/internal/term"
)

// absUnify performs abstract set-unification (s_unify) of two cells,
// binding open cells so that both sides come to denote the result type.
// It returns false when the unification is certainly empty.
func (a *Analyzer) absUnify(x, y rt.Cell) bool {
	return a.absUnifyDepth(x, y, 0)
}

// maxUnifyDepth bounds recursion through instantiations so that abstract
// unification terminates even on cyclic heaps (which occurs-check-free
// concrete unification can build).
const maxUnifyDepth = 64

func (a *Analyzer) absUnifyDepth(x, y rt.Cell, depth int) bool {
	if depth > maxUnifyDepth {
		// Give up on precision, not on soundness: deep spines widen; both
		// sides simply stay as they are (an over-approximation).
		return true
	}
	cx, ax := a.h.ResolveCell(x)
	cy, ay := a.h.ResolveCell(y)
	if ax >= 0 && ax == ay {
		return true
	}
	// Order the pair so the "smaller" tag comes first; rules below assume
	// cx is the more variable-like side where it matters.
	if rank(cx.Tag) > rank(cy.Tag) {
		cx, cy = cy, cx
		ax, ay = ay, ax
	}

	switch cx.Tag {
	case rt.Ref, rt.AVar:
		// s_unify(var, T) = T: alias the variable to the other side.
		return a.bindTo(ax, cy, ay)

	case rt.AAny:
		// s_unify(any, T) = T with T's variables widened to any
		// (paper example: s_unify(any, f(X,Y)) = f(any,any)).
		if !a.bindTo(ax, cy, ay) {
			return false
		}
		a.anyify(cy, ay, make(map[int]bool))
		return true

	case rt.ANV:
		switch cy.Tag {
		case rt.ANV:
			return a.bindTo(ax, cy, ay)
		case rt.AGround, rt.AConst, rt.AAtom, rt.AInt, rt.AList, rt.Con, rt.Int:
			return a.bindTo(ax, cy, ay)
		case rt.Lis, rt.Str:
			if !a.bindTo(ax, cy, ay) {
				return false
			}
			a.anyify(cy, ay, make(map[int]bool))
			return true
		}
		return false

	case rt.AGround:
		switch cy.Tag {
		case rt.AGround, rt.AConst, rt.AAtom, rt.AInt, rt.Con, rt.Int:
			return a.bindTo(ax, cy, ay)
		case rt.AList:
			// s_unify(g, list(e)) = list(e ⊓ g): ground the element type.
			if !a.bindTo(ax, cy, ay) {
				return false
			}
			a.groundify(cy, ay, make(map[int]bool))
			return true
		case rt.Lis, rt.Str:
			// Paper example 2.2: s_unify(g, f(V)) = f(g).
			if !a.bindTo(ax, cy, ay) {
				return false
			}
			a.groundify(cy, ay, make(map[int]bool))
			return true
		}
		return false

	case rt.AConst:
		switch cy.Tag {
		case rt.AConst, rt.AAtom, rt.AInt, rt.Con, rt.Int:
			return a.bindTo(ax, cy, ay)
		case rt.AList:
			// const ∩ list = {[]}.
			a.h.Bind(ay, rt.MkCon(a.tab.Nil))
			a.h.Bind(ax, rt.MkCon(a.tab.Nil))
			return true
		}
		return false

	case rt.AAtom:
		switch cy.Tag {
		case rt.AAtom:
			return true
		case rt.Con:
			return true // the atom side keeps its (sound) atom type
		case rt.AList:
			// atom ∩ list = {[]}.
			a.h.Bind(ay, rt.MkCon(a.tab.Nil))
			return true
		}
		return false

	case rt.AInt:
		switch cy.Tag {
		case rt.AInt, rt.Int:
			return true
		}
		return false

	case rt.AList:
		switch cy.Tag {
		case rt.AList:
			// list(a) ⋈ list(b) = list(a ⊓ b), except that both always
			// contain []: when the element types clash the empty list
			// remains the (only) common instance.
			mark := a.h.Mark()
			if a.bindTo(ax, cy, ay) &&
				a.absUnifyDepth(rt.MkRef(cx.A), rt.MkRef(cy.A), depth+1) {
				return true
			}
			a.h.Undo(mark)
			a.h.Bind(ax, rt.MkCon(a.tab.Nil))
			a.h.Bind(ay, rt.MkCon(a.tab.Nil))
			return true
		case rt.Con:
			if cy.F.Name == a.tab.Nil {
				a.h.Bind(ax, rt.MkCon(a.tab.Nil))
				return true
			}
			return false
		case rt.Lis:
			// s_unify(list(e), [H|T]) = [e'|list(e)'].
			if !a.bindTo(ax, cy, ay) {
				return false
			}
			elem := cx.A
			carType := a.copyTypeGraph(elem, make(map[int]int))
			if !a.absUnifyDepth(rt.MkRef(cy.A), rt.MkRef(carType), depth+1) {
				return false
			}
			cdrList := a.h.PushOpen(rt.AList, elem)
			return a.absUnifyDepth(rt.MkRef(cy.A+1), rt.MkRef(cdrList), depth+1)
		case rt.Str:
			// Only cons structures can be lists; the compiler emits Lis
			// cells for those, so any Str here is a mismatch.
			return false
		}
		return false

	case rt.Con:
		if cy.Tag == rt.Con {
			return cx.F.Name == cy.F.Name
		}
		return false

	case rt.Int:
		if cy.Tag == rt.Int {
			return cx.I == cy.I
		}
		return false

	case rt.Lis:
		if cy.Tag != rt.Lis {
			return false
		}
		if !a.absUnifyDepth(rt.MkRef(cx.A), rt.MkRef(cy.A), depth+1) {
			return false
		}
		return a.absUnifyDepth(rt.MkRef(cx.A+1), rt.MkRef(cy.A+1), depth+1)

	case rt.Str:
		if cy.Tag != rt.Str {
			return false
		}
		fx, fy := a.h.At(cx.A), a.h.At(cy.A)
		if fx.F != fy.F {
			return false
		}
		for i := 1; i <= fx.F.Arity; i++ {
			if !a.absUnifyDepth(rt.MkRef(cx.A+i), rt.MkRef(cy.A+i), depth+1) {
				return false
			}
		}
		return true
	}
	return false
}

// rank orders tags from most to least variable-like for rule dispatch.
func rank(t rt.Tag) int {
	switch t {
	case rt.Ref, rt.AVar:
		return 0
	case rt.AAny:
		return 1
	case rt.ANV:
		return 2
	case rt.AGround:
		return 3
	case rt.AConst:
		return 4
	case rt.AAtom:
		return 5
	case rt.AInt:
		return 6
	case rt.AList:
		return 7
	case rt.Con:
		return 8
	case rt.Int:
		return 9
	case rt.Lis:
		return 10
	case rt.Str:
		return 11
	}
	return 12
}

// bindTo aliases the open cell at ax to the cell (cy, ay). When cy is an
// off-heap constant it is stored directly.
func (a *Analyzer) bindTo(ax int, cy rt.Cell, ay int) bool {
	if ax < 0 {
		// The variable-like side is an off-heap register constant: that
		// cannot happen — constants are never open.
		a.fail(fmt.Errorf("core: open cell without address"))
		return false
	}
	if ay >= 0 {
		a.h.Bind(ax, rt.MkRef(ay))
	} else {
		a.h.Bind(ax, cy)
	}
	return true
}

// anyify widens the unbound variables of a (possibly partially concrete)
// term to 'any': the effect of unifying it with an unknown term.
func (a *Analyzer) anyify(c rt.Cell, addr int, seen map[int]bool) {
	if addr >= 0 {
		if seen[addr] {
			return
		}
		seen[addr] = true
		c = a.h.At(a.h.Deref(addr))
		addr = a.h.Deref(addr)
	}
	switch c.Tag {
	case rt.Ref, rt.AVar:
		a.h.Bind(addr, rt.Cell{Tag: rt.AAny})
	case rt.Lis:
		a.anyify(rt.Cell{}, c.A, seen)
		a.anyify(rt.Cell{}, c.A+1, seen)
	case rt.Str:
		fn := a.h.At(c.A)
		for i := 1; i <= fn.F.Arity; i++ {
			a.anyify(rt.Cell{}, c.A+i, seen)
		}
	}
	// Abstract leaves (any, nv, ground, const, atom, int, list) already
	// denote variable-free type information and stay as they are.
}

// groundify narrows a term to its ground instances: the effect of
// unifying it with a ground term (paper example 2.2).
func (a *Analyzer) groundify(c rt.Cell, addr int, seen map[int]bool) {
	if addr >= 0 {
		if seen[addr] {
			return
		}
		seen[addr] = true
		addr = a.h.Deref(addr)
		c = a.h.At(addr)
	}
	switch c.Tag {
	case rt.Ref, rt.AVar, rt.AAny, rt.ANV:
		a.h.Bind(addr, rt.Cell{Tag: rt.AGround})
	case rt.AList:
		a.groundify(rt.Cell{}, c.A, seen)
	case rt.Lis:
		a.groundify(rt.Cell{}, c.A, seen)
		a.groundify(rt.Cell{}, c.A+1, seen)
	case rt.Str:
		fn := a.h.At(c.A)
		for i := 1; i <= fn.F.Arity; i++ {
			a.groundify(rt.Cell{}, c.A+i, seen)
		}
	}
	// AGround, AConst, AAtom, AInt, Con, Int are already ground.
}

// copyTypeGraph copies the type graph rooted at addr into fresh cells:
// open abstract cells become fresh cells of the same type, concrete
// structure is rebuilt, and unbound variables become fresh variables.
// This is how a list type's element type is instantiated once per
// element (each [H|T] cell of a glist gets its own g instance).
func (a *Analyzer) copyTypeGraph(addr int, copies map[int]int) int {
	addr = a.h.Deref(addr)
	if dst, ok := copies[addr]; ok {
		return dst
	}
	c := a.h.At(addr)
	switch c.Tag {
	case rt.Ref:
		dst := a.h.PushVar()
		copies[addr] = dst
		return dst
	case rt.Con, rt.Int, rt.AAny, rt.ANV, rt.AGround, rt.AConst, rt.AAtom, rt.AInt, rt.AVar:
		dst := a.h.Push(c)
		if c.Tag == rt.AVar || c.Tag.IsOpen() {
			copies[addr] = dst
		}
		return dst
	case rt.AList:
		// Reserve the cell first to terminate on self-referential types.
		dst := a.h.Push(rt.Cell{Tag: rt.AAny})
		copies[addr] = dst
		elem := a.copyTypeGraph(c.A, copies)
		a.h.Cells[dst] = rt.Cell{Tag: rt.AList, A: elem}
		return dst
	case rt.Lis:
		dst := a.h.Push(rt.Cell{Tag: rt.AAny})
		copies[addr] = dst
		car := a.copyTypeGraph(c.A, copies)
		cdr := a.copyTypeGraph(c.A+1, copies)
		pair := a.h.Push(rt.MkRef(car))
		a.h.Push(rt.MkRef(cdr))
		a.h.Cells[dst] = rt.Cell{Tag: rt.Lis, A: pair}
		return dst
	case rt.Str:
		fn := a.h.At(c.A)
		dst := a.h.Push(rt.Cell{Tag: rt.AAny})
		copies[addr] = dst
		args := make([]int, fn.F.Arity)
		for i := 1; i <= fn.F.Arity; i++ {
			args[i-1] = a.copyTypeGraph(c.A+i, copies)
		}
		fnAddr := a.h.Push(rt.Cell{Tag: rt.Fun, F: fn.F})
		for _, arg := range args {
			a.h.Push(rt.MkRef(arg))
		}
		a.h.Cells[dst] = rt.Cell{Tag: rt.Str, A: fnAddr}
		return dst
	}
	return a.h.Push(rt.Cell{Tag: rt.AAny})
}

// tab is a shorthand for the module's atom table.
func (a *Analyzer) tabName(f term.Functor) string { return a.tab.FuncString(f) }
