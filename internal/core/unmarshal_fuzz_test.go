package core

import (
	"errors"
	"testing"

	"awam/internal/term"
)

// FuzzUnmarshal feeds arbitrary bytes to the summary parser. The
// parser now reads disk-cache records and daemon request products, so
// the contract under hostile input is strict: return an error wrapping
// ErrBadSummary — never panic, never hang — and treat every accepted
// input as canonical: re-marshaling an accepted summary and parsing it
// again must reproduce the same entries.
//
// Run continuously with:
//
//	go test ./internal/core/ -run=FuzzUnmarshal -fuzz=FuzzUnmarshal
func FuzzUnmarshal(f *testing.F) {
	f.Add("awam-analysis 1\ncall p(g)\nsucc p(g)\n")
	f.Add("awam-analysis 1\ncall p(atom, list(g))\nsucc p(atom, [g|list(g)])\n")
	f.Add("awam-analysis 1\ncall p(sh(1, var), sh(1, var))\nsucc bottom\n")
	f.Add("awam-analysis 1\nstats steps=3 iterations=1\ncall q(any)\nsucc bottom\n")
	f.Add("awam-analysis 1\ncall p(g)\nsucc bottom\ncall p(g)\nsucc bottom\n")
	f.Add("awam-analysis 1\nsucc q(g)\n")
	f.Add("awam-analysis 1\ncall p(g)\n")
	f.Add("awam-analysis 2\n")
	f.Add("")
	f.Add("call p(g)\nsucc p(g)\n")
	f.Add("awam-analysis 1\ncall '[]'(g)\nsucc bottom\n")
	f.Add("awam-analysis 1\r\ncall p(g)\r\nsucc p(g)\r\n")
	f.Fuzz(func(t *testing.T, text string) {
		tab := term.NewTab()
		res, err := Unmarshal(tab, text)
		if err != nil {
			if !errors.Is(err, ErrBadSummary) {
				t.Fatalf("error does not wrap ErrBadSummary: %v", err)
			}
			return
		}
		// Accepted inputs must be stable under a marshal/unmarshal cycle.
		out := res.Marshal()
		res2, err := Unmarshal(tab, out)
		if err != nil {
			t.Fatalf("re-parse of marshaled output failed: %v\ninput:  %q\noutput: %q", err, text, out)
		}
		if res2.Marshal() != out {
			t.Fatalf("marshal not a fixed point:\nfirst:  %q\nsecond: %q", out, res2.Marshal())
		}
		if len(res2.Entries) != len(res.Entries) {
			t.Fatalf("entry count changed across round-trip: %d -> %d",
				len(res.Entries), len(res2.Entries))
		}
		for i := range res.Entries {
			if res.Entries[i].CP.Key() != res2.Entries[i].CP.Key() {
				t.Fatalf("entry %d calling pattern changed across round-trip", i)
			}
		}
	})
}
