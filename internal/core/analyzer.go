package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"awam/internal/domain"
	"awam/internal/rt"
	"awam/internal/specialize"
	"awam/internal/term"
	"awam/internal/wam"
)

// TableKind selects the extension-table representation.
type TableKind int

const (
	// TableLinear is the paper's linear list of pairs.
	TableLinear TableKind = iota
	// TableHash is the hashed ablation.
	TableHash
)

// Config holds analyzer options.
type Config struct {
	// Depth is the term-depth restriction k (the paper uses 4).
	Depth int
	// Table selects the extension-table representation.
	Table TableKind
	// Indexing lets the abstract machine consult switch instructions
	// when the dispatch argument is concrete enough (structure functor,
	// nil, constant class), exploring only the matching clauses.
	Indexing bool
	// MaxSteps bounds the number of abstract instructions executed.
	MaxSteps int64
	// Strategy selects the fixpoint algorithm: the paper's naive
	// iteration (default), the dependency-tracking worklist, or the
	// concurrent worklist.
	Strategy Strategy
	// Parallelism is the worker-goroutine count for StrategyParallel;
	// 0 means runtime.GOMAXPROCS(0). Ignored by the other strategies.
	Parallelism int
	// Tracer, when non-nil, receives analysis events (observe.go). A nil
	// tracer costs one pointer test per abstract instruction. Under
	// StrategyParallel the tracer is shared by all workers and must be
	// safe for concurrent use.
	Tracer Tracer
	// Spec, when non-nil, is the specialized transfer program
	// (internal/specialize): clauses with a specialized stream execute
	// through the dense jump-threaded dispatch loop instead of the
	// generic opcode switch, with results byte-identical to the generic
	// engine (execspec.go documents the contract). Ignored when a Tracer
	// is installed — the per-instruction trace contract requires the
	// generic loop.
	Spec *specialize.Program
	// Warm, when non-nil, supplies converged summaries from a previous
	// analysis of an unchanged program region (the incremental engine,
	// internal/inc). Supported by StrategyWorklist only; Validate rejects
	// other strategies. The caller is responsible for only seeding
	// summaries whose entire callee cone is unchanged — the engine trusts
	// them as post-fixpoint values.
	Warm WarmStart
}

// WarmStart answers warm-start probes for the worklist fixpoint: cached
// converged summaries for calling patterns whose predicate (and its
// entire transitive callee cone) is unchanged since the caching run.
// Seeded entries are inserted into the extension table as already
// converged — never explored, never enqueued — so an analysis touches
// only the dirty cone of an edit. Implementations must be safe for
// concurrent use when shared across analyses (the engine itself calls
// sequentially under StrategyWorklist).
type WarmStart interface {
	// Seed returns the converged success pattern for the calling pattern
	// of fn with the given canonical key (domain.Pattern.Key). ok=false
	// means the pattern is not cached and must be explored normally; a
	// nil succ with ok=true seeds a converged bottom (the call can never
	// succeed).
	Seed(fn term.Functor, key string) (succ *domain.Pattern, ok bool)
	// Trace returns the finalize-phase consultation list recorded for
	// the cached calling pattern: the callee calling patterns first
	// consulted by the entry's clauses, in discovery order. The finalize
	// pass replays it so the presentation table is rebuilt byte-identically
	// without re-executing the entry's clauses.
	Trace(fn term.Functor, key string) []*domain.Pattern
}

// DefaultConfig matches the paper's prototype: k = 4, linear extension
// table, indexing-aware clause selection.
func DefaultConfig() Config {
	return Config{Depth: 4, Table: TableLinear, Indexing: true, MaxSteps: 500_000_000}
}

// Validate rejects configurations that cannot be meant: negative values
// where only counts make sense, or enum fields outside their range. Zero
// values are always valid (they select documented defaults).
func (c Config) Validate() error {
	if c.Depth < 0 {
		return fmt.Errorf("core: invalid config: negative depth %d", c.Depth)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("core: invalid config: negative parallelism %d", c.Parallelism)
	}
	if c.MaxSteps < 0 {
		return fmt.Errorf("core: invalid config: negative step budget %d", c.MaxSteps)
	}
	switch c.Table {
	case TableLinear, TableHash:
	default:
		return fmt.Errorf("core: invalid config: unknown table kind %d", c.Table)
	}
	switch c.Strategy {
	case StrategyNaive, StrategyWorklist, StrategyParallel:
	default:
		return fmt.Errorf("core: invalid config: unknown strategy %d", c.Strategy)
	}
	if c.Warm != nil && c.Strategy != StrategyWorklist {
		return fmt.Errorf("core: invalid config: warm start requires the worklist strategy")
	}
	return nil
}

// ErrStepLimit reports an exceeded abstract step budget.
var ErrStepLimit = errors.New("core: abstract step limit exceeded")

// ErrCanceled reports an analysis stopped by its context; it wraps the
// context's cause (errors.Is also matches context.Canceled or
// context.DeadlineExceeded).
var ErrCanceled = errors.New("core: analysis canceled")

// Analyzer is an abstract WAM over one compiled module.
type Analyzer struct {
	mod *wam.Module
	tab *term.Tab
	cfg Config

	h     *rt.Heap
	x     []rt.Cell
	table Table
	// in is the analysis-wide hash-conser: every canonical pattern the
	// engine handles is interned to a dense domain.PatternID, and all
	// tables, worklists and dependency maps key on those IDs. Parallel
	// workers share the driver's interner (it is concurrent and its lock
	// is leaf-level). memo caches the pattern-level lattice operations on
	// IDs; it is goroutine-private (workers get their own, absorbed into
	// the driver's after the barrier, like the metrics shards).
	in   *domain.Interner
	memo *domain.Memo
	// Exactly one of wl, par, fin is non-nil while the corresponding
	// phase runs; solve dispatches on them.
	wl  *wlState
	par *parState
	fin *finState
	// ctx, when non-nil, cancels the analysis (checked every few
	// thousand abstract instructions).
	ctx context.Context
	// parCur is the entry this parallel worker is exploring (dependency
	// recording); specFail marks a clause that speculatively survived a
	// bottom callee during parallel discovery (its success is discarded).
	parCur   *Entry
	specFail bool
	// parReadEnts/parReadVals accumulate the in-flight exploration's
	// consulted-callee reads (first read per callee), published to the
	// entry's read snapshot when the exploration completes (table.go).
	parReadEnts []*Entry
	parReadVals []domain.PatternID

	// Specialized-engine state (execspec.go). spec mirrors cfg.Spec;
	// specOn is set once per analysis (spec present, no tracer); specPre
	// additionally requires Options.PreIntern (dense tables, static
	// call-site cache, materialization plans). The pools and caches are
	// goroutine-private, like the metrics shard.
	spec        *specialize.Program
	specOn      bool
	specPre     bool
	staticCalls []staticPat
	matPlans    []*matPlan
	envPool     [][]rt.Cell
	argPool     [][]int
	absScratch  *abstractor
	absBusy     map[int]bool
	matGroups   map[int]genInt
	matGen      uint64
	selCache    [][]int
	selDone     []bool

	// Observability state (observe.go). met is this goroutine's private
	// counter shard (never nil); tr mirrors cfg.Tracer. attrFn/attrStart
	// attribute step deltas to predicates at exploration boundaries.
	// budget points at the step budget shared by every goroutine of one
	// analysis; allow is the locally reserved allowance (refillSteps).
	met       *metricsShard
	tr        Tracer
	attrFn    term.Functor
	attrStart int64
	budget    *int64
	allow     int64
	// heapHW tracks the high-water mark across discarded fixpoint heaps;
	// queueWait accumulates this parallel worker's queue waiting time.
	heapHW    int
	queueWait time.Duration

	// Steps counts executed abstract instructions — the paper's "Exec"
	// column in Table 1.
	Steps int64
	// Iterations counts fixpoint passes.
	Iterations int

	iter    int
	changed bool
	err     error
	// Warnings collects non-fatal analysis notes (e.g. success-pattern
	// application mismatches, which indicate precision loss).
	Warnings []string
}

// New returns an analyzer for mod with the default configuration.
func New(mod *wam.Module) *Analyzer { return NewWith(mod, DefaultConfig()) }

// NewWith returns an analyzer with an explicit configuration. Zero
// values select defaults (depth 4, 500M-step budget); invalid values are
// rejected by Config.Validate when the analysis runs, not clamped here.
func NewWith(mod *wam.Module, cfg Config) *Analyzer {
	if cfg.Depth == 0 {
		cfg.Depth = 4
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 500_000_000
	}
	a := &Analyzer{mod: mod, tab: mod.Tab, cfg: cfg, x: make([]rt.Cell, 16)}
	a.met = newMetricsShard()
	a.tr = cfg.Tracer
	a.in = domain.NewInterner()
	a.memo = domain.NewMemo()
	budget := cfg.MaxSteps
	a.budget = &budget
	return a
}

// intern resolves cp to its hash-consed ID, counting interner traffic.
func (a *Analyzer) intern(cp *domain.Pattern) domain.PatternID {
	id, hit := a.in.Intern(cp)
	if hit {
		a.met.internHits++
	} else {
		a.met.internMisses++
	}
	return id
}

// leqSumm reports sp ⊑ succ on interned summaries, memoized so the
// common steady-state check (a clause success already below the
// accumulated summary) is a map probe instead of a graph walk.
func (a *Analyzer) leqSumm(spID, succID domain.PatternID) bool {
	if spID == succID {
		return true
	}
	v, ok := a.memo.Leq(spID, succID)
	if !ok {
		v = domain.LeqPattern(a.tab, a.in.Pattern(spID), a.in.Pattern(succID))
		a.memo.SetLeq(spID, succID, v)
	}
	return v
}

// mergeSumm computes widen(lub(succ, sp), k) — the summary merge every
// strategy performs — through the ID-keyed memo caches, returning the
// interned result. On the widened subdomain (the only values the table
// holds) this merge is an idempotent, commutative, associative join
// (domain/laws_test.go), which is what makes the converged table
// schedule-independent. The lub cache is the one surfaced in Metrics
// (LubCacheHits/Misses); the widen cache rides on its output.
func (a *Analyzer) mergeSumm(succID, spID domain.PatternID) (domain.PatternID, *domain.Pattern) {
	lubID, ok := a.memo.Lub(succID, spID)
	if ok {
		a.met.lubHits++
	} else {
		a.met.lubMisses++
		l := domain.LubPattern(a.tab, a.in.Pattern(succID), a.in.Pattern(spID))
		lubID = a.intern(l)
		a.memo.SetLub(succID, spID, lubID)
	}
	nextID, ok := a.memo.Widen(lubID)
	if !ok {
		w := domain.WidenPattern(a.tab, a.in.Pattern(lubID), a.cfg.Depth)
		nextID = a.intern(w)
		a.memo.SetWiden(lubID, nextID)
	}
	return nextID, a.in.Pattern(nextID)
}

func (a *Analyzer) newTable() Table {
	if a.specPre {
		// Pre-interning guarantees dense IDs drive every lookup, so the
		// table can be an ID-indexed slice (dense.go); same contract and
		// entry order as the linear table.
		return NewDenseTable()
	}
	if a.cfg.Table == TableHash {
		return NewHashTable()
	}
	return NewLinearTable()
}

func (a *Analyzer) fail(err error) {
	if a.err == nil {
		a.err = err
	}
}

// warnOnce records a warning the first time it occurs.
func (a *Analyzer) warnOnce(msg string) {
	for _, w := range a.Warnings {
		if w == msg {
			return
		}
	}
	a.Warnings = append(a.Warnings, msg)
}

func (a *Analyzer) ensureX(n int) {
	for len(a.x) <= n {
		a.x = append(a.x, rt.Cell{})
	}
}

// Result is the outcome of an analysis: the extension table contents
// plus run statistics.
type Result struct {
	Tab *term.Tab
	// Entries lists (calling pattern, success pattern) pairs in
	// discovery order.
	Entries []*Entry
	// Steps, Iterations and TableSize are the run statistics reported in
	// the paper's Table 1.
	Steps      int64
	Iterations int
	TableSize  int
	Warnings   []string
	// Metrics is the run's merged instrumentation (observe.go). Always
	// populated; covers the fixpoint phase only, so its totals match
	// Steps.
	Metrics *Metrics
}

// AnalyzeMain analyzes the program from the conventional entry point
// main/0 — the paper's "given top-level calling pattern".
func (a *Analyzer) AnalyzeMain() (*Result, error) {
	return a.Analyze(domain.NewPattern(a.tab.Func("main", 0), nil))
}

// AnalyzeAll analyzes from main/0 when present, and otherwise (or
// additionally, for predicates never reached) from an all-any calling
// pattern per predicate, so every predicate gets information.
func (a *Analyzer) AnalyzeAll() (*Result, error) {
	return a.AnalyzeAllContext(context.Background())
}

// AnalyzeAllContext is AnalyzeAll honoring ctx: cancellation or deadline
// expiry stops the fixpoint with an error wrapping ErrCanceled.
func (a *Analyzer) AnalyzeAllContext(ctx context.Context) (*Result, error) {
	var entries []*domain.Pattern
	if a.mod.Proc(a.tab.Func("main", 0)) != nil {
		entries = append(entries, domain.NewPattern(a.tab.Func("main", 0), nil))
	} else {
		for _, fn := range a.mod.Order {
			args := make([]*domain.Term, fn.Arity)
			for i := range args {
				args[i] = domain.Top()
			}
			entries = append(entries, domain.NewPattern(fn, args))
		}
	}
	a.ctx = ctx
	return a.analyze(entries)
}

// Analyze runs the extension-table fixpoint from the given top-level
// calling pattern.
func (a *Analyzer) Analyze(entry *domain.Pattern) (*Result, error) {
	return a.AnalyzeContext(context.Background(), entry)
}

// AnalyzeContext is Analyze honoring ctx; see AnalyzeAllContext.
func (a *Analyzer) AnalyzeContext(ctx context.Context, entry *domain.Pattern) (*Result, error) {
	a.ctx = ctx
	return a.analyze([]*domain.Pattern{entry})
}

// AnalyzeEntriesContext runs the fixpoint from an explicit entry set —
// the hook alternate analyses use to obtain success patterns for an
// exact predicate set (internal/backward seeds it with an all-any
// pattern per predicate of a demanded cone). Entries are widened at
// ingest like any caller-supplied pattern.
func (a *Analyzer) AnalyzeEntriesContext(ctx context.Context, entries []*domain.Pattern) (*Result, error) {
	a.ctx = ctx
	return a.analyze(entries)
}

func (a *Analyzer) analyze(entries []*domain.Pattern) (*Result, error) {
	if err := a.cfg.Validate(); err != nil {
		return nil, err
	}
	if a.ctx == context.Background() {
		a.ctx = nil // skip per-tick Done checks for the common case
	}
	if a.ctx != nil {
		select {
		case <-a.ctx.Done():
			return nil, fmt.Errorf("%w: %w", ErrCanceled, a.ctx.Err())
		default:
		}
	}
	a.spec = a.cfg.Spec
	a.specOn = a.spec != nil && a.tr == nil
	a.specPre = a.specOn && a.spec.Opts.PreIntern
	// The extension table only ever stores widened canonical patterns —
	// the invariant behind schedule confluence (every stored element is a
	// fixed point of the Widen closure, on which lub∘widen is
	// associative). Internally generated patterns are widened by
	// abstractArgs and mergeSumm; caller-supplied entry patterns are
	// closed here at ingest.
	widened := make([]*domain.Pattern, len(entries))
	for i, e := range entries {
		widened[i] = domain.WidenPattern(a.tab, e.Canonical(), a.cfg.Depth)
	}
	entries = widened
	switch a.cfg.Strategy {
	case StrategyWorklist:
		return a.analyzeWorklist(entries)
	case StrategyParallel:
		return a.analyzeParallel(entries)
	}
	a.table = a.newTable()
	a.Steps = 0
	a.err = nil
	*a.budget = a.cfg.MaxSteps
	a.allow = 0
	execStart := time.Now()
	const maxIterations = 1000 // backstop; the finite domain terminates first
	for a.Iterations = 1; a.Iterations <= maxIterations; a.Iterations++ {
		a.iter = a.Iterations
		a.changed = false
		if a.tr != nil {
			a.tr.Iteration(a.Iterations)
		}
		a.noteHeap()
		if a.specOn && a.h != nil {
			a.h.Reset()
		} else {
			a.h = rt.NewHeap()
		}
		for _, e := range entries {
			a.solve(e.Canonical())
			if a.err != nil {
				return nil, a.err
			}
		}
		// Re-explore every remaining table entry. A calling pattern can
		// stop being reached from the entry point as summaries grow (its
		// callers' inner calls widen to different keys), yet its own
		// summary must still reach the fixpoint — otherwise a stale,
		// under-approximate entry survives in the final table.
		for i := 0; i < a.table.Len(); i++ {
			e := a.table.Entries()[i]
			if e.exploredIter != a.iter {
				a.solve(e.CP)
				if a.err != nil {
					return nil, a.err
				}
			}
		}
		if !a.changed {
			break
		}
	}
	a.attrClose()
	a.noteHeap()
	execDur := time.Since(execStart)
	if a.Iterations > maxIterations {
		return &Result{
			Tab:        a.tab,
			Entries:    a.table.Entries(),
			Steps:      a.Steps,
			Iterations: a.Iterations,
			TableSize:  a.table.Len(),
			Warnings:   a.Warnings,
			Metrics:    a.buildMetrics(nil, execDur, 0),
		}, fmt.Errorf("core: fixpoint did not converge in %d iterations", maxIterations)
	}
	// Present the converged table deterministically (finalize.go), like
	// the worklist and parallel strategies: the raw naive table retains
	// stale entries whose calling patterns stopped being reachable as
	// summaries grew, so the three strategies are only byte-comparable on
	// the rebuilt presentation.
	finStart := time.Now()
	finEntries, err := a.finalize(entries, a.table)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Tab:        a.tab,
		Entries:    finEntries,
		Steps:      a.Steps,
		Iterations: a.Iterations,
		TableSize:  len(finEntries),
		Warnings:   a.Warnings,
		Metrics:    a.buildMetrics(nil, execDur, time.Since(finStart)),
	}
	return res, nil
}

// tick is the periodic safety check inside runClause (every few
// thousand abstract instructions): context cancellation, on top of the
// per-instruction step-budget check.
func (a *Analyzer) tick() bool {
	if a.ctx != nil {
		select {
		case <-a.ctx.Done():
			a.fail(fmt.Errorf("%w: %w", ErrCanceled, a.ctx.Err()))
			return false
		default:
		}
	}
	return true
}

// solve explores a calling pattern: the reinterpreted call instruction
// (Section 5). It returns the success pattern (nil = bottom/fail).
func (a *Analyzer) solve(cp *domain.Pattern) *domain.Pattern {
	if a.fin != nil {
		return a.solveFin(cp)
	}
	if a.par != nil {
		return a.solvePar(cp)
	}
	if a.wl != nil {
		return a.solveWL(cp)
	}
	if a.err != nil {
		return nil
	}
	succ, _ := a.solveNaiveID(cp, a.intern(cp))
	return succ
}

// solveNaiveID is solve's naive-strategy core over a pre-interned
// calling pattern, returning the success pattern with its interned ID
// (the specialized engine's solveID keeps IDs flowing end to end).
func (a *Analyzer) solveNaiveID(cp *domain.Pattern, id domain.PatternID) (*domain.Pattern, domain.PatternID) {
	if a.err != nil {
		return nil, domain.BottomID
	}
	t0, timed := a.met.sampleTable()
	e := a.table.Get(id)
	a.met.doneTable(t0, timed)
	if e != nil {
		a.met.hits++
		if a.tr != nil {
			a.tr.Table(cp.Fn, TableHit)
		}
		if e.exploredIter == a.iter {
			// Memoized for this iteration (possibly in-flight: a
			// recursive call sees the last known success pattern).
			e.Lookups++
			return e.Succ, e.succID
		}
	} else {
		e = &Entry{ID: id, CP: a.in.Pattern(id)}
		a.table.Add(e)
		a.met.misses++
		a.met.inserts++
		if a.tr != nil {
			a.tr.Table(cp.Fn, TableMiss)
			a.tr.Table(cp.Fn, TableInsert)
		}
	}
	e.exploredIter = a.iter

	proc := a.mod.Proc(cp.Fn)
	if proc == nil {
		// Undefined predicates fail (and were warned about at compile
		// time); their success pattern stays bottom.
		return e.Succ, e.succID
	}

	a.met.predRuns[cp.Fn]++
	prevFn := a.attrSwitch(cp.Fn)
	defer a.attrRestore(prevFn)
	for _, clauseAddr := range a.selectClausesEntry(proc, cp, id) {
		mark := a.h.Mark()
		argAddrs := a.materializeEntry(e.CP, id)
		a.ensureX(cp.Fn.Arity)
		for i, addr := range argAddrs {
			a.x[i+1] = rt.MkRef(addr)
		}
		ok := a.run(clauseAddr)
		if a.err != nil {
			return nil, domain.BottomID
		}
		if ok {
			sp := a.abstractArgs(cp.Fn, argAddrs)
			spID := a.intern(sp)
			// Fast path: a success pattern below the accumulated one
			// cannot change it (the common case after the first
			// iteration), so skip the graph lub entirely.
			if e.succID == domain.BottomID || !a.leqSumm(spID, e.succID) {
				nextID, next := a.mergeSumm(e.succID, spID)
				if nextID != e.succID {
					e.Succ = next
					e.succID = nextID
					e.Updates++
					a.changed = true
					a.met.updates++
					if a.tr != nil {
						a.tr.Table(cp.Fn, TableUpdate)
					}
				}
			}
		}
		// The paper's "artificial failure": undo and explore the next
		// clause regardless of success.
		a.h.Undo(mark)
	}
	return e.Succ, e.succID
}

// selectClauses returns the clause addresses to explore for cp,
// consulting the predicate's indexing instructions when the dispatch
// argument is concrete enough (Section 5 notes indexing reinterprets
// almost unchanged; with an abstract dispatch argument all clauses are
// explored).
func (a *Analyzer) selectClauses(proc *wam.Proc, cp *domain.Pattern) []int {
	if !a.cfg.Indexing || len(proc.Clauses) < 2 || len(cp.Args) == 0 {
		return proc.Clauses
	}
	sw := a.mod.Code[proc.Entry]
	if sw.Op != wam.OpSwitchOnTerm {
		return proc.Clauses
	}
	allowed := make(map[int]bool)
	addAll := func(addrs []int) {
		for _, ad := range addrs {
			allowed[ad] = true
		}
	}
	arg := cp.Args[0]
	switch arg.Kind {
	case domain.Nil:
		addAll(a.constTargets(sw.LC, func(k wam.ConstKey) bool {
			return !k.IsInt && k.A == a.tab.Nil
		}))
	case domain.Atom:
		addAll(a.constTargets(sw.LC, func(k wam.ConstKey) bool { return !k.IsInt }))
	case domain.Intg:
		addAll(a.constTargets(sw.LC, func(k wam.ConstKey) bool { return k.IsInt }))
	case domain.Const:
		addAll(a.constTargets(sw.LC, func(wam.ConstKey) bool { return true }))
	case domain.List:
		addAll(a.chainTargets(sw.LL))
		addAll(a.constTargets(sw.LC, func(k wam.ConstKey) bool {
			return !k.IsInt && k.A == a.tab.Nil
		}))
	case domain.Struct:
		if arg.Fn.Name == a.tab.Dot && arg.Fn.Arity == 2 {
			addAll(a.chainTargets(sw.LL))
		} else if sw.LS != wam.FailAddr {
			tblIns := a.mod.Code[sw.LS]
			if tblIns.Op == wam.OpSwitchOnStruct {
				if tgt, ok := tblIns.TblS[arg.Fn]; ok {
					addAll(a.chainTargets(tgt))
				}
				if tblIns.LD != 0 {
					// Optimizer tables default missing keys to the
					// var-headed clause block; those clauses stay
					// reachable for this functor.
					addAll(a.chainTargets(tblIns.LD))
				}
			} else {
				addAll(a.chainTargets(sw.LS))
			}
		}
	default:
		return proc.Clauses
	}
	var out []int
	for _, c := range proc.Clauses {
		if allowed[c] {
			out = append(out, c)
		}
	}
	return out
}

// constTargets collects clause addresses reachable from a
// switch_on_constant for keys satisfying pred.
func (a *Analyzer) constTargets(addr int, pred func(wam.ConstKey) bool) []int {
	if addr == wam.FailAddr {
		return nil
	}
	ins := a.mod.Code[addr]
	if ins.Op != wam.OpSwitchOnConst {
		return a.chainTargets(addr)
	}
	var out []int
	for k, tgt := range ins.TblC {
		if pred(k) {
			out = append(out, a.chainTargets(tgt)...)
		}
	}
	if ins.LD != 0 {
		// A defaulted table (optimizer output) can dispatch any key to
		// the var-headed clause block as well.
		out = append(out, a.chainTargets(ins.LD)...)
	}
	return out
}

// chainTargets resolves an indexing target: a clause address, or a
// try/retry/trust block listing several.
func (a *Analyzer) chainTargets(addr int) []int {
	if addr == wam.FailAddr || addr < 0 || addr >= len(a.mod.Code) {
		return nil
	}
	ins := a.mod.Code[addr]
	if ins.Op != wam.OpTry {
		return []int{addr}
	}
	var out []int
	for p := addr; p < len(a.mod.Code); p++ {
		c := a.mod.Code[p]
		switch c.Op {
		case wam.OpTry, wam.OpRetry:
			out = append(out, c.L)
		case wam.OpTrust:
			out = append(out, c.L)
			return out
		default:
			return out
		}
	}
	return out
}

// Report renders the extension table like the paper's discussion:
// calling pattern, success pattern, derived modes, and aliasing pairs.
// Run statistics (steps, iterations) are deliberately absent: they
// depend on the fixpoint strategy and schedule, while the report is a
// pure function of the analysis result (identical across strategies).
// Use Result.Steps/Iterations or awam.Analysis.Stats for the costs.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%% extension table: %d calling patterns\n", r.TableSize)
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "call    %s\n", e.CP.String(r.Tab))
		if e.Succ == nil {
			b.WriteString("success bottom (no solution)\n")
		} else {
			fmt.Fprintf(&b, "success %s\n", e.Succ.String(r.Tab))
			if modes := Modes(r.Tab, e.CP, e.Succ); modes != "" {
				fmt.Fprintf(&b, "mode    %s\n", modes)
			}
			if pairs := e.Succ.ArgSharePairs(); len(pairs) > 0 {
				parts := make([]string, len(pairs))
				for i, p := range pairs {
					parts[i] = fmt.Sprintf("(%d,%d)", p[0]+1, p[1]+1)
				}
				fmt.Fprintf(&b, "alias   %s\n", strings.Join(parts, " "))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Modes derives a conventional mode declaration from a calling pattern
// and its success pattern: '+' ground at call, '-' free at call and
// bound at success, '?' otherwise; 'g' marks arguments ground at
// success.
func Modes(tab *term.Tab, cp, succ *domain.Pattern) string {
	parts := ArgModes(tab, cp, succ)
	if parts == nil {
		return ""
	}
	return tab.Name(cp.Fn.Name) + "(" + strings.Join(parts, ", ") + ")"
}

// ArgModes classifies each argument's mode transition as one of "+g",
// "+", "-g", "-", "-?" or "?" — the per-argument form behind Modes,
// consumed by the typed Summary API in the facade.
func ArgModes(tab *term.Tab, cp, succ *domain.Pattern) []string {
	if cp == nil || len(cp.Args) == 0 {
		return nil
	}
	parts := make([]string, len(cp.Args))
	for i, in := range cp.Args {
		out := in
		if succ != nil && i < len(succ.Args) {
			out = succ.Args[i]
		}
		ground := domain.MkLeaf(domain.Ground)
		nv := domain.MkLeaf(domain.NV)
		v := domain.MkLeaf(domain.Var)
		switch {
		case domain.Leq(tab, in, ground):
			parts[i] = "+g"
		case domain.Leq(tab, in, nv):
			parts[i] = "+"
		case domain.Leq(tab, in, v) && domain.Leq(tab, out, ground):
			parts[i] = "-g"
		case domain.Leq(tab, in, v) && domain.Leq(tab, out, nv):
			parts[i] = "-"
		case domain.Leq(tab, in, v):
			parts[i] = "-?"
		default:
			parts[i] = "?"
		}
	}
	return parts
}

// EntriesFor returns the table entries of one predicate.
func (r *Result) EntriesFor(fn term.Functor) []*Entry {
	var out []*Entry
	for _, e := range r.Entries {
		if e.CP.Fn == fn {
			out = append(out, e)
		}
	}
	return out
}

// SuccessFor lubs all success patterns recorded for fn, the summary the
// optimizer and the soundness tests consume. It returns nil when no call
// of fn ever succeeded.
func (r *Result) SuccessFor(fn term.Functor) *domain.Pattern {
	var acc *domain.Pattern
	for _, e := range r.Entries {
		if e.CP.Fn == fn && e.Succ != nil {
			acc = domain.LubPattern(r.Tab, acc, e.Succ)
		}
	}
	return acc
}

// CallFor lubs all calling patterns recorded for fn.
func (r *Result) CallFor(fn term.Functor) *domain.Pattern {
	var acc *domain.Pattern
	for _, e := range r.Entries {
		if e.CP.Fn == fn {
			acc = domain.LubPattern(r.Tab, acc, e.CP)
		}
	}
	return acc
}

// Predicates lists the analyzed predicates in a stable order.
func (r *Result) Predicates() []term.Functor {
	seen := make(map[term.Functor]bool)
	var out []term.Functor
	for _, e := range r.Entries {
		if !seen[e.CP.Fn] {
			seen[e.CP.Fn] = true
			out = append(out, e.CP.Fn)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ni, nj := r.Tab.Name(out[i].Name), r.Tab.Name(out[j].Name)
		if ni != nj {
			return ni < nj
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}
