package core

import (
	"fmt"
	"sort"
	"strings"

	"awam/internal/rt"
	"awam/internal/term"
	"awam/internal/wam"
)

// Determinacy information: which calls can be resolved by at most one
// clause. Detecting determinate predicates is one of the optimizations
// the paper's introduction motivates dataflow analysis with (choice
// points for such calls can be skipped entirely).
//
// The estimate is per extension-table entry: a clause "may match" a
// calling pattern when its head unification prefix (the get/unify
// instructions before the first body instruction) succeeds abstractly
// against the materialized pattern. Body failures are not considered, so
// the count over-approximates: "det" here is sound (a det predicate is
// certainly determinate for that call class), "nondet" may be spurious.

// DetEntry reports the matching-clause count for one calling pattern.
type DetEntry struct {
	CP *Entry
	// Matching is the number of clauses whose head prefix can succeed.
	Matching int
	// Clauses is the number of clauses the indexed dispatch considered.
	Clauses int
}

// Det reports whether the call class is determinate.
func (d DetEntry) Det() bool { return d.Matching <= 1 }

// Determinacy computes matching-clause counts for every table entry.
// Call it on the analyzer that produced res (it reuses its heap).
func (a *Analyzer) Determinacy(res *Result) []DetEntry {
	if a.h == nil {
		a.h = rt.NewHeap()
	}
	out := make([]DetEntry, 0, len(res.Entries))
	for _, e := range res.Entries {
		proc := a.mod.Proc(e.CP.Fn)
		if proc == nil {
			out = append(out, DetEntry{CP: e})
			continue
		}
		clauses := a.selectClauses(proc, e.CP)
		d := DetEntry{CP: e, Clauses: len(clauses)}
		for _, addr := range clauses {
			mark := a.h.Mark()
			argAddrs := a.materialize(e.CP)
			a.ensureX(e.CP.Fn.Arity)
			for i, ad := range argAddrs {
				a.x[i+1] = rt.MkRef(ad)
			}
			if a.runHeadPrefix(addr) {
				d.Matching++
			}
			a.h.Undo(mark)
		}
		out = append(out, d)
	}
	return out
}

// ClauseMatches reports, per analyzed predicate, which clauses can
// head-match at least one recorded calling pattern. The result maps a
// functor to a bool per clause (indexed like Proc.Clauses); false means
// the clause's head unification prefix fails abstractly against every
// calling pattern in the table — such a clause can never match any call
// the analysis reached, so the optimizer may drop it from dispatch.
// Every clause of every predicate is tested (no indexing filter): the
// answer over-approximates concrete matching, never under.
func (a *Analyzer) ClauseMatches(res *Result) map[term.Functor][]bool {
	if a.h == nil {
		a.h = rt.NewHeap()
	}
	out := make(map[term.Functor][]bool)
	for _, e := range res.Entries {
		proc := a.mod.Proc(e.CP.Fn)
		if proc == nil {
			continue
		}
		marks := out[e.CP.Fn]
		if marks == nil {
			marks = make([]bool, len(proc.Clauses))
			out[e.CP.Fn] = marks
		}
		for i, addr := range proc.Clauses {
			if marks[i] {
				continue
			}
			mark := a.h.Mark()
			argAddrs := a.materialize(e.CP)
			a.ensureX(e.CP.Fn.Arity)
			for j, ad := range argAddrs {
				a.x[j+1] = rt.MkRef(ad)
			}
			if a.runHeadPrefix(addr) {
				marks[i] = true
			}
			a.h.Undo(mark)
		}
	}
	return out
}

// runHeadPrefix executes only the head get/unify instructions of a
// clause, reporting whether they can succeed.
func (a *Analyzer) runHeadPrefix(addr int) bool {
	s := 0
	mode := readMode
	var env []rt.Cell
	for p := addr; p < len(a.mod.Code); p++ {
		ins := a.mod.Code[p]
		if ins.A1 > ins.A2 {
			a.ensureX(ins.A1)
		} else {
			a.ensureX(ins.A2)
		}
		switch ins.Op {
		case wam.OpAllocate:
			env = make([]rt.Cell, ins.A2)
		case wam.OpGetLevel, wam.OpNeckCut, wam.OpNop:
		case wam.OpGetVarX:
			a.x[ins.A2] = a.x[ins.A1]
		case wam.OpGetVarY:
			env[ins.A2] = a.x[ins.A1]
		case wam.OpGetValX:
			if !a.absUnify(a.x[ins.A2], a.x[ins.A1]) {
				return false
			}
		case wam.OpGetValY:
			if !a.absUnify(env[ins.A2], a.x[ins.A1]) {
				return false
			}
		case wam.OpGetConst, wam.OpGetConstCmp:
			if !a.absUnify(a.x[ins.A1], rt.MkCon(ins.Fn.Name)) {
				return false
			}
		case wam.OpGetInt, wam.OpGetIntCmp:
			if !a.absUnify(a.x[ins.A1], rt.MkInt(ins.I)) {
				return false
			}
		case wam.OpGetNil, wam.OpGetNilCmp:
			if !a.absUnify(a.x[ins.A1], rt.MkCon(a.tab.Nil)) {
				return false
			}
		case wam.OpGetList, wam.OpGetListRead:
			ok, ns, nm := a.getList(a.x[ins.A1])
			if !ok {
				return false
			}
			s, mode = ns, nm
		case wam.OpGetStruct, wam.OpGetStructRead:
			ok, ns, nm := a.getStruct(a.x[ins.A1], ins.Fn)
			if !ok {
				return false
			}
			s, mode = ns, nm
		case wam.OpUnifyVarX:
			if mode == readMode {
				a.x[ins.A2] = rt.MkRef(s)
				s++
			} else {
				a.x[ins.A2] = rt.MkRef(a.h.PushVar())
			}
		case wam.OpUnifyVarY:
			if mode == readMode {
				env[ins.A2] = rt.MkRef(s)
				s++
			} else {
				env[ins.A2] = rt.MkRef(a.h.PushVar())
			}
		case wam.OpUnifyValX:
			if mode == readMode {
				if !a.absUnify(a.x[ins.A2], rt.MkRef(s)) {
					return false
				}
				s++
			} else {
				a.h.Push(a.x[ins.A2])
			}
		case wam.OpUnifyValY:
			if mode == readMode {
				if !a.absUnify(env[ins.A2], rt.MkRef(s)) {
					return false
				}
				s++
			} else {
				a.h.Push(env[ins.A2])
			}
		case wam.OpUnifyConst:
			if !a.unifyPrefixStep(&s, mode, rt.MkCon(ins.Fn.Name)) {
				return false
			}
		case wam.OpUnifyInt:
			if !a.unifyPrefixStep(&s, mode, rt.MkInt(ins.I)) {
				return false
			}
		case wam.OpUnifyNil:
			if !a.unifyPrefixStep(&s, mode, rt.MkCon(a.tab.Nil)) {
				return false
			}
		case wam.OpUnifyVoid:
			if mode == readMode {
				s += ins.A2
			} else {
				for i := 0; i < ins.A2; i++ {
					a.h.PushVar()
				}
			}
		default:
			// First body/control instruction: the head matched.
			return true
		}
	}
	return true
}

func (a *Analyzer) unifyPrefixStep(s *int, mode absMode, k rt.Cell) bool {
	if mode == readMode {
		ok := a.absUnify(rt.MkRef(*s), k)
		*s = *s + 1
		return ok
	}
	a.h.Push(k)
	return true
}

// DeterminacyReport renders the determinacy table.
func DeterminacyReport(tab *term.Tab, dets []DetEntry) string {
	sorted := append([]DetEntry(nil), dets...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].CP.CP.String(tab) < sorted[j].CP.CP.String(tab)
	})
	var b strings.Builder
	for _, d := range sorted {
		kind := "det"
		if !d.Det() {
			kind = fmt.Sprintf("nondet(%d)", d.Matching)
		}
		fmt.Fprintf(&b, "%-10s %s\n", kind, d.CP.CP.String(tab))
	}
	return b.String()
}
