package core

import (
	"math/rand"
	"testing"

	"awam/internal/compiler"
	"awam/internal/domain"
	"awam/internal/machine"
	"awam/internal/parser"
	"awam/internal/rt"
	"awam/internal/term"
)

// newBareAnalyzer builds an analyzer over an empty module, enough to
// exercise absUnify and the pattern conversions directly.
func newBareAnalyzer(t *testing.T, tab *term.Tab) *Analyzer {
	t.Helper()
	prog, err := parser.ParseProgram(tab, "dummy.")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		t.Fatal(err)
	}
	a := New(mod)
	a.h = rt.NewHeap()
	return a
}

// absPair materializes an abstract term and returns its root address.
func absRoot(a *Analyzer, t *domain.Term) int {
	return a.materializeTerm(t, make(map[int]genInt))
}

// TestAbsUnifyTable checks the s_unify rules directly on cells,
// including the examples of Section 4.1.
func TestAbsUnifyTable(t *testing.T) {
	cases := []struct {
		a, b string
		ok   bool
		// resA is the abstraction of the first cell after unification
		// ("" to skip the check).
		resA string
	}{
		// Paper examples.
		{"any", "g", true, "g"},
		{"var", "g", true, "g"},
		{"any", "f(var)", true, "f(any)"},
		{"list(g)", "[var|var]", true, "[g|list(g)]"},
		{"g", "f(var)", true, "f(g)"},
		// Leaf classes.
		{"atom", "int", false, ""},
		{"const", "int", true, "int"},
		{"const", "atom", true, "atom"},
		{"g", "atom", true, "atom"},
		{"nv", "g", true, "g"},
		{"nv", "f(var)", true, "f(any)"},
		{"var", "var", true, "var"},
		// Lists.
		{"list(g)", "[]", true, "[]"},
		// Element-type clash still leaves the empty list.
		{"list(int)", "list(atom)", true, "[]"},
		{"list(int)", "list(int)", true, "list(int)"},
		{"const", "list(g)", true, "[]"},
		{"atom", "list(g)", true, "atom"},
		{"int", "list(g)", false, ""},
		{"list(g)", "f(g)", false, ""},
		// Structures.
		{"f(g)", "f(atom)", true, "f(atom)"},
		{"f(g)", "h(g)", false, ""},
		{"f(var)", "f(g)", true, "f(g)"},
	}
	for _, c := range cases {
		tab := term.NewTab()
		a := newBareAnalyzer(t, tab)
		pa, err := domain.ParseAbs(tab, "p("+c.a+")")
		if err != nil {
			t.Fatal(err)
		}
		pb, err := domain.ParseAbs(tab, "p("+c.b+")")
		if err != nil {
			t.Fatal(err)
		}
		ra := absRoot(a, pa.Args[0])
		rb := absRoot(a, pb.Args[0])
		got := a.absUnify(rt.MkRef(ra), rt.MkRef(rb))
		if got != c.ok {
			t.Errorf("absUnify(%s, %s) = %v, want %v", c.a, c.b, got, c.ok)
			continue
		}
		if got && c.resA != "" {
			res := a.abstractArgs(tab.Func("p", 1), []int{ra})
			if resStr := res.Args[0].String(tab); resStr != c.resA {
				t.Errorf("absUnify(%s, %s) result = %s, want %s", c.a, c.b, resStr, c.resA)
			}
		}
	}
}

// genWitness produces a random concrete term belonging to the
// concretization of the abstract term.
func genWitness(r *rand.Rand, tab *term.Tab, t *domain.Term, depth int) *term.Term {
	switch t.Kind {
	case domain.Var:
		// Unique names so that writing and re-parsing the term preserves
		// variable identity.
		return term.NewVar(freshName(r))
	case domain.Nil:
		return term.MkAtom(tab.Nil)
	case domain.Atom:
		return term.MkAtom(tab.Intern([]string{"a", "b", "c"}[r.Intn(3)]))
	case domain.Intg:
		return term.MkInt(int64(r.Intn(5)))
	case domain.Const:
		if r.Intn(2) == 0 {
			return term.MkAtom(tab.Intern("k"))
		}
		return term.MkInt(int64(r.Intn(5)))
	case domain.Ground:
		if depth <= 0 || r.Intn(2) == 0 {
			return term.MkInt(int64(r.Intn(5)))
		}
		return term.MkStruct(tab.Func("gg", 1), genWitness(r, tab, domain.MkLeaf(domain.Ground), depth-1))
	case domain.NV:
		if depth <= 0 || r.Intn(2) == 0 {
			return term.MkAtom(tab.Intern("nvw"))
		}
		return term.MkStruct(tab.Func("nn", 1), genWitness(r, tab, domain.Top(), depth-1))
	case domain.Any:
		if depth <= 0 {
			switch r.Intn(3) {
			case 0:
				return term.NewVar(freshName(r))
			case 1:
				return term.MkInt(int64(r.Intn(5)))
			default:
				return term.MkAtom(tab.Intern("aw"))
			}
		}
		return genWitness(r, tab, genAbsCore(r, tab, depth-1), depth-1)
	case domain.List:
		n := r.Intn(3)
		elems := make([]*term.Term, n)
		for i := range elems {
			elems[i] = genWitness(r, tab, t.Elem, depth-1)
		}
		return term.MkList(tab, elems, nil)
	case domain.Struct:
		args := make([]*term.Term, len(t.Args))
		for i, at := range t.Args {
			args[i] = genWitness(r, tab, at, depth-1)
		}
		return term.MkStruct(t.Fn, args...)
	}
	return term.MkAtom(tab.Intern("w"))
}

// genAbsCore generates a random abstract term (no empty, no sharing).
func genAbsCore(r *rand.Rand, tab *term.Tab, depth int) *domain.Term {
	leaves := []domain.Kind{domain.Var, domain.Nil, domain.Atom, domain.Intg,
		domain.Const, domain.Ground, domain.NV, domain.Any}
	if depth <= 0 || r.Intn(3) == 0 {
		return domain.MkLeaf(leaves[r.Intn(len(leaves))])
	}
	switch r.Intn(3) {
	case 0:
		n := r.Intn(2) + 1
		args := make([]*domain.Term, n)
		for i := range args {
			args[i] = genAbsCore(r, tab, depth-1)
		}
		return domain.MkStructT(tab.Func([]string{"f", "h"}[r.Intn(2)], n), args...)
	case 1:
		return domain.MkListT(genAbsCore(r, tab, depth-1))
	default:
		return domain.MkLeaf(leaves[r.Intn(len(leaves))])
	}
}

var nameCounter int

func freshName(r *rand.Rand) string {
	nameCounter++
	return "W" + string(rune('A'+r.Intn(26))) + itoa(nameCounter)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestAbsUnifySoundness is the central property of Section 4: if
// concrete terms t1 ∈ γ(A) and t2 ∈ γ(B) unify to t, then abstract
// unification of A and B must succeed and t must belong to the
// concretization of the result.
func TestAbsUnifySoundness(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	const trials = 3000
	checked := 0
	for i := 0; i < trials; i++ {
		tab := term.NewTab()
		A := genAbsCore(r, tab, 2)
		B := genAbsCore(r, tab, 2)
		t1 := genWitness(r, tab, A, 2)
		t2 := genWitness(r, tab, B, 2)

		// Concrete unification via =/2 on the machine, reading the
		// instantiated first term back through the solution bindings.
		prog, err := parser.ParseProgram(tab, "dummy.")
		if err != nil {
			t.Fatal(err)
		}
		mod, err := compiler.Compile(tab, prog)
		if err != nil {
			t.Fatal(err)
		}
		m := machine.New(mod)
		goal := term.MkStruct(tab.Func("=", 2), t1, t2)
		sol, err := m.SolveGoal([]*term.Term{goal})
		if err != nil {
			t.Fatalf("solve: %v", err)
		}
		if !sol.OK {
			continue // the concrete witnesses don't unify; nothing to check
		}
		unified := instantiate(t1, sol.Bindings())
		checked++

		// Abstract unification of the two abstract terms.
		a := newBareAnalyzer(t, tab)
		ra := absRoot(a, A)
		rb := absRoot(a, B)
		if !a.absUnify(rt.MkRef(ra), rt.MkRef(rb)) {
			t.Fatalf("trial %d: concrete terms %s and %s unify but absUnify(%s, %s) fails",
				i, tab.Write(t1), tab.Write(t2), A.String(tab), B.String(tab))
		}
		res := a.abstractArgs(tab.Func("p", 1), []int{ra})
		if !domain.Member(tab, unified, res.Args[0]) {
			t.Fatalf("trial %d: unified term %s not in abstract result %s (from %s with %s)",
				i, tab.Write(unified), res.Args[0].String(tab), A.String(tab), B.String(tab))
		}
	}
	if checked < trials/10 {
		t.Fatalf("too few unifiable witness pairs: %d of %d", checked, trials)
	}
}
