package core

import (
	"fmt"

	"awam/internal/rt"
	"awam/internal/term"
	"awam/internal/wam"
)

type absMode uint8

const (
	readMode absMode = iota
	writeMode
)

// runClause executes one clause's code abstractly, from its first
// instruction to proceed/execute. It returns the clause's abstract
// success. Calls recurse through solve; there are no choice points —
// clause enumeration lives in solve (the paper: "creation and
// reclamation of backtracking points would better be incorporated into
// call and proceed rather than try and trust").
func (a *Analyzer) runClause(addr int) bool {
	var env []rt.Cell
	s := 0
	mode := readMode
	p := addr
	for {
		if a.err != nil {
			return false
		}
		// Step accounting draws on the shared budget in budgetChunk
		// reservations (observe.go), so the common case is a single local
		// decrement and the bound stays global across parallel workers.
		if a.allow <= 0 && !a.refillSteps() {
			a.fail(ErrStepLimit)
			return false
		}
		a.allow--
		a.Steps++
		if a.Steps&0xFFF == 0 && !a.tick() {
			return false
		}
		ins := a.mod.Code[p]
		a.met.opcodes[ins.Op]++
		if a.tr != nil {
			a.tr.Instr(a.attrFn, ins.Op)
		}
		if ins.A1 > ins.A2 {
			a.ensureX(ins.A1)
		} else {
			a.ensureX(ins.A2)
		}
		switch ins.Op {
		case wam.OpNop:

		// --- get instructions (Section 4.2 reinterpretation) ---
		case wam.OpGetVarX:
			a.ensureX(ins.A2)
			a.x[ins.A2] = a.x[ins.A1]
		case wam.OpGetVarY:
			env[ins.A2] = a.x[ins.A1]
		case wam.OpGetValX:
			if !a.absUnify(a.x[ins.A2], a.x[ins.A1]) {
				return false
			}
		case wam.OpGetValY:
			if !a.absUnify(env[ins.A2], a.x[ins.A1]) {
				return false
			}
		case wam.OpGetConst, wam.OpGetConstCmp:
			if !a.absUnify(a.x[ins.A1], rt.MkCon(ins.Fn.Name)) {
				return false
			}
		case wam.OpGetInt, wam.OpGetIntCmp:
			if !a.absUnify(a.x[ins.A1], rt.MkInt(ins.I)) {
				return false
			}
		case wam.OpGetNil, wam.OpGetNilCmp:
			if !a.absUnify(a.x[ins.A1], rt.MkCon(a.tab.Nil)) {
				return false
			}
		case wam.OpGetList, wam.OpGetListRead:
			ok, ns, nm := a.getList(a.x[ins.A1])
			if !ok {
				return false
			}
			s, mode = ns, nm
		case wam.OpGetStruct, wam.OpGetStructRead:
			ok, ns, nm := a.getStruct(a.x[ins.A1], ins.Fn)
			if !ok {
				return false
			}
			s, mode = ns, nm

		// --- put instructions (unchanged from the concrete machine) ---
		case wam.OpPutVarX:
			v := a.h.PushVar()
			a.ensureX(ins.A2)
			a.x[ins.A2] = rt.MkRef(v)
			a.x[ins.A1] = rt.MkRef(v)
		case wam.OpPutVarY:
			v := a.h.PushVar()
			env[ins.A2] = rt.MkRef(v)
			a.x[ins.A1] = rt.MkRef(v)
		case wam.OpPutValX:
			a.ensureX(ins.A2)
			a.x[ins.A1] = a.x[ins.A2]
		case wam.OpPutValY:
			a.x[ins.A1] = env[ins.A2]
		case wam.OpPutConst:
			a.x[ins.A1] = rt.MkCon(ins.Fn.Name)
		case wam.OpPutInt:
			a.x[ins.A1] = rt.MkInt(ins.I)
		case wam.OpPutNil:
			a.x[ins.A1] = rt.MkCon(a.tab.Nil)
		case wam.OpPutList:
			a.x[ins.A1] = rt.Cell{Tag: rt.Lis, A: a.h.Top()}
			mode = writeMode
		case wam.OpPutStruct:
			fnAddr := a.h.Push(rt.Cell{Tag: rt.Fun, F: ins.Fn})
			a.x[ins.A1] = rt.Cell{Tag: rt.Str, A: fnAddr}
			mode = writeMode

		// --- unify instructions ---
		case wam.OpUnifyVarX:
			a.ensureX(ins.A2)
			if mode == readMode {
				a.x[ins.A2] = rt.MkRef(s)
				s++
			} else {
				a.x[ins.A2] = rt.MkRef(a.h.PushVar())
			}
		case wam.OpUnifyVarY:
			if mode == readMode {
				env[ins.A2] = rt.MkRef(s)
				s++
			} else {
				env[ins.A2] = rt.MkRef(a.h.PushVar())
			}
		case wam.OpUnifyValX:
			if mode == readMode {
				if !a.absUnify(a.x[ins.A2], rt.MkRef(s)) {
					return false
				}
				s++
			} else {
				a.h.Push(a.x[ins.A2])
			}
		case wam.OpUnifyValY:
			if mode == readMode {
				if !a.absUnify(env[ins.A2], rt.MkRef(s)) {
					return false
				}
				s++
			} else {
				a.h.Push(env[ins.A2])
			}
		case wam.OpUnifyConst:
			if mode == readMode {
				if !a.absUnify(rt.MkRef(s), rt.MkCon(ins.Fn.Name)) {
					return false
				}
				s++
			} else {
				a.h.Push(rt.MkCon(ins.Fn.Name))
			}
		case wam.OpUnifyInt:
			if mode == readMode {
				if !a.absUnify(rt.MkRef(s), rt.MkInt(ins.I)) {
					return false
				}
				s++
			} else {
				a.h.Push(rt.MkInt(ins.I))
			}
		case wam.OpUnifyNil:
			if mode == readMode {
				if !a.absUnify(rt.MkRef(s), rt.MkCon(a.tab.Nil)) {
					return false
				}
				s++
			} else {
				a.h.Push(rt.MkCon(a.tab.Nil))
			}
		case wam.OpUnifyVoid:
			if mode == readMode {
				s += ins.A2
			} else {
				for i := 0; i < ins.A2; i++ {
					a.h.PushVar()
				}
			}

		// --- procedural instructions (Section 5 reinterpretation) ---
		case wam.OpAllocate:
			env = make([]rt.Cell, ins.A2)
		case wam.OpDeallocate:
			// The frame stays reachable until the clause ends; nothing
			// to reclaim in the abstract machine (the paper notes
			// environment reclamation tricks are "overkill" here).
		case wam.OpCall, wam.OpExecute:
			if !a.absCall(ins.Fn) {
				return false
			}
			if ins.Op == wam.OpExecute {
				// execute = call + proceed. specFail poisons the clause's
				// success after speculative parallel discovery (absCall).
				return !a.specFail
			}
		case wam.OpProceed:
			return !a.specFail
		case wam.OpBuiltin:
			if !a.absBuiltin(wam.BuiltinID(ins.A1), ins.A2) {
				return false
			}
		case wam.OpHalt:
			return !a.specFail

		// --- cut: ignored (sound over-approximation; analyzing as if
		// every clause is reachable only adds success patterns) ---
		case wam.OpNeckCut, wam.OpGetLevel, wam.OpCutTo:

		default:
			a.fail(fmt.Errorf("core: unexpected opcode %s inside clause at %d",
				a.mod.DisasmInstr(ins), p))
			return false
		}
		p++
	}
}

// getList reinterprets get_list over the abstract domain — the paper's
// Figure 4.
func (a *Analyzer) getList(x rt.Cell) (ok bool, s int, mode absMode) {
	c, addr := a.h.ResolveCell(x)
	switch c.Tag {
	case rt.Lis:
		// Concrete case: same as the standard WAM.
		return true, c.A, readMode
	case rt.Ref, rt.AVar:
		// Unbound: build the pair in write mode.
		a.h.Bind(addr, rt.Cell{Tag: rt.Lis, A: a.h.Top()})
		return true, 0, writeMode
	case rt.AAny:
		// ComplexTermInst: generate a [·|·] instance on the heap and
		// proceed in read mode over fresh 'any' subterms.
		return a.instPair(addr, rt.Cell{Tag: rt.AAny}, rt.Cell{Tag: rt.AAny})
	case rt.ANV:
		return a.instPair(addr, rt.Cell{Tag: rt.AAny}, rt.Cell{Tag: rt.AAny})
	case rt.AGround:
		return a.instPair(addr, rt.Cell{Tag: rt.AGround}, rt.Cell{Tag: rt.AGround})
	case rt.AList:
		// Figure 3 step 2.1: glist <- [g|glist'].
		elem := c.A
		car := a.copyTypeGraph(elem, make(map[int]int))
		cdr := a.h.PushOpen(rt.AList, elem)
		pair := a.h.Push(rt.MkRef(car))
		a.h.Push(rt.MkRef(cdr))
		a.h.Bind(addr, rt.Cell{Tag: rt.Lis, A: pair})
		return true, pair, readMode
	default:
		return false, 0, readMode
	}
}

// instPair instantiates the open cell at addr to a fresh pair with the
// given car/cdr cells, read mode over them.
func (a *Analyzer) instPair(addr int, car, cdr rt.Cell) (bool, int, absMode) {
	pair := a.h.Push(car)
	a.h.Push(cdr)
	a.h.Bind(addr, rt.Cell{Tag: rt.Lis, A: pair})
	return true, pair, readMode
}

// getStruct reinterprets get_structure over the abstract domain.
func (a *Analyzer) getStruct(x rt.Cell, fn term.Functor) (ok bool, s int, mode absMode) {
	c, addr := a.h.ResolveCell(x)
	switch c.Tag {
	case rt.Str:
		if a.h.At(c.A).F != fn {
			return false, 0, readMode
		}
		return true, c.A + 1, readMode
	case rt.Lis:
		if fn.Name == a.tab.Dot && fn.Arity == 2 {
			return true, c.A, readMode
		}
		return false, 0, readMode
	case rt.Ref, rt.AVar:
		fnAddr := a.h.Push(rt.Cell{Tag: rt.Fun, F: fn})
		a.h.Bind(addr, rt.Cell{Tag: rt.Str, A: fnAddr})
		return true, 0, writeMode
	case rt.AAny, rt.ANV:
		return a.instStruct(addr, fn, rt.Cell{Tag: rt.AAny})
	case rt.AGround:
		// Paper example 2.2: get an f(·) instance of g.
		return a.instStruct(addr, fn, rt.Cell{Tag: rt.AGround})
	case rt.AList:
		if fn.Name == a.tab.Dot && fn.Arity == 2 {
			ok2, s2, m2 := a.getList(x)
			return ok2, s2, m2
		}
		return false, 0, readMode
	default:
		return false, 0, readMode
	}
}

// instStruct instantiates the open cell at addr to f(arg,...,arg) with
// fresh copies of the given argument cell.
func (a *Analyzer) instStruct(addr int, fn term.Functor, arg rt.Cell) (bool, int, absMode) {
	fnAddr := a.h.Push(rt.Cell{Tag: rt.Fun, F: fn})
	for i := 0; i < fn.Arity; i++ {
		a.h.Push(arg)
	}
	a.h.Bind(addr, rt.Cell{Tag: rt.Str, A: fnAddr})
	return true, fnAddr + 1, readMode
}

// absCall implements the reinterpreted call instruction: abstract the
// argument registers into a calling pattern, consult the extension
// table (solving recursively when unexplored), and apply the success
// pattern deterministically.
func (a *Analyzer) absCall(fn term.Functor) bool {
	argAddrs := make([]int, fn.Arity)
	for i := 0; i < fn.Arity; i++ {
		a.ensureX(i + 1)
		c := a.x[i+1]
		if c.Tag == rt.Ref {
			argAddrs[i] = c.A
		} else {
			argAddrs[i] = a.h.Push(c)
		}
	}
	cp := a.abstractArgs(fn, argAddrs)
	succ := a.solve(cp)
	if a.err != nil {
		return false
	}
	if succ == nil {
		if a.par != nil {
			// Parallel discovery: a bottom summary may just mean the
			// callee has not converged yet (it was deferred to the work
			// queue, never explored inline). Keep executing the clause to
			// discover the calling patterns of later goals, but poison
			// its success (specFail) — dependency edges guarantee a
			// re-exploration once the callee grows.
			a.specFail = true
			return true
		}
		return false
	}
	if !a.applyPattern(succ, argAddrs) {
		// succ ⊑ cp argument-wise, but the caller's actual cells can be
		// strictly below cp (e.g. a specific constant vs atom); a clash
		// means this particular call has no successes.
		return false
	}
	return true
}
