package core

import (
	"fmt"
	"sort"
	"strings"

	"awam/internal/term"
	"awam/internal/wam"
)

// CallGraphDot renders the program's static call graph in Graphviz DOT
// form, annotated with the analysis: predicates the analysis never
// reached are grayed out, predicates that can never succeed are marked
// red, and reachable nodes carry their derived mode declaration.
func CallGraphDot(mod *wam.Module, res *Result) string {
	edges := StaticCallEdges(mod)
	reached := make(map[term.Functor]bool)
	succeeds := make(map[term.Functor]bool)
	modes := make(map[term.Functor]string)
	if res != nil {
		for _, e := range res.Entries {
			reached[e.CP.Fn] = true
			if e.Succ != nil {
				succeeds[e.CP.Fn] = true
			}
		}
		for _, fn := range res.Predicates() {
			if m := Modes(res.Tab, res.CallFor(fn), res.SuccessFor(fn)); m != "" {
				modes[fn] = m
			}
		}
	}

	var b strings.Builder
	b.WriteString("digraph callgraph {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, fn := range mod.Order {
		name := mod.Tab.FuncString(fn)
		label := name
		if m, ok := modes[fn]; ok {
			label = name + "\\n" + m
		}
		attrs := fmt.Sprintf("label=\"%s\"", label)
		if res != nil {
			switch {
			case !reached[fn]:
				attrs += ", style=dashed, color=gray"
			case !succeeds[fn]:
				attrs += ", color=red"
			}
		}
		fmt.Fprintf(&b, "  %q [%s];\n", name, attrs)
	}
	var lines []string
	for e := range edges {
		lines = append(lines, fmt.Sprintf("  %q -> %q;\n",
			mod.Tab.FuncString(e[0]), mod.Tab.FuncString(e[1])))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
	}
	b.WriteString("}\n")
	return b.String()
}

// StaticCallEdges extracts caller->callee pairs from the compiled code.
func StaticCallEdges(mod *wam.Module) map[[2]term.Functor]bool {
	// Map each address range to its procedure.
	type span struct {
		start, end int
		fn         term.Functor
	}
	var spans []span
	for _, fn := range mod.Order {
		p := mod.Procs[fn]
		spans = append(spans, span{start: p.Entry, fn: fn})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	for i := range spans {
		if i+1 < len(spans) {
			spans[i].end = spans[i+1].start
		} else {
			spans[i].end = len(mod.Code)
		}
	}
	owner := func(addr int) (term.Functor, bool) {
		for _, s := range spans {
			if addr >= s.start && addr < s.end {
				return s.fn, true
			}
		}
		return term.Functor{}, false
	}
	edges := make(map[[2]term.Functor]bool)
	for addr, ins := range mod.Code {
		if ins.Op == wam.OpCall || ins.Op == wam.OpExecute {
			if from, ok := owner(addr); ok {
				edges[[2]term.Functor{from, ins.Fn}] = true
			}
		}
	}
	return edges
}
