package core

import (
	"awam/internal/domain"
	"awam/internal/rt"
	"awam/internal/term"
)

// abstractArgs builds the canonical pattern describing the cells at
// argAddrs — "term abstraction before a predicate invocation" (Section
// 6). Constants abstract to atom/integer (AbsType), concrete structure
// is kept, sharing of open cells becomes share groups, and the result is
// widened to the configured term depth with var-occurrences that cross
// the depth boundary soundly generalized.
func (a *Analyzer) abstractArgs(fn term.Functor, argAddrs []int) *domain.Pattern {
	// One scratch abstractor per analyzer, generation-stamped: bumping
	// gen invalidates every map entry at once, so the per-call clear()
	// walks (measurable at call-event frequency) disappear. The *Term
	// nodes escape into the pattern; the map storage does not. Analyzers
	// are goroutine-private — parallel workers each own a clone — so the
	// reuse needs no locking.
	if a.absScratch == nil {
		a.absScratch = &abstractor{a: a, first: make(map[int]genTerm), ids: make(map[int]genInt)}
		a.absBusy = make(map[int]bool)
	}
	conv := a.absScratch
	conv.gen++
	conv.nids = 0
	// busy needs no generation: convert pairs every insertion with a
	// delete on unwind, so the map is empty between calls.
	busy := a.absBusy
	args := make([]*domain.Term, len(argAddrs))
	for i, addr := range argAddrs {
		args[i] = conv.convert(addr, 1, busy)
	}
	// Widen argument-wise without renumbering so the group counts below
	// stay comparable.
	widened := false
	wargs := make([]*domain.Term, len(args))
	for i := range args {
		wargs[i] = domain.Widen(a.tab, args[i], a.cfg.Depth)
		if wargs[i] != args[i] {
			widened = true
		}
	}
	p := domain.NewPattern(fn, wargs)
	// Widening can swallow share-group occurrences (subtree truncation,
	// cons-chain collapse). A var node whose group lost occurrences may
	// be instantiated through the now-invisible alias, so it must widen
	// to any. When nothing was widened, no group can have been dropped.
	if widened && conv.nids > 0 {
		before := countGroups(domain.NewPattern(fn, args))
		after := countGroups(p)
		dropped := make(map[int]bool)
		for g, n := range before {
			if after[g] < n {
				dropped[g] = true
			}
		}
		if len(dropped) > 0 {
			p = devarifyGroups(p, dropped)
		}
	}
	return p.Canonical()
}

// countGroups tallies share-group occurrences per group id.
func countGroups(p *domain.Pattern) map[int]int {
	out := make(map[int]int)
	var walk func(t *domain.Term)
	walk = func(t *domain.Term) {
		if t.Share != 0 {
			out[t.Share]++
		}
		if t.Kind == domain.Struct {
			for _, a := range t.Args {
				walk(a)
			}
		}
		if t.Kind == domain.List {
			walk(t.Elem)
		}
	}
	for _, a := range p.Args {
		walk(a)
	}
	return out
}

// genTerm/genInt are generation-stamped scratch-map values: an entry is
// live only when its gen matches the abstractor's current generation, so
// advancing the generation invalidates the whole map without a clear.
type genTerm struct {
	gen uint64
	t   *domain.Term
}

type genInt struct {
	gen uint64
	v   int
}

type abstractor struct {
	a   *Analyzer
	gen uint64
	// first remembers the node built for an open cell's first
	// occurrence; a group id is only allocated when the cell is reached
	// again (singleton groups would be dropped by Canonical anyway, and
	// most cells are singletons).
	first map[int]genTerm
	ids   map[int]genInt // heap addr -> share group id (2+ occurrences)
	nids  int            // groups allocated this generation
}

// share wires node t into addr's share group, lazily creating the group
// on the second occurrence.
func (c *abstractor) share(addr int, t *domain.Term) {
	if g, ok := c.ids[addr]; ok && g.gen == c.gen {
		t.Share = g.v
		return
	}
	if f, ok := c.first[addr]; ok && f.gen == c.gen {
		c.nids++
		id := c.nids
		c.ids[addr] = genInt{gen: c.gen, v: id}
		f.t.Share = id
		t.Share = id
		return
	}
	c.first[addr] = genTerm{gen: c.gen, t: t}
}

func (c *abstractor) leaf(kind domain.Kind, addr, depth int) *domain.Term {
	t := &domain.Term{Kind: kind}
	if kind.Open() {
		c.share(addr, t)
	}
	_ = depth
	return t
}

// convert maps a heap cell to an abstract term. busy guards against
// cyclic heap structure (possible without occurs check): a cycle widens
// to any.
func (c *abstractor) convert(addr, depth int, busy map[int]bool) *domain.Term {
	h := c.a.h
	addr = h.Deref(addr)
	if busy[addr] {
		return domain.Top()
	}
	cell := h.At(addr)
	switch cell.Tag {
	case rt.Ref, rt.AVar:
		return c.leaf(domain.Var, addr, depth)
	case rt.AAny:
		return c.leaf(domain.Any, addr, depth)
	case rt.ANV:
		return c.leaf(domain.NV, addr, depth)
	case rt.AGround:
		return c.leaf(domain.Ground, addr, depth)
	case rt.AConst:
		return c.leaf(domain.Const, addr, depth)
	case rt.AAtom:
		return domain.MkLeaf(domain.Atom)
	case rt.AInt:
		return domain.MkLeaf(domain.Intg)
	case rt.Con:
		if cell.F.Name == c.a.tab.Nil {
			return domain.MkLeaf(domain.Nil)
		}
		// AbsType of a constant is atom (Section 4.2).
		return domain.MkLeaf(domain.Atom)
	case rt.Int:
		return domain.MkLeaf(domain.Intg)
	case rt.AList:
		t := &domain.Term{Kind: domain.List}
		c.share(addr, t)
		busy[addr] = true
		t.Elem = c.convert(cell.A, depth+1, busy)
		delete(busy, addr)
		return t
	case rt.Lis:
		busy[addr] = true
		car := c.convert(cell.A, depth+1, busy)
		cdr := c.convert(cell.A+1, depth+1, busy)
		delete(busy, addr)
		return domain.MkStructT(c.a.tab.ConsFunctor(), car, cdr)
	case rt.Str:
		fn := h.At(cell.A)
		args := make([]*domain.Term, fn.F.Arity)
		busy[addr] = true
		for i := 0; i < fn.F.Arity; i++ {
			args[i] = c.convert(cell.A+1+i, depth+1, busy)
		}
		delete(busy, addr)
		return domain.MkStructT(fn.F, args...)
	}
	return domain.Top()
}

// devarifyGroups widens var nodes belonging to the given share groups to
// any (their truncated co-occurrences may instantiate them invisibly).
func devarifyGroups(p *domain.Pattern, groups map[int]bool) *domain.Pattern {
	var rew func(t *domain.Term) *domain.Term
	rew = func(t *domain.Term) *domain.Term {
		out := *t
		if t.Share != 0 && groups[t.Share] && t.Kind == domain.Var {
			out.Kind = domain.Any
		}
		if t.Kind == domain.Struct {
			out.Args = make([]*domain.Term, len(t.Args))
			for i, a := range t.Args {
				out.Args[i] = rew(a)
			}
		}
		if t.Kind == domain.List {
			out.Elem = rew(t.Elem)
		}
		return &out
	}
	args := make([]*domain.Term, len(p.Args))
	for i, a := range p.Args {
		args[i] = rew(a)
	}
	return domain.NewPattern(p.Fn, args)
}

// materialize creates fresh heap cells realizing the pattern's argument
// types, honoring share groups (group members become the same cell).
// It returns the root addresses.
func (a *Analyzer) materialize(p *domain.Pattern) []int {
	if a.matGroups == nil {
		a.matGroups = make(map[int]genInt)
	}
	a.matGen++
	groups := a.matGroups
	out := make([]int, len(p.Args))
	for i, t := range p.Args {
		out[i] = a.materializeTerm(t, groups)
	}
	return out
}

func (a *Analyzer) materializeTerm(t *domain.Term, groups map[int]genInt) int {
	if t.Share != 0 {
		if g, ok := groups[t.Share]; ok && g.gen == a.matGen {
			return g.v
		}
	}
	var addr int
	switch t.Kind {
	case domain.Var:
		addr = a.h.PushVar()
	case domain.Any, domain.Empty:
		// Bottom argument types cannot occur in reachable patterns; any
		// is the safe stand-in.
		addr = a.h.Push(rt.Cell{Tag: rt.AAny})
	case domain.NV:
		addr = a.h.Push(rt.Cell{Tag: rt.ANV})
	case domain.Ground:
		addr = a.h.Push(rt.Cell{Tag: rt.AGround})
	case domain.Const:
		addr = a.h.Push(rt.Cell{Tag: rt.AConst})
	case domain.Atom:
		addr = a.h.Push(rt.Cell{Tag: rt.AAtom})
	case domain.Intg:
		addr = a.h.Push(rt.Cell{Tag: rt.AInt})
	case domain.Nil:
		addr = a.h.Push(rt.MkCon(a.tab.Nil))
	case domain.List:
		elem := a.materializeTerm(t.Elem, groups)
		addr = a.h.Push(rt.Cell{Tag: rt.AList, A: elem})
	case domain.Struct:
		if t.Fn.Name == a.tab.Dot && t.Fn.Arity == 2 {
			car := a.materializeTerm(t.Args[0], groups)
			cdr := a.materializeTerm(t.Args[1], groups)
			pair := a.h.Push(rt.MkRef(car))
			a.h.Push(rt.MkRef(cdr))
			addr = a.h.Push(rt.Cell{Tag: rt.Lis, A: pair})
		} else {
			args := make([]int, len(t.Args))
			for i, arg := range t.Args {
				args[i] = a.materializeTerm(arg, groups)
			}
			fnAddr := a.h.Push(rt.Cell{Tag: rt.Fun, F: t.Fn})
			for _, arg := range args {
				a.h.Push(rt.MkRef(arg))
			}
			addr = a.h.Push(rt.Cell{Tag: rt.Str, A: fnAddr})
		}
	default:
		addr = a.h.Push(rt.Cell{Tag: rt.AAny})
	}
	if t.Share != 0 {
		groups[t.Share] = genInt{gen: a.matGen, v: addr}
	}
	return addr
}

// applyPattern unifies a success pattern onto the caller's argument
// cells: the deterministic return of the extension-table scheme.
func (a *Analyzer) applyPattern(p *domain.Pattern, argAddrs []int) bool {
	matAddrs := a.materialize(p)
	for i := range argAddrs {
		if !a.absUnify(rt.MkRef(argAddrs[i]), rt.MkRef(matAddrs[i])) {
			return false
		}
	}
	return true
}
