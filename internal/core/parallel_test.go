package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"awam/internal/bench"
	"awam/internal/wam"
)

func analyzeStrategy(t *testing.T, mod *wam.Module, strat Strategy, workers int) *Result {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Strategy = strat
	cfg.Parallelism = workers
	res, err := NewWith(mod, cfg).AnalyzeMain()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelMatchesWorklist is the determinism contract of
// StrategyParallel: for every program in the Table 1 suite, the parallel
// result's Report() and Marshal() output is byte-identical to
// StrategyWorklist. Both strategies converge the same least fixpoint and
// present it through the deterministic finalize pass, so this holds for
// any worker count and schedule.
func TestParallelMatchesWorklist(t *testing.T) {
	for _, p := range bench.Programs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			_, mod := buildMod(t, p.Source)
			wl := analyzeStrategy(t, mod, StrategyWorklist, 0)
			for _, workers := range []int{1, 2, 4, 8} {
				par := analyzeStrategy(t, mod, StrategyParallel, workers)
				if got, want := par.Marshal(), wl.Marshal(); got != want {
					t.Fatalf("Marshal mismatch at %d workers:\n--- parallel ---\n%s--- worklist ---\n%s",
						workers, got, want)
				}
				if got, want := par.Report(), wl.Report(); got != want {
					t.Fatalf("Report mismatch at %d workers:\n--- parallel ---\n%s--- worklist ---\n%s",
						workers, got, want)
				}
				if par.TableSize != wl.TableSize {
					t.Fatalf("table sizes differ at %d workers: %d vs %d",
						workers, par.TableSize, wl.TableSize)
				}
			}
		})
	}
}

// TestParallelMatchesWorklistExtended extends the byte-identity check to
// the extended suite (control constructs, heavier arithmetic) at one
// worker count.
func TestParallelMatchesWorklistExtended(t *testing.T) {
	for _, p := range bench.Extended {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			_, mod := buildMod(t, p.Source)
			wl := analyzeStrategy(t, mod, StrategyWorklist, 0)
			par := analyzeStrategy(t, mod, StrategyParallel, 4)
			if par.Marshal() != wl.Marshal() {
				t.Fatalf("Marshal mismatch:\n--- parallel ---\n%s--- worklist ---\n%s",
					par.Marshal(), wl.Marshal())
			}
		})
	}
}

// TestParallelMatchesWorklistWide checks the determinism contract on a
// generated wide program, whose extension table is an order of magnitude
// larger than any Table 1 benchmark's — the regime the sharded table is
// built for (see BenchmarkAnalyzeParallel).
func TestParallelMatchesWorklistWide(t *testing.T) {
	p := bench.WideProgram(16)
	_, mod := buildMod(t, p.Source)
	wl := analyzeStrategy(t, mod, StrategyWorklist, 0)
	for _, workers := range []int{1, 4} {
		par := analyzeStrategy(t, mod, StrategyParallel, workers)
		if par.Marshal() != wl.Marshal() {
			t.Fatalf("Marshal mismatch at %d workers on %s", workers, p.Name)
		}
		if par.TableSize != wl.TableSize {
			t.Fatalf("table sizes differ at %d workers: %d vs %d",
				workers, par.TableSize, wl.TableSize)
		}
	}
}

// TestParallelStress is the -race stress test: 8 workers over the
// recursive benchmark programs, 20 runs each, asserting a stable
// TableSize and byte-identical marshaled results versus the sequential
// worklist. Under -race this exercises the sharded table, the entry
// merge path and the idle-worker barrier across many schedules.
func TestParallelStress(t *testing.T) {
	recursive := []string{"nreverse", "qsort", "tak", "serialise", "queens_8"}
	for _, name := range recursive {
		name := name
		t.Run(name, func(t *testing.T) {
			p, ok := bench.ByName(name)
			if !ok {
				t.Fatalf("unknown benchmark %s", name)
			}
			_, mod := buildMod(t, p.Source)
			wl := analyzeStrategy(t, mod, StrategyWorklist, 0)
			want := wl.Marshal()
			for i := 0; i < 20; i++ {
				res := analyzeStrategy(t, mod, StrategyParallel, 8)
				if res.TableSize != wl.TableSize {
					t.Fatalf("run %d: TableSize %d, want %d", i, res.TableSize, wl.TableSize)
				}
				if got := res.Marshal(); got != want {
					t.Fatalf("run %d: marshal mismatch:\n--- parallel ---\n%s--- worklist ---\n%s",
						i, got, want)
				}
			}
		})
	}
}

// TestParallelAllEntryPoints: parallel analysis from per-predicate
// all-any entry points (programs without main/0) matches the worklist.
func TestParallelAllEntryPoints(t *testing.T) {
	_, mod := buildMod(t, `
concatenate([X|L1], L2, [X|L3]) :- concatenate(L1, L2, L3).
concatenate([], L, L).
rev([], []).
rev([X|T], R) :- rev(T, RT), concatenate(RT, [X], R).
`)
	wlCfg := DefaultConfig()
	wlCfg.Strategy = StrategyWorklist
	wl, err := NewWith(mod, wlCfg).AnalyzeAll()
	if err != nil {
		t.Fatal(err)
	}
	parCfg := DefaultConfig()
	parCfg.Strategy = StrategyParallel
	parCfg.Parallelism = 4
	par, err := NewWith(mod, parCfg).AnalyzeAll()
	if err != nil {
		t.Fatal(err)
	}
	if par.Marshal() != wl.Marshal() {
		t.Fatalf("AnalyzeAll mismatch:\n--- parallel ---\n%s--- worklist ---\n%s",
			par.Marshal(), wl.Marshal())
	}
}

// TestParallelSoundnessSample re-runs a soundness expectation under the
// parallel strategy.
func TestParallelSoundnessSample(t *testing.T) {
	p, _ := bench.ByName("qsort")
	tab, mod := buildMod(t, p.Source)
	res := analyzeStrategy(t, mod, StrategyParallel, 8)
	succ := res.SuccessFor(tab.Func("qsort", 3))
	if succ == nil {
		t.Fatal("qsort bottom under parallel strategy")
	}
}

// TestAnalyzeContextCanceled: a pre-canceled context stops the analysis
// with an error wrapping both ErrCanceled and context.Canceled, for
// every strategy.
func TestAnalyzeContextCanceled(t *testing.T) {
	p, _ := bench.ByName("zebra")
	_, mod := buildMod(t, p.Source)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, strat := range []Strategy{StrategyNaive, StrategyWorklist, StrategyParallel} {
		cfg := DefaultConfig()
		cfg.Strategy = strat
		a := NewWith(mod, cfg)
		_, err := a.AnalyzeAllContext(ctx)
		if err == nil {
			t.Fatalf("strategy %d: expected cancellation error", strat)
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("strategy %d: error %v does not wrap ErrCanceled", strat, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("strategy %d: error %v does not wrap context.Canceled", strat, err)
		}
	}
}

// TestAnalyzeContextDeadline: an already-expired deadline aborts the
// fixpoint promptly (mid-run, via the periodic tick).
func TestAnalyzeContextDeadline(t *testing.T) {
	p, _ := bench.ByName("zebra")
	_, mod := buildMod(t, p.Source)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := New(mod).AnalyzeAllContext(ctx)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v should wrap ErrCanceled and DeadlineExceeded", err)
	}
}

// TestConfigValidate: invalid configurations surface as errors from the
// analysis entry points instead of being clamped or panicking.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"negative depth", Config{Depth: -1}},
		{"negative parallelism", Config{Parallelism: -2, Strategy: StrategyParallel}},
		{"negative budget", Config{MaxSteps: -5}},
		{"bad table", Config{Table: TableKind(99)}},
		{"bad strategy", Config{Strategy: Strategy(99)}},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted %+v", c.name, c.cfg)
		}
	}
	_, mod := buildMod(t, "p(a).\n")
	cfg := DefaultConfig()
	cfg.Depth = -3
	if _, err := NewWith(mod, cfg).AnalyzeMain(); err == nil {
		t.Fatal("AnalyzeMain accepted a negative depth")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}
