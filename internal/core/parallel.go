package core

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"awam/internal/domain"
	"awam/internal/rt"
)

// This file implements StrategyParallel: the worklist fixpoint of
// worklist.go run by N worker goroutines over a lock-striped extension
// table (ShardedTable). Each worker owns a private Analyzer — its own
// heap, X registers, step counter and warnings — and pulls table entries
// from a shared queue. Soundness of any interleaving rests on the same
// property the sequential strategies use: success-pattern updates are
// monotone lub-merges on a finite (depth-k-widened) lattice, so chaotic
// iteration converges to the same least fixpoint regardless of schedule
// (the confluence argument of Le Charlier-style dependency-driven
// iteration). Determinism of the *reported* table is then restored by
// the finalize pass (finalize.go).
//
// Two scheduling differences from the sequential worklist:
//
//   - Workers never explore a callee inline. solvePar registers the
//     dependency edge, returns the callee's current summary (bottom on
//     first sight) and lets the queue schedule the callee — inline
//     depth-first exploration would serialize the frontier.
//   - A call whose summary is still bottom does not abort the clause
//     during the fixpoint phase. The worker keeps executing to discover
//     the calling patterns of later goals (speculative discovery); the
//     clause's own success is discarded. Entries discovered under
//     under-instantiated arguments are explored like any other and
//     simply go unused by finalize.

// parState is the shared state of one parallel analysis. The table is
// map-sharded by default; pre-interning specialization swaps in the
// dense ID-indexed variant (dense.go), same contract.
type parState struct {
	table parTable

	mu    sync.Mutex
	cond  *sync.Cond
	queue []*Entry
	idle  int
	n     int // worker count
	done  bool
	err   error
}

func newParState(n int) *parState {
	ps := &parState{table: NewShardedTable(), n: n}
	ps.cond = sync.NewCond(&ps.mu)
	return ps
}

// enqueue schedules e unless it is already queued, reporting whether it
// was newly added. Callers must not hold any entry mutex ordering issue:
// parState.mu is always the innermost lock (never held while taking an
// Entry.mu or a shard mutex).
func (ps *parState) enqueue(e *Entry) bool {
	added := false
	ps.mu.Lock()
	if !e.inQueue && !ps.done {
		e.inQueue = true
		ps.queue = append(ps.queue, e)
		ps.cond.Signal()
		added = true
	}
	ps.mu.Unlock()
	return added
}

// enqueueAll schedules every entry not already queued, compacting es in
// place and returning the subset actually added (the caller owns es, so
// the observability layer gets the real insertion set without an
// allocation).
func (ps *parState) enqueueAll(es []*Entry) []*Entry {
	if len(es) == 0 {
		return nil
	}
	k := 0
	ps.mu.Lock()
	for _, e := range es {
		if !e.inQueue && !ps.done {
			e.inQueue = true
			ps.queue = append(ps.queue, e)
			es[k] = e
			k++
		}
	}
	ps.cond.Broadcast()
	ps.mu.Unlock()
	return es[:k]
}

// next blocks until work is available, returning nil at termination.
// Termination is the idle-worker barrier: the queue is empty and every
// worker is parked here, so no one can produce more work.
func (ps *parState) next() *Entry {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for {
		if ps.done {
			return nil
		}
		if len(ps.queue) > 0 {
			e := ps.queue[0]
			ps.queue = ps.queue[1:]
			// Cleared at pop, not at completion: growth that lands while
			// the entry is being explored must be able to re-enqueue it.
			e.inQueue = false
			return e
		}
		ps.idle++
		if ps.idle == ps.n {
			ps.done = true
			ps.cond.Broadcast()
			return nil
		}
		ps.cond.Wait()
		ps.idle--
	}
}

// queuedAny reports whether any of ents is currently enqueued (inQueue
// is guarded by the queue lock). Used by the deferral heuristic only —
// a stale answer is harmless.
func (ps *parState) queuedAny(ents []*Entry) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, e := range ents {
		if e.inQueue {
			return true
		}
	}
	return false
}

// fail records the first worker error and wakes everyone to drain out.
func (ps *parState) fail(err error) {
	ps.mu.Lock()
	if ps.err == nil {
		ps.err = err
	}
	ps.done = true
	ps.cond.Broadcast()
	ps.mu.Unlock()
}

// analyzeParallel is the StrategyParallel driver, the counterpart of
// analyze() and analyzeWorklist().
func (a *Analyzer) analyzeParallel(entries []*domain.Pattern) (*Result, error) {
	n := a.cfg.Parallelism
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	a.err = nil
	a.Steps = 0
	// One budget for the whole analysis: every worker draws chunked
	// allowances from this shared counter (observe.go), so Config.MaxSteps
	// bounds the total work regardless of worker count.
	*a.budget = a.cfg.MaxSteps
	a.allow = 0
	ps := newParState(n)
	if a.specPre {
		ps.table = NewDenseShardedTable()
	}
	execStart := time.Now()

	seeds := make([]*domain.Pattern, len(entries))
	for i, cp := range entries {
		// The interner's canonical rep (Key precomputed, safe to publish).
		c := a.in.Pattern(a.intern(cp.Canonical()))
		seeds[i] = c
		if e, created := ps.table.GetOrAdd(a.intern(c), c); created {
			ps.enqueue(e)
		}
	}

	workers := make([]*Analyzer, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &Analyzer{
			mod: a.mod, tab: a.tab, cfg: a.cfg, ctx: a.ctx,
			par: ps, h: rt.NewHeap(), x: make([]rt.Cell, 16),
			met: newMetricsShard(), tr: a.tr, budget: a.budget,
			// The interner is shared (concurrent, leaf-level lock); the
			// memo is per-worker and folded in after the barrier, and so
			// are the specialized engine's caches and pools (execspec.go).
			in: a.in, memo: domain.NewMemo(),
			// Workers run the fused flattened streams but NOT the
			// pre-interning machinery: its caches (materialize plans,
			// clause-selection memos, static call sites) are per-engine
			// state that every worker would rebuild privately, and the
			// duplicated memory traffic measurably outweighs the saved
			// interner round-trips under the parallel schedule. The
			// sequential finalize replay (run on the parent analyzer,
			// which keeps specPre) still gets the full benefit.
			spec: a.spec, specOn: a.specOn, specPre: false,
		}
		workers[i] = w
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w.runWorker(id)
		}(i)
	}
	wg.Wait()

	// Aggregate private worker state. Warnings are deduped and sorted:
	// which worker saw a warning first is schedule-dependent.
	explorations := 0
	warned := make(map[string]bool, len(a.Warnings))
	for _, w := range a.Warnings {
		warned[w] = true
	}
	for _, w := range workers {
		a.Steps += w.Steps
		explorations += w.Iterations
		a.met.merge(w.met)
		a.memo.Absorb(w.memo)
		for _, msg := range w.Warnings {
			if !warned[msg] {
				warned[msg] = true
				a.Warnings = append(a.Warnings, msg)
			}
		}
	}
	sort.Strings(a.Warnings)
	a.Iterations = explorations
	execDur := time.Since(execStart)
	if ps.err != nil {
		return nil, ps.err
	}

	fixSteps := a.Steps
	finStart := time.Now()
	finEntries, err := a.finalize(seeds, ps.table)
	if err != nil {
		return nil, err
	}
	return &Result{
		Tab:        a.tab,
		Entries:    finEntries,
		Steps:      fixSteps,
		Iterations: a.Iterations,
		TableSize:  len(finEntries),
		Warnings:   a.Warnings,
		Metrics:    a.buildMetrics(workers, execDur, time.Since(finStart)),
	}, nil
}

// runWorker is one worker's loop: pull an entry, explore it on a fresh
// private heap, repeat until the idle barrier closes the queue.
func (w *Analyzer) runWorker(id int) {
	ps := w.par
	if w.tr != nil {
		w.tr.Worker(id, true)
		defer w.tr.Worker(id, false)
	}
	for {
		// Refund the unused step allowance before possibly parking: a
		// blocked worker must not hold budget the busy ones could use.
		w.refundSteps()
		t0 := time.Now()
		e := ps.next()
		w.queueWait += time.Since(t0)
		if e == nil {
			w.attrClose()
			return
		}
		if w.freshReads(e) {
			// Every summary the entry read during its last completed
			// exploration is still current, so re-running its clauses
			// would retrace the identical path and merge identical
			// successes — skip it. This prunes the re-enqueues issued by
			// growth the in-flight exploration had already observed.
			continue
		}
		if w.deferExplore(e) {
			// Some callee this entry reads is itself queued (its summary
			// is likely still climbing): rotate the entry to the back so
			// the callee quiesces first and the caller re-runs once on
			// settled summaries instead of once per growth rung. The
			// per-entry cap bounds rotations, so dependency cycles still
			// make progress; any schedule converges to the same table
			// (DESIGN §3.10), only the wasted-work profile differs.
			ps.enqueue(e)
			continue
		}
		// Iterate the entry to a local fixpoint: a self-recursive entry
		// whose exploration grew a summary it read (typically its own)
		// would otherwise round-trip through the queue once per ladder
		// rung, exposing every intermediate summary to its callers. The
		// loop is bounded by the finite widened domain — each rerun only
		// happens when some read summary strictly grew.
		for {
			w.h.Reset()
			w.Iterations++ // per-worker exploration count
			w.explorePar(e)
			if w.err != nil {
				ps.fail(w.err)
				w.attrClose()
				return
			}
			if w.freshReads(e) {
				break
			}
		}
	}
}

// solvePar is the reinterpreted call under the parallel strategy: ensure
// the entry exists (scheduling it on first sight), record the dependency
// edge, and return the current summary. Recording the edge and reading
// the summary under the same entry lock closes the missed-update race: a
// merge that lands after our read sees our edge and re-enqueues us; a
// merge before it is the value we read.
func (a *Analyzer) solvePar(cp *domain.Pattern) *domain.Pattern {
	if a.err != nil {
		return nil
	}
	succ, _ := a.solveParID(cp, a.intern(cp))
	return succ
}

// solveParID is solvePar's core over a pre-interned calling pattern;
// the summary and its ID are snapshotted under the same entry lock.
func (a *Analyzer) solveParID(cp *domain.Pattern, id domain.PatternID) (*domain.Pattern, domain.PatternID) {
	if a.err != nil {
		return nil, domain.BottomID
	}
	t0, timed := a.met.sampleTable()
	e, created := a.par.table.GetOrAdd(id, a.in.Pattern(id))
	a.met.doneTable(t0, timed)
	if created {
		a.met.misses++
		a.met.inserts++
		if a.tr != nil {
			a.tr.Table(cp.Fn, TableMiss)
			a.tr.Table(cp.Fn, TableInsert)
		}
		a.par.enqueue(e)
	} else {
		a.met.hits++
		if a.tr != nil {
			a.tr.Table(cp.Fn, TableHit)
		}
	}
	e.mu.Lock()
	e.Lookups++
	if a.parCur != nil {
		if e.deps == nil {
			e.deps = make(map[domain.PatternID]*Entry)
		}
		// Self-edges included: a recursive clause that read its own
		// in-flight summary must rerun when the summary grows.
		e.deps[a.parCur.ID] = a.parCur
	}
	succ, succID := e.Succ, e.succID
	e.mu.Unlock()
	if a.parCur != nil {
		a.recordRead(e, succID)
	}
	return succ, succID
}

// recordRead notes the first summary ID read from callee e during the
// in-flight exploration (later reads of the same callee may observe
// newer values; keeping the first is what makes the skip check in
// runWorker conservative). Consult sets are small, so a linear scan
// beats a map.
func (a *Analyzer) recordRead(e *Entry, succID domain.PatternID) {
	for _, r := range a.parReadEnts {
		if r == e {
			return
		}
	}
	a.parReadEnts = append(a.parReadEnts, e)
	a.parReadVals = append(a.parReadVals, succID)
}

// explorePar runs the entry's clauses once, merging clause successes
// into the shared entry and publishing the consulted-read snapshot the
// skip check in runWorker compares against.
func (w *Analyzer) explorePar(e *Entry) {
	w.parCur = e
	w.parReadEnts = w.parReadEnts[:0]
	w.parReadVals = w.parReadVals[:0]
	w.met.predRuns[e.CP.Fn]++
	prevFn := w.attrSwitch(e.CP.Fn)
	defer func() {
		w.attrRestore(prevFn)
		w.parCur = nil
		if w.err == nil {
			ents := append([]*Entry(nil), w.parReadEnts...)
			vals := append([]domain.PatternID(nil), w.parReadVals...)
			e.mu.Lock()
			e.readEnts, e.readVals = ents, vals
			e.explored = true
			e.deferCount = 0
			e.mu.Unlock()
		}
	}()
	proc := w.mod.Proc(e.CP.Fn)
	if proc == nil {
		return
	}
	for _, clauseAddr := range w.selectClausesEntry(proc, e.CP, e.ID) {
		mark := w.h.Mark()
		argAddrs := w.materializeEntry(e.CP, e.ID)
		w.ensureX(e.CP.Fn.Arity)
		for i, addr := range argAddrs {
			w.x[i+1] = rt.MkRef(addr)
		}
		w.specFail = false
		ok := w.run(clauseAddr)
		if w.err != nil {
			return
		}
		if ok {
			sp := w.abstractArgs(e.CP.Fn, argAddrs)
			w.mergeSucc(e, sp)
		}
		w.h.Undo(mark)
	}
}

// freshReads reports whether e has a completed exploration whose every
// recorded callee read is still that callee's current summary. The
// snapshot slices are immutable once published, so they are copied out
// under e.mu and the per-callee checks take each callee's own lock —
// entry locks are never nested.
func (w *Analyzer) freshReads(e *Entry) bool {
	e.mu.Lock()
	explored := e.explored
	ents, vals := e.readEnts, e.readVals
	e.mu.Unlock()
	if !explored {
		return false
	}
	for i, d := range ents {
		d.mu.Lock()
		cur := d.succID
		d.mu.Unlock()
		if cur != vals[i] {
			return false
		}
	}
	return true
}

// deferCap bounds per-entry queue rotations between explorations.
const deferCap = 8

// deferExplore implements the quiesce-callees-first heuristic: an
// already-explored entry whose recorded callee reads include one still
// sitting in the queue is rotated (up to deferCap times) instead of
// re-run.
func (w *Analyzer) deferExplore(e *Entry) bool {
	e.mu.Lock()
	explored, count := e.explored, e.deferCount
	ents := e.readEnts
	e.mu.Unlock()
	if !explored || count >= deferCap || len(ents) == 0 {
		return false
	}
	if !w.par.queuedAny(ents) {
		return false
	}
	e.mu.Lock()
	e.deferCount++
	e.mu.Unlock()
	return true
}

// mergeSucc lubs a clause success into the shared entry — the monotone
// update at the heart of the confluence argument. On growth it snapshots
// the dependents under the entry lock and enqueues them after releasing
// it (parState.mu is never taken while holding an entry mutex).
func (w *Analyzer) mergeSucc(e *Entry, sp *domain.Pattern) {
	// Intern outside the entry lock where possible; the nested interner
	// acquisitions below are safe regardless (leaf-level lock).
	spID := w.intern(sp)
	var deps []*Entry
	e.mu.Lock()
	if e.succID != domain.BottomID && w.leqSumm(spID, e.succID) {
		e.mu.Unlock()
		return
	}
	nextID, next := w.mergeSumm(e.succID, spID)
	if nextID == e.succID {
		e.mu.Unlock()
		return
	}
	e.Succ = next // interner rep: Key precomputed, safe to publish
	e.succID = nextID
	e.Updates++
	if len(e.deps) > 0 {
		deps = make([]*Entry, 0, len(e.deps))
		for _, d := range e.deps {
			deps = append(deps, d)
		}
	}
	e.mu.Unlock()
	w.met.updates++
	if w.tr != nil {
		w.tr.Table(e.CP.Fn, TableUpdate)
	}
	added := w.par.enqueueAll(deps)
	w.met.enqueues += int64(len(added))
	if w.tr != nil {
		for _, d := range added {
			w.tr.Enqueue(d.CP.Fn)
		}
	}
}
