package core

import (
	"sync"

	"awam/internal/domain"
)

// This file implements the dense extension tables behind the
// specialization stage's pre-interning option (Config.Spec with
// Options.PreIntern): interned PatternIDs are dense small integers, so
// the table becomes an ID-indexed slice — a Get is one bounds check and
// one load, versus the paper-faithful LinearTable's scan (44% of
// fixpoint time on the wide workloads) or a map probe. Semantics are
// identical to the other tables: same Get/Add/GetOrAdd contracts, same
// insertion-order Entries, so results and reported metrics don't move.

// DenseTable is a PatternID-indexed extension table for the sequential
// strategies.
type DenseTable struct {
	byID  []*Entry
	order []*Entry
}

// NewDenseTable returns an empty dense table.
func NewDenseTable() *DenseTable { return &DenseTable{} }

// Get returns the entry for id, or nil.
func (t *DenseTable) Get(id domain.PatternID) *Entry {
	if int(id) < len(t.byID) {
		return t.byID[id]
	}
	return nil
}

// Add inserts a fresh entry (its ID must not be present).
func (t *DenseTable) Add(e *Entry) {
	for int(e.ID) >= len(t.byID) {
		t.byID = append(t.byID, nil)
	}
	t.byID[e.ID] = e
	t.order = append(t.order, e)
}

// Entries returns entries in insertion order.
func (t *DenseTable) Entries() []*Entry { return t.order }

// Len returns the entry count.
func (t *DenseTable) Len() int { return len(t.order) }

// parTable is the extension-table contract of the parallel strategy;
// ShardedTable (maps) and DenseShardedTable (ID-indexed slots) both
// satisfy it, and both satisfy summaryOracle for the finalize pass.
type parTable interface {
	Get(id domain.PatternID) *Entry
	GetOrAdd(id domain.PatternID, cp *domain.Pattern) (*Entry, bool)
	Len() int
}

type denseShard struct {
	mu    sync.Mutex
	slots []*Entry
}

// DenseShardedTable is the lock-striped dense table: an ID stripes by
// its low bits (shard = id & 63) and indexes the shard's slot slice by
// the high bits (slot = id >> 6), so dense IDs spread round-robin and
// each shard's slice stays compact.
type DenseShardedTable struct {
	shards [numShards]denseShard
}

// NewDenseShardedTable returns an empty dense sharded table.
func NewDenseShardedTable() *DenseShardedTable { return &DenseShardedTable{} }

// Get returns the entry for id, or nil.
func (t *DenseShardedTable) Get(id domain.PatternID) *Entry {
	s := &t.shards[int(id)&(numShards-1)]
	slot := int(id) >> 6
	s.mu.Lock()
	var e *Entry
	if slot < len(s.slots) {
		e = s.slots[slot]
	}
	s.mu.Unlock()
	return e
}

// GetOrAdd returns the entry for the interned calling pattern, creating
// it when absent, and reports whether it was created. cp must be the
// interner's canonical representative for id.
func (t *DenseShardedTable) GetOrAdd(id domain.PatternID, cp *domain.Pattern) (*Entry, bool) {
	s := &t.shards[int(id)&(numShards-1)]
	slot := int(id) >> 6
	s.mu.Lock()
	for slot >= len(s.slots) {
		s.slots = append(s.slots, nil)
	}
	if e := s.slots[slot]; e != nil {
		s.mu.Unlock()
		return e, false
	}
	e := &Entry{ID: id, CP: cp}
	s.slots[slot] = e
	s.mu.Unlock()
	return e, true
}

// Len returns the total entry count across shards; exact only when no
// workers are running.
func (t *DenseShardedTable) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, e := range s.slots {
			if e != nil {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}
