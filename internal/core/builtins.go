package core

import (
	"fmt"

	"awam/internal/rt"
	"awam/internal/wam"
)

// absBuiltin gives each inline builtin its abstract semantics. Success
// narrowing is sound here because a success pattern only describes the
// executions in which the builtin succeeded: X < Y can only succeed with
// both sides ground, is/2 always binds its left side to an integer, and
// so on. Tests (var/1, atom/1, ...) fail only when the argument's type
// proves they must.
func (a *Analyzer) absBuiltin(id wam.BuiltinID, arity int) bool {
	a.ensureX(arity)
	switch id {
	case wam.BITrue, wam.BIWrite, wam.BINl, wam.BIHalt:
		return true
	case wam.BIFail:
		return false
	case wam.BIIs:
		// Result is an integer; the expression must be ground to
		// evaluate.
		intCell := a.h.Push(rt.Cell{Tag: rt.AInt})
		if !a.absUnify(a.x[1], rt.MkRef(intCell)) {
			return false
		}
		return a.narrowGround(a.x[2])
	case wam.BILt, wam.BILe, wam.BIGt, wam.BIGe, wam.BIArithEq, wam.BIArithNe:
		return a.narrowGround(a.x[1]) && a.narrowGround(a.x[2])
	case wam.BIUnify:
		return a.absUnify(a.x[1], a.x[2])
	case wam.BINotUnify:
		// Succeeds without bindings; we cannot conclude anything about
		// the arguments beyond their current types.
		return true
	case wam.BIEq:
		// ==/2 succeeds only when the arguments are identical, which
		// implies they unify; narrowing both sides is sound.
		return a.absUnify(a.x[1], a.x[2])
	case wam.BINotEq:
		return true
	case wam.BIVar:
		c, _ := a.h.ResolveCell(a.x[1])
		switch c.Tag {
		case rt.Ref, rt.AVar, rt.AAny:
			return true
		}
		return false
	case wam.BINonvar:
		c, addr := a.h.ResolveCell(a.x[1])
		switch c.Tag {
		case rt.Ref, rt.AVar:
			return false
		case rt.AAny:
			a.h.Bind(addr, rt.Cell{Tag: rt.ANV})
			return true
		}
		return true
	case wam.BIAtom:
		return a.narrowTo(a.x[1], rt.AAtom)
	case wam.BIInteger:
		return a.narrowTo(a.x[1], rt.AInt)
	case wam.BIAtomic:
		return a.narrowTo(a.x[1], rt.AConst)
	case wam.BIFunctor:
		// functor(T, N, A): on success T is nonvar, N is a constant and
		// A an integer.
		nv := a.h.Push(rt.Cell{Tag: rt.ANV})
		if !a.absUnify(a.x[1], rt.MkRef(nv)) {
			return false
		}
		cst := a.h.Push(rt.Cell{Tag: rt.AConst})
		if !a.absUnify(a.x[2], rt.MkRef(cst)) {
			return false
		}
		i := a.h.Push(rt.Cell{Tag: rt.AInt})
		return a.absUnify(a.x[3], rt.MkRef(i))
	case wam.BIArg:
		if !a.narrowTo(a.x[1], rt.AInt) {
			return false
		}
		nv := a.h.Push(rt.Cell{Tag: rt.ANV})
		if !a.absUnify(a.x[2], rt.MkRef(nv)) {
			return false
		}
		// The extracted argument has unknown type: widen a fresh result.
		c, addr := a.h.ResolveCell(a.x[3])
		if c.Tag == rt.Ref || c.Tag == rt.AVar {
			a.h.Bind(addr, rt.Cell{Tag: rt.AAny})
		}
		return true
	case wam.BICompare:
		// The order relation is one of the atoms <, =, >.
		at := a.h.Push(rt.Cell{Tag: rt.AAtom})
		return a.absUnify(a.x[1], rt.MkRef(at))
	case wam.BITermLt, wam.BITermLe, wam.BITermGt, wam.BITermGe:
		// Pure tests: no bindings, may succeed for any inputs.
		return true
	case wam.BILength:
		// On success the first argument is a proper list and the second
		// an integer.
		elem := a.h.Push(rt.Cell{Tag: rt.AAny})
		lst := a.h.Push(rt.Cell{Tag: rt.AList, A: elem})
		if !a.absUnify(a.x[1], rt.MkRef(lst)) {
			return false
		}
		n := a.h.Push(rt.Cell{Tag: rt.AInt})
		return a.absUnify(a.x[2], rt.MkRef(n))
	case wam.BIAssert, wam.BIRetract:
		// The analysis has no model of the dynamic database: asserts
		// succeed with no effect and calls to asserted predicates look
		// undefined (bottom). Warn once — results for programs that call
		// predicates they assert are not trustworthy.
		a.warnOnce("program uses assert/retract; dynamic predicates are not modeled by the analysis")
		return true
	default:
		a.fail(fmt.Errorf("core: builtin %s has no abstract semantics", wam.BuiltinName(id)))
		return false
	}
}

// narrowGround requires the cell to admit ground instances, narrowing it
// to those (arithmetic success implies groundness).
func (a *Analyzer) narrowGround(x rt.Cell) bool {
	g := a.h.Push(rt.Cell{Tag: rt.AGround})
	return a.absUnify(x, rt.MkRef(g))
}

// narrowTo implements type-test builtins: fail when the argument's type
// excludes the target class, otherwise succeed and narrow open cells.
// A (possibly unbound) variable argument fails: type tests do not
// instantiate, so success requires the argument to already be bound.
func (a *Analyzer) narrowTo(x rt.Cell, target rt.Tag) bool {
	c, addr := a.h.ResolveCell(x)
	switch c.Tag {
	case rt.Ref, rt.AVar:
		return false
	case rt.Con:
		if target == rt.AInt {
			return false
		}
		return true
	case rt.Int:
		return target == rt.AInt || target == rt.AConst
	case rt.Lis, rt.Str:
		return false
	case rt.AAny, rt.ANV, rt.AGround, rt.AConst:
		// May be in the class: succeed and narrow. (const narrows within
		// itself for atom/integer targets.)
		a.h.Bind(addr, rt.Cell{Tag: target})
		return true
	case rt.AAtom:
		return target == rt.AAtom || target == rt.AConst
	case rt.AInt:
		return target == rt.AInt || target == rt.AConst
	case rt.AList:
		// Only [] is atomic among list instances.
		if target == rt.AAtom || target == rt.AConst {
			a.h.Bind(addr, rt.MkCon(a.tab.Nil))
			return true
		}
		return false
	}
	return false
}
