package core

import (
	"testing"
)

// These tests pin the forward analysis's deliberately coarse treatment
// of negation as failure. \+ G expands to
//
//	'$notN'(V...) :- G, !, fail.
//	'$notN'(V...).
//
// so the fact clause makes the auxiliary's success pattern the identity
// on its call pattern: \+ G never binds the shared variables and never
// refutes success, regardless of what G does. This matches the standard
// sound treatment of negation in abstract interpretation of logic
// programs (Lu's analyses of normal programs make the same choice): a
// sound strengthening would need proofs about G's *failure*, which a
// success-pattern domain cannot express. The backward analysis relies
// on the same contract from the other side — it demands nothing from a
// negated goal (see internal/backward and DESIGN §3.15) — so a change
// here must revisit both directions together.

// TestNegationIdentity: \+ G passes the call pattern through untouched —
// no bindings escape, whatever G would do to its arguments.
func TestNegationIdentity(t *testing.T) {
	tab, mod := buildMod(t, `
p(X) :- \+ bindit(X).
bindit(1).
`)
	res := analyzeFrom(t, tab, mod, "p(any)")
	if got := successString(t, res, tab, tab.Func("p", 1)); got != "p(any)" {
		t.Errorf("success = %s, want p(any): \\+ must not export bindings", got)
	}
}

// TestNegationKeepsPriorBindings: bindings made before \+ survive it —
// identity means identity, not top.
func TestNegationKeepsPriorBindings(t *testing.T) {
	tab, mod := buildMod(t, `
p(X) :- X = 1, \+ q(X).
q(2).
`)
	res := analyzeFrom(t, tab, mod, "p(any)")
	if got := successString(t, res, tab, tab.Func("p", 1)); got != "p(int)" {
		t.Errorf("success = %s, want p(int)", got)
	}
}

// TestNegationNeverRefutes: the coarse cases, one per row. Forward
// analysis keeps \+ G satisfiable even when G certainly succeeds (so
// \+ G certainly fails) and when G certainly fails (so \+ G certainly
// succeeds) — both collapse to the same identity transfer.
func TestNegationNeverRefutes(t *testing.T) {
	cases := []struct {
		name, src, entry, want string
		arity                  int
	}{
		{
			// q(a) is a fact, so \+ q(a) concretely fails; analysis keeps p.
			name:  "negated_goal_certainly_succeeds",
			src:   "p :- \\+ q(a).\nq(a).",
			entry: "p",
			want:  "p",
		},
		{
			// q has no clauses for b, so \+ q(b) concretely succeeds.
			name:  "negated_goal_certainly_fails",
			src:   "p :- \\+ q(b).\nq(a).",
			entry: "p",
			want:  "p",
		},
		{
			// Double negation: still the identity, still satisfiable.
			name:  "double_negation",
			src:   "p(X) :- \\+ \\+ bindit(X).\nbindit(1).",
			entry: "p(any)",
			want:  "p(any)",
			arity: 1,
		},
		{
			// A negated conjunction shares several variables; none of them
			// picks up the conjunction's internal bindings.
			name:  "negated_conjunction",
			src:   "p(X, Y) :- \\+ (q(X), r(Y)).\nq(1).\nr(a).",
			entry: "p(any, any)",
			want:  "p(any, any)",
			arity: 2,
		},
		{
			// Negation over an undefined predicate: \+ missing(X) concretely
			// errors or succeeds depending on the system; the analysis stays
			// at the identity rather than refuting.
			name:  "negated_undefined",
			src:   "p(X) :- \\+ missing(X).",
			entry: "p(any)",
			want:  "p(any)",
			arity: 1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tab, mod := buildMod(t, c.src)
			res := analyzeFrom(t, tab, mod, c.entry)
			got := successString(t, res, tab, tab.Func("p", c.arity))
			if got != c.want {
				t.Errorf("success = %s, want %s", got, c.want)
			}
		})
	}
}
