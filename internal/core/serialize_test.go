package core

import (
	"errors"
	"strings"
	"testing"

	"awam/internal/bench"
	"awam/internal/term"
)

// TestMarshalRoundTrip: analysis summaries survive save/load exactly, on
// both benchmark suites.
func TestMarshalRoundTrip(t *testing.T) {
	for _, p := range bench.AllPrograms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tab, mod := buildMod(t, p.Source)
			res, err := New(mod).AnalyzeMain()
			if err != nil {
				t.Fatal(err)
			}
			text := res.Marshal()
			back, err := Unmarshal(tab, text)
			if err != nil {
				t.Fatalf("unmarshal: %v\n%s", err, text)
			}
			if len(back.Entries) != len(res.Entries) {
				t.Fatalf("entry counts differ: %d vs %d", len(back.Entries), len(res.Entries))
			}
			for i, e := range res.Entries {
				be := back.Entries[i]
				if e.Key() != be.Key() {
					t.Fatalf("entry %d key differs:\n  %s\n  %s",
						i, e.CP.String(tab), be.CP.String(tab))
				}
				if !e.Succ.Equal(be.Succ) {
					t.Fatalf("entry %d success differs: %s vs %s",
						i, e.Succ.String(tab), be.Succ.String(tab))
				}
			}
		})
	}
}

// TestMarshalIntoFreshTab: summaries load into a different atom table
// (the separate-compilation scenario).
func TestMarshalIntoFreshTab(t *testing.T) {
	p, _ := bench.ByName("qsort")
	_, mod := buildMod(t, p.Source)
	res, err := New(mod).AnalyzeMain()
	if err != nil {
		t.Fatal(err)
	}
	fresh := term.NewTab()
	back, err := Unmarshal(fresh, res.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	// The qsort summary is findable by name in the fresh table.
	succ := back.SuccessFor(fresh.Func("qsort", 3))
	if succ == nil {
		t.Fatal("qsort summary lost across tables")
	}
	if got := succ.String(fresh); !strings.HasPrefix(got, "qsort(") {
		t.Fatalf("reloaded summary = %s", got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string // required substring of the diagnosis
	}{
		{"not a summary", "not a summary", "not an awam-analysis v1 summary"},
		{"empty input", "", "not an awam-analysis v1 summary"},
		{"truncated header", "awam-analy", "not an awam-analysis v1 summary"},
		{"wrong version", "awam-analysis 2\n", "not an awam-analysis v1 summary"},
		{"succ before call", "awam-analysis 1\nsucc p(any)\n", "succ before call"},
		{"unrecognized line", "awam-analysis 1\nwhatever\n", "unrecognized line"},
		{"bad call pattern", "awam-analysis 1\ncall 3\n", ""},
		{"bad succ pattern", "awam-analysis 1\ncall p(g)\nsucc ((\n", ""},
		{"call without succ", "awam-analysis 1\ncall p(g)\ncall q(g)\n", "call without preceding succ"},
		{"truncated trailing call", "awam-analysis 1\ncall p(g)\nsucc p(g)\ncall q(g)\n", "has no succ line"},
		{"duplicate call", "awam-analysis 1\ncall p(g)\nsucc bottom\ncall p(g)\nsucc bottom\n", "duplicate call"},
		{"duplicate call modulo sharing",
			"awam-analysis 1\ncall p(sh(1, var), sh(1, var))\nsucc bottom\ncall p(sh(7, var), sh(7, var))\nsucc bottom\n",
			"duplicate call"},
		{"bad stats", "awam-analysis 1\nstats nonsense\n", "bad stats"},
		{"oversized line", "awam-analysis 1\ncall p(" + strings.Repeat("f(", 600_000) + "\n", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Unmarshal(term.NewTab(), tc.src)
			if err == nil {
				t.Fatalf("Unmarshal(%.60q): expected error", tc.src)
			}
			if !errors.Is(err, ErrBadSummary) {
				t.Fatalf("error does not wrap ErrBadSummary: %v", err)
			}
			if tc.frag != "" && !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("diagnosis %q missing %q", err, tc.frag)
			}
		})
	}
}

// TestUnmarshalAcceptsLegacyStats: the pre-hardening stats line still
// parses and fills the run statistics.
func TestUnmarshalAcceptsLegacyStats(t *testing.T) {
	res, err := Unmarshal(term.NewTab(),
		"awam-analysis 1\nstats steps=42 iterations=3\ncall p(g)\nsucc p(g)\n")
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 42 || res.Iterations != 3 {
		t.Fatalf("stats = %d/%d, want 42/3", res.Steps, res.Iterations)
	}
}

func TestCallGraphDot(t *testing.T) {
	tab, mod := buildMod(t, `
main :- a, b.
a :- helper(1).
b :- fail.
helper(_).
orphan.
`)
	res, err := New(mod).AnalyzeMain()
	if err != nil {
		t.Fatal(err)
	}
	dot := CallGraphDot(mod, res)
	for _, want := range []string{
		`"main/0" -> "a/0"`,
		`"a/0" -> "helper/1"`,
		`"main/0" -> "b/0"`,
		`"orphan/0" [label="orphan/0", style=dashed, color=gray]`, // unreached
		`"b/0" [label="b/0", color=red]`,                          // never succeeds
		"digraph callgraph",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	_ = tab
}

func TestStaticCallEdgesBenchmarks(t *testing.T) {
	p, _ := bench.ByName("qsort")
	tab, mod := buildMod(t, p.Source)
	edges := StaticCallEdges(mod)
	has := func(from, to string, a1, a2 int) bool {
		return edges[[2]term.Functor{tab.Func(from, a1), tab.Func(to, a2)}]
	}
	if !has("main", "qsort", 0, 3) || !has("qsort", "partition", 3, 4) || !has("qsort", "qsort", 3, 3) {
		t.Fatalf("expected edges missing: %v", edges)
	}
}

func TestDeterminacy(t *testing.T) {
	tab, mod := buildMod(t, `
main :- kind(7, K), use(K), grab([1,2], V), use(V).
kind(0, zero).
kind(N, pos) :- N > 0.
kind(f(_), struct).
grab([X|_], X).
grab([], none).
use(_).
`)
	a := New(mod)
	res, err := a.AnalyzeMain()
	if err != nil {
		t.Fatal(err)
	}
	dets := a.Determinacy(res)
	byPred := make(map[string]DetEntry)
	for _, d := range dets {
		byPred[tab.FuncString(d.CP.CP.Fn)] = d
	}
	// kind(int, var): the struct clause is excluded by indexing, but the
	// 0 and N clauses both may match an unknown integer.
	if d := byPred["kind/2"]; d.Det() {
		t.Fatalf("kind(int, var) should be nondet, got %+v", d)
	}
	// grab(cons, var): only the cons clause matches.
	if d := byPred["grab/2"]; !d.Det() {
		t.Fatalf("grab([int|...], var) should be det, got %+v", d)
	}
	if d := byPred["use/1"]; !d.Det() {
		t.Fatalf("use/1 should be det, got %+v", d)
	}
	rep := DeterminacyReport(tab, dets)
	if !strings.Contains(rep, "det") || !strings.Contains(rep, "nondet") {
		t.Fatalf("report incomplete:\n%s", rep)
	}
}

// TestDeterminacyOnBenchmarks is a smoke check: determinate predicates
// must exist in deterministic programs (tak's clauses are guarded).
func TestDeterminacyOnBenchmarks(t *testing.T) {
	for _, name := range []string{"tak", "qsort", "nreverse"} {
		p, _ := bench.ByName(name)
		_, mod := buildMod(t, p.Source)
		a := New(mod)
		res, err := a.AnalyzeMain()
		if err != nil {
			t.Fatal(err)
		}
		dets := a.Determinacy(res)
		if len(dets) != len(res.Entries) {
			t.Fatalf("%s: %d det entries for %d table entries", name, len(dets), len(res.Entries))
		}
		anyDet := false
		for _, d := range dets {
			if d.Det() && d.Clauses > 0 {
				anyDet = true
			}
		}
		if !anyDet {
			t.Fatalf("%s: expected at least one determinate call class", name)
		}
	}
}
