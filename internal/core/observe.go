package core

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"awam/internal/specialize"
	"awam/internal/term"
	"awam/internal/wam"
)

// This file implements the observability layer of the analyzer: an
// opt-in Tracer callback interface (zero overhead when nil — the hot
// loop guards every callback behind a single pointer test) and an
// always-on Metrics aggregate built from per-worker counter shards.
//
// Design rules, enforced throughout internal/core:
//
//   - Counters live in a metricsShard owned by exactly one goroutine
//     (each parallel worker is a private Analyzer with its own shard);
//     shards are merged only after the worker WaitGroup barrier, so
//     metric collection is race-free without atomics in the hot loop.
//   - Only the shared step *budget* is atomic (see refillSteps), and it
//     is touched once per budgetChunk instructions, not per step.
//   - The finalize replay and the determinacy pass are not observable:
//     their instructions are charged to a scratch shard and their
//     events suppressed, so Metrics totals stay equal to Result.Steps
//     (the fixpoint-phase Exec statistic) under every strategy.

// Tracer receives analysis events. Install one with Config.Tracer; a
// nil tracer costs a single pointer test per abstract instruction.
//
// Under StrategyParallel callbacks arrive concurrently from every
// worker goroutine; implementations must be safe for concurrent use.
type Tracer interface {
	// Instr fires before each abstract instruction, with the predicate
	// whose clause is executing.
	Instr(fn term.Functor, op wam.Op)
	// Table fires on extension-table operations (lookup hit/miss,
	// insert, success-pattern update) for the consulted predicate.
	Table(fn term.Functor, ev TableEvent)
	// Enqueue fires when a calling pattern is re-enqueued because a
	// summary it depends on grew (worklist and parallel strategies).
	Enqueue(fn term.Functor)
	// Iteration fires at the start of each naive fixpoint pass.
	Iteration(n int)
	// Worker fires at parallel worker start (start=true) and exit.
	Worker(id int, start bool)
}

// WorkerMetrics is one parallel worker's share of the run.
type WorkerMetrics struct {
	ID int
	// Steps is the number of abstract instructions this worker executed.
	Steps int64
	// Explorations is the number of table entries this worker explored.
	Explorations int64
	// QueueWait is the total time this worker spent waiting on the
	// shared work queue (lock acquisition plus idle parking).
	QueueWait time.Duration
}

// Metrics is the merged instrumentation of one analysis run. It is
// always collected (per-worker plain counters, merged after the worker
// barrier) and describes the fixpoint phase only: the deterministic
// finalize replay is excluded, so the counter totals match Result.Steps.
type Metrics struct {
	// PredSteps is the number of abstract instructions executed inside
	// each predicate's clauses (exclusive: a callee's instructions are
	// charged to the callee).
	PredSteps map[term.Functor]int64
	// PredRuns is the number of times each predicate's entries were
	// (re-)explored — the per-predicate re-analysis count.
	PredRuns map[term.Functor]int64
	// Opcodes is the per-opcode execution histogram; its sum equals
	// Result.Steps.
	Opcodes [wam.NumOps]int64
	// FusedOps counts executed fused superinstructions (Config.Spec with
	// fusion on). Each fused execution also charged its base opcodes to
	// Opcodes — one anchor plus two unify slots, see
	// specialize.FusedKindBases — so the Opcodes sum still equals
	// Result.Steps and stays comparable across engines; FusedOps reports
	// how many of those base triples ran through a single fused word.
	FusedOps [specialize.NumFusedKinds]int64
	// Extension-table operation counts. A lookup that finds an entry is
	// a hit; a miss is immediately followed by an insert; an update is
	// a success-pattern growth.
	TableHits, TableMisses, TableInserts, TableUpdates int64
	// Enqueues counts dependency-driven re-enqueues (worklist/parallel).
	Enqueues int64
	// Hash-consing traffic (intern.go): InternHits counts pattern
	// interns resolved on the read path, InternMisses first-sight
	// insertions. InternedPatterns/InternedTerms are the interner's
	// end-of-run sizes — the distinct canonical patterns and term nodes
	// the analysis ever touched (finalize-phase discoveries included in
	// the sizes, though its hit/miss traffic is excluded like all its
	// counters).
	InternHits, InternMisses        int64
	InternedPatterns, InternedTerms int
	// Lub-cache traffic: summary merges served from the ID-keyed memo
	// versus computed by a full graph lub + widen.
	LubCacheHits, LubCacheMisses int64
	// Warm-start traffic (Config.Warm, incremental engine): WarmHits
	// counts fixpoint-phase table inserts answered by a seeded cached
	// summary (the entry was never explored); WarmMisses counts inserts
	// probed but not cached (explored normally). Both zero when no warm
	// source is installed.
	WarmHits, WarmMisses int64
	// Summary-store traffic (internal/cache), filled by the incremental
	// engine after the run: record-level hits/misses/evictions and the
	// store's resident byte size. Zero when the analysis ran without a
	// store.
	CacheHits, CacheMisses, CacheEvictions int64
	CacheBytes                             int64
	// Remote-tier (summary fabric) traffic of this run, filled like the
	// Cache* counters: records faulted in from the fabric peer, records
	// the peer was asked for but did not hold, records pushed upstream,
	// HTTP round trips, and failed exchanges (outages, timeouts, corrupt
	// payloads — all degraded to local misses). Zero without a remote
	// tier.
	RemoteLoads, RemoteMisses, RemotePuts int64
	RemoteRoundTrips, RemoteErrors        int64
	// HeapHighWater is the largest abstract heap (in cells) any worker
	// ever held.
	HeapHighWater int
	// ExecuteTime is the fixpoint-phase wall time; FinalizeTime is the
	// deterministic replay's. TableTime estimates the share of
	// ExecuteTime spent in table operations; it is sampled (one timed
	// operation in tableSampleEvery), so treat it as an estimate.
	ExecuteTime, TableTime, FinalizeTime time.Duration
	// Workers holds per-worker breakdowns (StrategyParallel only).
	Workers []WorkerMetrics
}

// metricsShard is one goroutine's private counter set. The zero value
// is not ready; use newMetricsShard.
type metricsShard struct {
	predSteps map[term.Functor]int64
	predRuns  map[term.Functor]int64
	opcodes   [wam.NumOps]int64
	fusedOps  [specialize.NumFusedKinds]int64

	hits, misses, inserts, updates, enqueues int64

	internHits, internMisses int64
	lubHits, lubMisses       int64
	warmHits, warmMisses     int64

	tableOps  int64
	tableTime time.Duration
}

func newMetricsShard() *metricsShard {
	return &metricsShard{
		predSteps: make(map[term.Functor]int64),
		predRuns:  make(map[term.Functor]int64),
	}
}

// tableSampleEvery is the table-op sampling stride: one operation in
// every tableSampleEvery is timed and scaled up, keeping the clock off
// the common path.
const tableSampleEvery = 64

// sampleTable starts a sampled table-operation timing window.
func (m *metricsShard) sampleTable() (time.Time, bool) {
	timed := m.tableOps%tableSampleEvery == 0
	m.tableOps++
	if timed {
		return time.Now(), true
	}
	return time.Time{}, false
}

// doneTable closes a sampled timing window.
func (m *metricsShard) doneTable(t0 time.Time, timed bool) {
	if timed {
		m.tableTime += time.Since(t0) * tableSampleEvery
	}
}

// merge folds other into m (post-barrier aggregation; no locking).
func (m *metricsShard) merge(other *metricsShard) {
	for fn, n := range other.predSteps {
		m.predSteps[fn] += n
	}
	for fn, n := range other.predRuns {
		m.predRuns[fn] += n
	}
	for i := range other.opcodes {
		m.opcodes[i] += other.opcodes[i]
	}
	for i := range other.fusedOps {
		m.fusedOps[i] += other.fusedOps[i]
	}
	m.hits += other.hits
	m.misses += other.misses
	m.inserts += other.inserts
	m.updates += other.updates
	m.enqueues += other.enqueues
	m.internHits += other.internHits
	m.internMisses += other.internMisses
	m.lubHits += other.lubHits
	m.lubMisses += other.lubMisses
	m.warmHits += other.warmHits
	m.warmMisses += other.warmMisses
	m.tableOps += other.tableOps
	m.tableTime += other.tableTime
}

// attrSwitch charges the steps executed since the last attribution
// point to the current predicate and makes fn current, returning the
// previous predicate for attrRestore. Called only at exploration
// boundaries, so per-predicate accounting costs nothing per instruction.
func (a *Analyzer) attrSwitch(fn term.Functor) term.Functor {
	if d := a.Steps - a.attrStart; d > 0 {
		a.met.predSteps[a.attrFn] += d
	}
	prev := a.attrFn
	a.attrFn = fn
	a.attrStart = a.Steps
	return prev
}

// attrClose flushes the pending attribution delta (driver exit).
func (a *Analyzer) attrClose() {
	if d := a.Steps - a.attrStart; d > 0 {
		a.met.predSteps[a.attrFn] += d
	}
	a.attrStart = a.Steps
}

// noteHeap records the current heap's high-water mark before the heap is
// replaced or the driver exits (worker heaps are read directly, but the
// sequential strategies discard heaps between explorations).
func (a *Analyzer) noteHeap() {
	if a.h != nil {
		if hw := a.h.HighWater(); hw > a.heapHW {
			a.heapHW = hw
		}
	}
}

// attrRestore closes an attribution window opened by attrSwitch.
func (a *Analyzer) attrRestore(prev term.Functor) {
	if d := a.Steps - a.attrStart; d > 0 {
		a.met.predSteps[a.attrFn] += d
	}
	a.attrFn = prev
	a.attrStart = a.Steps
}

// budgetChunk is the step-allowance granularity: workers reserve this
// many steps from the shared budget at a time, so the shared atomic is
// touched once per chunk rather than per instruction.
const budgetChunk = 4096

// refillSteps reserves another allowance chunk from the shared step
// budget, reporting false when the budget is exhausted. Unused
// allowance is refunded by refundSteps, so the global bound is exact up
// to the chunks currently held by running workers.
func (a *Analyzer) refillSteps() bool {
	for {
		r := atomic.LoadInt64(a.budget)
		if r <= 0 {
			return false
		}
		take := r
		if take > budgetChunk {
			take = budgetChunk
		}
		if atomic.CompareAndSwapInt64(a.budget, r, r-take) {
			a.allow = take
			return true
		}
	}
}

// refundSteps returns unused allowance to the shared budget (called
// before a parallel worker parks on the queue, so an idle worker never
// starves the others of budget).
func (a *Analyzer) refundSteps() {
	if a.allow > 0 {
		atomic.AddInt64(a.budget, a.allow)
		a.allow = 0
	}
}

// buildMetrics assembles the public Metrics from the driver's shard,
// already merged with any worker shards, plus per-worker breakdowns.
func (a *Analyzer) buildMetrics(workers []*Analyzer, execute, finalize time.Duration) *Metrics {
	m := &Metrics{
		PredSteps:      a.met.predSteps,
		PredRuns:       a.met.predRuns,
		Opcodes:        a.met.opcodes,
		TableHits:      a.met.hits,
		TableMisses:    a.met.misses,
		TableInserts:   a.met.inserts,
		TableUpdates:   a.met.updates,
		Enqueues:       a.met.enqueues,
		InternHits:     a.met.internHits,
		InternMisses:   a.met.internMisses,
		LubCacheHits:   a.met.lubHits,
		LubCacheMisses: a.met.lubMisses,
		WarmHits:       a.met.warmHits,
		WarmMisses:     a.met.warmMisses,
		ExecuteTime:    execute,
		TableTime:      a.met.tableTime,
		FinalizeTime:   finalize,
	}
	m.FusedOps = a.met.fusedOps
	m.InternedPatterns, m.InternedTerms = a.in.Size()
	m.HeapHighWater = a.heapHW
	for i, w := range workers {
		if hw := w.h.HighWater(); hw > m.HeapHighWater {
			m.HeapHighWater = hw
		}
		m.Workers = append(m.Workers, WorkerMetrics{
			ID:           i,
			Steps:        w.Steps,
			Explorations: int64(w.Iterations),
			QueueWait:    w.queueWait,
		})
	}
	return m
}

// Render formats the metrics as the `awam analyze -metrics` report.
func (m *Metrics) Render(tab *term.Tab) string {
	var b strings.Builder
	fmt.Fprintf(&b, "phase    execute=%v table~%v finalize=%v\n",
		m.ExecuteTime.Round(time.Microsecond), m.TableTime.Round(time.Microsecond),
		m.FinalizeTime.Round(time.Microsecond))
	fmt.Fprintf(&b, "table    hits=%d misses=%d inserts=%d updates=%d enqueues=%d\n",
		m.TableHits, m.TableMisses, m.TableInserts, m.TableUpdates, m.Enqueues)
	fmt.Fprintf(&b, "intern   hits=%d misses=%d patterns=%d terms=%d\n",
		m.InternHits, m.InternMisses, m.InternedPatterns, m.InternedTerms)
	fmt.Fprintf(&b, "lubcache hits=%d misses=%d\n", m.LubCacheHits, m.LubCacheMisses)
	if m.WarmHits > 0 || m.WarmMisses > 0 || m.CacheHits > 0 || m.CacheMisses > 0 {
		fmt.Fprintf(&b, "warm     hits=%d misses=%d\n", m.WarmHits, m.WarmMisses)
		fmt.Fprintf(&b, "store    hits=%d misses=%d evictions=%d bytes=%d\n",
			m.CacheHits, m.CacheMisses, m.CacheEvictions, m.CacheBytes)
	}
	if m.RemoteRoundTrips > 0 {
		fmt.Fprintf(&b, "remote   loads=%d misses=%d puts=%d round-trips=%d errors=%d\n",
			m.RemoteLoads, m.RemoteMisses, m.RemotePuts, m.RemoteRoundTrips, m.RemoteErrors)
	}
	fmt.Fprintf(&b, "heap     high-water=%d cells\n", m.HeapHighWater)
	for _, w := range m.Workers {
		fmt.Fprintf(&b, "worker   #%d steps=%d explorations=%d queue-wait=%v\n",
			w.ID, w.Steps, w.Explorations, w.QueueWait.Round(time.Microsecond))
	}
	b.WriteString("predicate steps/runs:\n")
	fns := make([]term.Functor, 0, len(m.PredSteps))
	for fn := range m.PredSteps {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool {
		if m.PredSteps[fns[i]] != m.PredSteps[fns[j]] {
			return m.PredSteps[fns[i]] > m.PredSteps[fns[j]]
		}
		return tab.FuncString(fns[i]) < tab.FuncString(fns[j])
	})
	for _, fn := range fns {
		fmt.Fprintf(&b, "  %-24s %10d %6d\n", tab.FuncString(fn), m.PredSteps[fn], m.PredRuns[fn])
	}
	b.WriteString("opcode histogram:\n")
	type oc struct {
		op wam.Op
		n  int64
	}
	var ops []oc
	for op, n := range m.Opcodes {
		if n > 0 {
			ops = append(ops, oc{wam.Op(op), n})
		}
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].n != ops[j].n {
			return ops[i].n > ops[j].n
		}
		return ops[i].op < ops[j].op
	})
	for _, o := range ops {
		fmt.Fprintf(&b, "  %-24s %10d\n", o.op.String(), o.n)
	}
	var fusedTotal int64
	for _, n := range m.FusedOps {
		fusedTotal += n
	}
	if fusedTotal > 0 {
		b.WriteString("fused superinstructions (base opcodes above include these):\n")
		for k, n := range m.FusedOps {
			if n > 0 {
				fmt.Fprintf(&b, "  %-24s %10d  (= %s)\n",
					specialize.FusedKindName(k), n, specialize.FusedKindBases(k))
			}
		}
	}
	return b.String()
}
