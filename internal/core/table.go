package core

import (
	"awam/internal/domain"
)

// Entry is one extension-table record: a calling pattern with its lubbed
// success pattern (nil until some clause succeeds — the paper's "call
// made but no solution recorded").
type Entry struct {
	Key  string
	CP   *domain.Pattern
	Succ *domain.Pattern
	// exploredIter is the analysis iteration that last explored this
	// calling pattern (repeated encounters within an iteration return
	// the memoized success pattern instead of re-exploring).
	exploredIter int
	// Lookups counts memoized hits; Updates counts success-pattern lubs.
	Lookups int
	Updates int
}

// Table is the extension table: a memo from calling-pattern keys to
// entries.
type Table interface {
	// Get returns the entry for key, or nil.
	Get(key string) *Entry
	// Add inserts a fresh entry (key must not be present).
	Add(e *Entry)
	// Entries returns all entries in insertion order.
	Entries() []*Entry
	// Len returns the number of entries.
	Len() int
}

// LinearTable is the paper's implementation: "a linear list of
// (calling-pattern, success-pattern) pairs" searched sequentially. It is
// the faithful default; HashTable is the ablation.
type LinearTable struct {
	entries []*Entry
}

// NewLinearTable returns an empty linear table.
func NewLinearTable() *LinearTable { return &LinearTable{} }

// Get scans the list for key.
func (t *LinearTable) Get(key string) *Entry {
	for _, e := range t.entries {
		if e.Key == key {
			return e
		}
	}
	return nil
}

// Add appends an entry.
func (t *LinearTable) Add(e *Entry) { t.entries = append(t.entries, e) }

// Entries returns the list.
func (t *LinearTable) Entries() []*Entry { return t.entries }

// Len returns the entry count.
func (t *LinearTable) Len() int { return len(t.entries) }

// HashTable indexes entries by key; an ablation over the paper's linear
// list (experiment E8).
type HashTable struct {
	index map[string]*Entry
	order []*Entry
}

// NewHashTable returns an empty hash table.
func NewHashTable() *HashTable {
	return &HashTable{index: make(map[string]*Entry)}
}

// Get looks the key up in the index.
func (t *HashTable) Get(key string) *Entry { return t.index[key] }

// Add inserts an entry.
func (t *HashTable) Add(e *Entry) {
	t.index[e.Key] = e
	t.order = append(t.order, e)
}

// Entries returns entries in insertion order.
func (t *HashTable) Entries() []*Entry { return t.order }

// Len returns the entry count.
func (t *HashTable) Len() int { return len(t.order) }
