package core

import (
	"sync"

	"awam/internal/domain"
)

// TableEvent classifies extension-table operations for Tracer.Table.
type TableEvent int

const (
	// TableHit is a lookup that found an existing entry.
	TableHit TableEvent = iota
	// TableMiss is a lookup that found nothing.
	TableMiss
	// TableInsert is a fresh entry insertion (always follows a miss).
	TableInsert
	// TableUpdate is a success-pattern growth (monotone lub-merge).
	TableUpdate
)

// String names the event for trace output.
func (ev TableEvent) String() string {
	switch ev {
	case TableHit:
		return "hit"
	case TableMiss:
		return "miss"
	case TableInsert:
		return "insert"
	case TableUpdate:
		return "update"
	}
	return "table-event?"
}

// Entry is one extension-table record: a calling pattern with its lubbed
// success pattern (nil until some clause succeeds — the paper's "call
// made but no solution recorded").
type Entry struct {
	// ID is the calling pattern's interned identity (domain.Interner);
	// every engine map and table keys on it. Zero (domain.BottomID) on
	// entries built outside an analysis (Unmarshal, baseline).
	ID   domain.PatternID
	CP   *domain.Pattern
	Succ *domain.Pattern
	// succID is Succ's interned identity, kept in lockstep by the merge
	// paths so growth checks are word compares (BottomID while nil).
	succID domain.PatternID
	// exploredIter is the analysis iteration that last explored this
	// calling pattern (repeated encounters within an iteration return
	// the memoized success pattern instead of re-exploring).
	exploredIter int
	// Lookups counts memoized hits; Updates counts success-pattern lubs.
	Lookups int
	Updates int
	// warm marks an entry seeded from a WarmStart cache: its summary is
	// already converged, so the worklist never explores it and a summary
	// growth can never reach it.
	warm bool
	// Consults lists the callee calling patterns this entry's clauses
	// consulted during the finalize replay — first occurrences, in
	// discovery order. The incremental engine caches it as the entry's
	// trace, so a later warm finalize can replay discovery (and keep the
	// presentation byte-identical) without executing the entry's clauses.
	// Populated by the worklist and parallel strategies only (naive has
	// no finalize pass).
	Consults []*domain.Pattern
	// finSeen dedups Consults during the finalize replay (first
	// occurrences only); cleared when the pass finishes. A small slice
	// with linear scans beats a per-entry set: consult lists are short,
	// and the replay visits every presented entry on every warm run.
	finSeen []domain.PatternID

	// Parallel-engine state (used only by StrategyParallel). The mutex
	// guards Succ, succID, Updates, deps and the read snapshot; dependency
	// edges live on the callee entry itself — the sharded-table
	// replacement for wlState.dependents — so a worker that grows a
	// summary can snapshot and enqueue dependents without any global lock.
	mu   sync.Mutex
	deps map[domain.PatternID]*Entry
	// readEnts/readVals snapshot the entry's last completed parallel
	// exploration: for each callee consulted, the first summary ID read.
	// An exploration is a deterministic function of the calling pattern
	// and the summaries it reads, so a pop whose every recorded read is
	// still the callee's current summary can skip re-exploration — the
	// rerun would take the identical path and merge identical (idempotent)
	// successes. Written under mu at exploration end; the slices are
	// immutable once published.
	readEnts []*Entry
	readVals []domain.PatternID
	explored bool
	// deferCount bounds how often a popped entry may be rotated to the
	// back of the queue while callees it reads are still queued (the
	// quiesce-callees-first heuristic in runWorker); the cap guarantees
	// progress on dependency cycles.
	deferCount int
	// inQueue dedups work-queue insertions; guarded by the queue lock,
	// not by mu.
	inQueue bool
}

// Key returns the calling pattern's canonical serialization — the
// human-readable boundary (display, serialized summaries, cross-engine
// test comparison). The engine itself keys on ID.
func (e *Entry) Key() string { return e.CP.Key() }

// Warm reports whether the entry was seeded from a WarmStart cache
// instead of being explored (incremental warm starts).
func (e *Entry) Warm() bool { return e.warm }

// Table is the extension table: a memo from interned calling-pattern
// IDs to entries.
type Table interface {
	// Get returns the entry for id, or nil.
	Get(id domain.PatternID) *Entry
	// Add inserts a fresh entry (its ID must not be present).
	Add(e *Entry)
	// Entries returns all entries in insertion order.
	Entries() []*Entry
	// Len returns the number of entries.
	Len() int
}

// LinearTable is the paper's implementation: "a linear list of
// (calling-pattern, success-pattern) pairs" searched sequentially. It is
// the faithful default; HashTable is the ablation. The scan compares
// interned IDs kept in a dense side slice — each probe is a word compare
// over contiguous int32s instead of a pointer chase per entry — but the
// cost stays linear in the table size as the paper measured.
type LinearTable struct {
	ids     []domain.PatternID
	entries []*Entry
}

// NewLinearTable returns an empty linear table.
func NewLinearTable() *LinearTable { return &LinearTable{} }

// Get scans the list for id.
func (t *LinearTable) Get(id domain.PatternID) *Entry {
	for i, tid := range t.ids {
		if tid == id {
			return t.entries[i]
		}
	}
	return nil
}

// Add appends an entry.
func (t *LinearTable) Add(e *Entry) {
	t.ids = append(t.ids, e.ID)
	t.entries = append(t.entries, e)
}

// Entries returns the list.
func (t *LinearTable) Entries() []*Entry { return t.entries }

// Len returns the entry count.
func (t *LinearTable) Len() int { return len(t.entries) }

// HashTable indexes entries by interned ID; an ablation over the
// paper's linear list (experiment E8).
type HashTable struct {
	index map[domain.PatternID]*Entry
	order []*Entry
}

// NewHashTable returns an empty hash table.
func NewHashTable() *HashTable {
	return &HashTable{index: make(map[domain.PatternID]*Entry)}
}

// Get looks the id up in the index.
func (t *HashTable) Get(id domain.PatternID) *Entry { return t.index[id] }

// Add inserts an entry.
func (t *HashTable) Add(e *Entry) {
	t.index[e.ID] = e
	t.order = append(t.order, e)
}

// Entries returns entries in insertion order.
func (t *HashTable) Entries() []*Entry { return t.order }

// Len returns the entry count.
func (t *HashTable) Len() int { return len(t.order) }

// numShards is the stripe count of ShardedTable; a power of two so the
// shard pick is a mask. 64 stripes keep contention negligible for any
// plausible worker count while staying cheap to allocate per analysis.
const numShards = 64

type tableShard struct {
	mu    sync.Mutex
	index map[domain.PatternID]*Entry
}

// ShardedTable is the lock-striped extension table behind
// StrategyParallel. IDs stripe over numShards shards, each with its own
// mutex, so concurrent workers rarely collide on table access. It
// deliberately does not implement the sequential Table interface: a
// global insertion order is meaningless under concurrency, and the
// deterministic finalize pass rebuilds an ordered presentation table
// from this one after the fixpoint converges.
type ShardedTable struct {
	shards [numShards]tableShard
}

// NewShardedTable returns an empty sharded table.
func NewShardedTable() *ShardedTable {
	t := &ShardedTable{}
	for i := range t.shards {
		t.shards[i].index = make(map[domain.PatternID]*Entry)
	}
	return t
}

// shardOf picks the stripe for an interned ID. IDs are dense, so the
// mask spreads them round-robin — an even stripe load by construction.
func shardOf(id domain.PatternID) int {
	return int(id) & (numShards - 1)
}

// Get returns the entry for id, or nil.
func (t *ShardedTable) Get(id domain.PatternID) *Entry {
	s := &t.shards[shardOf(id)]
	s.mu.Lock()
	e := s.index[id]
	s.mu.Unlock()
	return e
}

// GetOrAdd returns the entry for the interned calling pattern, creating
// it when absent, and reports whether it was created. cp must be the
// interner's canonical representative for id (its Key is precomputed,
// safe to publish across workers).
func (t *ShardedTable) GetOrAdd(id domain.PatternID, cp *domain.Pattern) (*Entry, bool) {
	s := &t.shards[shardOf(id)]
	s.mu.Lock()
	if e := s.index[id]; e != nil {
		s.mu.Unlock()
		return e, false
	}
	e := &Entry{ID: id, CP: cp}
	s.index[id] = e
	s.mu.Unlock()
	return e, true
}

// Len returns the total entry count across shards. It is only exact
// when no workers are running (used after the fixpoint converges).
func (t *ShardedTable) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.index)
		s.mu.Unlock()
	}
	return n
}
