package core

import (
	"errors"
	"fmt"
	"strings"

	"awam/internal/domain"
	"awam/internal/term"
)

// Marshal renders an analysis result as a line-oriented text summary,
// the analogue of the ".pan" files batch analyzers write so compilation
// can consume dataflow facts without re-analyzing. Unmarshal reads it
// back; MarshalText/Unmarshal round-trip exactly (tested on the
// benchmark suites).
//
// The output is a pure function of the analysis result: run statistics
// are not embedded (they vary with the fixpoint strategy and schedule,
// and the summary must be byte-identical across them). Unmarshal still
// accepts the "stats steps=N iterations=N" line older summaries carried.
//
// Format:
//
//	awam-analysis 1
//	call p(atom, list(g))
//	succ p(atom, [f(g)|list(g)])
//	call q(g)
//	succ bottom
func (r *Result) Marshal() string {
	var b strings.Builder
	b.WriteString("awam-analysis 1\n")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "call %s\n", domain.PatternText(r.Tab, e.CP))
		if e.Succ == nil {
			b.WriteString("succ bottom\n")
		} else {
			fmt.Fprintf(&b, "succ %s\n", domain.PatternText(r.Tab, e.Succ))
		}
	}
	return b.String()
}

// ErrBadSummary reports a malformed serialized analysis summary. Every
// Unmarshal failure wraps it (errors.Is), so callers that parse
// untrusted bytes — the disk-backed summary cache, the analysis daemon —
// can branch without string matching.
var ErrBadSummary = errors.New("core: malformed analysis summary")

// maxSummaryLine bounds one summary line; longer lines are rejected
// rather than buffered without limit (Unmarshal now parses disk-cache
// and network bytes, not just our own Marshal output).
const maxSummaryLine = 1 << 20

// Unmarshal parses a summary produced by Marshal, interning names into
// tab. Table internals (lookup counts) are not restored; a legacy stats
// line, when present, fills Steps/Iterations.
//
// The input is validated structurally, not just syntactically: every
// call line must be followed by exactly one succ line, a calling
// pattern may appear at most once, and lines outside the format are
// rejected. All failures wrap ErrBadSummary; hostile input returns an
// error, never a panic (FuzzUnmarshal).
func Unmarshal(tab *term.Tab, text string) (*Result, error) {
	return UnmarshalCached(tab, text, nil)
}

// UnmarshalCached is Unmarshal with a caller-supplied pattern memo
// (text → parsed pattern, all in tab). The incremental engine decodes
// thousands of per-component records against one symbol table, and the
// same pattern text recurs across them — a callee's calling pattern
// reappears in every caller's record — so sharing a memo across the
// batch skips both the re-parse and (because Pattern.Key memoizes on
// the shared node) the canonical-key recomputation. Patterns are
// immutable once built; handing one tree to several entries is safe.
// A nil memo is valid and disables caching. Parse failures are not
// memoized.
func UnmarshalCached(tab *term.Tab, text string, memo map[string]*domain.Pattern) (*Result, error) {
	parse := func(src string) (*domain.Pattern, error) {
		if p := memo[src]; p != nil {
			return p, nil
		}
		p, err := domain.ParseAbsQuick(tab, src)
		if err == nil && memo != nil {
			memo[src] = p
		}
		return p, err
	}
	// Lines are walked with strings.Cut rather than a bufio.Scanner:
	// Unmarshal decodes thousands of small cache records per warm
	// analysis, and a scanner's line buffer allocation per call was the
	// single largest cost of the incremental engine's load path.
	header, rest, _ := strings.Cut(text, "\n")
	if len(header) > maxSummaryLine || strings.TrimSpace(header) != "awam-analysis 1" {
		return nil, fmt.Errorf("%w: not an awam-analysis v1 summary", ErrBadSummary)
	}
	res := &Result{Tab: tab}
	seen := make(map[string]bool)
	var current *Entry
	lineNo := 1
	for len(rest) > 0 {
		var line string
		line, rest, _ = strings.Cut(rest, "\n")
		lineNo++
		if len(line) > maxSummaryLine {
			return nil, fmt.Errorf("%w: line %d exceeds %d bytes", ErrBadSummary, lineNo, maxSummaryLine)
		}
		line = strings.TrimSpace(line)
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "stats "):
			if _, err := fmt.Sscanf(line, "stats steps=%d iterations=%d",
				&res.Steps, &res.Iterations); err != nil {
				return nil, fmt.Errorf("%w: line %d: bad stats: %v", ErrBadSummary, lineNo, err)
			}
		case strings.HasPrefix(line, "call "):
			if current != nil {
				return nil, fmt.Errorf("%w: line %d: call without preceding succ", ErrBadSummary, lineNo)
			}
			cp, err := parse(strings.TrimPrefix(line, "call "))
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadSummary, lineNo, err)
			}
			if key := cp.Key(); seen[key] {
				return nil, fmt.Errorf("%w: line %d: duplicate call %s",
					ErrBadSummary, lineNo, domain.PatternText(tab, cp))
			} else {
				seen[key] = true
			}
			// No interner in scope: loaded entries carry no ID (the engine
			// never feeds them back into a fixpoint); Key() still works
			// through CP for display and comparison.
			current = &Entry{CP: cp}
			res.Entries = append(res.Entries, current)
		case strings.HasPrefix(line, "succ "):
			if current == nil {
				return nil, fmt.Errorf("%w: line %d: succ before call", ErrBadSummary, lineNo)
			}
			body := strings.TrimPrefix(line, "succ ")
			if body != "bottom" {
				sp, err := parse(body)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: %v", ErrBadSummary, lineNo, err)
				}
				current.Succ = sp
			}
			current = nil
		default:
			return nil, fmt.Errorf("%w: line %d: unrecognized line %q", ErrBadSummary, lineNo, line)
		}
	}
	if current != nil {
		return nil, fmt.Errorf("%w: truncated: call %s has no succ line",
			ErrBadSummary, domain.PatternText(tab, current.CP))
	}
	res.TableSize = len(res.Entries)
	return res, nil
}
