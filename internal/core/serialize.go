package core

import (
	"bufio"
	"fmt"
	"strings"

	"awam/internal/domain"
	"awam/internal/term"
)

// Marshal renders an analysis result as a line-oriented text summary,
// the analogue of the ".pan" files batch analyzers write so compilation
// can consume dataflow facts without re-analyzing. Unmarshal reads it
// back; MarshalText/Unmarshal round-trip exactly (tested on the
// benchmark suites).
//
// The output is a pure function of the analysis result: run statistics
// are not embedded (they vary with the fixpoint strategy and schedule,
// and the summary must be byte-identical across them). Unmarshal still
// accepts the "stats steps=N iterations=N" line older summaries carried.
//
// Format:
//
//	awam-analysis 1
//	call p(atom, list(g))
//	succ p(atom, [f(g)|list(g)])
//	call q(g)
//	succ bottom
func (r *Result) Marshal() string {
	var b strings.Builder
	b.WriteString("awam-analysis 1\n")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "call %s\n", domain.PatternText(r.Tab, e.CP))
		if e.Succ == nil {
			b.WriteString("succ bottom\n")
		} else {
			fmt.Fprintf(&b, "succ %s\n", domain.PatternText(r.Tab, e.Succ))
		}
	}
	return b.String()
}

// Unmarshal parses a summary produced by Marshal, interning names into
// tab. Table internals (lookup counts) are not restored; a legacy stats
// line, when present, fills Steps/Iterations.
func Unmarshal(tab *term.Tab, text string) (*Result, error) {
	sc := bufio.NewScanner(strings.NewReader(text))
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != "awam-analysis 1" {
		return nil, fmt.Errorf("core: not an awam-analysis v1 summary")
	}
	res := &Result{Tab: tab}
	var current *Entry
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "stats "):
			if _, err := fmt.Sscanf(line, "stats steps=%d iterations=%d",
				&res.Steps, &res.Iterations); err != nil {
				return nil, fmt.Errorf("core: line %d: bad stats: %w", lineNo, err)
			}
		case strings.HasPrefix(line, "call "):
			cp, err := domain.ParseAbs(tab, strings.TrimPrefix(line, "call "))
			if err != nil {
				return nil, fmt.Errorf("core: line %d: %w", lineNo, err)
			}
			// No interner in scope: loaded entries carry no ID (the engine
			// never feeds them back into a fixpoint); Key() still works
			// through CP for display and comparison.
			current = &Entry{CP: cp}
			res.Entries = append(res.Entries, current)
		case strings.HasPrefix(line, "succ "):
			if current == nil {
				return nil, fmt.Errorf("core: line %d: succ before call", lineNo)
			}
			body := strings.TrimPrefix(line, "succ ")
			if body != "bottom" {
				sp, err := domain.ParseAbs(tab, body)
				if err != nil {
					return nil, fmt.Errorf("core: line %d: %w", lineNo, err)
				}
				current.Succ = sp
			}
			current = nil
		default:
			return nil, fmt.Errorf("core: line %d: unrecognized line %q", lineNo, line)
		}
	}
	res.TableSize = len(res.Entries)
	return res, sc.Err()
}
