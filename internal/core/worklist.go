package core

import (
	"sort"
	"time"

	"awam/internal/domain"
	"awam/internal/rt"
)

// This file implements the worklist fixpoint strategy — the "better
// algorithms for abstract interpretation such as those described in
// [Le Charlier/Musumbu/Van Hentenryck 1991]" that the paper's Section 6
// leaves as future work. Instead of re-running the whole analysis until
// an iteration changes nothing (the extension-table scheme's iterative
// deepening), the analyzer records which calling patterns each
// exploration consulted and, when a success pattern grows, re-explores
// only its dependents.
//
// Both strategies compute the same least fixpoint (tested across the
// benchmark suites); the worklist executes fewer abstract instructions
// on programs whose table has deep dependency chains.

// Strategy selects the fixpoint iteration algorithm.
type Strategy int

const (
	// StrategyNaive is the paper's scheme: iterate the whole analysis
	// until no success pattern changes.
	StrategyNaive Strategy = iota
	// StrategyWorklist re-explores only the dependents of changed
	// entries.
	StrategyWorklist
	// StrategyParallel runs the worklist concurrently: N worker
	// goroutines, each owning private execution state, pull entries from
	// a shared queue backed by a lock-striped table (parallel.go).
	StrategyParallel
)

// wlState carries the worklist bookkeeping, keyed by the entries'
// interned calling-pattern IDs.
type wlState struct {
	// dependents[id] = set of entry IDs whose exploration consulted id
	// and must be revisited when its success pattern grows. Under
	// pre-interning specialization (dense) the outer map becomes an
	// ID-indexed slice, and so do the exploring and queued marks — the
	// set contents and iteration behaviour are unchanged.
	dependents map[domain.PatternID]map[domain.PatternID]bool
	depSlots   []map[domain.PatternID]bool
	// exploring marks in-flight entries (recursive calls read their
	// current success pattern instead of re-entering).
	exploring     map[domain.PatternID]bool
	exploringBits []bool
	// queued marks entries already on the worklist.
	queued     map[domain.PatternID]bool
	queuedBits []bool
	dense      bool
	queue      []*Entry
	// current is the entry being explored (dependency recording).
	current *Entry
	// explorations counts exploreWL runs (reported as Iterations).
	explorations int
}

func newWLState(dense bool) *wlState {
	w := &wlState{dense: dense}
	if !dense {
		w.dependents = make(map[domain.PatternID]map[domain.PatternID]bool)
		w.exploring = make(map[domain.PatternID]bool)
		w.queued = make(map[domain.PatternID]bool)
	}
	return w
}

func growBits(s []bool, id domain.PatternID) []bool {
	for int(id) >= len(s) {
		s = append(s, make([]bool, 64)...)
	}
	return s
}

func (w *wlState) isExploring(id domain.PatternID) bool {
	if w.dense {
		return int(id) < len(w.exploringBits) && w.exploringBits[id]
	}
	return w.exploring[id]
}

func (w *wlState) setExploring(id domain.PatternID, v bool) {
	if w.dense {
		w.exploringBits = growBits(w.exploringBits, id)
		w.exploringBits[id] = v
		return
	}
	w.exploring[id] = v
}

// deps returns id's dependent set (nil when none recorded).
func (w *wlState) deps(id domain.PatternID) map[domain.PatternID]bool {
	if w.dense {
		if int(id) < len(w.depSlots) {
			return w.depSlots[id]
		}
		return nil
	}
	return w.dependents[id]
}

func (w *wlState) addDep(on, dependent domain.PatternID) {
	if w.dense {
		for int(on) >= len(w.depSlots) {
			w.depSlots = append(w.depSlots, make([]map[domain.PatternID]bool, 64)...)
		}
		m := w.depSlots[on]
		if m == nil {
			m = make(map[domain.PatternID]bool)
			w.depSlots[on] = m
		}
		m[dependent] = true
		return
	}
	m := w.dependents[on]
	if m == nil {
		m = make(map[domain.PatternID]bool)
		w.dependents[on] = m
	}
	m[dependent] = true
}

// enqueue schedules e, reporting whether it was newly added (false when
// already queued — the observability layer counts real insertions only).
func (w *wlState) enqueue(e *Entry) bool {
	if w.dense {
		w.queuedBits = growBits(w.queuedBits, e.ID)
		if w.queuedBits[e.ID] {
			return false
		}
		w.queuedBits[e.ID] = true
		w.queue = append(w.queue, e)
		return true
	}
	if w.queued[e.ID] {
		return false
	}
	w.queued[e.ID] = true
	w.queue = append(w.queue, e)
	return true
}

// setQueued clears (or sets) the queued mark at pop time.
func (w *wlState) setQueued(id domain.PatternID, v bool) {
	if w.dense {
		w.queuedBits = growBits(w.queuedBits, id)
		w.queuedBits[id] = v
		return
	}
	w.queued[id] = v
}

// analyzeWorklist is the worklist driver, the counterpart of analyze().
func (a *Analyzer) analyzeWorklist(entries []*domain.Pattern) (*Result, error) {
	a.table = a.newTable()
	a.Steps = 0
	a.err = nil
	*a.budget = a.cfg.MaxSteps
	a.allow = 0
	a.wl = newWLState(a.specPre)
	a.h = rt.NewHeap()
	execStart := time.Now()
	for _, cp := range entries {
		a.solveWL(cp.Canonical())
		if a.err != nil {
			return nil, a.err
		}
	}
	for len(a.wl.queue) > 0 {
		e := a.wl.queue[0]
		a.wl.queue = a.wl.queue[1:]
		a.wl.setQueued(e.ID, false)
		// Top level: nothing survives between explorations. The
		// specialized engine reuses the heap's capacity (Reset) instead of
		// reallocating; Reset truncates cells and trail, so the two are
		// observationally identical for a fresh exploration.
		a.noteHeap()
		if a.specOn {
			a.h.Reset()
		} else {
			a.h = rt.NewHeap()
		}
		a.exploreWL(e)
		if a.err != nil {
			return nil, a.err
		}
	}
	a.Iterations = a.wl.explorations
	a.wl = nil
	a.attrClose()
	a.noteHeap()
	execDur := time.Since(execStart)
	// Present the converged table deterministically (finalize.go): the
	// raw worklist table retains transient calling patterns whose shape
	// depends on the exploration schedule, so it serves as the summary
	// oracle while the finalize pass rebuilds the reported entries. This
	// makes worklist and parallel runs byte-identical.
	finStart := time.Now()
	finEntries, err := a.finalize(entries, a.table)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Tab:        a.tab,
		Entries:    finEntries,
		Steps:      a.Steps,
		Iterations: a.Iterations,
		TableSize:  len(finEntries),
		Warnings:   a.Warnings,
		Metrics:    a.buildMetrics(nil, execDur, time.Since(finStart)),
	}
	return res, nil
}

// solveWL is the reinterpreted call under the worklist strategy: ensure
// the entry exists (exploring it on first sight), record the dependency,
// and return the current success pattern.
func (a *Analyzer) solveWL(cp *domain.Pattern) *domain.Pattern {
	if a.err != nil {
		return nil
	}
	succ, _ := a.solveWLID(cp, a.intern(cp))
	return succ
}

// solveWLID is solveWL's core over a pre-interned calling pattern; see
// solveNaiveID.
func (a *Analyzer) solveWLID(cp *domain.Pattern, id domain.PatternID) (*domain.Pattern, domain.PatternID) {
	if a.err != nil {
		return nil, domain.BottomID
	}
	t0, timed := a.met.sampleTable()
	e := a.table.Get(id)
	a.met.doneTable(t0, timed)
	if e == nil {
		e = &Entry{ID: id, CP: a.in.Pattern(id)}
		a.table.Add(e)
		a.met.misses++
		a.met.inserts++
		if a.tr != nil {
			a.tr.Table(cp.Fn, TableMiss)
			a.tr.Table(cp.Fn, TableInsert)
		}
		// Warm start: a cached converged summary for this calling pattern
		// (unchanged predicate cone) is seeded as-is instead of explored.
		// It can never grow — its value depends only on its cone — so no
		// dependent ever needs re-enqueueing on its account.
		if a.cfg.Warm != nil {
			if sp, ok := a.cfg.Warm.Seed(cp.Fn, e.CP.Key()); ok {
				spID := a.intern(sp)
				e.Succ = a.in.Pattern(spID)
				e.succID = spID
				e.warm = true
				a.met.warmHits++
			} else {
				a.met.warmMisses++
			}
		}
		if !e.warm {
			a.exploreWL(e)
		}
	} else {
		e.Lookups++
		a.met.hits++
		if a.tr != nil {
			a.tr.Table(cp.Fn, TableHit)
		}
	}
	if a.wl.current != nil {
		// Self-dependencies included: a recursive clause that read its
		// own in-flight summary must rerun when the summary grows.
		a.wl.addDep(id, a.wl.current.ID)
	}
	return e.Succ, e.succID
}

// exploreWL runs the entry's clauses once, lubbing success patterns and
// enqueueing dependents when the summary grows.
func (a *Analyzer) exploreWL(e *Entry) {
	if e.warm {
		// Seeded entries are converged by construction; nothing to run.
		return
	}
	if a.wl.isExploring(e.ID) {
		// Recursive occurrence: the caller proceeds with the current
		// success pattern; a self-dependency has been recorded, so the
		// entry is revisited if it grows.
		return
	}
	a.wl.setExploring(e.ID, true)
	a.wl.explorations++
	a.met.predRuns[e.CP.Fn]++
	prev := a.wl.current
	a.wl.current = e
	prevFn := a.attrSwitch(e.CP.Fn)
	defer func() {
		a.attrRestore(prevFn)
		a.wl.current = prev
		a.wl.setExploring(e.ID, false)
	}()

	proc := a.mod.Proc(e.CP.Fn)
	if proc == nil {
		return
	}
	for _, clauseAddr := range a.selectClausesEntry(proc, e.CP, e.ID) {
		mark := a.h.Mark()
		argAddrs := a.materializeEntry(e.CP, e.ID)
		a.ensureX(e.CP.Fn.Arity)
		for i, addr := range argAddrs {
			a.x[i+1] = rt.MkRef(addr)
		}
		ok := a.run(clauseAddr)
		if a.err != nil {
			return
		}
		if ok {
			sp := a.abstractArgs(e.CP.Fn, argAddrs)
			spID := a.intern(sp)
			if e.succID == domain.BottomID || !a.leqSumm(spID, e.succID) {
				nextID, next := a.mergeSumm(e.succID, spID)
				if nextID != e.succID {
					e.Succ = next
					e.succID = nextID
					e.Updates++
					a.met.updates++
					if a.tr != nil {
						a.tr.Table(e.CP.Fn, TableUpdate)
					}
					// Enqueue dependents in ascending ID order (not map
					// iteration order): interned IDs are assigned
					// deterministically by the sequential engine, so this
					// makes the exploration schedule — and with it Steps
					// and the opcode histogram — a stable quantity,
					// directly comparable between runs and between the
					// generic and specialized engines.
					deps := a.wl.deps(e.ID)
					ids := make([]domain.PatternID, 0, len(deps))
					for dep := range deps {
						ids = append(ids, dep)
					}
					sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
					for _, dep := range ids {
						if de := a.table.Get(dep); de != nil && a.wl.enqueue(de) {
							a.met.enqueues++
							if a.tr != nil {
								a.tr.Enqueue(de.CP.Fn)
							}
						}
					}
				}
			}
		}
		a.h.Undo(mark)
	}
}
