package core

import (
	"awam/internal/domain"
	"awam/internal/rt"
	"awam/internal/specialize"
	"awam/internal/wam"
)

// This file is the execution side of the specialization stage
// (internal/specialize): a dense dispatch loop over the per-SCC
// specialized streams, superinstruction transfer functions, the static
// call-site pattern cache and the materialization-plan cache.
//
// Byte-identity contract: every path here reuses the generic engine's
// transfer helpers (getList, getStruct, absUnify, absBuiltin,
// abstractArgs, materialize) and reproduces runClause's per-instruction
// accounting order exactly — error check, budget draw, step increment,
// periodic tick, opcode-histogram charge — with fused words charging
// each base opcode at the point its sub-operation runs. Results, Steps
// and the opcode histogram are therefore identical to the generic
// switch; only wall time (and, under PreIntern, interner traffic)
// changes.

// run executes one clause abstractly, through the specialized stream
// when the clause was specialized and specialization is active, else
// through the generic switch. Tracing runs force the generic path: the
// Tracer contract fires per wam instruction, which the fused words no
// longer are.
func (a *Analyzer) run(clauseAddr int) bool {
	if a.specOn {
		if loc := a.spec.Loc(clauseAddr); loc.Comp >= 0 {
			return a.runStream(a.spec.Comps[loc.Comp], loc.Clause)
		}
	}
	return a.runClause(clauseAddr)
}

// charge performs runClause's per-instruction accounting for one base
// opcode; false aborts the clause exactly as the generic loop would.
func (a *Analyzer) charge(op wam.Op) bool {
	if a.err != nil {
		return false
	}
	if a.allow <= 0 && !a.refillSteps() {
		a.fail(ErrStepLimit)
		return false
	}
	a.allow--
	a.Steps++
	if a.Steps&0xFFF == 0 && !a.tick() {
		return false
	}
	a.met.opcodes[op]++
	return true
}

// runStream executes one specialized clause: a dense switch over
// compact 16-byte words with pre-resolved operands, register growth
// hoisted to clause entry, and environment frames drawn from a reusable
// pool instead of the garbage collector.
func (a *Analyzer) runStream(cs *specialize.CompStream, clause int32) bool {
	ci := &cs.Clauses[clause]
	a.ensureX(int(ci.MaxX))
	var env []rt.Cell
	defer func() {
		if env != nil {
			a.releaseEnv(env)
		}
	}()
	s := 0
	mode := readMode
	code := cs.Code
	for p := int(ci.Off); ; p++ {
		ins := &code[p]
		if !a.charge(ins.W) {
			return false
		}
		switch ins.Op {
		case specialize.SNop:

		case specialize.SGetVarX:
			a.x[ins.B] = a.x[ins.A]
		case specialize.SGetVarY:
			env[ins.B] = a.x[ins.A]
		case specialize.SGetValX:
			if !a.absUnify(a.x[ins.B], a.x[ins.A]) {
				return false
			}
		case specialize.SGetValY:
			if !a.absUnify(env[ins.B], a.x[ins.A]) {
				return false
			}
		case specialize.SGetCell:
			if !a.absUnify(a.x[ins.A], cs.Cells[ins.K]) {
				return false
			}
		case specialize.SGetList:
			ok, ns, nm := a.getList(a.x[ins.A])
			if !ok {
				return false
			}
			s, mode = ns, nm
		case specialize.SGetStruct:
			ok, ns, nm := a.getStruct(a.x[ins.A], cs.Fns[ins.K])
			if !ok {
				return false
			}
			s, mode = ns, nm

		case specialize.SPutVarX:
			v := a.h.PushVar()
			a.x[ins.B] = rt.MkRef(v)
			a.x[ins.A] = rt.MkRef(v)
		case specialize.SPutVarY:
			v := a.h.PushVar()
			env[ins.B] = rt.MkRef(v)
			a.x[ins.A] = rt.MkRef(v)
		case specialize.SPutValX:
			a.x[ins.A] = a.x[ins.B]
		case specialize.SPutValY:
			a.x[ins.A] = env[ins.B]
		case specialize.SPutCell:
			a.x[ins.A] = cs.Cells[ins.K]
		case specialize.SPutList:
			a.x[ins.A] = rt.Cell{Tag: rt.Lis, A: a.h.Top()}
			mode = writeMode
		case specialize.SPutStruct:
			fnAddr := a.h.Push(rt.Cell{Tag: rt.Fun, F: cs.Fns[ins.K]})
			a.x[ins.A] = rt.Cell{Tag: rt.Str, A: fnAddr}
			mode = writeMode

		case specialize.SUnifyVarX:
			if mode == readMode {
				a.x[ins.A] = rt.MkRef(s)
				s++
			} else {
				a.x[ins.A] = rt.MkRef(a.h.PushVar())
			}
		case specialize.SUnifyVarY:
			if mode == readMode {
				env[ins.A] = rt.MkRef(s)
				s++
			} else {
				env[ins.A] = rt.MkRef(a.h.PushVar())
			}
		case specialize.SUnifyValX:
			if mode == readMode {
				if !a.absUnify(a.x[ins.A], rt.MkRef(s)) {
					return false
				}
				s++
			} else {
				a.h.Push(a.x[ins.A])
			}
		case specialize.SUnifyValY:
			if mode == readMode {
				if !a.absUnify(env[ins.A], rt.MkRef(s)) {
					return false
				}
				s++
			} else {
				a.h.Push(env[ins.A])
			}
		case specialize.SUnifyCell:
			if mode == readMode {
				if !a.absUnify(rt.MkRef(s), cs.Cells[ins.K]) {
					return false
				}
				s++
			} else {
				a.h.Push(cs.Cells[ins.K])
			}
		case specialize.SUnifyVoid:
			if mode == readMode {
				s += int(ins.A)
			} else {
				for i := 0; i < int(ins.A); i++ {
					a.h.PushVar()
				}
			}

		case specialize.SAllocate:
			env = a.allocEnv(int(ins.A))
		case specialize.SDeallocate:
			// Same as the generic engine: the frame stays reachable until
			// the clause ends (it returns to the pool then).
		case specialize.SCall:
			if !a.specCall(cs, ins.K) {
				return false
			}
		case specialize.SExecute:
			if !a.specCall(cs, ins.K) {
				return false
			}
			return !a.specFail
		case specialize.SProceed:
			return !a.specFail
		case specialize.SBuiltin:
			if !a.absBuiltin(wam.BuiltinID(ins.A), int(ins.B)) {
				return false
			}
		case specialize.SHalt:
			return !a.specFail
		case specialize.SCutNop:

		// --- fused superinstructions: anchor + two unify slots, each
		// sub-operation charged at its own execution point so budget
		// exhaustion and failure land on the same step as generic ---
		case specialize.SFGetList2:
			ok, ns, nm := a.getList(a.x[ins.A])
			if !ok {
				return false
			}
			s, mode = ns, nm
			a.met.fusedOps[0]++
			if s, mode, ok = a.fusedSlot(cs, ins.M&3, ins.W1, ins.B, s, mode); !ok {
				return false
			}
			if s, mode, ok = a.fusedSlot(cs, (ins.M>>2)&3, ins.W2, ins.C, s, mode); !ok {
				return false
			}
		case specialize.SFGetStruct2:
			ok, ns, nm := a.getStruct(a.x[ins.A], cs.Fns[ins.K])
			if !ok {
				return false
			}
			s, mode = ns, nm
			a.met.fusedOps[1]++
			if s, mode, ok = a.fusedSlot(cs, ins.M&3, ins.W1, ins.B, s, mode); !ok {
				return false
			}
			if s, mode, ok = a.fusedSlot(cs, (ins.M>>2)&3, ins.W2, ins.C, s, mode); !ok {
				return false
			}
		case specialize.SFPutList2:
			a.x[ins.A] = rt.Cell{Tag: rt.Lis, A: a.h.Top()}
			mode = writeMode
			a.met.fusedOps[2]++
			var ok bool
			if s, mode, ok = a.fusedSlot(cs, ins.M&3, ins.W1, ins.B, s, mode); !ok {
				return false
			}
			if s, mode, ok = a.fusedSlot(cs, (ins.M>>2)&3, ins.W2, ins.C, s, mode); !ok {
				return false
			}
		case specialize.SFPutStruct2:
			fnAddr := a.h.Push(rt.Cell{Tag: rt.Fun, F: cs.Fns[ins.K]})
			a.x[ins.A] = rt.Cell{Tag: rt.Str, A: fnAddr}
			mode = writeMode
			a.met.fusedOps[3]++
			var ok bool
			if s, mode, ok = a.fusedSlot(cs, ins.M&3, ins.W1, ins.B, s, mode); !ok {
				return false
			}
			if s, mode, ok = a.fusedSlot(cs, (ins.M>>2)&3, ins.W2, ins.C, s, mode); !ok {
				return false
			}
		}
	}
}

// fusedSlot executes one fused unify slot: charge its base opcode, then
// run the same mode-dependent transfer the generic switch would.
func (a *Analyzer) fusedSlot(cs *specialize.CompStream, kind uint8, w wam.Op, operand uint16, s int, mode absMode) (int, absMode, bool) {
	if !a.charge(w) {
		return s, mode, false
	}
	switch kind {
	case specialize.SlotVarX:
		if mode == readMode {
			a.x[operand] = rt.MkRef(s)
			s++
		} else {
			a.x[operand] = rt.MkRef(a.h.PushVar())
		}
	case specialize.SlotValX:
		if mode == readMode {
			if !a.absUnify(a.x[operand], rt.MkRef(s)) {
				return s, mode, false
			}
			s++
		} else {
			a.h.Push(a.x[operand])
		}
	case specialize.SlotCell:
		if mode == readMode {
			if !a.absUnify(rt.MkRef(s), cs.Cells[operand]) {
				return s, mode, false
			}
			s++
		} else {
			a.h.Push(cs.Cells[operand])
		}
	}
	return s, mode, true
}

// staticPat caches a static call site's calling pattern: the builder
// proved the site's arguments are rebuilt identically on every
// execution, so the abstraction and interner round trip run once per
// analysis.
type staticPat struct {
	cp *domain.Pattern
	id domain.PatternID
	ok bool
}

// specCall is absCall over a pre-resolved CallRef: argument slices come
// from a pool, static sites read their cached calling pattern, and the
// success pattern is applied through the materialization-plan cache.
func (a *Analyzer) specCall(cs *specialize.CompStream, k int32) bool {
	cr := &cs.Calls[k]
	fn := cr.Fn
	argAddrs := a.allocArgs(fn.Arity)
	defer a.releaseArgs(argAddrs)
	for i := 0; i < fn.Arity; i++ {
		a.ensureX(i + 1)
		c := a.x[i+1]
		if c.Tag == rt.Ref {
			argAddrs[i] = c.A
		} else {
			argAddrs[i] = a.h.Push(c)
		}
	}
	var cp *domain.Pattern
	var id domain.PatternID
	if a.specPre && cr.Static >= 0 {
		if a.staticCalls == nil {
			a.staticCalls = make([]staticPat, a.spec.StaticSites)
		}
		sc := &a.staticCalls[cr.Static]
		if !sc.ok {
			sc.cp = a.abstractArgs(fn, argAddrs)
			sc.id = a.intern(sc.cp)
			sc.cp = a.in.Pattern(sc.id)
			sc.ok = true
		}
		cp, id = sc.cp, sc.id
	} else {
		cp = a.abstractArgs(fn, argAddrs)
		id = a.intern(cp)
	}
	succ, succID := a.solveID(cp, id)
	if a.err != nil {
		return false
	}
	if succ == nil {
		if a.par != nil {
			// Parallel speculative discovery, as in absCall: keep running
			// to surface later goals' calling patterns, poison the success.
			a.specFail = true
			return true
		}
		return false
	}
	return a.applyPatternID(succ, succID, argAddrs)
}

// solveID is solve over a pre-interned calling pattern: the same
// strategy dispatch, returning the success pattern with its interned ID
// so callers can reuse it (materialization plans, growth checks).
func (a *Analyzer) solveID(cp *domain.Pattern, id domain.PatternID) (*domain.Pattern, domain.PatternID) {
	if a.fin != nil {
		return a.solveFinID(cp, id)
	}
	if a.par != nil {
		return a.solveParID(cp, id)
	}
	if a.wl != nil {
		return a.solveWLID(cp, id)
	}
	return a.solveNaiveID(cp, id)
}

// matPlan is a cached materialization: the cell block materialize(p)
// pushes, with address payloads relativized to the block base, plus the
// root offsets. Replaying a plan appends the block and rebases the
// addresses — byte-identical cells to a fresh materialize, without
// walking the pattern graph or allocating per node.
type matPlan struct {
	cells []rt.Cell
	roots []int32
	// bad marks a pattern whose materialization referenced cells outside
	// its own block (never happens with the current materializeTerm, but
	// the recorder verifies rather than assumes); such patterns always
	// take the slow path.
	bad bool
}

// planFor returns (recording on first sight) the materialization plan
// for the pattern with the given ID, or nil when the pattern must take
// the slow path this time (the recording call itself, or a bad plan).
// When nil is returned with recorded=true, the caller's materialize
// already ran as part of recording and addrs holds its result.
func (a *Analyzer) planFor(p *domain.Pattern, id domain.PatternID) (pl *matPlan, addrs []int) {
	if int(id) >= len(a.matPlans) {
		grown := make([]*matPlan, int(id)+64)
		copy(grown, a.matPlans)
		a.matPlans = grown
	}
	pl = a.matPlans[id]
	if pl == nil {
		base := a.h.Top()
		addrs = a.materialize(p)
		a.matPlans[id] = recordPlan(a.h, base, addrs)
		return nil, addrs
	}
	if pl.bad {
		return nil, a.materialize(p)
	}
	return pl, nil
}

// replayPlan appends the plan's cell block to the heap, rebases its
// address payloads and writes the rebased roots into dst (which must
// have len(pl.roots)).
func (a *Analyzer) replayPlan(pl *matPlan, dst []int) {
	h := a.h
	base := len(h.Cells)
	h.Cells = append(h.Cells, pl.cells...)
	blk := h.Cells[base:]
	for i := range blk {
		switch blk[i].Tag {
		case rt.Ref, rt.Str, rt.Lis, rt.AList:
			blk[i].A += base
		}
	}
	for i, r := range pl.roots {
		dst[i] = base + int(r)
	}
}

// materializeFast is materialize through the per-analysis plan cache,
// keyed by the pattern's interned ID.
func (a *Analyzer) materializeFast(p *domain.Pattern, id domain.PatternID) []int {
	pl, addrs := a.planFor(p, id)
	if pl == nil {
		return addrs
	}
	out := make([]int, len(pl.roots))
	a.replayPlan(pl, out)
	return out
}

// recordPlan captures the cells materialize just pushed, relativized to
// base. materializeTerm only ever references cells within its own block
// (it pushes fresh cells and links them forward); recordPlan verifies
// that and marks the plan bad otherwise.
func recordPlan(h *rt.Heap, base int, roots []int) *matPlan {
	top := h.Top()
	pl := &matPlan{
		cells: append([]rt.Cell(nil), h.Cells[base:top]...),
		roots: make([]int32, len(roots)),
	}
	for i := range pl.cells {
		switch pl.cells[i].Tag {
		case rt.Ref, rt.Str, rt.Lis, rt.AList:
			if pl.cells[i].A < base || pl.cells[i].A >= top {
				pl.bad = true
				return pl
			}
			pl.cells[i].A -= base
		}
	}
	for i, r := range roots {
		if r < base || r >= top {
			pl.bad = true
			return pl
		}
		pl.roots[i] = int32(r - base)
	}
	return pl
}

// applyPatternID is applyPattern through the materialization-plan cache
// when pre-interning is active. The materialized roots are only read
// inside the unification loop, so the replay path borrows a pooled
// slice instead of allocating.
func (a *Analyzer) applyPatternID(p *domain.Pattern, id domain.PatternID, argAddrs []int) bool {
	var matAddrs []int
	var pooled bool
	if a.specPre && id != domain.BottomID {
		pl, addrs := a.planFor(p, id)
		if pl != nil {
			matAddrs = a.allocArgs(len(pl.roots))
			pooled = true
			a.replayPlan(pl, matAddrs)
		} else {
			matAddrs = addrs
		}
	} else {
		matAddrs = a.materialize(p)
	}
	for i := range argAddrs {
		if !a.absUnify(rt.MkRef(argAddrs[i]), rt.MkRef(matAddrs[i])) {
			if pooled {
				a.releaseArgs(matAddrs)
			}
			return false
		}
	}
	if pooled {
		a.releaseArgs(matAddrs)
	}
	return true
}

// selectClausesEntry is selectClauses through the per-ID cache when
// pre-interning is active: clause selection is a pure function of the
// module and the calling pattern, which the interned ID names, and the
// fixpoint re-explores the same entries many times.
func (a *Analyzer) selectClausesEntry(proc *wam.Proc, cp *domain.Pattern, id domain.PatternID) []int {
	if !a.specPre {
		return a.selectClauses(proc, cp)
	}
	if int(id) >= len(a.selCache) {
		grown := make([][]int, int(id)+64)
		copy(grown, a.selCache)
		a.selCache = grown
		gd := make([]bool, int(id)+64)
		copy(gd, a.selDone)
		a.selDone = gd
	}
	if a.selDone[id] {
		return a.selCache[id]
	}
	out := a.selectClauses(proc, cp)
	a.selCache[id] = out
	a.selDone[id] = true
	return out
}

// materializeEntry materializes an entry's calling pattern for clause
// exploration, through the plan cache when active — the shared head of
// the four explore loops.
func (a *Analyzer) materializeEntry(cp *domain.Pattern, id domain.PatternID) []int {
	if a.specPre && id != domain.BottomID {
		return a.materializeFast(cp, id)
	}
	return a.materialize(cp)
}

// allocEnv draws a zeroed environment frame from the pool (LIFO: clause
// execution nests strictly, so frames free in reverse order).
func (a *Analyzer) allocEnv(n int) []rt.Cell {
	if k := len(a.envPool); k > 0 {
		e := a.envPool[k-1]
		a.envPool = a.envPool[:k-1]
		if cap(e) >= n {
			e = e[:n]
			for i := range e {
				e[i] = rt.Cell{}
			}
			return e
		}
	}
	return make([]rt.Cell, n)
}

func (a *Analyzer) releaseEnv(e []rt.Cell) {
	if cap(e) > 0 && len(a.envPool) < 64 {
		a.envPool = append(a.envPool, e)
	}
}

// allocArgs draws an argument-address slice from the pool.
func (a *Analyzer) allocArgs(n int) []int {
	if k := len(a.argPool); k > 0 {
		s := a.argPool[k-1]
		a.argPool = a.argPool[:k-1]
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]int, n)
}

func (a *Analyzer) releaseArgs(s []int) {
	if cap(s) > 0 && len(a.argPool) < 64 {
		a.argPool = append(a.argPool, s)
	}
}
