package compiler

import (
	"strings"
	"testing"

	"awam/internal/parser"
	"awam/internal/term"
	"awam/internal/wam"
)

func compileSrc(t *testing.T, src string) (*term.Tab, *wam.Module) {
	t.Helper()
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := Compile(tab, prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return tab, mod
}

// opsOf extracts the opcode names of a predicate's first clause.
func opsOf(mod *wam.Module, p *wam.Proc) []string {
	var out []string
	for addr := p.Clauses[0]; addr < len(mod.Code); addr++ {
		ins := mod.Code[addr]
		out = append(out, mod.DisasmInstr(ins))
		if ins.Op == wam.OpProceed || ins.Op == wam.OpExecute {
			break
		}
	}
	return out
}

// TestFigure2 reproduces the paper's Figure 2: the head of
// p(a, [f(V)|L]) compiles to get_const/get_list/unify_var sequences in
// breadth-first order.
func TestFigure2(t *testing.T) {
	tab, mod := compileSrc(t, "p(a, [f(V)|L]) :- q(V, L).")
	p := mod.Proc(tab.Func("p", 2))
	if p == nil {
		t.Fatal("p/2 not compiled")
	}
	got := opsOf(mod, p)
	want := []string{
		"get_constant a, A1",
		"get_list A2",
		"unify_variable X3",     // the car, kept in a temporary (paper's X3)
		"unify_variable X4",     // L
		"get_structure f/1, A3", // the paper writes X3; A and X name the same bank
		"unify_variable X5",     // V
	}
	for i, w := range want {
		if i >= len(got) || got[i] != w {
			t.Fatalf("instruction %d = %q, want %q\nfull: %s", i, got[i], w, strings.Join(got, "\n"))
		}
	}
	// The body must pass V then L and use last-call optimization.
	rest := got[len(want):]
	joined := strings.Join(rest, "\n")
	if !strings.Contains(joined, "execute q/2") {
		t.Fatalf("body should execute q/2, got:\n%s", joined)
	}
}

func TestFactCompilesToProceed(t *testing.T) {
	tab, mod := compileSrc(t, "a.")
	p := mod.Proc(tab.Func("a", 0))
	if got := opsOf(mod, p); len(got) != 1 || got[0] != "proceed" {
		t.Fatalf("fact code = %v", got)
	}
}

func TestLastCallOptimization(t *testing.T) {
	tab, mod := compileSrc(t, "p(X) :- q(X), r(X).\nq(_).\nr(_).")
	p := mod.Proc(tab.Func("p", 1))
	got := strings.Join(opsOf(mod, p), "\n")
	if !strings.Contains(got, "allocate") {
		t.Fatalf("two-call clause must allocate:\n%s", got)
	}
	if !strings.Contains(got, "call q/1") {
		t.Fatalf("first goal must use call:\n%s", got)
	}
	if !strings.Contains(got, "deallocate\nexecute r/1") {
		t.Fatalf("last goal must deallocate+execute:\n%s", got)
	}
}

func TestPermanentVariableGoesToY(t *testing.T) {
	tab, mod := compileSrc(t, "p(X, Y) :- q(X), r(Y).\nq(_).\nr(_).")
	p := mod.Proc(tab.Func("p", 2))
	got := strings.Join(opsOf(mod, p), "\n")
	// Y crosses from head to the second goal: must live in Y.
	if !strings.Contains(got, "get_variable Y0, A2") {
		t.Fatalf("Y should be permanent:\n%s", got)
	}
	// X is only needed for the first goal: stays temporary.
	if strings.Contains(got, "get_variable Y0, A1") || strings.Contains(got, "get_variable Y1, A1") {
		t.Fatalf("X should be temporary:\n%s", got)
	}
}

func TestNeckCut(t *testing.T) {
	tab, mod := compileSrc(t, "p(X) :- !, q(X).\np(_).\nq(_).")
	p := mod.Proc(tab.Func("p", 1))
	got := strings.Join(opsOf(mod, p), "\n")
	if !strings.Contains(got, "neck_cut") {
		t.Fatalf("expected neck_cut:\n%s", got)
	}
	if strings.Contains(got, "get_level") {
		t.Fatalf("neck cut should not need get_level:\n%s", got)
	}
}

func TestDeepCut(t *testing.T) {
	tab, mod := compileSrc(t, "p(X) :- q(X), !, r(X).\nq(_).\nr(_).")
	p := mod.Proc(tab.Func("p", 1))
	got := strings.Join(opsOf(mod, p), "\n")
	if !strings.Contains(got, "get_level") || !strings.Contains(got, "cut Y") {
		t.Fatalf("expected get_level/cut:\n%s", got)
	}
}

func TestBuiltinGoal(t *testing.T) {
	tab, mod := compileSrc(t, "p(X, Y) :- Y is X + 1.")
	p := mod.Proc(tab.Func("p", 2))
	got := strings.Join(opsOf(mod, p), "\n")
	if !strings.Contains(got, "builtin is/2") {
		t.Fatalf("expected builtin is/2:\n%s", got)
	}
	if !strings.Contains(got, "put_structure +/2") {
		t.Fatalf("arith argument must be constructed:\n%s", got)
	}
}

func TestChoiceChain(t *testing.T) {
	tab, mod := compileSrc(t, "p(1).\np(2).\np(3).")
	p := mod.Proc(tab.Func("p", 1))
	if len(p.Clauses) != 3 {
		t.Fatalf("expected 3 clause addresses, got %d", len(p.Clauses))
	}
	// Entry is a switch (all const first args); the chain uses
	// try_me_else/retry_me_else/trust_me.
	if mod.Code[p.Entry].Op != wam.OpSwitchOnTerm {
		t.Fatalf("entry should be switch_on_term, got %s", mod.DisasmInstr(mod.Code[p.Entry]))
	}
	if mod.Code[p.Clauses[0]-1].Op != wam.OpTryMeElse {
		t.Fatal("clause 1 not preceded by try_me_else")
	}
	if mod.Code[p.Clauses[1]-1].Op != wam.OpRetryMeElse {
		t.Fatal("clause 2 not preceded by retry_me_else")
	}
	if mod.Code[p.Clauses[2]-1].Op != wam.OpTrustMe {
		t.Fatal("clause 3 not preceded by trust_me")
	}
	// The try_me_else of clause 1 must point at the retry_me_else.
	if got := mod.Code[p.Clauses[0]-1].L; got != p.Clauses[1]-1 {
		t.Fatalf("try_me_else target = %d, want %d", got, p.Clauses[1]-1)
	}
}

func TestSwitchOnConstTable(t *testing.T) {
	tab, mod := compileSrc(t, "p(1).\np(2).\np(3).")
	p := mod.Proc(tab.Func("p", 1))
	sw := mod.Code[p.Entry]
	if sw.LC == wam.FailAddr {
		t.Fatal("constant switch missing")
	}
	tbl := mod.Code[sw.LC]
	if tbl.Op != wam.OpSwitchOnConst || len(tbl.TblC) != 3 {
		t.Fatalf("expected 3-entry constant table, got %s", mod.DisasmInstr(tbl))
	}
	if tbl.TblC[wam.ConstKey{IsInt: true, I: 2}] != p.Clauses[1] {
		t.Fatal("constant 2 should dispatch directly to clause 2")
	}
	if sw.LL != wam.FailAddr || sw.LS != wam.FailAddr {
		t.Fatal("list/struct switch arms should fail for all-constant heads")
	}
}

func TestVarHeadDisablesIndexing(t *testing.T) {
	tab, mod := compileSrc(t, "p(1).\np(_).")
	p := mod.Proc(tab.Func("p", 1))
	if mod.Code[p.Entry].Op == wam.OpSwitchOnTerm {
		t.Fatal("variable head argument must disable indexing")
	}
}

func TestMixedIndexBuckets(t *testing.T) {
	tab, mod := compileSrc(t,
		"p([]).\np([_|_]).\np(f(_)).\np(g(_)).\n")
	p := mod.Proc(tab.Func("p", 1))
	sw := mod.Code[p.Entry]
	if sw.Op != wam.OpSwitchOnTerm {
		t.Fatal("expected switch_on_term")
	}
	if sw.LL != p.Clauses[1] {
		t.Fatal("single list clause should dispatch directly")
	}
	stbl := mod.Code[sw.LS]
	if stbl.Op != wam.OpSwitchOnStruct || len(stbl.TblS) != 2 {
		t.Fatalf("expected 2-entry structure table, got %s", mod.DisasmInstr(stbl))
	}
	_ = tab
}

func TestUndefinedPredicateWarns(t *testing.T) {
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, "p :- q.")
	if err != nil {
		t.Fatal(err)
	}
	c := &Compiler{tab: tab, opts: DefaultOptions(), builtins: wam.Builtins(tab),
		mod: &wam.Module{Tab: tab, Procs: make(map[term.Functor]*wam.Proc)}}
	for _, f := range prog.Order {
		if err := c.compileProc(f, prog.ClausesOf(f)); err != nil {
			t.Fatal(err)
		}
	}
	c.resolveFixups()
	if len(c.Warnings) != 1 || !strings.Contains(c.Warnings[0], "q/0") {
		t.Fatalf("warnings = %v", c.Warnings)
	}
}

func TestDisjunctionExpansion(t *testing.T) {
	tab, mod := compileSrc(t, "p(X) :- (X = a ; X = b).\n")
	// The disjunction becomes an auxiliary two-clause predicate.
	found := false
	for _, fn := range mod.Order {
		name := tab.Name(fn.Name)
		if strings.HasPrefix(name, "$or") {
			found = true
			if got := len(mod.Proc(fn).Clauses); got != 2 {
				t.Fatalf("auxiliary predicate has %d clauses, want 2", got)
			}
		}
	}
	if !found {
		t.Fatal("no auxiliary disjunction predicate generated")
	}
}

func TestIfThenElseExpansion(t *testing.T) {
	tab, mod := compileSrc(t, "max(X, Y, Z) :- (X >= Y -> Z = X ; Z = Y).\n")
	found := false
	for _, fn := range mod.Order {
		if strings.HasPrefix(tab.Name(fn.Name), "$ite") {
			found = true
		}
	}
	if !found {
		t.Fatal("no auxiliary if-then-else predicate generated")
	}
}

func TestNegationExpansion(t *testing.T) {
	tab, mod := compileSrc(t, "single(X) :- \\+ pair(X).\npair(f(_, _)).\n")
	found := false
	for _, fn := range mod.Order {
		if strings.HasPrefix(tab.Name(fn.Name), "$not") {
			found = true
			if got := len(mod.Proc(fn).Clauses); got != 2 {
				t.Fatalf("negation predicate has %d clauses, want 2", got)
			}
		}
	}
	if !found {
		t.Fatal("no auxiliary negation predicate generated")
	}
}

func TestNestedControlExpansion(t *testing.T) {
	// Disjunction nested inside if-then-else branches.
	_, mod := compileSrc(t, "p(X) :- (X > 0 -> (X = 1 ; X = 2) ; X = 0).\n")
	if mod.Size() == 0 {
		t.Fatal("nested control should compile")
	}
}

func TestRejectBuiltinRedefinition(t *testing.T) {
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, "is(X, X).")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(tab, prog); err == nil {
		t.Fatal("expected error redefining is/2")
	}
}

func TestVoidSubterm(t *testing.T) {
	tab, mod := compileSrc(t, "p(f(_, _)).")
	p := mod.Proc(tab.Func("p", 1))
	got := strings.Join(opsOf(mod, p), "\n")
	if !strings.Contains(got, "unify_void") {
		t.Fatalf("anonymous subterms should compile to unify_void:\n%s", got)
	}
}

func TestAddQuery(t *testing.T) {
	tab, mod := compileSrc(t, "p(1).\np(2).")
	goals, err := parser.ParseGoal(tab, "p(X)")
	if err != nil {
		t.Fatal(err)
	}
	fn, vars, err := AddQuery(mod, goals)
	if err != nil {
		t.Fatal(err)
	}
	if fn.Arity != 1 || len(vars) != 1 || vars[0].Ref.Name != "X" {
		t.Fatalf("query functor %v vars %v", fn, vars)
	}
	if mod.Proc(fn) == nil {
		t.Fatal("query predicate not registered")
	}
}

func TestDisasmCoversWholeModule(t *testing.T) {
	_, mod := compileSrc(t, "p(a, [f(V)|L]) :- q(V, L).\nq(_, _).")
	text := mod.Disasm()
	if !strings.Contains(text, "p/2") || !strings.Contains(text, "get_list A2") {
		t.Fatalf("disassembly incomplete:\n%s", text)
	}
}
