package compiler

import (
	"fmt"

	"awam/internal/term"
)

// expandControl rewrites the control constructs ';'/2, '->'/2 (inside a
// disjunction or alone) and '\+'/1 into auxiliary predicates, the
// standard preprocessing used by WAM compilers:
//
//	p :- a, (b ; c), d.        =>  p :- a, '$or1'(V...), d.
//	                               '$or1'(V...) :- b.
//	                               '$or1'(V...) :- c.
//
//	( C -> T ; E )             =>  '$ite1'(V...) :- C, !, T.
//	                               '$ite1'(V...) :- E.
//
//	\+ G                       =>  '$not1'(V...) :- G, !, fail.
//	                               '$not1'(V...).
//
// where V... are the variables of the construct (shared variables keep
// their bindings through the auxiliary call). Note the cut inserted for
// '->' and '\+' is local to the auxiliary predicate, which is exactly
// the intended semantics; a user-written '!' inside a disjunction also
// becomes local to its branch (transparent cut is not supported — the
// benchmark suite never relies on it).
func expandControl(tab *term.Tab, clauses []term.Clause) []term.Clause {
	e := &expander{tab: tab}
	for _, c := range clauses {
		e.clause(c)
	}
	return e.out
}

// ExpandedProgram returns the program after control-construct expansion
// — the clause-level view the compiled code implements. Source-level
// analyzers (internal/baseline) use it to see the same program the
// abstract machine analyzes. Expansion is deterministic, so auxiliary
// predicate names here match those in the compiled module.
func ExpandedProgram(tab *term.Tab, prog *term.Program) (*term.Program, error) {
	expanded := expandControl(tab, prog.Clauses)
	if len(expanded) == len(prog.Clauses) {
		return prog, nil
	}
	return term.NewProgram(expanded)
}

type expander struct {
	tab  *term.Tab
	out  []term.Clause
	next int
}

func (e *expander) clause(c term.Clause) {
	var body []*term.Term
	for _, g := range c.Body {
		body = append(body, e.goal(g))
	}
	e.out = append(e.out, term.Clause{Head: c.Head, Body: body})
}

// goal rewrites one body goal, emitting auxiliary clauses as needed.
func (e *expander) goal(g *term.Term) *term.Term {
	fn, ok := term.Indicator(g)
	if !ok {
		return g
	}
	switch {
	case fn.Name == e.tab.Intern(";") && fn.Arity == 2:
		// If-then-else when the left operand is C -> T.
		l := g.Args[0]
		if lf, lok := term.Indicator(l); lok && lf.Name == e.tab.Intern("->") && lf.Arity == 2 {
			return e.emitAux("$ite", g, [][]*term.Term{
				append(append(e.conj(l.Args[0]), term.MkAtom(e.tab.Cut)), e.conj(l.Args[1])...),
				e.conj(g.Args[1]),
			})
		}
		return e.emitAux("$or", g, [][]*term.Term{
			e.conj(g.Args[0]),
			e.conj(g.Args[1]),
		})
	case fn.Name == e.tab.Intern("->") && fn.Arity == 2:
		// A bare if-then (no else): fails when the condition fails.
		return e.emitAux("$ite", g, [][]*term.Term{
			append(append(e.conj(g.Args[0]), term.MkAtom(e.tab.Cut)), e.conj(g.Args[1])...),
		})
	case fn.Name == e.tab.Intern("\\+") && fn.Arity == 1:
		return e.emitAux("$not", g, [][]*term.Term{
			append(e.conj(g.Args[0]), term.MkAtom(e.tab.Cut), term.MkAtom(e.tab.Fail)),
			nil,
		})
	default:
		return g
	}
}

// conj flattens a conjunction into a goal list, recursively expanding
// nested control constructs.
func (e *expander) conj(tm *term.Term) []*term.Term {
	comma := term.Functor{Name: e.tab.Comma, Arity: 2}
	var out []*term.Term
	var walk func(t *term.Term)
	walk = func(t *term.Term) {
		if t.Kind == term.KStruct && t.Fn == comma {
			walk(t.Args[0])
			walk(t.Args[1])
			return
		}
		out = append(out, e.goal(t))
	}
	walk(tm)
	return out
}

// emitAux creates the auxiliary predicate for construct g with the given
// clause bodies and returns the replacement call.
func (e *expander) emitAux(kind string, g *term.Term, bodies [][]*term.Term) *term.Term {
	vars := collectVars(g)
	e.next++
	name := fmt.Sprintf("%s%d", kind, e.next)
	fn := e.tab.Func(name, len(vars))

	for _, body := range bodies {
		// Each clause shares the construct's variables through the head.
		head := term.MkStruct(fn, varTerms(vars)...)
		e.out = append(e.out, term.Clause{Head: head, Body: body})
	}
	return term.MkStruct(fn, varTerms(vars)...)
}

func collectVars(tm *term.Term) []*term.VarRef {
	seen := make(map[*term.VarRef]bool)
	var out []*term.VarRef
	var walk func(t *term.Term)
	walk = func(t *term.Term) {
		switch t.Kind {
		case term.KVar:
			if !seen[t.Ref] {
				seen[t.Ref] = true
				out = append(out, t.Ref)
			}
		case term.KStruct:
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	walk(tm)
	return out
}

func varTerms(refs []*term.VarRef) []*term.Term {
	out := make([]*term.Term, len(refs))
	for i, r := range refs {
		out[i] = &term.Term{Kind: term.KVar, Ref: r}
	}
	return out
}
