package compiler

import (
	"fmt"

	"awam/internal/term"
	"awam/internal/wam"
)

// bodyItem is one step of a clause body after preprocessing: a user call,
// an inline builtin, or a cut.
type bodyItem struct {
	goal    *term.Term
	builtin wam.BuiltinID
	isCall  bool
	isCut   bool
}

// clauseCtx carries per-clause compilation state.
type clauseCtx struct {
	c     *Compiler
	occ   map[*term.VarRef]int // total occurrences in the clause
	perm  map[*term.VarRef]int // permanent variables -> Y slot
	temp  map[*term.VarRef]int // temporary variables -> X register
	seen  map[*term.VarRef]bool
	nextX int
	// cutY is the Y slot holding the cut barrier, -1 when unused.
	cutY int
}

// compileClause emits code for one clause and returns its environment
// size (0 when the clause does not allocate).
func (c *Compiler) compileClause(cl term.Clause) (int, error) {
	items, err := c.preprocessBody(cl.Body)
	if err != nil {
		return 0, err
	}

	ctx := &clauseCtx{
		c:    c,
		occ:  make(map[*term.VarRef]int),
		perm: make(map[*term.VarRef]int),
		temp: make(map[*term.VarRef]int),
		seen: make(map[*term.VarRef]bool),
		cutY: -1,
	}
	countOcc(cl.Head, ctx.occ)
	for _, it := range items {
		if it.goal != nil {
			countOcc(it.goal, ctx.occ)
		}
	}

	// Permanent variables: those occurring in more than one region, where
	// the head shares the first real goal's region.
	region := make(map[*term.VarRef]int)
	multi := make(map[*term.VarRef]bool)
	assignRegion := func(tm *term.Term, r int) {
		forEachVar(tm, func(v *term.VarRef) {
			if prev, ok := region[v]; ok && prev != r {
				multi[v] = true
			}
			region[v] = r
		})
	}
	assignRegion(cl.Head, 0)
	r := 0
	for _, it := range items {
		if it.isCut || it.goal == nil {
			continue
		}
		assignRegion(it.goal, r)
		r++
	}

	// Allocate Y slots in first-occurrence order for determinism.
	var orderVars []*term.VarRef
	collect := func(tm *term.Term) {
		forEachVar(tm, func(v *term.VarRef) {
			if multi[v] {
				if _, ok := ctx.perm[v]; !ok {
					ctx.perm[v] = len(orderVars)
					orderVars = append(orderVars, v)
				}
			}
		})
	}
	collect(cl.Head)
	for _, it := range items {
		if it.goal != nil {
			collect(it.goal)
		}
	}

	// Deep cut: a cut appearing after at least one call/builtin region.
	deepCut := false
	seenGoal := false
	for _, it := range items {
		if it.isCut && seenGoal {
			deepCut = true
		}
		if !it.isCut {
			seenGoal = true
		}
	}

	envSize := len(ctx.perm)
	if deepCut {
		ctx.cutY = envSize
		envSize++
	}
	nGoals := 0
	nCalls := 0
	for _, it := range items {
		if !it.isCut {
			nGoals++
			if it.isCall {
				nCalls++
			}
		}
	}
	hasEnv := envSize > 0 || nGoals >= 2

	// Register numbering: argument registers are X1..Xarity for the head
	// and every body goal; temporaries live above all of them.
	maxArity := headArity(cl.Head)
	for _, it := range items {
		if it.goal != nil && it.goal.Kind == term.KStruct {
			if a := len(it.goal.Args); a > maxArity {
				maxArity = a
			}
		}
	}
	ctx.nextX = maxArity + 1

	if hasEnv {
		c.emit(wam.Instr{Op: wam.OpAllocate, A2: envSize})
		if deepCut {
			c.emit(wam.Instr{Op: wam.OpGetLevel, A2: ctx.cutY})
		}
	}

	ctx.compileHead(cl.Head)

	// Body emission.
	lastCallIdx := -1
	for i, it := range items {
		if it.isCall && i == len(items)-1 {
			lastCallIdx = i
		}
	}
	calledYet := false
	for i, it := range items {
		switch {
		case it.isCut:
			if !calledYet {
				c.emit(wam.Instr{Op: wam.OpNeckCut})
			} else {
				c.emit(wam.Instr{Op: wam.OpCutTo, A2: ctx.cutY})
			}
		case it.isCall:
			ctx.compileGoalArgs(it.goal)
			fn, _ := term.Indicator(it.goal)
			if i == lastCallIdx {
				if hasEnv {
					c.emit(wam.Instr{Op: wam.OpDeallocate})
				}
				addr := c.emit(wam.Instr{Op: wam.OpExecute, Fn: fn})
				c.fixups = append(c.fixups, fixup{addr: addr, fn: fn})
				return envSize, nil
			}
			addr := c.emit(wam.Instr{Op: wam.OpCall, Fn: fn})
			c.fixups = append(c.fixups, fixup{addr: addr, fn: fn})
			calledYet = true
		default: // builtin
			ctx.compileGoalArgs(it.goal)
			c.emit(wam.Instr{Op: wam.OpBuiltin, A1: int(it.builtin), A2: goalArity(it.goal)})
		}
	}
	if hasEnv {
		c.emit(wam.Instr{Op: wam.OpDeallocate})
	}
	c.emit(wam.Instr{Op: wam.OpProceed})
	return envSize, nil
}

// preprocessBody classifies goals, drops 'true', and rejects constructs
// outside the compiled subset.
func (c *Compiler) preprocessBody(body []*term.Term) ([]bodyItem, error) {
	var items []bodyItem
	for _, g := range body {
		fn, ok := term.Indicator(g)
		if !ok {
			return nil, fmt.Errorf("compiler: body goal %s is not callable", c.tab.Write(g))
		}
		switch {
		case fn.Name == c.tab.Cut && fn.Arity == 0:
			items = append(items, bodyItem{isCut: true})
		case fn.Name == c.tab.True && fn.Arity == 0:
			// no code
		case fn.Name == c.tab.Intern(";") && fn.Arity == 2,
			fn.Name == c.tab.Intern("->") && fn.Arity == 2,
			fn.Name == c.tab.Intern("\\+") && fn.Arity == 1:
			return nil, fmt.Errorf("compiler: control construct %s unsupported (define an auxiliary predicate)", c.tab.FuncString(fn))
		default:
			if id, isBI := c.builtins[fn]; isBI {
				items = append(items, bodyItem{goal: g, builtin: id})
			} else {
				items = append(items, bodyItem{goal: g, isCall: true})
			}
		}
	}
	return items, nil
}

func countOcc(tm *term.Term, occ map[*term.VarRef]int) {
	forEachVar(tm, func(v *term.VarRef) { occ[v]++ })
}

func forEachVar(tm *term.Term, f func(*term.VarRef)) {
	switch tm.Kind {
	case term.KVar:
		f(tm.Ref)
	case term.KStruct:
		for _, a := range tm.Args {
			forEachVar(a, f)
		}
	}
}

func headArity(h *term.Term) int {
	if h.Kind == term.KStruct {
		return len(h.Args)
	}
	return 0
}

func goalArity(g *term.Term) int {
	if g.Kind == term.KStruct {
		return len(g.Args)
	}
	return 0
}

// --- head compilation (get/unify, breadth-first) ---

// pendingSub is a queued nested subterm: the structure in register reg
// still needs its get+unify sequence.
type pendingSub struct {
	reg int
	tm  *term.Term
}

func (ctx *clauseCtx) compileHead(h *term.Term) {
	if h.Kind != term.KStruct {
		return // arity-0 head: nothing to unify
	}
	var queue []pendingSub
	for i, arg := range h.Args {
		ai := i + 1
		switch arg.Kind {
		case term.KVar:
			ctx.emitHeadVar(arg.Ref, ai)
		case term.KInt:
			ctx.c.emit(wam.Instr{Op: wam.OpGetInt, A1: ai, I: arg.Int})
		case term.KAtom:
			if arg.Fn.Name == ctx.c.tab.Nil {
				ctx.c.emit(wam.Instr{Op: wam.OpGetNil, A1: ai})
			} else {
				ctx.c.emit(wam.Instr{Op: wam.OpGetConst, A1: ai, Fn: arg.Fn})
			}
		case term.KStruct:
			queue = ctx.emitGetStruct(ai, arg, queue)
		}
	}
	// Breadth-first processing of nested structures (Figure 2 order).
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		queue = ctx.emitGetStruct(p.reg, p.tm, queue)
	}
}

// emitGetStruct emits get_list/get_structure for tm against register reg
// followed by its unify sequence, queuing nested structures.
func (ctx *clauseCtx) emitGetStruct(reg int, tm *term.Term, queue []pendingSub) []pendingSub {
	if ctx.c.tab.IsCons(tm) {
		ctx.c.emit(wam.Instr{Op: wam.OpGetList, A1: reg})
	} else {
		ctx.c.emit(wam.Instr{Op: wam.OpGetStruct, A1: reg, Fn: tm.Fn})
	}
	return ctx.emitUnifySeq(tm.Args, queue)
}

// emitUnifySeq emits the unify instructions for the immediate subterms.
func (ctx *clauseCtx) emitUnifySeq(args []*term.Term, queue []pendingSub) []pendingSub {
	for _, sub := range args {
		switch sub.Kind {
		case term.KVar:
			ctx.emitUnifyVar(sub.Ref)
		case term.KInt:
			ctx.c.emit(wam.Instr{Op: wam.OpUnifyInt, I: sub.Int})
		case term.KAtom:
			if sub.Fn.Name == ctx.c.tab.Nil {
				ctx.c.emit(wam.Instr{Op: wam.OpUnifyNil})
			} else {
				ctx.c.emit(wam.Instr{Op: wam.OpUnifyConst, Fn: sub.Fn})
			}
		case term.KStruct:
			x := ctx.nextX
			ctx.nextX++
			ctx.c.emit(wam.Instr{Op: wam.OpUnifyVarX, A2: x})
			queue = append(queue, pendingSub{reg: x, tm: sub})
		}
	}
	return queue
}

func (ctx *clauseCtx) emitHeadVar(v *term.VarRef, ai int) {
	if ctx.occ[v] == 1 {
		return // void: the argument register already holds the value
	}
	if ctx.seen[v] {
		if y, ok := ctx.perm[v]; ok {
			ctx.c.emit(wam.Instr{Op: wam.OpGetValY, A1: ai, A2: y})
		} else {
			ctx.c.emit(wam.Instr{Op: wam.OpGetValX, A1: ai, A2: ctx.temp[v]})
		}
		return
	}
	ctx.seen[v] = true
	if y, ok := ctx.perm[v]; ok {
		ctx.c.emit(wam.Instr{Op: wam.OpGetVarY, A1: ai, A2: y})
		return
	}
	x := ctx.nextX
	ctx.nextX++
	ctx.temp[v] = x
	ctx.c.emit(wam.Instr{Op: wam.OpGetVarX, A1: ai, A2: x})
}

func (ctx *clauseCtx) emitUnifyVar(v *term.VarRef) {
	if ctx.occ[v] == 1 {
		ctx.c.emit(wam.Instr{Op: wam.OpUnifyVoid, A2: 1})
		return
	}
	if ctx.seen[v] {
		if y, ok := ctx.perm[v]; ok {
			ctx.c.emit(wam.Instr{Op: wam.OpUnifyValY, A2: y})
		} else {
			ctx.c.emit(wam.Instr{Op: wam.OpUnifyValX, A2: ctx.temp[v]})
		}
		return
	}
	ctx.seen[v] = true
	if y, ok := ctx.perm[v]; ok {
		ctx.c.emit(wam.Instr{Op: wam.OpUnifyVarY, A2: y})
		return
	}
	x := ctx.nextX
	ctx.nextX++
	ctx.temp[v] = x
	ctx.c.emit(wam.Instr{Op: wam.OpUnifyVarX, A2: x})
}

// --- body compilation (put/unify, bottom-up) ---

// compileGoalArgs loads the goal's arguments into A1..An.
func (ctx *clauseCtx) compileGoalArgs(g *term.Term) {
	if g.Kind != term.KStruct {
		return
	}
	for i, arg := range g.Args {
		ctx.emitPutArg(arg, i+1)
	}
}

func (ctx *clauseCtx) emitPutArg(arg *term.Term, ai int) {
	switch arg.Kind {
	case term.KVar:
		ctx.emitPutVar(arg.Ref, ai)
	case term.KInt:
		ctx.c.emit(wam.Instr{Op: wam.OpPutInt, A1: ai, I: arg.Int})
	case term.KAtom:
		if arg.Fn.Name == ctx.c.tab.Nil {
			ctx.c.emit(wam.Instr{Op: wam.OpPutNil, A1: ai})
		} else {
			ctx.c.emit(wam.Instr{Op: wam.OpPutConst, A1: ai, Fn: arg.Fn})
		}
	case term.KStruct:
		// Build nested structures into temporaries first (bottom-up),
		// then the outer structure into the argument register.
		built := ctx.buildNested(arg)
		ctx.emitPutStruct(arg, ai, built)
	}
}

// buildNested compiles every proper nested structure of tm (but not tm
// itself) into temporaries, innermost first, returning their registers.
func (ctx *clauseCtx) buildNested(tm *term.Term) map[*term.Term]int {
	built := make(map[*term.Term]int)
	var build func(sub *term.Term) int
	build = func(sub *term.Term) int {
		for _, a := range sub.Args {
			if a.Kind == term.KStruct {
				built[a] = build(a)
			}
		}
		x := ctx.nextX
		ctx.nextX++
		ctx.emitPutStruct(sub, x, built)
		return x
	}
	for _, a := range tm.Args {
		if a.Kind == term.KStruct {
			built[a] = build(a)
		}
	}
	return built
}

// emitPutStruct emits put_list/put_structure for tm into register reg,
// with unify instructions for its immediate subterms. Nested structures
// must already be in built.
func (ctx *clauseCtx) emitPutStruct(tm *term.Term, reg int, built map[*term.Term]int) {
	if ctx.c.tab.IsCons(tm) {
		ctx.c.emit(wam.Instr{Op: wam.OpPutList, A1: reg})
	} else {
		ctx.c.emit(wam.Instr{Op: wam.OpPutStruct, A1: reg, Fn: tm.Fn})
	}
	for _, sub := range tm.Args {
		switch sub.Kind {
		case term.KVar:
			ctx.emitUnifyVar(sub.Ref)
		case term.KInt:
			ctx.c.emit(wam.Instr{Op: wam.OpUnifyInt, I: sub.Int})
		case term.KAtom:
			if sub.Fn.Name == ctx.c.tab.Nil {
				ctx.c.emit(wam.Instr{Op: wam.OpUnifyNil})
			} else {
				ctx.c.emit(wam.Instr{Op: wam.OpUnifyConst, Fn: sub.Fn})
			}
		case term.KStruct:
			ctx.c.emit(wam.Instr{Op: wam.OpUnifyValX, A2: built[sub]})
		}
	}
}

func (ctx *clauseCtx) emitPutVar(v *term.VarRef, ai int) {
	if ctx.occ[v] == 1 {
		// Anonymous: fresh cell, no need to remember the register.
		x := ctx.nextX
		ctx.nextX++
		ctx.c.emit(wam.Instr{Op: wam.OpPutVarX, A1: ai, A2: x})
		return
	}
	if ctx.seen[v] {
		if y, ok := ctx.perm[v]; ok {
			ctx.c.emit(wam.Instr{Op: wam.OpPutValY, A1: ai, A2: y})
		} else {
			ctx.c.emit(wam.Instr{Op: wam.OpPutValX, A1: ai, A2: ctx.temp[v]})
		}
		return
	}
	ctx.seen[v] = true
	if y, ok := ctx.perm[v]; ok {
		ctx.c.emit(wam.Instr{Op: wam.OpPutVarY, A1: ai, A2: y})
		return
	}
	x := ctx.nextX
	ctx.nextX++
	ctx.temp[v] = x
	ctx.c.emit(wam.Instr{Op: wam.OpPutVarX, A1: ai, A2: x})
}
