// Package compiler translates parsed Prolog programs into WAM code. It
// plays the role of the PLM compiler in the paper's pipeline (Figure 1):
// the code it emits is consumed unchanged both by the concrete machine
// for execution and by the abstract machine for dataflow analysis.
//
// The translation is the classic one: head arguments compile to get/unify
// instruction sequences in breadth-first subterm order (Figure 2 of the
// paper), body arguments to put/unify sequences built bottom-up, control
// to allocate/call/execute/proceed with last-call optimization, and
// clause selection to try/retry/trust chains behind an optional
// first-argument switch.
//
// One deliberate simplification: put_variable for permanent variables
// allocates the variable cell on the heap (not in the environment), so
// every register and environment slot only ever holds heap references or
// constants. This removes the unsafe-value/globalization machinery at the
// cost of a little heap, and makes environments trivially safe to share
// with choice points. Environment trimming is likewise omitted — the
// paper itself notes trimming "appears to be overkill" for the abstract
// machine.
package compiler

import (
	"fmt"

	"awam/internal/term"
	"awam/internal/wam"
)

// Options control optional compilation features.
type Options struct {
	// Indexing enables first-argument indexing (switch_on_term and
	// friends). Both machines run indexed and unindexed code.
	Indexing bool
}

// DefaultOptions enables indexing.
func DefaultOptions() Options { return Options{Indexing: true} }

// Compiler holds state for one compilation unit.
type Compiler struct {
	tab      *term.Tab
	opts     Options
	builtins map[term.Functor]wam.BuiltinID
	mod      *wam.Module
	fixups   []fixup
	// Warnings collects undefined-predicate notes (calls compile to a
	// failing target rather than an error, matching Prolog practice).
	Warnings []string
}

type fixup struct {
	addr int
	fn   term.Functor
}

// Compile translates prog into a WAM module.
func Compile(tab *term.Tab, prog *term.Program) (*wam.Module, error) {
	return CompileWith(tab, prog, DefaultOptions())
}

// CompileWith is Compile with explicit options.
func CompileWith(tab *term.Tab, prog *term.Program, opts Options) (*wam.Module, error) {
	// Expand ';'/'->'/'\+' into auxiliary predicates first.
	expanded := expandControl(tab, prog.Clauses)
	if len(expanded) != len(prog.Clauses) {
		var err error
		prog, err = term.NewProgram(expanded)
		if err != nil {
			return nil, err
		}
	}
	c := &Compiler{
		tab:      tab,
		opts:     opts,
		builtins: wam.Builtins(tab),
		mod: &wam.Module{
			Tab:   tab,
			Procs: make(map[term.Functor]*wam.Proc),
		},
	}
	for _, f := range prog.Order {
		if _, isBI := c.builtins[f]; isBI {
			return nil, fmt.Errorf("compiler: cannot redefine builtin %s", tab.FuncString(f))
		}
		if err := c.compileProc(f, prog.ClausesOf(f)); err != nil {
			return nil, err
		}
	}
	c.resolveFixups()
	return c.mod, nil
}

// AddQuery compiles goals as the body of a fresh predicate
// '$query<N>'(V1,...,Vk) where Vi are the distinct variables of the
// goals, appends it to mod, and returns its functor together with the
// variables in argument order. The machine calls the predicate with
// fresh cells and reads the bindings back out.
func AddQuery(mod *wam.Module, goals []*term.Term) (term.Functor, []*term.Term, error) {
	c := &Compiler{
		tab:      mod.Tab,
		opts:     DefaultOptions(),
		builtins: wam.Builtins(mod.Tab),
		mod:      mod,
	}
	name := fmt.Sprintf("$query%d", len(mod.Order))
	clause := term.Clause{Head: term.MkAtom(mod.Tab.Intern(name)), Body: goals}
	// Expand control constructs in the query; auxiliary names are
	// namespaced by the query counter to avoid clashing with predicates
	// already in the module.
	exp := &expander{tab: mod.Tab, next: (len(mod.Order) + 1) * 1000}
	exp.clause(clause)
	aux := exp.out[:len(exp.out)-1]
	clause = exp.out[len(exp.out)-1]
	vars := clause.Vars()
	if len(vars) > 0 {
		args := make([]*term.Term, len(vars))
		copy(args, vars)
		clause.Head = term.MkStruct(mod.Tab.Func(name, len(vars)), args...)
	}
	fn := clause.Head.Fn
	if err := c.compileProc(fn, []term.Clause{clause}); err != nil {
		return term.Functor{}, nil, err
	}
	// Compile any auxiliary predicates the expansion produced.
	if len(aux) > 0 {
		auxProg, err := term.NewProgram(aux)
		if err != nil {
			return term.Functor{}, nil, err
		}
		for _, af := range auxProg.Order {
			if err := c.compileProc(af, auxProg.ClausesOf(af)); err != nil {
				return term.Functor{}, nil, err
			}
		}
	}
	c.resolveFixups()
	return fn, vars, nil
}

func (c *Compiler) resolveFixups() {
	for _, fx := range c.fixups {
		if p, ok := c.mod.Procs[fx.fn]; ok {
			c.mod.Code[fx.addr].L = p.Entry
		} else {
			c.mod.Code[fx.addr].L = wam.FailAddr
			c.Warnings = append(c.Warnings,
				fmt.Sprintf("undefined predicate %s", c.tab.FuncString(fx.fn)))
		}
	}
	c.fixups = c.fixups[:0]
}

func (c *Compiler) emit(ins wam.Instr) int {
	c.mod.Code = append(c.mod.Code, ins)
	return len(c.mod.Code) - 1
}

func (c *Compiler) here() int { return len(c.mod.Code) }

// argKind classifies a head's first argument for indexing.
type argKind uint8

const (
	kindVar argKind = iota
	kindConst
	kindList
	kindStruct
)

func (c *Compiler) firstArgKind(cl term.Clause) (argKind, wam.ConstKey, term.Functor) {
	if cl.Head.Kind != term.KStruct {
		return kindVar, wam.ConstKey{}, term.Functor{}
	}
	a := cl.Head.Args[0]
	switch a.Kind {
	case term.KVar:
		return kindVar, wam.ConstKey{}, term.Functor{}
	case term.KInt:
		return kindConst, wam.ConstKey{IsInt: true, I: a.Int}, term.Functor{}
	case term.KAtom:
		return kindConst, wam.ConstKey{A: a.Fn.Name}, term.Functor{}
	case term.KStruct:
		if c.tab.IsCons(a) {
			return kindList, wam.ConstKey{}, term.Functor{}
		}
		return kindStruct, wam.ConstKey{}, a.Fn
	}
	return kindVar, wam.ConstKey{}, term.Functor{}
}

func (c *Compiler) compileProc(f term.Functor, clauses []term.Clause) error {
	if len(clauses) == 0 {
		return fmt.Errorf("compiler: predicate %s has no clauses", c.tab.FuncString(f))
	}
	proc := &wam.Proc{Fn: f}
	c.mod.Procs[f] = proc
	c.mod.Order = append(c.mod.Order, f)
	start := c.here()

	// Decide whether to index: at least two clauses, arity >= 1, and no
	// clause with a variable first argument (a simplification of the full
	// WAM's segmented indexing).
	indexable := c.opts.Indexing && len(clauses) >= 2 && f.Arity >= 1
	if indexable {
		for _, cl := range clauses {
			if k, _, _ := c.firstArgKind(cl); k == kindVar {
				indexable = false
				break
			}
		}
	}

	var switchAddr int
	if indexable {
		switchAddr = c.emit(wam.Instr{Op: wam.OpSwitchOnTerm})
	}

	// Emit the try_me_else chain with clause bodies.
	clauseAddrs := make([]int, len(clauses))
	var chainFixups []int
	chainStart := c.here()
	for i, cl := range clauses {
		if len(clauses) > 1 {
			switch {
			case i == 0:
				chainFixups = append(chainFixups, c.emit(wam.Instr{Op: wam.OpTryMeElse}))
			case i == len(clauses)-1:
				c.emit(wam.Instr{Op: wam.OpTrustMe})
			default:
				chainFixups = append(chainFixups, c.emit(wam.Instr{Op: wam.OpRetryMeElse}))
			}
		}
		clauseAddrs[i] = c.here()
		envSize, err := c.compileClause(cl)
		if err != nil {
			return fmt.Errorf("%s clause %d: %w", c.tab.FuncString(f), i+1, err)
		}
		proc.EnvSizes = append(proc.EnvSizes, envSize)
		// Patch the preceding try/retry to point at the next choice
		// instruction (emitted on the next loop iteration).
		if len(chainFixups) > 0 && i < len(clauses)-1 {
			c.mod.Code[chainFixups[len(chainFixups)-1]].L = c.here()
		}
	}
	proc.Clauses = clauseAddrs

	if indexable {
		c.buildSwitch(switchAddr, chainStart, clauses, clauseAddrs)
		proc.Entry = switchAddr
	} else {
		proc.Entry = start
	}
	proc.Profile.Instructions = c.here() - start
	return nil
}

// buildSwitch fills in the switch_on_term at switchAddr and appends any
// needed dispatch tables and try/retry/trust blocks.
func (c *Compiler) buildSwitch(switchAddr, chainStart int, clauses []term.Clause, clauseAddrs []int) {
	var constKeys []wam.ConstKey
	constBuckets := make(map[wam.ConstKey][]int)
	var listBucket []int
	var structKeys []term.Functor
	structBuckets := make(map[term.Functor][]int)
	for i, cl := range clauses {
		k, ck, sf := c.firstArgKind(cl)
		switch k {
		case kindConst:
			if _, seen := constBuckets[ck]; !seen {
				constKeys = append(constKeys, ck)
			}
			constBuckets[ck] = append(constBuckets[ck], clauseAddrs[i])
		case kindList:
			listBucket = append(listBucket, clauseAddrs[i])
		case kindStruct:
			if _, seen := structBuckets[sf]; !seen {
				structKeys = append(structKeys, sf)
			}
			structBuckets[sf] = append(structBuckets[sf], clauseAddrs[i])
		}
	}

	target := func(addrs []int) int {
		switch len(addrs) {
		case 0:
			return wam.FailAddr
		case 1:
			return addrs[0]
		default:
			blk := c.here()
			for i, a := range addrs {
				switch {
				case i == 0:
					c.emit(wam.Instr{Op: wam.OpTry, L: a})
				case i == len(addrs)-1:
					c.emit(wam.Instr{Op: wam.OpTrust, L: a})
				default:
					c.emit(wam.Instr{Op: wam.OpRetry, L: a})
				}
			}
			return blk
		}
	}

	lc := wam.FailAddr
	if len(constKeys) == 1 && len(constBuckets[constKeys[0]]) >= 1 {
		lc = target(constBuckets[constKeys[0]])
		// Still need the key check: a different constant must fail. A
		// one-entry dispatch table keeps that exact.
		tbl := map[wam.ConstKey]int{constKeys[0]: lc}
		lc = c.emit(wam.Instr{Op: wam.OpSwitchOnConst, TblC: tbl})
	} else if len(constKeys) > 1 {
		tbl := make(map[wam.ConstKey]int, len(constKeys))
		for _, k := range constKeys {
			tbl[k] = target(constBuckets[k])
		}
		lc = c.emit(wam.Instr{Op: wam.OpSwitchOnConst, TblC: tbl})
	}

	ll := target(listBucket)

	ls := wam.FailAddr
	if len(structKeys) == 1 {
		t := target(structBuckets[structKeys[0]])
		tbl := map[term.Functor]int{structKeys[0]: t}
		ls = c.emit(wam.Instr{Op: wam.OpSwitchOnStruct, TblS: tbl})
	} else if len(structKeys) > 1 {
		tbl := make(map[term.Functor]int, len(structKeys))
		for _, k := range structKeys {
			tbl[k] = target(structBuckets[k])
		}
		ls = c.emit(wam.Instr{Op: wam.OpSwitchOnStruct, TblS: tbl})
	}

	c.mod.Code[switchAddr].LV = chainStart
	c.mod.Code[switchAddr].LC = lc
	c.mod.Code[switchAddr].LL = ll
	c.mod.Code[switchAddr].LS = ls
}
