package optimize

import (
	"strings"
	"testing"

	"awam/internal/bench"
	"awam/internal/compiler"
	"awam/internal/core"
	"awam/internal/machine"
	"awam/internal/parser"
	"awam/internal/term"
	"awam/internal/wam"
)

func buildAnalyzed(t *testing.T, src string) (*term.Tab, *wam.Module, *core.Result) {
	t.Helper()
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, src)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.New(mod).AnalyzeMain()
	if err != nil {
		t.Fatal(err)
	}
	return tab, mod, res
}

func TestSpecializeGroundList(t *testing.T) {
	src := `
main :- sum([1,2,3], S), out(S).
sum([], 0).
sum([X|Xs], S) :- sum(Xs, S0), S is S0 + X.
out(_).
`
	tab, mod, res := buildAnalyzed(t, src)
	opt, stats := Specialize(mod, res)
	if stats.Total == 0 {
		t.Fatal("sum's first argument is always a ground list; expected specializations")
	}
	dis := opt.Disasm()
	if !strings.Contains(dis, "get_list* A1") && !strings.Contains(dis, "get_nil* A1") {
		t.Fatalf("expected specialized list instructions:\n%s", dis)
	}
	// The original module is untouched.
	if strings.Contains(mod.Disasm(), "get_list*") {
		t.Fatal("Specialize modified the input module")
	}
	_ = tab
}

func TestSpecializedModuleRunsCorrectly(t *testing.T) {
	src := `
main :- sum([1,2,3], S), check(S).
sum([], 0).
sum([X|Xs], S) :- sum(Xs, S0), S is S0 + X.
check(6).
`
	_, mod, res := buildAnalyzed(t, src)
	opt, _ := Specialize(mod, res)
	m := machine.New(opt)
	ok, err := m.RunMain()
	if err != nil {
		t.Fatalf("optimized module errored: %v", err)
	}
	if !ok {
		t.Fatal("optimized module failed main/0")
	}
}

func TestNoSpecializationForVarArgs(t *testing.T) {
	src := `
main :- mk(X), out(X).
mk(f(1)).
out(_).
`
	_, mod, res := buildAnalyzed(t, src)
	_, stats := Specialize(mod, res)
	// mk/1 is called with a free variable: its head get_structure must
	// stay general (write mode reachable).
	for k := range stats.Specialized {
		if strings.Contains(k, "f/1") {
			t.Fatalf("specialized a write-mode structure: %v", stats.Specialized)
		}
	}
}

// TestBenchmarksOptimizedStillRun is experiment E11's validation half:
// every benchmark still runs correctly after specialization, proving no
// specialized instruction ever meets an unbound variable (i.e. the
// analysis was sound where the optimizer trusted it).
func TestBenchmarksOptimizedStillRun(t *testing.T) {
	for _, p := range bench.Programs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			_, mod, res := buildAnalyzed(t, p.Source)
			opt, stats := Specialize(mod, res)
			m := machine.New(opt)
			ok, err := m.RunMain()
			if err != nil {
				t.Fatalf("optimized run error (possible unsound specialization): %v", err)
			}
			if !ok {
				t.Fatal("optimized main/0 failed")
			}
			t.Logf("%s: %d instructions specialized in %d predicates",
				p.Name, stats.Total, stats.PredsTouched)
		})
	}
}

// TestOptimizedSemanticsMatch compares answers between original and
// optimized modules on queries.
func TestOptimizedSemanticsMatch(t *testing.T) {
	for _, p := range bench.Programs {
		if p.Query == "" {
			continue
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tab, mod, res := buildAnalyzed(t, p.Source)
			m1 := machine.New(mod)
			s1, err := m1.Solve(p.Query)
			if err != nil {
				t.Fatal(err)
			}
			opt, _ := Specialize(mod, res)
			m2 := machine.New(opt)
			s2, err := m2.Solve(p.Query)
			if err != nil {
				t.Fatal(err)
			}
			if s1.OK != s2.OK {
				t.Fatalf("success mismatch: %v vs %v", s1.OK, s2.OK)
			}
			b1, b2 := s1.Bindings(), s2.Bindings()
			for k, v1 := range b1 {
				v2 := b2[k]
				if tab.Write(v1) != tab.Write(v2) {
					t.Fatalf("binding %s: %s vs %s", k, tab.Write(v1), tab.Write(v2))
				}
			}
		})
	}
}

func TestStripUnreachable(t *testing.T) {
	src := `
main :- used(3).
used(X) :- X > 0.
dead(X) :- deader(X).
deader(_).
`
	tab, mod, res := buildAnalyzed(t, src)
	stripped, removed := StripUnreachable(mod, res)
	if len(removed) != 2 {
		t.Fatalf("removed = %v", removed)
	}
	names := map[string]bool{}
	for _, fn := range removed {
		names[tab.FuncString(fn)] = true
	}
	if !names["dead/1"] || !names["deader/1"] {
		t.Fatalf("wrong predicates removed: %v", names)
	}
	if stripped.Proc(tab.Func("used", 1)) == nil {
		t.Fatal("reachable predicate stripped")
	}
	// The stripped module still runs.
	m := machine.New(stripped)
	ok, err := m.RunMain()
	if err != nil || !ok {
		t.Fatalf("stripped module: ok=%v err=%v", ok, err)
	}
}

func TestReachability(t *testing.T) {
	src := `
main :- a, b.
a.
b :- fail.
c.
`
	tab, _, res := buildAnalyzed(t, src)
	r := Reach(res)
	if !r.Reached[tab.Func("a", 0)] || !r.Reached[tab.Func("b", 0)] {
		t.Fatal("a and b should be reached")
	}
	if r.Reached[tab.Func("c", 0)] {
		t.Fatal("c should be unreachable")
	}
	if !r.Succeeds[tab.Func("a", 0)] {
		t.Fatal("a succeeds")
	}
	if r.Succeeds[tab.Func("b", 0)] {
		t.Fatal("b never succeeds")
	}
}

func TestStripKeepsBenchmarksRunning(t *testing.T) {
	for _, p := range bench.Programs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			_, mod, res := buildAnalyzed(t, p.Source)
			stripped, _ := StripUnreachable(mod, res)
			m := machine.New(stripped)
			ok, err := m.RunMain()
			if err != nil || !ok {
				t.Fatalf("stripped run: ok=%v err=%v", ok, err)
			}
		})
	}
}
