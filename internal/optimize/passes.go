package optimize

import (
	"fmt"

	"awam/internal/core"
	"awam/internal/domain"
	"awam/internal/term"
	"awam/internal/wam"
)

// specializePass ports Specialize into the pipeline: head unification
// instructions on arguments the analysis proves non-variable are
// replaced by read-only variants.
type specializePass struct{}

func (specializePass) Name() string { return "specialize" }

func (specializePass) Apply(mod *wam.Module, res *core.Result) (*wam.Module, PassStats, error) {
	out, st := Specialize(mod, res)
	ps := PassStats{PredsTouched: st.PredsTouched}
	for kind, n := range st.Specialized {
		ps.note(kind, n)
	}
	return out, ps, nil
}

// stripPass ports StripUnreachable: predicates the analysis never
// reached are dropped from the procedure map and calls to them are
// unlinked (they fail if ever taken).
type stripPass struct{}

func (stripPass) Name() string { return "strip-unreachable" }

func (stripPass) Apply(mod *wam.Module, res *core.Result) (*wam.Module, PassStats, error) {
	out, removed := StripUnreachable(mod, res)
	var ps PassStats
	for _, fn := range removed {
		if p := mod.Procs[fn]; p != nil {
			ps.ClauseDelta -= len(p.Clauses)
		}
	}
	ps.note("stripped predicate", len(removed))
	ps.PredsTouched = len(removed)
	return out, ps, nil
}

// deadClausePass drops clauses that cannot head-match any calling
// pattern the analysis recorded, and — when a single clause survives —
// retargets the predicate entry straight at that clause, eliminating
// its choice point entirely (the determinacy optimization the paper's
// introduction motivates). The rebuilt dispatch is appended to the code
// array; existing chains are never patched in place.
//
// The transformation is justified by the analysis contract: recorded
// calling patterns over-approximate every concrete call reachable from
// the analyzed entry points, and a clause whose head prefix fails
// abstractly against a pattern fails concretely against every instance
// of it. Goals outside that contract (a fresh query against a predicate
// the entry never calls that way) may observe the difference — which is
// exactly what the differential gate checks.
type deadClausePass struct{}

func (deadClausePass) Name() string { return "dead-clause" }

func (deadClausePass) Apply(mod *wam.Module, res *core.Result) (*wam.Module, PassStats, error) {
	matches := core.New(mod).ClauseMatches(res)
	out := cloneModule(mod)
	var ps PassStats
	for _, fn := range mod.Order {
		marks := matches[fn]
		proc := out.Procs[fn]
		if marks == nil || proc == nil || len(marks) != len(proc.Clauses) {
			continue
		}
		var alive []int
		for i, ok := range marks {
			if ok {
				alive = append(alive, i)
			}
		}
		dead := len(proc.Clauses) - len(alive)
		if dead == 0 || len(alive) == 0 {
			// Nothing to drop, or every clause is dead: the calls fail
			// by themselves, no dispatch surgery needed.
			continue
		}
		if len(alive) > 1 && out.Code[proc.Entry].Op == wam.OpSwitchOnTerm {
			// The compiler already indexed this predicate; replacing the
			// switch with a shorter linear chain would trade dispatch
			// quality for clause count. Keep the switch.
			continue
		}
		addrs := make([]int, len(alive))
		clauses := make([]int, len(alive))
		envs := make([]int, len(alive))
		for j, i := range alive {
			addrs[j] = proc.Clauses[i]
			clauses[j] = proc.Clauses[i]
			if i < len(proc.EnvSizes) {
				envs[j] = proc.EnvSizes[i]
			}
		}
		entry := emitBlock(out, addrs)
		proc.Entry = entry
		proc.Clauses = clauses
		if len(proc.EnvSizes) > 0 {
			proc.EnvSizes = envs
		}
		retargetCalls(out, fn, entry)
		ps.note("dead clause", dead)
		if len(alive) == 1 {
			ps.note("choice point eliminated", 1)
		}
		ps.ClauseDelta -= dead
		ps.PredsTouched++
	}
	ps.InstrDelta = len(out.Code) - len(mod.Code)
	return out, ps, nil
}

// indexPass introduces first-argument indexing for predicates the
// compiler left unindexed (those with variable-headed clauses), when
// the analysis proves the first argument non-variable at every call.
// Each dispatch bucket holds the clauses whose first head argument can
// match that key — kind-matching clauses merged with the var-headed
// ones, in source order — and the new LD switch default routes absent
// keys to the var-headed clauses alone. The var branch of the emitted
// switch_on_term falls back to the original dispatch chain, so the
// transformation is semantics-preserving even if an unbound argument
// slips through; the analysis only directs where applying it pays.
type indexPass struct{}

func (indexPass) Name() string { return "index" }

// headArgKind classifies a clause's first head argument at the code
// level, mirroring the compiler's source-level firstArgKind.
type headArgKind uint8

const (
	headVar headArgKind = iota
	headConst
	headList
	headStruct
)

// clauseFirstArg scans a clause's head prefix for the get instruction
// on argument register 1. No such instruction (a void or repeated
// variable) classifies as headVar, which matches anything.
func clauseFirstArg(mod *wam.Module, addr int) (headArgKind, wam.ConstKey, term.Functor) {
	for p := addr; p < len(mod.Code); p++ {
		ins := mod.Code[p]
		switch ins.Op {
		case wam.OpNop, wam.OpAllocate, wam.OpGetLevel, wam.OpNeckCut,
			wam.OpUnifyVarX, wam.OpUnifyVarY, wam.OpUnifyValX, wam.OpUnifyValY,
			wam.OpUnifyConst, wam.OpUnifyInt, wam.OpUnifyNil, wam.OpUnifyVoid:
			continue
		case wam.OpGetVarX, wam.OpGetVarY, wam.OpGetValX, wam.OpGetValY:
			if ins.A1 == 1 {
				return headVar, wam.ConstKey{}, term.Functor{}
			}
		case wam.OpGetConst, wam.OpGetConstCmp:
			if ins.A1 == 1 {
				return headConst, wam.ConstKey{A: ins.Fn.Name}, term.Functor{}
			}
		case wam.OpGetInt, wam.OpGetIntCmp:
			if ins.A1 == 1 {
				return headConst, wam.ConstKey{IsInt: true, I: ins.I}, term.Functor{}
			}
		case wam.OpGetNil, wam.OpGetNilCmp:
			if ins.A1 == 1 {
				return headConst, wam.ConstKey{A: mod.Tab.Nil}, term.Functor{}
			}
		case wam.OpGetList, wam.OpGetListRead:
			if ins.A1 == 1 {
				return headList, wam.ConstKey{}, term.Functor{}
			}
		case wam.OpGetStruct, wam.OpGetStructRead:
			if ins.A1 == 1 {
				return headStruct, wam.ConstKey{}, ins.Fn
			}
		default:
			// First body/control instruction: argument 1 was never
			// constrained by the head.
			return headVar, wam.ConstKey{}, term.Functor{}
		}
	}
	return headVar, wam.ConstKey{}, term.Functor{}
}

func (indexPass) Apply(mod *wam.Module, res *core.Result) (*wam.Module, PassStats, error) {
	nv := domain.MkLeaf(domain.NV)
	out := cloneModule(mod)
	var ps PassStats
	for _, fn := range mod.Order {
		proc := out.Procs[fn]
		if fn.Arity == 0 || len(proc.Clauses) < 2 {
			continue
		}
		if out.Code[proc.Entry].Op == wam.OpSwitchOnTerm {
			continue // already indexed
		}
		call := res.CallFor(fn)
		if call == nil || len(call.Args) == 0 || !domain.Leq(mod.Tab, call.Args[0], nv) {
			// The analysis cannot prove the first argument bound; the
			// switch would route most calls through the var branch.
			continue
		}
		kinds := make([]headArgKind, len(proc.Clauses))
		cks := make([]wam.ConstKey, len(proc.Clauses))
		sfs := make([]term.Functor, len(proc.Clauses))
		nonVar := 0
		for i, addr := range proc.Clauses {
			kinds[i], cks[i], sfs[i] = clauseFirstArg(out, addr)
			if kinds[i] != headVar {
				nonVar++
			}
		}
		if nonVar == 0 {
			continue // no discrimination to gain
		}
		oldEntry := proc.Entry

		// Bucket clauses per key: matching kind merged with var-headed
		// clauses, preserving source order.
		var constOrder []wam.ConstKey
		seenConst := make(map[wam.ConstKey]bool)
		var structOrder []term.Functor
		seenStruct := make(map[term.Functor]bool)
		for i := range proc.Clauses {
			switch kinds[i] {
			case headConst:
				if !seenConst[cks[i]] {
					seenConst[cks[i]] = true
					constOrder = append(constOrder, cks[i])
				}
			case headStruct:
				if !seenStruct[sfs[i]] {
					seenStruct[sfs[i]] = true
					structOrder = append(structOrder, sfs[i])
				}
			}
		}
		collect := func(want func(i int) bool) []int {
			var addrs []int
			for i, addr := range proc.Clauses {
				if kinds[i] == headVar || want(i) {
					addrs = append(addrs, addr)
				}
			}
			return addrs
		}
		varOnly := collect(func(int) bool { return false })

		// Emit shared blocks: identical clause lists dispatch to one
		// block. emitBlock appends at the code end only.
		blocks := make(map[string]int)
		blockFor := func(addrs []int) int {
			key := fmt.Sprint(addrs)
			if b, ok := blocks[key]; ok {
				return b
			}
			b := emitBlock(out, addrs)
			blocks[key] = b
			return b
		}

		varBlock := blockFor(varOnly) // FailAddr when no var-headed clauses
		lc := varBlock
		if len(constOrder) > 0 {
			tbl := make(map[wam.ConstKey]int, len(constOrder))
			for _, ck := range constOrder {
				ckv := ck
				tbl[ck] = blockFor(collect(func(i int) bool { return kinds[i] == headConst && cks[i] == ckv }))
			}
			lc = len(out.Code)
			ld := 0
			if varBlock != wam.FailAddr {
				ld = varBlock
			}
			out.Code = append(out.Code, wam.Instr{Op: wam.OpSwitchOnConst, TblC: tbl, LD: ld})
		}
		ll := blockFor(collect(func(i int) bool { return kinds[i] == headList }))
		ls := varBlock
		if len(structOrder) > 0 {
			tbl := make(map[term.Functor]int, len(structOrder))
			for _, sf := range structOrder {
				sfv := sf
				tbl[sf] = blockFor(collect(func(i int) bool { return kinds[i] == headStruct && sfs[i] == sfv }))
			}
			ls = len(out.Code)
			ld := 0
			if varBlock != wam.FailAddr {
				ld = varBlock
			}
			out.Code = append(out.Code, wam.Instr{Op: wam.OpSwitchOnStruct, TblS: tbl, LD: ld})
		}
		sw := len(out.Code)
		out.Code = append(out.Code, wam.Instr{Op: wam.OpSwitchOnTerm, LV: oldEntry, LC: lc, LL: ll, LS: ls})
		proc.Entry = sw
		retargetCalls(out, fn, sw)
		ps.note("indexed predicate", 1)
		ps.PredsTouched++
	}
	ps.InstrDelta = len(out.Code) - len(mod.Code)
	return out, ps, nil
}
