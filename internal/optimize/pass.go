package optimize

import (
	"errors"
	"fmt"
	"sort"

	"awam/internal/core"
	"awam/internal/term"
	"awam/internal/wam"
)

// Typed errors. Pipeline failures wrap ErrOptimize (and the failing
// pass's name, via PassError / GateError), so callers can branch with
// errors.Is without string matching.
var (
	// ErrOptimize is the sentinel for any optimizer failure.
	ErrOptimize = errors.New("optimize: pass failed")
	// ErrUnknownPass reports a pass name not in the registry.
	ErrUnknownPass = errors.New("optimize: unknown pass")
)

// PassError wraps a pass that failed to apply.
type PassError struct {
	Pass string
	Err  error
}

func (e *PassError) Error() string {
	return fmt.Sprintf("optimize: pass %s: %v", e.Pass, e.Err)
}

func (e *PassError) Unwrap() error { return ErrOptimize }

// GateError reports a pass whose output changed observable answers: the
// differential gate ran the entry goals on the optimized and unoptimized
// machine and the answer sets differ. The pass's output is discarded —
// an answer-changing transformation is never shipped — and the failure
// is surfaced so it cannot pass silently either.
type GateError struct {
	Pass   string
	Goal   string
	Detail string
}

func (e *GateError) Error() string {
	return fmt.Sprintf("optimize: gate rejected pass %s on goal %q: %s", e.Pass, e.Goal, e.Detail)
}

func (e *GateError) Unwrap() error { return ErrOptimize }

// PassStats reports what one pass changed.
type PassStats struct {
	// Rewrites counts changes by kind (instruction mnemonic, "stripped",
	// "dead clause", "indexed", ...).
	Rewrites map[string]int `json:"rewrites,omitempty"`
	// Total is the overall number of rewrites.
	Total int `json:"total"`
	// PredsTouched counts predicates with at least one change.
	PredsTouched int `json:"preds_touched"`
	// InstrDelta is the code-size change in instructions (positive for
	// passes that append dispatch blocks, zero for in-place rewrites).
	InstrDelta int `json:"instr_delta"`
	// ClauseDelta is the change in dispatched clauses (negative when
	// dead clauses or unreachable predicates are dropped).
	ClauseDelta int `json:"clause_delta"`
}

func (s *PassStats) note(kind string, n int) {
	if n == 0 {
		return
	}
	if s.Rewrites == nil {
		s.Rewrites = make(map[string]int)
	}
	s.Rewrites[kind] += n
	s.Total += n
}

// Pass is one analysis-driven code transformation. Apply must not
// modify the input module; it returns a new module (sharing unchanged
// structure is fine) together with what it changed.
type Pass interface {
	Name() string
	Apply(mod *wam.Module, res *core.Result) (*wam.Module, PassStats, error)
}

// Passes returns the default pipeline in its canonical order:
// unreachable predicates first (less work for the rest), then dead
// clauses, then analysis-directed indexing over the surviving dispatch,
// then unification specialization inside the surviving clauses.
func Passes() []Pass {
	return []Pass{
		stripPass{},
		deadClausePass{},
		indexPass{},
		specializePass{},
	}
}

// PassNames lists the registered pass names in canonical order.
func PassNames() []string {
	ps := Passes()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name()
	}
	return out
}

// PassByName resolves a registered pass. Unknown names fail with an
// error wrapping ErrUnknownPass (and ErrOptimize).
func PassByName(name string) (Pass, error) {
	for _, p := range Passes() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownPass, name, PassNames())
}

// PassOutcome is one pipeline step's result.
type PassOutcome struct {
	// Name is the pass.
	Name string `json:"name"`
	// Stats is what the pass changed (also filled for rejected passes:
	// the stats of the discarded attempt).
	Stats PassStats `json:"stats"`
	// Rejected marks a pass whose output the differential gate refused;
	// RejectReason says why. A rejected pass's output is not shipped.
	Rejected     bool   `json:"rejected,omitempty"`
	RejectReason string `json:"reject_reason,omitempty"`
}

// Pipeline composes passes with a differential runtime gate between
// them. After every pass the gate runs the entry goals on the pass's
// output and compares the answer sets against the unoptimized module's;
// a pass that changes any answer is rejected (its output discarded) and
// the pipeline continues from the last accepted module.
type Pipeline struct {
	// Passes run in order; nil selects Passes().
	Passes []Pass
	// Gate verifies each pass's output; nil disables gating (unit tests
	// and benchmarks only — the facade always gates).
	Gate *Gate
}

// Run applies the pipeline to mod. It returns the optimized module, the
// per-pass outcomes, and an error: a *PassError when a pass fails to
// apply, or the first *GateError when any pass was rejected. Even with
// a GateError the returned module is valid — it contains every accepted
// pass — so callers can choose between failing hard and shipping the
// surviving pipeline; both wrap ErrOptimize.
func (pl *Pipeline) Run(mod *wam.Module, res *core.Result) (*wam.Module, []PassOutcome, error) {
	passes := pl.Passes
	if passes == nil {
		passes = Passes()
	}
	var base []goalRun
	if pl.Gate != nil {
		base = pl.Gate.run(mod)
	}
	cur := mod
	var outcomes []PassOutcome
	var firstGateErr error
	for _, p := range passes {
		next, stats, err := p.Apply(cur, res)
		if err != nil {
			return cur, outcomes, &PassError{Pass: p.Name(), Err: err}
		}
		oc := PassOutcome{Name: p.Name(), Stats: stats}
		if pl.Gate != nil {
			if gerr := pl.Gate.compare(base, pl.Gate.run(next)); gerr != nil {
				gerr.Pass = p.Name()
				oc.Rejected = true
				oc.RejectReason = gerr.Error()
				if firstGateErr == nil {
					firstGateErr = gerr
				}
				outcomes = append(outcomes, oc)
				continue // keep cur: the rejected output is never shipped
			}
		}
		cur = next
		outcomes = append(outcomes, oc)
	}
	return cur, outcomes, firstGateErr
}

// cloneModule deep-copies the structure passes mutate: the code array,
// the procedure map and each Proc's slices. Instruction dispatch tables
// (TblC/TblS) are shared — passes emit fresh instructions rather than
// editing tables in place.
func cloneModule(mod *wam.Module) *wam.Module {
	out := &wam.Module{
		Tab:   mod.Tab,
		Code:  append([]wam.Instr(nil), mod.Code...),
		Procs: make(map[term.Functor]*wam.Proc, len(mod.Procs)),
		Order: append([]term.Functor(nil), mod.Order...),
	}
	for fn, p := range mod.Procs {
		np := *p
		np.Clauses = append([]int(nil), p.Clauses...)
		np.EnvSizes = append([]int(nil), p.EnvSizes...)
		out.Procs[fn] = &np
	}
	return out
}

// retargetCalls rewrites every linked call/execute of fn to a new entry
// address. Unlinked calls (FailAddr: the dynamic-predicate path) are
// left alone.
func retargetCalls(mod *wam.Module, fn term.Functor, entry int) {
	for i := range mod.Code {
		ins := &mod.Code[i]
		if (ins.Op == wam.OpCall || ins.Op == wam.OpExecute) && ins.Fn == fn && ins.L != wam.FailAddr {
			ins.L = entry
		}
	}
}

// emitBlock appends a try/retry/trust block dispatching to addrs in
// order and returns its address; a single address is returned directly
// and an empty list fails.
func emitBlock(mod *wam.Module, addrs []int) int {
	switch len(addrs) {
	case 0:
		return wam.FailAddr
	case 1:
		return addrs[0]
	}
	blk := len(mod.Code)
	for i, a := range addrs {
		switch {
		case i == 0:
			mod.Code = append(mod.Code, wam.Instr{Op: wam.OpTry, L: a})
		case i == len(addrs)-1:
			mod.Code = append(mod.Code, wam.Instr{Op: wam.OpTrust, L: a})
		default:
			mod.Code = append(mod.Code, wam.Instr{Op: wam.OpRetry, L: a})
		}
	}
	return blk
}

// sortedKinds renders a Rewrites map deterministically (reports, logs).
func sortedKinds(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
