package optimize

import (
	"testing"

	"awam/internal/bench"
	"awam/internal/compiler"
	"awam/internal/core"
	"awam/internal/parser"
	"awam/internal/term"
)

// TestMeasuredStepSpeedups pins the optimizer's payoff deterministically:
// on the deriv benchmarks (variable-headed d/3 clauses the compiler
// cannot index, called with the first argument always bound) the gated
// pipeline must cut machine steps by more than 1.5x. Steps are
// schedule-invariant, so this asserts the acceptance criterion —
// runtime speedup on at least three benchmarks — without wall-clock
// noise.
func TestMeasuredStepSpeedups(t *testing.T) {
	want := map[string]float64{
		"log10":    1.5,
		"ops8":     1.5,
		"times10":  1.5,
		"divide10": 1.5,
	}
	found := 0
	for _, p := range bench.AllPrograms() {
		min, ok := want[p.Name]
		if !ok {
			continue
		}
		found++
		tab := term.NewTab()
		prog, err := parser.ParseProgram(tab, p.Source)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := compiler.Compile(tab, prog)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.New(mod).AnalyzeAll()
		if err != nil {
			t.Fatal(err)
		}
		pl := Pipeline{Gate: &Gate{Goals: []string{"main"}}}
		opt, _, err := pl.Run(mod, res)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		_, baseSteps, err := Measure(mod, "main", 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		_, optSteps, err := Measure(opt, "main", 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		ratio := float64(baseSteps) / float64(optSteps)
		if ratio <= min {
			t.Errorf("%s: step ratio %.2f (baseline %d, optimized %d), want > %.1f",
				p.Name, ratio, baseSteps, optSteps, min)
		}
	}
	if found != len(want) {
		t.Fatalf("only %d of %d deriv benchmarks present in the suite", found, len(want))
	}
}
