package optimize

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"awam/internal/bench"
	"awam/internal/compiler"
	"awam/internal/core"
	"awam/internal/domain"
	"awam/internal/machine"
	"awam/internal/parser"
	"awam/internal/refint"
	"awam/internal/term"
	"awam/internal/wam"
)

const corpusDir = "../fuzz/testdata/fuzz/FuzzSoundnessSource"

type corpusCase struct {
	name   string
	source string
	query  string
}

// loadCorpus reads the committed go-fuzz seed corpus: each file is the
// "go test fuzz v1" header followed by a quoted source and query.
func loadCorpus(t *testing.T) []corpusCase {
	t.Helper()
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatalf("fuzz corpus missing: %v", err)
	}
	var cases []corpusCase
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(corpusDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var vals []string
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "string(") {
				continue
			}
			s, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "string("), ")"))
			if err != nil {
				t.Fatalf("%s: %v", e.Name(), err)
			}
			vals = append(vals, s)
		}
		if len(vals) != 2 {
			t.Fatalf("%s: %d string literals, want source and query", e.Name(), len(vals))
		}
		cases = append(cases, corpusCase{name: e.Name(), source: vals[0], query: vals[1]})
	}
	if len(cases) == 0 {
		t.Fatal("empty fuzz corpus")
	}
	return cases
}

// loadCase compiles a corpus entry and analyzes it seeded from the
// query's own abstract call pattern (the differential-fuzz idiom), so
// the analysis contract covers exactly the goal the tests run. Returns
// false when the entry is out of scope (builtin/undefined goal, budget).
func loadCase(t *testing.T, c corpusCase) (*term.Tab, *wam.Module, *core.Result, []*term.Term, bool) {
	t.Helper()
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, c.source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	goals, err := parser.ParseGoal(tab, c.query)
	if err != nil || len(goals) != 1 {
		return nil, nil, nil, nil, false
	}
	goal := goals[0]
	fn, ok := term.Indicator(goal)
	if !ok || len(prog.Preds[fn]) == 0 {
		return nil, nil, nil, nil, false
	}
	shares := make(map[*term.VarRef]int)
	argAbs := make([]*domain.Term, len(goal.Args))
	for i, a := range goal.Args {
		argAbs[i] = domain.AbstractConcrete(tab, a, shares)
	}
	cp := domain.WidenPattern(tab, domain.NewPattern(fn, argAbs), core.DefaultConfig().Depth)
	cfg := core.DefaultConfig()
	cfg.MaxSteps = 5_000_000
	res, err := core.NewWith(mod, cfg).Analyze(cp)
	if errors.Is(err, core.ErrStepLimit) {
		return nil, nil, nil, nil, false
	}
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return tab, mod, res, goals, true
}

// goalVars collects the query's variables, deduplicated by name and
// sorted, matching refint's canonical answer rendering.
func goalVars(tab *term.Tab, goals []*term.Term) []*term.Term {
	seen := map[string]bool{}
	var vars []*term.Term
	cl := &term.Clause{Head: term.MkAtom(tab.True), Body: goals}
	for _, v := range cl.Vars() {
		if !seen[v.Ref.Name] {
			seen[v.Ref.Name] = true
			vars = append(vars, v)
		}
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Ref.Name < vars[j].Ref.Name })
	return vars
}

// refintAnswers runs the query on the reference SLD interpreter and
// returns sorted canonical answers; ok is false on budget exhaustion or
// when an answer was depth-truncated (not a faithful witness).
func refintAnswers(t *testing.T, tab *term.Tab, src string, goals []*term.Term, vars []*term.Term, max int) ([]string, bool) {
	t.Helper()
	prog, err := parser.ParseProgram(tab, src)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := compiler.ExpandedProgram(tab, prog)
	if err != nil {
		t.Fatal(err)
	}
	in := refint.New(tab, exp)
	in.MaxSteps = 3_000_000
	ans, err := in.AllSolutions(goals, vars, max)
	if err != nil {
		return nil, false
	}
	for _, a := range ans {
		if strings.Contains(a, "<deep>") {
			return nil, false
		}
	}
	return ans, true
}

// machineAnswers runs the query on the WAM machine over a fresh clone of
// mod (queries are compiled into the module) and canonicalizes the
// answers in refint's format.
func machineAnswers(t *testing.T, mod *wam.Module, query string, vars []*term.Term, max int) []string {
	t.Helper()
	m := machine.New(cloneModule(mod))
	m.MaxSteps = 50_000_000
	sol, err := m.Solve(query)
	if err != nil {
		t.Fatalf("machine solve %q: %v", query, err)
	}
	var out []string
	for sol.OK && len(out) < max {
		bind := sol.Bindings()
		parts := make([]string, len(vars))
		for i, v := range vars {
			tm, ok := bind[v.Ref.Name]
			if !ok {
				t.Fatalf("machine lost query variable %s", v.Ref.Name)
			}
			parts[i] = mod.Tab.Write(tm)
		}
		out = append(out, fmt.Sprintf("%v", parts))
		if _, err := sol.Next(); err != nil {
			t.Fatalf("machine redo %q: %v", query, err)
		}
	}
	sort.Strings(out)
	return out
}

func permutations(ps []Pass) [][]Pass {
	if len(ps) <= 1 {
		return [][]Pass{append([]Pass(nil), ps...)}
	}
	var out [][]Pass
	for i := range ps {
		rest := make([]Pass, 0, len(ps)-1)
		rest = append(rest, ps[:i]...)
		rest = append(rest, ps[i+1:]...)
		for _, tail := range permutations(rest) {
			out = append(out, append([]Pass{ps[i]}, tail...))
		}
	}
	return out
}

// TestPipelineOrderingsOnCorpus is the pipeline property test: every
// committed fuzz-corpus program, optimized under EVERY ordering of the
// pass set, must produce answers identical to the reference SLD
// interpreter's. Passes therefore commute up to observable semantics.
func TestPipelineOrderingsOnCorpus(t *testing.T) {
	const maxSol = 16
	perms := permutations(Passes())
	if len(perms) != 24 {
		t.Fatalf("%d orderings, want 4! = 24", len(perms))
	}
	checked := 0
	for _, c := range loadCorpus(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			tab, mod, res, goals, ok := loadCase(t, c)
			if !ok {
				t.Skipf("out of scope: %q", c.query)
			}
			vars := goalVars(tab, goals)
			want, ok := refintAnswers(t, tab, c.source, goals, vars, maxSol)
			if !ok {
				t.Skipf("reference interpreter budget on %q", c.query)
			}
			for _, perm := range perms {
				names := make([]string, len(perm))
				for i, p := range perm {
					names[i] = p.Name()
				}
				pl := Pipeline{Passes: perm}
				opt, _, err := pl.Run(mod, res)
				if err != nil {
					t.Fatalf("order %v: %v", names, err)
				}
				got := machineAnswers(t, opt, c.query, vars, maxSol)
				if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
					t.Fatalf("order %v changed answers for %q:\nrefint:  %v\nmachine: %v",
						names, c.query, want, got)
				}
			}
			checked++
		})
	}
	t.Logf("checked %d corpus programs × %d orderings", checked, len(perms))
}

// TestGateOnCorpus enforces the shipping rule on the committed fuzz
// corpus: the full default pipeline, differentially gated on each
// program's query, must accept every pass — no shipped transformation
// may change an answer, and none may need rejecting on these programs.
func TestGateOnCorpus(t *testing.T) {
	for _, c := range loadCorpus(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			_, mod, res, _, ok := loadCase(t, c)
			if !ok {
				t.Skipf("out of scope: %q", c.query)
			}
			pl := Pipeline{Gate: &Gate{Goals: []string{c.query}}}
			_, outcomes, err := pl.Run(mod, res)
			if err != nil {
				t.Fatalf("gate rejected a shipped pass: %v", err)
			}
			for _, oc := range outcomes {
				if oc.Rejected {
					t.Errorf("pass %s rejected: %s", oc.Name, oc.RejectReason)
				}
			}
		})
	}
}

// TestGateOnBenchSuite enforces the same rule on the Table 1 suite and
// its extensions: every benchmark, analyzed from main/0 and optimized by
// the gated default pipeline, keeps main's observable behavior.
func TestGateOnBenchSuite(t *testing.T) {
	for _, p := range bench.AllPrograms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tab := term.NewTab()
			prog, err := parser.ParseProgram(tab, p.Source)
			if err != nil {
				t.Fatal(err)
			}
			mod, err := compiler.Compile(tab, prog)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.New(mod).AnalyzeAll()
			if err != nil {
				t.Fatal(err)
			}
			pl := Pipeline{Gate: &Gate{Goals: []string{"main"}}}
			_, outcomes, err := pl.Run(mod, res)
			if err != nil {
				t.Fatalf("gate rejected a shipped pass: %v", err)
			}
			for _, oc := range outcomes {
				if oc.Rejected {
					t.Errorf("pass %s rejected: %s", oc.Name, oc.RejectReason)
				}
			}
		})
	}
}
