package optimize

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"awam/internal/compiler"
	"awam/internal/core"
	"awam/internal/parser"
	"awam/internal/term"
	"awam/internal/wam"
)

var update = flag.Bool("update", false, "rewrite golden files")

// passProg exercises every pass: unused/1 is unreachable (strip),
// step's g and h clauses match no recorded call so only the f clause
// survives and its choice point goes away (dead-clause), w/2 has a
// variable-headed clause so the compiler cannot index it but the
// analysis proves arg 1 bound (index), and the ground calls specialize
// head unification (specialize).
const passProg = `
main :- step(f(1), A), step(f(2), B), join(A, B, _), w(a, _), w(b, _).
step(f(X), X).
step(g(X), X).
step(h(X), X).
join(X, Y, p(X, Y)).
w(a, 1).
w(b, 2).
w(_, 0).
unused(Z) :- join(Z, Z, _).
`

func mustLoad(t *testing.T, src string) (*term.Tab, *wam.Module, *core.Result) {
	t.Helper()
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, src)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.New(mod).AnalyzeAll()
	if err != nil {
		t.Fatal(err)
	}
	return tab, mod, res
}

// TestPassGolden pins each pass's exact output code: the disassembly
// after applying one pass to passProg must be byte-identical to its
// golden file (regenerate with -update).
func TestPassGolden(t *testing.T) {
	for _, p := range Passes() {
		t.Run(p.Name(), func(t *testing.T) {
			_, mod, res := mustLoad(t, passProg)
			out, stats, err := p.Apply(mod, res)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Total == 0 {
				t.Fatalf("pass %s did nothing on its showcase program", p.Name())
			}
			got := out.Disasm()
			golden := filepath.Join("testdata", "golden", p.Name()+".disasm")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("disasm drifted from %s:\n--- got ---\n%s", golden, got)
			}
		})
	}
}

// TestPassDisasmRoundTrips: every pass's output — including the new
// switch defaults and appended dispatch blocks — survives a
// Disasm/Assemble round trip byte-identically.
func TestPassDisasmRoundTrips(t *testing.T) {
	tab, mod, res := mustLoad(t, passProg)
	cur := mod
	for _, p := range Passes() {
		next, _, err := p.Apply(cur, res)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	text := cur.Disasm()
	back, err := wam.Assemble(tab, text)
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, text)
	}
	if got := back.Disasm(); got != text {
		t.Errorf("round trip drifted:\n--- first ---\n%s\n--- second ---\n%s", text, got)
	}
}

// TestPipelineOutcomes: the full pipeline on passProg strips unused/1,
// drops the dead step clause, indexes w/2, specializes, and the result
// still answers main/0.
func TestPipelineOutcomes(t *testing.T) {
	tab, mod, res := mustLoad(t, passProg)
	pl := Pipeline{Gate: &Gate{Goals: []string{"main"}}}
	out, outcomes, err := pl.Run(mod, res)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PassOutcome{}
	for _, oc := range outcomes {
		if oc.Rejected {
			t.Fatalf("pass %s rejected: %s", oc.Name, oc.RejectReason)
		}
		byName[oc.Name] = oc
	}
	if got := byName["strip-unreachable"].Stats.ClauseDelta; got != -1 {
		t.Errorf("strip clause delta = %d, want -1", got)
	}
	if got := byName["dead-clause"].Stats.Rewrites["dead clause"]; got != 2 {
		t.Errorf("dead clauses = %d, want 2 (step's g and h clauses)", got)
	}
	if got := byName["dead-clause"].Stats.Rewrites["choice point eliminated"]; got != 1 {
		t.Errorf("choice points eliminated = %d, want 1 (step/2)", got)
	}
	if got := byName["index"].Stats.Rewrites["indexed predicate"]; got != 1 {
		t.Errorf("indexed predicates = %d, want 1 (w/2)", got)
	}
	if byName["specialize"].Stats.Total == 0 {
		t.Error("no specializations")
	}
	if out.Proc(tab.Func("unused", 1)) != nil {
		t.Error("unused/1 survived stripping")
	}
	wProc := out.Proc(tab.Func("w", 2))
	if wProc == nil || out.Code[wProc.Entry].Op != wam.OpSwitchOnTerm {
		t.Error("w/2 not indexed")
	}
	if err := (&Gate{Goals: []string{"main", "w(a, N)", "step(f(7), V)"}}).Check(mod, out); err != nil {
		t.Errorf("final module diverges: %v", err)
	}
}

// breakerPass deliberately changes semantics: it drops the last clause
// of every multi-clause predicate. The gate must reject it.
type breakerPass struct{}

func (breakerPass) Name() string { return "breaker" }

func (breakerPass) Apply(mod *wam.Module, _ *core.Result) (*wam.Module, PassStats, error) {
	out := cloneModule(mod)
	var ps PassStats
	for _, fn := range mod.Order {
		proc := out.Procs[fn]
		if len(proc.Clauses) < 2 {
			continue
		}
		keep := proc.Clauses[:len(proc.Clauses)-1]
		entry := emitBlock(out, keep)
		proc.Entry = entry
		proc.Clauses = keep
		retargetCalls(out, fn, entry)
		ps.note("dropped clause", 1)
	}
	return out, ps, nil
}

// TestGateRejectsUnsoundPass: an answer-changing pass is rejected with
// a GateError (wrapping ErrOptimize), its output is discarded, and the
// passes around it still apply. The gate goals stay inside the analysis
// contract (w's first argument bound, as main calls it): w(b, N) loses
// its second answer when the breaker drops w(_, 0).
func TestGateRejectsUnsoundPass(t *testing.T) {
	_, mod, res := mustLoad(t, passProg)
	pl := Pipeline{
		Passes: []Pass{specializePass{}, breakerPass{}, indexPass{}},
		Gate:   &Gate{Goals: []string{"main", "w(b, N)"}},
	}
	out, outcomes, err := pl.Run(mod, res)
	if err == nil {
		t.Fatal("unsound pass shipped silently")
	}
	if !errors.Is(err, ErrOptimize) {
		t.Errorf("gate error does not wrap ErrOptimize: %v", err)
	}
	var gerr *GateError
	if !errors.As(err, &gerr) || gerr.Pass != "breaker" {
		t.Errorf("err = %v, want GateError for breaker", err)
	}
	var rejected, applied int
	for _, oc := range outcomes {
		if oc.Rejected {
			rejected++
			if oc.Name != "breaker" {
				t.Errorf("sound pass %s rejected: %s", oc.Name, oc.RejectReason)
			}
		} else {
			applied++
		}
	}
	if rejected != 1 || applied != 2 {
		t.Errorf("outcomes: %d rejected, %d applied; want 1 and 2", rejected, applied)
	}
	// The shipped module excludes the breaker: answers are unchanged.
	if err := (&Gate{Goals: []string{"main", "w(b, N)"}}).Check(mod, out); err != nil {
		t.Errorf("shipped module diverges: %v", err)
	}
}

// TestPassErrorWrapsOptimize: a pass that fails to apply surfaces as a
// PassError wrapping ErrOptimize and names the pass.
func TestPassErrorWrapsOptimize(t *testing.T) {
	err := error(&PassError{Pass: "index", Err: errors.New("boom")})
	if !errors.Is(err, ErrOptimize) {
		t.Error("PassError does not wrap ErrOptimize")
	}
	if _, uerr := PassByName("nope"); !errors.Is(uerr, ErrUnknownPass) {
		t.Error("unknown pass not typed")
	}
}

// TestDeadClauseDirectEntry: when one clause survives, the entry jumps
// straight at it — no choice point — and answers are preserved.
func TestDeadClauseDirectEntry(t *testing.T) {
	const prog = `
main :- sel(f(1), R), use(R).
sel(f(X), X).
sel(g(X), X).
use(_).
`
	tab, mod, res := mustLoad(t, prog)
	out, stats, err := deadClausePass{}.Apply(mod, res)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rewrites["choice point eliminated"] != 1 {
		t.Fatalf("stats = %+v, want one choice point eliminated", stats)
	}
	proc := out.Proc(tab.Func("sel", 2))
	if len(proc.Clauses) != 1 || proc.Entry != proc.Clauses[0] {
		t.Errorf("sel/2 entry %d clauses %v: not a direct entry", proc.Entry, proc.Clauses)
	}
	if err := (&Gate{Goals: []string{"main"}}).Check(mod, out); err != nil {
		t.Errorf("dead-clause diverges: %v", err)
	}
}
