// Package optimize applies the dataflow analysis to the compiled code —
// the paper's motivation: "substantial optimizations all depend on
// interprocedural information such as mode, type and variable aliasing".
//
// The pass implemented here is unification specialization: for every
// predicate whose (lubbed) calling patterns prove an argument
// non-variable at each call site, the head get instructions on that
// argument are replaced by read-only variants (get_list*, get_constant*,
// ...) with the write-mode and binding paths compiled away. The concrete
// machine treats an unbound variable reaching a specialized instruction
// as an unsoundness error, so running the optimized module doubles as a
// runtime validation of the analysis.
package optimize

import (
	"awam/internal/core"
	"awam/internal/domain"
	"awam/internal/term"
	"awam/internal/wam"
)

// Stats reports what the pass changed.
type Stats struct {
	// Specialized counts rewritten instructions by original opcode name.
	Specialized map[string]int
	// Total is the overall number of rewritten instructions.
	Total int
	// PredsTouched counts predicates with at least one rewrite.
	PredsTouched int
}

// Specialize returns a copy of mod with head unification instructions
// specialized according to the analysis result. The input module is not
// modified.
func Specialize(mod *wam.Module, res *core.Result) (*wam.Module, *Stats) {
	out := &wam.Module{
		Tab:   mod.Tab,
		Code:  append([]wam.Instr(nil), mod.Code...),
		Procs: mod.Procs,
		Order: mod.Order,
	}
	stats := &Stats{Specialized: make(map[string]int)}
	nv := domain.MkLeaf(domain.NV)
	for _, fn := range mod.Order {
		proc := mod.Procs[fn]
		call := res.CallFor(fn)
		if call == nil || fn.Arity == 0 {
			continue
		}
		// Argument registers proven non-variable at every call.
		nvArgs := make(map[int]bool)
		for i, a := range call.Args {
			if domain.Leq(mod.Tab, a, nv) {
				nvArgs[i+1] = true
			}
		}
		if len(nvArgs) == 0 {
			continue
		}
		touched := false
		for _, clauseAddr := range proc.Clauses {
			if specializeClause(out, clauseAddr, fn, nvArgs, stats) {
				touched = true
			}
		}
		if touched {
			stats.PredsTouched++
		}
	}
	return out, stats
}

// Reachability reports which predicates the analysis proved reachable
// from the entry point, and which of those can ever succeed. Predicates
// outside Reached are dead code under the analyzed entry; predicates in
// Reached but not in Succeeds always fail.
type Reachability struct {
	Reached  map[term.Functor]bool
	Succeeds map[term.Functor]bool
}

// Reach computes reachability from an analysis result.
func Reach(res *core.Result) Reachability {
	r := Reachability{
		Reached:  make(map[term.Functor]bool),
		Succeeds: make(map[term.Functor]bool),
	}
	for _, e := range res.Entries {
		r.Reached[e.CP.Fn] = true
		if e.Succ != nil {
			r.Succeeds[e.CP.Fn] = true
		}
	}
	return r
}

// StripUnreachable returns a copy of mod containing only the predicates
// the analysis reached. Calls to stripped predicates (which the analysis
// proved unreachable) are unlinked so they fail if ever taken. The code
// array keeps its addresses (stripping rewrites the procedure map, not
// the layout), so the module stays consistent.
func StripUnreachable(mod *wam.Module, res *core.Result) (*wam.Module, []term.Functor) {
	reach := Reach(res)
	out := &wam.Module{
		Tab:   mod.Tab,
		Code:  append([]wam.Instr(nil), mod.Code...),
		Procs: make(map[term.Functor]*wam.Proc),
	}
	var removed []term.Functor
	for _, fn := range mod.Order {
		if reach.Reached[fn] {
			out.Procs[fn] = mod.Procs[fn]
			out.Order = append(out.Order, fn)
		} else {
			removed = append(removed, fn)
		}
	}
	// Unlink calls to removed predicates.
	for i := range out.Code {
		ins := &out.Code[i]
		if ins.Op == wam.OpCall || ins.Op == wam.OpExecute {
			if _, ok := out.Procs[ins.Fn]; !ok && mod.Procs[ins.Fn] != nil {
				ins.L = wam.FailAddr
			}
		}
	}
	return out, removed
}

// specializeClause rewrites the head get instructions of one clause. It
// scans from the clause start through the get/unify prefix; argument
// registers stay valid until the body's put instructions begin.
func specializeClause(mod *wam.Module, addr int, fn term.Functor, nvArgs map[int]bool, stats *Stats) bool {
	touched := false
	for p := addr; p < len(mod.Code); p++ {
		ins := mod.Code[p]
		switch ins.Op {
		case wam.OpAllocate, wam.OpGetLevel, wam.OpNeckCut:
			continue
		case wam.OpGetVarX, wam.OpGetVarY, wam.OpGetValX, wam.OpGetValY,
			wam.OpUnifyVarX, wam.OpUnifyVarY, wam.OpUnifyValX, wam.OpUnifyValY,
			wam.OpUnifyConst, wam.OpUnifyInt, wam.OpUnifyNil, wam.OpUnifyVoid:
			continue
		case wam.OpGetConst, wam.OpGetInt, wam.OpGetNil, wam.OpGetList, wam.OpGetStruct:
			// Only original argument registers (<= arity) carry the
			// analyzed call modes; temporaries holding subterms do not.
			if ins.A1 > fn.Arity || !nvArgs[ins.A1] {
				continue
			}
			var newOp wam.Op
			switch ins.Op {
			case wam.OpGetConst:
				newOp = wam.OpGetConstCmp
			case wam.OpGetInt:
				newOp = wam.OpGetIntCmp
			case wam.OpGetNil:
				newOp = wam.OpGetNilCmp
			case wam.OpGetList:
				newOp = wam.OpGetListRead
			case wam.OpGetStruct:
				newOp = wam.OpGetStructRead
			}
			stats.Specialized[mod.DisasmInstr(wam.Instr{Op: ins.Op, A1: ins.A1, Fn: ins.Fn, I: ins.I})]++
			stats.Total++
			mod.Code[p].Op = newOp
			touched = true
		default:
			// First body/control instruction: the head prefix is over.
			return touched
		}
	}
	return touched
}
