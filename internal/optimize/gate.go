package optimize

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"awam/internal/machine"
	"awam/internal/wam"
)

// Gate is the differential runtime check between pipeline passes, after
// Wuu-style translation validation: the same goals run on the optimized
// and the unoptimized machine and must produce the same answer sequence
// (bindings, in order, including the final failure or error). Goals that
// exhaust the step or solution budget on the baseline are inconclusive
// and skipped; a goal that completes on the baseline but diverges on the
// optimized module rejects the pass.
type Gate struct {
	// Goals are Prolog goal conjunctions, e.g. "main" or "app(X, Y, [1,2])".
	Goals []string
	// MaxSolutions bounds enumeration per goal; 0 means 64.
	MaxSolutions int
	// MaxSteps bounds each side's machine per goal; 0 means 20 million.
	MaxSteps int64
}

const (
	defaultGateSolutions = 64
	defaultGateSteps     = 20_000_000
)

// goalRun is one goal's observable behavior on one module.
type goalRun struct {
	goal    string
	answers []string
	// status: "ok" (enumeration completed, possibly with zero answers),
	// "budget" (step or solution budget hit — inconclusive), or
	// "error: ..." (runtime error, part of observable behavior).
	status string
}

// run executes every gate goal against mod. The module is cloned per
// goal because compiling a query appends a fresh predicate to it.
func (g *Gate) run(mod *wam.Module) []goalRun {
	out := make([]goalRun, 0, len(g.Goals))
	for _, goal := range g.Goals {
		out = append(out, g.runGoal(mod, goal))
	}
	return out
}

func (g *Gate) runGoal(mod *wam.Module, goal string) goalRun {
	maxSol := g.MaxSolutions
	if maxSol == 0 {
		maxSol = defaultGateSolutions
	}
	maxSteps := g.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultGateSteps
	}
	r := goalRun{goal: goal, status: "ok"}
	m := machine.New(cloneModule(mod))
	m.MaxSteps = maxSteps
	sol, err := m.Solve(goal)
	for n := 0; ; n++ {
		if err != nil {
			if errors.Is(err, machine.ErrStepLimit) {
				r.status = "budget"
			} else {
				r.status = "error: " + err.Error()
			}
			return r
		}
		if !sol.OK {
			return r
		}
		r.answers = append(r.answers, renderAnswer(mod, sol))
		if n+1 >= maxSol {
			r.status = "budget"
			return r
		}
		_, err = sol.Next()
	}
}

// renderAnswer canonicalizes one solution's bindings: variables sorted
// by name, values written with the module's symbol table.
func renderAnswer(mod *wam.Module, sol *machine.Solution) string {
	bind := sol.Bindings()
	names := make([]string, 0, len(bind))
	for name := range bind {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, name+" = "+mod.Tab.Write(bind[name]))
	}
	if len(parts) == 0 {
		return "true"
	}
	return strings.Join(parts, ", ")
}

// compare checks an optimized module's goal runs against the baseline's.
// It returns a *GateError (with Pass left empty — the pipeline fills it
// in) on the first divergence, nil if every goal agrees or is
// inconclusive on the baseline.
func (g *Gate) compare(base, opt []goalRun) *GateError {
	for i := range base {
		b, o := base[i], opt[i]
		if b.status == "budget" {
			// The baseline never finished: nothing to compare against.
			continue
		}
		if o.status == "budget" {
			// The baseline finished in budget but the optimized module
			// did not — the transformation made the program slower than
			// the whole budget or diverging; reject rather than guess.
			return &GateError{Goal: b.goal, Detail: "optimized run exceeded a budget the baseline met"}
		}
		if b.status != o.status {
			return &GateError{Goal: b.goal, Detail: fmt.Sprintf("completion changed: baseline %s, optimized %s", b.status, o.status)}
		}
		if len(b.answers) != len(o.answers) {
			return &GateError{Goal: b.goal, Detail: fmt.Sprintf("answer count changed: baseline %d, optimized %d", len(b.answers), len(o.answers))}
		}
		for j := range b.answers {
			if b.answers[j] != o.answers[j] {
				return &GateError{
					Goal:   b.goal,
					Detail: fmt.Sprintf("answer %d changed: baseline %q, optimized %q", j+1, b.answers[j], o.answers[j]),
				}
			}
		}
	}
	return nil
}

// Check runs the gate goals on both modules and reports the first
// divergence (exported for tests and external validation harnesses).
func (g *Gate) Check(base, opt *wam.Module) error {
	if err := g.compare(g.run(base), g.run(opt)); err != nil {
		return err
	}
	return nil
}
