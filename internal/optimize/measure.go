package optimize

import (
	"time"

	"awam/internal/machine"
	"awam/internal/wam"
)

// Measure runs goal on mod runs times (each on a fresh machine and a
// fresh module copy, since query compilation appends to the module) and
// returns the fastest wall time with that run's executed-instruction
// count. Goal failure is still a measurement; only machine errors abort.
func Measure(mod *wam.Module, goal string, runs int) (time.Duration, int64, error) {
	best := time.Duration(-1)
	var steps int64
	for i := 0; i < runs; i++ {
		m := machine.New(cloneModule(mod))
		start := time.Now()
		sol, err := m.Solve(goal)
		d := time.Since(start)
		if err != nil {
			return 0, 0, err
		}
		_ = sol
		if best < 0 || d < best {
			best = d
			steps = m.Steps
		}
	}
	return best, steps, nil
}
