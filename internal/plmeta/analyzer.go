// Package plmeta implements the paper's actual comparison target: a
// dataflow analyzer implemented *in Prolog* and executed by the concrete
// WAM (internal/machine) — the counterpart of the Aquarius analyzer
// running under Quintus Prolog in Table 1. Its per-benchmark wall-clock
// time against internal/core's compiled analysis reproduces the paper's
// speed-up column.
//
// The analyzer performs a mode analysis in the Aquarius spirit (the
// paper notes Aquarius used a "considerably" simpler domain than its
// own): per-argument modes over the lattice v (free) / g (ground) /
// nv (nonvar) / any, with an extension table threaded through the
// interpretation as a linear list of pat/success pairs. The object
// program is reflected into obj_pred/3 facts by Reflect; analysis runs
// to a table fixpoint by repeated passes (the paper's iterative
// deepening).
package plmeta

// AnalyzerSource is the Prolog text of the meta-level analyzer. It uses
// only the Prolog subset our compiler supports: conjunctions, cut,
// arithmetic, functor/3, arg/3 and type tests — no if-then-else, no
// assert (the extension table is threaded, which is precisely the
// expense the paper attributes to Prolog-hosted implementations).
const AnalyzerSource = `
% ---- mode lattice: v (free) / g (ground) / nv (nonvar) / any (top) ----

lub(X, Y, X) :- X == Y, !.
lub(g, nv, nv) :- !.
lub(nv, g, nv) :- !.
lub(_, _, any).

meet(g, _, g) :- !.
meet(_, g, g) :- !.
meet(nv, _, nv) :- !.
meet(_, nv, nv) :- !.
meet(v, _, v) :- !.
meet(_, v, v) :- !.
meet(_, _, any).

% ---- environment: list of VarNum-Mode pairs. Unseen variables read as
% 'u' (no information yet): a variable first met in a clause body is
% free (v), but one first met in the head under an 'any' argument could
% be anything — the distinction keeps head binding sound. ----

envget(_, [], u) :- !.
envget(N, [P-M|_], M) :- N == P, !.
envget(N, [_|R], M) :- envget(N, R, M).

envset(N, M, [], [N-M]) :- !.
envset(N, M, [P-_|R], [P-M|R]) :- N == P, !.
envset(N, M, [E|R0], [E|R]) :- envset(N, M, R0, R).

% ---- term modes ----

mode_of('$v'(N), Env, M) :- !, envget(N, Env, M0), unseen_free(M0, M).
mode_of(T, _, g) :- atomic(T), !.
mode_of(T, Env, M) :- functor(T, _, A), args_ground(A, T, Env, g, M).

unseen_free(u, v) :- !.
unseen_free(M, M).

args_ground(0, _, _, Acc, M) :- !, close_struct(Acc, M).
args_ground(I, T, Env, Acc, M) :-
	arg(I, T, X),
	mode_of(X, Env, MX),
	acc_ground(MX, Acc, Acc1),
	I1 is I - 1,
	args_ground(I1, T, Env, Acc1, M).

acc_ground(g, Acc, Acc) :- !.
acc_ground(_, _, notg).

close_struct(g, g) :- !.
close_struct(_, nv).

% ---- setting variable modes across a term ----

setvars_g('$v'(N), E0, E) :- !, envset(N, g, E0, E).
setvars_g(T, E, E) :- atomic(T), !.
setvars_g(T, E0, E) :- functor(T, _, A), setvars_g_args(A, T, E0, E).

setvars_g_args(0, _, E, E) :- !.
setvars_g_args(I, T, E0, E) :-
	arg(I, T, X), setvars_g(X, E0, E1),
	I1 is I - 1, setvars_g_args(I1, T, E1, E).

% weaken: after an opaque instantiation, free vars become any; stronger
% knowledge (g, nv) survives.
weakvars('$v'(N), E0, E) :- !, envget(N, E0, C), wk(C, M), envset(N, M, E0, E).
weakvars(T, E, E) :- atomic(T), !.
weakvars(T, E0, E) :- functor(T, _, A), weakvars_args(A, T, E0, E).

weakvars_args(0, _, E, E) :- !.
weakvars_args(I, T, E0, E) :-
	arg(I, T, X), weakvars(X, E0, E1),
	I1 is I - 1, weakvars_args(I1, T, E1, E).

wk(g, g) :- !.
wk(nv, nv) :- !.
wk(_, any).

% hmeet: meet against possibly-absent knowledge.
hmeet(u, M, M) :- !.
hmeet(C, M, M1) :- meet(C, M, M1).

% ---- head binding: propagate the call mode into a head argument ----

bind_head(T, g, E0, E) :- !, setvars_g(T, E0, E).
bind_head('$v'(N), M, E0, E) :- !, envget(N, E0, C), hmeet(C, M, M1), envset(N, M1, E0, E).
bind_head(T, v, E, E) :- !.             % caller passed a free var: T's vars stay free
bind_head(T, _, E0, E) :- weakvars(T, E0, E).  % nv/any: unknown bindings inside

bind_head_args(0, _, _, E, E) :- !.
bind_head_args(I, H, CP, E0, E) :-
	arg(I, H, T), arg(I, CP, M),
	bind_head(T, M, E0, E1),
	I1 is I - 1, bind_head_args(I1, H, CP, E1, E).

% ---- applying a success pattern back to the call arguments ----

apply_succ('$v'(N), M, E0, E) :- !, envget(N, E0, C), hmeet(C, M, M1), envset(N, M1, E0, E).
apply_succ(T, g, E0, E) :- !, setvars_g(T, E0, E).
apply_succ(T, _, E0, E) :- weakvars(T, E0, E).

apply_succ_args(0, _, _, E, E) :- !.
apply_succ_args(I, G, SP, E0, E) :-
	arg(I, G, T), arg(I, SP, M),
	apply_succ(T, M, E0, E1),
	I1 is I - 1, apply_succ_args(I1, G, SP, E1, E).

% ---- calling patterns ----

callpat(G, Env, CP) :-
	functor(G, F, A),
	functor(CP, F, A),
	cp_args(A, G, CP, Env).

cp_args(0, _, _, _) :- !.
cp_args(I, G, CP, Env) :-
	arg(I, G, T), mode_of(T, Env, M),
	arg(I, CP, M),
	I1 is I - 1, cp_args(I1, G, CP, Env).

succpat(H, Env, SP) :- callpat(H, Env, SP).

% ---- the extension table: a linear list of e(Pattern, Success) ----

tlookup(P, [e(Q, S)|_], S) :- P == Q, !.
tlookup(P, [_|R], S) :- tlookup(P, R, S).

tupdate(P, S, [e(Q, S0)|R], [e(Q, S1)|R], C0, C) :-
	P == Q, !, lub_pat(S0, S, S1), upch(S0, S1, C0, C).
tupdate(P, S, [E|R0], [E|R], C0, C) :- tupdate(P, S, R0, R, C0, C).

upch(S0, S1, C, C) :- S0 == S1, !.
upch(_, _, _, yes).

lub_pat(bottom, P, P) :- !.
lub_pat(P, bottom, P) :- !.
lub_pat(P, Q, R) :-
	functor(P, F, A), functor(R, F, A),
	lub_args(A, P, Q, R).

lub_args(0, _, _, _) :- !.
lub_args(I, P, Q, R) :-
	arg(I, P, X), arg(I, Q, Y), lub(X, Y, Z), arg(I, R, Z),
	I1 is I - 1, lub_args(I1, P, Q, R).

% ---- goal reduction (status-passing: OK is yes/no) ----

body([], E, E, T, T, C, C, yes).
body([G|Gs], E0, E, T0, T, C0, C, OK) :-
	goal(G, E0, E1, T0, T1, C0, C1, OK1),
	body_more(OK1, Gs, E1, E, T1, T, C1, C, OK).

body_more(yes, Gs, E0, E, T0, T, C0, C, OK) :- body(Gs, E0, E, T0, T, C0, C, OK).
body_more(no, _, E, E, T, T, C, C, no).

goal(G, E0, E, T, T, C, C, OK) :- bgoal(G, E0, E, OK), !.
goal(G, E0, E, T0, T, C0, C, OK) :-
	callpat(G, E0, CP),
	tlookup(CP, T0, S), !,
	use_succ(S, G, E0, E, OK),
	T = T0, C = C0.
goal(G, E0, E0, T0, T, _, yes, no) :-
	% Unexplored calling pattern: record it (bottom) and fail this pass;
	% the next pass will explore it (iterative deepening).
	callpat(G, E0, CP),
	append_entry(T0, e(CP, bottom), T).

use_succ(bottom, _, E, E, no) :- !.
use_succ(SP, G, E0, E, yes) :- functor(G, _, A), apply_succ_args(A, G, SP, E0, E).

append_entry([], E, [E]).
append_entry([X|R0], E, [X|R]) :- append_entry(R0, E, R).

% ---- abstract builtins ----

bgoal(!, E, E, yes).
bgoal(true, E, E, yes).
bgoal(fail, _, _, no).
bgoal(halt, E, E, yes).
bgoal(nl, E, E, yes).
bgoal(write(_), E, E, yes).
bgoal(X is Expr, E0, E, yes) :- setvars_g(Expr, E0, E1), setvars_g(X, E1, E).
bgoal(X < Y, E0, E, yes) :- setvars_g(X, E0, E1), setvars_g(Y, E1, E).
bgoal(X > Y, E0, E, yes) :- setvars_g(X, E0, E1), setvars_g(Y, E1, E).
bgoal(X =< Y, E0, E, yes) :- setvars_g(X, E0, E1), setvars_g(Y, E1, E).
bgoal(X >= Y, E0, E, yes) :- setvars_g(X, E0, E1), setvars_g(Y, E1, E).
bgoal(X =:= Y, E0, E, yes) :- setvars_g(X, E0, E1), setvars_g(Y, E1, E).
bgoal(X =\= Y, E0, E, yes) :- setvars_g(X, E0, E1), setvars_g(Y, E1, E).
bgoal(X = Y, E0, E, yes) :- abs_unify(X, Y, E0, E).
bgoal(X == Y, E0, E, yes) :- abs_unify(X, Y, E0, E).
bgoal(_ \== _, E, E, yes).
bgoal(_ \= _, E, E, yes).
bgoal(compare(O, _, _), E0, E, yes) :- setvars_g(O, E0, E).
bgoal(_ @< _, E, E, yes).
bgoal(_ @=< _, E, E, yes).
bgoal(_ @> _, E, E, yes).
bgoal(_ @>= _, E, E, yes).
bgoal(length(L, N), E0, E, yes) :- narrow_nv(L, E0, E1), setvars_g(N, E1, E).
bgoal(assert(_), E, E, yes).
bgoal(retract(_), E, E, yes).
bgoal(var(_), E, E, yes).
bgoal(nonvar(X), E0, E, yes) :- narrow_nv(X, E0, E).
bgoal(atom(X), E0, E, yes) :- setvars_g(X, E0, E).
bgoal(integer(X), E0, E, yes) :- setvars_g(X, E0, E).
bgoal(atomic(X), E0, E, yes) :- setvars_g(X, E0, E).
bgoal(functor(T, F, A), E0, E, yes) :-
	narrow_nv(T, E0, E1), setvars_g(F, E1, E2), setvars_g(A, E2, E).
bgoal(arg(I, T, X), E0, E, yes) :-
	setvars_g(I, E0, E1), narrow_nv(T, E1, E2), weakvars(X, E2, E).

narrow_nv('$v'(N), E0, E) :- !, envget(N, E0, C), hmeet(C, nv, M), envset(N, M, E0, E).
narrow_nv(_, E, E).

% Abstract =/2: ground on one side grounds the other; otherwise both
% sides' free variables become any.
abs_unify(X, Y, E0, E) :-
	mode_of(X, E0, MX), mode_of(Y, E0, MY),
	abs_unify_m(MX, MY, X, Y, E0, E).

abs_unify_m(g, _, _, Y, E0, E) :- !, setvars_g(Y, E0, E).
abs_unify_m(_, g, X, _, E0, E) :- !, setvars_g(X, E0, E).
abs_unify_m(_, _, X, Y, E0, E) :- weakvars(X, E0, E1), weakvars(Y, E1, E).

% ---- clause exploration ----

explore(CP, T0, T, C0, C) :-
	functor(CP, F, A),
	obj_pred(F, A, Clauses), !,
	clauses(Clauses, CP, T0, T1, C0, C1, bottom, S),
	tupdate(CP, S, T1, T, C1, C).
explore(_, T, T, C, C).

clauses([], _, T, T, C, C, S, S).
clauses([cl(H, B)|R], CP, T0, T, C0, C, S0, S) :-
	try_clause(H, B, CP, T0, T1, C0, C1, S0, S1),
	clauses(R, CP, T1, T, C1, C, S1, S).

try_clause(H, B, CP, T0, T, C0, C, S0, S) :-
	functor(CP, _, A),
	bind_head_args(A, H, CP, [], E0),
	body(B, E0, E, T0, T, C0, C, OK),
	finish_clause(OK, H, E, S0, S).

finish_clause(yes, H, E, S0, S) :- succpat(H, E, SP), lub_pat(S0, SP, S).
finish_clause(no, _, _, S, S).

% ---- the fixpoint driver ----

pass([], T, T, C, C).
pass([e(CP, _)|R], T0, T, C0, C) :-
	explore(CP, T0, T1, C0, C1),
	pass(R, T1, T, C1, C).

iterate(T0, T) :-
	pass(T0, T0, T1, no, C),
	continue(C, T1, T).

continue(yes, T0, T) :- iterate(T0, T).
continue(no, T, T).

analyze(T) :-
	entry_pattern(CP),
	iterate([e(CP, bottom)], T).

main :- analyze(_).
`
