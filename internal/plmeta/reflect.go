package plmeta

import (
	"fmt"
	"strings"
	"time"

	"awam/internal/compiler"
	"awam/internal/machine"
	"awam/internal/parser"
	"awam/internal/term"
	"awam/internal/wam"
)

// Reflect renders a parsed program as object-level facts for the
// Prolog-hosted analyzer: one obj_pred(Name, Arity, [cl(Head, Body),
// ...]) fact per predicate, with clause variables reified as '$v'(N)
// terms, plus the entry_pattern fact for main/0.
func Reflect(tab *term.Tab, prog *term.Program) string {
	var b strings.Builder
	for _, fn := range prog.Order {
		fmt.Fprintf(&b, "obj_pred(%s, %d, [", quoteAtom(tab, fn.Name), fn.Arity)
		for i, cl := range prog.ClausesOf(fn) {
			if i > 0 {
				b.WriteString(",\n    ")
			}
			b.WriteString(reflectClause(tab, cl))
		}
		b.WriteString("]).\n")
	}
	b.WriteString("entry_pattern(main).\n")
	return b.String()
}

// reflectClause renders cl(Head, [Goal, ...]) with reified variables.
func reflectClause(tab *term.Tab, cl term.Clause) string {
	nums := make(map[*term.VarRef]int)
	head := reify(tab, cl.Head, nums)
	goals := make([]string, len(cl.Body))
	for i, g := range cl.Body {
		goals[i] = reify(tab, g, nums)
	}
	return fmt.Sprintf("cl(%s, [%s])", head, strings.Join(goals, ", "))
}

// reify writes tm with each variable replaced by '$v'(N).
func reify(tab *term.Tab, tm *term.Term, nums map[*term.VarRef]int) string {
	sub := substituteVars(tab, tm, nums)
	return tab.Write(sub)
}

func substituteVars(tab *term.Tab, tm *term.Term, nums map[*term.VarRef]int) *term.Term {
	switch tm.Kind {
	case term.KVar:
		n, ok := nums[tm.Ref]
		if !ok {
			n = len(nums) + 1
			nums[tm.Ref] = n
		}
		return term.MkStruct(tab.Func("$v", 1), term.MkInt(int64(n)))
	case term.KStruct:
		args := make([]*term.Term, len(tm.Args))
		for i, a := range tm.Args {
			args[i] = substituteVars(tab, a, nums)
		}
		return term.MkStruct(tm.Fn, args...)
	default:
		return tm
	}
}

func quoteAtom(tab *term.Tab, a term.Atom) string {
	return tab.Write(term.MkAtom(a))
}

// Runner is a prepared Prolog-hosted analysis: the analyzer source plus
// the reflected object program, compiled once for the WAM, with the
// query predicate pre-linked so repeated runs measure only analysis.
type Runner struct {
	Tab *term.Tab
	Mod *wam.Module
	// Source is the combined Prolog text (diagnostics).
	Source  string
	queryFn term.Functor
}

// NewRunner reflects prog and compiles the combined analyzer program.
// Note the object program is re-rendered through its own atom table —
// the analyzer's machine is independent of the caller's pipeline.
func NewRunner(tab *term.Tab, prog *term.Program) (*Runner, error) {
	src := AnalyzerSource + "\n" + Reflect(tab, prog)
	atab := term.NewTab()
	aprog, err := parser.ParseProgram(atab, src)
	if err != nil {
		return nil, fmt.Errorf("plmeta: analyzer source: %w", err)
	}
	mod, err := compiler.Compile(atab, aprog)
	if err != nil {
		return nil, fmt.Errorf("plmeta: analyzer compile: %w", err)
	}
	goals, err := parser.ParseGoal(atab, "analyze(T)")
	if err != nil {
		return nil, err
	}
	fn, _, err := compiler.AddQuery(mod, goals)
	if err != nil {
		return nil, err
	}
	return &Runner{Tab: atab, Mod: mod, Source: src, queryFn: fn}, nil
}

// Run executes one full analysis on the WAM and returns the final
// extension table as a term, the machine steps spent, and the wall time.
func (r *Runner) Run() (*term.Term, int64, time.Duration, error) {
	m := machine.New(r.Mod) // fresh machine per run (fresh heap)
	tblAddr := m.Heap().PushVar()
	start := time.Now()
	ok, err := m.CallAddrs(r.queryFn, []int{tblAddr})
	elapsed := time.Since(start)
	if err != nil {
		return nil, m.Steps, elapsed, err
	}
	if !ok {
		return nil, m.Steps, elapsed, fmt.Errorf("plmeta: analysis failed")
	}
	tbl := m.Heap().ReadTerm(r.Tab, tblAddr, make(map[int]*term.Term))
	return tbl, m.Steps, elapsed, nil
}

// TableEntries decodes the e(Pattern, Success) list into display
// strings.
func (r *Runner) TableEntries(tbl *term.Term) []string {
	var out []string
	for r.Tab.IsCons(tbl) {
		e := tbl.Args[0]
		if e.Kind == term.KStruct && len(e.Args) == 2 {
			out = append(out, fmt.Sprintf("%s -> %s",
				r.Tab.Write(e.Args[0]), r.Tab.Write(e.Args[1])))
		}
		tbl = tbl.Args[1]
	}
	return out
}
