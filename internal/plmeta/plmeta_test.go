package plmeta

import (
	"strings"
	"testing"

	"awam/internal/bench"
	"awam/internal/machine"
	"awam/internal/parser"
	"awam/internal/term"
)

func runner(t *testing.T, src string) *Runner {
	t.Helper()
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r, err := NewRunner(tab, prog)
	if err != nil {
		t.Fatalf("runner: %v", err)
	}
	return r
}

func TestReflectShape(t *testing.T) {
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, "p(X, a) :- q(X), X = 1.\nq(_).\nmain :- p(_, _).\n")
	if err != nil {
		t.Fatal(err)
	}
	facts := Reflect(tab, prog)
	for _, want := range []string{
		"obj_pred(p, 2,",
		"obj_pred(q, 1,",
		"obj_pred(main, 0,",
		"cl(p('$v'(1), a), [q('$v'(1)), '$v'(1) = 1])",
		"entry_pattern(main).",
	} {
		if !strings.Contains(facts, want) {
			t.Errorf("reflection missing %q in:\n%s", want, facts)
		}
	}
}

func TestAnalyzeSimpleModes(t *testing.T) {
	r := runner(t, `
main :- p(1, X), use(X).
p(A, A).
use(_).
`)
	tbl, steps, _, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if steps == 0 {
		t.Fatal("no machine steps counted")
	}
	entries := r.TableEntries(tbl)
	joined := strings.Join(entries, "\n")
	// p called with (g, v) must succeed with both ground.
	if !strings.Contains(joined, "p(g, v) -> p(g, g)") {
		t.Fatalf("mode analysis table:\n%s", joined)
	}
	if !strings.Contains(joined, "main -> main") {
		t.Fatalf("main should succeed:\n%s", joined)
	}
}

func TestAnalyzeArithmetic(t *testing.T) {
	r := runner(t, `
main :- d(1, X), out(X).
d(A, B) :- B is A + 1.
out(_).
`)
	tbl, _, _, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(r.TableEntries(tbl), "\n")
	if !strings.Contains(joined, "d(g, v) -> d(g, g)") {
		t.Fatalf("is/2 should ground its result:\n%s", joined)
	}
}

func TestAnalyzeRecursion(t *testing.T) {
	r := runner(t, `
main :- app([1, 2], [3], X), out(X).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
out(_).
`)
	tbl, _, _, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(r.TableEntries(tbl), "\n")
	if !strings.Contains(joined, "app(g, g, v) -> app(g, g, g)") {
		t.Fatalf("append modes:\n%s", joined)
	}
}

func TestAnalyzeFailure(t *testing.T) {
	r := runner(t, `
main :- p(_).
p(X) :- q(X).
q(_) :- fail.
`)
	tbl, _, _, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(r.TableEntries(tbl), "\n")
	if !strings.Contains(joined, "-> bottom") {
		t.Fatalf("failing predicates should stay bottom:\n%s", joined)
	}
}

// TestAnalyzeAllBenchmarks: the Prolog-hosted analyzer reaches a
// fixpoint on every Table 1 benchmark and sees main/0 succeed.
func TestAnalyzeAllBenchmarks(t *testing.T) {
	for _, p := range bench.Programs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			r := runner(t, p.Source)
			tbl, steps, dur, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			entries := r.TableEntries(tbl)
			if len(entries) == 0 {
				t.Fatal("empty extension table")
			}
			joined := strings.Join(entries, "\n")
			if !strings.Contains(joined, "main -> main") {
				t.Fatalf("main should succeed:\n%s", joined)
			}
			t.Logf("%s: %d entries, %d WAM steps, %v", p.Name, len(entries), steps, dur)
		})
	}
}

// TestPrologAnalyzerInternals unit-tests the analyzer's own Prolog
// predicates by querying them directly on the WAM — the lattice, the
// environment and the abstract builtins.
func TestPrologAnalyzerInternals(t *testing.T) {
	r := runner(t, "main.\n")
	m := machine.New(r.Mod)
	cases := map[string]string{
		"lub(g, g, X)":                  "g",
		"lub(g, nv, X)":                 "nv",
		"lub(v, g, X)":                  "any",
		"lub(any, g, X)":                "any",
		"meet(g, any, X)":               "g",
		"meet(v, any, X)":               "v",
		"meet(nv, v, X)":                "nv",
		"envget(3, [1-g, 3-nv], X)":     "nv",
		"envget(9, [1-g], X)":           "u", // unseen: no information yet
		"mode_of('$v'(9), [1-g], X)":    "v", // unseen reads as free in bodies
		"hmeet(u, any, X)":              "any",
		"hmeet(v, any, X)":              "v",
		"mode_of('$v'(2), [2-g], X)":    "g",
		"mode_of(f(1, a), [], X)":       "g",
		"mode_of(f('$v'(1)), [1-v], X)": "nv",
		"mode_of(g('$v'(1)), [1-g], X)": "g",
		"lub_pat(bottom, p(g), X)":      "p(g)",
		"lub_pat(p(g, v), p(nv, g), X)": "p(nv, any)",
	}
	for goal, want := range cases {
		sol, err := m.Solve(goal)
		if err != nil {
			t.Fatalf("%s: %v", goal, err)
		}
		if !sol.OK {
			t.Errorf("%s failed", goal)
			continue
		}
		got, err := sol.Binding("X")
		if err != nil {
			t.Fatal(err)
		}
		if s := r.Tab.Write(got); s != want {
			t.Errorf("%s = %s, want %s", goal, s, want)
		}
	}
}

// TestPrologAnalyzerTableOps exercises the threaded extension table.
func TestPrologAnalyzerTableOps(t *testing.T) {
	r := runner(t, "main.\n")
	m := machine.New(r.Mod)
	sol, err := m.Solve("tupdate(p(g), p(g), [e(q(v), bottom), e(p(g), bottom)], T, no, C)")
	if err != nil {
		t.Fatal(err)
	}
	if !sol.OK {
		t.Fatal("tupdate failed")
	}
	tbl, _ := sol.Binding("T")
	ch, _ := sol.Binding("C")
	if got := r.Tab.Write(tbl); got != "[e(q(v), bottom), e(p(g), p(g))]" {
		t.Fatalf("table = %s", got)
	}
	if r.Tab.Write(ch) != "yes" {
		t.Fatal("update should report a change")
	}
	// Updating with the same value reports no change.
	sol2, err := m.Solve("tupdate(p(g), p(g), [e(p(g), p(g))], _, no, C)")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := sol2.Binding("C"); r.Tab.Write(got) != "no" {
		t.Fatal("idempotent update should not report a change")
	}
}
