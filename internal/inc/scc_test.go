package inc

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"awam/internal/bench"
	"awam/internal/compiler"
	"awam/internal/core"
	"awam/internal/parser"
	"awam/internal/term"
	"awam/internal/wam"
)

func mustCompile(t *testing.T, src string) (*term.Tab, *wam.Module) {
	t.Helper()
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return tab, mod
}

func planOf(t *testing.T, src string) (*term.Tab, *Plan) {
	t.Helper()
	tab, mod := mustCompile(t, src)
	return tab, NewPlan(mod, "depth=4 indexing=true")
}

// sccNames renders a plan's components for golden comparison:
// one "name/arity[,name/arity] -> calleeIdx[,calleeIdx]" line each,
// with "?" marking undefined pseudo-components.
func sccNames(tab *term.Tab, p *Plan) []string {
	out := make([]string, len(p.SCCs))
	for i, scc := range p.SCCs {
		names := make([]string, len(scc.Members))
		for j, fn := range scc.Members {
			names[j] = tab.FuncString(fn)
		}
		line := strings.Join(names, ",")
		if scc.Undefined {
			line += "?"
		}
		if len(scc.Callees) > 0 {
			line += fmt.Sprintf(" -> %v", scc.Callees)
		}
		out[i] = line
	}
	return out
}

// TestCondenseGolden pins the condensation of a program exercising a
// self-loop, mutual recursion, a shared callee and an undefined callee.
func TestCondenseGolden(t *testing.T) {
	tab, p := planOf(t, `
leaf(a).
selfrec([], []).
selfrec([X|Xs], [X|Ys]) :- selfrec(Xs, Ys).
even(z).
even(s(N)) :- odd(N).
odd(s(N)) :- even(N).
top(X) :- selfrec(X, _), even(X), leaf(X), ghost(X).
`)
	want := []string{
		"leaf/1",
		"selfrec/2",
		"even/1,odd/1",
		"ghost/1?",
		"top/1 -> [0 1 2 3]",
	}
	if got := sccNames(tab, p); !reflect.DeepEqual(got, want) {
		t.Fatalf("condensation:\n got %q\nwant %q", got, want)
	}
	// Reverse topological: every callee index precedes its caller.
	for i, scc := range p.SCCs {
		for _, j := range scc.Callees {
			if j >= i {
				t.Fatalf("SCC %d lists callee %d: not bottom-up", i, j)
			}
		}
	}
}

// TestCondenseBenchPrograms checks structural invariants on the two
// extended-suite programs with the most interesting recursion shapes:
// self-loops must stay single components, and members of a
// multi-member component must reach each other.
func TestCondenseBenchPrograms(t *testing.T) {
	for _, name := range []string{"samsort", "tautology"} {
		prog, ok := bench.ExtendedByName(name)
		if !ok {
			t.Fatalf("%s not in extended suite", name)
		}
		tab, p := planOf(t, prog.Source)
		edges := p.StaticEdges()
		for i, scc := range p.SCCs {
			for _, j := range scc.Callees {
				if j >= i {
					t.Fatalf("%s: SCC %d callee %d not bottom-up", name, i, j)
				}
			}
			if len(scc.Members) > 1 {
				// Mutual recursion: each member calls into the component.
				for _, m := range scc.Members {
					callsIn := false
					for _, n := range scc.Members {
						if edges[[2]term.Functor{m, n}] {
							callsIn = true
						}
					}
					if !callsIn {
						t.Fatalf("%s: %s grouped into an SCC it never calls into",
							name, tab.FuncString(m))
					}
				}
			}
		}
	}
}

// TestEdgesMatchStaticCallEdges pins the plan's call graph to the
// engine's existing extractor on the whole benchmark suite.
func TestEdgesMatchStaticCallEdges(t *testing.T) {
	for _, prog := range bench.AllPrograms() {
		_, mod := mustCompile(t, prog.Source)
		p := NewPlan(mod, "ctx")
		if got, want := p.StaticEdges(), core.StaticCallEdges(mod); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: plan edges disagree with core.StaticCallEdges", prog.Name)
		}
	}
}

// TestPlanDeterministic compiles every benchmark twice into fresh
// symbol tables and requires identical condensations and fingerprints —
// the property the content-addressed store depends on.
func TestPlanDeterministic(t *testing.T) {
	for _, prog := range bench.AllPrograms() {
		tab1, p1 := planOf(t, prog.Source)
		tab2, p2 := planOf(t, prog.Source)
		if got, want := sccNames(tab1, p1), sccNames(tab2, p2); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: condensation not deterministic:\n%q\n%q", prog.Name, got, want)
		}
		for i := range p1.SCCs {
			if p1.SCCs[i].Fingerprint != p2.SCCs[i].Fingerprint {
				t.Fatalf("%s: SCC %d fingerprint differs across fresh compiles", prog.Name, i)
			}
			if len(p1.SCCs[i].Fingerprint) != 64 {
				t.Fatalf("%s: SCC %d fingerprint not sha256 hex: %q", prog.Name, i, p1.SCCs[i].Fingerprint)
			}
		}
	}
}

// TestEveryPredicateAssigned: each defined predicate and each undefined
// callee maps to exactly one component that lists it as a member.
func TestEveryPredicateAssigned(t *testing.T) {
	for _, prog := range bench.AllPrograms() {
		tab, mod := mustCompile(t, prog.Source)
		p := NewPlan(mod, "ctx")
		for _, fn := range mod.Order {
			i, ok := p.PredSCC[fn]
			if !ok {
				t.Fatalf("%s: %s not assigned", prog.Name, tab.FuncString(fn))
			}
			found := false
			for _, m := range p.SCCs[i].Members {
				if m == fn {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: %s not a member of its own SCC", prog.Name, tab.FuncString(fn))
			}
		}
	}
}
