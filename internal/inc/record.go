package inc

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"awam/internal/core"
	"awam/internal/domain"
	"awam/internal/term"
)

// A record is the cached artifact for one component: every (calling
// pattern, success pattern) pair the analysis presented for the
// component's predicates, plus each entry's finalize-phase consultation
// trace. The summary block reuses the core Marshal/Unmarshal format
// verbatim, with a trace section appended:
//
//	awam-scc 1
//	awam-analysis 1
//	call p(g, var)
//	succ p(g, g)
//	trace 0 2
//	dep q(g)
//	dep r(list(g), var)
//
// "trace i n" attaches the following n "dep" lines to the i-th call of
// the summary block. Patterns are stored as text (domain.PatternText)
// and re-parsed into the consuming analysis' symbol table — canonical
// keys embed interned atom numbers and never cross a table boundary.

// ErrBadRecord reports a malformed cache record. Decode failures wrap
// it (and, for the summary block, core.ErrBadSummary too); the engine
// treats them as cache misses, never as analysis errors.
var ErrBadRecord = errors.New("inc: malformed summary record")

// recordHeader is the version line; bump with fpFormat when the record
// layout changes.
const recordHeader = "awam-scc 1"

// RecordEntry is one decoded cache line: a converged calling pattern →
// success pattern pair and the finalize trace that replays it. Succ nil
// means converged bottom (the call cannot succeed).
type RecordEntry struct {
	CP   *domain.Pattern
	Succ *domain.Pattern
	Deps []*domain.Pattern
}

// EncodeRecord serializes converged entries (with their finalize
// Consults traces) into a cacheable record. The entries must all come
// from one finished worklist analysis over tab.
func EncodeRecord(tab *term.Tab, entries []*core.Entry) []byte {
	res := &core.Result{Tab: tab, Entries: entries}
	var b strings.Builder
	b.WriteString(recordHeader)
	b.WriteByte('\n')
	b.WriteString(res.Marshal())
	for i, e := range entries {
		fmt.Fprintf(&b, "trace %d %d\n", i, len(e.Consults))
		for _, dep := range e.Consults {
			fmt.Fprintf(&b, "dep %s\n", domain.PatternText(tab, dep))
		}
	}
	return []byte(b.String())
}

// DecodeRecord parses a record produced by EncodeRecord, interning
// pattern names into tab. The summary block is validated by
// core.Unmarshal (structure, duplicate calls, truncation); the trace
// section must reference every entry at most once with its exact dep
// count. Any failure wraps ErrBadRecord.
func DecodeRecord(tab *term.Tab, data []byte) ([]RecordEntry, error) {
	return decodeRecord(tab, data, nil)
}

// decodeRecord is DecodeRecord with an optional dep-pattern memo. A
// callee's calling pattern recurs as a "dep" line in every caller's
// trace, so a warm load that decodes thousands of records re-parses the
// same texts over and over; the engine shares one memo (text → parsed
// pattern, same symbol table) across the whole load. Patterns are
// immutable once built, so aliasing one node across entries is safe —
// the interner quotients them to shared representatives downstream
// anyway.
func decodeRecord(tab *term.Tab, data []byte, memo map[string]*domain.Pattern) ([]RecordEntry, error) {
	// Lines are walked with a cursor rather than strings.Split: decoding
	// runs once per served component on every warm analysis, and the
	// line-slice plus re-Join of the summary block dominated it. The
	// summary block is handed to core.Unmarshal as a slice of the record
	// text, not a copy.
	text := string(data)
	header, rest, _ := strings.Cut(text, "\n")
	if strings.TrimSpace(header) != recordHeader {
		return nil, fmt.Errorf("%w: not an %s record", ErrBadRecord, recordHeader)
	}
	pos, lineNo := 0, 1
	next := func() (string, bool) {
		if pos >= len(rest) {
			return "", false
		}
		var line string
		if nl := strings.IndexByte(rest[pos:], '\n'); nl < 0 {
			line, pos = rest[pos:], len(rest)
		} else {
			line, pos = rest[pos:pos+nl], pos+nl+1
		}
		lineNo++
		return line, true
	}
	// The summary block runs until the first trace line.
	bodyEnd := len(rest)
	var line string
	inTrace := false
	for {
		start := pos
		l, more := next()
		if !more {
			break
		}
		if strings.HasPrefix(strings.TrimSpace(l), "trace ") {
			bodyEnd, line, inTrace = start, l, true
			break
		}
	}
	res, err := core.UnmarshalCached(tab, rest[:bodyEnd], memo)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRecord, err)
	}
	out := make([]RecordEntry, len(res.Entries))
	for i, e := range res.Entries {
		out[i] = RecordEntry{CP: e.CP, Succ: e.Succ}
	}
	seen := make(map[int]bool)
	for ; inTrace; line, inTrace = next() {
		hdrNo := lineNo
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "trace" {
			return nil, fmt.Errorf("%w: line %d: expected trace line, got %q", ErrBadRecord, hdrNo, line)
		}
		idx, err1 := strconv.Atoi(fields[1])
		n, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || idx < 0 || idx >= len(out) || n < 0 || seen[idx] {
			return nil, fmt.Errorf("%w: line %d: bad trace header %q", ErrBadRecord, hdrNo, line)
		}
		seen[idx] = true
		deps := make([]*domain.Pattern, 0, n)
		for k := 0; k < n; k++ {
			dl, more := next()
			if !more {
				return nil, fmt.Errorf("%w: truncated trace for entry %d", ErrBadRecord, idx)
			}
			dl = strings.TrimSpace(dl)
			if !strings.HasPrefix(dl, "dep ") {
				return nil, fmt.Errorf("%w: line %d: expected dep line, got %q", ErrBadRecord, lineNo, dl)
			}
			depText := strings.TrimPrefix(dl, "dep ")
			dep := memo[depText]
			if dep == nil {
				var err error
				dep, err = domain.ParseAbsQuick(tab, depText)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: %v", ErrBadRecord, lineNo, err)
				}
				if memo != nil {
					memo[depText] = dep
				}
			}
			deps = append(deps, dep)
		}
		out[idx].Deps = deps
	}
	return out, nil
}
