package inc

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"

	"awam/internal/term"
	"awam/internal/wam"
)

// fpFormat names the fingerprint schema. Bump it whenever the hashed
// form changes meaning (instruction encoding, record format, analysis
// semantics): old cache records then simply stop matching, which is the
// only invalidation this design needs. v2 replaced the disassembly-text
// hash input with the binary encoding below (same coverage, far cheaper
// to compute — fingerprinting is on the warm path of every request).
// v3 salts the schedule-confluent widening semantics: the uniform-list
// closure changes computed summaries (e.g. [f(g)|list(g)] now presents
// as [g|list(g)]), so records written by the pre-closure analyzer must
// never satisfy a post-closure run, and vice versa.
const fpFormat = "awam-scc-fp 3"

// fingerprint computes every component's content address, bottom-up.
// A fingerprint covers:
//
//   - the schema version and the analysis configuration (context),
//   - each member's compiled code, encoded position-independently
//     (addresses relative to the procedure entry, callee identity by
//     name — see relInstr),
//   - the fingerprints of all callee components, i.e. transitively the
//     entire cone below.
//
// Two components hash equal exactly when analyzing them under the same
// configuration is guaranteed to produce the same summaries, so cached
// records can be reused without any soundness check at load time.
// Undefined pseudo-components hash their name/arity: defining the
// predicate later replaces the pseudo-fingerprint with a code hash and
// thereby dirties every caller.
func (p *Plan) fingerprint(context string) { p.fingerprintWith(fpFormat, context) }

// fingerprintWith is fingerprint with an explicit schema name. It
// exists so tests can key records under a different format generation
// and prove the salt isolates them; production code always hashes
// fpFormat.
func (p *Plan) fingerprintWith(format, context string) {
	var bw binWriter
	for _, scc := range p.SCCs {
		bw.buf = bw.buf[:0]
		bw.str(format)
		bw.str(context)
		for _, fn := range scc.Members {
			if scc.Undefined {
				bw.str("undefined")
				bw.str(p.Mod.Tab.Name(fn.Name))
				bw.uint(uint64(fn.Arity))
				continue
			}
			sp := p.spans[fn]
			writeProcBin(&bw, p.Mod, fn, sp[0], sp[1])
		}
		// Callee fingerprints sorted lexically: the set matters, not the
		// call order (summaries are order-free), and sorting keeps the
		// hash stable under clause reordering that preserves the set.
		fps := make([]string, len(scc.Callees))
		for i, j := range scc.Callees {
			fps[i] = p.SCCs[j].Fingerprint
		}
		sort.Strings(fps)
		for _, fp := range fps {
			bw.str(fp)
		}
		sum := sha256.Sum256(bw.buf)
		scc.Fingerprint = hex.EncodeToString(sum[:])
	}
}

// binWriter builds the fingerprint's hash input: a flat byte string of
// varints and length-prefixed names. Every atom and functor is encoded
// by spelling, never by interned number, so the encoding is stable
// across processes and symbol tables.
type binWriter struct{ buf []byte }

func (b *binWriter) uint(v uint64) { b.buf = binary.AppendUvarint(b.buf, v) }
func (b *binWriter) int(v int64)   { b.buf = binary.AppendVarint(b.buf, v) }
func (b *binWriter) str(s string) {
	b.uint(uint64(len(s)))
	b.buf = append(b.buf, s...)
}

// writeProcBin encodes one procedure's code position-independently:
// entry and clause addresses relative to the span start, every
// instruction with absolute addresses stripped by relInstr. Switch
// dispatch tables are emitted in sorted key order (map iteration order
// must not leak into the hash).
func writeProcBin(bw *binWriter, mod *wam.Module, fn term.Functor, start, end int) {
	tab := mod.Tab
	proc := mod.Procs[fn]
	bw.str(tab.Name(fn.Name))
	bw.uint(uint64(fn.Arity))
	bw.int(int64(proc.Entry - start))
	bw.uint(uint64(len(proc.Clauses)))
	for _, c := range proc.Clauses {
		bw.int(int64(c - start))
	}
	bw.uint(uint64(end - start))
	for addr := start; addr < end; addr++ {
		ins := relInstr(mod.Code[addr], start)
		bw.uint(uint64(ins.Op))
		bw.int(int64(ins.A1))
		bw.int(int64(ins.A2))
		bw.int(ins.I)
		bw.int(int64(ins.L))
		bw.int(int64(ins.LV))
		bw.int(int64(ins.LC))
		bw.int(int64(ins.LL))
		bw.int(int64(ins.LS))
		if ins.Fn == (term.Functor{}) {
			bw.uint(0)
		} else {
			bw.uint(1)
			bw.str(tab.Name(ins.Fn.Name))
			bw.uint(uint64(ins.Fn.Arity))
		}
		if len(ins.TblC) > 0 {
			type centry struct {
				k wam.ConstKey
				v int
			}
			ents := make([]centry, 0, len(ins.TblC))
			for k, v := range ins.TblC {
				ents = append(ents, centry{k, v})
			}
			sort.Slice(ents, func(i, j int) bool {
				a, b := ents[i].k, ents[j].k
				if a.IsInt != b.IsInt {
					return !a.IsInt
				}
				if a.IsInt {
					return a.I < b.I
				}
				return tab.Name(a.A) < tab.Name(b.A)
			})
			bw.uint(uint64(len(ents)))
			for _, e := range ents {
				if e.k.IsInt {
					bw.uint(1)
					bw.int(e.k.I)
				} else {
					bw.uint(0)
					bw.str(tab.Name(e.k.A))
				}
				bw.int(int64(e.v))
			}
		} else {
			bw.uint(0)
		}
		if len(ins.TblS) > 0 {
			type sentry struct {
				k term.Functor
				v int
			}
			ents := make([]sentry, 0, len(ins.TblS))
			for k, v := range ins.TblS {
				ents = append(ents, sentry{k, v})
			}
			sort.Slice(ents, func(i, j int) bool {
				an, bn := tab.Name(ents[i].k.Name), tab.Name(ents[j].k.Name)
				if an != bn {
					return an < bn
				}
				return ents[i].k.Arity < ents[j].k.Arity
			})
			bw.uint(uint64(len(ents)))
			for _, e := range ents {
				bw.str(tab.Name(e.k.Name))
				bw.uint(uint64(e.k.Arity))
				bw.int(int64(e.v))
			}
		} else {
			bw.uint(0)
		}
	}
}

// writeProcText renders the same position-independent view as
// writeProcBin, but through the disassembler — the human-readable
// companion behind ProcText for tests and the debug CLI.
func writeProcText(w io.Writer, mod *wam.Module, fn term.Functor, start, end int) {
	proc := mod.Procs[fn]
	fmt.Fprintf(w, "member %s entry %d\n", mod.Tab.FuncString(fn), proc.Entry-start)
	for _, c := range proc.Clauses {
		fmt.Fprintf(w, " clause %d\n", c-start)
	}
	for addr := start; addr < end; addr++ {
		fmt.Fprintf(w, " %d %s\n", addr-start, mod.DisasmInstr(relInstr(mod.Code[addr], start)))
	}
}

// relInstr rewrites an instruction's address operands relative to the
// procedure base so the encoded form is position-independent:
// inserting a predicate above must not change the fingerprints of
// unchanged code. Call/execute targets are dropped entirely — callee
// identity is the functor name, and callee *content* is covered by the
// callee component's fingerprint, not the caller's. FailAddr is kept
// verbatim (it is a sentinel, not a position).
func relInstr(ins wam.Instr, base int) wam.Instr {
	rel := func(a int) int {
		if a == wam.FailAddr {
			return a
		}
		return a - base
	}
	switch ins.Op {
	case wam.OpCall, wam.OpExecute:
		ins.L = 0
	case wam.OpTryMeElse, wam.OpRetryMeElse, wam.OpTry, wam.OpRetry, wam.OpTrust:
		ins.L = rel(ins.L)
	case wam.OpSwitchOnTerm:
		ins.LV, ins.LC, ins.LL, ins.LS = rel(ins.LV), rel(ins.LC), rel(ins.LL), rel(ins.LS)
	case wam.OpSwitchOnConst:
		t := make(map[wam.ConstKey]int, len(ins.TblC))
		for k, v := range ins.TblC {
			t[k] = rel(v)
		}
		ins.TblC = t
	case wam.OpSwitchOnStruct:
		t := make(map[term.Functor]int, len(ins.TblS))
		for k, v := range ins.TblS {
			t[k] = rel(v)
		}
		ins.TblS = t
	}
	return ins
}

// ProcText returns a position-independent rendering of one defined
// predicate's code — a readable view of what its fingerprint covers
// (the hash input itself is the binary form of writeProcBin). Exposed
// for tests and the debug CLI; returns "" for undefined predicates.
func (p *Plan) ProcText(fn term.Functor) string {
	sp, ok := p.spans[fn]
	if !ok {
		return ""
	}
	var b strings.Builder
	writeProcText(&b, p.Mod, fn, sp[0], sp[1])
	return b.String()
}
