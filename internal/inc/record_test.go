package inc

import (
	"context"
	"errors"
	"strings"
	"testing"

	"awam/internal/bench"
	"awam/internal/core"
	"awam/internal/domain"
	"awam/internal/term"
)

// analyzeWorklist runs a plain worklist analysis (the record producer's
// view) and returns the result.
func analyzeWorklist(t *testing.T, src string) (*term.Tab, *core.Result) {
	t.Helper()
	tab, mod := mustCompile(t, src)
	cfg := core.DefaultConfig()
	cfg.Strategy = core.StrategyWorklist
	res, err := core.NewWith(mod, cfg).AnalyzeAllContext(context.Background())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return tab, res
}

// TestRecordRoundTrip encodes a real analysis' entries and decodes them
// into a fresh symbol table, comparing pattern text (the cross-table
// canonical form) for calls, successes and traces.
func TestRecordRoundTrip(t *testing.T) {
	prog, _ := bench.ByName("qsort")
	tab, res := analyzeWorklist(t, prog.Source)
	data := EncodeRecord(tab, res.Entries)

	tab2 := term.NewTab()
	got, err := DecodeRecord(tab2, data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(res.Entries) {
		t.Fatalf("entries: got %d, want %d", len(got), len(res.Entries))
	}
	for i, re := range got {
		e := res.Entries[i]
		if w, g := domain.PatternText(tab, e.CP), domain.PatternText(tab2, re.CP); w != g {
			t.Fatalf("entry %d call: got %s, want %s", i, g, w)
		}
		wantSucc, gotSucc := "bottom", "bottom"
		if e.Succ != nil {
			wantSucc = domain.PatternText(tab, e.Succ)
		}
		if re.Succ != nil {
			gotSucc = domain.PatternText(tab2, re.Succ)
		}
		if wantSucc != gotSucc {
			t.Fatalf("entry %d succ: got %s, want %s", i, gotSucc, wantSucc)
		}
		if len(re.Deps) != len(e.Consults) {
			t.Fatalf("entry %d deps: got %d, want %d", i, len(re.Deps), len(e.Consults))
		}
		for j, dep := range re.Deps {
			if w, g := domain.PatternText(tab, e.Consults[j]), domain.PatternText(tab2, dep); w != g {
				t.Fatalf("entry %d dep %d: got %s, want %s", i, j, g, w)
			}
		}
	}

	// Re-encoding the decoded entries must reproduce the bytes: the
	// store-merge path depends on byte-stable re-encoding.
	ents := make([]*core.Entry, len(got))
	for i, re := range got {
		ents[i] = &core.Entry{CP: re.CP, Succ: re.Succ, Consults: re.Deps}
	}
	if data2 := EncodeRecord(tab2, ents); string(data2) != string(data) {
		t.Fatal("re-encoding decoded entries changed the bytes")
	}
}

// TestDecodeRecordErrors drives every malformed-record path; all must
// return typed errors, never panic.
func TestDecodeRecordErrors(t *testing.T) {
	good := "awam-scc 1\nawam-analysis 1\ncall p(g)\nsucc p(g)\ntrace 0 1\ndep q(g)\n"
	if _, err := DecodeRecord(term.NewTab(), []byte(good)); err != nil {
		t.Fatalf("good record rejected: %v", err)
	}
	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"bad header", "awam-scc 99\nawam-analysis 1\n"},
		{"missing summary header", "awam-scc 1\ncall p(g)\n"},
		{"bad summary block", "awam-scc 1\nawam-analysis 1\ncall p(g)\n"},
		{"bad pattern", "awam-scc 1\nawam-analysis 1\ncall p(((\nsucc bottom\n"},
		{"duplicate call", "awam-scc 1\nawam-analysis 1\ncall p(g)\nsucc bottom\ncall p(g)\nsucc bottom\n"},
		{"trace out of range", "awam-scc 1\nawam-analysis 1\ncall p(g)\nsucc bottom\ntrace 4 0\n"},
		{"trace negative", "awam-scc 1\nawam-analysis 1\ncall p(g)\nsucc bottom\ntrace -1 0\n"},
		{"duplicate trace", "awam-scc 1\nawam-analysis 1\ncall p(g)\nsucc bottom\ntrace 0 0\ntrace 0 0\n"},
		{"truncated deps", "awam-scc 1\nawam-analysis 1\ncall p(g)\nsucc bottom\ntrace 0 2\ndep q(g)\n"},
		{"bad dep pattern", "awam-scc 1\nawam-analysis 1\ncall p(g)\nsucc bottom\ntrace 0 1\ndep )(\n"},
		{"junk after traces", "awam-scc 1\nawam-analysis 1\ncall p(g)\nsucc bottom\ntrace 0 0\nwhat is this\n"},
		{"dep without trace", "awam-scc 1\nawam-analysis 1\ncall p(g)\nsucc bottom\ndep q(g)\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeRecord(term.NewTab(), []byte(tc.data))
			if err == nil {
				t.Fatal("malformed record accepted")
			}
			if !errors.Is(err, ErrBadRecord) {
				t.Fatalf("error does not wrap ErrBadRecord: %v", err)
			}
		})
	}
}

// TestDecodeRecordWrapsBadSummary: summary-block failures surface both
// sentinel errors so callers can branch on either layer.
func TestDecodeRecordWrapsBadSummary(t *testing.T) {
	_, err := DecodeRecord(term.NewTab(), []byte("awam-scc 1\nawam-analysis 1\nsucc bottom\n"))
	if !errors.Is(err, ErrBadRecord) || !errors.Is(err, core.ErrBadSummary) {
		t.Fatalf("want ErrBadRecord wrapping ErrBadSummary, got: %v", err)
	}
	if err != nil && !strings.Contains(err.Error(), "succ before call") {
		t.Fatalf("lost the underlying diagnosis: %v", err)
	}
}
