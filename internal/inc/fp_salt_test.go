package inc

import (
	"context"
	"testing"

	"awam/internal/bench"
	"awam/internal/core"
)

// TestFormatSaltIsolation pins the fingerprint schema salt (fpFormat)
// the way TestEngineSpecIsolation pins the specializer salt: records
// written under one format generation must be a cache miss for the
// other, in both directions, while each generation stays fully warm
// against its own records. The v2→v3 bump exists because the
// schedule-confluent widening changed computed summaries; a shared
// store serving a pre-closure record to a post-closure analyzer (or
// vice versa) would silently mix semantics.
func TestFormatSaltIsolation(t *testing.T) {
	const oldFormat = "awam-scc-fp 2"
	prog, _ := bench.ByName("qsort")
	cfg := core.DefaultConfig()

	// Current generation: cold run populates, warm run fully reuses.
	e := NewEngine(nil)
	_, mod := mustCompile(t, prog.Source)
	cold, err := e.AnalyzeAll(context.Background(), mod, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.WarmSCCs != 0 {
		t.Fatalf("cold run reports %d warm SCCs", cold.WarmSCCs)
	}
	_, mod2 := mustCompile(t, prog.Source)
	warm, err := e.AnalyzeAll(context.Background(), mod2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.WarmSCCs != len(warm.Plan.SCCs) {
		t.Fatalf("warm run served %d/%d components", warm.WarmSCCs, len(warm.Plan.SCCs))
	}

	// Direction 1: current-format records must not satisfy a lookup
	// keyed under the previous format.
	_, mod3 := mustCompile(t, prog.Source)
	oldPlan := NewPlan(mod3, configContext(cfg))
	oldPlan.fingerprintWith(oldFormat, configContext(cfg))
	if _, cached := e.loadWarm(mod3.Tab, oldPlan); len(cached) != 0 {
		t.Fatalf("old-format lookup served %d components from current-format records", len(cached))
	}

	// Direction 2: a store holding only old-format records must not
	// satisfy a current lookup — but still serves its own generation.
	e2 := NewEngine(nil)
	cfgWL := cfg
	cfgWL.Strategy = core.StrategyWorklist
	res, err := core.NewWith(mod3, cfgWL).AnalyzeAllContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	e2.storeRecords(oldPlan, mod3.Tab, res, map[int]*cachedSCC{})
	_, cachedOld := e2.loadWarm(mod3.Tab, oldPlan)
	if len(cachedOld) == 0 {
		t.Fatal("old-format store does not even serve its own generation")
	}
	if _, cachedCur := e2.loadWarm(mod3.Tab, NewPlan(mod3, configContext(cfg))); len(cachedCur) != 0 {
		t.Fatalf("current lookup served %d components from old-format records", len(cachedCur))
	}
}
