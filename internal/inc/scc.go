// Package inc implements the incremental analysis engine: it condenses
// the static call graph into strongly connected components, fingerprints
// each component by the content of its compiled code and the
// fingerprints of its callees, and analyzes bottom-up so components
// whose fingerprint matches a cached record reuse the previous run's
// converged summaries (seeded into the extension table via
// core.Config.Warm) instead of being re-explored. After an edit, only
// the dirty cone — the changed components and everything that can reach
// them — pays for analysis again.
//
// The cache (internal/cache) is content-addressed by those fingerprints,
// so there is no invalidation protocol: changed code simply hashes to a
// new address, and stale records age out of the LRU.
package inc

import (
	"sort"

	"awam/internal/term"
	"awam/internal/wam"
)

// SCC is one strongly connected component of the condensed static call
// graph, or a pseudo-component standing in for an undefined callee.
type SCC struct {
	// Members lists the component's predicates in module definition
	// order. A pseudo-component for an undefined callee has exactly one
	// member and Undefined set.
	Members []term.Functor
	// Undefined marks a pseudo-component: the predicate is called but
	// has no clauses. It still gets a fingerprint (derived from its
	// name/arity) so that defining it later changes every caller's
	// fingerprint and dirties their cones.
	Undefined bool
	// Callees holds the indices (into Plan.SCCs) of components this one
	// calls, ascending, excluding itself. Because components are emitted
	// in reverse topological order, every callee index is smaller than
	// the component's own.
	Callees []int
	// Fingerprint is the content address of the component's summaries:
	// a hash of its members' compiled code (addresses relativized), the
	// analysis configuration, and its callees' fingerprints — so it
	// covers the entire transitive cone. Computed by Plan construction.
	Fingerprint string
}

// Plan is the condensation of one compiled module: its components in
// bottom-up (reverse topological) order, fingerprinted and ready for
// cache probes.
type Plan struct {
	Mod *wam.Module
	// SCCs lists components callees-first: every edge goes from a later
	// component to an earlier one.
	SCCs []*SCC
	// PredSCC maps each predicate — defined or undefined-but-called —
	// to the index of its component.
	PredSCC map[term.Functor]int

	// spans maps each defined predicate to its [start,end) code range.
	spans map[term.Functor][2]int
}

// NewPlan condenses mod's static call graph and fingerprints every
// component. context is the configuration salt (configContext): records
// produced under different analysis parameters must not be confused, so
// it is hashed into every fingerprint. The construction is fully
// deterministic — nodes in definition order, neighbors in code order —
// so the same module always yields the same plan and fingerprints.
func NewPlan(mod *wam.Module, context string) *Plan {
	return NewPlanFormat(mod, fpFormat, context)
}

// NewPlanFormat is NewPlan with an explicit fingerprint schema name.
// Alternate analyses that reuse the condensation but compute different
// facts over it — the backward engine keys its plans under
// "awam-bwd-fp 1" — salt their fingerprints with a distinct format so
// the two record universes can never satisfy each other's cache probes,
// even through a shared store.
func NewPlanFormat(mod *wam.Module, format, context string) *Plan {
	p := &Plan{
		Mod:     mod,
		PredSCC: make(map[term.Functor]int),
		spans:   procSpans(mod),
	}
	nodes, adj := callAdjacency(mod, p.spans)
	p.condense(nodes, adj)
	p.fingerprintWith(format, context)
	return p
}

// procSpans computes each defined predicate's code range. Procedures
// are laid out contiguously (the invariant StaticCallEdges and
// Module.OwnerOf also rely on): a procedure's code runs from its entry
// to the next procedure's entry.
func procSpans(mod *wam.Module) map[term.Functor][2]int {
	type span struct {
		start int
		fn    term.Functor
	}
	spans := make([]span, 0, len(mod.Order))
	for _, fn := range mod.Order {
		spans = append(spans, span{start: mod.Procs[fn].Entry, fn: fn})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	out := make(map[term.Functor][2]int, len(spans))
	for i, s := range spans {
		end := len(mod.Code)
		if i+1 < len(spans) {
			end = spans[i+1].start
		}
		out[s.fn] = [2]int{s.start, end}
	}
	return out
}

// callAdjacency builds the static call graph in deterministic order:
// nodes are the defined predicates in definition order followed by
// undefined callees in first-reference order; each node's neighbor list
// follows the code order of its call sites (deduplicated). The edge
// set is exactly core.StaticCallEdges' (tested); the ordering is what
// that map cannot provide.
func callAdjacency(mod *wam.Module, spans map[term.Functor][2]int) ([]term.Functor, map[term.Functor][]term.Functor) {
	nodes := make([]term.Functor, 0, len(mod.Order))
	nodes = append(nodes, mod.Order...)
	defined := make(map[term.Functor]bool, len(mod.Order))
	for _, fn := range mod.Order {
		defined[fn] = true
	}
	undefinedSeen := make(map[term.Functor]bool)
	adj := make(map[term.Functor][]term.Functor, len(mod.Order))
	for _, fn := range mod.Order {
		sp := spans[fn]
		seen := make(map[term.Functor]bool)
		for addr := sp[0]; addr < sp[1]; addr++ {
			ins := mod.Code[addr]
			if ins.Op != wam.OpCall && ins.Op != wam.OpExecute {
				continue
			}
			if !seen[ins.Fn] {
				seen[ins.Fn] = true
				adj[fn] = append(adj[fn], ins.Fn)
			}
			if !defined[ins.Fn] && !undefinedSeen[ins.Fn] {
				undefinedSeen[ins.Fn] = true
				nodes = append(nodes, ins.Fn)
			}
		}
	}
	return nodes, adj
}

// condense runs Tarjan's algorithm over the ordered graph. Tarjan emits
// components in reverse topological order (a component completes only
// after everything it reaches), which is exactly the bottom-up order
// the engine analyzes in; member lists are normalized to definition
// order so the emitted plan is schedule-free.
func (p *Plan) condense(nodes []term.Functor, adj map[term.Functor][]term.Functor) {
	orderIdx := make(map[term.Functor]int, len(nodes))
	for i, fn := range nodes {
		orderIdx[fn] = i
	}
	index := make(map[term.Functor]int, len(nodes))
	low := make(map[term.Functor]int, len(nodes))
	onStack := make(map[term.Functor]bool, len(nodes))
	var stack []term.Functor
	next := 0

	var strongconnect func(v term.Functor)
	strongconnect = func(v term.Functor) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []term.Functor
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			sort.Slice(members, func(i, j int) bool {
				return orderIdx[members[i]] < orderIdx[members[j]]
			})
			id := len(p.SCCs)
			scc := &SCC{Members: members}
			if _, ok := p.spans[members[0]]; !ok {
				scc.Undefined = true
			}
			p.SCCs = append(p.SCCs, scc)
			for _, m := range members {
				p.PredSCC[m] = id
			}
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	// Cross-component callee lists, ascending, self excluded.
	for i, scc := range p.SCCs {
		seen := make(map[int]bool)
		for _, m := range scc.Members {
			for _, w := range adj[m] {
				if j := p.PredSCC[w]; j != i && !seen[j] {
					seen[j] = true
					scc.Callees = append(scc.Callees, j)
				}
			}
		}
		sort.Ints(scc.Callees)
	}
}

// StaticEdges re-derives the plan's edge relation in the shape
// core.StaticCallEdges produces; the equivalence test pins the two
// views of the call graph together.
func (p *Plan) StaticEdges() map[[2]term.Functor]bool {
	edges := make(map[[2]term.Functor]bool)
	for _, fn := range p.Mod.Order {
		sp := p.spans[fn]
		for addr := sp[0]; addr < sp[1]; addr++ {
			ins := p.Mod.Code[addr]
			if ins.Op == wam.OpCall || ins.Op == wam.OpExecute {
				edges[[2]term.Functor{fn, ins.Fn}] = true
			}
		}
	}
	return edges
}
