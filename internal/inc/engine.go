package inc

import (
	"bytes"
	"context"
	"fmt"

	"awam/internal/cache"
	"awam/internal/core"
	"awam/internal/domain"
	"awam/internal/term"
	"awam/internal/wam"
)

// Engine runs incremental analyses against a summary store. It is
// stateless apart from the store, so one engine can serve many modules
// (the daemon shares one across requests); the store is safe for
// concurrent use. The engine sees only the composed cache.ChunkStore —
// whether a record came from memory, disk or a fabric peer is the
// store's business, and results are byte-identical regardless.
type Engine struct {
	store cache.ChunkStore
}

// NewEngine returns an engine over store; a nil store gets a private
// in-memory store with the default budget.
func NewEngine(store cache.ChunkStore) *Engine {
	if store == nil {
		store, _ = cache.New() // memory-only construction cannot fail
	}
	return &Engine{store: store}
}

// Store exposes the engine's summary store (for stats and tests).
func (e *Engine) Store() cache.ChunkStore { return e.store }

// prefetcher is the optional batch-fault hook of tiered stores: given
// the run's full fingerprint set up front, a fabric-backed store can
// fetch every remotely-cached component in a few batched round trips
// instead of one per Get.
type prefetcher interface {
	Prefetch(fps []cache.Fingerprint)
}

// flusher is the optional end-of-run hook that ships this run's novel
// records to the fabric peer in batches.
type flusher interface {
	Flush()
}

// Result is an incremental analysis outcome: the core result (whose
// Entries/Marshal are byte-identical to a from-scratch worklist run)
// plus the condensation and cache accounting of this run.
type Result struct {
	*core.Result
	// Plan is the module's fingerprinted condensation.
	Plan *Plan
	// WarmSCCs counts components served from the store — record present,
	// well-formed, and entire callee cone also served — out of
	// len(Plan.SCCs) total. Per-pattern reuse is Metrics.WarmHits.
	WarmSCCs int
	// Store is the summary store's state after the run.
	Store cache.Stats
}

// configContext is the configuration salt hashed into fingerprints:
// cached summaries depend on the depth bound and on indexing-aware
// clause selection, so records produced under different settings must
// live at different addresses. Defaults are resolved the way
// core.NewWith resolves them, so Config{} and an explicit
// DefaultConfig() share records.
func configContext(cfg core.Config) string {
	depth := cfg.Depth
	if depth == 0 {
		depth = 4
	}
	ctx := fmt.Sprintf("depth=%d indexing=%t", depth, cfg.Indexing)
	if cfg.Spec != nil {
		// Specialized runs are salted with the specialization version and
		// the per-component fusion-set hash: results are byte-identical to
		// generic runs by construction, but a record produced by one
		// engine generation must never satisfy a lookup from another — a
		// specializer bug would otherwise be masked by cached summaries
		// from before (or after) the bug.
		ctx += " " + cfg.Spec.Salt()
	}
	return ctx
}

// AnalyzeAll analyzes mod the way core's AnalyzeAll does (main/0 when
// present, else an all-any pattern per predicate), reusing cached
// summaries for every component whose fingerprint — covering its code,
// configuration and transitive callees — matches a stored record, and
// refreshing the store with this run's summaries. The incremental
// engine always runs the worklist strategy (warm seeding is defined for
// it); cfg.Strategy and cfg.Warm are overwritten.
func (e *Engine) AnalyzeAll(ctx context.Context, mod *wam.Module, cfg core.Config) (*Result, error) {
	cfg.Strategy = core.StrategyWorklist
	plan := NewPlan(mod, configContext(cfg))
	before := e.store.Stats()
	warm, cached := e.loadWarm(mod.Tab, plan)
	cfg.Warm = nil
	if warm != nil { // assigning a typed nil would install a non-nil interface
		cfg.Warm = warm
	}

	an := core.NewWith(mod, cfg)
	res, err := an.AnalyzeAllContext(ctx)
	if err != nil {
		return nil, err
	}
	e.storeRecords(plan, mod.Tab, res, cached)
	if f, ok := e.store.(flusher); ok {
		f.Flush()
	}

	after := e.store.Stats()
	if res.Metrics != nil {
		res.Metrics.CacheHits = after.Hits - before.Hits
		res.Metrics.CacheMisses = after.Misses - before.Misses
		res.Metrics.CacheEvictions = after.Evictions - before.Evictions
		res.Metrics.CacheBytes = after.Bytes
		res.Metrics.RemoteLoads = after.RemoteLoads - before.RemoteLoads
		res.Metrics.RemoteMisses = after.RemoteMisses - before.RemoteMisses
		res.Metrics.RemotePuts = after.RemotePuts - before.RemotePuts
		res.Metrics.RemoteRoundTrips = after.RemoteRoundTrips - before.RemoteRoundTrips
		res.Metrics.RemoteErrors = after.RemoteErrors - before.RemoteErrors
	}
	return &Result{Result: res, Plan: plan, WarmSCCs: len(cached), Store: after}, nil
}

// warmSeed is one cached converged pattern: success value plus the
// finalize consultation trace that replays its presentation.
type warmSeed struct {
	succ *domain.Pattern
	deps []*domain.Pattern
}

// warmTable implements core.WarmStart over the decoded records. Lookups
// key on the canonical pattern key computed in the request's symbol
// table (record patterns were re-parsed into it), which quotients
// patterns exactly like the engine's interner.
//
// The last Seed result is memoized: the finalize replay always asks
// Seed then Trace for the same (fn, key), and the worklist strategy
// (the only one Warm is defined for) runs single-threaded, so a
// one-entry memo halves the map traffic with no locking.
type warmTable struct {
	seeds map[term.Functor]map[string]*warmSeed

	lastFn   term.Functor
	lastKey  string
	lastSeed *warmSeed
}

func (w *warmTable) lookup(fn term.Functor, key string) *warmSeed {
	if w.lastSeed != nil && w.lastFn == fn && w.lastKey == key {
		return w.lastSeed
	}
	s := w.seeds[fn][key]
	if s != nil {
		w.lastFn, w.lastKey, w.lastSeed = fn, key, s
	}
	return s
}

func (w *warmTable) Seed(fn term.Functor, key string) (*domain.Pattern, bool) {
	s := w.lookup(fn, key)
	if s == nil {
		return nil, false
	}
	return s.succ, true
}

func (w *warmTable) Trace(fn term.Functor, key string) []*domain.Pattern {
	if s := w.lookup(fn, key); s != nil {
		return s.deps
	}
	return nil
}

// cachedSCC retains a served record for the post-run merge: raw bytes
// (to skip redundant Puts) and decoded entries (to keep calling
// patterns this run never touched).
type cachedSCC struct {
	raw     []byte
	entries []RecordEntry
}

// loadWarm probes the store for every component, bottom-up. A component
// is served only when its record is present and well-formed AND all its
// callee components are served too: a seeded entry's finalize trace
// consults callee patterns that are neither explored nor in the
// fixpoint table, so their values must come from seeds as well — seeding
// above a missing cone would present under-approximate summaries.
// (Fingerprint matching already guarantees the cone is *unchanged*;
// this gate guarantees it is *available*.) Returns nil when nothing is
// served, so cold runs skip warm probes entirely.
func (e *Engine) loadWarm(tab *term.Tab, plan *Plan) (*warmTable, map[int]*cachedSCC) {
	if p, ok := e.store.(prefetcher); ok {
		fps := make([]cache.Fingerprint, len(plan.SCCs))
		for i, scc := range plan.SCCs {
			fps[i] = cache.Fingerprint(scc.Fingerprint)
		}
		p.Prefetch(fps)
	}
	cached := make(map[int]*cachedSCC)
	w := &warmTable{seeds: make(map[term.Functor]map[string]*warmSeed)}
	served := make([]bool, len(plan.SCCs))
	depMemo := make(map[string]*domain.Pattern)
	for i, scc := range plan.SCCs {
		coneOK := true
		for _, j := range scc.Callees {
			if !served[j] {
				coneOK = false
				break
			}
		}
		if !coneOK {
			continue
		}
		data, ok := e.store.Get(cache.Fingerprint(scc.Fingerprint))
		if !ok {
			continue
		}
		entries, err := decodeRecord(tab, data, depMemo)
		if err != nil {
			continue // treated as a miss; the record is rewritten after the run
		}
		valid := true
		for _, re := range entries {
			if j, ok := plan.PredSCC[re.CP.Fn]; !ok || j != i {
				valid = false // foreign predicate: corruption or a hash collision
				break
			}
		}
		if !valid {
			continue
		}
		served[i] = true
		cached[i] = &cachedSCC{raw: data, entries: entries}
		for _, re := range entries {
			m := w.seeds[re.CP.Fn]
			if m == nil {
				m = make(map[string]*warmSeed)
				w.seeds[re.CP.Fn] = m
			}
			m[re.CP.Key()] = &warmSeed{succ: re.Succ, deps: re.Deps}
		}
	}
	if len(cached) == 0 {
		return nil, cached
	}
	return w, cached
}

// storeRecords writes this run's converged summaries back, one record
// per component that was reached. Calling patterns a served record
// carried but this run never consulted are merged in, so a record never
// forgets summaries just because the current callers take other paths.
// Byte-identical records are not re-Put.
func (e *Engine) storeRecords(plan *Plan, tab *term.Tab, res *core.Result, cached map[int]*cachedSCC) {
	groups := make([][]*core.Entry, len(plan.SCCs))
	for _, en := range res.Entries {
		if i, ok := plan.PredSCC[en.CP.Fn]; ok {
			groups[i] = append(groups[i], en)
		}
	}
	for i, ents := range groups {
		c := cached[i]
		if len(ents) == 0 {
			continue // component unreached this run; any cached record stands
		}
		if c != nil && res.Metrics != nil && !explored(plan.SCCs[i], res.Metrics.PredRuns) {
			// Served component whose members were never explored: every
			// consulted pattern came from the record's seeds and none of
			// them grew, so re-encoding would reproduce the stored bytes.
			// (A calling pattern absent from the record forces an
			// exploration, so it cannot slip past this check.)
			continue
		}
		if c != nil {
			seen := make(map[string]bool, len(ents))
			for _, en := range ents {
				seen[en.CP.Key()] = true
			}
			for _, re := range c.entries {
				if !seen[re.CP.Key()] {
					ents = append(ents, &core.Entry{CP: re.CP, Succ: re.Succ, Consults: re.Deps})
				}
			}
		}
		data := EncodeRecord(tab, ents)
		if c != nil && bytes.Equal(c.raw, data) {
			continue
		}
		e.store.Put(cache.Fingerprint(plan.SCCs[i].Fingerprint), data)
	}
}

// explored reports whether any member of scc was explored this run.
func explored(scc *SCC, runs map[term.Functor]int64) bool {
	for _, fn := range scc.Members {
		if runs[fn] > 0 {
			return true
		}
	}
	return false
}

// Condense is a convenience for tools and tests: the fingerprinted plan
// for mod under cfg's effective configuration.
func Condense(mod *wam.Module, cfg core.Config) *Plan {
	return NewPlan(mod, configContext(cfg))
}
