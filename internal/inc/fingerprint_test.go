package inc

import (
	"testing"

	"awam/internal/term"
)

// fpByName maps predicate spellings to their component fingerprints.
func fpByName(tab *term.Tab, p *Plan) map[string]string {
	out := make(map[string]string)
	for _, scc := range p.SCCs {
		for _, fn := range scc.Members {
			out[tab.FuncString(fn)] = scc.Fingerprint
		}
	}
	return out
}

const fpBase = `
app([], Ys, Ys).
app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
rev([], []).
rev([X|Xs], Ys) :- rev(Xs, Zs), app(Zs, [X], Ys).
len([], 0).
len([_|Xs], N) :- len(Xs, M), N is M+1.
`

// TestFingerprintDirtyCone: editing one predicate changes its
// fingerprint and every (transitive) caller's, and nothing else's.
func TestFingerprintDirtyCone(t *testing.T) {
	tab1, p1 := planOf(t, fpBase)
	// Add a clause to app/3: rev/2 is a caller (dirty), len/2 is not.
	tab2, p2 := planOf(t, fpBase+"\napp(x, x, x).\n")
	fp1, fp2 := fpByName(tab1, p1), fpByName(tab2, p2)
	if fp1["app/3"] == fp2["app/3"] {
		t.Fatal("edited predicate kept its fingerprint")
	}
	if fp1["rev/2"] == fp2["rev/2"] {
		t.Fatal("caller of edited predicate kept its fingerprint")
	}
	if fp1["len/2"] != fp2["len/2"] {
		t.Fatal("unrelated predicate changed fingerprint")
	}
}

// TestFingerprintPositionIndependent: inserting a predicate ahead of
// everything shifts all absolute code addresses; relativized rendering
// must keep untouched predicates' fingerprints stable.
func TestFingerprintPositionIndependent(t *testing.T) {
	tab1, p1 := planOf(t, fpBase)
	tab2, p2 := planOf(t, "first(a).\nfirst(b).\nfirst(c).\n"+fpBase)
	fp1, fp2 := fpByName(tab1, p1), fpByName(tab2, p2)
	for _, name := range []string{"app/3", "rev/2", "len/2"} {
		if fp1[name] != fp2[name] {
			t.Fatalf("%s fingerprint changed after unrelated code shifted addresses:\n%s",
				name, p2.ProcText(mustFunc(t, tab2, name, p2)))
		}
	}
}

// mustFunc resolves "name/arity" against the plan's predicates.
func mustFunc(t *testing.T, tab *term.Tab, spelling string, p *Plan) term.Functor {
	t.Helper()
	for fn := range p.PredSCC {
		if tab.FuncString(fn) == spelling {
			return fn
		}
	}
	t.Fatalf("no predicate %s in plan", spelling)
	return term.Functor{}
}

// TestFingerprintUndefinedCallee: calling an undefined predicate yields
// a pseudo-component; defining it later changes the caller's
// fingerprint (the pseudo-fingerprint is replaced by a code hash).
func TestFingerprintUndefinedCallee(t *testing.T) {
	tab1, p1 := planOf(t, "top(X) :- ghost(X).\n")
	tab2, p2 := planOf(t, "top(X) :- ghost(X).\nghost(a).\n")
	fp1, fp2 := fpByName(tab1, p1), fpByName(tab2, p2)
	if fp1["ghost/1"] == fp2["ghost/1"] {
		t.Fatal("defining a predicate kept its pseudo-fingerprint")
	}
	if fp1["top/1"] == fp2["top/1"] {
		t.Fatal("caller fingerprint survived its callee's definition")
	}
	i := p1.PredSCC[mustFunc(t, tab1, "ghost/1", p1)]
	if !p1.SCCs[i].Undefined {
		t.Fatal("undefined callee not marked as pseudo-component")
	}
}

// TestFingerprintContextSalt: the same code under different analysis
// configurations must use different cache addresses.
func TestFingerprintContextSalt(t *testing.T) {
	tab, mod := mustCompile(t, fpBase)
	p1 := NewPlan(mod, "depth=4 indexing=true")
	p2 := NewPlan(mod, "depth=2 indexing=true")
	fp1, fp2 := fpByName(tab, p1), fpByName(tab, p2)
	for name := range fp1 {
		if fp1[name] == fp2[name] {
			t.Fatalf("%s: fingerprint ignores the configuration salt", name)
		}
	}
}

// TestFingerprintCoversCalleeCone: an edit deep in the cone propagates
// through every level above it.
func TestFingerprintCoversCalleeCone(t *testing.T) {
	base := `
a(X) :- b(X).
b(X) :- c(X).
c(a).
`
	tab1, p1 := planOf(t, base)
	tab2, p2 := planOf(t, base+"\nc(b).\n")
	fp1, fp2 := fpByName(tab1, p1), fpByName(tab2, p2)
	for _, name := range []string{"a/1", "b/1", "c/1"} {
		if fp1[name] == fp2[name] {
			t.Fatalf("%s fingerprint missed an edit in its cone", name)
		}
	}
}
